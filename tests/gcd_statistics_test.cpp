// Statistical-shape tests for Table IV's structural claims, asserted with
// tolerances wide enough to be deterministic at small sample sizes:
//   1. iterations scale linearly with the bit length;
//   2. Binary ≈ 2 × FastBinary ≈ 4 × Approximate;
//   3. early-terminate is half of non-terminate;
//   4. Approximate ≈ Fast (the approximate quotient costs ~nothing).
#include <gtest/gtest.h>

#include "core/stats.hpp"
#include "gcd/algorithms.hpp"
#include "rsa/corpus.hpp"

namespace bulkgcd::gcd {
namespace {

using mp::BigInt;

/// Mean iterations of `variant` over all pairs of a small fresh corpus.
double mean_iterations(Variant variant, std::size_t bits, bool early,
                       std::uint64_t seed) {
  rsa::CorpusSpec spec;
  spec.count = 10;
  spec.modulus_bits = bits;
  spec.seed = seed;
  const auto corpus = rsa::generate_corpus(spec);
  GcdEngine<std::uint32_t> engine(bits / 32 + 1);
  RunningStats stats;
  for (std::size_t i = 0; i < corpus.moduli.size(); ++i) {
    for (std::size_t j = i + 1; j < corpus.moduli.size(); ++j) {
      GcdStats st;
      engine.run(variant, corpus.moduli[i].limbs(), corpus.moduli[j].limbs(),
                 early ? bits / 2 : 0, &st);
      stats.add(double(st.iterations));
    }
  }
  return stats.mean();
}

TEST(TableFourShapeTest, IterationsScaleLinearlyInBits) {
  const double at256 = mean_iterations(Variant::kApproximate, 256, false, 1);
  const double at512 = mean_iterations(Variant::kApproximate, 512, false, 2);
  const double at1024 = mean_iterations(Variant::kApproximate, 1024, false, 3);
  EXPECT_NEAR(at512 / at256, 2.0, 0.15);
  EXPECT_NEAR(at1024 / at512, 2.0, 0.15);
}

TEST(TableFourShapeTest, VariantRatiosMatchThePaper) {
  const std::size_t bits = 512;
  const double binary = mean_iterations(Variant::kBinary, bits, false, 4);
  const double fast_binary = mean_iterations(Variant::kFastBinary, bits, false, 4);
  const double approximate = mean_iterations(Variant::kApproximate, bits, false, 4);
  const double original = mean_iterations(Variant::kOriginal, bits, false, 4);
  EXPECT_NEAR(binary / fast_binary, 2.0, 0.1);       // (C) ≈ 2·(D)
  EXPECT_NEAR(binary / approximate, 3.8, 0.4);       // (C) ≈ 4·(E)
  EXPECT_NEAR(original / approximate, 1.57, 0.1);    // (A)/(E) ≈ π²/6 ln2 ratio
}

TEST(TableFourShapeTest, EarlyTerminationHalvesEveryVariant) {
  const std::size_t bits = 512;
  for (const Variant variant : kAllVariants) {
    const double full = mean_iterations(variant, bits, false, 5);
    const double early = mean_iterations(variant, bits, true, 5);
    EXPECT_NEAR(early / full, 0.5, 0.06) << to_string(variant);
  }
}

TEST(TableFourShapeTest, ApproximateMatchesFastWithinTenth) {
  const std::size_t bits = 512;
  const double fast = mean_iterations(Variant::kFast, bits, false, 6);
  const double approx = mean_iterations(Variant::kApproximate, bits, false, 6);
  EXPECT_NEAR(approx, fast, 0.1);  // mean difference < 0.1 iterations
}

}  // namespace
}  // namespace bulkgcd::gcd
