// UMM simulator tests: Theorem 1 exactness, coalescing vs serialization
// under column- vs row-wise layouts, Figure-2 pipeline accounting, and the
// semi-obliviousness analysis of the GCD algorithms.
#include "umm/umm.hpp"

#include <gtest/gtest.h>

#include "gmp_oracle.hpp"
#include "rsa/prime.hpp"
#include "umm/oblivious.hpp"

namespace bulkgcd::umm {
namespace {

using bulkgcd::Xoshiro256;
using mp::BigInt;

/// p identical traces touching logical addresses 0..steps-1 (oblivious).
std::vector<ThreadTrace> oblivious_traces(std::size_t threads, std::size_t steps) {
  std::vector<ThreadTrace> traces(threads);
  for (auto& trace : traces) {
    for (std::size_t i = 0; i < steps; ++i) {
      trace.addresses.push_back(std::uint32_t(i));
      trace.is_write.push_back(false);
    }
  }
  return traces;
}

TEST(UmmSimulatorTest, Theorem1ExactForObliviousColumnWise) {
  // Theorem 1: (p/w + l − 1)·t time units.
  for (const std::size_t w : {4u, 32u}) {
    for (const std::size_t l : {5u, 100u}) {
      const UmmSimulator sim({w, l});
      for (const std::size_t p : {w, 4 * w, 16 * w}) {
        for (const std::size_t t : {1u, 7u, 50u}) {
          const auto traces = oblivious_traces(p, t);
          const auto result = sim.replay(traces, Layout::kColumnWise, 64);
          EXPECT_EQ(result.time_units, sim.theorem1_time(p, t))
              << "w=" << w << " l=" << l << " p=" << p << " t=" << t;
          EXPECT_EQ(result.steps, t);
          EXPECT_DOUBLE_EQ(result.coalesced_fraction(), 1.0);
        }
      }
    }
  }
}

TEST(UmmSimulatorTest, RowWiseLayoutSerializesWarps) {
  // Row-wise, each thread's array is span apart: a warp's w accesses land in
  // w distinct groups (span >= w), so every dispatch costs w stages.
  const std::size_t w = 8, l = 10, p = 32, t = 5, span = 64;
  const UmmSimulator sim({w, l});
  const auto traces = oblivious_traces(p, t);
  const auto row = sim.replay(traces, Layout::kRowWise, span);
  const auto col = sim.replay(traces, Layout::kColumnWise, span);
  EXPECT_EQ(col.time_units, (p / w + l - 1) * t);
  EXPECT_EQ(row.time_units, (p / w * w + l - 1) * t);
  EXPECT_GT(row.time_units, col.time_units);
  EXPECT_LT(row.coalesced_fraction(), 1.0);
}

TEST(UmmSimulatorTest, FigureTwoWorkedExample) {
  // Figure 2: w = 4, l = 5; W(0)'s requests hit 3 address groups, W(1)'s hit
  // one; total = 3 + 1 + 5 − 1 = 8 time units. Encoded with the identity
  // mapping (row-wise, span 0: logical addresses ARE global addresses).
  const UmmSimulator sim({4, 5});
  std::vector<ThreadTrace> traces(8);
  const std::uint32_t w0[4] = {3, 4, 6, 8};      // groups 0, 1, 1, 2
  const std::uint32_t w1[4] = {12, 13, 14, 15};  // group 3
  for (int i = 0; i < 4; ++i) {
    traces[i].addresses.push_back(w0[i]);
    traces[4 + i].addresses.push_back(w1[i]);
  }
  const auto result = sim.replay(traces, Layout::kRowWise, 0);
  EXPECT_EQ(result.time_units, 8u);  // 3 + 1 + 5 − 1
  EXPECT_EQ(result.warp_dispatches, 2u);
  EXPECT_EQ(result.stage_slots, 4u);
}

TEST(UmmSimulatorTest, IdleWarpsAreNotDispatched) {
  const UmmSimulator sim({4, 5});
  std::vector<ThreadTrace> traces(8);
  // Only warp 0 is active.
  for (int i = 0; i < 4; ++i) {
    traces[i].addresses.push_back(std::uint32_t(i));
    traces[i].is_write.push_back(false);
  }
  const auto result = sim.replay(traces, Layout::kColumnWise, 16);
  EXPECT_EQ(result.warp_dispatches, 1u);
}

TEST(UmmSimulatorTest, RaggedTracesIdleFinishedThreads) {
  const UmmSimulator sim({4, 5});
  auto traces = oblivious_traces(4, 3);
  traces[3].addresses.resize(1);  // thread 3 finishes after one access
  traces[3].is_write.resize(1);
  const auto result = sim.replay(traces, Layout::kColumnWise, 16);
  EXPECT_EQ(result.steps, 3u);
  EXPECT_EQ(result.warp_dispatches, 3u);
}

TEST(UmmSimulatorTest, ValidatesConfig) {
  EXPECT_THROW(UmmSimulator({0, 5}), std::invalid_argument);
  EXPECT_THROW(UmmSimulator({4, 0}), std::invalid_argument);
}

TEST(ObliviousnessTest, IdenticalTracesAreFullyUniform) {
  const auto traces = oblivious_traces(16, 20);
  const auto report = analyze_traces(traces);
  EXPECT_EQ(report.aligned_steps, 20u);
  EXPECT_EQ(report.divergent_steps, 0u);
  EXPECT_EQ(report.uniform_steps, 20u);
  EXPECT_DOUBLE_EQ(report.divergent_fraction(), 0.0);
}

TEST(ObliviousnessTest, ApproximateEuclideanIsSemiOblivious) {
  // Section VI: the bulk of Approximate Euclidean's accesses are the fused
  // streaming pass whose addresses depend only on (lx, ly) and the buffer-
  // pointer parity, which concentrate across random moduli. The cost-level
  // measure is the mean number of DISTINCT addresses per lockstep step
  // (that is what the UMM charges as address groups): near 1 means
  // near-coalesced. A thread whose swap pattern deviated once keeps a
  // flipped buffer parity forever, so the binary divergent-step fraction is
  // high even though only ~2 distinct addresses are in flight.
  Xoshiro256 rng(101);
  std::vector<std::pair<BigInt, BigInt>> pairs;
  for (int i = 0; i < 16; ++i) {
    pairs.emplace_back(
        rsa::random_prime(rng, 128) * rsa::random_prime(rng, 128),
        rsa::random_prime(rng, 128) * rsa::random_prime(rng, 128));
  }
  const auto traces = collect_traces(gcd::Variant::kApproximate, pairs, 128, 16);
  const auto report = analyze_traces(traces);
  EXPECT_GT(report.total_accesses, 0u);
  EXPECT_LT(report.mean_distinct_addresses(), 3.0);  // 16 threads, ~2 groups

  // UMM replay: the modelled time stays within a small factor of the
  // oblivious lower bound (Theorem 1), and column-wise beats row-wise.
  const UmmSimulator sim({8, 50});
  const auto col = sim.replay(traces, Layout::kColumnWise, 32);
  const auto row = sim.replay(traces, Layout::kRowWise, 32);
  EXPECT_LT(col.time_units, row.time_units);
  EXPECT_LT(double(col.time_units),
            1.3 * double(sim.theorem1_time(pairs.size(), col.steps)));
}

TEST(ObliviousnessTest, BinaryIsLessObliviousThanApproximate) {
  // §VII's branch-divergence observation at the address level: Binary's
  // three-way case split spreads a warp over more distinct addresses.
  Xoshiro256 rng(103);
  std::vector<std::pair<BigInt, BigInt>> pairs;
  for (int i = 0; i < 16; ++i) {
    pairs.emplace_back(
        rsa::random_prime(rng, 128) * rsa::random_prime(rng, 128),
        rsa::random_prime(rng, 128) * rsa::random_prime(rng, 128));
  }
  const auto approx =
      analyze_traces(collect_traces(gcd::Variant::kApproximate, pairs, 128, 16));
  const auto binary =
      analyze_traces(collect_traces(gcd::Variant::kBinary, pairs, 128, 16));
  EXPECT_LT(approx.mean_distinct_addresses(), binary.mean_distinct_addresses());
}

TEST(ObliviousnessTest, CollectTracesRecordsIterationMarks) {
  Xoshiro256 rng(102);
  std::vector<std::pair<BigInt, BigInt>> pairs;
  pairs.emplace_back(rsa::random_prime(rng, 64) * rsa::random_prime(rng, 64),
                     rsa::random_prime(rng, 64) * rsa::random_prime(rng, 64));
  const auto traces = collect_traces(gcd::Variant::kFastBinary, pairs, 0, 8);
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_FALSE(traces[0].iteration_starts.empty());
  EXPECT_FALSE(traces[0].addresses.empty());
}

}  // namespace
}  // namespace bulkgcd::umm
