// Unit + property tests for the low-level limb-span kernels, cross-checked
// against GMP over all three limb widths.
#include "mp/span_ops.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "gmp_oracle.hpp"
#include "mp/bigint.hpp"

namespace bulkgcd::mp {
namespace {

using bulkgcd::Xoshiro256;
using bulkgcd::test::from_mpz;
using bulkgcd::test::gmp_gcd;
using bulkgcd::test::Mpz;
using bulkgcd::test::random_value;
using bulkgcd::test::to_mpz;

template <typename Limb>
class SpanOpsTest : public ::testing::Test {};

using LimbTypes = ::testing::Types<std::uint16_t, std::uint32_t, std::uint64_t>;
TYPED_TEST_SUITE(SpanOpsTest, LimbTypes);

TYPED_TEST(SpanOpsTest, NormalizedSizeStripsHighZeros) {
  using Limb = TypeParam;
  const Limb a[4] = {Limb{5}, Limb{0}, Limb{7}, Limb{0}};
  EXPECT_EQ(normalized_size(a, 4), 3u);
  const Limb z[3] = {Limb{0}, Limb{0}, Limb{0}};
  EXPECT_EQ(normalized_size(z, 3), 0u);
  EXPECT_EQ(normalized_size(a, 0), 0u);
}

TYPED_TEST(SpanOpsTest, CompareOrdersByValueNotStorage) {
  using Limb = TypeParam;
  const Limb a[2] = {Limb{1}, Limb{2}};
  const Limb b[2] = {Limb{2}, Limb{1}};
  EXPECT_EQ(compare(a, 2, b, 2), 1);   // high limb dominates
  EXPECT_EQ(compare(b, 2, a, 2), -1);
  EXPECT_EQ(compare(a, 2, a, 2), 0);
  const Limb c[1] = {Limb(~Limb{0})};
  EXPECT_EQ(compare(a, 2, c, 1), 1);   // more limbs wins
}

TYPED_TEST(SpanOpsTest, BitLengthMatchesDefinition) {
  using Limb = TypeParam;
  const Limb one[1] = {Limb{1}};
  EXPECT_EQ(bit_length(one, 1), 1u);
  const Limb v[2] = {Limb{0}, Limb{1}};
  EXPECT_EQ(bit_length(v, 2), std::size_t(limb_bits<Limb> + 1));
  EXPECT_EQ(bit_length(one, 0), 0u);
}

TYPED_TEST(SpanOpsTest, TrailingZeroBits) {
  using Limb = TypeParam;
  const Limb v[2] = {Limb{0}, Limb{4}};
  EXPECT_EQ(count_trailing_zero_bits(v, 2), std::size_t(limb_bits<Limb> + 2));
  const Limb odd[1] = {Limb{9}};
  EXPECT_EQ(count_trailing_zero_bits(odd, 1), 0u);
}

TYPED_TEST(SpanOpsTest, AddSubRoundTripRandom) {
  using Limb = TypeParam;
  using Big = BigIntT<Limb>;
  Xoshiro256 rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t bits_a = 1 + rng.below(300);
    const std::size_t bits_b = 1 + rng.below(300);
    Big a = random_value<Limb>(rng, bits_a);
    Big b = random_value<Limb>(rng, bits_b);
    Big sum = a + b;
    // Oracle check.
    Mpz expected;
    mpz_add(expected.get(), to_mpz(a).get(), to_mpz(b).get());
    EXPECT_EQ(to_mpz(sum), expected);
    // Round trip.
    EXPECT_EQ(sum - b, a);
    EXPECT_EQ(sum - a, b);
  }
}

TYPED_TEST(SpanOpsTest, MulMatchesGmp) {
  using Limb = TypeParam;
  using Big = BigIntT<Limb>;
  Xoshiro256 rng(12);
  for (int trial = 0; trial < 200; ++trial) {
    Big a = random_value<Limb>(rng, 1 + rng.below(400));
    Big b = random_value<Limb>(rng, 1 + rng.below(400));
    Mpz expected;
    mpz_mul(expected.get(), to_mpz(a).get(), to_mpz(b).get());
    EXPECT_EQ(to_mpz(a * b), expected);
  }
}

TYPED_TEST(SpanOpsTest, MulWordMatchesGmp) {
  using Limb = TypeParam;
  using Big = BigIntT<Limb>;
  Xoshiro256 rng(13);
  for (int trial = 0; trial < 100; ++trial) {
    Big a = random_value<Limb>(rng, 1 + rng.below(200));
    const Limb w = Limb(rng());
    std::vector<Limb> out(a.size() + 1);
    out.resize(mul_word(out.data(), a.data(), a.size(), w));
    Mpz expected;
    mpz_mul_ui(expected.get(), to_mpz(a).get(), (unsigned long)(w));
    EXPECT_EQ(to_mpz(Big::from_limbs(out)), expected);
  }
}

TYPED_TEST(SpanOpsTest, ShiftsMatchGmp) {
  using Limb = TypeParam;
  using Big = BigIntT<Limb>;
  Xoshiro256 rng(14);
  for (int trial = 0; trial < 200; ++trial) {
    Big a = random_value<Limb>(rng, 1 + rng.below(300));
    const std::size_t shift = rng.below(3 * limb_bits<Limb> + 1);
    Mpz left, right;
    mpz_mul_2exp(left.get(), to_mpz(a).get(), shift);
    mpz_fdiv_q_2exp(right.get(), to_mpz(a).get(), shift);
    EXPECT_EQ(to_mpz(a << shift), left);
    EXPECT_EQ(to_mpz(a >> shift), right);
  }
}

TYPED_TEST(SpanOpsTest, DivRemMatchesGmpRandom) {
  using Limb = TypeParam;
  using Big = BigIntT<Limb>;
  Xoshiro256 rng(15);
  for (int trial = 0; trial < 400; ++trial) {
    const std::size_t bits_a = 1 + rng.below(500);
    const std::size_t bits_b = 1 + rng.below(500);
    Big a = random_value<Limb>(rng, bits_a);
    Big b = random_value<Limb>(rng, bits_b);
    auto [q, r] = Big::divmod(a, b);
    Mpz eq, er;
    mpz_fdiv_qr(eq.get(), er.get(), to_mpz(a).get(), to_mpz(b).get());
    ASSERT_EQ(to_mpz(q), eq) << "bits_a=" << bits_a << " bits_b=" << bits_b;
    ASSERT_EQ(to_mpz(r), er);
    // Identity a = q*b + r, r < b.
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r, b);
  }
}

TYPED_TEST(SpanOpsTest, DivRemQhatCorrectionCases) {
  // Adversarial divisors with all-ones top limbs exercise the q̂ add-back
  // branch of Knuth D.
  using Limb = TypeParam;
  using Big = BigIntT<Limb>;
  const Limb ones = Limb(~Limb{0});
  Xoshiro256 rng(16);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t nb = 2 + rng.below(4);
    std::vector<Limb> blimbs(nb, ones);
    blimbs[0] = Limb(rng());  // vary the low limb
    Big b = Big::from_limbs(blimbs);
    // a = b * k + delta near the overflow boundary
    Big k = random_value<Limb>(rng, 1 + rng.below(64));
    Big a = b * k;
    if (trial % 2 == 0) a += random_value<Limb>(rng, 1 + rng.below(b.bit_length()));
    auto [q, r] = Big::divmod(a, b);
    Mpz eq, er;
    mpz_fdiv_qr(eq.get(), er.get(), to_mpz(a).get(), to_mpz(b).get());
    ASSERT_EQ(to_mpz(q), eq);
    ASSERT_EQ(to_mpz(r), er);
  }
}

TYPED_TEST(SpanOpsTest, DivRemWordAgainstFullDiv) {
  using Limb = TypeParam;
  using Big = BigIntT<Limb>;
  Xoshiro256 rng(17);
  for (int trial = 0; trial < 100; ++trial) {
    Big a = random_value<Limb>(rng, 1 + rng.below(300));
    Limb w = Limb(rng());
    if (w == 0) w = 1;
    std::vector<Limb> q(a.size());
    const Limb rem = divrem_word(q.data(), a.data(), a.size(), w);
    std::vector<Limb> wl = {w};
    auto [eq, er] = Big::divmod(a, Big::from_limbs(wl));
    EXPECT_EQ(Big::from_limbs(q), eq);
    EXPECT_EQ(Big(std::uint64_t(rem)) % Big::from_limbs(wl),
              er);  // rem may exceed 64 bits only for u64 limbs
  }
}

TYPED_TEST(SpanOpsTest, StripTrailingZeros) {
  using Limb = TypeParam;
  using Big = BigIntT<Limb>;
  Xoshiro256 rng(18);
  for (int trial = 0; trial < 100; ++trial) {
    Big odd = random_value<Limb>(rng, 1 + rng.below(200));
    if (odd.is_even()) odd += Big(1);
    const std::size_t shift = rng.below(2 * limb_bits<Limb>);
    Big shifted = odd << shift;
    shifted.strip_trailing_zeros();
    EXPECT_EQ(shifted, odd);
  }
  Big zero;
  zero.strip_trailing_zeros();
  EXPECT_TRUE(zero.is_zero());
}

TYPED_TEST(SpanOpsTest, DivisionByLargerGivesZeroQuotient) {
  using Limb = TypeParam;
  using Big = BigIntT<Limb>;
  Big a(5);
  Big b(7);
  auto [q, r] = Big::divmod(a, b);
  EXPECT_TRUE(q.is_zero());
  EXPECT_EQ(r, a);
}

TYPED_TEST(SpanOpsTest, SelfDivisionIsOneRemainderZero) {
  using Limb = TypeParam;
  using Big = BigIntT<Limb>;
  Xoshiro256 rng(19);
  for (int trial = 0; trial < 50; ++trial) {
    Big a = random_value<Limb>(rng, 1 + rng.below(300));
    auto [q, r] = Big::divmod(a, a);
    EXPECT_EQ(q, Big(1));
    EXPECT_TRUE(r.is_zero());
  }
}

}  // namespace
}  // namespace bulkgcd::mp
