// Weak-corpus generator tests: ground truth really holds, both backends
// produce valid primes, generation is deterministic in the seed.
#include "rsa/corpus.hpp"

#include <gtest/gtest.h>

#include <set>

#include "gmp_oracle.hpp"
#include "rsa/prime.hpp"

namespace bulkgcd::rsa {
namespace {

using bulkgcd::Xoshiro256;
using bulkgcd::test::gmp_gcd;
using bulkgcd::test::to_mpz;
using mp::BigInt;

TEST(CorpusTest, GroundTruthPairsShareExactlyTheRecordedPrime) {
  CorpusSpec spec;
  spec.count = 24;
  spec.modulus_bits = 256;
  spec.weak_pairs = 4;
  spec.seed = 7;
  const WeakCorpus corpus = generate_corpus(spec);
  ASSERT_EQ(corpus.moduli.size(), 24u);
  ASSERT_EQ(corpus.weak.size(), 4u);
  for (const auto& weak : corpus.weak) {
    ASSERT_LT(weak.first, weak.second);
    const BigInt g = gmp_gcd(corpus.moduli[weak.first], corpus.moduli[weak.second]);
    EXPECT_EQ(g, weak.shared_prime);
    EXPECT_EQ(weak.shared_prime.bit_length(), 128u);
  }
}

TEST(CorpusTest, NonWeakPairsAreCoprime) {
  CorpusSpec spec;
  spec.count = 16;
  spec.modulus_bits = 128;
  spec.weak_pairs = 2;
  spec.seed = 8;
  const WeakCorpus corpus = generate_corpus(spec);
  std::set<std::pair<std::size_t, std::size_t>> weak_set;
  for (const auto& weak : corpus.weak) weak_set.insert({weak.first, weak.second});
  for (std::size_t i = 0; i < corpus.moduli.size(); ++i) {
    for (std::size_t j = i + 1; j < corpus.moduli.size(); ++j) {
      const BigInt g = gmp_gcd(corpus.moduli[i], corpus.moduli[j]);
      if (weak_set.count({i, j})) {
        EXPECT_GT(g, BigInt(1));
      } else {
        EXPECT_EQ(g, BigInt(1)) << "pair " << i << "," << j;
      }
    }
  }
}

TEST(CorpusTest, ModuliHaveExactBitLength) {
  CorpusSpec spec;
  spec.count = 8;
  spec.modulus_bits = 192;
  spec.weak_pairs = 1;
  const WeakCorpus corpus = generate_corpus(spec);
  for (const auto& n : corpus.moduli) {
    EXPECT_EQ(n.bit_length(), 192u);
    EXPECT_TRUE(n.is_odd());
  }
}

TEST(CorpusTest, DeterministicInSeed) {
  CorpusSpec spec;
  spec.count = 8;
  spec.modulus_bits = 128;
  spec.weak_pairs = 1;
  spec.seed = 99;
  const WeakCorpus a = generate_corpus(spec);
  const WeakCorpus b = generate_corpus(spec);
  EXPECT_EQ(a.moduli, b.moduli);
  spec.seed = 100;
  const WeakCorpus c = generate_corpus(spec);
  EXPECT_NE(a.moduli, c.moduli);
}

TEST(CorpusTest, ValidatesSpec) {
  CorpusSpec spec;
  spec.count = 4;
  spec.weak_pairs = 3;  // needs 6 moduli
  EXPECT_THROW(generate_corpus(spec), std::invalid_argument);
  spec = {};
  spec.count = 1;
  EXPECT_THROW(generate_corpus(spec), std::invalid_argument);
  spec = {};
  spec.modulus_bits = 129;
  EXPECT_THROW(generate_corpus(spec), std::invalid_argument);
}

TEST(CorpusBackendTest, NativeAndGmpPrimesAreBothPrime) {
  if (!gmp_backend_available()) GTEST_SKIP() << "GMP backend not compiled in";
  Xoshiro256 rng(9);
  for (const CorpusBackend backend : {CorpusBackend::kNative, CorpusBackend::kGmp}) {
    Xoshiro256 stream = rng.split();
    const auto primes = generate_primes(stream, 6, 128, backend);
    ASSERT_EQ(primes.size(), 6u);
    for (const auto& p : primes) {
      EXPECT_EQ(p.bit_length(), 128u);
      EXPECT_TRUE(p.bit(126));  // top two bits forced
      EXPECT_NE(mpz_probab_prime_p(to_mpz(p).get(), 32), 0) << p.to_dec();
    }
  }
}

TEST(CorpusBackendTest, AutoSelectsNativeForSmallModuli) {
  // kAuto must work regardless of GMP availability for small sizes.
  Xoshiro256 rng(10);
  const auto primes = generate_primes(rng, 2, 64, CorpusBackend::kAuto);
  ASSERT_EQ(primes.size(), 2u);
  Xoshiro256 check(11);
  EXPECT_TRUE(is_probable_prime(primes[0], check));
}

TEST(LowEntropyCorpusTest, GroundTruthMatchesActualGcds) {
  LowEntropySpec spec;
  spec.count = 20;
  spec.modulus_bits = 128;
  spec.pool_size = 12;  // heavy collisions
  spec.seed = 41;
  const LowEntropyCorpus corpus = generate_low_entropy_corpus(spec);
  ASSERT_EQ(corpus.moduli.size(), 20u);
  EXPECT_LE(corpus.distinct_primes_used, spec.pool_size);
  std::set<std::pair<std::size_t, std::size_t>> weak(
      corpus.weak_pairs.begin(), corpus.weak_pairs.end());
  for (std::size_t i = 0; i < corpus.moduli.size(); ++i) {
    for (std::size_t j = i + 1; j < corpus.moduli.size(); ++j) {
      const BigInt g = gmp_gcd(corpus.moduli[i], corpus.moduli[j]);
      EXPECT_EQ(g > BigInt(1), weak.count({i, j}) == 1)
          << "pair " << i << "," << j;
    }
  }
}

TEST(LowEntropyCorpusTest, BirthdayStatisticsMatchExpectation) {
  // Mean observed weak pairs over several seeds must track the closed form.
  LowEntropySpec spec;
  spec.count = 24;
  spec.modulus_bits = 64;
  spec.pool_size = 64;
  const double expected = expected_weak_pairs(spec);
  double observed = 0;
  const int kRuns = 12;
  for (int run = 0; run < kRuns; ++run) {
    spec.seed = 100 + run;
    observed += double(generate_low_entropy_corpus(spec).weak_pairs.size());
  }
  observed /= kRuns;
  EXPECT_NEAR(observed, expected, std::max(3.0, 0.35 * expected));
  EXPECT_GT(expected, 10.0);  // the regime is collision-rich by design
}

TEST(LowEntropyCorpusTest, LargePoolMeansFewCollisions) {
  LowEntropySpec spec;
  spec.count = 12;
  spec.modulus_bits = 64;
  spec.pool_size = 4096;
  spec.seed = 7;
  EXPECT_LT(expected_weak_pairs(spec), 0.2);
  const LowEntropyCorpus corpus = generate_low_entropy_corpus(spec);
  EXPECT_LE(corpus.weak_pairs.size(), 1u);
}

TEST(LowEntropyCorpusTest, ValidatesSpec) {
  LowEntropySpec spec;
  spec.pool_size = 1;
  EXPECT_THROW(generate_low_entropy_corpus(spec), std::invalid_argument);
  spec = {};
  spec.modulus_bits = 65;
  EXPECT_THROW(generate_low_entropy_corpus(spec), std::invalid_argument);
}

}  // namespace
}  // namespace bulkgcd::rsa
