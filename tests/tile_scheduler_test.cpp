// Work-stealing tile scheduler tests: partition/chunk-boundary properties,
// exactly-once execution under stealing, skewed-load steal traffic, and the
// headline determinism contract — the sharded sweep returns bit-identical
// hits, statistics, and telemetry counters for ANY worker count × tile
// shape × backend combination.
#include "bulk/tile_scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bulk/allpairs.hpp"
#include "core/thread_pool.hpp"
#include "gmp_oracle.hpp"
#include "obs/metrics.hpp"
#include "rsa/corpus.hpp"

namespace bulkgcd::bulk {
namespace {

using mp::BigInt;

// ---- geometry / chunk-boundary properties ---------------------------------

TEST(TileSchedulerTest, TilesPartitionTheRangeExactly) {
  for (const std::size_t total : {0u, 1u, 5u, 63u, 64u, 65u, 257u}) {
    for (const std::size_t tile_items : {0u, 1u, 3u, 7u, 64u, 1000u}) {
      for (const std::size_t workers : {1u, 2u, 4u, 9u}) {
        const TileScheduler sched(total, tile_items, workers);
        SCOPED_TRACE("total=" + std::to_string(total) +
                     " tile_items=" + std::to_string(tile_items) +
                     " workers=" + std::to_string(workers));
        if (total == 0) {
          EXPECT_EQ(sched.tile_count(), 0u);
          continue;
        }
        // Tiles chain without gaps or overlap and cover [0, total).
        std::size_t expect_lo = 0;
        for (std::size_t t = 0; t < sched.tile_count(); ++t) {
          const TileRange r = sched.tile(t);
          EXPECT_EQ(r.index, t);
          EXPECT_EQ(r.lo, expect_lo);
          EXPECT_LT(r.lo, r.hi);
          EXPECT_LE(r.hi - r.lo, sched.tile_items());
          expect_lo = r.hi;
        }
        EXPECT_EQ(expect_lo, total);
        // Every tile but the last is exactly tile_items wide.
        for (std::size_t t = 0; t + 1 < sched.tile_count(); ++t) {
          EXPECT_EQ(sched.tile(t).hi - sched.tile(t).lo, sched.tile_items());
        }
      }
    }
  }
}

TEST(TileSchedulerTest, HomeAssignmentIsContiguousAndBalanced) {
  for (const std::size_t total : {1u, 16u, 63u, 100u}) {
    for (const std::size_t workers : {1u, 2u, 3u, 4u, 7u, 200u}) {
      const TileScheduler sched(total, /*tile_items=*/1, workers);
      SCOPED_TRACE("total=" + std::to_string(total) +
                   " workers=" + std::to_string(workers));
      std::vector<std::size_t> owned(sched.worker_count(), 0);
      std::size_t prev = 0;
      for (std::size_t t = 0; t < sched.tile_count(); ++t) {
        const std::size_t w = sched.home_worker(t);
        ASSERT_LT(w, sched.worker_count());
        EXPECT_GE(w, prev);  // contiguous runs: owner is non-decreasing
        prev = w;
        ++owned[w];
      }
      // Balanced: per-worker counts differ by at most one tile.
      std::size_t lo = sched.tile_count(), hi = 0;
      for (const std::size_t n : owned) {
        lo = std::min(lo, n);
        hi = std::max(hi, n);
      }
      if (sched.tile_count() >= sched.worker_count()) {
        EXPECT_LE(hi - lo, 1u);
      } else {
        EXPECT_LE(hi, 1u);
      }
    }
  }
}

TEST(TileSchedulerTest, AutoTileItemsGiveEachWorkerStealGranularity) {
  // ~4 tiles per worker, clamped to [1, total].
  EXPECT_EQ(TileScheduler::auto_tile_items(0, 4), 1u);
  EXPECT_EQ(TileScheduler::auto_tile_items(3, 4), 1u);
  EXPECT_EQ(TileScheduler::auto_tile_items(1600, 4), 100u);
  const TileScheduler sched(1600, 0, 4);
  EXPECT_EQ(sched.tile_count(), 16u);
}

// ---- exactly-once execution under stealing --------------------------------

TEST(TileSchedulerTest, RunVisitsEveryItemExactlyOnce) {
  for (const std::size_t total : {0u, 1u, 7u, 64u, 257u}) {
    for (const std::size_t tile_items : {0u, 1u, 3u, 8u}) {
      for (const std::size_t workers : {1u, 2u, 4u}) {
        SCOPED_TRACE("total=" + std::to_string(total) +
                     " tile_items=" + std::to_string(tile_items) +
                     " workers=" + std::to_string(workers));
        ThreadPool pool(workers);
        const TileScheduler sched(total, tile_items, workers);
        std::vector<std::atomic<int>> visits(total);
        for (auto& v : visits) v.store(0);
        const TileSchedulerStats stats =
            sched.run(&pool, [&](std::size_t worker, const TileRange& t) {
              ASSERT_LT(worker, sched.worker_count());
              for (std::size_t i = t.lo; i < t.hi; ++i) {
                visits[i].fetch_add(1);
              }
            });
        EXPECT_EQ(stats.tiles_executed, sched.tile_count());
        for (std::size_t i = 0; i < total; ++i) {
          EXPECT_EQ(visits[i].load(), 1) << "item " << i;
        }
      }
    }
  }
}

TEST(TileSchedulerTest, NullPoolAndNestedCallsRunInline) {
  const TileScheduler sched(32, 4, 4);
  // Null pool: serial on the caller, worker id always 0.
  std::size_t executed = 0;
  sched.run(nullptr, [&](std::size_t worker, const TileRange&) {
    EXPECT_EQ(worker, 0u);
    ++executed;
  });
  EXPECT_EQ(executed, sched.tile_count());
  // From inside a pool worker (the nested case), the schedule degrades to
  // inline execution instead of deadlocking on a saturated pool.
  ThreadPool pool(2);
  std::atomic<std::size_t> nested{0};
  pool.submit([&] {
      sched.run(&pool, [&](std::size_t worker, const TileRange&) {
        EXPECT_EQ(worker, 0u);
        nested.fetch_add(1);
      });
    }).get();
  EXPECT_EQ(nested.load(), sched.tile_count());
}

TEST(TileSchedulerTest, BodyExceptionIsRethrownOnce) {
  ThreadPool pool(4);
  const TileScheduler sched(64, 1, 4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      sched.run(&pool,
                [&](std::size_t, const TileRange& t) {
                  ran.fetch_add(1);
                  if (t.index == 5) throw std::runtime_error("tile 5 failed");
                }),
      std::runtime_error);
  // The abort flag stops remaining tiles; at minimum the throwing tile ran.
  EXPECT_GE(ran.load(), 1);
}

TEST(TileSchedulerTest, SkewedLoadTriggersStealsAndStaysExactlyOnce) {
  // Worker 0's home run is artificially slow; the other workers drain their
  // own tiles and must steal from worker 0's back to finish the schedule.
  ThreadPool pool(4);
  const TileScheduler sched(64, /*tile_items=*/1, 4);
  std::vector<std::atomic<int>> visits(sched.total_items());
  for (auto& v : visits) v.store(0);
  const TileSchedulerStats stats =
      sched.run(&pool, [&](std::size_t, const TileRange& t) {
        if (sched.home_worker(t.index) == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        for (std::size_t i = t.lo; i < t.hi; ++i) visits[i].fetch_add(1);
      });
  EXPECT_EQ(stats.tiles_executed, sched.tile_count());
  for (std::size_t i = 0; i < sched.total_items(); ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "item " << i;
  }
  EXPECT_GE(stats.steals, 1u);
  EXPECT_GE(stats.tiles_stolen, stats.steals);
}

// ---- determinism of the sharded sweep -------------------------------------

rsa::WeakCorpus sweep_corpus() {
  rsa::CorpusSpec spec;
  spec.count = 96;
  spec.modulus_bits = 128;
  spec.weak_pairs = 3;
  spec.seed = 77;
  return rsa::generate_corpus(spec);
}

void expect_same_simt(const SimtStats& a, const SimtStats& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.warp_rounds, b.warp_rounds);
  EXPECT_EQ(a.lane_iterations, b.lane_iterations);
  EXPECT_EQ(a.branch_slots, b.branch_slots);
  EXPECT_EQ(a.divergent_warp_rounds, b.divergent_warp_rounds);
  EXPECT_EQ(a.active_lane_slots, b.active_lane_slots);
  EXPECT_EQ(a.lane_slots, b.lane_slots);
  EXPECT_EQ(a.gcd.iterations, b.gcd.iterations);
  EXPECT_EQ(a.gcd.swaps, b.gcd.swaps);
  EXPECT_EQ(a.gcd.divisions, b.gcd.divisions);
  EXPECT_EQ(a.gcd.approx_cases, b.gcd.approx_cases);
}

void expect_same_hits(const std::vector<FactorHit>& a,
                      const std::vector<FactorHit>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].i, b[k].i);
    EXPECT_EQ(a[k].j, b[k].j);
    EXPECT_EQ(a[k].factor, b[k].factor);
    EXPECT_EQ(a[k].full_modulus, b[k].full_modulus);
  }
}

std::map<std::string, std::uint64_t> counter_map(
    const obs::MetricsRegistry& registry) {
  std::map<std::string, std::uint64_t> out;
  for (const auto& c : registry.snapshot().counters) out[c.name] = c.value;
  return out;
}

TEST(ShardedSweepTest, BitIdenticalAcrossWorkersTilesAndBackends) {
  const rsa::WeakCorpus corpus = sweep_corpus();
  for (const BulkBackend backend :
       {BulkBackend::kLockstep, BulkBackend::kStaged, BulkBackend::kVector}) {
    AllPairsConfig ref_cfg;
    ref_cfg.group_size = 16;
    ref_cfg.backend = backend;
    ref_cfg.staged = backend != BulkBackend::kLockstep;
    ref_cfg.pool_threads = 1;
    obs::MetricsRegistry ref_registry;
    ref_cfg.metrics = &ref_registry;
    const AllPairsResult ref = all_pairs_gcd(corpus.moduli, ref_cfg);
    ASSERT_GE(ref.hits.size(), 3u);

    for (const std::size_t workers : {2u, 4u}) {
      for (const std::size_t tile_blocks : {0u, 1u, 5u}) {
        SCOPED_TRACE(std::string("backend=") + to_string(backend) +
                     " workers=" + std::to_string(workers) +
                     " tile_blocks=" + std::to_string(tile_blocks));
        AllPairsConfig cfg = ref_cfg;
        cfg.pool_threads = workers;
        cfg.tile_blocks = tile_blocks;
        obs::MetricsRegistry registry;
        cfg.metrics = &registry;
        const AllPairsResult sharded = all_pairs_gcd(corpus.moduli, cfg);
        expect_same_hits(ref.hits, sharded.hits);
        EXPECT_EQ(ref.pairs_tested, sharded.pairs_tested);
        EXPECT_EQ(ref.blocks_run, sharded.blocks_run);
        expect_same_simt(ref.simt, sharded.simt);
        EXPECT_EQ(ref.scalar.iterations, sharded.scalar.iterations);
        // The full telemetry story — every scan_*/simt_*/gcd_* counter the
        // sweep feeds — must match the single-worker run value for value.
        EXPECT_EQ(counter_map(ref_registry), counter_map(registry));
      }
    }
  }
}

TEST(ShardedSweepTest, HitsMatchTheGmpOracle) {
  const rsa::WeakCorpus corpus = sweep_corpus();
  AllPairsConfig cfg;
  cfg.group_size = 16;
  cfg.pool_threads = 4;
  cfg.tile_blocks = 2;
  const AllPairsResult result = all_pairs_gcd(corpus.moduli, cfg);
  ASSERT_GE(result.hits.size(), 3u);
  for (const FactorHit& hit : result.hits) {
    EXPECT_EQ(hit.factor, test::gmp_gcd(corpus.moduli[hit.i],
                                        corpus.moduli[hit.j]))
        << "pair (" << hit.i << ", " << hit.j << ")";
  }
}

TEST(ShardedSweepTest, ProbeIncrementalBitIdenticalAcrossWorkersAndTiles) {
  const rsa::WeakCorpus corpus = sweep_corpus();
  // A candidate that shares a prime with a corpus member: one of the planted
  // weak moduli probed against the rest of the corpus.
  const BigInt candidate = corpus.moduli[corpus.weak[0].first];
  std::vector<BigInt> rest;
  for (std::size_t i = 0; i < corpus.moduli.size(); ++i) {
    if (i != corpus.weak[0].first) rest.push_back(corpus.moduli[i]);
  }

  AllPairsConfig ref_cfg;
  ref_cfg.group_size = 16;
  ref_cfg.pool_threads = 1;
  ProbeStats ref_stats;
  const auto ref = probe_incremental(candidate, rest, ref_cfg, &ref_stats);
  ASSERT_FALSE(ref.empty());

  for (const std::size_t workers : {2u, 4u}) {
    for (const std::size_t tile_blocks : {0u, 1u, 3u}) {
      SCOPED_TRACE("workers=" + std::to_string(workers) +
                   " tile_blocks=" + std::to_string(tile_blocks));
      AllPairsConfig cfg = ref_cfg;
      cfg.pool_threads = workers;
      cfg.tile_blocks = tile_blocks;
      ProbeStats stats;
      const auto hits = probe_incremental(candidate, rest, cfg, &stats);
      ASSERT_EQ(ref.size(), hits.size());
      for (std::size_t k = 0; k < hits.size(); ++k) {
        EXPECT_EQ(ref[k].corpus_index, hits[k].corpus_index);
        EXPECT_EQ(ref[k].factor, hits[k].factor);
        EXPECT_EQ(ref[k].full_modulus, hits[k].full_modulus);
        EXPECT_EQ(hits[k].factor,
                  test::gmp_gcd(candidate, rest[hits[k].corpus_index]));
      }
      EXPECT_EQ(ref_stats.pairs_tested, stats.pairs_tested);
      expect_same_simt(ref_stats.simt, stats.simt);
    }
  }
}

TEST(ShardedSweepTest, ScalarEngineShardsBitIdenticallyToo) {
  const rsa::WeakCorpus corpus = sweep_corpus();
  AllPairsConfig ref_cfg;
  ref_cfg.engine = EngineKind::kScalar;
  ref_cfg.group_size = 16;
  ref_cfg.pool_threads = 1;
  const AllPairsResult ref = all_pairs_gcd(corpus.moduli, ref_cfg);
  ASSERT_GE(ref.hits.size(), 3u);
  for (const std::size_t workers : {2u, 4u}) {
    AllPairsConfig cfg = ref_cfg;
    cfg.pool_threads = workers;
    const AllPairsResult sharded = all_pairs_gcd(corpus.moduli, cfg);
    expect_same_hits(ref.hits, sharded.hits);
    EXPECT_EQ(ref.pairs_tested, sharded.pairs_tested);
    EXPECT_EQ(ref.scalar.iterations, sharded.scalar.iterations);
    EXPECT_EQ(ref.scalar.swaps, sharded.scalar.swaps);
  }
}

}  // namespace
}  // namespace bulkgcd::bulk
