// Reference-implementation tests, including exact reproduction of the
// paper's worked-example Tables I, II and III (d = 4-bit words).
#include "gcd/reference.hpp"

#include <gtest/gtest.h>

#include "gmp_oracle.hpp"

namespace bulkgcd::gcd {
namespace {

using bulkgcd::Xoshiro256;
using bulkgcd::test::gmp_gcd;
using bulkgcd::test::random_odd;
using mp::BigInt;

const BigInt kX = BigInt::from_dec("1043915");
const BigInt kY = BigInt::from_dec("768955");

TEST(ReferenceTableOne, BinaryEuclidean24Iterations) {
  const RefRun run = ref_binary(kX, kY, {0, true});
  EXPECT_EQ(run.gcd, BigInt(5));
  EXPECT_EQ(run.stats.iterations, 24u);
  // First rows of Table I: X, Y then X ← (X−Y)/2 picture.
  ASSERT_GE(run.trace.size(), 2u);
  EXPECT_EQ(run.trace[0].x.to_binary_grouped(),
            "1111,1110,1101,1100,1011");
  EXPECT_EQ(run.trace[0].y.to_binary_grouped(),
            "1011,1011,1011,1011,1011");
}

TEST(ReferenceTableOne, FastBinaryEuclidean16Iterations) {
  const RefRun run = ref_fast_binary(kX, kY, {0, true});
  EXPECT_EQ(run.gcd, BigInt(5));
  EXPECT_EQ(run.stats.iterations, 16u);
  // Row 2 of Table I (right): after one step Y = 0100,0011,0010,0001.
  ASSERT_GE(run.trace.size(), 2u);
  EXPECT_EQ(run.trace[1].y.to_binary_grouped(), "0100,0011,0010,0001");
}

TEST(ReferenceTableTwo, OriginalEuclideanQuotients) {
  const RefRun run = ref_original(kX, kY, {0, true});
  EXPECT_EQ(run.gcd, BigInt(5));
  EXPECT_EQ(run.stats.iterations, 11u);
  // Table II quotient column: 1, 2, 1, 3, 1, 10(bin)=2... The paper prints
  // quotients in binary; decimal values of the first rows:
  const std::uint64_t expected_q[] = {1, 2, 1, 3, 1, 10, 1, 83, 1, 4, 2};
  ASSERT_EQ(run.trace.size(), 11u);
  for (std::size_t i = 0; i < run.trace.size(); ++i) {
    EXPECT_EQ(run.trace[i].quotient, expected_q[i]) << "row " << i + 1;
  }
}

TEST(ReferenceTableTwo, FastEuclidean8Iterations) {
  const RefRun run = ref_fast(kX, kY, {0, true});
  EXPECT_EQ(run.gcd, BigInt(5));
  EXPECT_EQ(run.stats.iterations, 8u);
  // Table II (right) quotient column, forced odd: 1, 43, 9, 11, 1, 1, 1, 5.
  const std::uint64_t expected_q[] = {1, 43, 9, 11, 1, 1, 1, 5};
  ASSERT_EQ(run.trace.size(), 8u);
  for (std::size_t i = 0; i < run.trace.size(); ++i) {
    EXPECT_EQ(run.trace[i].quotient, expected_q[i]) << "row " << i + 1;
  }
}

TEST(ReferenceTableThree, ApproximateEuclideanAtD4) {
  // Table III: d = 4, D = 16; 9 iterations; the (α, β) and case columns.
  const RefRun run = ref_approximate(kX, kY, 4, {0, true});
  EXPECT_EQ(run.gcd, BigInt(5));
  EXPECT_EQ(run.stats.iterations, 9u);

  struct Row {
    std::uint64_t alpha;
    std::size_t beta;
    ApproxCase which;
  };
  const Row expected[] = {
      {1, 0, ApproxCase::k4A},  {2, 1, ApproxCase::k4A},
      {3, 0, ApproxCase::k4A},  {7, 0, ApproxCase::k4B},
      {1, 0, ApproxCase::k4A},  {3, 0, ApproxCase::k3B},
      {1, 0, ApproxCase::k1},   {11, 0, ApproxCase::k1},
      {3, 0, ApproxCase::k1},
  };
  ASSERT_EQ(run.trace.size(), 9u);
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(run.trace[i].alpha, expected[i].alpha) << "row " << i + 1;
    EXPECT_EQ(run.trace[i].beta, expected[i].beta) << "row " << i + 1;
    EXPECT_EQ(run.trace[i].which, expected[i].which) << "row " << i + 1;
  }
  // Row 3 of Table III: X = 1110,0110,1010,1111 after the β=1 step.
  EXPECT_EQ(run.trace[2].x.to_binary_grouped(), "1110,0110,1010,1111");
}

TEST(ReferenceCorrectness, AllVariantsMatchGmpAcrossWordSizes) {
  Xoshiro256 rng(71);
  for (int trial = 0; trial < 60; ++trial) {
    const BigInt x = random_odd<std::uint32_t>(rng, 1 + rng.below(250));
    const BigInt y = random_odd<std::uint32_t>(rng, 1 + rng.below(250));
    const BigInt expected = gmp_gcd(x, y);
    EXPECT_EQ(ref_original(x, y).gcd, expected);
    EXPECT_EQ(ref_fast(x, y).gcd, expected);
    EXPECT_EQ(ref_binary(x, y).gcd, expected);
    EXPECT_EQ(ref_fast_binary(x, y).gcd, expected);
    for (const unsigned d : {4u, 8u, 16u, 32u}) {
      EXPECT_EQ(ref_approximate(x, y, d).gcd, expected) << "d=" << d;
    }
  }
}

TEST(ReferenceCorrectness, ApproximateIterationsShrinkWithWordSize) {
  // Larger d gives better quotient approximations, hence fewer iterations
  // (on average) — the rationale for the paper's choice d = 32.
  Xoshiro256 rng(72);
  std::uint64_t iters_by_d[4] = {0, 0, 0, 0};
  const unsigned ds[4] = {4, 8, 16, 32};
  for (int trial = 0; trial < 25; ++trial) {
    const BigInt x = random_odd<std::uint32_t>(rng, 256);
    const BigInt y = random_odd<std::uint32_t>(rng, 256);
    for (int k = 0; k < 4; ++k) {
      iters_by_d[k] += ref_approximate(x, y, ds[k]).stats.iterations;
    }
  }
  EXPECT_GT(iters_by_d[0], iters_by_d[1]);
  EXPECT_GT(iters_by_d[1], iters_by_d[2]);
  // The d=16 → d=32 gap is tiny (both approximations are already near-exact,
  // Table IV's (E)−(B) column); allow sampling noise.
  EXPECT_LE(double(iters_by_d[3]), 1.01 * double(iters_by_d[2]));
}

TEST(ReferenceCorrectness, FastAndApproximateIterationCountsNearlyEqual) {
  // Table IV: (E) − (B) is 0.001%–0.016% — approximate quotients are almost
  // as good as exact ones at d = 32.
  Xoshiro256 rng(73);
  std::uint64_t fast_total = 0, approx_total = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const BigInt x = random_odd<std::uint32_t>(rng, 512);
    const BigInt y = random_odd<std::uint32_t>(rng, 512);
    fast_total += ref_fast(x, y).stats.iterations;
    approx_total += ref_approximate(x, y, 32).stats.iterations;
  }
  EXPECT_GE(approx_total, fast_total);
  EXPECT_LE(double(approx_total - fast_total), 0.001 * double(fast_total));
}

TEST(ReferenceCorrectness, EarlyTerminateAgreesWithFullRunOnVerdict) {
  Xoshiro256 rng(74);
  for (int trial = 0; trial < 30; ++trial) {
    const BigInt x = random_odd<std::uint32_t>(rng, 256);
    const BigInt y = random_odd<std::uint32_t>(rng, 256);
    const RefRun early = ref_approximate(x, y, 32, {128, false});
    const BigInt g = gmp_gcd(x, y);
    if (early.early_coprime) {
      EXPECT_LT(g.bit_length(), 128u);  // no shared 128-bit factor
    } else {
      EXPECT_EQ(early.gcd, g);
    }
  }
}

TEST(ReferenceValidation, RefApproxRejectsBadWordSize) {
  EXPECT_THROW(ref_approx(BigInt(10), BigInt(3), 1), std::invalid_argument);
  EXPECT_THROW(ref_approx(BigInt(10), BigInt(3), 33), std::invalid_argument);
}

}  // namespace
}  // namespace bulkgcd::gcd
