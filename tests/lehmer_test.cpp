// Lehmer's GCD (extension baseline): correctness against GMP across sizes,
// worst-case inputs, and the machine-word-work claim (few multiword
// fallbacks on random inputs).
#include "gcd/lehmer.hpp"

#include <gtest/gtest.h>

#include "gmp_oracle.hpp"

namespace bulkgcd::gcd {
namespace {

using bulkgcd::Xoshiro256;
using bulkgcd::test::gmp_gcd;
using bulkgcd::test::random_value;
using mp::BigInt;

TEST(LehmerTest, MatchesGmpOnRandomInputs) {
  Xoshiro256 rng(141);
  for (int trial = 0; trial < 300; ++trial) {
    const BigInt x = random_value<std::uint32_t>(rng, 1 + rng.below(2000));
    const BigInt y = random_value<std::uint32_t>(rng, 1 + rng.below(2000));
    EXPECT_EQ(gcd_lehmer(x, y), gmp_gcd(x, y))
        << x.to_hex() << " " << y.to_hex();
  }
}

TEST(LehmerTest, SharedFactorInputs) {
  Xoshiro256 rng(142);
  for (int trial = 0; trial < 60; ++trial) {
    const BigInt g = random_value<std::uint32_t>(rng, 1 + rng.below(400));
    const BigInt x = g * random_value<std::uint32_t>(rng, 1 + rng.below(400));
    const BigInt y = g * random_value<std::uint32_t>(rng, 1 + rng.below(400));
    EXPECT_EQ(gcd_lehmer(x, y), gmp_gcd(x, y));
  }
}

TEST(LehmerTest, EdgeCases) {
  EXPECT_EQ(gcd_lehmer(BigInt(), BigInt()), BigInt());
  EXPECT_EQ(gcd_lehmer(BigInt(42), BigInt()), BigInt(42));
  EXPECT_EQ(gcd_lehmer(BigInt(), BigInt(42)), BigInt(42));
  EXPECT_EQ(gcd_lehmer(BigInt(1), BigInt(1)), BigInt(1));
  Xoshiro256 rng(143);
  const BigInt big = random_value<std::uint32_t>(rng, 700);
  EXPECT_EQ(gcd_lehmer(big, big), big);
  EXPECT_EQ(gcd_lehmer(big, BigInt(1)), BigInt(1));
}

TEST(LehmerTest, FibonacciWorstCase) {
  // Consecutive Fibonacci numbers maximize Euclid's step count (every
  // quotient is 1) — the case Lehmer windows were invented for.
  BigInt a(1), b(1);
  for (int i = 0; i < 1200; ++i) {  // F_1200 has ~830 bits
    BigInt c = a + b;
    a = std::move(b);
    b = std::move(c);
  }
  LehmerStats st;
  EXPECT_EQ(gcd_lehmer(b, a, &st), BigInt(1));
  ASSERT_GT(st.window_rounds, 0u);
  // Each 62-bit window should absorb many simulated Euclid steps.
  EXPECT_GT(st.simulated_steps / st.window_rounds, 20u);
  EXPECT_LT(st.fallback_divisions, st.window_rounds);
}

TEST(LehmerTest, MostWorkStaysInMachineWords) {
  Xoshiro256 rng(144);
  const BigInt x = random_value<std::uint32_t>(rng, 4096);
  const BigInt y = random_value<std::uint32_t>(rng, 4096);
  LehmerStats st;
  gcd_lehmer(x, y, &st);
  EXPECT_GT(st.simulated_steps, 10 * std::max<std::uint64_t>(1, st.fallback_divisions));
}

TEST(LehmerTest, MismatchedSizes) {
  Xoshiro256 rng(145);
  for (int trial = 0; trial < 40; ++trial) {
    const BigInt x = random_value<std::uint32_t>(rng, 3000);
    const BigInt y = random_value<std::uint32_t>(rng, 1 + rng.below(64));
    EXPECT_EQ(gcd_lehmer(x, y), gmp_gcd(x, y));
  }
}

TEST(LehmerTest, PowersOfTwoAndEvenInputs) {
  Xoshiro256 rng(146);
  for (int trial = 0; trial < 40; ++trial) {
    const BigInt x = random_value<std::uint32_t>(rng, 500) << rng.below(80);
    const BigInt y = random_value<std::uint32_t>(rng, 500) << rng.below(80);
    EXPECT_EQ(gcd_lehmer(x, y), gmp_gcd(x, y));
  }
}

}  // namespace
}  // namespace bulkgcd::gcd
