// SIMT bulk engine tests: bit-identical agreement with the scalar engine
// across variants, layouts and termination modes; divergence statistics.
#include "bulk/simt.hpp"

#include <gtest/gtest.h>

#include "gmp_oracle.hpp"
#include "rsa/prime.hpp"

namespace bulkgcd::bulk {
namespace {

using bulkgcd::Xoshiro256;
using bulkgcd::test::gmp_gcd;
using bulkgcd::test::random_odd;
using gcd::Variant;
using mp::BigInt;

const Variant kGpuVariants[] = {Variant::kBinary, Variant::kFastBinary,
                                Variant::kApproximate};

struct SimtCase {
  Variant variant;
  std::size_t early_bits;
  bool row_wise;
};

class SimtAgreementTest : public ::testing::TestWithParam<SimtCase> {};

TEST_P(SimtAgreementTest, MatchesScalarEngineLaneByLane) {
  const auto [variant, early_bits, row_wise] = GetParam();
  Xoshiro256 rng(111 + std::size_t(variant));
  const std::size_t lanes = 37;  // not a multiple of the warp width
  const std::size_t bits = 256;
  const std::size_t cap = bits / 32;

  std::vector<std::pair<BigInt, BigInt>> pairs;
  for (std::size_t i = 0; i < lanes; ++i) {
    if (i % 5 == 0) {
      // Plant shared factors in some lanes.
      const BigInt p = rsa::random_prime(rng, bits / 2);
      pairs.emplace_back(p * rsa::random_prime(rng, bits / 2),
                         p * rsa::random_prime(rng, bits / 2));
    } else {
      pairs.emplace_back(random_odd<std::uint32_t>(rng, bits),
                         random_odd<std::uint32_t>(rng, bits));
    }
  }

  gcd::GcdEngine<std::uint32_t> scalar(cap);
  auto check = [&](auto& batch) {
    for (std::size_t i = 0; i < lanes; ++i) {
      batch.load(i, pairs[i].first.limbs(), pairs[i].second.limbs());
    }
    batch.run(variant, early_bits);
    for (std::size_t i = 0; i < lanes; ++i) {
      const auto expected = scalar.run(variant, pairs[i].first.limbs(),
                                       pairs[i].second.limbs(), early_bits);
      ASSERT_EQ(batch.early_coprime(i), expected.early_coprime)
          << to_string(variant) << " lane " << i;
      if (!expected.early_coprime) {
        EXPECT_EQ(batch.gcd_of(i), BigInt::from_limbs(expected.gcd))
            << to_string(variant) << " lane " << i;
      }
    }
  };

  if (row_wise) {
    SimtBatch<std::uint32_t, RowMatrix> batch(lanes, cap, 8);
    check(batch);
  } else {
    SimtBatch<std::uint32_t, ColumnMatrix> batch(lanes, cap, 8);
    check(batch);
  }
}

INSTANTIATE_TEST_SUITE_P(
    VariantsModesLayouts, SimtAgreementTest,
    ::testing::Values(SimtCase{Variant::kBinary, 0, false},
                      SimtCase{Variant::kFastBinary, 0, false},
                      SimtCase{Variant::kApproximate, 0, false},
                      SimtCase{Variant::kBinary, 128, false},
                      SimtCase{Variant::kFastBinary, 128, false},
                      SimtCase{Variant::kApproximate, 128, false},
                      SimtCase{Variant::kApproximate, 128, true},
                      SimtCase{Variant::kBinary, 128, true}));

TEST(SimtBatchTest, RejectsCpuOnlyVariants) {
  SimtBatch<std::uint32_t> batch(4, 8);
  EXPECT_THROW(batch.run(Variant::kOriginal), std::invalid_argument);
  EXPECT_THROW(batch.run(Variant::kFast), std::invalid_argument);
}

TEST(SimtBatchTest, DisabledLanesAreUntouched) {
  Xoshiro256 rng(112);
  SimtBatch<std::uint32_t> batch(8, 8, 4);
  const BigInt x = random_odd<std::uint32_t>(rng, 200);
  const BigInt y = random_odd<std::uint32_t>(rng, 200);
  batch.load(0, x.limbs(), y.limbs());
  for (std::size_t i = 1; i < 8; ++i) batch.disable(i);
  batch.run(Variant::kApproximate, 0);
  EXPECT_EQ(batch.gcd_of(0), gmp_gcd(x, y));
}

TEST(SimtBatchTest, FastBinaryHasNoBranchDivergence) {
  Xoshiro256 rng(113);
  SimtBatch<std::uint32_t> batch(16, 8, 8);
  for (std::size_t i = 0; i < 16; ++i) {
    batch.load(i, random_odd<std::uint32_t>(rng, 250).limbs(),
               random_odd<std::uint32_t>(rng, 250).limbs());
  }
  batch.run(Variant::kFastBinary, 0);
  EXPECT_EQ(batch.stats().divergent_warp_rounds, 0u);
  EXPECT_DOUBLE_EQ(batch.stats().serialization_factor(), 1.0);
}

TEST(SimtBatchTest, BinaryDivergesMoreThanApproximate) {
  // §VII: Binary Euclidean's 3-way branch serializes warps; Approximate
  // Euclidean's β > 0 branch fires with probability < 1e-8, so its warps
  // almost never diverge (while X and Y stay multi-word).
  Xoshiro256 rng(114);
  std::vector<std::pair<BigInt, BigInt>> pairs;
  for (int i = 0; i < 32; ++i) {
    pairs.emplace_back(
        rsa::random_prime(rng, 128) * rsa::random_prime(rng, 128),
        rsa::random_prime(rng, 128) * rsa::random_prime(rng, 128));
  }
  SimtStats binary, approx;
  for (const Variant variant : {Variant::kBinary, Variant::kApproximate}) {
    SimtBatch<std::uint32_t> batch(32, 8, 32);
    for (std::size_t i = 0; i < 32; ++i) {
      batch.load(i, pairs[i].first.limbs(), pairs[i].second.limbs());
    }
    batch.run(variant, 128);  // early terminate: operands stay multi-word
    (variant == Variant::kBinary ? binary : approx) = batch.stats();
  }
  EXPECT_GT(binary.serialization_factor(), 1.5);
  EXPECT_LT(approx.serialization_factor(), 1.05);
  EXPECT_GT(binary.divergent_warp_rounds, approx.divergent_warp_rounds);
}

TEST(SimtBatchTest, StatsIterationsMatchScalar) {
  Xoshiro256 rng(115);
  const std::size_t lanes = 10;
  std::vector<std::pair<BigInt, BigInt>> pairs;
  for (std::size_t i = 0; i < lanes; ++i) {
    pairs.emplace_back(random_odd<std::uint32_t>(rng, 300),
                       random_odd<std::uint32_t>(rng, 300));
  }
  SimtBatch<std::uint32_t> batch(lanes, 10, 4);
  for (std::size_t i = 0; i < lanes; ++i) {
    batch.load(i, pairs[i].first.limbs(), pairs[i].second.limbs());
  }
  batch.run(Variant::kApproximate, 0);

  gcd::GcdEngine<std::uint32_t> scalar(10);
  gcd::GcdStats total;
  for (const auto& [x, y] : pairs) {
    scalar.run(Variant::kApproximate, x.limbs(), y.limbs(), 0, &total);
  }
  EXPECT_EQ(batch.stats().gcd.iterations, total.iterations);
  EXPECT_EQ(batch.stats().gcd.beta_nonzero, total.beta_nonzero);
  EXPECT_EQ(batch.stats().lane_iterations, total.iterations);
}

TEST(SimtBatchTest, LaneUtilizationReflectsRaggedTermination) {
  Xoshiro256 rng(116);
  SimtBatch<std::uint32_t> batch(8, 20, 8);
  // One huge pair and seven tiny pairs: most lanes finish early, utilization
  // drops below 1.
  batch.load(0, random_odd<std::uint32_t>(rng, 600).limbs(),
             random_odd<std::uint32_t>(rng, 600).limbs());
  for (std::size_t i = 1; i < 8; ++i) {
    batch.load(i, random_odd<std::uint32_t>(rng, 40).limbs(),
               random_odd<std::uint32_t>(rng, 40).limbs());
  }
  batch.run(Variant::kFastBinary, 0);
  EXPECT_LT(batch.stats().lane_utilization(), 0.9);
  EXPECT_GT(batch.stats().lane_utilization(), 0.0);
}

TEST(SimtBatchTest, CapacityEnforced) {
  Xoshiro256 rng(117);
  SimtBatch<std::uint32_t> batch(2, 4);
  const BigInt big = random_odd<std::uint32_t>(rng, 400);
  EXPECT_THROW(batch.load(0, big.limbs(), BigInt(3).limbs()),
               std::length_error);
}

}  // namespace
}  // namespace bulkgcd::bulk
