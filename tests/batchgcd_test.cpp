// Batch-GCD (product/remainder tree) tests: tree invariants against GMP and
// agreement with the pairwise attack on planted corpora.
#include "batchgcd/batchgcd.hpp"

#include <gtest/gtest.h>

#include <set>

#include "bulk/allpairs.hpp"
#include "gmp_oracle.hpp"
#include "rsa/corpus.hpp"

namespace bulkgcd::batchgcd {
namespace {

using bulkgcd::Xoshiro256;
using bulkgcd::test::gmp_gcd;
using bulkgcd::test::random_odd;
using mp::BigInt;

TEST(ProductTreeTest, RootIsTheFullProduct) {
  Xoshiro256 rng(121);
  std::vector<BigInt> values;
  BigInt expected(1);
  for (int i = 0; i < 13; ++i) {  // odd count exercises the promoted node
    values.push_back(random_odd<std::uint32_t>(rng, 100));
    expected = expected * values.back();
  }
  const ProductTree tree = build_product_tree(values);
  EXPECT_EQ(tree.back().size(), 1u);
  EXPECT_EQ(tree.back()[0], expected);
  EXPECT_EQ(tree.front().size(), values.size());
}

TEST(ProductTreeTest, EveryParentIsProductOfChildren) {
  Xoshiro256 rng(122);
  std::vector<BigInt> values;
  for (int i = 0; i < 10; ++i) {
    values.push_back(random_odd<std::uint32_t>(rng, 80));
  }
  const ProductTree tree = build_product_tree(values);
  for (std::size_t level = 0; level + 1 < tree.size(); ++level) {
    const auto& children = tree[level];
    const auto& parents = tree[level + 1];
    for (std::size_t i = 0; i < parents.size(); ++i) {
      if (2 * i + 1 < children.size()) {
        EXPECT_EQ(parents[i], children[2 * i] * children[2 * i + 1]);
      } else {
        EXPECT_EQ(parents[i], children[2 * i]);
      }
    }
  }
}

TEST(ProductTreeTest, SingleElementAndEmpty) {
  const std::vector<BigInt> one = {BigInt(17)};
  const ProductTree tree = build_product_tree(one);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree[0][0], BigInt(17));
  EXPECT_THROW(build_product_tree({}), std::invalid_argument);
}

TEST(RemainderTreeTest, LeavesAreRootModSquares) {
  Xoshiro256 rng(123);
  std::vector<BigInt> values;
  for (int i = 0; i < 9; ++i) {
    values.push_back(random_odd<std::uint32_t>(rng, 120));
  }
  const ProductTree tree = build_product_tree(values);
  const auto residues = remainder_tree_mod_squares(tree);
  ASSERT_EQ(residues.size(), values.size());
  const BigInt& root = tree.back()[0];
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(residues[i], root % (values[i] * values[i])) << "leaf " << i;
  }
}

TEST(SquareTreeTest, EveryNodeIsTheSquareOfItsTreeNode) {
  Xoshiro256 rng(125);
  std::vector<BigInt> values;
  for (int i = 0; i < 13; ++i) {  // odd count: promoted nodes at two levels
    values.push_back(random_odd<std::uint32_t>(rng, 96));
  }
  const ProductTree tree = build_product_tree(values);
  const ProductTree squares = square_product_tree(tree);
  // Root level omitted — the descent never reduces modulo root².
  ASSERT_EQ(squares.size(), tree.size() - 1);
  for (std::size_t level = 0; level + 1 < tree.size(); ++level) {
    ASSERT_EQ(squares[level].size(), tree[level].size()) << "level " << level;
    for (std::size_t i = 0; i < tree[level].size(); ++i) {
      EXPECT_EQ(squares[level][i], tree[level][i] * tree[level][i])
          << "level " << level << " node " << i;
    }
  }
}

TEST(SquareTreeTest, PromotedChainReusesTheLeafSquare) {
  // 5 leaves: leaf 4 is promoted unchanged through level 1 (5 → 3 nodes) and
  // its level-1 copy pairs at level 2. The promoted node's square must equal
  // the leaf's square — the reuse path, not a recomputation.
  std::vector<BigInt> values;
  for (int v : {3, 5, 7, 11, 13}) values.push_back(BigInt(unsigned(v)));
  const ProductTree tree = build_product_tree(values);
  ASSERT_EQ(tree[1].size(), 3u);
  ASSERT_EQ(tree[1][2], values[4]);  // promoted unchanged
  const ProductTree squares = square_product_tree(tree);
  EXPECT_EQ(squares[1][2], squares[0][4]);
  EXPECT_EQ(squares[1][2], BigInt(169u));
}

TEST(SquareTreeTest, PrecomputedDescentMatchesConvenienceOverload) {
  Xoshiro256 rng(126);
  std::vector<BigInt> values;
  for (int i = 0; i < 11; ++i) {
    values.push_back(random_odd<std::uint32_t>(rng, 110));
  }
  const ProductTree tree = build_product_tree(values);
  const ProductTree squares = square_product_tree(tree);
  EXPECT_EQ(remainder_tree_mod_squares(tree, squares),
            remainder_tree_mod_squares(tree));
}

TEST(SquareTreeTest, ShapeMismatchThrows) {
  std::vector<BigInt> values = {BigInt(3), BigInt(5), BigInt(7), BigInt(11)};
  const ProductTree tree = build_product_tree(values);
  ProductTree squares = square_product_tree(tree);
  squares[0].pop_back();
  EXPECT_THROW(remainder_tree_mod_squares(tree, squares),
               std::invalid_argument);
  EXPECT_THROW(remainder_tree_mod_squares(tree, ProductTree{}),
               std::invalid_argument);
  EXPECT_THROW(square_product_tree(ProductTree{}), std::invalid_argument);
}

TEST(BatchGcdTest, FindsExactlyThePlantedWeakModuli) {
  rsa::CorpusSpec spec;
  spec.count = 20;
  spec.modulus_bits = 128;
  spec.weak_pairs = 3;
  spec.seed = 31;
  const rsa::WeakCorpus corpus = rsa::generate_corpus(spec);

  const BatchGcdResult result = batch_gcd(corpus.moduli);
  std::set<std::size_t> expected_weak;
  for (const auto& weak : corpus.weak) {
    expected_weak.insert(weak.first);
    expected_weak.insert(weak.second);
  }
  const auto found = weak_indices(result);
  EXPECT_EQ(std::set<std::size_t>(found.begin(), found.end()), expected_weak);
  for (const auto& weak : corpus.weak) {
    EXPECT_EQ(result.gcds[weak.first], weak.shared_prime);
    EXPECT_EQ(result.gcds[weak.second], weak.shared_prime);
  }
}

TEST(BatchGcdTest, CleanCorpusYieldsAllOnes) {
  rsa::CorpusSpec spec;
  spec.count = 12;
  spec.modulus_bits = 128;
  spec.weak_pairs = 0;
  spec.seed = 32;
  const rsa::WeakCorpus corpus = rsa::generate_corpus(spec);
  const BatchGcdResult result = batch_gcd(corpus.moduli);
  EXPECT_TRUE(weak_indices(result).empty());
  for (const auto& g : result.gcds) EXPECT_EQ(g, BigInt(1));
}

TEST(BatchGcdTest, DuplicatedModulusIsFullyWeak) {
  Xoshiro256 rng(124);
  rsa::CorpusSpec spec;
  spec.count = 6;
  spec.modulus_bits = 128;
  spec.seed = 33;
  auto corpus = rsa::generate_corpus(spec);
  corpus.moduli.push_back(corpus.moduli[0]);  // duplicate key
  const BatchGcdResult result = batch_gcd(corpus.moduli);
  // gcd(n, P/n) where n appears twice is n itself.
  EXPECT_EQ(result.gcds[0], corpus.moduli[0]);
  EXPECT_EQ(result.gcds.back(), corpus.moduli[0]);
  // Both duplicate slots are flagged unfactorable; nothing else is.
  const auto full = full_modulus_indices(result, corpus.moduli);
  EXPECT_EQ(full, (std::vector<std::size_t>{0, corpus.moduli.size() - 1}));
}

TEST(BatchGcdTest, FullModulusIndicesEmptyForProperWeakPairs) {
  rsa::CorpusSpec spec;
  spec.count = 10;
  spec.modulus_bits = 128;
  spec.weak_pairs = 2;
  spec.seed = 35;
  const rsa::WeakCorpus corpus = rsa::generate_corpus(spec);
  const BatchGcdResult result = batch_gcd(corpus.moduli);
  EXPECT_FALSE(weak_indices(result).empty());
  EXPECT_TRUE(full_modulus_indices(result, corpus.moduli).empty());
}

TEST(BatchGcdTest, AgreesWithAllPairsSweep) {
  rsa::CorpusSpec spec;
  spec.count = 18;
  spec.modulus_bits = 128;
  spec.weak_pairs = 2;
  spec.seed = 34;
  const rsa::WeakCorpus corpus = rsa::generate_corpus(spec);

  const BatchGcdResult batch = batch_gcd(corpus.moduli);
  const bulk::AllPairsResult pairwise = bulk::all_pairs_gcd(corpus.moduli);

  std::set<std::size_t> batch_weak;
  for (const auto i : weak_indices(batch)) batch_weak.insert(i);
  std::set<std::size_t> pairwise_weak;
  for (const auto& hit : pairwise.hits) {
    pairwise_weak.insert(hit.i);
    pairwise_weak.insert(hit.j);
  }
  EXPECT_EQ(batch_weak, pairwise_weak);
}

}  // namespace
}  // namespace bulkgcd::batchgcd
