// Batch-GCD (product/remainder tree) tests: tree invariants against GMP and
// agreement with the pairwise attack on planted corpora.
#include "batchgcd/batchgcd.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>

#include "batchgcd/batch_journal.hpp"
#include "bulk/allpairs.hpp"
#include "gmp_oracle.hpp"
#include "obs/metrics.hpp"
#include "rsa/corpus.hpp"
#include "rsa/keystore.hpp"

namespace bulkgcd::batchgcd {
namespace {

using bulkgcd::Xoshiro256;
using bulkgcd::test::gmp_gcd;
using bulkgcd::test::random_odd;
using mp::BigInt;

TEST(ProductTreeTest, RootIsTheFullProduct) {
  Xoshiro256 rng(121);
  std::vector<BigInt> values;
  BigInt expected(1);
  for (int i = 0; i < 13; ++i) {  // odd count exercises the promoted node
    values.push_back(random_odd<std::uint32_t>(rng, 100));
    expected = expected * values.back();
  }
  const ProductTree tree = build_product_tree(values);
  EXPECT_EQ(tree.back().size(), 1u);
  EXPECT_EQ(tree.back()[0], expected);
  EXPECT_EQ(tree.front().size(), values.size());
}

TEST(ProductTreeTest, EveryParentIsProductOfChildren) {
  Xoshiro256 rng(122);
  std::vector<BigInt> values;
  for (int i = 0; i < 10; ++i) {
    values.push_back(random_odd<std::uint32_t>(rng, 80));
  }
  const ProductTree tree = build_product_tree(values);
  for (std::size_t level = 0; level + 1 < tree.size(); ++level) {
    const auto& children = tree[level];
    const auto& parents = tree[level + 1];
    for (std::size_t i = 0; i < parents.size(); ++i) {
      if (2 * i + 1 < children.size()) {
        EXPECT_EQ(parents[i], children[2 * i] * children[2 * i + 1]);
      } else {
        EXPECT_EQ(parents[i], children[2 * i]);
      }
    }
  }
}

TEST(ProductTreeTest, SingleElementAndEmpty) {
  const std::vector<BigInt> one = {BigInt(17)};
  const ProductTree tree = build_product_tree(one);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree[0][0], BigInt(17));
  EXPECT_THROW(build_product_tree({}), std::invalid_argument);
}

TEST(RemainderTreeTest, LeavesAreRootModSquares) {
  Xoshiro256 rng(123);
  std::vector<BigInt> values;
  for (int i = 0; i < 9; ++i) {
    values.push_back(random_odd<std::uint32_t>(rng, 120));
  }
  const ProductTree tree = build_product_tree(values);
  const auto residues = remainder_tree_mod_squares(tree);
  ASSERT_EQ(residues.size(), values.size());
  const BigInt& root = tree.back()[0];
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(residues[i], root % (values[i] * values[i])) << "leaf " << i;
  }
}

TEST(SquareTreeTest, EveryNodeIsTheSquareOfItsTreeNode) {
  Xoshiro256 rng(125);
  std::vector<BigInt> values;
  for (int i = 0; i < 13; ++i) {  // odd count: promoted nodes at two levels
    values.push_back(random_odd<std::uint32_t>(rng, 96));
  }
  const ProductTree tree = build_product_tree(values);
  const ProductTree squares = square_product_tree(tree);
  // Root level omitted — the descent never reduces modulo root².
  ASSERT_EQ(squares.size(), tree.size() - 1);
  for (std::size_t level = 0; level + 1 < tree.size(); ++level) {
    ASSERT_EQ(squares[level].size(), tree[level].size()) << "level " << level;
    for (std::size_t i = 0; i < tree[level].size(); ++i) {
      EXPECT_EQ(squares[level][i], tree[level][i] * tree[level][i])
          << "level " << level << " node " << i;
    }
  }
}

TEST(SquareTreeTest, PromotedChainReusesTheLeafSquare) {
  // 5 leaves: leaf 4 is promoted unchanged through level 1 (5 → 3 nodes) and
  // its level-1 copy pairs at level 2. The promoted node's square must equal
  // the leaf's square — the reuse path, not a recomputation.
  std::vector<BigInt> values;
  for (int v : {3, 5, 7, 11, 13}) values.push_back(BigInt(unsigned(v)));
  const ProductTree tree = build_product_tree(values);
  ASSERT_EQ(tree[1].size(), 3u);
  ASSERT_EQ(tree[1][2], values[4]);  // promoted unchanged
  const ProductTree squares = square_product_tree(tree);
  EXPECT_EQ(squares[1][2], squares[0][4]);
  EXPECT_EQ(squares[1][2], BigInt(169u));
}

TEST(SquareTreeTest, PrecomputedDescentMatchesConvenienceOverload) {
  Xoshiro256 rng(126);
  std::vector<BigInt> values;
  for (int i = 0; i < 11; ++i) {
    values.push_back(random_odd<std::uint32_t>(rng, 110));
  }
  const ProductTree tree = build_product_tree(values);
  const ProductTree squares = square_product_tree(tree);
  EXPECT_EQ(remainder_tree_mod_squares(tree, squares),
            remainder_tree_mod_squares(tree));
}

TEST(SquareTreeTest, ShapeMismatchThrows) {
  std::vector<BigInt> values = {BigInt(3), BigInt(5), BigInt(7), BigInt(11)};
  const ProductTree tree = build_product_tree(values);
  ProductTree squares = square_product_tree(tree);
  squares[0].pop_back();
  EXPECT_THROW(remainder_tree_mod_squares(tree, squares),
               std::invalid_argument);
  EXPECT_THROW(remainder_tree_mod_squares(tree, ProductTree{}),
               std::invalid_argument);
  EXPECT_THROW(square_product_tree(ProductTree{}), std::invalid_argument);
}

TEST(BatchGcdTest, FindsExactlyThePlantedWeakModuli) {
  rsa::CorpusSpec spec;
  spec.count = 20;
  spec.modulus_bits = 128;
  spec.weak_pairs = 3;
  spec.seed = 31;
  const rsa::WeakCorpus corpus = rsa::generate_corpus(spec);

  const BatchGcdResult result = batch_gcd(corpus.moduli);
  std::set<std::size_t> expected_weak;
  for (const auto& weak : corpus.weak) {
    expected_weak.insert(weak.first);
    expected_weak.insert(weak.second);
  }
  const auto found = weak_indices(result);
  EXPECT_EQ(std::set<std::size_t>(found.begin(), found.end()), expected_weak);
  for (const auto& weak : corpus.weak) {
    EXPECT_EQ(result.gcds[weak.first], weak.shared_prime);
    EXPECT_EQ(result.gcds[weak.second], weak.shared_prime);
  }
}

TEST(BatchGcdTest, CleanCorpusYieldsAllOnes) {
  rsa::CorpusSpec spec;
  spec.count = 12;
  spec.modulus_bits = 128;
  spec.weak_pairs = 0;
  spec.seed = 32;
  const rsa::WeakCorpus corpus = rsa::generate_corpus(spec);
  const BatchGcdResult result = batch_gcd(corpus.moduli);
  EXPECT_TRUE(weak_indices(result).empty());
  for (const auto& g : result.gcds) EXPECT_EQ(g, BigInt(1));
}

TEST(BatchGcdTest, DuplicatedModulusIsFullyWeak) {
  Xoshiro256 rng(124);
  rsa::CorpusSpec spec;
  spec.count = 6;
  spec.modulus_bits = 128;
  spec.seed = 33;
  auto corpus = rsa::generate_corpus(spec);
  corpus.moduli.push_back(corpus.moduli[0]);  // duplicate key
  const BatchGcdResult result = batch_gcd(corpus.moduli);
  // gcd(n, P/n) where n appears twice is n itself.
  EXPECT_EQ(result.gcds[0], corpus.moduli[0]);
  EXPECT_EQ(result.gcds.back(), corpus.moduli[0]);
  // Both duplicate slots are flagged unfactorable; nothing else is.
  const auto full = full_modulus_indices(result, corpus.moduli);
  EXPECT_EQ(full, (std::vector<std::size_t>{0, corpus.moduli.size() - 1}));
}

TEST(BatchGcdTest, FullModulusIndicesEmptyForProperWeakPairs) {
  rsa::CorpusSpec spec;
  spec.count = 10;
  spec.modulus_bits = 128;
  spec.weak_pairs = 2;
  spec.seed = 35;
  const rsa::WeakCorpus corpus = rsa::generate_corpus(spec);
  const BatchGcdResult result = batch_gcd(corpus.moduli);
  EXPECT_FALSE(weak_indices(result).empty());
  EXPECT_TRUE(full_modulus_indices(result, corpus.moduli).empty());
}

TEST(BatchGcdTest, AgreesWithAllPairsSweep) {
  rsa::CorpusSpec spec;
  spec.count = 18;
  spec.modulus_bits = 128;
  spec.weak_pairs = 2;
  spec.seed = 34;
  const rsa::WeakCorpus corpus = rsa::generate_corpus(spec);

  const BatchGcdResult batch = batch_gcd(corpus.moduli);
  const bulk::AllPairsResult pairwise = bulk::all_pairs_gcd(corpus.moduli);

  std::set<std::size_t> batch_weak;
  for (const auto i : weak_indices(batch)) batch_weak.insert(i);
  std::set<std::size_t> pairwise_weak;
  for (const auto& hit : pairwise.hits) {
    pairwise_weak.insert(hit.i);
    pairwise_weak.insert(hit.j);
  }
  EXPECT_EQ(batch_weak, pairwise_weak);
}

// ---- resumable driver + level journal --------------------------------------

class BatchResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            (std::string("bulkgcd_batch_btr_") +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::error_code ignored;
    std::filesystem::remove(path_, ignored);
  }
  void TearDown() override {
    std::error_code ignored;
    std::filesystem::remove(path_, ignored);
  }

  static rsa::WeakCorpus test_corpus(std::size_t count, std::size_t weak,
                                     std::uint64_t seed) {
    rsa::CorpusSpec spec;
    spec.count = count;
    spec.modulus_bits = 128;
    spec.weak_pairs = weak;
    spec.seed = seed;
    return rsa::generate_corpus(spec);
  }

  std::filesystem::path path_;
};

TEST_F(BatchResumeTest, UncheckpointedDriverMatchesBatchGcd) {
  const auto corpus = test_corpus(21, 3, 201);
  const BatchGcdResult direct = batch_gcd(corpus.moduli);
  const BatchScanReport report = run_resumable_batch(corpus.moduli);
  EXPECT_TRUE(report.complete);
  EXPECT_FALSE(report.resumed);
  EXPECT_EQ(report.levels_restored, 0u);
  EXPECT_EQ(report.levels_done, report.levels_total);
  EXPECT_EQ(report.result.gcds, direct.gcds);
}

TEST_F(BatchResumeTest, LevelsTotalCountsBothTreePassesPlusGcds) {
  // 21 leaves → product levels of 11, 6, 3, 2, 1 nodes (5 pairings), the
  // same 5 descent steps, plus the final gcds vector.
  const auto corpus = test_corpus(21, 0, 202);
  const BatchScanReport report = run_resumable_batch(corpus.moduli);
  EXPECT_EQ(report.levels_total, 11u);
  // Single modulus: no tree at all, just the (trivial) gcds level.
  const std::vector<BigInt> one = {corpus.moduli[0]};
  const BatchScanReport tiny = run_resumable_batch(one);
  EXPECT_TRUE(tiny.complete);
  EXPECT_EQ(tiny.levels_total, 1u);
  EXPECT_EQ(tiny.result.gcds, std::vector<BigInt>{BigInt(1)});
}

TEST_F(BatchResumeTest, SingleLevelSlicesReachTheSameGcds) {
  const auto corpus = test_corpus(19, 2, 203);
  const BatchGcdResult direct = batch_gcd(corpus.moduli);

  BatchScanConfig config;
  config.checkpoint = path_;
  config.stop_after_levels = 1;
  std::uint64_t total_done = 0;
  BatchScanReport report;
  for (int run = 0; run < 64; ++run) {  // bound: levels_total < 64
    report = run_resumable_batch(corpus.moduli, config);
    total_done += report.levels_done;
    if (run == 0) EXPECT_FALSE(report.resumed);
    if (report.complete) break;
    EXPECT_EQ(report.levels_done, 1u);
    EXPECT_TRUE(report.result.gcds.empty());
  }
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(total_done, report.levels_total);
  EXPECT_EQ(report.levels_restored + report.levels_done, report.levels_total);
  EXPECT_EQ(report.result.gcds, direct.gcds);
}

TEST_F(BatchResumeTest, CompletedJournalReplaysWithoutRecompute) {
  const auto corpus = test_corpus(14, 2, 204);
  BatchScanConfig config;
  config.checkpoint = path_;
  const BatchScanReport first = run_resumable_batch(corpus.moduli, config);
  ASSERT_TRUE(first.complete);

  const BatchScanReport replay = run_resumable_batch(corpus.moduli, config);
  EXPECT_TRUE(replay.complete);
  EXPECT_TRUE(replay.resumed);
  EXPECT_EQ(replay.levels_done, 0u);
  EXPECT_EQ(replay.levels_restored, replay.levels_total);
  EXPECT_EQ(replay.result.gcds, first.result.gcds);
}

TEST_F(BatchResumeTest, TornTailIsTruncatedAndRecomputed) {
  const auto corpus = test_corpus(16, 2, 205);
  const BatchGcdResult direct = batch_gcd(corpus.moduli);

  BatchScanConfig config;
  config.checkpoint = path_;
  config.stop_after_levels = 3;
  ASSERT_FALSE(run_resumable_batch(corpus.moduli, config).complete);

  // Simulate a crash mid-write: a partial record (a valid kind byte, then
  // garbage shorter than its own length fields claim) at the tail.
  const auto intact_size = std::filesystem::file_size(path_);
  {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out.put(char(1));  // product-record kind
    out.write("\x07\x00\x00\x00torn", 8);
  }
  ASSERT_GT(std::filesystem::file_size(path_), intact_size);

  config.stop_after_levels = 0;
  const BatchScanReport resumed = run_resumable_batch(corpus.moduli, config);
  EXPECT_TRUE(resumed.complete);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.levels_restored, 3u);
  EXPECT_EQ(resumed.result.gcds, direct.gcds);
}

TEST_F(BatchResumeTest, JournalForADifferentCorpusIsRefused) {
  const auto corpus_a = test_corpus(12, 1, 206);
  const auto corpus_b = test_corpus(12, 1, 207);
  BatchScanConfig config;
  config.checkpoint = path_;
  config.stop_after_levels = 2;
  ASSERT_FALSE(run_resumable_batch(corpus_a.moduli, config).complete);
  // Same count, different moduli: the digest must catch it.
  EXPECT_THROW(run_resumable_batch(corpus_b.moduli, config),
               std::runtime_error);
  // Different count too.
  const std::vector<BigInt> truncated(corpus_a.moduli.begin(),
                                      corpus_a.moduli.end() - 1);
  EXPECT_THROW(run_resumable_batch(truncated, config), std::runtime_error);
  // The original corpus still resumes fine.
  config.stop_after_levels = 0;
  EXPECT_TRUE(run_resumable_batch(corpus_a.moduli, config).complete);
}

TEST_F(BatchResumeTest, ForeignFileIsRefusedNotTruncated) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "definitely not a batch journal, long enough to pass the header";
  }
  const auto corpus = test_corpus(8, 1, 208);
  BatchScanConfig config;
  config.checkpoint = path_;
  EXPECT_THROW(run_resumable_batch(corpus.moduli, config), std::runtime_error);
  // Refusal must not have clobbered the file.
  EXPECT_GT(std::filesystem::file_size(path_), 0u);
}

TEST_F(BatchResumeTest, TornHeaderIsRecreatedFresh) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "BGCDBTR1\x01\x02";  // our magic, torn before the digest
  }
  const auto corpus = test_corpus(8, 1, 209);
  BatchScanConfig config;
  config.checkpoint = path_;
  const BatchScanReport report = run_resumable_batch(corpus.moduli, config);
  EXPECT_TRUE(report.complete);
  EXPECT_FALSE(report.resumed);
}

TEST_F(BatchResumeTest, LevelHookSeesEveryCommittedLevel) {
  const auto corpus = test_corpus(10, 1, 210);
  BatchScanConfig config;
  config.checkpoint = path_;
  std::vector<std::size_t> seen;
  std::size_t reported_total = 0;
  config.level_hook = [&](std::size_t done, std::size_t total) {
    seen.push_back(done);
    reported_total = total;
  };
  const BatchScanReport report = run_resumable_batch(corpus.moduli, config);
  ASSERT_TRUE(report.complete);
  EXPECT_EQ(reported_total, report.levels_total);
  ASSERT_EQ(seen.size(), report.levels_total);
  for (std::size_t k = 0; k < seen.size(); ++k) EXPECT_EQ(seen[k], k + 1);
}

TEST_F(BatchResumeTest, MetricsCoverTheBatchPath) {
  const auto corpus = test_corpus(15, 2, 211);
  obs::MetricsRegistry registry;
  BatchScanConfig config;
  config.checkpoint = path_;
  config.stop_after_levels = 2;
  config.metrics = &registry;
  ASSERT_FALSE(run_resumable_batch(corpus.moduli, config).complete);
  config.stop_after_levels = 0;
  const BatchScanReport report = run_resumable_batch(corpus.moduli, config);
  ASSERT_TRUE(report.complete);

  const obs::Snapshot snap = registry.snapshot();
  auto counter = [&](std::string_view name) -> std::uint64_t {
    for (const auto& c : snap.counters) {
      if (c.name == name) return c.value;
    }
    ADD_FAILURE() << "missing counter " << name;
    return 0;
  };
  // Both runs together commit every level exactly once; the second run also
  // restores the first run's two levels.
  EXPECT_EQ(counter("batchgcd_levels_committed_total"), report.levels_total);
  EXPECT_EQ(counter("batchgcd_levels_restored_total"), 2u);
  EXPECT_EQ(counter("batchgcd_gcds_total"), corpus.moduli.size());
  EXPECT_EQ(counter("batchgcd_weak_total"),
            weak_indices(report.result).size());
  EXPECT_GT(counter("batchgcd_product_nodes_total"), 0u);
  EXPECT_GT(counter("batchgcd_remainder_nodes_total"), 0u);
  bool found_gauge = false;
  for (const auto& g : snap.gauges) {
    if (g.name == "batchgcd_progress_ratio") {
      found_gauge = true;
      EXPECT_DOUBLE_EQ(g.value, 1.0);
    }
  }
  EXPECT_TRUE(found_gauge);
  bool found_hist = false;
  for (const auto& h : snap.histograms) {
    if (h.name == "batchgcd_level_seconds") {
      found_hist = true;
      EXPECT_EQ(h.count, report.levels_total);
    }
  }
  EXPECT_TRUE(found_hist);
}

TEST(BatchJournalTest, ReplayRoundTripsAllRecordKinds) {
  const auto tmp = std::filesystem::temp_directory_path() /
                   "bulkgcd_batch_journal_roundtrip";
  std::error_code ignored;
  std::filesystem::remove(tmp, ignored);

  const std::vector<BigInt> level1 = {BigInt(0x123456789abcULL), BigInt(0)};
  const std::vector<BigInt> residues = {BigInt(7), BigInt(11), BigInt(13)};
  const std::vector<BigInt> gcds = {BigInt(1), BigInt(1), BigInt(17)};
  {
    BatchJournal journal(tmp, /*corpus_digest=*/0xfeedULL,
                         /*corpus_count=*/3);
    journal.append_product_level(1, level1);
    journal.append_remainder_level(1, residues);
    journal.append_remainder_level(0, residues);
    journal.append_gcds(gcds);
  }
  BatchJournal journal(tmp, 0xfeedULL, 3);
  BatchReplay replay = journal.take_replay();
  ASSERT_EQ(replay.product_levels.size(), 1u);
  EXPECT_EQ(replay.product_levels[0].first, 1u);
  EXPECT_EQ(replay.product_levels[0].second, level1);
  ASSERT_TRUE(replay.remainder.has_value());
  EXPECT_EQ(replay.remainder->first, 0u);  // deepest restored level wins
  EXPECT_EQ(replay.remainder->second, residues);
  ASSERT_TRUE(replay.gcds.has_value());
  EXPECT_EQ(*replay.gcds, gcds);
  std::filesystem::remove(tmp, ignored);
}

}  // namespace
}  // namespace bulkgcd::batchgcd
