// End-to-end integration: synthesize a weak-key corpus, break it with the
// bulk all-pairs GCD, recover the private keys, and decrypt an intercepted
// message — the full pipeline the paper motivates.
#include <gtest/gtest.h>

#include "batchgcd/batchgcd.hpp"
#include "bulk/allpairs.hpp"
#include "rsa/corpus.hpp"
#include "rsa/rsa.hpp"

namespace bulkgcd {
namespace {

using mp::BigInt;

TEST(IntegrationTest, BreakWeakKeysEndToEnd) {
  // 1. A corpus of 128-bit RSA keys, two of which share a prime.
  rsa::CorpusSpec spec;
  spec.count = 16;
  spec.modulus_bits = 128;
  spec.weak_pairs = 1;
  spec.seed = 2026;
  const rsa::WeakCorpus corpus = rsa::generate_corpus(spec);
  const auto& weak = corpus.weak[0];

  // 2. An "intercepted" ciphertext under one of the weak keys.
  const BigInt e(rsa::kDefaultPublicExponent);
  const std::string secret = "MEET AT NINE";
  const BigInt weak_modulus = corpus.moduli[weak.first];
  const BigInt cipher = rsa::encrypt(rsa::encode_message(secret), weak_modulus, e);

  // 3. The attack: all-pairs bulk GCD over the harvested moduli.
  const bulk::AllPairsResult attack = bulk::all_pairs_gcd(corpus.moduli);
  ASSERT_EQ(attack.hits.size(), 1u);
  const auto& hit = attack.hits[0];
  EXPECT_EQ(hit.i, weak.first);
  EXPECT_EQ(hit.j, weak.second);

  // 4. Factor the modulus, rebuild the private key, decrypt.
  const rsa::KeyPair recovered =
      rsa::recover_private_key(corpus.moduli[hit.i], e, hit.factor);
  EXPECT_EQ(rsa::decode_message(rsa::decrypt(cipher, recovered.n, recovered.d)),
            secret);

  // 5. Strong keys in the same corpus remain unbroken by this attack.
  for (std::size_t i = 0; i < corpus.moduli.size(); ++i) {
    if (i == hit.i || i == hit.j) continue;
    for (const auto& h : attack.hits) {
      EXPECT_NE(h.i, i);
      EXPECT_NE(h.j, i);
    }
  }
}

TEST(IntegrationTest, PairwiseAndBatchAttacksFindTheSameVictims) {
  rsa::CorpusSpec spec;
  spec.count = 20;
  spec.modulus_bits = 128;
  spec.weak_pairs = 2;
  spec.seed = 2027;
  const rsa::WeakCorpus corpus = rsa::generate_corpus(spec);

  const bulk::AllPairsResult pairwise = bulk::all_pairs_gcd(corpus.moduli);
  const batchgcd::BatchGcdResult batch = batchgcd::batch_gcd(corpus.moduli);

  for (const auto& hit : pairwise.hits) {
    EXPECT_EQ(batch.gcds[hit.i], hit.factor);
    EXPECT_EQ(batch.gcds[hit.j], hit.factor);
  }
  EXPECT_EQ(batchgcd::weak_indices(batch).size(), 2 * pairwise.hits.size());
}

TEST(IntegrationTest, AllVariantsAgreeOnTheVictimSet) {
  rsa::CorpusSpec spec;
  spec.count = 14;
  spec.modulus_bits = 128;
  spec.weak_pairs = 2;
  spec.seed = 2028;
  const rsa::WeakCorpus corpus = rsa::generate_corpus(spec);

  std::vector<bulk::FactorHit> reference;
  for (const gcd::Variant variant : gcd::kAllVariants) {
    bulk::AllPairsConfig config;
    config.variant = variant;
    config.engine = (variant == gcd::Variant::kOriginal ||
                     variant == gcd::Variant::kFast)
                        ? bulk::EngineKind::kScalar
                        : bulk::EngineKind::kSimt;
    const auto result = bulk::all_pairs_gcd(corpus.moduli, config);
    if (reference.empty()) {
      reference = result.hits;
      ASSERT_EQ(reference.size(), 2u);
    } else {
      ASSERT_EQ(result.hits.size(), reference.size()) << to_string(variant);
      for (std::size_t k = 0; k < reference.size(); ++k) {
        EXPECT_EQ(result.hits[k].i, reference[k].i);
        EXPECT_EQ(result.hits[k].j, reference[k].j);
        EXPECT_EQ(result.hits[k].factor, reference[k].factor);
      }
    }
  }
}

}  // namespace
}  // namespace bulkgcd
