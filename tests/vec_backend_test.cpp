// The SIMD warp engine (bulk/vec/) pinned three ways:
//  1. bit-identity against SimtBatch::run_staged — GCD limbs, early-coprime
//     verdicts, per-lane iteration counts, AND the full reconstructed
//     SimtStats must match exactly, for every compiled-in ISA leg, at both
//     limb widths (W = 8 and W = 4 lane groups, including masked tails);
//  2. GMP oracle on the values themselves;
//  3. dispatch: cpuid probe, explicit-ISA construction, the
//     BULKGCD_FORCE_BACKEND override, and end-to-end all_pairs_gcd /
//     probe_incremental equivalence across backends.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "bulk/allpairs.hpp"
#include "bulk/layout.hpp"
#include "bulk/scan_corpus.hpp"
#include "bulk/simt.hpp"
#include "bulk/vec/vec_backend.hpp"
#include "gmp_oracle.hpp"

namespace bulkgcd {
namespace {

using bulk::BulkBackend;
using bulk::VecIsa;
using gcd::Variant;
using mp::BigInt;
using test::gmp_gcd;
using test::random_odd;

constexpr Variant kBulkVariants[] = {Variant::kBinary, Variant::kFastBinary,
                                     Variant::kApproximate};

std::vector<VecIsa> available_isas() {
  std::vector<VecIsa> isas{VecIsa::kPortable};
  if (bulk::vec_isa_available(VecIsa::kAvx2)) isas.push_back(VecIsa::kAvx2);
  return isas;
}

/// Load the same random mixed-size pair set into a staged SimtBatch and a
/// vector batch of every available ISA; everything observable must agree.
template <mp::LimbType Limb>
void expect_bit_identity(std::uint64_t seed, std::size_t lanes,
                         bool early_terminate) {
  Xoshiro256 rng(seed);
  std::vector<std::pair<mp::BigIntT<Limb>, mp::BigIntT<Limb>>> pairs;
  std::vector<std::size_t> early(lanes, 0);
  std::size_t cap = 0;
  for (std::size_t i = 0; i < lanes; ++i) {
    const std::size_t bx = 1 + rng.below(700);
    const std::size_t by = 1 + rng.below(700);
    pairs.emplace_back(random_odd<Limb>(rng, bx), random_odd<Limb>(rng, by));
    if (early_terminate) early[i] = std::min(bx, by) / 2;
    cap = std::max({cap, pairs[i].first.size(), pairs[i].second.size()});
  }

  for (const Variant variant : kBulkVariants) {
    bulk::SimtBatch<Limb> ref(lanes, cap, 32);
    for (std::size_t i = 0; i < lanes; ++i) {
      ref.load(i, pairs[i].first.limbs(), pairs[i].second.limbs(), early[i]);
    }
    ref.run_staged(variant);

    for (const VecIsa isa : available_isas()) {
      auto vec = bulk::make_vec_batch<Limb>(lanes, cap, 32, isa);
      ASSERT_EQ(vec->isa(), isa);
      ASSERT_EQ(vec->vector_width(), 32 / sizeof(Limb));
      for (std::size_t i = 0; i < lanes; ++i) {
        vec->load(i, pairs[i].first.limbs(), pairs[i].second.limbs(),
                  early[i]);
      }
      vec->run(variant);

      ASSERT_EQ(vec->stats(), ref.stats())
          << to_string(variant) << " isa=" << to_string(isa)
          << " lanes=" << lanes << " seed=" << seed;
      for (std::size_t i = 0; i < lanes; ++i) {
        ASSERT_EQ(vec->early_coprime(i), ref.early_coprime(i))
            << to_string(variant) << " isa=" << to_string(isa) << " lane "
            << i;
        ASSERT_EQ(vec->lane_iterations(i), ref.staged_lane_iterations(i))
            << to_string(variant) << " isa=" << to_string(isa) << " lane "
            << i;
        if (!vec->early_coprime(i)) {
          ASSERT_EQ(vec->gcd_of(i), ref.gcd_of(i))
              << to_string(variant) << " isa=" << to_string(isa) << " lane "
              << i;
          ASSERT_EQ(vec->gcd_of(i),
                    gmp_gcd(pairs[i].first, pairs[i].second))
              << to_string(variant) << " isa=" << to_string(isa) << " lane "
              << i;
        }
      }
    }
  }
}

class VecBitIdentity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VecBitIdentity, MatchesStagedScalar32) {
  // 37 lanes: ragged over both W = 8 (4 full groups + 5-lane masked tail)
  // and W = 4 (9 full + 1).
  expect_bit_identity<std::uint32_t>(GetParam(), 37, false);
}

TEST_P(VecBitIdentity, MatchesStagedScalar64) {
  expect_bit_identity<std::uint64_t>(GetParam(), 37, false);
}

TEST_P(VecBitIdentity, MatchesStagedScalarWithEarlyTerminate) {
  expect_bit_identity<std::uint32_t>(GetParam() ^ 0xabcdef, 32 / 4 + 3, true);
  expect_bit_identity<std::uint64_t>(GetParam() ^ 0xfedcba, 32 / 8 + 3, true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VecBitIdentity,
                         ::testing::Values(7u, 19u, 101u, 4242u));

TEST(VecBackend, PanelPathMatchesStagedScalar) {
  // Drive both engines through the exact BlockSweeper verb sequence:
  // load_panel + broadcast_y + reset_lane_state + disable, then run.
  Xoshiro256 rng(515151);
  const std::size_t m = 21;  // not a multiple of any W
  std::vector<BigInt> moduli;
  for (std::size_t i = 0; i < m; ++i) {
    moduli.push_back(random_odd<std::uint32_t>(rng, 64 + rng.below(512)));
  }
  const bulk::ScanCorpus scan(moduli);
  const std::size_t cap = scan.max_limbs();
  const std::size_t r = 8;
  const bulk::CorpusPanels<bulk::ScanLimb> panels(scan, r,
                                                  cap + bulk::kBatchPadLimbs);
  const auto y = scan.limbs(m - 1);

  for (const Variant variant : kBulkVariants) {
    for (std::size_t g = 0; g < panels.group_count(); ++g) {
      const std::size_t live = std::min(r, m - g * r);

      bulk::SimtBatch<bulk::ScanLimb> ref(r, cap, 32);
      ref.load_panel(panels.panel(g), panels.sizes(g), panels.rows(g));
      ref.broadcast_y(y);
      for (std::size_t k = 0; k < live; ++k) ref.reset_lane_state(k, 64);
      for (std::size_t k = live; k < r; ++k) ref.disable(k);
      ref.run_staged(variant);

      for (const VecIsa isa : available_isas()) {
        auto vec = bulk::make_vec_batch<bulk::ScanLimb>(r, cap, 32, isa);
        vec->load_panel(panels.panel(g), panels.sizes(g), panels.rows(g));
        vec->broadcast_y(y);
        for (std::size_t k = 0; k < live; ++k) vec->reset_lane_state(k, 64);
        for (std::size_t k = live; k < r; ++k) vec->disable(k);
        vec->run(variant);

        ASSERT_EQ(vec->stats(), ref.stats())
            << to_string(variant) << " group " << g << " isa "
            << to_string(isa);
        for (std::size_t k = 0; k < live; ++k) {
          ASSERT_EQ(vec->early_coprime(k), ref.early_coprime(k));
          if (!vec->early_coprime(k)) {
            ASSERT_EQ(vec->gcd_of(k), ref.gcd_of(k))
                << to_string(variant) << " group " << g << " lane " << k;
          }
        }
      }
    }
  }
}

TEST(VecBackend, ReusedBatchStaysIdentical) {
  // Panel-refresh hygiene: a batch that just ran long values must produce
  // identical results when refreshed with shorter ones (dirty-row zeroing).
  Xoshiro256 rng(777);
  const std::size_t lanes = 32 / sizeof(bulk::ScanLimb);  // one full group
  auto vec = bulk::make_vec_batch<bulk::ScanLimb>(lanes, 24, 32);
  bulk::SimtBatch<bulk::ScanLimb> ref(lanes, 24, 32);
  for (int round = 0; round < 6; ++round) {
    const std::size_t bits = round % 2 == 0 ? 700 : 40;  // long, short, …
    for (std::size_t i = 0; i < lanes; ++i) {
      const auto x = random_odd<bulk::ScanLimb>(rng, 1 + rng.below(bits));
      const auto y = random_odd<bulk::ScanLimb>(rng, 1 + rng.below(bits));
      vec->load(i, x.limbs(), y.limbs());
      ref.load(i, x.limbs(), y.limbs());
    }
    vec->run(Variant::kApproximate);
    ref.run_staged(Variant::kApproximate);
    for (std::size_t i = 0; i < lanes; ++i) {
      ASSERT_EQ(vec->gcd_of(i), ref.gcd_of(i)) << "round " << round;
    }
  }
  ASSERT_EQ(vec->stats(), ref.stats());
}

TEST(VecBackend, DispatchProbes) {
  const VecIsa best = bulk::detect_vec_isa();
  ASSERT_NE(best, VecIsa::kAuto);
  ASSERT_TRUE(bulk::vec_isa_available(VecIsa::kPortable));
  ASSERT_TRUE(bulk::vec_isa_available(best));
  auto batch = bulk::make_vec_batch<bulk::ScanLimb>(4, 8);
  ASSERT_EQ(batch->isa(), best);
  if (!bulk::vec_isa_available(VecIsa::kAvx2)) {
    ASSERT_THROW(
        bulk::make_vec_batch<bulk::ScanLimb>(4, 8, 32, VecIsa::kAvx2),
        std::invalid_argument);
  }
}

TEST(VecBackend, ForceBackendEnvOverride) {
  bulk::AllPairsConfig cfg;
  ::setenv("BULKGCD_FORCE_BACKEND", "vector-portable", 1);
  bulk::resolve_backend(cfg);
  EXPECT_EQ(cfg.backend, BulkBackend::kVector);
  EXPECT_EQ(cfg.vec_isa, VecIsa::kPortable);

  cfg = {};
  ::setenv("BULKGCD_FORCE_BACKEND", "staged", 1);
  bulk::resolve_backend(cfg);
  EXPECT_EQ(cfg.backend, BulkBackend::kStaged);

  cfg = {};
  ::setenv("BULKGCD_FORCE_BACKEND", "lockstep", 1);
  bulk::resolve_backend(cfg);
  EXPECT_EQ(cfg.backend, BulkBackend::kLockstep);

  cfg = {};
  ::setenv("BULKGCD_FORCE_BACKEND", "quantum", 1);
  EXPECT_THROW(bulk::resolve_backend(cfg), std::invalid_argument);

  ::unsetenv("BULKGCD_FORCE_BACKEND");
  cfg = {};
  bulk::resolve_backend(cfg);
  EXPECT_NE(cfg.backend, BulkBackend::kAuto);  // auto always collapses
  if (cfg.backend == BulkBackend::kVector) {
    EXPECT_NE(cfg.vec_isa, VecIsa::kAuto);
  }
}

/// Corpus with planted shared factors for end-to-end backend equivalence.
std::vector<BigInt> planted_corpus(std::uint64_t seed, std::size_t m) {
  Xoshiro256 rng(seed);
  std::vector<BigInt> moduli;
  const BigInt shared = random_odd<std::uint32_t>(rng, 128);
  for (std::size_t i = 0; i < m; ++i) {
    BigInt n = random_odd<std::uint32_t>(rng, 128 + rng.below(384));
    if (i % 5 == 0) n = n * shared;  // every 5th key shares a "prime"
    moduli.push_back(std::move(n));
  }
  return moduli;
}

TEST(VecBackend, AllPairsBackendsAgree) {
  const auto moduli = planted_corpus(90210, 33);

  bulk::AllPairsConfig staged;
  staged.backend = BulkBackend::kStaged;
  staged.group_size = 8;
  staged.pool_threads = 1;
  staged.early_terminate = false;
  const auto want = bulk::all_pairs_gcd(moduli, staged);
  ASSERT_GT(want.hits.size(), 0u);

  for (const VecIsa isa : available_isas()) {
    bulk::AllPairsConfig cfg = staged;
    cfg.backend = BulkBackend::kVector;
    cfg.vec_isa = isa;
    const auto got = bulk::all_pairs_gcd(moduli, cfg);
    ASSERT_EQ(got.hits.size(), want.hits.size()) << to_string(isa);
    for (std::size_t h = 0; h < want.hits.size(); ++h) {
      EXPECT_EQ(got.hits[h].i, want.hits[h].i);
      EXPECT_EQ(got.hits[h].j, want.hits[h].j);
      EXPECT_EQ(got.hits[h].factor, want.hits[h].factor);
      EXPECT_EQ(got.hits[h].full_modulus, want.hits[h].full_modulus);
    }
    EXPECT_EQ(got.pairs_tested, want.pairs_tested);
    EXPECT_EQ(got.simt, want.simt) << to_string(isa);
  }
}

TEST(VecBackend, ProbeIncrementalBackendsAgree) {
  auto moduli = planted_corpus(1729, 21);
  const BigInt candidate = moduli.back() * BigInt(3);
  moduli.pop_back();

  bulk::AllPairsConfig staged;
  staged.backend = BulkBackend::kStaged;
  staged.group_size = 8;
  staged.early_terminate = false;
  const auto want = bulk::probe_incremental(candidate, moduli, staged);

  for (const VecIsa isa : available_isas()) {
    bulk::AllPairsConfig cfg = staged;
    cfg.backend = BulkBackend::kVector;
    cfg.vec_isa = isa;
    const auto got = bulk::probe_incremental(candidate, moduli, cfg);
    ASSERT_EQ(got.size(), want.size()) << to_string(isa);
    for (std::size_t h = 0; h < want.size(); ++h) {
      EXPECT_EQ(got[h].corpus_index, want[h].corpus_index);
      EXPECT_EQ(got[h].factor, want[h].factor);
      EXPECT_EQ(got[h].full_modulus, want[h].full_modulus);
    }
  }
}

TEST(VecBackend, ScanCorpusRoundTrips) {
  Xoshiro256 rng(31415);
  std::vector<BigInt> moduli;
  for (int i = 0; i < 9; ++i) {
    moduli.push_back(random_odd<std::uint32_t>(rng, 1 + rng.below(600)));
  }
  const bulk::ScanCorpus scan(moduli);
  ASSERT_EQ(scan.size(), moduli.size());
  for (std::size_t i = 0; i < moduli.size(); ++i) {
    EXPECT_EQ(bulk::to_default_bigint<bulk::ScanLimb>(scan.limbs(i)),
              moduli[i]);
    EXPECT_EQ(scan.bits(i), moduli[i].bit_length());
    // Normalized: no high zero limb.
    if (!scan.limbs(i).empty()) EXPECT_NE(scan.limbs(i).back(), 0u);
  }
}

}  // namespace
}  // namespace bulkgcd
