// Montgomery arithmetic tests: domain round trips, products and
// exponentiation against GMP and the divmod-based modpow, plus the speed
// rationale (it must match, not just be fast).
#include "rsa/montgomery.hpp"

#include <gtest/gtest.h>

#include "gmp_oracle.hpp"
#include "rsa/modmath.hpp"
#include "rsa/prime.hpp"
#include "rsa/rsa.hpp"

namespace bulkgcd::rsa {
namespace {

using bulkgcd::Xoshiro256;
using bulkgcd::test::Mpz;
using bulkgcd::test::random_odd;
using bulkgcd::test::random_value;
using bulkgcd::test::to_mpz;
using mp::BigInt;

TEST(MontgomeryTest, RejectsEvenOrTrivialModulus) {
  EXPECT_THROW(MontgomeryContext{BigInt(10)}, std::invalid_argument);
  EXPECT_THROW(MontgomeryContext{BigInt(1)}, std::invalid_argument);
  EXPECT_THROW(MontgomeryContext{BigInt()}, std::invalid_argument);
  EXPECT_NO_THROW(MontgomeryContext{BigInt(3)});
}

TEST(MontgomeryTest, DomainRoundTrip) {
  Xoshiro256 rng(131);
  for (int trial = 0; trial < 50; ++trial) {
    const BigInt n = random_odd<std::uint32_t>(rng, 3 + rng.below(400));
    if (n <= BigInt(1)) continue;
    const MontgomeryContext ctx(n);
    const BigInt a = random_value<std::uint32_t>(rng, 1 + rng.below(300)) % n;
    EXPECT_EQ(ctx.from_mont(ctx.to_mont(a)), a) << "n=" << n.to_hex();
  }
}

TEST(MontgomeryTest, ProductMatchesPlainModMul) {
  Xoshiro256 rng(132);
  for (int trial = 0; trial < 100; ++trial) {
    const BigInt n = random_odd<std::uint32_t>(rng, 3 + rng.below(300));
    if (n <= BigInt(1)) continue;
    const MontgomeryContext ctx(n);
    const BigInt a = random_value<std::uint32_t>(rng, 400) % n;
    const BigInt b = random_value<std::uint32_t>(rng, 400) % n;
    const BigInt expected = (a * b) % n;
    const BigInt got =
        ctx.from_mont(ctx.mul(ctx.to_mont(a), ctx.to_mont(b)));
    EXPECT_EQ(got, expected) << "n=" << n.to_hex();
  }
}

TEST(MontgomeryTest, PowMatchesGmpAndPlainModPow) {
  Xoshiro256 rng(133);
  for (int trial = 0; trial < 60; ++trial) {
    const BigInt n = random_odd<std::uint32_t>(rng, 3 + rng.below(300));
    if (n <= BigInt(1)) continue;
    const MontgomeryContext ctx(n);
    const BigInt base = random_value<std::uint32_t>(rng, 1 + rng.below(350));
    const BigInt exp = random_value<std::uint32_t>(rng, 1 + rng.below(120));
    const BigInt got = ctx.pow(base, exp);
    EXPECT_EQ(got, modpow(base, exp, n));
    Mpz expected;
    mpz_powm(expected.get(), to_mpz(base).get(), to_mpz(exp).get(),
             to_mpz(n).get());
    EXPECT_EQ(to_mpz(got), expected);
  }
}

TEST(MontgomeryTest, PowEdgeCases) {
  const MontgomeryContext ctx(BigInt(9));
  EXPECT_EQ(ctx.pow(BigInt(5), BigInt()), BigInt(1));      // x^0
  EXPECT_EQ(ctx.pow(BigInt(), BigInt(5)), BigInt());       // 0^k
  EXPECT_EQ(ctx.pow(BigInt(12), BigInt(2)), BigInt());     // 12 ≡ 3, 9 ≡ 0
  const MontgomeryContext tiny(BigInt(3));
  EXPECT_EQ(tiny.pow(BigInt(2), BigInt(1000)), BigInt(1));  // 2^even mod 3
}

TEST(MontgomeryTest, AdversarialModuli) {
  // All-ones limbs and values just below the modulus stress the final
  // conditional subtraction.
  Xoshiro256 rng(134);
  for (const std::size_t bits : {32u, 64u, 96u, 512u}) {
    std::vector<std::uint32_t> limbs(bits / 32, 0xFFFFFFFFu);
    const BigInt n = BigInt::from_limbs(limbs);  // 2^bits − 1 (odd)
    const MontgomeryContext ctx(n);
    const BigInt a = n - BigInt(1);
    const BigInt b = n - BigInt(2);
    const BigInt expected = (a * b) % n;
    EXPECT_EQ(ctx.from_mont(ctx.mul(ctx.to_mont(a), ctx.to_mont(b))), expected)
        << bits;
    // Fermat-ish sanity on a known prime close to a power of two.
  }
  const BigInt p = (BigInt(1) << 89) - BigInt(1);  // Mersenne prime
  const MontgomeryContext ctx(p);
  EXPECT_EQ(ctx.pow(BigInt(3), p - BigInt(1)), BigInt(1));  // Fermat
}

TEST(MontgomeryTest, FermatLittleTheoremOnGeneratedPrimes) {
  Xoshiro256 rng(135);
  for (int trial = 0; trial < 5; ++trial) {
    const BigInt p = random_prime(rng, 192);
    const MontgomeryContext ctx(p);
    const BigInt a = random_value<std::uint32_t>(rng, 150) % p;
    if (a.is_zero()) continue;
    EXPECT_EQ(ctx.pow(a, p - BigInt(1)), BigInt(1));
  }
}

TEST(MontgomeryTest, RsaRoundTripThroughContext) {
  Xoshiro256 rng(136);
  const KeyPair key = generate_keypair(rng, 512);
  const MontgomeryContext ctx(key.n);
  const BigInt msg = random_value<std::uint32_t>(rng, 400) % key.n;
  EXPECT_EQ(ctx.pow(ctx.pow(msg, key.e), key.d), msg);
}

}  // namespace
}  // namespace bulkgcd::rsa
