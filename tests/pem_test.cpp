// PEM/DER codec tests: byte-exact known vectors, round trips in both
// formats, bundles, and strict rejection of malformed input.
#include "rsa/pem.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "core/rng.hpp"
#include "gmp_oracle.hpp"
#include "rsa/rsa.hpp"

namespace bulkgcd::rsa {
namespace {

using mp::BigInt;
using test::random_value;

TEST(Base64Test, KnownVectors) {
  // RFC 4648 test vectors.
  const std::pair<const char*, const char*> vectors[] = {
      {"", ""},          {"f", "Zg=="},     {"fo", "Zm8="},
      {"foo", "Zm9v"},   {"foob", "Zm9vYg=="},
      {"fooba", "Zm9vYmE="}, {"foobar", "Zm9vYmFy"},
  };
  for (const auto& [plain, encoded] : vectors) {
    std::vector<std::uint8_t> bytes(plain, plain + std::strlen(plain));
    EXPECT_EQ(base64_encode(bytes), encoded);
    EXPECT_EQ(base64_decode(encoded), bytes);
  }
}

TEST(Base64Test, ToleratesWhitespaceRejectsGarbage) {
  EXPECT_EQ(base64_decode("Zm 9v\nYm\tFy\r\n"),
            base64_decode("Zm9vYmFy"));
  EXPECT_THROW(base64_decode("Zm9v!"), std::runtime_error);
  EXPECT_THROW(base64_decode("Zg==Zg"), std::runtime_error);  // data after pad
  EXPECT_THROW(base64_decode("Zg==="), std::runtime_error);   // over-padded
}

TEST(Base64Test, RandomRoundTrip) {
  Xoshiro256 rng(181);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint8_t> data(rng.below(200));
    for (auto& b : data) b = std::uint8_t(rng());
    EXPECT_EQ(base64_decode(base64_encode(data)), data);
  }
}

TEST(DerTest, KnownPkcs1Vector) {
  // n = 0xBB (has high bit -> needs 0x00 prefix), e = 3:
  // SEQUENCE(7) { INTEGER(2) 00 BB, INTEGER(1) 03 }
  PublicKey key;
  key.n = BigInt(0xBB);
  key.e = BigInt(3);
  const std::vector<std::uint8_t> expected = {0x30, 0x07, 0x02, 0x02, 0x00,
                                              0xBB, 0x02, 0x01, 0x03};
  EXPECT_EQ(der_encode_public_key(key, PemKind::kPkcs1), expected);
  EXPECT_EQ(der_decode_public_key(expected), key);
}

TEST(DerTest, LongFormLengthsForRealKeySizes) {
  Xoshiro256 rng(182);
  // 1024-bit modulus: the body exceeds 127 bytes, forcing long-form lengths
  // on the outer SEQUENCE (and two-byte form on the INTEGER).
  const KeyPair pair = generate_keypair(rng, 1024);
  const PublicKey key{pair.n, pair.e};
  const auto der = der_encode_public_key(key, PemKind::kPkcs1);
  EXPECT_GT(der.size(), 128u);
  EXPECT_EQ(der[1] & 0x80, 0x80);  // outer SEQUENCE uses long form
  EXPECT_EQ(der_decode_public_key(der), key);
  // And the SPKI wrapper nests it one level deeper, still round-tripping.
  EXPECT_EQ(der_decode_public_key(der_encode_public_key(key, PemKind::kSpki)),
            key);
}

TEST(DerTest, SpkiRoundTripAndDetection) {
  Xoshiro256 rng(183);
  const KeyPair pair = generate_keypair(rng, 256);
  const PublicKey key{pair.n, pair.e};
  const auto spki = der_encode_public_key(key, PemKind::kSpki);
  const auto pkcs1 = der_encode_public_key(key, PemKind::kPkcs1);
  EXPECT_NE(spki, pkcs1);
  EXPECT_EQ(der_decode_public_key(spki), key);
  EXPECT_EQ(der_decode_public_key(pkcs1), key);
}

TEST(DerTest, RejectsMalformedInput) {
  EXPECT_THROW(der_decode_public_key({}), std::runtime_error);
  EXPECT_THROW(der_decode_public_key({0x30}), std::runtime_error);  // truncated
  EXPECT_THROW(der_decode_public_key({0x31, 0x00}), std::runtime_error);  // wrong tag
  // SEQUENCE containing one INTEGER only.
  EXPECT_THROW(der_decode_public_key({0x30, 0x03, 0x02, 0x01, 0x05}),
               std::runtime_error);
  // Negative INTEGER.
  EXPECT_THROW(der_decode_public_key({0x30, 0x06, 0x02, 0x01, 0x85, 0x02,
                                      0x01, 0x03}),
               std::runtime_error);
  // SPKI with a non-RSA OID.
  std::vector<std::uint8_t> wrong_oid = {
      0x30, 0x10, 0x30, 0x0b, 0x06, 0x07, 0x2a, 0x86, 0x48, 0xce,
      0x3d, 0x02, 0x01, 0x05, 0x00, 0x03, 0x01, 0x00};
  EXPECT_THROW(der_decode_public_key(wrong_oid), std::runtime_error);
}

TEST(PemTest, RoundTripBothKinds) {
  Xoshiro256 rng(184);
  const KeyPair pair = generate_keypair(rng, 384);
  const PublicKey key{pair.n, pair.e};
  for (const PemKind kind : {PemKind::kPkcs1, PemKind::kSpki}) {
    const std::string pem = pem_encode_public_key(key, kind);
    EXPECT_NE(pem.find("-----BEGIN"), std::string::npos);
    EXPECT_NE(pem.find("-----END"), std::string::npos);
    // 64-character body lines
    const std::size_t first_line_end = pem.find('\n', pem.find("-----\n") + 6);
    EXPECT_LE(first_line_end - pem.find("-----\n") - 6, 64u);
    EXPECT_EQ(pem_decode_public_key(pem), key);
  }
}

TEST(PemTest, BundleExtractsAllKeysAndSkipsProse) {
  Xoshiro256 rng(185);
  std::string bundle = "harvested 2026-07-06 from host A\n\n";
  std::vector<PublicKey> keys;
  for (int i = 0; i < 3; ++i) {
    const KeyPair pair = generate_keypair(rng, 256);
    keys.push_back({pair.n, pair.e});
    bundle += pem_encode_public_key(
        keys.back(), i % 2 == 0 ? PemKind::kPkcs1 : PemKind::kSpki);
    bundle += "-- next --\n";
  }
  const auto decoded = pem_decode_bundle(bundle);
  ASSERT_EQ(decoded.size(), keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) EXPECT_EQ(decoded[i], keys[i]);
}

TEST(PemTest, RejectsMalformedArmor) {
  EXPECT_THROW(pem_decode_public_key("no pem here"), std::runtime_error);
  EXPECT_THROW(pem_decode_public_key("-----BEGIN RSA PUBLIC KEY-----\nZm9v\n"),
               std::runtime_error);  // missing END
  EXPECT_THROW(pem_decode_public_key(
                   "-----BEGIN CERTIFICATE-----\nAA==\n-----END CERTIFICATE-----\n"),
               std::runtime_error);  // unsupported label
  Xoshiro256 rng(186);
  const KeyPair a = generate_keypair(rng, 256);
  const std::string two = pem_encode_public_key({a.n, a.e}) +
                          pem_encode_public_key({a.n, a.e});
  EXPECT_THROW(pem_decode_public_key(two), std::runtime_error);  // use bundle
  EXPECT_EQ(pem_decode_bundle(two).size(), 2u);
}

TEST(PemTest, InteroperatesWithGmpOracleBytes) {
  // Build the DER INTEGER content independently via GMP export and compare
  // the embedded modulus bytes.
  Xoshiro256 rng(187);
  const KeyPair pair = generate_keypair(rng, 256);
  const auto der = der_encode_public_key({pair.n, pair.e}, PemKind::kPkcs1);
  // modulus content starts at offset 4 (30 len 02 len ...) for 256-bit keys
  // (length fields: outer long-form 0x81). Parse generically instead:
  const PublicKey decoded = der_decode_public_key(der);
  EXPECT_EQ(test::to_mpz(decoded.n), test::to_mpz(pair.n));
}

}  // namespace
}  // namespace bulkgcd::rsa
