// Core utilities: PRNG statistical sanity and thread-pool behaviour.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "core/rng.hpp"
#include "core/stats.hpp"
#include "core/thread_pool.hpp"
#include "core/timer.hpp"

namespace bulkgcd {
namespace {

TEST(XoshiroTest, DeterministicForSameSeed) {
  Xoshiro256 a(5), b(5), c(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
  bool differs = false;
  Xoshiro256 a2(5);
  for (int i = 0; i < 100; ++i) {
    if (a2() != c()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(XoshiroTest, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (const std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(XoshiroTest, BelowIsRoughlyUniform) {
  Xoshiro256 rng(8);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int histogram[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++histogram[rng.below(kBuckets)];
  for (const int count : histogram) {
    EXPECT_NEAR(count, kDraws / kBuckets, kDraws / kBuckets / 5);
  }
}

TEST(XoshiroTest, SplitProducesIndependentStream) {
  Xoshiro256 parent(9);
  Xoshiro256 child = parent.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  pool.parallel_for(0, 1000, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++touched[i];
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, ParallelForChunkBoundariesPartitionAnyRange) {
  // Property sweep over awkward (begin, count, threads) combinations —
  // ranges smaller than the pool, prime-sized, and ones that do not divide
  // evenly. Chunks must tile [begin, end) with no gap, overlap, or
  // out-of-range index, whatever the boundary arithmetic rounds to.
  for (const std::size_t threads : {1u, 2u, 3u, 5u}) {
    ThreadPool pool(threads);
    for (const std::size_t begin : {0u, 1u, 17u}) {
      for (const std::size_t count : {0u, 1u, 2u, 7u, 64u, 101u}) {
        std::vector<std::atomic<int>> touched(count);
        for (auto& t : touched) t.store(0);
        std::atomic<bool> out_of_range{false};
        pool.parallel_for(begin, begin + count,
                          [&](std::size_t lo, std::size_t hi) {
                            if (lo < begin || hi > begin + count || lo > hi) {
                              out_of_range.store(true);
                              return;
                            }
                            for (std::size_t i = lo; i < hi; ++i) {
                              ++touched[i - begin];
                            }
                          });
        EXPECT_FALSE(out_of_range.load())
            << "threads=" << threads << " begin=" << begin
            << " count=" << count;
        for (std::size_t i = 0; i < count; ++i) {
          EXPECT_EQ(touched[i].load(), 1)
              << "threads=" << threads << " begin=" << begin
              << " count=" << count << " index=" << i;
        }
      }
    }
  }
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineInsteadOfDeadlocking) {
  // A parallel_for issued from inside a pool worker used to enqueue chunks
  // no idle worker could ever run (every worker blocked on the inner
  // futures) — a guaranteed deadlock once the outer level saturated the
  // pool. Nested calls must detect the in-pool caller and execute inline.
  ThreadPool pool(2);
  std::atomic<int> inner_sum{0};
  std::atomic<int> outer_chunks{0};
  pool.parallel_for(0, 8, [&](std::size_t lo, std::size_t hi) {
    ++outer_chunks;
    EXPECT_TRUE(pool.inside_pool());
    pool.parallel_for(lo, hi, [&](std::size_t ilo, std::size_t ihi) {
      for (std::size_t i = ilo; i < ihi; ++i) inner_sum += int(i);
    });
  });
  EXPECT_EQ(inner_sum.load(), 0 + 1 + 2 + 3 + 4 + 5 + 6 + 7);
  EXPECT_GT(outer_chunks.load(), 0);
  EXPECT_FALSE(pool.inside_pool());  // the test thread is not a worker
}

TEST(ThreadPoolTest, NestedGlobalPoolUseCompletes) {
  // global_pool() is shared by every subsystem, so library code can end up
  // calling parallel_for from a task that is itself running on the global
  // pool (e.g. corpus generation inside a scan chunk).
  std::atomic<int> count{0};
  global_pool().parallel_for(0, 64, [&](std::size_t lo, std::size_t hi) {
    global_pool().parallel_for(lo, hi, [&](std::size_t ilo, std::size_t ihi) {
      count += int(ihi - ilo);
    });
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, NestedParallelForStillPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 4,
                        [&](std::size_t, std::size_t) {
                          pool.parallel_for(0, 2, [](std::size_t, std::size_t) {
                            throw std::runtime_error("nested boom");
                          });
                        }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 10,
                        [](std::size_t lo, std::size_t) {
                          if (lo == 0) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPoolTest, SubmitFuturePropagatesExceptions) {
  ThreadPool pool(1);
  auto future = pool.submit([] { throw std::logic_error("bad"); });
  EXPECT_THROW(future.get(), std::logic_error);
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  const double t0 = timer.seconds();
  EXPECT_GE(t0, 0.0);
  // busy-wait a tiny bit
  volatile std::uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(timer.seconds(), t0);
  EXPECT_GE(timer.micros(), t0 * 1e6);
  timer.reset();
  EXPECT_LT(timer.seconds(), 1.0);
}

TEST(HistogramTest, ClampsOutOfRangeValuesIntoEdgeBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(-3.0);   // below range -> bin 0
  h.add(0.0);    // lo edge -> bin 0
  h.add(5.0);    // middle -> bin 2
  h.add(99.0);   // above range -> last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 1u);
}

TEST(HistogramTest, DegenerateRangeLandsEverythingInBinZero) {
  // lo == hi would make the bin width zero; add() must not divide by the
  // zero span (NaN bin index = out-of-bounds write). Every value collapses
  // into bin 0 instead.
  Histogram flat(3.0, 3.0, 4);
  flat.add(-1.0);
  flat.add(3.0);
  flat.add(1e9);
  EXPECT_EQ(flat.total(), 3u);
  EXPECT_EQ(flat.count(0), 3u);
  for (std::size_t b = 1; b < flat.bins(); ++b) EXPECT_EQ(flat.count(b), 0u);

  // Inverted ranges (hi < lo) take the same guard.
  Histogram inverted(10.0, 0.0, 4);
  inverted.add(5.0);
  EXPECT_EQ(inverted.count(0), 1u);

  // Rendering a degenerate histogram stays well-formed too.
  EXPECT_NE(flat.render().find('#'), std::string::npos);
}

TEST(SplitMix64Test, KnownSequence) {
  // Reference values from the SplitMix64 definition with seed 0.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64(state), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(splitmix64(state), 0x06c45d188009454fULL);
}

}  // namespace
}  // namespace bulkgcd
