// Telemetry subsystem tests: sharded-counter exactness under a thread pool,
// registry registration rules, histogram binning/merging, scoped spans,
// JSON/Prometheus exposition, and the NDJSON emitter. The parallel cases
// are also the workload the CI ThreadSanitizer job leans on — the relaxed
// per-thread counter slots must stay data-race-free, not just correct.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/thread_pool.hpp"
#include "obs/emitter.hpp"
#include "obs/exposition.hpp"
#include "obs/span.hpp"

namespace bulkgcd::obs {
namespace {

const Snapshot::CounterValue* find_counter(const Snapshot& snap,
                                           const std::string& name) {
  for (const auto& c : snap.counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const Snapshot::HistogramValue* find_histogram(const Snapshot& snap,
                                               const std::string& name) {
  for (const auto& h : snap.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

TEST(MetricsRegistryTest, CounterAggregatesExactlyAcrossPoolThreads) {
  MetricsRegistry registry;
  Counter* items = registry.counter("items_total");
  Counter* batches = registry.counter("batches_total");

  constexpr std::size_t kRange = 100000;
  ThreadPool pool(8);
  pool.parallel_for(0, kRange, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) items->inc();
    batches->inc();
  }, /*chunks=*/64);

  EXPECT_EQ(items->value(), kRange);
  EXPECT_EQ(batches->value(), 64u);

  const Snapshot snap = registry.snapshot();
  const auto* value = find_counter(snap, "items_total");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(value->value, kRange);
}

TEST(MetricsRegistryTest, CountersSurviveManyShortLivedThreads) {
  // Each std::thread gets a fresh thread-local block; totals must still be
  // exact after the threads exit (shards outlive their writers).
  MetricsRegistry registry;
  Counter* c = registry.counter("short_lived_total");
  for (int round = 0; round < 4; ++round) {
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 1000; ++i) c->inc();
      });
    }
    for (auto& thread : threads) thread.join();
  }
  EXPECT_EQ(c->value(), 16000u);
}

TEST(MetricsRegistryTest, RegistrationIsIdempotentAndKindChecked) {
  MetricsRegistry registry;
  Counter* a = registry.counter("requests_total");
  Counter* b = registry.counter("requests_total");
  EXPECT_EQ(a, b);
  Gauge* g1 = registry.gauge("depth");
  EXPECT_EQ(g1, registry.gauge("depth"));
  HistogramMetric* h1 = registry.histogram("latency_seconds", 0.0, 1.0, 10);
  EXPECT_EQ(h1, registry.histogram("latency_seconds", 0.0, 1.0, 10));

  EXPECT_THROW(registry.gauge("requests_total"), std::invalid_argument);
  EXPECT_THROW(registry.counter("depth"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("requests_total", 0, 1),
               std::invalid_argument);
  EXPECT_THROW(registry.counter(""), std::invalid_argument);
  EXPECT_THROW(registry.counter("1leading_digit"), std::invalid_argument);
  EXPECT_THROW(registry.counter("has-dash"), std::invalid_argument);
}

TEST(MetricsRegistryTest, TwoRegistriesOnOneThreadStayIndependent) {
  MetricsRegistry first, second;
  Counter* a = first.counter("x_total");
  Counter* b = second.counter("x_total");
  a->add(3);
  b->add(5);
  EXPECT_EQ(a->value(), 3u);
  EXPECT_EQ(b->value(), 5u);
}

TEST(MetricsRegistryTest, GaugeIsLastWriterWins) {
  MetricsRegistry registry;
  Gauge* g = registry.gauge("rate");
  g->set(1.5);
  g->set(-2.25);
  EXPECT_DOUBLE_EQ(g->value(), -2.25);
  const Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, -2.25);
}

TEST(MetricsRegistryTest, SnapshotSequenceIncreases) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.snapshot().sequence, 0u);
  EXPECT_EQ(registry.snapshot().sequence, 1u);
  EXPECT_EQ(registry.snapshot().sequence, 2u);
}

TEST(HistogramMetricTest, BinsClampAndStatsStream) {
  MetricsRegistry registry;
  HistogramMetric* h = registry.histogram("h", 0.0, 10.0, 10);
  h->observe(-5.0);   // clamps into bin 0
  h->observe(0.5);    // bin 0
  h->observe(5.5);    // bin 5
  h->observe(99.0);   // clamps into bin 9
  const Snapshot snap = registry.snapshot();
  const auto* v = find_histogram(snap, "h");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->count, 4u);
  EXPECT_DOUBLE_EQ(v->sum, 100.0);
  EXPECT_DOUBLE_EQ(v->min, -5.0);
  EXPECT_DOUBLE_EQ(v->max, 99.0);
  ASSERT_EQ(v->bins.size(), 10u);
  EXPECT_EQ(v->bins[0], 2u);
  EXPECT_EQ(v->bins[5], 1u);
  EXPECT_EQ(v->bins[9], 1u);
  // p50 of {bin0, bin0, bin5, bin9} sits inside bin 0's [0, 1) span.
  EXPECT_GE(v->quantile(0.25), 0.0);
  EXPECT_LE(v->quantile(0.25), 1.0);
  EXPECT_GE(v->quantile(1.0), 9.0);
}

TEST(HistogramMetricTest, LocalHistogramMergeMatchesDirectObserve) {
  MetricsRegistry direct_reg, merged_reg;
  HistogramMetric* direct = direct_reg.histogram("h", 0.0, 100.0, 20);
  HistogramMetric* target = merged_reg.histogram("h", 0.0, 100.0, 20);
  LocalHistogram local(*target);
  for (int i = 0; i < 500; ++i) {
    const double v = double((i * 37) % 120);  // exercises clamping too
    direct->observe(v);
    local.observe(v);
  }
  EXPECT_EQ(local.count(), 500u);
  target->merge(local);
  local.reset();
  EXPECT_EQ(local.count(), 0u);
  target->merge(local);  // empty merge is a no-op

  const Snapshot a = direct_reg.snapshot();
  const Snapshot b = merged_reg.snapshot();
  const auto* va = find_histogram(a, "h");
  const auto* vb = find_histogram(b, "h");
  ASSERT_NE(va, nullptr);
  ASSERT_NE(vb, nullptr);
  EXPECT_EQ(va->count, vb->count);
  EXPECT_DOUBLE_EQ(va->sum, vb->sum);
  EXPECT_DOUBLE_EQ(va->min, vb->min);
  EXPECT_DOUBLE_EQ(va->max, vb->max);
  EXPECT_EQ(va->bins, vb->bins);
}

TEST(HistogramMetricTest, DegenerateRangeLandsEverythingInBinZero) {
  MetricsRegistry registry;
  HistogramMetric* h = registry.histogram("flat", 5.0, 5.0, 8);
  h->observe(4.0);
  h->observe(5.0);
  h->observe(6.0);
  LocalHistogram local(*h);
  local.observe(123.0);
  h->merge(local);
  const Snapshot snap = registry.snapshot();
  const auto* v = find_histogram(snap, "flat");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->count, 4u);
  EXPECT_EQ(v->bins[0], 4u);
}

TEST(ScopedSpanTest, RecordsElapsedSecondsIntoTarget) {
  MetricsRegistry registry;
  HistogramMetric* h = registry.histogram("phase_seconds", 0.0, 1.0, 10);
  {
    ScopedSpan span(h);
  }
  EXPECT_EQ(h->count(), 1u);

  LocalHistogram local(*h);
  {
    ScopedLocalSpan span(&local);
  }
  EXPECT_EQ(local.count(), 1u);
}

TEST(ScopedSpanTest, NullTargetIsFreeAndSafe) {
  {
    ScopedSpan span(nullptr);
    ScopedLocalSpan local_span(nullptr);
  }
  SUCCEED();
}

TEST(ExpositionTest, JsonShapeAndValues) {
  MetricsRegistry registry;
  registry.counter("pairs_total")->add(42);
  registry.gauge("rate")->set(2.5);
  registry.gauge("bad")->set(std::numeric_limits<double>::quiet_NaN());
  registry.histogram("lat_seconds", 0.0, 1.0, 4)->observe(0.3);

  const std::string json = to_json(registry.snapshot());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_EQ(json.find('\n'), std::string::npos) << "must be one NDJSON line";
  EXPECT_NE(json.find("\"pairs_total\":42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rate\":2.5"), std::string::npos) << json;
  // Non-finite values are not valid JSON; they render as 0.
  EXPECT_NE(json.find("\"bad\":0"), std::string::npos) << json;
  EXPECT_EQ(json.find("nan"), std::string::npos) << json;
  EXPECT_NE(json.find("\"lat_seconds\":{\"lo\":0,\"hi\":1,\"count\":1"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"bins\":[0,1,0,0]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sequence\":0"), std::string::npos) << json;
}

TEST(ExpositionTest, PrometheusTextIsCumulative) {
  MetricsRegistry registry;
  registry.counter("pairs_total")->add(7);
  HistogramMetric* h = registry.histogram("lat_seconds", 0.0, 4.0, 4);
  h->observe(0.5);
  h->observe(1.5);
  h->observe(99.0);  // clamped into the last bin

  const std::string text = to_prometheus(registry.snapshot());
  EXPECT_NE(text.find("# TYPE pairs_total counter\npairs_total 7\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE lat_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"1\"} 1\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"2\"} 2\n"), std::string::npos)
      << text;
  // +Inf bucket always equals the total count (clamped samples included).
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("lat_seconds_count 3\n"), std::string::npos) << text;
}

class EmitterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            (std::string("bulkgcd_obs_emitter_") +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::error_code ignored;
    std::filesystem::remove(path_, ignored);
  }
  void TearDown() override {
    std::error_code ignored;
    std::filesystem::remove(path_, ignored);
  }
  std::vector<std::string> lines() const {
    std::ifstream in(path_);
    std::vector<std::string> out;
    std::string line;
    while (std::getline(in, line)) out.push_back(line);
    return out;
  }
  std::filesystem::path path_;
};

TEST_F(EmitterTest, EmitNowAndStopAppendSnapshotLines) {
  MetricsRegistry registry;
  Counter* c = registry.counter("events_total");
  {
    TelemetryEmitter emitter(registry, path_, /*interval_seconds=*/0.0);
    c->inc();
    emitter.emit_now();
    c->inc();
    emitter.stop();
    emitter.stop();  // idempotent
    EXPECT_EQ(emitter.lines_written(), 2u);
  }
  const auto written = lines();
  ASSERT_EQ(written.size(), 2u);
  EXPECT_NE(written[0].find("\"events_total\":1"), std::string::npos);
  EXPECT_NE(written[1].find("\"events_total\":2"), std::string::npos);
  for (const auto& line : written) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
}

TEST_F(EmitterTest, StopAlwaysWritesOneFinalLine) {
  // Regression: a zero-interval emitter that was never asked for a snapshot
  // must still flush exactly one final line on stop(), carrying the
  // registry's state at shutdown — the "last observation wins" contract
  // both CLIs rely on for their end-of-run summaries.
  MetricsRegistry registry;
  Counter* c = registry.counter("final_line_total");
  {
    TelemetryEmitter emitter(registry, path_, /*interval_seconds=*/0.0);
    c->add(41);
    c->inc();
    emitter.stop();
    EXPECT_EQ(emitter.lines_written(), 1u);
    emitter.stop();  // idempotent: still exactly one line
    EXPECT_EQ(emitter.lines_written(), 1u);
  }
  const auto written = lines();
  ASSERT_EQ(written.size(), 1u);
  EXPECT_NE(written[0].find("\"final_line_total\":42"), std::string::npos)
      << written[0];
}

TEST_F(EmitterTest, PeriodicThreadWritesAndDestructorFinalizes) {
  MetricsRegistry registry;
  registry.counter("ticks_total")->inc();
  {
    TelemetryEmitter emitter(registry, path_, /*interval_seconds=*/0.02);
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
  }  // destructor stops the thread and writes the final line
  const auto written = lines();
  EXPECT_GE(written.size(), 2u);
}

TEST_F(EmitterTest, AppendsAcrossEmitters) {
  MetricsRegistry registry;
  {
    TelemetryEmitter first(registry, path_, 0.0);
  }
  {
    TelemetryEmitter second(registry, path_, 0.0);
  }
  EXPECT_EQ(lines().size(), 2u);  // append mode: second run keeps the first
}

TEST(EmitterErrorTest, UnwritablePathThrows) {
  MetricsRegistry registry;
  EXPECT_THROW(TelemetryEmitter(registry, "/nonexistent-dir/x/metrics.ndjson",
                                0.0),
               std::runtime_error);
}

}  // namespace
}  // namespace bulkgcd::obs
