// Barrett reduction and the binary (division-free) modular inverse:
// cross-checked against GMP, the divmod path, and Montgomery.
#include <gtest/gtest.h>

#include "gmp_oracle.hpp"
#include "rsa/barrett.hpp"
#include "rsa/modmath.hpp"
#include "rsa/montgomery.hpp"

namespace bulkgcd::rsa {
namespace {

using bulkgcd::Xoshiro256;
using test::Mpz;
using test::random_odd;
using test::random_value;
using test::to_mpz;
using mp::BigInt;

TEST(BarrettTest, RejectsZeroModulus) {
  EXPECT_THROW(BarrettContext{BigInt()}, std::invalid_argument);
}

TEST(BarrettTest, ReduceMatchesDivision) {
  Xoshiro256 rng(191);
  for (int trial = 0; trial < 200; ++trial) {
    BigInt n = random_value<std::uint32_t>(rng, 2 + rng.below(300));
    if (n.is_zero()) n = BigInt(7);
    const BarrettContext ctx(n);
    // Any x < B^{2k}: products of two reduced values and beyond.
    const BigInt x =
        random_value<std::uint32_t>(rng, 1 + rng.below(2 * 32 * n.size()));
    EXPECT_EQ(ctx.reduce(x), x % n) << "n=" << n.to_hex() << " x=" << x.to_hex();
  }
}

TEST(BarrettTest, WorksForEvenModuli) {
  // The capability Montgomery lacks.
  Xoshiro256 rng(192);
  for (int trial = 0; trial < 50; ++trial) {
    BigInt n = random_value<std::uint32_t>(rng, 2 + rng.below(200)) << 1;
    if (n.is_zero()) n = BigInt(8);
    const BarrettContext ctx(n);
    const BigInt a = random_value<std::uint32_t>(rng, 150) % n;
    const BigInt b = random_value<std::uint32_t>(rng, 150) % n;
    EXPECT_EQ(ctx.mul(a, b), (a * b) % n);
  }
}

TEST(BarrettTest, PowAgreesWithGmpAndMontgomery) {
  Xoshiro256 rng(193);
  for (int trial = 0; trial < 50; ++trial) {
    const BigInt n = random_odd<std::uint32_t>(rng, 3 + rng.below(250));
    if (n <= BigInt(1)) continue;
    const BarrettContext barrett(n);
    const MontgomeryContext montgomery(n);
    const BigInt base = random_value<std::uint32_t>(rng, 1 + rng.below(300));
    const BigInt exp = random_value<std::uint32_t>(rng, 1 + rng.below(100));
    const BigInt got = barrett.pow(base, exp);
    EXPECT_EQ(got, montgomery.pow(base, exp));
    Mpz expected;
    mpz_powm(expected.get(), to_mpz(base).get(), to_mpz(exp).get(),
             to_mpz(n).get());
    EXPECT_EQ(to_mpz(got), expected);
  }
}

TEST(BarrettTest, EdgeCases) {
  const BarrettContext one(BigInt(1));
  EXPECT_EQ(one.reduce(BigInt(12345)), BigInt());
  EXPECT_EQ(one.pow(BigInt(3), BigInt(4)), BigInt());
  const BarrettContext small(BigInt(2));
  EXPECT_EQ(small.reduce(BigInt(9)), BigInt(1));
  const BarrettContext big(BigInt(97));
  EXPECT_EQ(big.pow(BigInt(3), BigInt(96)), BigInt(1));  // Fermat
}

TEST(BinaryModInvTest, MatchesDivisionBasedInverse) {
  Xoshiro256 rng(194);
  int tested = 0;
  while (tested < 100) {
    const BigInt m = random_odd<std::uint32_t>(rng, 3 + rng.below(250));
    if (m <= BigInt(1)) continue;
    const BigInt a = random_value<std::uint32_t>(rng, 1 + rng.below(300));
    BigInt expected;
    bool coprime = true;
    try {
      expected = modinv(a, m);
    } catch (const std::domain_error&) {
      coprime = false;
    }
    if (!coprime) {
      EXPECT_THROW(modinv_odd_binary(a, m), std::domain_error);
    } else {
      const BigInt got = modinv_odd_binary(a, m);
      EXPECT_EQ(got, expected);
      EXPECT_EQ((a * got) % m, BigInt(1));
      ++tested;
    }
  }
}

TEST(BinaryModInvTest, RejectsEvenModulusAndNonCoprime) {
  EXPECT_THROW(modinv_odd_binary(BigInt(3), BigInt(8)), std::domain_error);
  EXPECT_THROW(modinv_odd_binary(BigInt(3), BigInt(1)), std::domain_error);
  EXPECT_THROW(modinv_odd_binary(BigInt(6), BigInt(9)), std::domain_error);
  EXPECT_THROW(modinv_odd_binary(BigInt(9), BigInt(9)), std::domain_error);
  EXPECT_THROW(modinv_odd_binary(BigInt(), BigInt(9)), std::domain_error);
}

TEST(BinaryModInvTest, RsaPrivateExponentViaBinaryInverse) {
  // d = e^{-1} mod (p-1)(q-1): φ is even, so invert modulo the odd part and
  // reconstruct — or simply verify against the standard path on odd moduli.
  Xoshiro256 rng(195);
  const BigInt m = random_odd<std::uint32_t>(rng, 160);
  const BigInt e(65537);
  try {
    const BigInt inv = modinv_odd_binary(e, m);
    EXPECT_EQ((e * inv) % m, BigInt(1));
  } catch (const std::domain_error&) {
    // m happened to share a factor with e: acceptable, rare.
  }
}

}  // namespace
}  // namespace bulkgcd::rsa
