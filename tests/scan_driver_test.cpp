// Resumable scan driver tests: checkpoint/resume equivalence with the
// one-shot sweep, kill-and-resume determinism, retry-with-isolation,
// quarantine durability, corpus-digest validation, torn-tail recovery, and
// structured progress reporting.
#include "bulk/scan_driver.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

#include "bulk/block_grid.hpp"
#include "obs/metrics.hpp"
#include "rsa/corpus.hpp"
#include "rsa/keystore.hpp"

namespace bulkgcd::bulk {
namespace {

using mp::BigInt;
using rsa::CorpusSpec;
using rsa::WeakCorpus;

WeakCorpus test_corpus(std::size_t count, std::size_t weak, std::uint64_t seed) {
  CorpusSpec spec;
  spec.count = count;
  spec.modulus_bits = 128;
  spec.weak_pairs = weak;
  spec.seed = seed;
  return rsa::generate_corpus(spec);
}

void expect_same_hits(const std::vector<FactorHit>& a,
                      const std::vector<FactorHit>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].i, b[k].i);
    EXPECT_EQ(a[k].j, b[k].j);
    EXPECT_EQ(a[k].factor, b[k].factor);
  }
}

class ScanDriverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            (std::string("bulkgcd_scan_ckpt_") +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::error_code ignored;
    std::filesystem::remove(path_, ignored);
  }
  void TearDown() override {
    std::error_code ignored;
    std::filesystem::remove(path_, ignored);
  }
  std::filesystem::path path_;
};

TEST(BlockGridTest, BlockIndexingMatchesRowMajorEnumeration) {
  for (const auto [m, r] : {std::pair<std::size_t, std::size_t>{26, 8},
                            {26, 5}, {7, 1}, {6, 1000}, {100, 7}}) {
    const BlockGrid grid(m, r);
    std::size_t index = 0;
    std::uint64_t pairs = 0;
    for (std::size_t i = 0; i < grid.groups; ++i) {
      for (std::size_t j = i; j < grid.groups; ++j, ++index) {
        const auto b = grid.block(index);
        ASSERT_EQ(b.i, i) << "m=" << m << " r=" << r << " index=" << index;
        ASSERT_EQ(b.j, j);
        pairs += grid.pairs_in_block(b);
      }
    }
    EXPECT_EQ(index, grid.block_count());
    EXPECT_EQ(pairs, grid.total_pairs());
    EXPECT_EQ(grid.pairs_in_range(0, grid.block_count()), grid.total_pairs());
  }
}

TEST_F(ScanDriverTest, NoCheckpointMatchesAllPairsSweep) {
  const WeakCorpus corpus = test_corpus(26, 4, 101);
  ScanConfig config;
  config.pairs.group_size = 8;
  const ScanReport report = run_resumable_scan(corpus.moduli, config);
  const AllPairsResult direct = all_pairs_gcd(corpus.moduli, config.pairs);
  EXPECT_TRUE(report.complete);
  EXPECT_FALSE(report.resumed);
  EXPECT_EQ(report.result.pairs_tested, direct.pairs_tested);
  expect_same_hits(report.result.hits, direct.hits);
}

TEST_F(ScanDriverTest, KillAndResumeReportsSameHitSet) {
  const WeakCorpus corpus = test_corpus(26, 4, 102);
  ScanConfig config;
  config.pairs.group_size = 4;
  config.chunk_blocks = 3;
  config.checkpoint = path_;
  // Uninterrupted reference run (no checkpoint involved).
  ScanConfig uninterrupted = config;
  uninterrupted.checkpoint.clear();
  const ScanReport reference = run_resumable_scan(corpus.moduli, uninterrupted);
  ASSERT_TRUE(reference.complete);
  ASSERT_FALSE(reference.result.hits.empty());

  // Interrupt after every single chunk: the worst-case kill schedule.
  config.stop_after_chunks = 1;
  ScanReport report;
  int runs = 0;
  do {
    report = run_resumable_scan(corpus.moduli, config);
    ASSERT_LT(++runs, 500) << "scan never completed";
  } while (!report.complete);

  EXPECT_GT(runs, 2);  // the interruption actually happened
  EXPECT_TRUE(report.resumed);
  EXPECT_TRUE(report.quarantined.empty());
  EXPECT_EQ(report.chunks_done, report.chunks_total);
  EXPECT_EQ(report.result.pairs_tested, reference.result.pairs_tested);
  expect_same_hits(report.result.hits, reference.result.hits);
}

TEST_F(ScanDriverTest, ResumeAfterCleanCompletionIsANoop) {
  const WeakCorpus corpus = test_corpus(12, 2, 103);
  ScanConfig config;
  config.pairs.group_size = 4;
  config.chunk_blocks = 2;
  config.checkpoint = path_;
  const ScanReport first = run_resumable_scan(corpus.moduli, config);
  ASSERT_TRUE(first.complete);
  const ScanReport second = run_resumable_scan(corpus.moduli, config);
  EXPECT_TRUE(second.complete);
  EXPECT_TRUE(second.resumed);
  EXPECT_EQ(second.chunks_done_this_run, 0u);
  EXPECT_EQ(second.result.pairs_tested, first.result.pairs_tested);
  expect_same_hits(second.result.hits, first.result.hits);
}

TEST_F(ScanDriverTest, FirstAttemptFailureFallsBackToScalarEngine) {
  const WeakCorpus corpus = test_corpus(16, 2, 104);
  ScanConfig config;
  config.pairs.group_size = 4;
  config.chunk_blocks = 2;
  config.chunk_hook = [](std::size_t, int attempt) {
    if (attempt == 0) throw std::runtime_error("injected first-attempt fault");
  };
  const ScanReport report = run_resumable_scan(corpus.moduli, config);
  const AllPairsResult direct = all_pairs_gcd(corpus.moduli, config.pairs);
  EXPECT_TRUE(report.complete);
  EXPECT_TRUE(report.quarantined.empty());
  // Every chunk ran on the scalar retry path; the hit set is identical.
  EXPECT_GT(report.result.scalar.iterations, 0u);
  expect_same_hits(report.result.hits, direct.hits);
}

TEST_F(ScanDriverTest, ChunkFailingTwiceIsQuarantinedNotFatal) {
  const WeakCorpus corpus = test_corpus(16, 0, 105);
  ScanConfig config;
  config.pairs.group_size = 4;
  config.chunk_blocks = 2;
  config.checkpoint = path_;
  config.chunk_hook = [](std::size_t chunk, int) {
    if (chunk == 1) throw std::runtime_error("poisoned chunk");
  };
  const ScanReport report = run_resumable_scan(corpus.moduli, config);
  EXPECT_TRUE(report.complete);
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0].chunk_index, 1u);
  EXPECT_NE(report.quarantined[0].error.find("poisoned chunk"),
            std::string::npos);
  EXPECT_EQ(report.chunks_done + 1, report.chunks_total);

  // Quarantine is durable: a resume without the fault does NOT silently
  // re-run the chunk — an operator re-runs it deliberately.
  ScanConfig clean = config;
  clean.chunk_hook = nullptr;
  const ScanReport resumed = run_resumable_scan(corpus.moduli, clean);
  EXPECT_TRUE(resumed.complete);
  EXPECT_TRUE(resumed.resumed);
  ASSERT_EQ(resumed.quarantined.size(), 1u);
  EXPECT_EQ(resumed.chunks_done_this_run, 0u);
}

TEST_F(ScanDriverTest, CheckpointRejectsDifferentCorpus) {
  const WeakCorpus corpus_a = test_corpus(16, 1, 106);
  const WeakCorpus corpus_b = test_corpus(16, 1, 107);
  ScanConfig config;
  config.pairs.group_size = 4;
  config.chunk_blocks = 2;
  config.checkpoint = path_;
  config.stop_after_chunks = 2;
  const ScanReport partial = run_resumable_scan(corpus_a.moduli, config);
  ASSERT_FALSE(partial.complete);

  config.stop_after_chunks = 0;
  EXPECT_THROW(run_resumable_scan(corpus_b.moduli, config),
               std::runtime_error);

  config.discard_mismatched_checkpoint = true;
  const ScanReport fresh = run_resumable_scan(corpus_b.moduli, config);
  EXPECT_TRUE(fresh.complete);
  EXPECT_FALSE(fresh.resumed);
  const AllPairsResult direct = all_pairs_gcd(corpus_b.moduli, config.pairs);
  expect_same_hits(fresh.result.hits, direct.hits);
}

TEST_F(ScanDriverTest, CheckpointRejectsChangedScanGeometry) {
  const WeakCorpus corpus = test_corpus(16, 1, 108);
  ScanConfig config;
  config.pairs.group_size = 4;
  config.chunk_blocks = 2;
  config.checkpoint = path_;
  config.stop_after_chunks = 1;
  ASSERT_FALSE(run_resumable_scan(corpus.moduli, config).complete);

  ScanConfig changed = config;
  changed.stop_after_chunks = 0;
  changed.chunk_blocks = 5;  // different work-unit geometry
  EXPECT_THROW(run_resumable_scan(corpus.moduli, changed), std::runtime_error);
}

TEST_F(ScanDriverTest, TornTailIsDiscardedOnResume) {
  const WeakCorpus corpus = test_corpus(20, 3, 109);
  ScanConfig config;
  config.pairs.group_size = 4;
  config.chunk_blocks = 2;
  config.checkpoint = path_;
  config.stop_after_chunks = 3;
  const ScanReport partial = run_resumable_scan(corpus.moduli, config);
  ASSERT_FALSE(partial.complete);

  // Simulate a crash mid-write: a record header with a truncated body.
  {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    const char torn[] = {1, 0x07, 0x00, 0x00};
    out.write(torn, sizeof(torn));
  }

  config.stop_after_chunks = 0;
  const ScanReport resumed = run_resumable_scan(corpus.moduli, config);
  EXPECT_TRUE(resumed.complete);
  EXPECT_TRUE(resumed.resumed);
  const AllPairsResult direct = all_pairs_gcd(corpus.moduli, config.pairs);
  EXPECT_EQ(resumed.result.pairs_tested, direct.pairs_tested);
  expect_same_hits(resumed.result.hits, direct.hits);
}

TEST_F(ScanDriverTest, SingleThreadedDriverMatchesParallel) {
  const WeakCorpus corpus = test_corpus(20, 3, 110);
  ScanConfig config;
  config.pairs.group_size = 4;
  config.chunk_blocks = 3;
  ScanConfig serial = config;
  serial.pairs.pool_threads = 1;
  const ScanReport a = run_resumable_scan(corpus.moduli, config);
  const ScanReport b = run_resumable_scan(corpus.moduli, serial);
  EXPECT_EQ(a.result.pairs_tested, b.result.pairs_tested);
  expect_same_hits(a.result.hits, b.result.hits);
}

TEST_F(ScanDriverTest, EmptyAndSingletonCorpusCompleteImmediately) {
  EXPECT_TRUE(run_resumable_scan({}, {}).complete);
  const std::vector<BigInt> one = {BigInt(15)};
  const ScanReport report = run_resumable_scan(one, {});
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.result.pairs_tested, 0u);
}

class CountingSink : public ProgressSink {
 public:
  void on_progress(const ScanProgress& p) override {
    EXPECT_GE(p.pairs_done, last_pairs_done_);
    last_pairs_done_ = p.pairs_done;
    last_ = p;
    ++progress_records_;
  }
  void on_hit(const FactorHit&) override { ++hits_; }
  void on_quarantine(std::size_t, const std::string&) override {
    ++quarantines_;
  }

  std::size_t progress_records_ = 0;
  std::size_t hits_ = 0;
  std::size_t quarantines_ = 0;
  std::uint64_t last_pairs_done_ = 0;
  ScanProgress last_;
};

TEST_F(ScanDriverTest, ProgressSinkSeesCommitsHitsAndTotals) {
  const WeakCorpus corpus = test_corpus(20, 3, 111);
  CountingSink sink;
  ScanConfig config;
  config.pairs.group_size = 4;
  config.pairs.pool_threads = 1;  // deterministic commit order
  config.chunk_blocks = 2;
  config.sink = &sink;
  const ScanReport report = run_resumable_scan(corpus.moduli, config);
  ASSERT_TRUE(report.complete);
  EXPECT_GT(sink.progress_records_, 1u);
  EXPECT_EQ(sink.hits_, report.result.hits.size());
  EXPECT_EQ(sink.quarantines_, 0u);
  EXPECT_EQ(sink.last_.pairs_done, sink.last_.pairs_total);
  EXPECT_EQ(sink.last_.pairs_total, 20u * 19u / 2u);
  EXPECT_EQ(sink.last_.chunks_done, report.chunks_total);
  EXPECT_EQ(sink.last_.blocks_done, sink.last_.blocks_total);
}

TEST_F(ScanDriverTest, BlockRateUsesActualCommittedBlocks) {
  // Regression: blocks_per_second was computed as
  // committed_this_run * chunk_blocks / elapsed, which overstates the rate
  // (and shrinks the ETA) whenever the final chunk is shorter than
  // chunk_blocks. Geometry chosen so chunk_blocks does NOT divide the block
  // count: 20 moduli / group 4 -> 5 groups -> 15 blocks; chunks of 4 cover
  // them as 4+4+4+3, and the old formula would claim 16 blocks of work.
  const WeakCorpus corpus = test_corpus(20, 1, 119);
  CountingSink sink;
  ScanConfig config;
  config.pairs.group_size = 4;
  config.pairs.pool_threads = 1;
  config.chunk_blocks = 4;
  config.sink = &sink;
  config.progress_every = 1;
  const ScanReport report = run_resumable_scan(corpus.moduli, config);
  ASSERT_TRUE(report.complete);
  const ScanProgress& last = sink.last_;
  EXPECT_EQ(last.blocks_total, 15u);
  EXPECT_EQ(last.blocks_done, 15u);
  ASSERT_GT(last.elapsed_seconds, 0.0);
  // Rate × elapsed must reconstruct the blocks actually committed, not a
  // chunk-granular overestimate.
  EXPECT_NEAR(last.blocks_per_second * last.elapsed_seconds, 15.0, 1e-6);
}

TEST(StreamProgressSinkTest, NonFiniteEtaRendersAsDashes) {
  // Regression: the first progress record of a run (or a resumed scan whose
  // run has committed nothing yet) has pairs_per_second == 0, which used to
  // print "eta inf"/"eta nan". The sink must guard the division's output.
  auto render = [](double pairs_per_second, double eta_seconds) {
    std::FILE* out = std::tmpfile();
    StreamProgressSink sink(out);
    ScanProgress p;
    p.pairs_total = 100;
    p.pairs_per_second = pairs_per_second;
    p.eta_seconds = eta_seconds;
    sink.on_progress(p);
    std::rewind(out);
    char buf[256] = {};
    const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, out);
    std::fclose(out);
    return std::string(buf, n);
  };
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_NE(render(0.0, inf).find("eta --"), std::string::npos);
  EXPECT_NE(render(0.0, std::nan("")).find("eta --"), std::string::npos);
  EXPECT_NE(render(50.0, 42.0).find("eta 42s"), std::string::npos);
  EXPECT_EQ(render(50.0, 42.0).find("inf"), std::string::npos);
}

TEST_F(ScanDriverTest, MixedSizeCorpusRecoversSmallKeyHitsThroughDriver) {
  // End-to-end regression for the per-pair early-terminate threshold: the
  // planted shared prime lives in the SMALL moduli while larger bystanders
  // raise the corpus-wide maximum.
  const WeakCorpus small = test_corpus(8, 2, 112);   // 128-bit moduli
  CorpusSpec big_spec;
  big_spec.count = 4;
  big_spec.modulus_bits = 256;
  big_spec.seed = 113;
  const WeakCorpus big = rsa::generate_corpus(big_spec);

  std::vector<BigInt> moduli = small.moduli;
  moduli.insert(moduli.end(), big.moduli.begin(), big.moduli.end());

  ScanConfig config;
  config.pairs.group_size = 4;
  config.chunk_blocks = 2;
  config.checkpoint = path_;
  config.stop_after_chunks = 1;  // and survive interruption while at it
  ScanReport report;
  int runs = 0;
  do {
    report = run_resumable_scan(moduli, config);
    ASSERT_LT(++runs, 500);
  } while (!report.complete);

  ASSERT_EQ(report.result.hits.size(), small.weak.size());
  for (std::size_t k = 0; k < small.weak.size(); ++k) {
    EXPECT_EQ(report.result.hits[k].i, small.weak[k].first);
    EXPECT_EQ(report.result.hits[k].j, small.weak[k].second);
    EXPECT_EQ(report.result.hits[k].factor, small.weak[k].shared_prime);
  }
}

// ---- telemetry (docs/OBSERVABILITY.md) ------------------------------------
// The scan_* counter family counts committed work including checkpoint-
// restored chunks, so after any run — fresh, resumed, retried, or partly
// quarantined — a per-run registry's totals must exactly equal the final
// ScanReport.

std::uint64_t counter_value(obs::MetricsRegistry& registry, const char* name) {
  return registry.counter(name)->value();
}

void expect_counters_match_report(obs::MetricsRegistry& registry,
                                  const ScanReport& report) {
  EXPECT_EQ(counter_value(registry, "scan_pairs_total"),
            report.result.pairs_tested);
  EXPECT_EQ(counter_value(registry, "scan_hits_total"),
            report.result.hits.size());
  EXPECT_EQ(counter_value(registry, "scan_chunks_committed_total"),
            report.chunks_done);
  EXPECT_EQ(counter_value(registry, "scan_chunks_quarantined_total"),
            report.quarantined.size());
  EXPECT_EQ(counter_value(registry, "gcd_iterations_total"),
            report.result.simt.gcd.iterations + report.result.scalar.iterations);
  EXPECT_EQ(counter_value(registry, "simt_lane_iterations_total"),
            report.result.simt.lane_iterations);
}

TEST_F(ScanDriverTest, MetricsExactlyMatchFinalReportOnFreshRun) {
  const WeakCorpus corpus = test_corpus(20, 3, 107);
  obs::MetricsRegistry registry;
  ScanConfig config;
  config.pairs.group_size = 4;
  config.pairs.metrics = &registry;
  config.chunk_blocks = 2;
  config.checkpoint = path_;
  const ScanReport report = run_resumable_scan(corpus.moduli, config);
  ASSERT_TRUE(report.complete);
  expect_counters_match_report(registry, report);
  EXPECT_EQ(counter_value(registry, "scan_chunks_restored_total"), 0u);
  EXPECT_EQ(counter_value(registry, "scan_pairs_restored_total"), 0u);
  // No retries: the sweep executed exactly the committed pair set.
  EXPECT_EQ(counter_value(registry, "sweep_pairs_total"),
            report.result.pairs_tested);
  EXPECT_EQ(counter_value(registry, "sweep_hits_total"),
            report.result.hits.size());
  EXPECT_DOUBLE_EQ(registry.gauge("scan_progress_ratio")->value(), 1.0);
  // Checkpointed run: every commit cadence fsync landed in the histogram.
  EXPECT_GT(registry.histogram("scan_checkpoint_fsync_seconds", 0.0, 0.1, 100)
                ->count(),
            0u);
  EXPECT_EQ(registry.histogram("scan_chunk_seconds", 0.0, 30.0, 120)->count(),
            report.chunks_done);
}

TEST_F(ScanDriverTest, MetricsFoldRestoredWorkSoTotalsMatchAfterResume) {
  const WeakCorpus corpus = test_corpus(20, 3, 108);
  ScanConfig config;
  config.pairs.group_size = 4;
  config.chunk_blocks = 2;
  config.checkpoint = path_;

  // First slice: commit some chunks, then stop.
  obs::MetricsRegistry first_registry;
  config.pairs.metrics = &first_registry;
  config.stop_after_chunks = 2;
  const ScanReport first = run_resumable_scan(corpus.moduli, config);
  ASSERT_FALSE(first.complete);
  expect_counters_match_report(first_registry, first);

  // Resumed run with a FRESH registry: restored work is folded in at
  // restore time, so this run's counters still equal its final report.
  obs::MetricsRegistry second_registry;
  config.pairs.metrics = &second_registry;
  config.stop_after_chunks = 0;
  const ScanReport second = run_resumable_scan(corpus.moduli, config);
  ASSERT_TRUE(second.complete);
  ASSERT_TRUE(second.resumed);
  expect_counters_match_report(second_registry, second);
  EXPECT_EQ(counter_value(second_registry, "scan_chunks_restored_total"),
            first.chunks_done);
  EXPECT_EQ(counter_value(second_registry, "scan_pairs_restored_total"),
            first.result.pairs_tested);
  // Restored chunks were not executed here: the sweep counters cover only
  // this run's share.
  EXPECT_EQ(counter_value(second_registry, "sweep_pairs_total"),
            second.result.pairs_tested - first.result.pairs_tested);
}

TEST_F(ScanDriverTest, RetriedChunksCountOnceInScanCountersAndAreTallied) {
  const WeakCorpus corpus = test_corpus(16, 2, 109);
  obs::MetricsRegistry registry;
  ScanConfig config;
  config.pairs.group_size = 4;
  config.pairs.metrics = &registry;
  config.chunk_blocks = 2;
  config.chunk_hook = [](std::size_t chunk, int attempt) {
    if (chunk == 0 && attempt == 0) {
      throw std::runtime_error("injected first-attempt fault");
    }
  };
  const ScanReport report = run_resumable_scan(corpus.moduli, config);
  ASSERT_TRUE(report.complete);
  ASSERT_TRUE(report.quarantined.empty());
  EXPECT_EQ(counter_value(registry, "scan_chunks_retried_total"), 1u);
  expect_counters_match_report(registry, report);
}

TEST_F(ScanDriverTest, QuarantinedChunksAreCountedAndExcludedFromTotals) {
  const WeakCorpus corpus = test_corpus(16, 0, 110);
  obs::MetricsRegistry registry;
  ScanConfig config;
  config.pairs.group_size = 4;
  config.pairs.metrics = &registry;
  config.chunk_blocks = 2;
  config.checkpoint = path_;
  config.chunk_hook = [](std::size_t chunk, int) {
    if (chunk == 1) throw std::runtime_error("poisoned chunk");
  };
  const ScanReport report = run_resumable_scan(corpus.moduli, config);
  ASSERT_TRUE(report.complete);
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(counter_value(registry, "scan_chunks_quarantined_total"), 1u);
  EXPECT_EQ(counter_value(registry, "scan_chunks_retried_total"), 1u);
  expect_counters_match_report(registry, report);
}

TEST(StreamProgressSinkTest, FormatsRatesHitsAndQuarantines) {
  std::FILE* out = std::tmpfile();
  ASSERT_NE(out, nullptr);
  StreamProgressSink sink(out);

  ScanProgress p;
  p.chunks_done = 3;
  p.chunks_total = 8;
  p.pairs_done = 50;
  p.pairs_total = 200;
  p.pairs_per_second = 1234.25;
  p.blocks_per_second = 7.5;
  p.hits = 2;
  p.quarantined = 1;
  p.eta_seconds = 12.0;
  sink.on_progress(p);

  FactorHit hit;
  hit.i = 4;
  hit.j = 9;
  hit.factor = BigInt::from_hex("c000000000000001");
  sink.on_hit(hit);
  sink.on_quarantine(5, "engine exploded");

  // The sink flushes per record, so everything is readable immediately
  // (a killed scan must not lose its last status line to buffering).
  std::rewind(out);
  char buf[512] = {};
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, out);
  std::fclose(out);
  const std::string text(buf, n);

  EXPECT_NE(text.find("chunks 3/8"), std::string::npos) << text;
  EXPECT_NE(text.find("pairs 50/200 ( 25.0%)"), std::string::npos) << text;
  EXPECT_NE(text.find("1234 pairs/s"), std::string::npos) << text;
  EXPECT_NE(text.find("7.50 blocks/s"), std::string::npos) << text;
  EXPECT_NE(text.find("hits 2"), std::string::npos) << text;
  EXPECT_NE(text.find("quarantined 1"), std::string::npos) << text;
  EXPECT_NE(text.find("eta 12s"), std::string::npos) << text;
  EXPECT_NE(text.find("[hit] keys 4 and 9 share a 64-bit prime"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("[quarantine] chunk 5 failed twice: engine exploded"),
            std::string::npos)
      << text;
}

}  // namespace
}  // namespace bulkgcd::bulk
