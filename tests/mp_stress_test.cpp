// Algebraic stress tests for the multiprecision layer: identities that must
// hold for ALL inputs, driven with adversarial shapes (all-ones limbs, long
// zero runs, single bits, huge size imbalances). These complement the
// GMP-oracle tests with self-consistency that would catch a broken oracle
// conversion too.
#include <gtest/gtest.h>

#include "gmp_oracle.hpp"
#include "mp/bigint.hpp"
#include "mp/karatsuba.hpp"
#include "mp/toom3.hpp"

namespace bulkgcd::mp {
namespace {

using bulkgcd::Xoshiro256;
using bulkgcd::test::random_value;

/// Adversarial value generator: mixes random, all-ones, single-bit, and
/// zero-run-heavy shapes.
template <typename Limb>
BigIntT<Limb> adversarial(Xoshiro256& rng) {
  using Big = BigIntT<Limb>;
  const std::size_t bits = 1 + rng.below(600);
  switch (rng.below(6)) {
    case 0:
      return random_value<Limb>(rng, bits);
    case 1: {  // 2^bits - 1: all ones
      return (Big(1) << bits) - Big(1);
    }
    case 2:  // single bit
      return Big(1) << bits;
    case 3: {  // low ones, long zero run, high ones
      return ((Big(1) << (bits / 3 + 1)) - Big(1)) +
             (random_value<Limb>(rng, bits / 3 + 1) << (2 * bits / 3 + 2));
    }
    case 4:  // small value
      return Big(rng.below(16));
    default:  // random with stripped low bits
      return random_value<Limb>(rng, bits) << rng.below(100);
  }
}

template <typename Limb>
class MpStressTest : public ::testing::Test {};
using LimbTypes = ::testing::Types<std::uint16_t, std::uint32_t, std::uint64_t>;
TYPED_TEST_SUITE(MpStressTest, LimbTypes);

TYPED_TEST(MpStressTest, RingIdentities) {
  using Limb = TypeParam;
  using Big = BigIntT<Limb>;
  Xoshiro256 rng(171);
  for (int trial = 0; trial < 200; ++trial) {
    const Big a = adversarial<Limb>(rng);
    const Big b = adversarial<Limb>(rng);
    const Big c = adversarial<Limb>(rng);
    // commutativity / associativity / distributivity
    ASSERT_EQ(a + b, b + a);
    ASSERT_EQ(a * b, b * a);
    ASSERT_EQ((a + b) + c, a + (b + c));
    ASSERT_EQ((a * b) * c, a * (b * c));
    ASSERT_EQ(a * (b + c), a * b + a * c);
    // additive cancellation
    ASSERT_EQ((a + b) - b, a);
  }
}

TYPED_TEST(MpStressTest, DivModInvariants) {
  using Limb = TypeParam;
  using Big = BigIntT<Limb>;
  Xoshiro256 rng(172);
  for (int trial = 0; trial < 200; ++trial) {
    const Big a = adversarial<Limb>(rng);
    Big b = adversarial<Limb>(rng);
    if (b.is_zero()) b = Big(3);
    const auto [q, r] = Big::divmod(a, b);
    ASSERT_EQ(q * b + r, a);
    ASSERT_LT(r, b);
    // (a*b) / b == a exactly
    ASSERT_EQ((a * b) / b, a);
    ASSERT_TRUE(((a * b) % b).is_zero());
    // ((a*b) + r) / b == a with remainder r (r < b)
    ASSERT_EQ((a * b + r) / b, a);
    ASSERT_EQ((a * b + r) % b, r);
  }
}

TYPED_TEST(MpStressTest, ShiftMulEquivalence) {
  using Limb = TypeParam;
  using Big = BigIntT<Limb>;
  Xoshiro256 rng(173);
  for (int trial = 0; trial < 150; ++trial) {
    const Big a = adversarial<Limb>(rng);
    const std::size_t k = rng.below(200);
    ASSERT_EQ(a << k, a * (Big(1) << k));
    ASSERT_EQ((a << k) >> k, a);
    // floor division by 2^k == right shift
    ASSERT_EQ(a >> k, a / (Big(1) << k));
  }
}

TYPED_TEST(MpStressTest, StringsRoundTripAdversarial) {
  using Limb = TypeParam;
  using Big = BigIntT<Limb>;
  Xoshiro256 rng(174);
  for (int trial = 0; trial < 60; ++trial) {
    const Big a = adversarial<Limb>(rng);
    ASSERT_EQ(Big::from_hex(a.to_hex()), a);
    ASSERT_EQ(Big::from_dec(a.to_dec()), a);
  }
}

TYPED_TEST(MpStressTest, ComparisonIsATotalOrder) {
  using Limb = TypeParam;
  using Big = BigIntT<Limb>;
  Xoshiro256 rng(175);
  for (int trial = 0; trial < 150; ++trial) {
    const Big a = adversarial<Limb>(rng);
    const Big b = adversarial<Limb>(rng);
    // exactly one of <, ==, > holds
    const int rels = int(a < b) + int(a == b) + int(a > b);
    ASSERT_EQ(rels, 1);
    if (a < b) {
      ASSERT_LT(a + Big(0), b);
      ASSERT_LE(a, b - Big(1));  // integers: a < b implies a <= b-1
    }
    // adding anything nonzero grows the value
    const Big c = adversarial<Limb>(rng);
    if (!c.is_zero()) ASSERT_GT(a + c, a);
  }
}

TYPED_TEST(MpStressTest, KaratsubaSchoolbookConsistencyAdversarial) {
  using Limb = TypeParam;
  Xoshiro256 rng(176);
  for (int trial = 0; trial < 40; ++trial) {
    // sizes straddling the Karatsuba threshold on both sides
    const std::size_t bits_a =
        mp::limb_bits<Limb> * (kKaratsubaThreshold - 2 + rng.below(8));
    const auto a = random_value<Limb>(rng, bits_a) << rng.below(64);
    const auto b = random_value<Limb>(rng, 1 + rng.below(2 * bits_a));
    const auto kara = mul_karatsuba(a.data(), a.size(), b.data(), b.size());
    std::vector<Limb> school(a.size() + b.size());
    school.resize(
        mul_schoolbook(school.data(), a.data(), a.size(), b.data(), b.size()));
    ASSERT_EQ(kara, school);
  }
}

TYPED_TEST(MpStressTest, Toom3DifferentialStraddlesTheThreshold) {
  using Limb = TypeParam;
  Xoshiro256 rng(178);
  for (int trial = 0; trial < 12; ++trial) {
    // Both operands straddle kToom3Threshold independently: Toom-3 runs for
    // real when both clear it and must agree with the lower rungs (and with
    // itself falling back) when either doesn't.
    const std::size_t limbs_a = kToom3Threshold - 4 + rng.below(12);
    const std::size_t limbs_b = kToom3Threshold - 4 + rng.below(12);
    const auto a = random_value<Limb>(rng, mp::limb_bits<Limb> * limbs_a)
                   << rng.below(64);
    const auto b = random_value<Limb>(rng, mp::limb_bits<Limb> * limbs_b);
    const auto toom = mul_toom3(a.data(), a.size(), b.data(), b.size());
    const auto kara = mul_karatsuba(a.data(), a.size(), b.data(), b.size());
    std::vector<Limb> school(a.size() + b.size());
    school.resize(
        mul_schoolbook(school.data(), a.data(), a.size(), b.data(), b.size()));
    ASSERT_EQ(toom, kara);
    ASSERT_EQ(toom, school);
    // GMP oracle on the full dispatch ladder (BigInt operator*).
    test::Mpz ga = test::to_mpz(a), gb = test::to_mpz(b), gp;
    mpz_mul(gp.get(), ga.get(), gb.get());
    ASSERT_EQ(a * b, test::from_mpz<Limb>(gp));
  }
}

TYPED_TEST(MpStressTest, Toom3AdversarialShapes) {
  using Limb = TypeParam;
  using Big = BigIntT<Limb>;
  const std::size_t lb = mp::limb_bits<Limb>;
  const std::size_t T = kToom3Threshold;
  Xoshiro256 rng(179);
  std::vector<Big> shapes;
  // all ones across all three split parts
  shapes.push_back((Big(1) << (3 * T * lb)) - Big(1));
  // single top bit: zero low and middle parts
  shapes.push_back(Big(1) << (3 * T * lb - 1));
  // low ones, hollow middle third, random high third
  shapes.push_back(((Big(1) << (T * lb)) - Big(1)) +
                   (random_value<Limb>(rng, T * lb) << (2 * T * lb)));
  // strong imbalance partner, just above the threshold (empty high parts
  // after the split against the big shapes)
  shapes.push_back(random_value<Limb>(rng, (T + 1) * lb));
  // 4× threshold: the pointwise products recurse into Toom-3 again
  shapes.push_back(random_value<Limb>(rng, 4 * T * lb));
  for (const auto& a : shapes) {
    for (const auto& b : shapes) {
      const auto toom = mul_toom3(a.data(), a.size(), b.data(), b.size());
      std::vector<Limb> school(a.size() + b.size());
      school.resize(mul_schoolbook(school.data(), a.data(), a.size(), b.data(),
                                   b.size()));
      ASSERT_EQ(toom, school);
    }
  }
}

TYPED_TEST(MpStressTest, DispatchLadderMatchesGmpWellAboveBothThresholds) {
  using Limb = TypeParam;
  Xoshiro256 rng(180);
  for (int trial = 0; trial < 6; ++trial) {
    // Batch-GCD tree regime: hundreds of limbs, every rung of the ladder
    // exercised by the recursion.
    const std::size_t bits_a = mp::limb_bits<Limb> * (200 + rng.below(200));
    const std::size_t bits_b = mp::limb_bits<Limb> * (200 + rng.below(200));
    const auto a = random_value<Limb>(rng, bits_a);
    const auto b = random_value<Limb>(rng, bits_b);
    test::Mpz ga = test::to_mpz(a), gb = test::to_mpz(b), gp;
    mpz_mul(gp.get(), ga.get(), gb.get());
    ASSERT_EQ(a * b, test::from_mpz<Limb>(gp));
  }
}

TYPED_TEST(MpStressTest, BitLengthAndTrailingZerosConsistency) {
  using Limb = TypeParam;
  using Big = BigIntT<Limb>;
  Xoshiro256 rng(177);
  for (int trial = 0; trial < 150; ++trial) {
    const Big a = adversarial<Limb>(rng);
    if (a.is_zero()) continue;
    const std::size_t bl = a.bit_length();
    ASSERT_TRUE(a.bit(bl - 1));
    ASSERT_FALSE(a.bit(bl));
    ASSERT_GE(Big(1) << bl, a);
    ASSERT_LE(Big(1) << (bl - 1), a);
    const std::size_t tz = a.trailing_zero_bits();
    ASSERT_TRUE(a.bit(tz));
    if (tz > 0) ASSERT_FALSE(a.bit(tz - 1));
    Big stripped = a;
    stripped.strip_trailing_zeros();
    ASSERT_EQ(stripped << tz, a);
    ASSERT_TRUE(stripped.is_odd());
  }
}

}  // namespace
}  // namespace bulkgcd::mp
