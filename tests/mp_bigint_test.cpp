// BigInt class-level tests: string conversions, operators, Karatsuba.
#include "mp/bigint.hpp"

#include <gtest/gtest.h>

#include "gmp_oracle.hpp"
#include "mp/karatsuba.hpp"

namespace bulkgcd::mp {
namespace {

using bulkgcd::Xoshiro256;
using bulkgcd::test::Mpz;
using bulkgcd::test::random_value;
using bulkgcd::test::to_mpz;

TEST(BigIntTest, DecimalRoundTrip) {
  Xoshiro256 rng(21);
  for (int trial = 0; trial < 50; ++trial) {
    const BigInt a = random_value<std::uint32_t>(rng, 1 + rng.below(600));
    EXPECT_EQ(BigInt::from_dec(a.to_dec()), a);
    EXPECT_EQ(a.to_dec(), to_mpz(a).to_dec());  // oracle agreement
  }
  EXPECT_EQ(BigInt().to_dec(), "0");
  EXPECT_EQ(BigInt::from_dec("0"), BigInt());
}

TEST(BigIntTest, HexRoundTrip) {
  Xoshiro256 rng(22);
  for (int trial = 0; trial < 50; ++trial) {
    const BigInt a = random_value<std::uint32_t>(rng, 1 + rng.below(600));
    EXPECT_EQ(BigInt::from_hex(a.to_hex()), a);
  }
  EXPECT_EQ(BigInt::from_hex("0xff"), BigInt(255));
  EXPECT_EQ(BigInt::from_hex("DEAD_beef"), BigInt(0xDEADBEEFull));
  EXPECT_EQ(BigInt().to_hex(), "0");
}

TEST(BigIntTest, ParseRejectsGarbage) {
  EXPECT_THROW(BigInt::from_dec(""), std::invalid_argument);
  EXPECT_THROW(BigInt::from_dec("12x"), std::invalid_argument);
  EXPECT_THROW(BigInt::from_hex(""), std::invalid_argument);
  EXPECT_THROW(BigInt::from_hex("0x"), std::invalid_argument);
  EXPECT_THROW(BigInt::from_hex("xyz"), std::invalid_argument);
}

TEST(BigIntTest, BinaryGroupedMatchesPaperNotation) {
  // The paper writes 223 as "1101,1111" and pads top groups ("0101" for 5).
  EXPECT_EQ(BigInt(223).to_binary_grouped(), "1101,1111");
  EXPECT_EQ(BigInt(5).to_binary_grouped(), "0101");
  EXPECT_EQ(BigInt(17185).to_binary_grouped(), "0100,0011,0010,0001");
  EXPECT_EQ(BigInt().to_binary_grouped(), "0");
}

TEST(BigIntTest, ComparisonOperators) {
  const BigInt a(100), b(200);
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_LE(a, a);
  EXPECT_EQ(a, BigInt(100));
  EXPECT_NE(a, b);
  EXPECT_LT(BigInt(), a);  // zero smallest
}

TEST(BigIntTest, SubtractionUnderflowThrows) {
  EXPECT_THROW(BigInt(1) - BigInt(2), std::domain_error);
}

TEST(BigIntTest, DivisionByZeroThrows) {
  EXPECT_THROW(BigInt(1) / BigInt(), std::domain_error);
  EXPECT_THROW(BigInt(1) % BigInt(), std::domain_error);
}

TEST(BigIntTest, BitAccessors) {
  const BigInt v(0b1011);
  EXPECT_TRUE(v.bit(0));
  EXPECT_TRUE(v.bit(1));
  EXPECT_FALSE(v.bit(2));
  EXPECT_TRUE(v.bit(3));
  EXPECT_FALSE(v.bit(64));
  EXPECT_EQ(v.bit_length(), 4u);
  EXPECT_TRUE(v.is_odd());
  EXPECT_TRUE(BigInt(4).is_even());
  EXPECT_EQ(BigInt(12).trailing_zero_bits(), 2u);
}

TEST(BigIntTest, ToU64TruncatesHighBits) {
  const BigInt big = BigInt(1) << 100;
  EXPECT_EQ(big.to_u64(), 0u);
  const BigInt v = (BigInt(7) << 64) + BigInt(42);
  EXPECT_EQ(v.to_u64(), 42u);
}

TEST(KaratsubaTest, MatchesSchoolbookAcrossSizes) {
  Xoshiro256 rng(23);
  for (const std::size_t bits : {100u, 800u, 2000u, 5000u, 20000u}) {
    const BigInt a = random_value<std::uint32_t>(rng, bits);
    const BigInt b = random_value<std::uint32_t>(rng, bits + rng.below(bits));
    const auto k = mul_karatsuba(a.data(), a.size(), b.data(), b.size());
    std::vector<std::uint32_t> s(a.size() + b.size());
    s.resize(mul_schoolbook(s.data(), a.data(), a.size(), b.data(), b.size()));
    EXPECT_EQ(k, s) << "bits=" << bits;
  }
}

TEST(KaratsubaTest, UnbalancedOperands) {
  Xoshiro256 rng(24);
  const BigInt a = random_value<std::uint32_t>(rng, 10000);
  const BigInt b = random_value<std::uint32_t>(rng, 700);
  Mpz expected;
  mpz_mul(expected.get(), to_mpz(a).get(), to_mpz(b).get());
  EXPECT_EQ(to_mpz(a * b), expected);
}

TEST(KaratsubaTest, ZeroAndTinyOperands) {
  const BigInt zero;
  const BigInt one(1);
  EXPECT_TRUE(mul_karatsuba(zero.data(), 0, one.data(), 1).empty());
  Xoshiro256 rng(25);
  const BigInt a = random_value<std::uint32_t>(rng, 4000);
  const auto prod = mul_karatsuba(a.data(), a.size(), one.data(), 1);
  EXPECT_EQ(BigInt::from_limbs(prod), a);
}

TEST(BigIntTest, ShiftOperatorsComposeWithArithmetic) {
  Xoshiro256 rng(26);
  for (int trial = 0; trial < 50; ++trial) {
    const BigInt a = random_value<std::uint32_t>(rng, 1 + rng.below(200));
    const std::size_t k = rng.below(70);
    EXPECT_EQ((a << k) >> k, a);
    EXPECT_EQ(a << k, a * (BigInt(1) << k));
  }
}

}  // namespace
}  // namespace bulkgcd::mp
