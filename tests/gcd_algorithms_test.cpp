// End-to-end correctness of the five Euclidean algorithm drivers:
// GMP-oracle GCDs across sizes and limb widths, early-terminate semantics on
// coprime and shared-factor RSA moduli, and exact agreement (results AND
// iteration counts) with the pseudocode-level reference implementations.
#include "gcd/algorithms.hpp"

#include <gtest/gtest.h>

#include "gcd/reference.hpp"
#include "gmp_oracle.hpp"
#include "rsa/prime.hpp"

namespace bulkgcd::gcd {
namespace {

using bulkgcd::Xoshiro256;
using bulkgcd::test::gmp_gcd;
using bulkgcd::test::random_odd;
using mp::BigInt;

template <typename Limb>
class GcdVariantsTest : public ::testing::Test {};

using LimbTypes = ::testing::Types<std::uint16_t, std::uint32_t, std::uint64_t>;
TYPED_TEST_SUITE(GcdVariantsTest, LimbTypes);

TYPED_TEST(GcdVariantsTest, MatchesGmpOnRandomOddInputs) {
  using Limb = TypeParam;
  using Big = mp::BigIntT<Limb>;
  Xoshiro256 rng(41);
  for (const Variant variant : kAllVariants) {
    for (int trial = 0; trial < 60; ++trial) {
      const std::size_t bx = 1 + rng.below(400);
      const std::size_t by = 1 + rng.below(400);
      const Big x = random_odd<Limb>(rng, bx);
      const Big y = random_odd<Limb>(rng, by);
      const Big expected = gmp_gcd(x, y);
      EXPECT_EQ(gcd_odd(x, y, variant), expected)
          << to_string(variant) << " x=" << x.to_hex() << " y=" << y.to_hex();
    }
  }
}

TYPED_TEST(GcdVariantsTest, SharedFactorInputs) {
  // Force nontrivial GCDs: x = g*a, y = g*b with random odd g.
  using Limb = TypeParam;
  using Big = mp::BigIntT<Limb>;
  Xoshiro256 rng(42);
  for (const Variant variant : kAllVariants) {
    for (int trial = 0; trial < 40; ++trial) {
      const Big g = random_odd<Limb>(rng, 1 + rng.below(100));
      const Big a = random_odd<Limb>(rng, 1 + rng.below(150));
      const Big b = random_odd<Limb>(rng, 1 + rng.below(150));
      const Big x = g * a;
      const Big y = g * b;
      const Big expected = gmp_gcd(x, y);
      EXPECT_EQ(gcd_odd(x, y, variant), expected) << to_string(variant);
    }
  }
}

TYPED_TEST(GcdVariantsTest, IdenticalInputsReturnThemselves) {
  using Limb = TypeParam;
  using Big = mp::BigIntT<Limb>;
  Xoshiro256 rng(43);
  for (const Variant variant : kAllVariants) {
    const Big x = random_odd<Limb>(rng, 123);
    EXPECT_EQ(gcd_odd(x, x, variant), x) << to_string(variant);
  }
}

TYPED_TEST(GcdVariantsTest, TinyValues) {
  using Limb = TypeParam;
  using Big = mp::BigIntT<Limb>;
  for (const Variant variant : kAllVariants) {
    EXPECT_EQ(gcd_odd(Big(1), Big(1), variant), Big(1));
    EXPECT_EQ(gcd_odd(Big(35), Big(21), variant), Big(7));
    EXPECT_EQ(gcd_odd(Big(17), Big(1), variant), Big(1));
    EXPECT_EQ(gcd_odd(Big(1), Big(17), variant), Big(1));
    EXPECT_EQ(gcd_odd(Big(39), Big(9), variant), Big(3));  // Section II example
  }
}

TYPED_TEST(GcdVariantsTest, RejectsEvenOrZeroInputs) {
  using Limb = TypeParam;
  using Big = mp::BigIntT<Limb>;
  EXPECT_THROW(gcd_odd(Big(4), Big(3)), std::invalid_argument);
  EXPECT_THROW(gcd_odd(Big(3), Big(4)), std::invalid_argument);
  EXPECT_THROW(gcd_odd(Big(), Big(3)), std::invalid_argument);
}

TYPED_TEST(GcdVariantsTest, GeneralGcdHandlesEvenInputs) {
  using Limb = TypeParam;
  using Big = mp::BigIntT<Limb>;
  Xoshiro256 rng(44);
  for (int trial = 0; trial < 100; ++trial) {
    Big x = bulkgcd::test::random_value<Limb>(rng, 1 + rng.below(200));
    Big y = bulkgcd::test::random_value<Limb>(rng, 1 + rng.below(200));
    const Big expected = gmp_gcd(x, y);
    EXPECT_EQ(gcd_general(x, y), expected);
  }
  EXPECT_EQ(gcd_general(Big(), Big(12)), Big(12));
  EXPECT_EQ(gcd_general(Big(12), Big()), Big(12));
  EXPECT_EQ(gcd_general(Big(48), Big(36)), Big(12));
}

TEST(PaperWorkedExampleTest, IterationCountsMatchTablesOneAndTwo) {
  // X = 1043915, Y = 768955 (Tables I and II, d-independent algorithms).
  const BigInt x = BigInt::from_dec("1043915");
  const BigInt y = BigInt::from_dec("768955");
  GcdStats st;

  st = {};
  EXPECT_EQ(gcd_odd(x, y, Variant::kBinary, &st), BigInt(5));
  EXPECT_EQ(st.iterations, 24u);  // Table I, left column

  st = {};
  EXPECT_EQ(gcd_odd(x, y, Variant::kFastBinary, &st), BigInt(5));
  EXPECT_EQ(st.iterations, 16u);  // Table I, right column

  st = {};
  EXPECT_EQ(gcd_odd(x, y, Variant::kOriginal, &st), BigInt(5));
  EXPECT_EQ(st.iterations, 11u);  // Table II, left column

  st = {};
  EXPECT_EQ(gcd_odd(x, y, Variant::kFast, &st), BigInt(5));
  EXPECT_EQ(st.iterations, 8u);  // Table II, right column
}

TEST(PaperWorkedExampleTest, FastCanBeSlowerThanOriginal) {
  // Section II claims inputs exist where Fast Euclidean takes MORE
  // iterations than Original. (The paper's own example (39, 9) lists the
  // trace (39,9)→(12,9)→(9,3)→(3,0), which skips the rshift its pseudocode
  // prescribes — with rshift, 12 becomes 3 and both variants take 2
  // iterations. The qualitative claim still holds; verify it by search.)
  GcdStats original, fast;
  gcd_odd(BigInt(39), BigInt(9), Variant::kOriginal, &original);
  gcd_odd(BigInt(39), BigInt(9), Variant::kFast, &fast);
  EXPECT_EQ(original.iterations, 2u);
  EXPECT_EQ(fast.iterations, 2u);  // pseudocode semantics, not the text trace

  bool found = false;
  for (std::uint64_t x = 3; x < 400 && !found; x += 2) {
    for (std::uint64_t y = 3; y < x && !found; y += 2) {
      GcdStats so, sf;
      gcd_odd(BigInt(x), BigInt(y), Variant::kOriginal, &so);
      gcd_odd(BigInt(x), BigInt(y), Variant::kFast, &sf);
      if (sf.iterations > so.iterations) found = true;
    }
  }
  EXPECT_TRUE(found);
}

// ---- engine vs pseudocode reference: results and step counts -------------

struct EngineVsReferenceCase {
  Variant variant;
  std::size_t early_bits;
};

class EngineVsReferenceTest
    : public ::testing::TestWithParam<EngineVsReferenceCase> {};

RefRun run_reference(Variant variant, const BigInt& x, const BigInt& y,
                     std::size_t early_bits) {
  const RefOptions opt{early_bits, false};
  switch (variant) {
    case Variant::kOriginal: return ref_original(x, y, opt);
    case Variant::kFast: return ref_fast(x, y, opt);
    case Variant::kBinary: return ref_binary(x, y, opt);
    case Variant::kFastBinary: return ref_fast_binary(x, y, opt);
    case Variant::kApproximate: return ref_approximate(x, y, 32, opt);
  }
  std::abort();
}

TEST_P(EngineVsReferenceTest, StepCountsAndResultsAgree) {
  const auto [variant, early_bits] = GetParam();
  Xoshiro256 rng(45 + std::size_t(variant));
  GcdEngine<std::uint32_t> engine(64);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t bits = std::max<std::size_t>(early_bits * 2, 64);
    const BigInt x = random_odd<std::uint32_t>(rng, bits);
    const BigInt y = random_odd<std::uint32_t>(rng, bits - rng.below(8));
    GcdStats st;
    const auto run = engine.run(variant, x.limbs(), y.limbs(), early_bits, &st);
    const RefRun ref = run_reference(variant, x, y, early_bits);
    EXPECT_EQ(st.iterations, ref.stats.iterations) << to_string(variant);
    EXPECT_EQ(st.beta_nonzero, ref.stats.beta_nonzero);
    EXPECT_EQ(run.early_coprime, ref.early_coprime);
    if (!run.early_coprime) {
      EXPECT_EQ(BigInt::from_limbs(run.gcd), ref.gcd) << to_string(variant);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariantsBothModes, EngineVsReferenceTest,
    ::testing::Values(EngineVsReferenceCase{Variant::kOriginal, 0},
                      EngineVsReferenceCase{Variant::kFast, 0},
                      EngineVsReferenceCase{Variant::kBinary, 0},
                      EngineVsReferenceCase{Variant::kFastBinary, 0},
                      EngineVsReferenceCase{Variant::kApproximate, 0},
                      EngineVsReferenceCase{Variant::kOriginal, 128},
                      EngineVsReferenceCase{Variant::kFast, 128},
                      EngineVsReferenceCase{Variant::kBinary, 128},
                      EngineVsReferenceCase{Variant::kFastBinary, 128},
                      EngineVsReferenceCase{Variant::kApproximate, 128}));

// ---- RSA-moduli early termination -----------------------------------------

TEST(ProbeModuliPairTest, DetectsPlantedSharedPrime) {
  Xoshiro256 rng(46);
  const BigInt p = rsa::random_prime(rng, 128);
  const BigInt q1 = rsa::random_prime(rng, 128);
  const BigInt q2 = rsa::random_prime(rng, 128);
  const BigInt n1 = p * q1;
  const BigInt n2 = p * q2;
  for (const Variant variant : kAllVariants) {
    const auto probe = probe_moduli_pair(n1, n2, variant);
    ASSERT_TRUE(probe.shares_factor) << to_string(variant);
    EXPECT_EQ(probe.factor, p) << to_string(variant);
  }
}

TEST(ProbeModuliPairTest, ReportsCoprimeForIndependentModuli) {
  Xoshiro256 rng(47);
  const BigInt n1 = rsa::random_prime(rng, 128) * rsa::random_prime(rng, 128);
  const BigInt n2 = rsa::random_prime(rng, 128) * rsa::random_prime(rng, 128);
  for (const Variant variant : kAllVariants) {
    GcdStats st;
    const auto probe = probe_moduli_pair(n1, n2, variant, &st);
    EXPECT_FALSE(probe.shares_factor) << to_string(variant);
    EXPECT_GE(st.iterations, 1u);
  }
}

TEST(ProbeModuliPairTest, EarlyTerminationHalvesIterations) {
  // Section V: early-terminate cuts the iteration count roughly in half.
  Xoshiro256 rng(48);
  std::uint64_t full = 0, early = 0;
  GcdEngine<std::uint32_t> engine(40);
  for (int trial = 0; trial < 20; ++trial) {
    const BigInt n1 = rsa::random_prime(rng, 256) * rsa::random_prime(rng, 256);
    const BigInt n2 = rsa::random_prime(rng, 256) * rsa::random_prime(rng, 256);
    GcdStats st_full, st_early;
    engine.run(Variant::kApproximate, n1.limbs(), n2.limbs(), 0, &st_full);
    engine.run(Variant::kApproximate, n1.limbs(), n2.limbs(), 256, &st_early);
    full += st_full.iterations;
    early += st_early.iterations;
  }
  EXPECT_GT(full, early);
  const double ratio = double(early) / double(full);
  EXPECT_NEAR(ratio, 0.5, 0.07);
}

TEST(GcdStatsTest, ApproxCaseHistogramSumsToIterations) {
  Xoshiro256 rng(49);
  const BigInt x = random_odd<std::uint32_t>(rng, 512);
  const BigInt y = random_odd<std::uint32_t>(rng, 512);
  GcdStats st;
  gcd_odd(x, y, Variant::kApproximate, &st);
  std::uint64_t total = 0;
  for (const auto count : st.approx_cases) total += count;
  EXPECT_EQ(total, st.iterations);
  EXPECT_EQ(st.divisions, st.iterations);  // one Wide division per iteration
}

TEST(GcdEngineTest, CapacityIsEnforced) {
  GcdEngine<std::uint32_t> engine(4);
  Xoshiro256 rng(50);
  const BigInt big = random_odd<std::uint32_t>(rng, 400);
  const BigInt small(3);
  EXPECT_THROW(engine.run(Variant::kApproximate, big.limbs(), small.limbs()),
               std::length_error);
}

TEST(GcdEngineTest, EngineIsReusableAcrossRuns) {
  Xoshiro256 rng(51);
  GcdEngine<std::uint32_t> engine(32);
  for (int trial = 0; trial < 30; ++trial) {
    const BigInt x = random_odd<std::uint32_t>(rng, 500);
    const BigInt y = random_odd<std::uint32_t>(rng, 300);
    const auto run = engine.run(Variant::kApproximate, x.limbs(), y.limbs());
    EXPECT_EQ(BigInt::from_limbs(run.gcd), gmp_gcd(x, y));
  }
}

}  // namespace
}  // namespace bulkgcd::gcd
