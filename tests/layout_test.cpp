// Direct unit tests for the bulk memory layouts and the UMM address mapping
// (these are otherwise only exercised indirectly through the engines).
#include "bulk/layout.hpp"

#include <gtest/gtest.h>

#include "umm/umm.hpp"

namespace bulkgcd {
namespace {

TEST(ColumnMatrixTest, LaneElementsAreStridedByLaneCount) {
  bulk::ColumnMatrix<std::uint32_t> mat(4, 3);
  EXPECT_EQ(mat.lanes(), 4u);
  EXPECT_EQ(mat.limbs(), 3u);
  EXPECT_EQ(mat.bytes(), 4u * 3u * sizeof(std::uint32_t));
  // Write through lane views, check the column-major physical layout via
  // neighbouring lanes: element i of lane t and lane t+1 are adjacent.
  for (std::size_t t = 0; t < 4; ++t) {
    auto lane = mat.lane(t);
    for (std::size_t i = 0; i < 3; ++i) lane[i] = std::uint32_t(10 * t + i);
  }
  auto lane0 = mat.lane(0);
  auto lane1 = mat.lane(1);
  EXPECT_EQ(&lane1[0], &lane0[0] + 1);   // same limb, next lane: adjacent
  EXPECT_EQ(&lane0[1], &lane0[0] + 4);   // next limb: a full row away
  EXPECT_EQ(lane1[2], 12u);
}

TEST(RowMatrixTest, LaneElementsAreContiguous) {
  bulk::RowMatrix<std::uint32_t> mat(4, 3);
  for (std::size_t t = 0; t < 4; ++t) {
    auto lane = mat.lane(t);
    for (std::size_t i = 0; i < 3; ++i) lane[i] = std::uint32_t(10 * t + i);
  }
  auto lane2 = mat.lane(2);
  EXPECT_EQ(&lane2[1], &lane2[0] + 1);   // next limb: adjacent
  EXPECT_EQ(lane2[1], 21u);
}

TEST(LayoutTest, FillLaneZeroPadsTheTail) {
  bulk::ColumnMatrix<std::uint32_t> mat(2, 5);
  const std::uint32_t src[2] = {7, 9};
  mat.fill_lane(0, src, 2);
  auto lane = mat.lane(0);
  EXPECT_EQ(lane[0], 7u);
  EXPECT_EQ(lane[1], 9u);
  EXPECT_EQ(lane[2], 0u);
  EXPECT_EQ(lane[4], 0u);
  // Refilling with shorter data clears the previous contents.
  const std::uint32_t shorter[1] = {3};
  mat.fill_lane(0, shorter, 1);
  EXPECT_EQ(lane[0], 3u);
  EXPECT_EQ(lane[1], 0u);
}

TEST(MapAddressTest, ColumnWiseInterleavesThreads) {
  // Column-wise: logical i of thread t -> i*p + t.
  EXPECT_EQ(umm::map_address(umm::Layout::kColumnWise, 0, 0, 8, 16), 0u);
  EXPECT_EQ(umm::map_address(umm::Layout::kColumnWise, 0, 5, 8, 16), 5u);
  EXPECT_EQ(umm::map_address(umm::Layout::kColumnWise, 3, 2, 8, 16), 26u);
  // Adjacent threads at the same logical address are adjacent globally.
  const auto a = umm::map_address(umm::Layout::kColumnWise, 7, 3, 8, 16);
  const auto b = umm::map_address(umm::Layout::kColumnWise, 7, 4, 8, 16);
  EXPECT_EQ(b, a + 1);
}

TEST(MapAddressTest, RowWiseSeparatesThreadsBySpan) {
  // Row-wise: logical i of thread t -> t*span + i.
  EXPECT_EQ(umm::map_address(umm::Layout::kRowWise, 3, 2, 8, 16), 35u);
  const auto a = umm::map_address(umm::Layout::kRowWise, 7, 3, 8, 16);
  const auto b = umm::map_address(umm::Layout::kRowWise, 7, 4, 8, 16);
  EXPECT_EQ(b, a + 16);  // a whole span apart: different address groups
  // span == 0 is the identity mapping used for hand-built traces.
  EXPECT_EQ(umm::map_address(umm::Layout::kRowWise, 42, 3, 8, 0), 42u);
}

TEST(LayoutTest, ToStringNames) {
  EXPECT_STREQ(to_string(umm::Layout::kColumnWise), "column-wise");
  EXPECT_STREQ(to_string(umm::Layout::kRowWise), "row-wise");
}

}  // namespace
}  // namespace bulkgcd
