// Direct unit tests for the bulk memory layouts and the UMM address mapping
// (these are otherwise only exercised indirectly through the engines).
#include "bulk/layout.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "bulk/scan_corpus.hpp"
#include "mp/bigint.hpp"
#include "umm/umm.hpp"

namespace bulkgcd {
namespace {

TEST(ColumnMatrixTest, LaneElementsAreStridedByLaneCount) {
  bulk::ColumnMatrix<std::uint32_t> mat(4, 3);
  EXPECT_EQ(mat.lanes(), 4u);
  EXPECT_EQ(mat.limbs(), 3u);
  EXPECT_EQ(mat.bytes(), 4u * 3u * sizeof(std::uint32_t));
  // Write through lane views, check the column-major physical layout via
  // neighbouring lanes: element i of lane t and lane t+1 are adjacent.
  for (std::size_t t = 0; t < 4; ++t) {
    auto lane = mat.lane(t);
    for (std::size_t i = 0; i < 3; ++i) lane[i] = std::uint32_t(10 * t + i);
  }
  auto lane0 = mat.lane(0);
  auto lane1 = mat.lane(1);
  EXPECT_EQ(&lane1[0], &lane0[0] + 1);   // same limb, next lane: adjacent
  EXPECT_EQ(&lane0[1], &lane0[0] + 4);   // next limb: a full row away
  EXPECT_EQ(lane1[2], 12u);
}

TEST(RowMatrixTest, LaneElementsAreContiguous) {
  bulk::RowMatrix<std::uint32_t> mat(4, 3);
  for (std::size_t t = 0; t < 4; ++t) {
    auto lane = mat.lane(t);
    for (std::size_t i = 0; i < 3; ++i) lane[i] = std::uint32_t(10 * t + i);
  }
  auto lane2 = mat.lane(2);
  EXPECT_EQ(&lane2[1], &lane2[0] + 1);   // next limb: adjacent
  EXPECT_EQ(lane2[1], 21u);
}

TEST(LayoutTest, FillLaneZeroPadsTheTail) {
  bulk::ColumnMatrix<std::uint32_t> mat(2, 5);
  const std::uint32_t src[2] = {7, 9};
  mat.fill_lane(0, src, 2);
  auto lane = mat.lane(0);
  EXPECT_EQ(lane[0], 7u);
  EXPECT_EQ(lane[1], 9u);
  EXPECT_EQ(lane[2], 0u);
  EXPECT_EQ(lane[4], 0u);
  // Refilling with shorter data clears the previous contents.
  const std::uint32_t shorter[1] = {3};
  mat.fill_lane(0, shorter, 1);
  EXPECT_EQ(lane[0], 3u);
  EXPECT_EQ(lane[1], 0u);
}

TEST(MapAddressTest, ColumnWiseInterleavesThreads) {
  // Column-wise: logical i of thread t -> i*p + t.
  EXPECT_EQ(umm::map_address(umm::Layout::kColumnWise, 0, 0, 8, 16), 0u);
  EXPECT_EQ(umm::map_address(umm::Layout::kColumnWise, 0, 5, 8, 16), 5u);
  EXPECT_EQ(umm::map_address(umm::Layout::kColumnWise, 3, 2, 8, 16), 26u);
  // Adjacent threads at the same logical address are adjacent globally.
  const auto a = umm::map_address(umm::Layout::kColumnWise, 7, 3, 8, 16);
  const auto b = umm::map_address(umm::Layout::kColumnWise, 7, 4, 8, 16);
  EXPECT_EQ(b, a + 1);
}

TEST(MapAddressTest, RowWiseSeparatesThreadsBySpan) {
  // Row-wise: logical i of thread t -> t*span + i.
  EXPECT_EQ(umm::map_address(umm::Layout::kRowWise, 3, 2, 8, 16), 35u);
  const auto a = umm::map_address(umm::Layout::kRowWise, 7, 3, 8, 16);
  const auto b = umm::map_address(umm::Layout::kRowWise, 7, 4, 8, 16);
  EXPECT_EQ(b, a + 16);  // a whole span apart: different address groups
  // span == 0 is the identity mapping used for hand-built traces.
  EXPECT_EQ(umm::map_address(umm::Layout::kRowWise, 42, 3, 8, 0), 42u);
}

TEST(LayoutTest, ToStringNames) {
  EXPECT_STREQ(to_string(umm::Layout::kColumnWise), "column-wise");
  EXPECT_STREQ(to_string(umm::Layout::kRowWise), "row-wise");
}

TEST(StridedTest, IndexScalesByStride) {
  std::uint32_t buf[12] = {};
  for (std::uint32_t i = 0; i < 12; ++i) buf[i] = i;
  // stride 4 starting at offset 1 picks 1, 5, 9 — a lane of a 4-lane
  // column-major matrix.
  bulk::Strided<std::uint32_t> acc{buf + 1, 4};
  EXPECT_EQ(acc[0], 1u);
  EXPECT_EQ(acc[1], 5u);
  EXPECT_EQ(acc[2], 9u);
  acc[1] = 77;
  EXPECT_EQ(buf[5], 77u);
  bulk::ConstStrided<std::uint32_t> cacc{buf + 1, 4};
  EXPECT_EQ(cacc[1], 77u);
  EXPECT_EQ(&cacc[2], buf + 9);
  // stride 1 degenerates to a plain contiguous view (RowMatrix lanes).
  bulk::ConstStrided<std::uint32_t> flat{buf, 1};
  EXPECT_EQ(&flat[3], buf + 3);
}

TEST(CorpusPanelsTest, GeometryAndTailLanes) {
  // 7 moduli in groups of 3: 3 groups, last one 1-lane ragged.
  std::vector<mp::BigInt> moduli;
  for (std::uint32_t i = 0; i < 7; ++i) {
    moduli.push_back(mp::BigInt((std::uint64_t(i + 1) << 33) | 1u));
  }
  const std::size_t pad = moduli[6].size() + bulk::kBatchPadLimbs;
  bulk::CorpusPanels<std::uint32_t> panels(moduli, 3, pad);
  EXPECT_EQ(panels.corpus_size(), 7u);
  EXPECT_EQ(panels.group_count(), 3u);
  EXPECT_EQ(panels.lanes(), 3u);
  EXPECT_EQ(panels.padded_limbs(), pad);
  // Column-major panel: limb i of member t at panel[i*r + t].
  const auto p0 = panels.panel(0);
  ASSERT_EQ(p0.size(), 3u * pad);
  EXPECT_EQ(p0[0], moduli[0].limbs()[0]);
  EXPECT_EQ(p0[1], moduli[1].limbs()[0]);
  EXPECT_EQ(p0[3 + 2], moduli[2].limbs()[1]);  // limb 1, lane 2
  // rows = max member size + 1 (the β write row).
  EXPECT_EQ(panels.rows(0), moduli[2].size() + 1);
  // Tail group: lanes past the corpus end carry size 0 and zero limbs.
  const auto tail_sizes = panels.sizes(2);
  EXPECT_EQ(tail_sizes[0], moduli[6].size());
  EXPECT_EQ(tail_sizes[1], 0u);
  EXPECT_EQ(tail_sizes[2], 0u);
  const auto p2 = panels.panel(2);
  EXPECT_EQ(p2[1], 0u);  // limb 0 of dead lane 1
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(panels.bits(i), moduli[i].bit_length());
  }
}

TEST(CorpusPanelsTest, RejectsModuliThatOverrunThePadRow) {
  // padded_limbs must leave kBatchPadLimbs rows above the longest modulus —
  // one short and construction must throw rather than stage a panel the
  // batch would overrun.
  std::vector<mp::BigInt> moduli{mp::BigInt(1) << 95};  // 4 limbs
  EXPECT_THROW(
      (bulk::CorpusPanels<std::uint32_t>(
          moduli, 2, moduli[0].size() + bulk::kBatchPadLimbs - 1)),
      std::length_error);
  // Exactly enough is accepted.
  EXPECT_NO_THROW((bulk::CorpusPanels<std::uint32_t>(
      moduli, 2, moduli[0].size() + bulk::kBatchPadLimbs)));
}

TEST(CorpusPanelsTest, CorpusViewCtorMatchesBigIntCtor) {
  // The ScanCorpus-view constructor must stage byte-identical panels to the
  // BigInt-span constructor (at the default 32-bit scan limb width they use
  // the same limbs).
  std::vector<mp::BigInt> moduli;
  for (std::uint32_t i = 0; i < 5; ++i) {
    moduli.push_back(mp::BigInt((std::uint64_t(i + 3) << 40) | 0x1fffu));
  }
  const std::size_t pad = 8;
  bulk::CorpusPanels<std::uint32_t> direct(moduli, 2, pad);
  const bulk::ScanCorpusT<std::uint32_t> scan(moduli);
  bulk::CorpusPanels<std::uint32_t> viaView(scan, 2, pad);
  ASSERT_EQ(direct.group_count(), viaView.group_count());
  for (std::size_t g = 0; g < direct.group_count(); ++g) {
    const auto a = direct.panel(g);
    const auto b = viaView.panel(g);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end())) << g;
    EXPECT_EQ(direct.rows(g), viaView.rows(g));
    const auto sa = direct.sizes(g);
    const auto sb = viaView.sizes(g);
    EXPECT_TRUE(std::equal(sa.begin(), sa.end(), sb.begin(), sb.end()));
  }
}

}  // namespace
}  // namespace bulkgcd
