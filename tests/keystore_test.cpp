// Keystore file-format tests: round trips, mixed files, comments, and
// malformed-input rejection.
#include "rsa/keystore.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/rng.hpp"
#include "obs/metrics.hpp"
#include "rsa/corpus.hpp"

namespace bulkgcd::rsa {
namespace {

using mp::BigInt;

class KeystoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            (std::string("bulkgcd_keystore_test_") +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
  }
  void TearDown() override {
    std::error_code ignored;
    std::filesystem::remove(path_, ignored);
  }
  std::filesystem::path path_;
};

TEST(ModulusFingerprintTest, IdenticalAcrossLimbWidths) {
  // The dedup fingerprint hashes canonical little-endian bytes, so the same
  // value must fingerprint identically on u16/u32/u64 limb builds
  // (regression: it used to hash raw limb words, so a BULKGCD_LIMB32 build
  // and a default build disagreed on what counted as a duplicate). Odd byte
  // counts matter: 0x1_00000000_00000001 is 9 bytes, which exercises the
  // partial top limb at every width.
  const char* const values[] = {
      "1",
      "ff",
      "100",
      "ffff",
      "10001",
      "fedcba9876543210",
      "10000000000000001",
      "c2a7d3f19b8e65041f2e3d4c5b6a7988aabbccddeeff0123",
  };
  for (const char* hex : values) {
    const auto n16 = mp::BigIntT<std::uint16_t>::from_hex(hex);
    const auto n32 = mp::BigIntT<std::uint32_t>::from_hex(hex);
    const auto n64 = mp::BigIntT<std::uint64_t>::from_hex(hex);
    const std::uint64_t f16 = modulus_fingerprint(n16);
    const std::uint64_t f32 = modulus_fingerprint(n32);
    const std::uint64_t f64 = modulus_fingerprint(n64);
    EXPECT_EQ(f16, f32) << "value " << hex;
    EXPECT_EQ(f32, f64) << "value " << hex;
  }
  // Distinct values must (for these inputs) fingerprint differently — the
  // hash is not degenerate.
  EXPECT_NE(modulus_fingerprint(mp::BigInt::from_hex("ff")),
            modulus_fingerprint(mp::BigInt::from_hex("100")));
  // Zero hashes the empty byte string; still stable across widths.
  EXPECT_EQ(modulus_fingerprint(mp::BigIntT<std::uint16_t>()),
            modulus_fingerprint(mp::BigIntT<std::uint64_t>()));
}

TEST_F(KeystoreTest, ModuliRoundTrip) {
  CorpusSpec spec;
  spec.count = 8;
  spec.modulus_bits = 128;
  const auto corpus = generate_corpus(spec);
  save_moduli(path_, corpus.moduli, "test corpus\nsecond comment line");
  EXPECT_EQ(load_moduli(path_), corpus.moduli);
}

TEST_F(KeystoreTest, KeypairRoundTrip) {
  Xoshiro256 rng(151);
  std::vector<KeyPair> keys;
  for (int i = 0; i < 3; ++i) keys.push_back(generate_keypair(rng, 128));
  save_keypairs(path_, keys, "private material");
  const auto loaded = load_keypairs(path_);
  ASSERT_EQ(loaded.size(), keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(loaded[i].n, keys[i].n);
    EXPECT_EQ(loaded[i].e, keys[i].e);
    EXPECT_EQ(loaded[i].d, keys[i].d);
    EXPECT_EQ(loaded[i].p, keys[i].p);
    EXPECT_EQ(loaded[i].q, keys[i].q);
  }
}

TEST_F(KeystoreTest, LoadModuliReadsKeypairModuli) {
  Xoshiro256 rng(152);
  const KeyPair key = generate_keypair(rng, 128);
  save_keypairs(path_, {key});
  const auto moduli = load_moduli(path_);
  ASSERT_EQ(moduli.size(), 1u);
  EXPECT_EQ(moduli[0], key.n);
}

TEST_F(KeystoreTest, MixedFileAndComments) {
  std::ofstream out(path_);
  out << "# harvested keys\n\n";
  out << "modulus ff1\n";
  out << "keypair 23 5 3 5 7\n";  // 35 = 5*7, e=5, d=3 (toy values)
  out << "# trailing comment\n";
  out.close();
  const auto moduli = load_moduli(path_);
  ASSERT_EQ(moduli.size(), 2u);
  EXPECT_EQ(moduli[0], BigInt(0xff1));
  EXPECT_EQ(moduli[1], BigInt(0x23));
  const auto keys = load_keypairs(path_);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0].q, BigInt(7));
}

TEST_F(KeystoreTest, CrlfTerminatedFilesLoadCleanly) {
  // Harvested key lists routinely arrive with Windows line endings; both
  // loaders must treat the trailing \r as insignificant whitespace.
  {
    std::ofstream out(path_, std::ios::binary);
    out << "# exported from a windows box\r\n";
    out << "modulus ff1\r\n";
    out << "keypair 23 5 3 5 7\r\n";
    out << "\r\n";
  }
  const auto moduli = load_moduli(path_);
  ASSERT_EQ(moduli.size(), 2u);
  EXPECT_EQ(moduli[0], BigInt(0xff1));
  EXPECT_EQ(moduli[1], BigInt(0x23));
  const auto keys = load_keypairs(path_);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0].n, BigInt(0x23));
  EXPECT_EQ(keys[0].q, BigInt(7));
}

TEST_F(KeystoreTest, BlankAndCommentOnlyFilesLoadEmpty) {
  {
    std::ofstream out(path_);
    out << "\n   \n\t\n# only comments here\n#another\n\n";
  }
  EXPECT_TRUE(load_moduli(path_).empty());
  EXPECT_TRUE(load_keypairs(path_).empty());
}

TEST_F(KeystoreTest, MixedRecordRoundTripPreservesBothKinds) {
  Xoshiro256 rng(153);
  const KeyPair key = generate_keypair(rng, 128);
  CorpusSpec spec;
  spec.count = 3;
  spec.modulus_bits = 128;
  spec.seed = 154;
  const auto corpus = generate_corpus(spec);
  {
    // Mixed file: moduli then keypairs then more moduli, with comments.
    std::ofstream out(path_);
    out << "# mixed harvest\n";
    out << "modulus " << corpus.moduli[0].to_hex() << "\n";
    out << "keypair " << key.n.to_hex() << " " << key.e.to_hex() << " "
        << key.d.to_hex() << " " << key.p.to_hex() << " " << key.q.to_hex()
        << "\n";
    out << "modulus " << corpus.moduli[1].to_hex() << "\n";
    out << "modulus " << corpus.moduli[2].to_hex() << "\n";
  }
  const auto moduli = load_moduli(path_);
  ASSERT_EQ(moduli.size(), 4u);  // 3 plain + the keypair's n
  EXPECT_EQ(moduli[0], corpus.moduli[0]);
  EXPECT_EQ(moduli[1], key.n);
  const auto keys = load_keypairs(path_);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0].d, key.d);
}

TEST_F(KeystoreTest, CorpusDigestBindsToContentAndOrder) {
  CorpusSpec spec;
  spec.count = 6;
  spec.modulus_bits = 128;
  spec.seed = 155;
  const auto corpus = generate_corpus(spec);
  const std::uint64_t digest = corpus_digest(corpus.moduli);
  EXPECT_EQ(corpus_digest(corpus.moduli), digest);  // deterministic

  std::vector<BigInt> reordered = corpus.moduli;
  std::swap(reordered[0], reordered[1]);
  EXPECT_NE(corpus_digest(reordered), digest);  // order-sensitive

  std::vector<BigInt> grown = corpus.moduli;
  grown.push_back(corpus.moduli[0]);
  EXPECT_NE(corpus_digest(grown), digest);  // length-sensitive

  // Digest survives a keystore round trip: save + load yields the same
  // corpus identity, so checkpoints stay valid across restarts that reload
  // the moduli from disk.
  save_moduli(path_, corpus.moduli);
  EXPECT_EQ(corpus_digest(load_moduli(path_)), digest);

  EXPECT_NE(corpus_digest({}), 0u);  // empty corpus has a stable non-zero tag
}

TEST_F(KeystoreTest, RejectsMalformedRecords) {
  {
    std::ofstream out(path_);
    out << "modulus\n";  // missing value
  }
  EXPECT_THROW(load_moduli(path_), std::runtime_error);
  {
    std::ofstream out(path_);
    out << "certificate ff\n";  // unknown kind
  }
  EXPECT_THROW(load_moduli(path_), std::runtime_error);
  {
    std::ofstream out(path_);
    out << "keypair 23 5 3\n";  // too few fields
  }
  EXPECT_THROW(load_keypairs(path_), std::runtime_error);
}

TEST_F(KeystoreTest, MissingFileThrows) {
  EXPECT_THROW(load_moduli(path_ / "nope"), std::runtime_error);
  EXPECT_THROW(save_moduli(path_ / "no" / "dir" / "file", {}),
               std::runtime_error);
}

TEST_F(KeystoreTest, EmptyListsProduceLoadableFiles) {
  save_moduli(path_, {});
  EXPECT_TRUE(load_moduli(path_).empty());
  save_keypairs(path_, {});
  EXPECT_TRUE(load_keypairs(path_).empty());
}

TEST_F(KeystoreTest, LoaderMetricsCountRecordsCommentsAndDuplicates) {
  // A corpus with a repeated modulus: an all-pairs scan of it reports
  // full-modulus "hits" that factor nothing, so the loader flags it.
  std::ofstream out(path_);
  out << "# harvested keys\n"
      << "\n"
      << "modulus beef\n"
      << "modulus c0de\n"
      << "modulus beef\n";
  out.close();

  obs::MetricsRegistry registry;
  const auto moduli = load_moduli(path_, &registry);
  EXPECT_EQ(moduli.size(), 3u);
  EXPECT_EQ(registry.counter("keystore_records_total")->value(), 3u);
  EXPECT_EQ(registry.counter("keystore_comment_lines_total")->value(), 2u);
  EXPECT_EQ(registry.counter("keystore_duplicate_moduli_total")->value(), 1u);
  EXPECT_EQ(registry.counter("keystore_parse_errors_total")->value(), 0u);
}

TEST_F(KeystoreTest, LoaderMetricsRecordParseErrorBeforeThrow) {
  std::ofstream out(path_);
  out << "modulus beef\n"
      << "garbage line\n";
  out.close();

  obs::MetricsRegistry registry;
  EXPECT_THROW(load_moduli(path_, &registry), std::runtime_error);
  // The error is counted before the throw, so a crashed load still shows
  // it in the last telemetry snapshot.
  EXPECT_EQ(registry.counter("keystore_parse_errors_total")->value(), 1u);
  EXPECT_EQ(registry.counter("keystore_records_total")->value(), 1u);

  obs::MetricsRegistry keypair_registry;
  EXPECT_THROW(load_keypairs(path_, &keypair_registry), std::runtime_error);
  EXPECT_EQ(keypair_registry.counter("keystore_parse_errors_total")->value(),
            1u);
}

TEST_F(KeystoreTest, KeypairLoaderFeedsSameMetrics) {
  Xoshiro256 rng(42);
  std::vector<KeyPair> keys;
  for (int i = 0; i < 2; ++i) keys.push_back(generate_keypair(rng, 128));
  keys.push_back(keys.front());  // duplicate n
  save_keypairs(path_, keys, "test corpus");

  obs::MetricsRegistry registry;
  const auto loaded = load_keypairs(path_, &registry);
  EXPECT_EQ(loaded.size(), 3u);
  EXPECT_EQ(registry.counter("keystore_records_total")->value(), 3u);
  EXPECT_EQ(registry.counter("keystore_duplicate_moduli_total")->value(), 1u);
  EXPECT_EQ(registry.counter("keystore_comment_lines_total")->value(), 1u);
}

}  // namespace
}  // namespace bulkgcd::rsa
