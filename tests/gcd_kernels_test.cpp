// Fused-kernel unit tests: each streaming kernel is validated against a
// naive BigInt formulation, the rare fallback paths are forced, and the
// Section-IV memory-access bounds (3·s/d + O(1), 4·s/d for β > 0) are
// checked with the counting tracer.
#include "gcd/kernels.hpp"

#include <gtest/gtest.h>

#include "gcd/algorithms.hpp"
#include "gmp_oracle.hpp"
#include "mp/bigint.hpp"

namespace bulkgcd::gcd {
namespace {

using bulkgcd::Xoshiro256;
using bulkgcd::test::random_odd;
using bulkgcd::test::random_value;
using mp::BigInt;

template <typename Limb>
class KernelsTest : public ::testing::Test {};

using LimbTypes = ::testing::Types<std::uint16_t, std::uint32_t, std::uint64_t>;
TYPED_TEST_SUITE(KernelsTest, LimbTypes);

template <typename Limb>
std::vector<Limb> to_buffer(const mp::BigIntT<Limb>& v, std::size_t cap) {
  std::vector<Limb> buf(cap, Limb{0});
  std::copy(v.limbs().begin(), v.limbs().end(), buf.begin());
  return buf;
}

TYPED_TEST(KernelsTest, FusedSubmulStripMatchesNaive) {
  using Limb = TypeParam;
  using Big = mp::BigIntT<Limb>;
  Xoshiro256 rng(61);
  NullTracer tracer;
  for (int trial = 0; trial < 300; ++trial) {
    const Big y = random_odd<Limb>(rng, 1 + rng.below(200));
    Limb alpha = Limb(rng()) | 1u;  // odd
    // Build x >= y*alpha, odd: y*alpha is odd (odd·odd), pad with even.
    const Big pad = random_value<Limb>(rng, 1 + rng.below(100)) << 1;
    const Big x = y * Big(std::uint64_t(alpha)) + pad;
    ASSERT_TRUE(x.is_odd());

    auto buf = to_buffer(x, x.size() + 2);
    const std::size_t lx = fused_submul_strip(buf.data(), x.size(), y.data(),
                                              y.size(), alpha, tracer);
    Big naive = x - y * Big(std::uint64_t(alpha));
    naive.strip_trailing_zeros();
    EXPECT_EQ(Big::from_limbs({buf.data(), lx}), naive);
  }
}

TYPED_TEST(KernelsTest, FusedSubmulStripExactMultipleGivesZero) {
  using Limb = TypeParam;
  using Big = mp::BigIntT<Limb>;
  Xoshiro256 rng(62);
  NullTracer tracer;
  const Big y = random_odd<Limb>(rng, 90);
  const Limb alpha = Limb(rng()) | 1u;
  const Big x = y * Big(std::uint64_t(alpha));  // odd*odd = odd
  auto buf = to_buffer(x, x.size() + 2);
  const std::size_t lx =
      fused_submul_strip(buf.data(), x.size(), y.data(), y.size(), alpha, tracer);
  EXPECT_EQ(lx, 0u);
}

TYPED_TEST(KernelsTest, FusedSubmulStripSlowPathWholeLimbShift) {
  // Difference with >= d trailing zero bits forces the fallback: construct
  // x = y*alpha + (odd << k·d) so the low limb of the difference is zero.
  using Limb = TypeParam;
  using Big = mp::BigIntT<Limb>;
  constexpr int LB = mp::limb_bits<Limb>;
  Xoshiro256 rng(63);
  NullTracer tracer;
  for (int trial = 0; trial < 50; ++trial) {
    const Big y = random_odd<Limb>(rng, 50 + rng.below(100));
    const Limb alpha = Limb(rng()) | 1u;
    Big tail = random_odd<Limb>(rng, 30);
    const std::size_t k = 1 + rng.below(3);
    Big x = y * Big(std::uint64_t(alpha)) + (tail << (k * LB));
    if (x.is_even()) continue;  // x parity: y*alpha odd + even shift = odd ✓
    auto buf = to_buffer(x, x.size() + 2);
    const std::size_t lx = fused_submul_strip(buf.data(), x.size(), y.data(),
                                              y.size(), alpha, tracer);
    EXPECT_EQ(Big::from_limbs({buf.data(), lx}), tail);  // tail already odd
  }
}

TYPED_TEST(KernelsTest, FusedShiftedAddStripMatchesNaive) {
  using Limb = TypeParam;
  using Big = mp::BigIntT<Limb>;
  constexpr int LB = mp::limb_bits<Limb>;
  Xoshiro256 rng(64);
  NullTracer tracer;
  for (int trial = 0; trial < 300; ++trial) {
    const Big y = random_odd<Limb>(rng, 1 + rng.below(120));
    const Limb alpha =
        Limb(std::max<std::uint64_t>(1, rng() & (mp::limb_base<Limb> - 1)));
    const std::size_t beta = 1 + rng.below(4);
    Big x = (y * Big(std::uint64_t(alpha))) << (beta * LB);
    Big pad = random_value<Limb>(rng, 1 + rng.below(60));
    x += pad;
    if (x.is_even()) x += Big(1);
    // Precondition of the kernel: lx + 1 >= ly + beta holds by construction.
    auto buf = to_buffer(x, x.size() + 3);
    const std::size_t lx = fused_submul_shifted_add_strip(
        buf.data(), x.size(), y.data(), y.size(), alpha, beta, tracer);
    Big naive = (x + y) - ((y * Big(std::uint64_t(alpha))) << (beta * LB));
    naive.strip_trailing_zeros();
    EXPECT_EQ(Big::from_limbs({buf.data(), lx}), naive)
        << "beta=" << beta;
  }
}

TYPED_TEST(KernelsTest, HalveAndSubHalve) {
  using Limb = TypeParam;
  using Big = mp::BigIntT<Limb>;
  Xoshiro256 rng(65);
  NullTracer tracer;
  for (int trial = 0; trial < 100; ++trial) {
    Big x = random_odd<Limb>(rng, 1 + rng.below(150));
    Big even = x << 1;
    auto buf = to_buffer(even, even.size() + 1);
    const std::size_t n = halve(buf.data(), even.size(), tracer);
    EXPECT_EQ(Big::from_limbs({buf.data(), n}), x);

    Big y = random_odd<Limb>(rng, 1 + rng.below(x.bit_length()));
    if (y > x) std::swap(x, y);
    auto buf2 = to_buffer(x, x.size() + 1);
    const std::size_t n2 =
        sub_halve(buf2.data(), x.size(), y.data(), y.size(), tracer);
    EXPECT_EQ(Big::from_limbs({buf2.data(), n2}), (x - y) >> 1);
  }
}

TYPED_TEST(KernelsTest, AccessorHelpersAgreeWithSpanOps) {
  using Limb = TypeParam;
  using Big = mp::BigIntT<Limb>;
  Xoshiro256 rng(66);
  for (int trial = 0; trial < 100; ++trial) {
    const Big a = random_value<Limb>(rng, 1 + rng.below(200));
    const Big b = random_value<Limb>(rng, 1 + rng.below(200));
    EXPECT_EQ(acc_normalized_size(a.data(), a.size()),
              mp::normalized_size(a.data(), a.size()));
    EXPECT_EQ(acc_compare(a.data(), a.size(), b.data(), b.size()),
              mp::compare(a.data(), a.size(), b.data(), b.size()));
  }
}

TEST(MemoryAccessBoundTest, ThreeSOverDPlusConstantPerIteration) {
  // Figure 1 / Section IV: one Approximate iteration reads X, reads Y and
  // writes X once each — 3·s/d + O(1) limb accesses (β = 0 path).
  Xoshiro256 rng(67);
  const std::size_t bits = 1024;
  const BigInt x = random_odd<std::uint32_t>(rng, bits);
  const BigInt y = random_odd<std::uint32_t>(rng, bits);
  GcdEngine<std::uint32_t> engine(bits / 32);
  GcdStats st;
  CountTracer tracer;
  engine.run(Variant::kApproximate, x.limbs(), y.limbs(), bits / 2, &st, &tracer);
  ASSERT_GT(st.iterations, 0u);
  ASSERT_EQ(st.beta_nonzero, 0u);  // β > 0 has probability < 1e-8
  const double per_iter = double(tracer.total()) / double(st.iterations);
  // Limb counts shrink from s/d toward s/(2d) during the early-terminate
  // run, so the mean sits below the 3·s/d bound; the constant term is small.
  const double bound = 3.0 * double(bits) / 32.0 + 16.0;
  EXPECT_LE(per_iter, bound);
  EXPECT_GE(per_iter, 3.0 * double(bits) / 2.0 / 32.0);  // ≥ 3·(s/2)/d
}

TEST(MemoryAccessBoundTest, FastBinaryMatchesSameBound) {
  Xoshiro256 rng(68);
  const std::size_t bits = 1024;
  const BigInt x = random_odd<std::uint32_t>(rng, bits);
  const BigInt y = random_odd<std::uint32_t>(rng, bits);
  GcdEngine<std::uint32_t> engine(bits / 32);
  GcdStats st;
  CountTracer tracer;
  engine.run(Variant::kFastBinary, x.limbs(), y.limbs(), bits / 2, &st, &tracer);
  const double per_iter = double(tracer.total()) / double(st.iterations);
  EXPECT_LE(per_iter, 3.0 * double(bits) / 32.0 + 16.0);
}

TEST(MemoryAccessBoundTest, TracerIterationMarksMatchStats) {
  Xoshiro256 rng(69);
  const BigInt x = random_odd<std::uint32_t>(rng, 512);
  const BigInt y = random_odd<std::uint32_t>(rng, 512);
  GcdEngine<std::uint32_t> engine(16);
  GcdStats st;
  AddressTracer tracer(32);
  engine.run(Variant::kApproximate, x.limbs(), y.limbs(), 0, &st, &tracer);
  EXPECT_EQ(tracer.iteration_starts.size(), st.iterations);
  EXPECT_FALSE(tracer.accesses.empty());
}

}  // namespace
}  // namespace bulkgcd::gcd
