// Streaming intake service tests: the parser survives hostile input
// (reject-and-continue, never throw-and-die), the bounded queue sheds
// visibly instead of buffering invisibly, and a streamed corpus finds the
// bit-identical hit set a one-shot all_pairs_gcd finds — including under
// overload, shutdown, and every probe backend.
#include "svc/intake_service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <csignal>
#include <netinet/in.h>
#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include "bulk/allpairs.hpp"
#include "bulk/build_info.hpp"
#include "core/rng.hpp"
#include "obs/http_exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rsa/corpus.hpp"
#include "rsa/pem.hpp"
#include "rsa/prime.hpp"
#include "svc/bounded_queue.hpp"
#include "svc/intake_parser.hpp"
#include "svc/net_util.hpp"

namespace bulkgcd::svc {
namespace {

using mp::BigInt;
using rsa::CorpusSpec;
using rsa::WeakCorpus;

WeakCorpus test_corpus(std::size_t count, std::size_t weak,
                       std::uint64_t seed) {
  CorpusSpec spec;
  spec.count = count;
  spec.modulus_bits = 128;
  spec.weak_pairs = weak;
  spec.seed = seed;
  return rsa::generate_corpus(spec);
}

// ---- rsa::hex_decode_modulus ----------------------------------------------

TEST(HexDecodeModulusTest, AcceptsPrefixesLabelsAndWhitespace) {
  EXPECT_EQ(rsa::hex_decode_modulus("c3"), BigInt(0xc3));
  EXPECT_EQ(rsa::hex_decode_modulus("0xC3"), BigInt(0xc3));
  EXPECT_EQ(rsa::hex_decode_modulus("  0X00c3  "), BigInt(0xc3));
  EXPECT_EQ(rsa::hex_decode_modulus("Modulus=c3"), BigInt(0xc3));
  // openssl-style colon/whitespace-spread dumps collapse to one value.
  EXPECT_EQ(rsa::hex_decode_modulus("c0 ff ee 11"), BigInt(0xc0ffee11));
}

TEST(HexDecodeModulusTest, RejectsEmptyOddAndNonHex) {
  EXPECT_THROW(rsa::hex_decode_modulus(""), std::runtime_error);
  EXPECT_THROW(rsa::hex_decode_modulus("   "), std::runtime_error);
  EXPECT_THROW(rsa::hex_decode_modulus("abc"), std::runtime_error);  // odd
  EXPECT_THROW(rsa::hex_decode_modulus("zz"), std::runtime_error);
  EXPECT_THROW(rsa::hex_decode_modulus("0x"), std::runtime_error);
}

// ---- BoundedQueue ----------------------------------------------------------

TEST(BoundedQueueTest, ShedsAtCapacityWithoutBlocking) {
  BoundedQueue<int> q(2);
  EXPECT_EQ(q.capacity(), 2u);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full: shed, immediately
  EXPECT_EQ(q.size(), 2u);
  int out = 0;
  EXPECT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(q.try_push(3));  // slot freed
}

TEST(BoundedQueueTest, CloseDrainsRemainingItemsThenReportsEmpty) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.try_push(1));
  ASSERT_TRUE(q.try_push(2));
  q.close();
  EXPECT_FALSE(q.try_push(3));  // closed: no new admissions
  int out = 0;
  EXPECT_TRUE(q.pop(out));  // already-admitted items still drain
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(q.pop(out));  // closed AND drained: consumer exits
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(1);
  std::thread consumer([&] {
    int out = 0;
    EXPECT_FALSE(q.pop(out));  // blocks until close, then exits false
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
}

TEST(BoundedQueueTest, ZeroCapacityClampsToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.try_push(7));
  EXPECT_FALSE(q.try_push(8));
}

// ---- IntakeParser ----------------------------------------------------------

std::vector<IntakeRecord> parse_all(std::string_view text) {
  IntakeParser parser;
  parser.feed(text);
  return parser.finish();
}

TEST(IntakeParserTest, ParsesAllThreeRecordShapes) {
  const rsa::PublicKey key{BigInt(0xbcbf), BigInt(65537)};
  std::string input = rsa::pem_encode_public_key(key, rsa::PemKind::kPkcs1);
  input += "modulus cee1 deadbeef 10001\n";  // keystore line: first field wins
  input += "# a comment\n";
  input += "\n";
  input += "0xA0B1C2D3E4F5A6B7\n";
  const auto records = parse_all(input);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_TRUE(records[0].ok);
  EXPECT_EQ(records[0].kind, RecordKind::kPem);
  EXPECT_EQ(records[0].n, BigInt(0xbcbf));
  EXPECT_TRUE(records[1].ok);
  EXPECT_EQ(records[1].kind, RecordKind::kKeystore);
  EXPECT_EQ(records[1].n, BigInt(0xcee1));
  EXPECT_TRUE(records[2].ok);
  EXPECT_EQ(records[2].kind, RecordKind::kRawHex);
  EXPECT_EQ(records[2].n, BigInt(0xA0B1C2D3E4F5A6B7ULL));
}

TEST(IntakeParserTest, TruncatedBase64RejectsAndParsingContinues) {
  const rsa::PublicKey key{BigInt(0xbcbf), BigInt(65537)};
  std::string pem = rsa::pem_encode_public_key(key, rsa::PemKind::kSpki);
  // Corrupt the body: drop a chunk of base64 but keep the END armor, so the
  // block completes structurally and fails to decode.
  const auto begin_end = pem.find('\n') + 1;
  pem.erase(begin_end, 8);
  std::string input = pem;
  input += "cee1\n";  // the stream continues with a good record
  const auto records = parse_all(input);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_FALSE(records[0].ok);
  EXPECT_NE(records[0].error.find("bad PEM block"), std::string::npos);
  EXPECT_TRUE(records[1].ok) << "parser must continue after a bad block";
  EXPECT_EQ(records[1].n, BigInt(0xcee1));
}

TEST(IntakeParserTest, NonPemInterleavingsInsideBlockRejectCleanly) {
  // Hostile interleaving: a BEGIN armor, then junk, then a fresh BEGIN. The
  // inner junk corrupts the first block; the second block must still parse.
  const rsa::PublicKey key{BigInt(0xcee1), BigInt(3)};
  std::string input = "-----BEGIN RSA PUBLIC KEY-----\n";
  input += "this is not base64 at all!!\n";
  input += "-----END RSA PUBLIC KEY-----\n";
  input += rsa::pem_encode_public_key(key);
  const auto records = parse_all(input);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_FALSE(records[0].ok);
  EXPECT_EQ(records[0].line, 1u) << "reject anchored at the BEGIN line";
  EXPECT_TRUE(records[1].ok);
  EXPECT_EQ(records[1].n, BigInt(0xcee1));
}

TEST(IntakeParserTest, UnterminatedPemAtEofRejects) {
  IntakeParser parser;
  parser.feed("-----BEGIN PUBLIC KEY-----\nAAAA\n");
  EXPECT_TRUE(parser.drain().empty());  // block still open: nothing complete
  const auto records = parser.finish();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_FALSE(records[0].ok);
  EXPECT_NE(records[0].error.find("unterminated"), std::string::npos);
}

TEST(IntakeParserTest, BadHexShapesRejectWithoutThrowing) {
  const auto records = parse_all(
      "abc\n"            // odd digit count
      "hello world\n"    // not hex at all
      "modulus\n"        // keystore record missing its field
      "modulus xyz\n"    // keystore record with bad hex
      "c0 ff 1\n"        // whitespace-spread hex, odd digit total -> reject
      "cee1\n");         // good record at the end
  ASSERT_EQ(records.size(), 6u);
  for (std::size_t k = 0; k + 1 < records.size(); ++k) {
    EXPECT_FALSE(records[k].ok) << "record " << k;
    EXPECT_FALSE(records[k].error.empty());
    EXPECT_EQ(records[k].line, k + 1);
  }
  EXPECT_TRUE(records.back().ok);
}

TEST(IntakeParserTest, ScreensDegenerateModuli) {
  const auto records = parse_all(
      "00\n"     // zero
      "01\n"     // one
      "c4\n"     // even
      "c3\n");   // odd, fine
  ASSERT_EQ(records.size(), 4u);
  EXPECT_FALSE(records[0].ok);
  EXPECT_FALSE(records[1].ok);
  EXPECT_FALSE(records[2].ok);
  EXPECT_NE(records[2].error.find("even"), std::string::npos);
  EXPECT_TRUE(records[3].ok);
}

TEST(IntakeParserTest, RecordsSplitAcrossFeedChunksReassemble) {
  const rsa::PublicKey key{BigInt(0xbcbf), BigInt(65537)};
  std::string input = rsa::pem_encode_public_key(key);
  input += "ce";  // raw-hex record split mid-value
  IntakeParser parser;
  // Feed one byte at a time — the worst possible TCP fragmentation.
  for (const char c : input) parser.feed(std::string_view(&c, 1));
  parser.feed("e1\r\n");  // CRLF line ending, to boot
  const auto records = parser.finish();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_TRUE(records[0].ok);
  EXPECT_EQ(records[0].n, BigInt(0xbcbf));
  EXPECT_TRUE(records[1].ok);
  EXPECT_EQ(records[1].n, BigInt(0xcee1));
}

// ---- IntakeService ---------------------------------------------------------

IntakeServiceConfig probe_config(bulk::BulkBackend backend,
                                 std::size_t pool_threads) {
  IntakeServiceConfig config;
  config.probe.backend = backend;
  config.probe.pool_threads = pool_threads;
  config.probe.group_size = 4;
  return config;
}

void expect_hits_equal(const std::vector<bulk::FactorHit>& streamed,
                       const std::vector<bulk::FactorHit>& oneshot) {
  ASSERT_EQ(streamed.size(), oneshot.size());
  for (std::size_t k = 0; k < streamed.size(); ++k) {
    EXPECT_EQ(streamed[k].i, oneshot[k].i) << "hit " << k;
    EXPECT_EQ(streamed[k].j, oneshot[k].j) << "hit " << k;
    EXPECT_EQ(streamed[k].factor, oneshot[k].factor) << "hit " << k;
    EXPECT_EQ(streamed[k].full_modulus, oneshot[k].full_modulus)
        << "hit " << k;
  }
}

TEST(IntakeServiceTest, StreamedCorpusMatchesOneShotSweepBitForBit) {
  // The acceptance bar: stream a corpus key by key into an empty service and
  // the accumulated hit set must be bit-identical to one all_pairs_gcd sweep
  // over the same corpus — every (i, j) pair is covered exactly once, when
  // key j arrives. Exercised on every backend and both thread placements.
  const WeakCorpus corpus = test_corpus(20, 3, 2121);
  const auto oneshot = bulk::all_pairs_gcd(corpus.moduli).hits;
  ASSERT_EQ(oneshot.size(), 3u);

  for (const auto backend : {bulk::BulkBackend::kLockstep,
                             bulk::BulkBackend::kStaged,
                             bulk::BulkBackend::kVector}) {
    for (const std::size_t threads : {std::size_t(1), std::size_t(2)}) {
      IntakeService service({}, probe_config(backend, threads));
      for (const auto& n : corpus.moduli) {
        ASSERT_EQ(service.submit(n), Admission::kAdmitted);
      }
      service.stop();  // drains the queue through the probe element
      EXPECT_EQ(service.corpus_size(), corpus.moduli.size());
      expect_hits_equal(service.hits(), oneshot);
      const IntakeStats stats = service.stats();
      EXPECT_EQ(stats.admitted, corpus.moduli.size());
      EXPECT_EQ(stats.probed, corpus.moduli.size());
      // Pair count telescopes to the full triangle: Σ_j j = n(n-1)/2.
      EXPECT_EQ(stats.pairs, 20u * 19u / 2u);
      EXPECT_EQ(stats.hits, oneshot.size());
    }
  }
}

TEST(IntakeServiceTest, SeedCorpusIsProbedAgainstButNotInternallyRescanned) {
  // Seed-internal pairs are the prior batch scan's job; arrivals must be
  // probed against every seed member AND earlier arrivals.
  Xoshiro256 rng(3131);
  const BigInt shared = rsa::random_prime(rng, 64);
  const std::vector<BigInt> seed = {
      shared * rsa::random_prime(rng, 64),
      shared * rsa::random_prime(rng, 64),  // seed-internal weak pair
      rsa::random_prime(rng, 64) * rsa::random_prime(rng, 64),
  };
  IntakeService service(seed, probe_config(bulk::BulkBackend::kLockstep, 1));
  const BigInt arrival = shared * rsa::random_prime(rng, 64);
  ASSERT_EQ(service.submit(arrival), Admission::kAdmitted);
  service.stop();
  const auto hits = service.hits();
  // The arrival (index 3) hits both weak seed members; the seed-internal
  // pair (0, 1) is NOT reported.
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].i, 0u);
  EXPECT_EQ(hits[0].j, 3u);
  EXPECT_EQ(hits[1].i, 1u);
  EXPECT_EQ(hits[1].j, 3u);
  EXPECT_EQ(hits[0].factor, shared);
}

TEST(IntakeServiceTest, DuplicatesAreRejectedAgainstSeedAndArrivals) {
  const WeakCorpus corpus = test_corpus(6, 0, 4141);
  std::vector<BigInt> seed(corpus.moduli.begin(), corpus.moduli.begin() + 3);
  IntakeService service(seed, probe_config(bulk::BulkBackend::kLockstep, 1));
  EXPECT_EQ(service.submit(seed[1]), Admission::kDuplicate);
  EXPECT_EQ(service.submit(corpus.moduli[4]), Admission::kAdmitted);
  EXPECT_EQ(service.submit(corpus.moduli[4]), Admission::kDuplicate);
  service.stop();
  const IntakeStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.duplicates, 2u);
  EXPECT_EQ(service.corpus_size(), 4u);
}

TEST(IntakeServiceTest, SubmitAfterStopReturnsClosed) {
  const WeakCorpus corpus = test_corpus(3, 0, 5151);
  IntakeService service({}, probe_config(bulk::BulkBackend::kLockstep, 1));
  service.stop();
  EXPECT_EQ(service.submit(corpus.moduli[0]), Admission::kClosed);
  service.stop();  // idempotent
}

TEST(IntakeServiceTest, OverloadShedsVisiblyAndNeverDeadlocks) {
  // Deterministic overload: a batch_hook blocks the probe worker while the
  // test floods the tiny admission queue. The flood must shed — counted,
  // non-blocking — and every key that WAS admitted must still be probed
  // after the worker resumes.
  const WeakCorpus corpus = test_corpus(12, 1, 6161);
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::atomic<bool> worker_blocked{false};

  IntakeServiceConfig config =
      probe_config(bulk::BulkBackend::kLockstep, 1);
  config.queue_capacity = 2;
  config.batch_max = 1;
  config.batch_hook = [&](std::size_t) {
    worker_blocked.store(true);
    std::unique_lock lock(gate_mutex);
    gate_cv.wait(lock, [&] { return gate_open; });
  };
  IntakeService service({}, std::move(config));

  // First key wakes the worker, which parks in the hook.
  ASSERT_EQ(service.submit(corpus.moduli[0]), Admission::kAdmitted);
  while (!worker_blocked.load()) std::this_thread::yield();

  // Fill the queue behind the parked worker, then overflow it.
  std::size_t admitted = 1, shed = 0;
  for (std::size_t k = 1; k < corpus.moduli.size(); ++k) {
    const Admission a = service.submit(corpus.moduli[k]);
    ASSERT_NE(a, Admission::kDuplicate);
    if (a == Admission::kAdmitted) {
      ++admitted;
    } else {
      ASSERT_EQ(a, Admission::kShed);
      ++shed;
    }
  }
  EXPECT_EQ(admitted, 3u);  // 1 in flight + queue capacity 2
  EXPECT_EQ(shed, corpus.moduli.size() - 3u);
  EXPECT_LE(service.queue_depth(), 2u) << "queue must stay bounded";

  // A shed key is NOT poisoned: retry succeeds once capacity frees up.
  {
    std::lock_guard lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();
  service.stop();  // drain + join, must not deadlock

  const IntakeStats stats = service.stats();
  EXPECT_EQ(stats.admitted, admitted);
  EXPECT_EQ(stats.shed, shed);
  EXPECT_EQ(stats.probed, admitted) << "every admitted key was probed";
  EXPECT_EQ(service.corpus_size(), admitted);
}

TEST(IntakeServiceTest, ShedKeyCanBeResubmittedSuccessfully) {
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::atomic<bool> worker_blocked{false};
  IntakeServiceConfig config =
      probe_config(bulk::BulkBackend::kLockstep, 1);
  config.queue_capacity = 1;
  config.batch_max = 1;
  config.batch_hook = [&](std::size_t) {
    worker_blocked.store(true);
    std::unique_lock lock(gate_mutex);
    gate_cv.wait(lock, [&] { return gate_open; });
  };
  const WeakCorpus corpus = test_corpus(4, 0, 7171);
  IntakeService service({}, std::move(config));
  ASSERT_EQ(service.submit(corpus.moduli[0]), Admission::kAdmitted);
  while (!worker_blocked.load()) std::this_thread::yield();
  ASSERT_EQ(service.submit(corpus.moduli[1]), Admission::kAdmitted);
  ASSERT_EQ(service.submit(corpus.moduli[2]), Admission::kShed);
  {
    std::lock_guard lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();
  // Wait until the queue drains, then the shed key must be admittable —
  // shedding must not have left it registered as "seen".
  while (service.queue_depth() > 0) std::this_thread::yield();
  Admission retry = Admission::kShed;
  for (int attempt = 0; attempt < 1000 && retry == Admission::kShed;
       ++attempt) {
    retry = service.submit(corpus.moduli[2]);
    if (retry == Admission::kShed) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_EQ(retry, Admission::kAdmitted);
  service.stop();
  EXPECT_EQ(service.corpus_size(), 3u);  // moduli[0], [1], and the retried [2]
}

TEST(IntakeServiceTest, MetricsMirrorStatsAndHitSink) {
  struct RecordingSink : bulk::ProgressSink {
    void on_hit(const bulk::FactorHit& hit) override {
      std::lock_guard lock(mutex);
      hits.push_back(hit);
    }
    std::mutex mutex;
    std::vector<bulk::FactorHit> hits;
  };
  const WeakCorpus corpus = test_corpus(10, 2, 8181);
  obs::MetricsRegistry registry;
  RecordingSink sink;
  IntakeServiceConfig config =
      probe_config(bulk::BulkBackend::kLockstep, 1);
  config.probe.metrics = &registry;
  config.sink = &sink;
  IntakeService service({}, std::move(config));
  for (const auto& n : corpus.moduli) service.submit(n);
  service.stop();

  const IntakeStats stats = service.stats();
  const auto counter = [&](std::string_view name) {
    return registry.counter(name)->value();
  };
  EXPECT_EQ(counter("intake_submitted_total"), stats.submitted);
  EXPECT_EQ(counter("intake_admitted_total"), stats.admitted);
  EXPECT_EQ(counter("intake_probed_total"), stats.probed);
  EXPECT_EQ(counter("intake_pairs_total"), stats.pairs);
  EXPECT_EQ(counter("intake_hits_total"), stats.hits);
  EXPECT_EQ(counter("intake_shed_total"), 0u);
  EXPECT_EQ(stats.hits, 2u);
  // The sink saw exactly the hits the service accumulated, as they landed.
  std::lock_guard lock(sink.mutex);
  ASSERT_EQ(sink.hits.size(), 2u);
  // probe_incremental also feeds the engine counters now (the satellite
  // fix), so streamed work is visible in the same simt_*/gcd_* series the
  // batch scan uses.
  EXPECT_GT(counter("gcd_iterations_total"), 0u);
}

// ---- Intake accounting + concurrency ---------------------------------------

TEST(IntakeServiceTest, GateOutcomesPartitionSubmissionsUnderStop) {
  // The satellite accounting fix: every submit() lands in exactly one outcome
  // counter, INCLUDING kClosed — so the four outcomes partition submissions
  // even when stop() races live submitters.
  const WeakCorpus corpus = test_corpus(24, 2, 1414);
  obs::MetricsRegistry registry;
  IntakeServiceConfig config = probe_config(bulk::BulkBackend::kLockstep, 1);
  config.probe.metrics = &registry;
  config.queue_capacity = 2;  // small enough that shed can happen too
  IntakeService service({}, std::move(config));

  std::atomic<std::size_t> next{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&] {
      for (;;) {
        const std::size_t k = next.fetch_add(1);
        if (k >= corpus.moduli.size()) return;
        service.submit(corpus.moduli[k]);
      }
    });
  }
  service.stop();  // races the submitters: some land before the gate closes
  for (auto& thread : submitters) thread.join();
  // Deterministic closed outcome on top of whatever the race produced (the
  // gate checks closed_ before dedup, so a known key still reports kClosed).
  EXPECT_EQ(service.submit(corpus.moduli[0]), Admission::kClosed);

  const IntakeStats stats = service.stats();
  EXPECT_GE(stats.closed, 1u);
  EXPECT_EQ(stats.submitted,
            stats.admitted + stats.duplicates + stats.shed + stats.closed)
      << "gate outcomes must partition submissions exactly";
  EXPECT_EQ(registry.counter("intake_closed_total")->value(), stats.closed);
  EXPECT_EQ(stats.probed, stats.admitted) << "stop() drains every admission";
}

TEST(IntakeServiceTest, BacklogGaugesReadZeroAfterDrain) {
  // The stale-gauge fix: after stop() drains the pipeline, BOTH backlog
  // gauges must read zero — the old worker left intake_batch_fill frozen at
  // the last batch's size, a phantom in-flight batch on the final scrape.
  const WeakCorpus corpus = test_corpus(9, 1, 2323);
  obs::MetricsRegistry registry;
  IntakeServiceConfig config = probe_config(bulk::BulkBackend::kLockstep, 1);
  config.probe.metrics = &registry;
  IntakeService service({}, std::move(config));
  for (const auto& n : corpus.moduli) {
    ASSERT_EQ(service.submit(n), Admission::kAdmitted);
  }
  service.stop();
  EXPECT_EQ(registry.gauge("intake_queue_depth")->value(), 0.0);
  EXPECT_EQ(registry.gauge("intake_batch_fill")->value(), 0.0);
  EXPECT_EQ(service.stats().probed, corpus.moduli.size());
}

/// Hits keyed by modulus VALUES instead of fold indices: concurrent
/// submitters make the fold order nondeterministic, so two runs agree on
/// which unordered key pairs share which factor, not on (i, j).
std::vector<std::string> value_hits(const std::vector<bulk::FactorHit>& hits,
                                    const std::vector<BigInt>& corpus) {
  std::vector<std::string> out;
  out.reserve(hits.size());
  for (const auto& hit : hits) {
    std::string a = corpus[hit.i].to_hex();
    std::string b = corpus[hit.j].to_hex();
    if (b < a) std::swap(a, b);
    out.push_back(a + "|" + b + "|" + hit.factor.to_hex() +
                  (hit.full_modulus ? "|full" : ""));
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(IntakeServiceTest, ConcurrentSubmittersCoverEveryPairExactlyOnce) {
  // ≥4 clients hammering submit() concurrently: the dedup/journal/queue gate
  // is the single synchronization point, so whatever interleaving happens,
  // the folded corpus is a permutation of the stream and the hit set equals
  // one all_pairs_gcd sweep at the value level. Every backend.
  const WeakCorpus corpus = test_corpus(24, 4, 2424);
  const auto oneshot = bulk::all_pairs_gcd(corpus.moduli).hits;
  ASSERT_EQ(oneshot.size(), 4u);
  const auto expected = value_hits(oneshot, corpus.moduli);

  for (const auto backend : {bulk::BulkBackend::kLockstep,
                             bulk::BulkBackend::kStaged,
                             bulk::BulkBackend::kVector}) {
    IntakeService service({}, probe_config(backend, 1));
    std::vector<std::thread> submitters;
    for (std::size_t t = 0; t < 4; ++t) {
      submitters.emplace_back([&, t] {
        for (std::size_t k = t; k < corpus.moduli.size(); k += 4) {
          Admission a = Admission::kShed;
          while (a == Admission::kShed) a = service.submit(corpus.moduli[k]);
          EXPECT_EQ(a, Admission::kAdmitted);
        }
      });
    }
    for (auto& thread : submitters) thread.join();
    service.stop();

    std::vector<BigInt> folded = service.corpus();
    EXPECT_EQ(value_hits(service.hits(), folded), expected);
    std::vector<BigInt> sorted_stream = corpus.moduli;
    auto by_hex = [](const BigInt& a, const BigInt& b) {
      return a.to_hex() < b.to_hex();
    };
    std::sort(folded.begin(), folded.end(), by_hex);
    std::sort(sorted_stream.begin(), sorted_stream.end(), by_hex);
    EXPECT_EQ(folded, sorted_stream) << "corpus must be a permutation";
  }
}

// ---- Arrival journal -------------------------------------------------------

/// Unique temp path per test + tag, removed on scope exit.
struct TempJournal {
  explicit TempJournal(const std::string& tag) {
    path = std::filesystem::temp_directory_path() /
           (std::string("bulkgcd_svc_journal_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            "_" + tag);
    std::error_code ignored;
    std::filesystem::remove(path, ignored);
  }
  ~TempJournal() {
    std::error_code ignored;
    std::filesystem::remove(path, ignored);
  }
  std::filesystem::path path;
};

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void spit(const std::filesystem::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), std::streamsize(bytes.size()));
}

TEST(ArrivalJournalTest, RestartReplaysCorpusAndHitsBitForBit) {
  // Stream half the corpus, stop, restart against the same journal: the new
  // service must wake up with the identical corpus and hit list (restored
  // from journaled probe records — no GCDs re-run), then streaming the rest
  // must land exactly where an uninterrupted stream would. Every backend.
  const WeakCorpus corpus = test_corpus(18, 3, 3434);
  const auto oneshot = bulk::all_pairs_gcd(corpus.moduli).hits;
  ASSERT_EQ(oneshot.size(), 3u);
  const std::size_t half = corpus.moduli.size() / 2;

  for (const auto backend : {bulk::BulkBackend::kLockstep,
                             bulk::BulkBackend::kStaged,
                             bulk::BulkBackend::kVector}) {
    TempJournal journal(backend == bulk::BulkBackend::kLockstep ? "l"
                        : backend == bulk::BulkBackend::kStaged ? "s"
                                                                : "v");
    std::vector<BigInt> corpus_before;
    std::vector<bulk::FactorHit> hits_before;
    {
      IntakeServiceConfig config = probe_config(backend, 1);
      config.journal_path = journal.path;
      IntakeService service({}, std::move(config));
      for (std::size_t k = 0; k < half; ++k) {
        ASSERT_EQ(service.submit(corpus.moduli[k]), Admission::kAdmitted);
      }
      service.stop();
      corpus_before = service.corpus();
      hits_before = service.hits();
    }
    {
      IntakeServiceConfig config = probe_config(backend, 1);
      config.journal_path = journal.path;
      IntakeService service({}, std::move(config));
      EXPECT_EQ(service.corpus(), corpus_before)
          << "replay must rebuild the folded corpus bit-for-bit";
      expect_hits_equal(service.hits(), hits_before);
      const IntakeStats boot = service.stats();
      EXPECT_EQ(boot.restored, half);
      EXPECT_EQ(boot.resumed, 0u);
      EXPECT_EQ(boot.probed, 0u) << "restored keys re-fold without re-probing";
      // A replayed key is still a known duplicate.
      EXPECT_EQ(service.submit(corpus.moduli[0]), Admission::kDuplicate);
      for (std::size_t k = half; k < corpus.moduli.size(); ++k) {
        ASSERT_EQ(service.submit(corpus.moduli[k]), Admission::kAdmitted);
      }
      service.stop();
      EXPECT_EQ(service.corpus(), corpus.moduli);
      expect_hits_equal(service.hits(), oneshot);
    }
  }
}

TEST(ArrivalJournalTest, UnprobedTailIsResumedAndReprobed) {
  // Crash window: keys admitted (arrival records on disk) but not yet
  // probed. Simulated by snapshotting the journal file while the probe
  // worker is parked in the batch hook — the snapshot holds 6 arrivals and
  // zero probed records, exactly what a SIGKILL at that moment leaves.
  const WeakCorpus corpus = test_corpus(6, 1, 4545);
  const auto oneshot = bulk::all_pairs_gcd(corpus.moduli).hits;
  TempJournal live("live");
  TempJournal snapshot("snap");

  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::atomic<bool> worker_blocked{false};
  {
    IntakeServiceConfig config = probe_config(bulk::BulkBackend::kLockstep, 1);
    config.journal_path = live.path;
    config.batch_max = 1;
    config.batch_hook = [&](std::size_t) {
      worker_blocked.store(true);
      std::unique_lock lock(gate_mutex);
      gate_cv.wait(lock, [&] { return gate_open; });
    };
    IntakeService service({}, std::move(config));
    for (const auto& n : corpus.moduli) {
      ASSERT_EQ(service.submit(n), Admission::kAdmitted);
    }
    while (!worker_blocked.load()) std::this_thread::yield();
    // Every arrival is fsynced at admission (journal_fsync_every = 1), so
    // the crash image is complete the moment submit() returned.
    spit(snapshot.path, slurp(live.path));
    {
      std::lock_guard lock(gate_mutex);
      gate_open = true;
    }
    gate_cv.notify_all();
    service.stop();
  }

  IntakeServiceConfig config = probe_config(bulk::BulkBackend::kLockstep, 1);
  config.journal_path = snapshot.path;
  config.batch_hook = {};
  IntakeService service({}, std::move(config));
  service.stop();  // waits for the resumed tail to be probed and folded
  const IntakeStats stats = service.stats();
  EXPECT_EQ(stats.restored, 0u);
  EXPECT_EQ(stats.resumed, corpus.moduli.size());
  EXPECT_EQ(stats.probed, corpus.moduli.size())
      << "every resumed key is re-probed";
  EXPECT_EQ(service.corpus(), corpus.moduli);
  expect_hits_equal(service.hits(), oneshot);
}

TEST(ArrivalJournalTest, TornTailIsDroppedAndStreamRecovers) {
  // Crash mid-write: the journal ends in a partial record (or trailing
  // garbage). Restart must not throw, must keep every complete record, and
  // re-streaming the full corpus must converge on the one-shot hit set —
  // replayed keys dedup, lost-tail keys re-admit.
  const WeakCorpus corpus = test_corpus(10, 2, 5656);
  const auto oneshot = bulk::all_pairs_gcd(corpus.moduli).hits;
  TempJournal pristine("pristine");
  {
    IntakeServiceConfig config = probe_config(bulk::BulkBackend::kLockstep, 1);
    config.journal_path = pristine.path;
    IntakeService service({}, std::move(config));
    for (const auto& n : corpus.moduli) {
      ASSERT_EQ(service.submit(n), Admission::kAdmitted);
    }
    service.stop();
  }
  const std::string bytes = slurp(pristine.path);
  constexpr std::size_t kHeaderSize = 8 + 2 * 8;
  ASSERT_GT(bytes.size(), kHeaderSize + 8);

  const std::string torn_cases[] = {
      bytes.substr(0, kHeaderSize),                       // only the header
      bytes.substr(0, kHeaderSize + 3),                   // torn first record
      bytes.substr(0, (kHeaderSize + bytes.size()) / 2),  // torn mid-journal
      bytes.substr(0, bytes.size() - 5),                  // torn last record
      bytes + "GARBAGE TRAILING BYTES",                   // corrupt tail
      bytes.substr(0, 4),                                 // torn header
  };
  for (std::size_t c = 0; c < std::size(torn_cases); ++c) {
    TempJournal torn("case" + std::to_string(c));
    spit(torn.path, torn_cases[c]);
    IntakeServiceConfig config = probe_config(bulk::BulkBackend::kLockstep, 1);
    config.journal_path = torn.path;
    IntakeService service({}, std::move(config));
    for (const auto& n : corpus.moduli) {
      const Admission a = service.submit(n);
      EXPECT_TRUE(a == Admission::kAdmitted || a == Admission::kDuplicate);
    }
    service.stop();
    EXPECT_EQ(service.corpus(), corpus.moduli) << "torn case " << c;
    expect_hits_equal(service.hits(), oneshot);
  }
}

TEST(ArrivalJournalTest, JournalForDifferentSeedIsRefused) {
  // Arrival indices are relative to the seed corpus; replaying a journal
  // against a different seed would silently mis-index every hit. The header
  // binds digest + count, and a mismatch is a loud constructor failure.
  const WeakCorpus corpus = test_corpus(6, 0, 6767);
  std::vector<BigInt> seed_a(corpus.moduli.begin(), corpus.moduli.begin() + 2);
  std::vector<BigInt> seed_b(corpus.moduli.begin() + 2,
                             corpus.moduli.begin() + 4);
  TempJournal journal("seed");
  {
    IntakeServiceConfig config = probe_config(bulk::BulkBackend::kLockstep, 1);
    config.journal_path = journal.path;
    IntakeService service(seed_a, std::move(config));
    ASSERT_EQ(service.submit(corpus.moduli[5]), Admission::kAdmitted);
    service.stop();
  }
  IntakeServiceConfig config = probe_config(bulk::BulkBackend::kLockstep, 1);
  config.journal_path = journal.path;
  EXPECT_THROW(IntakeService(seed_b, std::move(config)), std::runtime_error);
}

TEST(IntakeServiceTest, MixedSizeArrivalsRestageAndMatchOneShot) {
  // Arrivals that outgrow the staged panels force an amortized re-stage
  // (bulk/staged_corpus.hpp); the probe must keep matching the one-shot
  // sweep across the growth boundary, on every backend.
  Xoshiro256 rng(7878);
  const BigInt shared = rsa::random_prime(rng, 33);
  const std::vector<BigInt> stream = {
      shared * rsa::random_prime(rng, 33),                        // 66-bit
      rsa::random_prime(rng, 70) * rsa::random_prime(rng, 70),    // 140-bit
      rsa::random_prime(rng, 150) * rsa::random_prime(rng, 150),  // 300-bit
      shared * rsa::random_prime(rng, 260),  // 293-bit, shares with key 0
  };
  bulk::AllPairsConfig sweep;
  sweep.group_size = 2;
  const auto oneshot = bulk::all_pairs_gcd(stream, sweep).hits;
  ASSERT_EQ(oneshot.size(), 1u);
  EXPECT_EQ(oneshot[0].factor, shared);

  for (const auto backend : {bulk::BulkBackend::kLockstep,
                             bulk::BulkBackend::kStaged,
                             bulk::BulkBackend::kVector}) {
    IntakeServiceConfig config = probe_config(backend, 1);
    config.probe.group_size = 2;
    IntakeService service({}, std::move(config));
    for (const auto& n : stream) {
      ASSERT_EQ(service.submit(n), Admission::kAdmitted);
    }
    service.stop();
    expect_hits_equal(service.hits(), oneshot);
  }
}

// ---- MetricsHttpServer -----------------------------------------------------

std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return {};
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)!::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[2048];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, std::size_t(n));
  }
  ::close(fd);
  return response;
}

TEST(MetricsHttpServerTest, ServesPrometheusTextHealthzAnd404) {
  obs::MetricsRegistry registry;
  registry.counter("svc_test_requests_total")->add(7);
  obs::MetricsHttpServer server(registry, 0);  // ephemeral port
  ASSERT_GT(server.port(), 0);

  const std::string metrics = http_get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("svc_test_requests_total 7"), std::string::npos)
      << metrics;

  const std::string healthz = http_get(server.port(), "/healthz");
  EXPECT_NE(healthz.find("200 OK"), std::string::npos);
  EXPECT_NE(healthz.find("ok"), std::string::npos);

  const std::string missing = http_get(server.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);

  EXPECT_EQ(server.requests(), 3u);
  server.stop();
  server.stop();  // idempotent
}

TEST(MetricsHttpServerTest, StatusAndTraceEndpoints404UntilConfigured) {
  obs::MetricsRegistry registry;
  obs::MetricsHttpServer server(registry, 0);
  EXPECT_NE(http_get(server.port(), "/status").find("404"),
            std::string::npos);
  EXPECT_NE(http_get(server.port(), "/trace").find("404"), std::string::npos);
}

TEST(MetricsHttpServerTest, StatusServesBuildInfoJson) {
  obs::MetricsRegistry registry;
  obs::MetricsHttpServer server(registry, 0);
  const bulk::BuildInfo info = bulk::query_build_info();
  server.set_status_provider(
      [info] { return bulk::build_info_json(info, /*uptime_seconds=*/1.5); });

  const std::string status = http_get(server.port(), "/status");
  EXPECT_NE(status.find("200 OK"), std::string::npos) << status;
  EXPECT_NE(status.find("application/json"), std::string::npos) << status;
  EXPECT_NE(status.find("\"service\":\"bulkgcd\""), std::string::npos)
      << status;
  EXPECT_NE(status.find("\"uptime_seconds\":1.500"), std::string::npos)
      << status;
  EXPECT_NE(status.find("\"limb_bits\":" +
                        std::to_string(sizeof(bulk::ScanLimb) * 8)),
            std::string::npos)
      << status;
  EXPECT_NE(status.find("\"compiled_backends\":"), std::string::npos)
      << status;
  EXPECT_NE(status.find("\"active_backend\":"), std::string::npos) << status;
  // The one-line banner renders the same fields for CLI startup.
  const std::string line = bulk::build_info_line(info);
  EXPECT_NE(line.find("bulkgcd "), std::string::npos) << line;
  EXPECT_NE(line.find("active "), std::string::npos) << line;
}

TEST(MetricsHttpServerTest, TraceEndpointServesLiveChromeJson) {
  obs::MetricsRegistry registry;
  obs::TraceRecorder recorder(256, &registry);
  recorder.set_thread_name("svc-test");
  recorder.instant(recorder.intern("ping"), 0, 11);

  obs::MetricsHttpServer server(registry, 0);
  server.set_trace(&recorder);
  const std::string trace = http_get(server.port(), "/trace");
  EXPECT_NE(trace.find("200 OK"), std::string::npos) << trace;
  EXPECT_NE(trace.find("application/json"), std::string::npos) << trace;
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos) << trace;
  EXPECT_NE(trace.find("\"ping\""), std::string::npos) << trace;
  EXPECT_NE(trace.find("\"svc-test\""), std::string::npos) << trace;

  // Live: a scrape between recordings sees the newer event too.
  recorder.instant(recorder.intern("pong"), 0, 22);
  EXPECT_NE(http_get(server.port(), "/trace").find("\"pong\""),
            std::string::npos);
}

TEST(MetricsHttpServerTest, ScrapeSeesLiveIntakeCounters) {
  // The integration the daemon relies on: service counters flow through the
  // shared registry to the scrape endpoint while the service is running.
  const WeakCorpus corpus = test_corpus(6, 1, 9191);
  obs::MetricsRegistry registry;
  IntakeServiceConfig config =
      probe_config(bulk::BulkBackend::kLockstep, 1);
  config.probe.metrics = &registry;
  IntakeService service({}, std::move(config));
  obs::MetricsHttpServer server(registry, 0);
  for (const auto& n : corpus.moduli) service.submit(n);
  service.stop();
  const std::string metrics = http_get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("intake_admitted_total 6"), std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("intake_hits_total 1"), std::string::npos) << metrics;
}

// ---- svc::send_all (net_util.hpp) -----------------------------------------
// The daemon mirrors hit lines and per-record statuses through send_all; the
// regression of record is a client that disconnects mid-batch (send_all must
// report failure so the daemon stops writing to the dead fd) and spurious
// short/interrupted writes being treated as fatal.

TEST(SendAllTest, DeliversPayloadsLargerThanTheSocketBuffer) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // Shrink the send buffer so the payload needs many short writes.
  const int small = 4096;
  ::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
  std::string payload;
  for (int i = 0; payload.size() < 1 << 20; ++i) {
    payload += "hit " + std::to_string(i) + " deadbeef\n";
  }
  bool sent = false;
  std::thread writer([&] { sent = send_all(fds[0], payload); });
  std::string received;
  char buf[8192];
  while (received.size() < payload.size()) {
    const ssize_t n = ::read(fds[1], buf, sizeof(buf));
    ASSERT_GT(n, 0);
    received.append(buf, std::size_t(n));
  }
  writer.join();
  EXPECT_TRUE(sent);
  EXPECT_EQ(received, payload);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(SendAllTest, ReportsAClientThatDisconnectedMidBatch) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const int small = 4096;
  ::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
  EXPECT_TRUE(send_all(fds[0], "hit 0 1 cafe\n"));  // client still there
  ::close(fds[1]);                                  // client vanishes
  // A payload larger than the buffers cannot be absorbed by the kernel, so
  // the dead peer MUST surface as failure (EPIPE via MSG_NOSIGNAL — the
  // process must not die on SIGPIPE either) rather than a silent no-op.
  const std::string big(1 << 20, 'x');
  EXPECT_FALSE(send_all(fds[0], big));
  ::close(fds[0]);
}

TEST(SendAllTest, SurvivesSignalInterruptionsMidTransfer) {
  // A non-SA_RESTART handler makes a blocked send() fail with EINTR; the
  // old daemon helper treated that as a dead peer and dropped the rest of
  // the payload. Pepper the writer with signals while it pushes a payload
  // much larger than the socket buffer and assert nothing is lost.
  struct sigaction sa{};
  sa.sa_handler = [](int) {};
  sa.sa_flags = 0;  // deliberately NOT SA_RESTART
  struct sigaction old{};
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const int small = 4096;
  ::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
  const std::string payload(1 << 20, 'y');
  bool sent = false;
  std::thread writer([&] { sent = send_all(fds[0], payload); });
  const pthread_t writer_handle = writer.native_handle();
  // Let the writer fill the socket buffer and block, then interrupt it
  // repeatedly while slowly draining from the other end.
  std::string received;
  char buf[8192];
  while (received.size() < payload.size()) {
    ::pthread_kill(writer_handle, SIGUSR1);
    const ssize_t n = ::read(fds[1], buf, sizeof(buf));
    ASSERT_GT(n, 0);
    received.append(buf, std::size_t(n));
  }
  writer.join();
  ::sigaction(SIGUSR1, &old, nullptr);
  EXPECT_TRUE(sent);
  EXPECT_EQ(received, payload);
  ::close(fds[0]);
  ::close(fds[1]);
}

}  // namespace
}  // namespace bulkgcd::svc
