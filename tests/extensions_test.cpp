// Tests for the extension features: CRT decryption, the inline-storage
// (CUDA-local-style) engine, streaming statistics, and the SIMT engine at
// non-default limb widths.
#include <gtest/gtest.h>

#include "bulk/simt.hpp"
#include "core/stats.hpp"
#include "gcd/algorithms.hpp"
#include "gmp_oracle.hpp"
#include "rsa/prime.hpp"
#include "rsa/rsa.hpp"

namespace bulkgcd {
namespace {

using mp::BigInt;
using test::gmp_gcd;
using test::random_odd;
using test::random_value;

TEST(CrtDecryptTest, MatchesPlainDecryption) {
  Xoshiro256 rng(161);
  const rsa::KeyPair key = rsa::generate_keypair(rng, 256);
  for (int trial = 0; trial < 10; ++trial) {
    const BigInt msg = random_value<std::uint32_t>(rng, 200) % key.n;
    const BigInt cipher = rsa::encrypt(msg, key.n, key.e);
    EXPECT_EQ(rsa::decrypt_crt(cipher, key),
              rsa::decrypt(cipher, key.n, key.d));
    EXPECT_EQ(rsa::decrypt_crt(cipher, key), msg);
  }
}

TEST(CrtDecryptTest, WorksOnRecoveredKeys) {
  // The attack scenario: break a key via GCD, then use the fast CRT path.
  Xoshiro256 rng(162);
  const BigInt p = rsa::random_prime(rng, 128);
  const rsa::KeyPair victim =
      rsa::keypair_from_primes(p, rsa::random_prime(rng, 128));
  const BigInt other_n = p * rsa::random_prime(rng, 128);
  const auto probe = gcd::probe_moduli_pair(victim.n, other_n);
  ASSERT_TRUE(probe.shares_factor);
  const rsa::KeyPair recovered =
      rsa::recover_private_key(victim.n, victim.e, probe.factor);
  const BigInt cipher = rsa::encrypt(BigInt(123456789), victim.n, victim.e);
  EXPECT_EQ(rsa::decrypt_crt(cipher, recovered), BigInt(123456789));
}

TEST(CrtDecryptTest, RejectsKeysWithoutFactors) {
  rsa::KeyPair key;
  key.n = BigInt(35);
  key.d = BigInt(5);
  EXPECT_THROW(rsa::decrypt_crt(BigInt(2), key), std::invalid_argument);
  key.p = BigInt(5);
  key.q = BigInt(11);  // 5*11 != 35
  EXPECT_THROW(rsa::decrypt_crt(BigInt(2), key), std::invalid_argument);
}

TEST(FixedEngineTest, MatchesHeapEngineExactly) {
  Xoshiro256 rng(163);
  gcd::GcdEngine<std::uint32_t> heap(16);
  gcd::FixedGcdEngine<std::uint32_t, 16> fixed(16);
  for (int trial = 0; trial < 40; ++trial) {
    const BigInt x = random_odd<std::uint32_t>(rng, 1 + rng.below(512));
    const BigInt y = random_odd<std::uint32_t>(rng, 1 + rng.below(512));
    for (const gcd::Variant variant : gcd::kAllVariants) {
      gcd::GcdStats hs, fs;
      const auto hr = heap.run(variant, x.limbs(), y.limbs(), 0, &hs);
      const auto fr = fixed.run(variant, x.limbs(), y.limbs(), 0, &fs);
      ASSERT_EQ(BigInt::from_limbs(hr.gcd), BigInt::from_limbs(fr.gcd));
      ASSERT_EQ(hs.iterations, fs.iterations);
    }
  }
}

TEST(FixedEngineTest, CapacityIsCompileTimeBounded) {
  EXPECT_THROW((gcd::FixedGcdEngine<std::uint32_t, 4>(32)), std::length_error);
  gcd::FixedGcdEngine<std::uint32_t, 4> small(4);
  Xoshiro256 rng(164);
  const BigInt big = random_odd<std::uint32_t>(rng, 400);
  EXPECT_THROW(small.run(gcd::Variant::kApproximate, big.limbs(),
                         BigInt(3).limbs()),
               std::length_error);
}

TEST(RunningStatsTest, MatchesClosedForm) {
  RunningStats stats;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_NEAR(stats.sem(), stats.stddev() / std::sqrt(8.0), 1e-12);
}

TEST(RunningStatsTest, EmptyAndSingle) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.variance(), 0.0);
  stats.add(3.5);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.5);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 3.5);
  EXPECT_DOUBLE_EQ(stats.max(), 3.5);
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0, 10, 5);
  h.add(0.5);   // bin 0
  h.add(3.0);   // bin 1
  h.add(9.99);  // bin 4
  h.add(-5.0);  // clamps to bin 0
  h.add(25.0);  // clamps to bin 4
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 0u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
  EXPECT_FALSE(h.render().empty());
}

template <typename Limb>
class SimtWordsizeTest : public ::testing::Test {};
using SimtLimbs = ::testing::Types<std::uint16_t, std::uint64_t>;
TYPED_TEST_SUITE(SimtWordsizeTest, SimtLimbs);

TYPED_TEST(SimtWordsizeTest, BulkEngineWorksAtNonDefaultWidths) {
  using Limb = TypeParam;
  Xoshiro256 rng(165);
  const std::size_t lanes = 9;
  constexpr std::size_t kBits = 256;
  constexpr std::size_t cap = kBits / mp::limb_bits<Limb> + 1;

  std::vector<std::pair<mp::BigIntT<Limb>, mp::BigIntT<Limb>>> pairs;
  for (std::size_t i = 0; i < lanes; ++i) {
    pairs.emplace_back(random_odd<Limb>(rng, kBits), random_odd<Limb>(rng, kBits));
  }
  bulk::SimtBatch<Limb> batch(lanes, cap, 4);
  for (std::size_t i = 0; i < lanes; ++i) {
    batch.load(i, pairs[i].first.limbs(), pairs[i].second.limbs());
  }
  batch.run(gcd::Variant::kApproximate, 0);
  for (std::size_t i = 0; i < lanes; ++i) {
    EXPECT_EQ(batch.gcd_of(i), gmp_gcd(pairs[i].first, pairs[i].second))
        << "lane " << i;
  }
}

}  // namespace
}  // namespace bulkgcd
