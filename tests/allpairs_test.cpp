// All-pairs scheduler tests: the Section-VI block decomposition covers every
// pair exactly once and recovers exactly the planted weak pairs, on both
// engines and several group sizes.
#include "bulk/allpairs.hpp"

#include <gtest/gtest.h>

#include <string>
#include <string_view>

#include "core/rng.hpp"
#include "obs/metrics.hpp"
#include "rsa/corpus.hpp"
#include "rsa/prime.hpp"

namespace bulkgcd::bulk {
namespace {

using gcd::Variant;
using mp::BigInt;
using rsa::CorpusSpec;
using rsa::WeakCorpus;

WeakCorpus test_corpus(std::size_t count, std::size_t weak, std::uint64_t seed) {
  CorpusSpec spec;
  spec.count = count;
  spec.modulus_bits = 128;
  spec.weak_pairs = weak;
  spec.seed = seed;
  return rsa::generate_corpus(spec);
}

void expect_hits_match_ground_truth(const AllPairsResult& result,
                                    const WeakCorpus& corpus) {
  ASSERT_EQ(result.hits.size(), corpus.weak.size());
  for (std::size_t k = 0; k < result.hits.size(); ++k) {
    EXPECT_EQ(result.hits[k].i, corpus.weak[k].first);
    EXPECT_EQ(result.hits[k].j, corpus.weak[k].second);
    EXPECT_EQ(result.hits[k].factor, corpus.weak[k].shared_prime);
  }
}

struct AllPairsCase {
  EngineKind engine;
  Variant variant;
  std::size_t group_size;
  bool early;
};

class AllPairsTest : public ::testing::TestWithParam<AllPairsCase> {};

TEST_P(AllPairsTest, FindsExactlyThePlantedWeakPairs) {
  const auto [engine, variant, group_size, early] = GetParam();
  const WeakCorpus corpus = test_corpus(26, 4, 1234);
  AllPairsConfig config;
  config.engine = engine;
  config.variant = variant;
  config.group_size = group_size;
  config.early_terminate = early;
  config.warp_width = 8;
  const AllPairsResult result = all_pairs_gcd(corpus.moduli, config);
  EXPECT_EQ(result.pairs_tested, 26u * 25u / 2u);
  expect_hits_match_ground_truth(result, corpus);
}

INSTANTIATE_TEST_SUITE_P(
    EnginesVariantsGroups, AllPairsTest,
    ::testing::Values(
        AllPairsCase{EngineKind::kSimt, Variant::kApproximate, 8, true},
        AllPairsCase{EngineKind::kSimt, Variant::kApproximate, 5, true},
        AllPairsCase{EngineKind::kSimt, Variant::kApproximate, 32, false},
        AllPairsCase{EngineKind::kSimt, Variant::kFastBinary, 8, true},
        AllPairsCase{EngineKind::kSimt, Variant::kBinary, 8, true},
        AllPairsCase{EngineKind::kScalar, Variant::kApproximate, 8, true},
        AllPairsCase{EngineKind::kScalar, Variant::kOriginal, 8, true},
        AllPairsCase{EngineKind::kScalar, Variant::kFast, 8, false}));

TEST(AllPairsTest, GroupSizeLargerThanCorpusWorks) {
  const WeakCorpus corpus = test_corpus(6, 1, 5);
  AllPairsConfig config;
  config.group_size = 1000;
  const AllPairsResult result = all_pairs_gcd(corpus.moduli, config);
  EXPECT_EQ(result.pairs_tested, 15u);
  expect_hits_match_ground_truth(result, corpus);
}

TEST(AllPairsTest, GroupSizeOneDegeneratesToPairLoop) {
  const WeakCorpus corpus = test_corpus(7, 1, 6);
  AllPairsConfig config;
  config.group_size = 1;
  const AllPairsResult result = all_pairs_gcd(corpus.moduli, config);
  EXPECT_EQ(result.pairs_tested, 21u);
  expect_hits_match_ground_truth(result, corpus);
}

TEST(AllPairsTest, EmptyAndSingletonInputs) {
  const AllPairsResult empty = all_pairs_gcd({});
  EXPECT_EQ(empty.pairs_tested, 0u);
  EXPECT_TRUE(empty.hits.empty());
  const std::vector<BigInt> one = {BigInt(15)};
  const AllPairsResult single = all_pairs_gcd(one);
  EXPECT_EQ(single.pairs_tested, 0u);
}

TEST(AllPairsTest, DuplicateModuliAreReportedAsHits) {
  const WeakCorpus corpus = test_corpus(5, 0, 7);
  std::vector<BigInt> moduli = corpus.moduli;
  moduli.push_back(moduli[2]);  // exact duplicate
  const AllPairsResult result = all_pairs_gcd(moduli);
  ASSERT_EQ(result.hits.size(), 1u);
  EXPECT_EQ(result.hits[0].i, 2u);
  EXPECT_EQ(result.hits[0].j, 5u);
  EXPECT_EQ(result.hits[0].factor, moduli[2]);  // gcd(n, n) = n
  // Flagged so consumers don't try to split n by itself (n / gcd == 1).
  EXPECT_TRUE(result.hits[0].full_modulus);
}

TEST(AllPairsTest, ProperSharedPrimeHitsAreNotFlaggedFullModulus) {
  const WeakCorpus corpus = test_corpus(10, 2, 11);
  const AllPairsResult result = all_pairs_gcd(corpus.moduli);
  ASSERT_EQ(result.hits.size(), 2u);
  for (const auto& hit : result.hits) EXPECT_FALSE(hit.full_modulus);
}

TEST(AllPairsTest, MixedSizeCorpusRecoversSmallPairSharedFactor) {
  // Regression: the early-terminate threshold is per PAIR (Section V defines
  // the RSA bit size s per key pair). The seed code derived it from the
  // corpus-wide max bit length, so for two 256-bit moduli sharing a prime in
  // a corpus that also holds 512-bit bystanders, early_bits = 256 >= the
  // operands' size and the probe declared them coprime without testing —
  // silently dropping real shared factors on exactly the heterogeneous
  // corpora a real-world harvest produces.
  Xoshiro256 rng(4242);
  const BigInt shared = rsa::random_prime(rng, 128);
  const BigInt p1 = rsa::random_prime(rng, 128);
  const BigInt p2 = rsa::random_prime(rng, 128);
  std::vector<BigInt> moduli = {
      shared * p1,  // 256-bit weak modulus
      shared * p2,  // 256-bit weak modulus
      rsa::random_prime(rng, 256) * rsa::random_prime(rng, 256),  // bystander
      rsa::random_prime(rng, 256) * rsa::random_prime(rng, 256),  // bystander
      rsa::random_prime(rng, 256) * rsa::random_prime(rng, 256),  // bystander
  };
  for (const auto engine : {EngineKind::kSimt, EngineKind::kScalar}) {
    AllPairsConfig config;
    config.engine = engine;
    config.early_terminate = true;
    config.group_size = 4;
    config.warp_width = 8;
    const AllPairsResult result = all_pairs_gcd(moduli, config);
    ASSERT_EQ(result.hits.size(), 1u) << "engine " << int(engine);
    EXPECT_EQ(result.hits[0].i, 0u);
    EXPECT_EQ(result.hits[0].j, 1u);
    EXPECT_EQ(result.hits[0].factor, shared);
  }
}

TEST(IncrementalProbeTest, MixedSizeCorpusFindsSmallCandidateHit) {
  // Same per-pair threshold regression for the incremental path: a small
  // candidate probed against a corpus holding larger members must still hit
  // its small partner.
  Xoshiro256 rng(5252);
  const BigInt shared = rsa::random_prime(rng, 128);
  const std::vector<BigInt> corpus = {
      shared * rsa::random_prime(rng, 128),                       // small weak
      rsa::random_prime(rng, 256) * rsa::random_prime(rng, 256),  // big clean
      rsa::random_prime(rng, 256) * rsa::random_prime(rng, 256),  // big clean
  };
  const BigInt candidate = shared * rsa::random_prime(rng, 128);
  for (const auto engine : {EngineKind::kSimt, EngineKind::kScalar}) {
    AllPairsConfig config;
    config.engine = engine;
    config.group_size = 2;
    const auto hits = probe_incremental(candidate, corpus, config);
    ASSERT_EQ(hits.size(), 1u) << "engine " << int(engine);
    EXPECT_EQ(hits[0].corpus_index, 0u);
    EXPECT_EQ(hits[0].factor, shared);
  }
}

TEST(AllPairsTest, SingleThreadedPoolMatchesParallel) {
  const WeakCorpus corpus = test_corpus(20, 3, 8);
  AllPairsConfig config;
  config.group_size = 4;
  AllPairsConfig serial = config;
  serial.pool_threads = 1;
  const AllPairsResult a = all_pairs_gcd(corpus.moduli, config);
  const AllPairsResult b = all_pairs_gcd(corpus.moduli, serial);
  ASSERT_EQ(a.hits.size(), b.hits.size());
  for (std::size_t k = 0; k < a.hits.size(); ++k) {
    EXPECT_EQ(a.hits[k].factor, b.hits[k].factor);
  }
  EXPECT_EQ(a.pairs_tested, b.pairs_tested);
}

TEST(AllPairsTest, SimtStatsArePopulated) {
  const WeakCorpus corpus = test_corpus(12, 1, 9);
  AllPairsConfig config;
  config.group_size = 4;
  const AllPairsResult result = all_pairs_gcd(corpus.moduli, config);
  EXPECT_GT(result.simt.lane_iterations, 0u);
  EXPECT_GT(result.blocks_run, 0u);
  EXPECT_GT(result.input_bytes, 0u);
  EXPECT_GT(result.seconds, 0.0);
  EXPECT_GT(result.micros_per_gcd(), 0.0);
}

TEST(IncrementalProbeTest, FindsSharedFactorWithCorpusMember) {
  const WeakCorpus corpus = test_corpus(12, 0, 10);
  // Candidate shares a prime with corpus modulus #5: synthesize it by
  // re-multiplying one of its factors. Recover the factor by batch-gcd-free
  // construction: use the corpus member itself as the candidate first.
  for (const auto engine : {EngineKind::kSimt, EngineKind::kScalar}) {
    AllPairsConfig config;
    config.engine = engine;
    config.group_size = 4;
    const auto hits = probe_incremental(corpus.moduli[5], corpus.moduli, config);
    ASSERT_EQ(hits.size(), 1u) << "engine " << int(engine);
    EXPECT_EQ(hits[0].corpus_index, 5u);
    EXPECT_EQ(hits[0].factor, corpus.moduli[5]);  // gcd(n, n) = n
  }
}

TEST(IncrementalProbeTest, CleanCandidateYieldsNoHits) {
  const WeakCorpus corpus = test_corpus(10, 0, 11);
  const WeakCorpus other = test_corpus(2, 0, 12);
  const auto hits = probe_incremental(other.moduli[0], corpus.moduli);
  EXPECT_TRUE(hits.empty());
}

TEST(IncrementalProbeTest, MultipleHitsSortedByIndex) {
  // Candidate sharing a prime with two corpus members: plant a weak pair and
  // probe with one of its members (it hits the partner AND itself).
  const WeakCorpus corpus = test_corpus(14, 1, 13);
  const auto& weak = corpus.weak[0];
  const auto hits = probe_incremental(corpus.moduli[weak.first], corpus.moduli);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].corpus_index, weak.first);
  EXPECT_EQ(hits[0].factor, corpus.moduli[weak.first]);  // itself
  EXPECT_EQ(hits[1].corpus_index, weak.second);
  EXPECT_EQ(hits[1].factor, weak.shared_prime);
}

TEST(IncrementalProbeTest, EmptyCorpusAndZeroCandidate) {
  EXPECT_TRUE(probe_incremental(BigInt(15), {}).empty());
  const WeakCorpus corpus = test_corpus(4, 0, 14);
  EXPECT_TRUE(probe_incremental(BigInt(), corpus.moduli).empty());
}

TEST(IncrementalProbeTest, AgreesWithFullSweepAfterAppend) {
  // Appending the candidate and re-running the full sweep must find exactly
  // the incremental hits (restricted to pairs involving the candidate).
  WeakCorpus corpus = test_corpus(10, 1, 15);
  const auto& weak = corpus.weak[0];
  // Candidate: the planted shared prime times a fresh 64-bit partner, so it
  // collides with both members of the weak pair.
  Xoshiro256 rng(77);
  const mp::BigInt partner = rsa::random_prime(rng, 64);
  const mp::BigInt cand = weak.shared_prime * partner;

  const auto inc = probe_incremental(cand, corpus.moduli);
  ASSERT_EQ(inc.size(), 2u);  // both members of the planted weak pair
  EXPECT_EQ(inc[0].corpus_index, weak.first);
  EXPECT_EQ(inc[1].corpus_index, weak.second);
  EXPECT_EQ(inc[0].factor, weak.shared_prime);

  std::vector<mp::BigInt> extended = corpus.moduli;
  extended.push_back(cand);
  const auto sweep = all_pairs_gcd(extended);
  std::size_t candidate_hits = 0;
  for (const auto& hit : sweep.hits) {
    if (hit.j == extended.size() - 1) ++candidate_hits;
  }
  EXPECT_EQ(candidate_hits, inc.size());
}

TEST(IncrementalProbeTest, DifferentialAcrossBackendsAndThreadCounts) {
  // The probe path must honor the all_pairs_gcd thread-placement contract
  // (regression: it used to run on the global pool regardless of
  // pool_threads) and return identical hits AND bit-identical engine
  // statistics on every backend × thread-count combination. SimtStats are
  // per-block sums, so partitioning blocks across workers must not change
  // any total. Mixed-size corpus: the per-pair early-terminate threshold
  // must hold on heterogeneous harvests.
  Xoshiro256 rng(6161);
  const BigInt shared = rsa::random_prime(rng, 128);
  std::vector<BigInt> corpus;
  corpus.push_back(shared * rsa::random_prime(rng, 128));  // weak, 256-bit
  for (int k = 0; k < 2; ++k) {  // small bystanders (192-bit)
    corpus.push_back(rsa::random_prime(rng, 96) * rsa::random_prime(rng, 96));
  }
  for (int k = 0; k < 2; ++k) {  // large bystanders (256-bit)
    corpus.push_back(rsa::random_prime(rng, 128) * rsa::random_prime(rng, 128));
  }
  corpus.push_back(shared * rsa::random_prime(rng, 128));  // weak, 256-bit
  for (int k = 0; k < 3; ++k) {
    corpus.push_back(rsa::random_prime(rng, 96) * rsa::random_prime(rng, 96));
  }
  const BigInt candidate = shared * rsa::random_prime(rng, 128);

  AllPairsConfig base;
  base.engine = EngineKind::kSimt;
  base.backend = BulkBackend::kLockstep;
  base.group_size = 3;  // several blocks, so thread partitioning matters
  base.warp_width = 4;
  base.pool_threads = 1;
  ProbeStats ref_stats;
  const auto ref_hits = probe_incremental(candidate, corpus, base, &ref_stats);
  ASSERT_EQ(ref_hits.size(), 2u);
  EXPECT_EQ(ref_hits[0].corpus_index, 0u);
  EXPECT_EQ(ref_hits[1].corpus_index, 5u);
  EXPECT_EQ(ref_hits[0].factor, shared);
  EXPECT_EQ(ref_stats.pairs_tested, corpus.size());

  for (const auto backend :
       {BulkBackend::kLockstep, BulkBackend::kStaged, BulkBackend::kVector}) {
    for (const std::size_t threads : {std::size_t(1), std::size_t(2)}) {
      AllPairsConfig config = base;
      config.backend = backend;
      config.pool_threads = threads;
      ProbeStats stats;
      const auto hits = probe_incremental(candidate, corpus, config, &stats);
      const std::string label = "backend " + std::to_string(int(backend)) +
                                " threads " + std::to_string(threads);
      ASSERT_EQ(hits.size(), ref_hits.size()) << label;
      for (std::size_t k = 0; k < hits.size(); ++k) {
        EXPECT_EQ(hits[k].corpus_index, ref_hits[k].corpus_index) << label;
        EXPECT_EQ(hits[k].factor, ref_hits[k].factor) << label;
        EXPECT_EQ(hits[k].full_modulus, ref_hits[k].full_modulus) << label;
      }
      EXPECT_EQ(stats.pairs_tested, ref_stats.pairs_tested) << label;
      EXPECT_EQ(stats.simt, ref_stats.simt) << label;
    }
  }
}

TEST(IncrementalProbeTest, StagedCorpusOverloadMatchesSpanOverload) {
  // The StagedCorpus overload is the intake service's fast path: the corpus
  // is staged once and grown in place instead of being re-staged per probe.
  // Its hits and probe statistics must be bit-identical to the span overload
  // over the same moduli, on every backend, including after a mid-stream
  // capacity re-stage (the 384-bit append below outsizes the seed panels).
  Xoshiro256 rng(7272);
  const BigInt shared = rsa::random_prime(rng, 64);
  std::vector<BigInt> corpus;
  corpus.push_back(shared * rsa::random_prime(rng, 64));
  for (int k = 0; k < 3; ++k) {
    corpus.push_back(rsa::random_prime(rng, 64) * rsa::random_prime(rng, 64));
  }
  StagedCorpus staged(corpus, 3);
  // Grow past the seed: a jumbo key (forces panel re-staging) and a second
  // planted collision, appended exactly as the worker folds arrivals.
  corpus.push_back(rsa::random_prime(rng, 192) * rsa::random_prime(rng, 192));
  corpus.push_back(shared * rsa::random_prime(rng, 96));
  staged.append(corpus[4]);
  staged.append(corpus[5]);
  const BigInt candidate = shared * rsa::random_prime(rng, 64);

  for (const auto backend :
       {BulkBackend::kLockstep, BulkBackend::kStaged, BulkBackend::kVector}) {
    AllPairsConfig config;
    config.engine = EngineKind::kSimt;
    config.backend = backend;
    config.group_size = 3;
    config.warp_width = 4;
    ProbeStats span_stats;
    const auto span_hits =
        probe_incremental(candidate, corpus, config, &span_stats);
    ProbeStats staged_stats;
    const auto staged_hits =
        probe_incremental(candidate, staged, config, &staged_stats);
    const std::string label = "backend " + std::to_string(int(backend));
    ASSERT_EQ(staged_hits.size(), span_hits.size()) << label;
    for (std::size_t k = 0; k < span_hits.size(); ++k) {
      EXPECT_EQ(staged_hits[k].corpus_index, span_hits[k].corpus_index)
          << label;
      EXPECT_EQ(staged_hits[k].factor, span_hits[k].factor) << label;
      EXPECT_EQ(staged_hits[k].full_modulus, span_hits[k].full_modulus)
          << label;
    }
    EXPECT_EQ(staged_stats.pairs_tested, span_stats.pairs_tested) << label;
    EXPECT_EQ(staged_stats.simt, span_stats.simt) << label;
    ASSERT_EQ(span_hits.size(), 2u) << label;
    EXPECT_EQ(span_hits[0].corpus_index, 0u) << label;
    EXPECT_EQ(span_hits[1].corpus_index, 5u) << label;
    EXPECT_EQ(span_hits[0].factor, shared) << label;
  }
}

TEST(IncrementalProbeTest, ScalarDifferentialAcrossThreadCounts) {
  const WeakCorpus corpus = test_corpus(17, 2, 16);  // not a block multiple
  const auto& weak = corpus.weak[0];
  AllPairsConfig config;
  config.engine = EngineKind::kScalar;
  config.group_size = 4;
  config.pool_threads = 1;
  ProbeStats ref_stats;
  const auto ref_hits = probe_incremental(corpus.moduli[weak.first],
                                          corpus.moduli, config, &ref_stats);
  EXPECT_EQ(ref_stats.pairs_tested, corpus.moduli.size());
  EXPECT_GT(ref_stats.scalar.iterations, 0u);
  for (const std::size_t threads : {std::size_t(0), std::size_t(2)}) {
    config.pool_threads = threads;
    ProbeStats stats;
    const auto hits = probe_incremental(corpus.moduli[weak.first],
                                        corpus.moduli, config, &stats);
    ASSERT_EQ(hits.size(), ref_hits.size()) << "threads " << threads;
    for (std::size_t k = 0; k < hits.size(); ++k) {
      EXPECT_EQ(hits[k].corpus_index, ref_hits[k].corpus_index);
      EXPECT_EQ(hits[k].factor, ref_hits[k].factor);
    }
    EXPECT_EQ(stats.pairs_tested, ref_stats.pairs_tested);
    EXPECT_EQ(stats.scalar.iterations, ref_stats.scalar.iterations);
    EXPECT_EQ(stats.scalar.swaps, ref_stats.scalar.swaps);
  }
}

TEST(IncrementalProbeTest, StatsFoldIntoRegistryCounters) {
  // Regression: probe_incremental never called fold_engine_stats, so the
  // simt_*/gcd_* counters stayed at zero while all_pairs_gcd fed them —
  // telemetry silently undercounted all streamed work. Counter totals must
  // exactly equal the returned ProbeStats, on both engines.
  const WeakCorpus corpus = test_corpus(13, 1, 17);
  for (const auto engine : {EngineKind::kSimt, EngineKind::kScalar}) {
    obs::MetricsRegistry registry;
    AllPairsConfig config;
    config.engine = engine;
    config.group_size = 4;
    config.pool_threads = 2;
    config.metrics = &registry;
    ProbeStats stats;
    probe_incremental(corpus.moduli[3], corpus.moduli, config, &stats);
    const auto counter = [&](std::string_view name) {
      return registry.counter(name)->value();
    };
    if (engine == EngineKind::kSimt) {
      EXPECT_GT(stats.simt.lane_iterations, 0u);
      EXPECT_EQ(counter("simt_rounds_total"), stats.simt.rounds);
      EXPECT_EQ(counter("simt_warp_rounds_total"), stats.simt.warp_rounds);
      EXPECT_EQ(counter("simt_lane_iterations_total"),
                stats.simt.lane_iterations);
      EXPECT_EQ(counter("simt_lane_slots_total"), stats.simt.lane_slots);
    } else {
      EXPECT_GT(stats.scalar.iterations, 0u);
    }
    EXPECT_EQ(counter("gcd_iterations_total"),
              stats.simt.gcd.iterations + stats.scalar.iterations);
    EXPECT_EQ(counter("gcd_swaps_total"),
              stats.simt.gcd.swaps + stats.scalar.swaps);
  }
}

TEST(IncrementalProbeTest, StatsResetBetweenCalls) {
  const WeakCorpus corpus = test_corpus(8, 1, 18);
  AllPairsConfig config;
  config.pool_threads = 1;
  ProbeStats stats;
  probe_incremental(corpus.moduli[0], corpus.moduli, config, &stats);
  const std::uint64_t first = stats.pairs_tested;
  EXPECT_EQ(first, corpus.moduli.size());
  probe_incremental(corpus.moduli[0], corpus.moduli, config, &stats);
  EXPECT_EQ(stats.pairs_tested, first);  // overwritten, not accumulated
}

}  // namespace
}  // namespace bulkgcd::bulk
