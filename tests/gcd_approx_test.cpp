// Property tests for the paper's approx(X, Y) quotient approximation:
// soundness (α·D^β ≤ ⌊X/Y⌋), tightness enough to make progress, exact case
// routing, and agreement between the limb-level and the value-level
// (runtime-d reference) implementations.
#include "gcd/approx.hpp"

#include <gtest/gtest.h>

#include "gcd/algorithms.hpp"
#include "gcd/reference.hpp"
#include "gmp_oracle.hpp"
#include "mp/bigint.hpp"

namespace bulkgcd::gcd {
namespace {

using bulkgcd::Xoshiro256;
using bulkgcd::test::random_value;
using mp::BigInt;

template <typename Limb>
class ApproxTest : public ::testing::Test {};

using LimbTypes = ::testing::Types<std::uint16_t, std::uint32_t, std::uint64_t>;
TYPED_TEST_SUITE(ApproxTest, LimbTypes);

/// α·D^β as a BigIntT for exact comparisons.
template <typename Limb>
mp::BigIntT<Limb> approx_value(const ApproxResult<Limb>& a) {
  using Wide = typename mp::LimbTraits<Limb>::Wide;
  mp::BigIntT<Limb> v;
  Wide alpha = a.alpha;
  // alpha < 2^(2d) always; build from up to two limbs.
  std::vector<Limb> limbs;
  while (alpha != 0) {
    limbs.push_back(Limb(alpha));
    alpha >>= mp::limb_bits<Limb>;
  }
  v = mp::BigIntT<Limb>::from_limbs(limbs);
  return v << (a.beta * mp::limb_bits<Limb>);
}

TYPED_TEST(ApproxTest, AlphaDBetaNeverExceedsTrueQuotient) {
  using Limb = TypeParam;
  using Big = mp::BigIntT<Limb>;
  Xoshiro256 rng(31);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t bx = 1 + rng.below(300);
    const std::size_t by = 1 + rng.below(bx);
    Big x = random_value<Limb>(rng, bx);
    Big y = random_value<Limb>(rng, by);
    if (x < y) std::swap(x, y);
    if (y.is_zero()) continue;
    const auto a = approx(x.data(), x.size(), y.data(), y.size());
    const Big approximation = approx_value<Limb>(a);
    const Big q = x / y;
    EXPECT_LE(approximation, q)
        << "case " << to_string(a.which) << " x=" << x.to_hex()
        << " y=" << y.to_hex();
    EXPECT_GE(approximation, Big(1)) << "case " << to_string(a.which);
  }
}

TYPED_TEST(ApproxTest, AlphaFitsOneWordOutsideCase1) {
  using Limb = TypeParam;
  using Big = mp::BigIntT<Limb>;
  Xoshiro256 rng(32);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t bx = 1 + rng.below(260);
    const std::size_t by = 1 + rng.below(bx);
    Big x = random_value<Limb>(rng, bx);
    Big y = random_value<Limb>(rng, by);
    if (x < y) std::swap(x, y);
    if (y.is_zero()) continue;
    const auto a = approx(x.data(), x.size(), y.data(), y.size());
    if (a.which != ApproxCase::k1) {
      EXPECT_LT(a.alpha, mp::limb_base<Limb>) << to_string(a.which);
    } else {
      EXPECT_EQ(a.beta, 0u);
      // Case 1 is the exact quotient (can exceed one word).
      EXPECT_EQ(approx_value<Limb>(a), x / y);
    }
  }
}

TYPED_TEST(ApproxTest, CaseRoutingMatchesWordCounts) {
  using Limb = TypeParam;
  using Big = mp::BigIntT<Limb>;
  Xoshiro256 rng(33);
  const int d = mp::limb_bits<Limb>;
  for (int trial = 0; trial < 1000; ++trial) {
    const std::size_t bx = 1 + rng.below(12 * d);
    const std::size_t by = 1 + rng.below(bx);
    Big x = random_value<Limb>(rng, bx);
    Big y = random_value<Limb>(rng, by);
    if (x < y) std::swap(x, y);
    if (y.is_zero()) continue;
    const auto a = approx(x.data(), x.size(), y.data(), y.size());
    const std::size_t lx = x.size(), ly = y.size();
    switch (a.which) {
      case ApproxCase::k1: EXPECT_LE(lx, 2u); break;
      case ApproxCase::k2A:
      case ApproxCase::k2B: EXPECT_GT(lx, 2u); EXPECT_EQ(ly, 1u); break;
      case ApproxCase::k3A:
      case ApproxCase::k3B: EXPECT_GT(lx, 2u); EXPECT_EQ(ly, 2u); break;
      case ApproxCase::k4A:
      case ApproxCase::k4B:
      case ApproxCase::k4C: EXPECT_GT(lx, 2u); EXPECT_GT(ly, 2u); break;
      default: FAIL();
    }
    if (a.which == ApproxCase::k4C) EXPECT_EQ(lx, ly);
  }
}

TEST(ApproxPaperExamplesTest, SectionThreeWorkedExamples) {
  // All numeric examples from Section III use d = 4-bit words; check them
  // through the runtime-d reference (the limb engine cannot express d = 4).
  const unsigned d = 4;
  struct Case {
    const char* x;
    const char* y;
    std::uint64_t alpha;
    std::size_t beta;
    ApproxCase which;
  };
  const Case cases[] = {
      {"223", "45", 4, 0, ApproxCase::k1},
      {"2345", "4", 2, 2, ApproxCase::k2A},
      {"1234", "12", 6, 1, ApproxCase::k2B},
      {"2345", "59", 2, 1, ApproxCase::k3A},
      {"2345", "231", 9, 0, ApproxCase::k3B},
      {"54321", "1234", 2, 1, ApproxCase::k4A},
      {"54321", "4000", 13, 0, ApproxCase::k4B},
      {"55555", "1234", 2, 1, ApproxCase::k4A},  // the introduction example
  };
  for (const auto& c : cases) {
    const auto a = ref_approx(mp::BigInt::from_dec(c.x),
                              mp::BigInt::from_dec(c.y), d);
    EXPECT_EQ(a.alpha, c.alpha) << c.x << " / " << c.y;
    EXPECT_EQ(a.beta, c.beta) << c.x << " / " << c.y;
    EXPECT_EQ(a.which, c.which) << c.x << " / " << c.y;
  }
}

TEST(ApproxReferenceAgreementTest, LimbAndValueLevelAgreeAtD32) {
  Xoshiro256 rng(34);
  for (int trial = 0; trial < 1000; ++trial) {
    const std::size_t bx = 1 + rng.below(512);
    const std::size_t by = 1 + rng.below(bx);
    mp::BigInt x = random_value<std::uint32_t>(rng, bx);
    mp::BigInt y = random_value<std::uint32_t>(rng, by);
    if (x < y) std::swap(x, y);
    if (y.is_zero()) continue;
    const auto limb_level = approx(x.data(), x.size(), y.data(), y.size());
    const auto value_level = ref_approx(x, y, 32);
    EXPECT_EQ(std::uint64_t(limb_level.alpha), value_level.alpha);
    EXPECT_EQ(limb_level.beta, value_level.beta);
    EXPECT_EQ(limb_level.which, value_level.which);
  }
}

TEST(ApproxCase4OnlyTest, AgreesWithFullApproxOnLargeOperands) {
  Xoshiro256 rng(35);
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t bx = 97 + rng.below(300);  // > 3 words of 32 bits
    const std::size_t by = 97 + rng.below(bx - 96);
    mp::BigInt x = random_value<std::uint32_t>(rng, bx);
    mp::BigInt y = random_value<std::uint32_t>(rng, by);
    if (x < y) std::swap(x, y);
    const auto full = approx(x.data(), x.size(), y.data(), y.size());
    const auto restricted =
        approx_case4_only(x.data(), x.size(), y.data(), y.size());
    EXPECT_EQ(full.alpha, restricted.alpha);
    EXPECT_EQ(full.beta, restricted.beta);
    EXPECT_EQ(full.which, restricted.which);
  }
}

TYPED_TEST(ApproxTest, ReductionMakesProgress) {
  // One Approximate step with the returned (α, β) must shrink X enough that
  // the do-loop terminates: the paper's argument is that X − Y·α·D^β < X and
  // the result after the swap keeps max(X, Y) strictly decreasing across two
  // iterations. We check the single-step contraction X' < X here.
  using Limb = TypeParam;
  using Big = mp::BigIntT<Limb>;
  Xoshiro256 rng(36);
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t bx = 2 + rng.below(200);
    const std::size_t by = 1 + rng.below(bx);
    Big x = random_value<Limb>(rng, bx);
    Big y = random_value<Limb>(rng, by);
    if (x < y) std::swap(x, y);
    if (y.is_zero() || x == y) continue;
    if (x.is_even()) x += Big(1);
    if (y.is_even()) y += Big(1);
    if (x < y) std::swap(x, y);
    if (x == y) continue;
    const auto a = approx(x.data(), x.size(), y.data(), y.size());
    Big update;
    if (a.beta == 0) {
      auto alpha = a.alpha;
      if (alpha % 2 == 0) --alpha;
      update = x - y * approx_value<Limb>({alpha, 0, a.which});
    } else {
      update = (x + y) - y * approx_value<Limb>(a);
    }
    update.strip_trailing_zeros();
    EXPECT_LT(update, x);
  }
}

TEST(ApproxDirectedCasesTest, ConstructedInputsHitEachBranchAtD32) {
  using Big = mp::BigInt;
  const auto probe = [](const Big& x, const Big& y) {
    return approx(x.data(), x.size(), y.data(), y.size());
  };
  // Case 2-A: 3-limb X with top limb >= 1-limb Y.
  {
    const Big x = (Big(9) << 64) + Big(12345);
    const Big y(5);
    const auto a = probe(x, y);
    EXPECT_EQ(a.which, ApproxCase::k2A);
    EXPECT_EQ(a.alpha, 9u / 5u);
    EXPECT_EQ(a.beta, 2u);
  }
  // Case 2-B: 3-limb X with top limb < 1-limb Y.
  {
    const Big x = (Big(3) << 64) + (Big(7) << 32) + Big(1);
    const Big y(0xFFFFFFFDu);
    const auto a = probe(x, y);
    EXPECT_EQ(a.which, ApproxCase::k2B);
    EXPECT_EQ(std::uint64_t(a.alpha), ((3ull << 32) | 7ull) / 0xFFFFFFFDull);
    EXPECT_EQ(a.beta, 1u);
  }
  // Case 3-A: x1x2 >= y1y2 with a 2-limb Y.
  {
    const Big x = (Big(0x10) << 96) + Big(99);
    const Big y = (Big(0x0F) << 32) + Big(3);
    const auto a = probe(x, y);
    EXPECT_EQ(a.which, ApproxCase::k3A);
    EXPECT_EQ(std::uint64_t(a.alpha), (0x10ull << 32) / ((0x0Full << 32) | 3));
    EXPECT_EQ(a.beta, 2u);
  }
  // Case 3-B: x1x2 < y1y2.
  {
    const Big x = (Big(0x0E) << 64) + Big(42);
    const Big y = (Big(0x0F) << 32) + Big(3);
    const auto a = probe(x, y);
    EXPECT_EQ(a.which, ApproxCase::k3B);
    EXPECT_EQ(std::uint64_t(a.alpha), (0x0Eull << 32) / (0x0Full + 1));
    EXPECT_EQ(a.beta, 0u);
  }
  // Case 4-A with beta > 0: larger X by two limbs.
  {
    const Big x = (Big(0x20) << 192) + Big(7);
    const Big y = (Big(0x10) << 96) + Big(5);
    const auto a = probe(x, y);
    EXPECT_EQ(a.which, ApproxCase::k4A);
    EXPECT_EQ(std::uint64_t(a.alpha), (0x20ull << 32) / ((0x10ull << 32) + 1));
    EXPECT_EQ(a.beta, 3u);
  }
  // Case 4-B: equal two-word prefixes, X longer.
  {
    const Big x = (Big(0x10) << 192) + Big(7);
    const Big y = (Big(0x10) << 96) + Big(5);
    const auto a = probe(x, y);
    EXPECT_EQ(a.which, ApproxCase::k4B);
    EXPECT_EQ(std::uint64_t(a.alpha), (0x10ull << 32) / (0x10ull + 1));
    EXPECT_EQ(a.beta, 2u);
  }
  // Case 4-C: equal sizes and equal prefixes.
  {
    const Big x = (Big(0x10) << 96) + Big(9);
    const Big y = (Big(0x10) << 96) + Big(5);
    const auto a = probe(x, y);
    EXPECT_EQ(a.which, ApproxCase::k4C);
    EXPECT_EQ(std::uint64_t(a.alpha), 1u);
    EXPECT_EQ(a.beta, 0u);
  }
}

TEST(ApproxDirectedCasesTest, BetaPositivePathRunsEndToEnd) {
  // Size-mismatched odd operands force beta > 0 on the very first iteration
  // (Case 4-A with lX > lY); the full engine must still produce the GMP gcd
  // and report the beta_nonzero statistic.
  Xoshiro256 rng(39);
  int beta_runs = 0;
  for (int trial = 0; trial < 30; ++trial) {
    mp::BigInt x = random_value<std::uint32_t>(rng, 400);
    mp::BigInt y = random_value<std::uint32_t>(rng, 180);
    if (x.is_even()) x += mp::BigInt(1);
    if (y.is_even()) y += mp::BigInt(1);
    GcdStats st;
    const mp::BigInt g = gcd_odd(x, y, Variant::kApproximate, &st);
    EXPECT_EQ(g, bulkgcd::test::gmp_gcd(x, y));
    if (st.beta_nonzero > 0) ++beta_runs;
  }
  EXPECT_GT(beta_runs, 20);  // nearly every size-mismatched pair hits it
}

}  // namespace
}  // namespace bulkgcd::gcd
