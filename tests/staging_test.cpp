// Staged corpus-panel tests: the CorpusPanels layout mirrors ColumnMatrix
// geometry exactly; refreshing a SimtBatch via load_panel()/broadcast_y()/
// reset_lane_state() is indistinguishable from per-lane load(); run_staged()
// reproduces run() bit for bit INCLUDING the reconstructed warp statistics;
// and the staged all-pairs / incremental / resumable-scan paths return the
// same hits (verified against the GMP oracle) with the same full_modulus
// classification as the unstaged reference.
#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>

#include "bulk/allpairs.hpp"
#include "bulk/block_grid.hpp"
#include "bulk/layout.hpp"
#include "bulk/scan_driver.hpp"
#include "core/rng.hpp"
#include "gmp_oracle.hpp"
#include "rsa/corpus.hpp"
#include "rsa/prime.hpp"

namespace bulkgcd::bulk {
namespace {

using bulkgcd::Xoshiro256;
using bulkgcd::test::gmp_gcd;
using bulkgcd::test::random_odd;
using gcd::Variant;
using mp::BigInt;

// ---------------------------------------------------------------------------
// CorpusPanels layout
// ---------------------------------------------------------------------------

TEST(CorpusPanelsTest, LayoutMatchesColumnMajorGeometry) {
  Xoshiro256 rng(91);
  // Mixed sizes on purpose: 96..192-bit values across 7 moduli, group size 3
  // → 3 groups with a ragged tail lane.
  std::vector<BigInt> moduli;
  for (std::size_t i = 0; i < 7; ++i) {
    moduli.push_back(random_odd<std::uint32_t>(rng, 96 + 32 * (i % 4)));
  }
  const std::size_t r = 3;
  std::size_t max_limbs = 0;
  for (const auto& n : moduli) max_limbs = std::max(max_limbs, n.limbs().size());
  const std::size_t pad = max_limbs + kBatchPadLimbs;

  const CorpusPanels<std::uint32_t> panels(moduli, r, pad);
  EXPECT_EQ(panels.corpus_size(), moduli.size());
  EXPECT_EQ(panels.group_count(), 3u);
  EXPECT_EQ(panels.lanes(), r);
  EXPECT_EQ(panels.padded_limbs(), pad);
  EXPECT_GT(panels.bytes(), 0u);
  ASSERT_EQ(panels.bit_lengths().size(), moduli.size());

  for (std::size_t g = 0; g < panels.group_count(); ++g) {
    const auto panel = panels.panel(g);
    ASSERT_EQ(panel.size(), r * pad);
    const auto sizes = panels.sizes(g);
    std::size_t expect_rows = 1;
    for (std::size_t lane = 0; lane < r; ++lane) {
      const std::size_t idx = g * r + lane;
      if (idx >= moduli.size()) {
        EXPECT_EQ(sizes[lane], 0u);
        continue;
      }
      const auto limbs = moduli[idx].limbs();
      EXPECT_EQ(sizes[lane], limbs.size());
      EXPECT_EQ(panels.bits(idx), moduli[idx].bit_length());
      expect_rows = std::max(expect_rows, limbs.size() + 1);
      // Limb i of lane t lives at panel[i*r + t] — the ColumnMatrix rule.
      for (std::size_t i = 0; i < pad; ++i) {
        const std::uint32_t want = i < limbs.size() ? limbs[i] : 0u;
        ASSERT_EQ(panel[i * r + lane], want)
            << "group " << g << " lane " << lane << " limb " << i;
      }
    }
    EXPECT_EQ(panels.rows(g), expect_rows);
    EXPECT_LE(panels.rows(g), pad);
  }
}

TEST(CorpusPanelsTest, IncrementalAppendMatchesOneShotConstruction) {
  Xoshiro256 rng(94);
  // Same mixed-size shape as the layout test: ragged tail group, varied
  // widths. Growing panels one append() at a time must land on the exact
  // bytes the one-shot constructor produces.
  std::vector<BigInt> moduli;
  for (std::size_t i = 0; i < 7; ++i) {
    moduli.push_back(random_odd<std::uint32_t>(rng, 96 + 32 * (i % 4)));
  }
  const std::size_t r = 3;
  std::size_t max_limbs = 0;
  for (const auto& n : moduli) max_limbs = std::max(max_limbs, n.limbs().size());
  const std::size_t pad = max_limbs + kBatchPadLimbs;

  const CorpusPanels<std::uint32_t> oneshot(moduli, r, pad);
  CorpusPanels<std::uint32_t> grown(r, pad);
  EXPECT_EQ(grown.corpus_size(), 0u);
  EXPECT_EQ(grown.group_count(), 0u);
  for (const auto& n : moduli) {
    grown.append(n.limbs(), n.bit_length());
    // Every intermediate state is a valid prefix staging: the newest group's
    // rows only ever grow, earlier groups are untouched.
    ASSERT_EQ(grown.corpus_size() % r == 0
                  ? grown.corpus_size() / r
                  : grown.corpus_size() / r + 1,
              grown.group_count());
  }

  ASSERT_EQ(grown.corpus_size(), oneshot.corpus_size());
  ASSERT_EQ(grown.group_count(), oneshot.group_count());
  EXPECT_EQ(grown.lanes(), oneshot.lanes());
  EXPECT_EQ(grown.padded_limbs(), oneshot.padded_limbs());
  for (std::size_t idx = 0; idx < moduli.size(); ++idx) {
    EXPECT_EQ(grown.bits(idx), oneshot.bits(idx)) << "modulus " << idx;
  }
  for (std::size_t g = 0; g < oneshot.group_count(); ++g) {
    EXPECT_EQ(grown.rows(g), oneshot.rows(g)) << "group " << g;
    const auto grown_sizes = grown.sizes(g);
    const auto oneshot_sizes = oneshot.sizes(g);
    ASSERT_EQ(grown_sizes.size(), oneshot_sizes.size());
    const auto grown_panel = grown.panel(g);
    const auto oneshot_panel = oneshot.panel(g);
    ASSERT_EQ(grown_panel.size(), oneshot_panel.size());
    for (std::size_t lane = 0; lane < r; ++lane) {
      EXPECT_EQ(grown_sizes[lane], oneshot_sizes[lane])
          << "group " << g << " lane " << lane;
    }
    for (std::size_t k = 0; k < oneshot_panel.size(); ++k) {
      ASSERT_EQ(grown_panel[k], oneshot_panel[k])
          << "group " << g << " element " << k;
    }
  }
}

TEST(StagedCorpusTest, GrowthRestagesAndMatchesScanCorpusView) {
  Xoshiro256 rng(95);
  // Seed with small values, then append a much larger one: the capacity
  // doubling must re-stage without perturbing any already-staged member,
  // and the flat view must stay byte-identical to a fresh ScanCorpus.
  std::vector<BigInt> moduli;
  for (std::size_t i = 0; i < 4; ++i) {
    moduli.push_back(random_odd<std::uint32_t>(rng, 96));
  }
  StagedCorpus staged(moduli, 3);
  const std::size_t pad_before = staged.panels().padded_limbs();
  moduli.push_back(random_odd<std::uint32_t>(rng, 384));  // forces restage
  moduli.push_back(random_odd<std::uint32_t>(rng, 128));
  for (std::size_t i = 4; i < moduli.size(); ++i) staged.append(moduli[i]);
  EXPECT_GT(staged.panels().padded_limbs(), pad_before);

  const ScanCorpus scan{std::span<const BigInt>(moduli)};
  ASSERT_EQ(staged.size(), scan.size());
  EXPECT_EQ(staged.max_limbs(), scan.max_limbs());
  for (std::size_t i = 0; i < scan.size(); ++i) {
    const auto got = staged.limbs(i);
    const auto want = scan.limbs(i);
    ASSERT_EQ(got.size(), want.size()) << "modulus " << i;
    for (std::size_t k = 0; k < want.size(); ++k) {
      ASSERT_EQ(got[k], want[k]) << "modulus " << i << " limb " << k;
    }
    EXPECT_EQ(staged.bits(i), scan.bits(i)) << "modulus " << i;
  }

  // The rebuilt panels are the one-shot panels at the grown padding.
  const CorpusPanels<ScanLimb> oneshot(moduli, staged.group_size(),
                                       staged.panels().padded_limbs());
  const auto& live = staged.panels();
  ASSERT_EQ(live.corpus_size(), oneshot.corpus_size());
  ASSERT_EQ(live.group_count(), oneshot.group_count());
  for (std::size_t g = 0; g < oneshot.group_count(); ++g) {
    EXPECT_EQ(live.rows(g), oneshot.rows(g)) << "group " << g;
    const auto got = live.panel(g);
    const auto want = oneshot.panel(g);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t k = 0; k < want.size(); ++k) {
      ASSERT_EQ(got[k], want[k]) << "group " << g << " element " << k;
    }
  }
}

TEST(CorpusPanelsTest, RejectsUndersizedPadding) {
  Xoshiro256 rng(92);
  std::vector<BigInt> moduli = {random_odd<std::uint32_t>(rng, 128)};
  const std::size_t limbs = moduli[0].limbs().size();
  EXPECT_THROW(CorpusPanels<std::uint32_t>(moduli, 4, limbs),
               std::length_error);
  EXPECT_NO_THROW(
      CorpusPanels<std::uint32_t>(moduli, 4, limbs + kBatchPadLimbs));
}

TEST(CorpusPanelsTest, RowMajorBatchRejectsPanelStaging) {
  SimtBatch<std::uint32_t, RowMatrix> batch(4, 8, 4);
  const std::vector<std::uint32_t> panel(4 * (8 + kBatchPadLimbs), 1u);
  const std::vector<std::size_t> sizes(4, 1);
  const std::vector<std::uint32_t> y = {3u};
  EXPECT_THROW(batch.load_panel(panel, sizes, 2), std::logic_error);
  EXPECT_THROW(batch.broadcast_y(y), std::logic_error);
}

// ---------------------------------------------------------------------------
// Batch refresh + lane-serial execution vs the per-lane reference
// ---------------------------------------------------------------------------

/// r moduli (one group), some sharing a prime with the probe y.
struct GroupFixture {
  std::vector<BigInt> xs;
  BigInt y;
  std::size_t cap = 0;  ///< max limbs across all values

  explicit GroupFixture(std::size_t r, std::uint64_t seed) {
    Xoshiro256 rng(seed);
    const BigInt shared = rsa::random_prime(rng, 64);
    y = shared * rsa::random_prime(rng, 64);
    for (std::size_t k = 0; k < r; ++k) {
      // Mixed sizes and a planted hit every third lane.
      if (k % 3 == 0) {
        xs.push_back(shared * rsa::random_prime(rng, 64 + 32 * (k % 2)));
      } else {
        xs.push_back(random_odd<std::uint32_t>(rng, 96 + 32 * (k % 3)));
      }
    }
    cap = y.limbs().size();
    for (const auto& x : xs) cap = std::max(cap, x.limbs().size());
  }
};

TEST(StagedBatchTest, PanelRefreshMatchesPerLaneLoads) {
  const std::size_t r = 13;
  const GroupFixture fx(r, 2024);
  const CorpusPanels<std::uint32_t> panels(fx.xs, r, fx.cap + kBatchPadLimbs);

  for (const std::size_t early : {std::size_t(0), std::size_t(48)}) {
    SimtBatch<std::uint32_t> reference(r, fx.cap, 8);
    SimtBatch<std::uint32_t> staged(r, fx.cap, 8);
    for (std::size_t k = 0; k < r; ++k) {
      reference.load(k, fx.xs[k].limbs(), fx.y.limbs());
    }
    staged.load_panel(panels.panel(0), panels.sizes(0), panels.rows(0));
    staged.broadcast_y(fx.y.limbs());
    for (std::size_t k = 0; k < r; ++k) staged.reset_lane_state(k);

    reference.run(Variant::kApproximate, early);
    staged.run(Variant::kApproximate, early);

    for (std::size_t k = 0; k < r; ++k) {
      ASSERT_EQ(staged.early_coprime(k), reference.early_coprime(k))
          << "early=" << early << " lane " << k;
      if (!reference.early_coprime(k)) {
        EXPECT_EQ(staged.gcd_of(k), reference.gcd_of(k))
            << "early=" << early << " lane " << k;
      }
    }
    EXPECT_TRUE(staged.stats() == reference.stats()) << "early=" << early;
  }
}

TEST(StagedBatchTest, RepeatedRefreshLeavesNoResidue) {
  // Run a round that dirties high rows (long values), then stage a group of
  // much shorter values: the watermark logic must zero the residue, so the
  // short round's results still match a fresh batch.
  const std::size_t r = 7;
  const GroupFixture longs(r, 31);
  GroupFixture shorts(r, 32);
  // Rebuild `shorts` values at half the size so its rows < longs' rows.
  {
    Xoshiro256 rng(33);
    const BigInt shared = rsa::random_prime(rng, 32);
    shorts.y = shared * rsa::random_prime(rng, 32);
    for (std::size_t k = 0; k < r; ++k) {
      shorts.xs[k] = k % 2 ? random_odd<std::uint32_t>(rng, 64)
                           : shared * rsa::random_prime(rng, 32);
    }
    shorts.cap = shorts.y.limbs().size();
    for (const auto& x : shorts.xs) {
      shorts.cap = std::max(shorts.cap, x.limbs().size());
    }
  }
  const std::size_t cap = std::max(longs.cap, shorts.cap);
  const CorpusPanels<std::uint32_t> long_p(longs.xs, r, cap + kBatchPadLimbs);
  const CorpusPanels<std::uint32_t> short_p(shorts.xs, r, cap + kBatchPadLimbs);

  SimtBatch<std::uint32_t> reused(r, cap, 8);
  auto stage_and_run = [&](SimtBatch<std::uint32_t>& b,
                           const CorpusPanels<std::uint32_t>& p,
                           const BigInt& y) {
    b.load_panel(p.panel(0), p.sizes(0), p.rows(0));
    b.broadcast_y(y.limbs());
    for (std::size_t k = 0; k < r; ++k) b.reset_lane_state(k);
    b.run_staged(Variant::kApproximate, 0);
  };
  stage_and_run(reused, long_p, longs.y);   // dirty the high rows
  stage_and_run(reused, short_p, shorts.y); // then the short group

  SimtBatch<std::uint32_t> fresh(r, cap, 8);
  stage_and_run(fresh, short_p, shorts.y);
  for (std::size_t k = 0; k < r; ++k) {
    ASSERT_EQ(reused.early_coprime(k), fresh.early_coprime(k)) << "lane " << k;
    if (!fresh.early_coprime(k)) {
      EXPECT_EQ(reused.gcd_of(k), fresh.gcd_of(k)) << "lane " << k;
    }
  }
}

struct StagedRunCase {
  Variant variant;
  std::size_t early_bits;
};

class StagedRunTest : public ::testing::TestWithParam<StagedRunCase> {};

TEST_P(StagedRunTest, RunStagedMatchesRunBitForBitIncludingStats) {
  const auto [variant, early_bits] = GetParam();
  Xoshiro256 rng(555 + std::size_t(variant));
  const std::size_t lanes = 37;  // ragged: not a multiple of the warp width
  const std::size_t bits = 192;
  const std::size_t cap = bits / 32;

  SimtBatch<std::uint32_t> lockstep(lanes, cap, 8);
  SimtBatch<std::uint32_t> staged(lanes, cap, 8);
  for (std::size_t i = 0; i < lanes; ++i) {
    BigInt x, y;
    if (i % 5 == 0) {
      const BigInt p = rsa::random_prime(rng, bits / 2);
      x = p * rsa::random_prime(rng, bits / 2);
      y = p * rsa::random_prime(rng, bits / 2);
    } else {
      x = random_odd<std::uint32_t>(rng, bits);
      y = random_odd<std::uint32_t>(rng, bits);
    }
    lockstep.load(i, x.limbs(), y.limbs());
    staged.load(i, x.limbs(), y.limbs());
  }
  lockstep.run(variant, early_bits);
  staged.run_staged(variant, early_bits);

  for (std::size_t i = 0; i < lanes; ++i) {
    ASSERT_EQ(staged.early_coprime(i), lockstep.early_coprime(i))
        << to_string(variant) << " lane " << i;
    if (!lockstep.early_coprime(i)) {
      EXPECT_EQ(staged.gcd_of(i), lockstep.gcd_of(i))
          << to_string(variant) << " lane " << i;
    }
  }
  // The warp statistics are RECONSTRUCTED for run_staged — every counter
  // (rounds, warp rounds, branch slots, divergence, utilization, and the
  // whole GcdStats block) must equal the lockstep accounting exactly.
  EXPECT_TRUE(staged.stats() == lockstep.stats()) << to_string(variant);
}

INSTANTIATE_TEST_SUITE_P(
    VariantsAndTermination, StagedRunTest,
    ::testing::Values(StagedRunCase{Variant::kBinary, 0},
                      StagedRunCase{Variant::kBinary, 96},
                      StagedRunCase{Variant::kFastBinary, 0},
                      StagedRunCase{Variant::kFastBinary, 96},
                      StagedRunCase{Variant::kApproximate, 0},
                      StagedRunCase{Variant::kApproximate, 96}));

// ---------------------------------------------------------------------------
// End-to-end differentials: staged vs unstaged sweeps
// ---------------------------------------------------------------------------

/// Heterogeneous corpus with two planted shared-prime pairs (one between the
/// small moduli — the regression shape of PR 1), one exact duplicate
/// modulus, and larger bystanders.
std::vector<BigInt> mixed_corpus(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const BigInt shared_small = rsa::random_prime(rng, 64);
  const BigInt shared_big = rsa::random_prime(rng, 128);
  std::vector<BigInt> moduli = {
      shared_small * rsa::random_prime(rng, 64),    // 0: 128-bit weak
      shared_small * rsa::random_prime(rng, 64),    // 1: 128-bit weak
      rsa::random_prime(rng, 128) * rsa::random_prime(rng, 128),  // 2
      shared_big * rsa::random_prime(rng, 128),     // 3: 256-bit weak
      rsa::random_prime(rng, 128) * rsa::random_prime(rng, 128),  // 4
      shared_big * rsa::random_prime(rng, 128),     // 5: 256-bit weak
      rsa::random_prime(rng, 128) * rsa::random_prime(rng, 128),  // 6
  };
  moduli.push_back(moduli[4]);  // 7: exact duplicate of 4
  return moduli;
}

void expect_same_sweeps(const AllPairsResult& staged,
                        const AllPairsResult& unstaged,
                        std::span<const BigInt> moduli) {
  EXPECT_EQ(staged.pairs_tested, unstaged.pairs_tested);
  EXPECT_EQ(staged.blocks_run, unstaged.blocks_run);
  ASSERT_EQ(staged.hits.size(), unstaged.hits.size());
  for (std::size_t k = 0; k < staged.hits.size(); ++k) {
    EXPECT_EQ(staged.hits[k].i, unstaged.hits[k].i);
    EXPECT_EQ(staged.hits[k].j, unstaged.hits[k].j);
    EXPECT_EQ(staged.hits[k].factor, unstaged.hits[k].factor);
    EXPECT_EQ(staged.hits[k].full_modulus, unstaged.hits[k].full_modulus);
    // GMP oracle: the reported factor is the true gcd of the pair.
    const auto& h = staged.hits[k];
    EXPECT_EQ(h.factor, gmp_gcd(moduli[h.i], moduli[h.j])) << "hit " << k;
    EXPECT_EQ(h.full_modulus,
              h.factor == moduli[h.i] || h.factor == moduli[h.j]);
  }
  // Identical work means identical statistics, not just identical hits.
  EXPECT_TRUE(staged.simt == unstaged.simt);
}

TEST(StagingDifferentialTest, AllPairsStagedMatchesUnstaged) {
  const std::vector<BigInt> moduli = mixed_corpus(777);
  for (const std::size_t group : {std::size_t(3), std::size_t(64)}) {
    AllPairsConfig config;
    config.engine = EngineKind::kSimt;
    config.group_size = group;
    config.warp_width = 8;
    config.early_terminate = true;
    config.staged = true;
    const AllPairsResult staged = all_pairs_gcd(moduli, config);
    config.staged = false;
    const AllPairsResult unstaged = all_pairs_gcd(moduli, config);
    expect_same_sweeps(staged, unstaged, moduli);
    // The corpus plants 2 proper pairs + 1 duplicate.
    ASSERT_EQ(staged.hits.size(), 3u) << "group " << group;
    std::size_t full = 0;
    for (const auto& h : staged.hits) full += h.full_modulus ? 1 : 0;
    EXPECT_EQ(full, 1u) << "group " << group;
  }
}

TEST(StagingDifferentialTest, ProbeIncrementalStagedMatchesUnstaged) {
  Xoshiro256 rng(888);
  const BigInt shared = rsa::random_prime(rng, 64);
  std::vector<BigInt> corpus = {
      shared * rsa::random_prime(rng, 64),
      rsa::random_prime(rng, 96) * rsa::random_prime(rng, 96),
      rsa::random_prime(rng, 64) * rsa::random_prime(rng, 64),
  };
  const BigInt candidate = shared * rsa::random_prime(rng, 64);
  corpus.push_back(candidate);  // exact duplicate of the candidate

  AllPairsConfig config;
  config.group_size = 2;
  config.warp_width = 8;
  config.staged = true;
  const auto staged = probe_incremental(candidate, corpus, config);
  config.staged = false;
  const auto unstaged = probe_incremental(candidate, corpus, config);

  ASSERT_EQ(staged.size(), unstaged.size());
  for (std::size_t k = 0; k < staged.size(); ++k) {
    EXPECT_EQ(staged[k].corpus_index, unstaged[k].corpus_index);
    EXPECT_EQ(staged[k].factor, unstaged[k].factor);
    EXPECT_EQ(staged[k].full_modulus, unstaged[k].full_modulus);
  }
  ASSERT_EQ(staged.size(), 2u);
  EXPECT_EQ(staged[0].corpus_index, 0u);
  EXPECT_EQ(staged[0].factor, shared);
  EXPECT_FALSE(staged[0].full_modulus);
  EXPECT_EQ(staged[1].corpus_index, 3u);
  EXPECT_EQ(staged[1].factor, candidate);  // gcd(n, n) = n
  EXPECT_TRUE(staged[1].full_modulus);
}

TEST(StagingDifferentialTest, ResumableScanStagedMatchesUnstaged) {
  const std::vector<BigInt> moduli = mixed_corpus(999);
  ScanConfig config;
  config.pairs.group_size = 3;
  config.pairs.warp_width = 8;
  config.chunk_blocks = 2;
  config.pairs.staged = true;
  const ScanReport staged = run_resumable_scan(moduli, config);
  config.pairs.staged = false;
  const ScanReport unstaged = run_resumable_scan(moduli, config);
  ASSERT_TRUE(staged.complete);
  ASSERT_TRUE(unstaged.complete);
  expect_same_sweeps(staged.result, unstaged.result, moduli);
}

TEST(StagingDifferentialTest, ResumeRestoresFullModulusFlags) {
  // full_modulus is recomputed when hits are restored from a checkpoint (the
  // journal format predates the flag and stays unchanged): kill a scan after
  // one chunk, resume, and check the flags on the merged hit list.
  const std::vector<BigInt> moduli = mixed_corpus(1234);
  const auto path = std::filesystem::temp_directory_path() /
                    "bulkgcd_staging_resume_flags.ckpt";
  std::error_code ignored;
  std::filesystem::remove(path, ignored);

  ScanConfig config;
  config.pairs.group_size = 2;
  config.pairs.warp_width = 8;
  config.checkpoint = path;
  config.chunk_blocks = 1;
  config.stop_after_chunks = 3;
  const ScanReport partial = run_resumable_scan(moduli, config);
  ASSERT_FALSE(partial.complete);

  config.stop_after_chunks = 0;
  const ScanReport resumed = run_resumable_scan(moduli, config);
  ASSERT_TRUE(resumed.complete);
  ASSERT_TRUE(resumed.resumed);
  for (const auto& h : resumed.result.hits) {
    EXPECT_EQ(h.full_modulus,
              h.factor == moduli[h.i] || h.factor == moduli[h.j]);
  }
  std::size_t full = 0;
  for (const auto& h : resumed.result.hits) full += h.full_modulus ? 1 : 0;
  EXPECT_EQ(full, 1u);
  std::filesystem::remove(path, ignored);
}

}  // namespace
}  // namespace bulkgcd::bulk
