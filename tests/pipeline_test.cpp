// Cycle-level pipeline simulator vs the closed-form UMM model.
#include "umm/pipeline.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "rsa/prime.hpp"
#include "umm/oblivious.hpp"

namespace bulkgcd::umm {
namespace {

std::vector<ThreadTrace> oblivious_traces(std::size_t threads, std::size_t steps) {
  std::vector<ThreadTrace> traces(threads);
  for (auto& trace : traces) {
    for (std::size_t i = 0; i < steps; ++i) {
      trace.addresses.push_back(std::uint32_t(i % 64));
    }
  }
  return traces;
}

TEST(PipelineTest, FigureTwoWorkedExampleExact) {
  // W(0) → 3 groups, W(1) → 1 group, w = 4, l = 5: 8 time units.
  const PipelineSimulator sim({4, 5});
  std::vector<ThreadTrace> traces(8);
  const std::uint32_t w0[4] = {3, 4, 6, 8};
  const std::uint32_t w1[4] = {12, 13, 14, 15};
  for (int i = 0; i < 4; ++i) {
    traces[i].addresses.push_back(w0[i]);
    traces[4 + i].addresses.push_back(w1[i]);
  }
  const auto result = sim.replay(traces, Layout::kRowWise, 0);
  EXPECT_EQ(result.time_units, 8u);
  EXPECT_EQ(result.warp_dispatches, 2u);
  EXPECT_EQ(result.stage_slots, 4u);
  EXPECT_EQ(result.idle_cycles, 0u);
}

TEST(PipelineTest, NeverSlowerThanTheBarrierModel) {
  Xoshiro256 rng(201);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t w = 4u << rng.below(3);
    const std::size_t l = 2 + rng.below(60);
    const std::size_t p = w * (1 + rng.below(12));
    const std::size_t t = 1 + rng.below(40);
    // Random (non-oblivious) traces with ragged lengths.
    std::vector<ThreadTrace> traces(p);
    for (auto& trace : traces) {
      const std::size_t len = t == 1 ? 1 : t - rng.below(t / 2 + 1);
      for (std::size_t i = 0; i < len; ++i) {
        trace.addresses.push_back(std::uint32_t(rng.below(64)));
      }
    }
    const UmmSimulator barrier({w, l});
    const PipelineSimulator pipeline({w, l});
    const auto b = barrier.replay(traces, Layout::kColumnWise, 64);
    const auto q = pipeline.replay(traces, Layout::kColumnWise, 64);
    EXPECT_LE(q.time_units, b.time_units)
        << "w=" << w << " l=" << l << " p=" << p << " t=" << t;
    EXPECT_EQ(q.stage_slots, b.stage_slots);  // same total work
  }
}

TEST(PipelineTest, MatchesTheoremOneWhenEntryPortSaturates) {
  // With p/w >= l the serialized entry port is the bottleneck; the barrier
  // model and the pipeline agree to within one drain (l − 1 cycles).
  const std::size_t w = 8, l = 10, p = 16 * w, t = 30;  // p/w = 16 > l = 10
  const UmmSimulator barrier({w, l});
  const PipelineSimulator pipeline({w, l});
  const auto traces = oblivious_traces(p, t);
  const auto q = pipeline.replay(traces, Layout::kColumnWise, 64);
  EXPECT_LE(q.time_units, barrier.theorem1_time(p, t));
  // The entry port passes p/w groups per step and only the final drain is
  // exposed: time = (p/w)·t + (l − 1) exactly in the saturated regime.
  EXPECT_EQ(q.time_units, std::uint64_t(p / w) * t + l - 1);
}

TEST(PipelineTest, LatencyBoundWhenFewWarps) {
  // A single warp cannot hide latency at all: every step costs a full
  // drain, so time ≈ t·l (the barrier model says the same).
  const std::size_t w = 32, l = 50, t = 20;
  const PipelineSimulator sim({w, l});
  const auto traces = oblivious_traces(w, t);  // exactly one warp
  const auto result = sim.replay(traces, Layout::kColumnWise, 64);
  EXPECT_EQ(result.time_units, std::uint64_t(t) * l);
  EXPECT_GT(result.idle_cycles, 0u);  // the entry port starves
}

TEST(PipelineTest, RealGcdTracesColumnBeatsRow) {
  Xoshiro256 rng(202);
  std::vector<std::pair<mp::BigInt, mp::BigInt>> pairs;
  for (int i = 0; i < 16; ++i) {
    pairs.emplace_back(
        rsa::random_prime(rng, 64) * rsa::random_prime(rng, 64),
        rsa::random_prime(rng, 64) * rsa::random_prime(rng, 64));
  }
  const auto traces = collect_traces(gcd::Variant::kApproximate, pairs, 64, 8);
  const PipelineSimulator sim({8, 20});
  const auto col = sim.replay(traces, Layout::kColumnWise, 16);
  const auto row = sim.replay(traces, Layout::kRowWise, 16);
  EXPECT_LT(col.time_units, row.time_units);
}

TEST(PipelineTest, ValidatesConfig) {
  EXPECT_THROW(PipelineSimulator({0, 5}), std::invalid_argument);
  EXPECT_THROW(PipelineSimulator({4, 0}), std::invalid_argument);
}

TEST(PipelineTest, EmptyTraces) {
  const PipelineSimulator sim({4, 5});
  EXPECT_EQ(sim.replay({}, Layout::kColumnWise, 8).time_units, 0u);
  std::vector<ThreadTrace> empty(4);
  EXPECT_EQ(sim.replay(empty, Layout::kColumnWise, 8).time_units, 0u);
}

}  // namespace
}  // namespace bulkgcd::umm
