// RSA substrate tests: modular math vs GMP, Miller-Rabin vs GMP, keygen,
// encrypt/decrypt round trips, private-key recovery from a GCD hit.
#include "rsa/rsa.hpp"

#include <gtest/gtest.h>

#include "gmp_oracle.hpp"
#include "rsa/modmath.hpp"
#include "rsa/prime.hpp"

namespace bulkgcd::rsa {
namespace {

using bulkgcd::Xoshiro256;
using bulkgcd::test::from_mpz;
using bulkgcd::test::Mpz;
using bulkgcd::test::random_odd;
using bulkgcd::test::random_value;
using bulkgcd::test::to_mpz;
using mp::BigInt;

TEST(ModMathTest, ModPowMatchesGmp) {
  Xoshiro256 rng(81);
  for (int trial = 0; trial < 60; ++trial) {
    const BigInt base = random_value<std::uint32_t>(rng, 1 + rng.below(200));
    const BigInt exp = random_value<std::uint32_t>(rng, 1 + rng.below(100));
    BigInt mod = random_value<std::uint32_t>(rng, 2 + rng.below(200));
    if (mod <= BigInt(1)) mod = BigInt(7);
    Mpz expected;
    mpz_powm(expected.get(), to_mpz(base).get(), to_mpz(exp).get(),
             to_mpz(mod).get());
    EXPECT_EQ(to_mpz(modpow(base, exp, mod)), expected);
  }
}

TEST(ModMathTest, ModPowEdgeCases) {
  EXPECT_EQ(modpow(BigInt(5), BigInt(), BigInt(7)), BigInt(1));   // x^0 = 1
  EXPECT_EQ(modpow(BigInt(5), BigInt(3), BigInt(1)), BigInt());   // mod 1
  EXPECT_EQ(modpow(BigInt(), BigInt(5), BigInt(7)), BigInt());    // 0^k
  EXPECT_THROW(modpow(BigInt(2), BigInt(2), BigInt()), std::domain_error);
}

TEST(ModMathTest, ModInvMatchesGmp) {
  Xoshiro256 rng(82);
  int tested = 0;
  while (tested < 60) {
    const BigInt a = random_value<std::uint32_t>(rng, 1 + rng.below(150));
    const BigInt m = random_odd<std::uint32_t>(rng, 2 + rng.below(150));
    Mpz inv;
    const int ok = mpz_invert(inv.get(), to_mpz(a).get(), to_mpz(m).get());
    if (!ok || m <= BigInt(1)) {
      EXPECT_THROW(modinv(a, m), std::domain_error);
      continue;
    }
    const BigInt result = modinv(a, m);
    EXPECT_EQ(to_mpz(result), inv);
    EXPECT_EQ((a * result) % m, BigInt(1) % m);
    ++tested;
  }
}

TEST(ModMathTest, ModInvRejectsNonCoprime) {
  EXPECT_THROW(modinv(BigInt(6), BigInt(9)), std::domain_error);
  EXPECT_THROW(modinv(BigInt(4), BigInt(1)), std::domain_error);
}

TEST(PrimeTest, SmallPrimesSieveIsCorrect) {
  const auto& primes = small_primes();
  ASSERT_FALSE(primes.empty());
  EXPECT_EQ(primes.front(), 3u);
  EXPECT_EQ(primes.back(), 65521u);  // largest prime below 2^16
  // Spot-check membership: primes in, composites and 2 out (odd-only sieve).
  EXPECT_TRUE(std::binary_search(primes.begin(), primes.end(), 7919u));
  EXPECT_TRUE(std::binary_search(primes.begin(), primes.end(), 3u));
  EXPECT_FALSE(std::binary_search(primes.begin(), primes.end(), 2u));
  EXPECT_FALSE(std::binary_search(primes.begin(), primes.end(), 65535u));
  EXPECT_FALSE(std::binary_search(primes.begin(), primes.end(), 561u));
  // π(2^16) = 6542; this list omits 2.
  EXPECT_EQ(primes.size(), 6541u);
}

TEST(PrimeTest, ModU32AgreesWithDivision) {
  Xoshiro256 rng(83);
  for (int trial = 0; trial < 100; ++trial) {
    const BigInt v = random_value<std::uint32_t>(rng, 1 + rng.below(300));
    std::uint32_t p = std::uint32_t(rng()) | 1u;
    if (p < 3) p = 3;
    const BigInt expected = v % BigInt(std::uint64_t(p));
    EXPECT_EQ(mod_u32(v, p), std::uint32_t(expected.to_u64()));
  }
}

TEST(PrimeTest, MillerRabinAgreesWithGmpOnRandomOdds) {
  Xoshiro256 rng(84);
  for (int trial = 0; trial < 150; ++trial) {
    const BigInt n = random_odd<std::uint32_t>(rng, 20 + rng.below(100));
    const bool ours = is_probable_prime(n, rng);
    const bool gmp = mpz_probab_prime_p(to_mpz(n).get(), 32) != 0;
    EXPECT_EQ(ours, gmp) << n.to_dec();
  }
}

TEST(PrimeTest, MillerRabinKnownValues) {
  Xoshiro256 rng(85);
  EXPECT_TRUE(is_probable_prime(BigInt(2), rng));
  EXPECT_TRUE(is_probable_prime(BigInt(65537), rng));
  EXPECT_FALSE(is_probable_prime(BigInt(1), rng));
  EXPECT_FALSE(is_probable_prime(BigInt(), rng));
  EXPECT_FALSE(is_probable_prime(BigInt(561), rng));      // Carmichael
  EXPECT_FALSE(is_probable_prime(BigInt(341550071728321ull), rng));  // strong pseudoprime to several bases
  // 2^89 − 1 is a Mersenne prime.
  const BigInt mersenne = (BigInt(1) << 89) - BigInt(1);
  EXPECT_TRUE(is_probable_prime(mersenne, rng));
  EXPECT_FALSE(is_probable_prime(mersenne * BigInt(3), rng));
}

TEST(PrimeTest, RandomPrimeHasRequestedShape) {
  Xoshiro256 rng(86);
  for (const std::size_t bits : {64u, 128u, 256u}) {
    const BigInt p = random_prime(rng, bits);
    EXPECT_EQ(p.bit_length(), bits);
    EXPECT_TRUE(p.bit(bits - 1));
    EXPECT_TRUE(p.bit(bits - 2));  // top two bits forced
    EXPECT_TRUE(p.is_odd());
    EXPECT_NE(mpz_probab_prime_p(to_mpz(p).get(), 32), 0);
  }
}

TEST(KeygenTest, KeypairInvariants) {
  Xoshiro256 rng(87);
  const KeyPair key = generate_keypair(rng, 256);
  EXPECT_EQ(key.n, key.p * key.q);
  EXPECT_EQ(key.n.bit_length(), 256u);
  EXPECT_EQ(key.e, BigInt(65537));
  const BigInt phi = (key.p - BigInt(1)) * (key.q - BigInt(1));
  EXPECT_EQ((key.e * key.d) % phi, BigInt(1));
}

TEST(KeygenTest, RejectsBadModulusSize) {
  Xoshiro256 rng(88);
  EXPECT_THROW(generate_keypair(rng, 15), std::invalid_argument);
  EXPECT_THROW(generate_keypair(rng, 8), std::invalid_argument);
}

TEST(EncryptDecryptTest, RoundTripsRandomMessages) {
  Xoshiro256 rng(89);
  const KeyPair key = generate_keypair(rng, 256);
  for (int trial = 0; trial < 10; ++trial) {
    const BigInt message = random_value<std::uint32_t>(rng, 200);
    const BigInt cipher = encrypt(message, key.n, key.e);
    EXPECT_NE(cipher, message);
    EXPECT_EQ(decrypt(cipher, key.n, key.d), message);
  }
}

TEST(EncryptDecryptTest, MessageMustBeSmallerThanModulus) {
  Xoshiro256 rng(90);
  const KeyPair key = generate_keypair(rng, 128);
  EXPECT_THROW(encrypt(key.n, key.n, key.e), std::invalid_argument);
}

TEST(RecoveryTest, RecoverPrivateKeyFromFactor) {
  Xoshiro256 rng(91);
  const KeyPair original = generate_keypair(rng, 256);
  const KeyPair recovered = recover_private_key(original.n, original.e, original.p);
  EXPECT_EQ(recovered.d, original.d);
  EXPECT_EQ(recovered.p * recovered.q, original.n);
  // And the recovered key actually decrypts.
  const BigInt message(123456789);
  const BigInt cipher = encrypt(message, original.n, original.e);
  EXPECT_EQ(decrypt(cipher, recovered.n, recovered.d), message);
}

TEST(RecoveryTest, RejectsNonFactors) {
  Xoshiro256 rng(92);
  const KeyPair key = generate_keypair(rng, 128);
  EXPECT_THROW(recover_private_key(key.n, key.e, BigInt(17)),
               std::invalid_argument);
  EXPECT_THROW(recover_private_key(key.n, key.e, BigInt(1)),
               std::invalid_argument);
  EXPECT_THROW(recover_private_key(key.n, key.e, key.n),
               std::invalid_argument);
}

TEST(MessageCodecTest, AsciiRoundTrip) {
  const std::string text = "ATTACK AT DAWN";
  const BigInt encoded = encode_message(text);
  EXPECT_EQ(decode_message(encoded), text);
  EXPECT_EQ(decode_message(encode_message("")), "");
}

TEST(MessageCodecTest, EndToEndThroughRsa) {
  Xoshiro256 rng(93);
  const KeyPair key = generate_keypair(rng, 256);
  const std::string text = "weak keys leak";
  const BigInt cipher = encrypt(encode_message(text), key.n, key.e);
  EXPECT_EQ(decode_message(decrypt(cipher, key.n, key.d)), text);
}

}  // namespace
}  // namespace bulkgcd::rsa
