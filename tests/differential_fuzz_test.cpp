// Differential fuzzing across every GCD implementation in the repo: for the
// same random inputs, the five scalar engine variants, the pseudocode
// references (at several word sizes), Lehmer, the SIMT bulk engine and GMP
// must all agree. Parameterized over seeds so each seed is its own test case
// and failures name the reproducer directly.
#include <gtest/gtest.h>

#include "bulk/simt.hpp"
#include "bulk/vec/vec_backend.hpp"
#include "gcd/algorithms.hpp"
#include "gcd/lehmer.hpp"
#include "gcd/reference.hpp"
#include "gmp_oracle.hpp"

namespace bulkgcd {
namespace {

using gcd::Variant;
using mp::BigInt;
using test::gmp_gcd;
using test::random_odd;
using test::random_value;

class DifferentialFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialFuzz, AllImplementationsAgreeOnOddInputs) {
  Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t bx = 1 + rng.below(700);
    const std::size_t by = 1 + rng.below(700);
    const BigInt x = random_odd<std::uint32_t>(rng, bx);
    const BigInt y = random_odd<std::uint32_t>(rng, by);
    const BigInt expected = gmp_gcd(x, y);

    for (const Variant variant : gcd::kAllVariants) {
      ASSERT_EQ(gcd::gcd_odd(x, y, variant), expected)
          << to_string(variant) << " x=" << x.to_hex() << " y=" << y.to_hex();
    }
    ASSERT_EQ(gcd::ref_binary(x, y).gcd, expected);
    ASSERT_EQ(gcd::ref_fast(x, y).gcd, expected);
    for (const unsigned d : {5u, 11u, 16u, 29u, 32u}) {
      ASSERT_EQ(gcd::ref_approximate(x, y, d).gcd, expected)
          << "d=" << d << " x=" << x.to_hex() << " y=" << y.to_hex();
    }
    ASSERT_EQ(gcd::gcd_lehmer(x, y), expected)
        << "x=" << x.to_hex() << " y=" << y.to_hex();
  }
}

TEST_P(DifferentialFuzz, GeneralGcdAgreesOnArbitraryInputs) {
  Xoshiro256 rng(GetParam() ^ 0x9e3779b97f4a7c15ULL);
  for (int trial = 0; trial < 25; ++trial) {
    // Bias toward interesting shapes: shared factors, powers of two, tiny
    // values, equal inputs.
    BigInt x = random_value<std::uint32_t>(rng, 1 + rng.below(500));
    BigInt y = random_value<std::uint32_t>(rng, 1 + rng.below(500));
    switch (rng.below(5)) {
      case 0: {
        const BigInt g = random_value<std::uint32_t>(rng, 1 + rng.below(128));
        x = x * g;
        y = y * g;
        break;
      }
      case 1:
        x <<= rng.below(100);
        y <<= rng.below(100);
        break;
      case 2:
        y = x;
        break;
      case 3:
        y = BigInt(rng.below(4));  // 0..3
        break;
      default:
        break;
    }
    const BigInt expected = gmp_gcd(x, y);
    if (!x.is_zero() || !y.is_zero()) {
      ASSERT_EQ(gcd::gcd_general(x, y), expected)
          << "x=" << x.to_hex() << " y=" << y.to_hex();
    }
    ASSERT_EQ(gcd::gcd_lehmer(x, y), expected)
        << "x=" << x.to_hex() << " y=" << y.to_hex();
  }
}

TEST_P(DifferentialFuzz, SimtMatchesScalarOnMixedBatch) {
  Xoshiro256 rng(GetParam() * 2654435761u + 1);
  const std::size_t lanes = 12;
  const std::size_t bits = 64 + rng.below(512);
  std::vector<std::pair<BigInt, BigInt>> pairs;
  for (std::size_t i = 0; i < lanes; ++i) {
    pairs.emplace_back(random_odd<std::uint32_t>(rng, 1 + rng.below(bits)),
                       random_odd<std::uint32_t>(rng, 1 + rng.below(bits)));
  }
  std::size_t cap = 0;
  for (const auto& [x, y] : pairs) cap = std::max({cap, x.size(), y.size()});

  for (const Variant variant :
       {Variant::kBinary, Variant::kFastBinary, Variant::kApproximate}) {
    bulk::SimtBatch<std::uint32_t> batch(lanes, cap, 4);
    for (std::size_t i = 0; i < lanes; ++i) {
      batch.load(i, pairs[i].first.limbs(), pairs[i].second.limbs());
    }
    batch.run(variant, 0);
    for (std::size_t i = 0; i < lanes; ++i) {
      ASSERT_EQ(batch.gcd_of(i), gmp_gcd(pairs[i].first, pairs[i].second))
          << to_string(variant) << " lane " << i;
    }
  }
}

TEST_P(DifferentialFuzz, VectorMatchesStagedOnMixedBatch) {
  // The SIMD warp engine against the staged scalar engine AND the GMP
  // oracle, on ragged mixed-size batches, every compiled-in ISA. Deeper
  // bit-identity (stats, iteration traces) lives in vec_backend_test; this
  // keeps the vector backend inside the all-implementations fuzz net.
  Xoshiro256 rng(GetParam() * 0x9e3779b9u + 17);
  const std::size_t lanes = 19;  // ragged for both W = 8 and W = 4
  const std::size_t bits = 64 + rng.below(512);
  std::vector<std::pair<BigInt, BigInt>> pairs;
  std::size_t cap = 0;
  for (std::size_t i = 0; i < lanes; ++i) {
    pairs.emplace_back(random_odd<std::uint32_t>(rng, 1 + rng.below(bits)),
                       random_odd<std::uint32_t>(rng, 1 + rng.below(bits)));
    cap = std::max({cap, pairs[i].first.size(), pairs[i].second.size()});
  }

  for (const Variant variant :
       {Variant::kBinary, Variant::kFastBinary, Variant::kApproximate}) {
    bulk::SimtBatch<std::uint32_t> staged(lanes, cap, 32);
    for (std::size_t i = 0; i < lanes; ++i) {
      staged.load(i, pairs[i].first.limbs(), pairs[i].second.limbs());
    }
    staged.run_staged(variant);

    for (const bulk::VecIsa isa : {bulk::VecIsa::kPortable,
                                   bulk::VecIsa::kAvx2}) {
      if (!bulk::vec_isa_available(isa)) continue;
      auto vec = bulk::make_vec_batch<std::uint32_t>(lanes, cap, 32, isa);
      for (std::size_t i = 0; i < lanes; ++i) {
        vec->load(i, pairs[i].first.limbs(), pairs[i].second.limbs());
      }
      vec->run(variant);
      ASSERT_EQ(vec->stats(), staged.stats())
          << to_string(variant) << " isa=" << to_string(isa);
      for (std::size_t i = 0; i < lanes; ++i) {
        ASSERT_EQ(vec->gcd_of(i), staged.gcd_of(i))
            << to_string(variant) << " isa=" << to_string(isa) << " lane "
            << i;
        ASSERT_EQ(vec->gcd_of(i), gmp_gcd(pairs[i].first, pairs[i].second))
            << to_string(variant) << " isa=" << to_string(isa) << " lane "
            << i;
      }
    }
  }
}

TEST_P(DifferentialFuzz, EarlyTerminateVerdictsAreSound) {
  // For random odd pairs (not RSA moduli!), early-terminate may only claim
  // "coprime" when no factor of >= early_bits bits exists.
  Xoshiro256 rng(GetParam() + 31337);
  gcd::GcdEngine<std::uint32_t> engine(64);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t bits = 128 + rng.below(512);
    const BigInt x = random_odd<std::uint32_t>(rng, bits);
    const BigInt y = random_odd<std::uint32_t>(rng, bits);
    const std::size_t early = bits / 2;
    const BigInt g = gmp_gcd(x, y);
    for (const Variant variant : gcd::kAllVariants) {
      const auto run = engine.run(variant, x.limbs(), y.limbs(), early);
      if (run.early_coprime) {
        ASSERT_LT(g.bit_length(), early) << to_string(variant);
      } else {
        ASSERT_EQ(BigInt::from_limbs(run.gcd), g) << to_string(variant);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u, 144u, 233u));

}  // namespace
}  // namespace bulkgcd
