// GMP-backed test oracle: conversions between BigIntT<Limb> and mpz_t plus
// tiny RAII sugar. GMP appears ONLY in tests (and the optional corpus
// backend) — never in measured code paths.
#pragma once

#include <gmp.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "mp/bigint.hpp"

namespace bulkgcd::test {

class Mpz {
 public:
  Mpz() { mpz_init(v_); }
  explicit Mpz(unsigned long value) { mpz_init_set_ui(v_, value); }
  explicit Mpz(const char* dec) { mpz_init_set_str(v_, dec, 10); }
  Mpz(const Mpz& other) { mpz_init_set(v_, other.v_); }
  Mpz(Mpz&& other) noexcept {
    mpz_init(v_);
    mpz_swap(v_, other.v_);
  }
  Mpz& operator=(Mpz other) noexcept {
    mpz_swap(v_, other.v_);
    return *this;
  }
  ~Mpz() { mpz_clear(v_); }

  mpz_t& get() { return v_; }
  const mpz_t& get() const { return v_; }

  std::string to_dec() const {
    char* raw = mpz_get_str(nullptr, 10, v_);
    std::string out(raw);
    void (*freefunc)(void*, size_t);
    mp_get_memory_functions(nullptr, nullptr, &freefunc);
    freefunc(raw, out.size() + 1);
    return out;
  }

  friend bool operator==(const Mpz& a, const Mpz& b) {
    return mpz_cmp(a.v_, b.v_) == 0;
  }

 private:
  mpz_t v_;
};

template <mp::LimbType Limb>
Mpz to_mpz(const mp::BigIntT<Limb>& value) {
  Mpz out;
  const auto limbs = value.limbs();
  if (!limbs.empty()) {
    mpz_import(out.get(), limbs.size(), -1 /*LSW first*/, sizeof(Limb),
               0 /*native endian*/, 0, limbs.data());
  }
  return out;
}

template <mp::LimbType Limb>
mp::BigIntT<Limb> from_mpz(const Mpz& value) {
  const std::size_t bits = mpz_sizeinbase(value.get(), 2);
  if (mpz_sgn(value.get()) == 0) return {};
  const std::size_t count = (bits + mp::limb_bits<Limb> - 1) / mp::limb_bits<Limb>;
  std::vector<Limb> limbs(count, Limb{0});
  std::size_t written = 0;
  mpz_export(limbs.data(), &written, -1, sizeof(Limb), 0, 0, value.get());
  limbs.resize(written);
  return mp::BigIntT<Limb>::from_limbs(limbs);
}

/// Random BigInt with exactly `bits` bits (top bit set), any limb width.
template <mp::LimbType Limb>
mp::BigIntT<Limb> random_value(Xoshiro256& rng, std::size_t bits) {
  if (bits == 0) return {};
  const int lb = mp::limb_bits<Limb>;
  const std::size_t count = (bits + lb - 1) / lb;
  std::vector<Limb> limbs(count);
  for (auto& limb : limbs) limb = Limb(rng());
  const std::size_t top_bits = bits % lb == 0 ? std::size_t(lb) : bits % lb;
  if (top_bits < std::size_t(lb)) {
    limbs.back() &= Limb((typename mp::LimbTraits<Limb>::Wide{1} << top_bits) - 1);
  }
  limbs.back() |= Limb(typename mp::LimbTraits<Limb>::Wide{1} << (top_bits - 1));
  return mp::BigIntT<Limb>::from_limbs(limbs);
}

/// Random odd BigInt with exactly `bits` bits.
template <mp::LimbType Limb>
mp::BigIntT<Limb> random_odd(Xoshiro256& rng, std::size_t bits) {
  auto v = random_value<Limb>(rng, bits);
  if (v.is_even()) v += mp::BigIntT<Limb>(1);
  if (v.bit_length() > bits) v -= mp::BigIntT<Limb>(2);  // carried: step back
  return v;
}

/// gcd via GMP.
template <mp::LimbType Limb>
mp::BigIntT<Limb> gmp_gcd(const mp::BigIntT<Limb>& a, const mp::BigIntT<Limb>& b) {
  Mpz ga = to_mpz(a), gb = to_mpz(b), out;
  mpz_gcd(out.get(), ga.get(), gb.get());
  return from_mpz<Limb>(out);
}

}  // namespace bulkgcd::test
