// Property tests for BlockGrid::block(), the O(1) inverse of the row-major
// upper-triangle enumeration. The closed form goes through a double-precision
// sqrt, which for grids with `groups` near 2^26 produces block counts around
// 2^51 — right where one ulp of error in the discriminant crosses a row
// boundary. The while-loop fixup must absorb that; these tests pin it down at
// the exact row boundaries of huge grids (no memory is allocated: BlockGrid
// is pure geometry).
#include "bulk/block_grid.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "core/rng.hpp"

namespace bulkgcd::bulk {
namespace {

/// First block index of row i: offset(i) = i·groups − i·(i−1)/2, in exact
/// 64-bit arithmetic (the ground truth the double path must reproduce).
std::uint64_t row_offset(const BlockGrid& grid, std::uint64_t i) {
  return i * grid.groups - i * (i - 1) / 2;
}

/// Row i holds groups − i blocks: (i, i) .. (i, groups−1).
std::uint64_t row_length(const BlockGrid& grid, std::uint64_t i) {
  return grid.groups - i;
}

void expect_inverts(const BlockGrid& grid, std::uint64_t index) {
  const auto b = grid.block(std::size_t(index));
  ASSERT_LE(b.i, b.j) << "index " << index;
  ASSERT_LT(b.j, grid.groups) << "index " << index;
  // Round trip: the forward enumeration maps (i, j) back to the index.
  EXPECT_EQ(row_offset(grid, b.i) + (b.j - b.i), index)
      << "groups=" << grid.groups << " index=" << index;
}

TEST(BlockGridInversionTest, ExhaustiveOnSmallGrids) {
  for (const std::size_t groups : {1u, 2u, 3u, 7u, 64u, 257u}) {
    const BlockGrid grid(groups, 1);  // r = 1 → groups == m
    ASSERT_EQ(grid.groups, groups);
    std::uint64_t index = 0;
    for (std::size_t i = 0; i < groups; ++i) {
      for (std::size_t j = i; j < groups; ++j, ++index) {
        const auto b = grid.block(std::size_t(index));
        ASSERT_EQ(b.i, i) << "index " << index;
        ASSERT_EQ(b.j, j) << "index " << index;
      }
    }
    EXPECT_EQ(index, grid.block_count());
  }
}

class HugeGridTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HugeGridTest, RowBoundariesInvertExactly) {
  const std::size_t groups = GetParam();
  const BlockGrid grid(groups, 1);
  ASSERT_EQ(grid.groups, groups);

  // Rows where the discriminant (g+0.5)² − 2t is smallest (deep rows) are
  // the most ulp-sensitive; early rows stress the large-t cancellation.
  const std::uint64_t g = groups;
  const std::uint64_t probe_rows[] = {
      0, 1, 2, 3, g / 3, g / 2, (2 * g) / 3, g - 4, g - 3, g - 2, g - 1};
  for (const std::uint64_t i : probe_rows) {
    if (i >= g) continue;
    const std::uint64_t start = row_offset(grid, i);
    const std::uint64_t len = row_length(grid, i);
    // First, second, last block of the row, plus the last block of the
    // previous row — the four indices a one-ulp sqrt error can misplace.
    expect_inverts(grid, start);
    if (len > 1) expect_inverts(grid, start + 1);
    expect_inverts(grid, start + len - 1);
    if (start > 0) expect_inverts(grid, start - 1);
  }
}

TEST_P(HugeGridTest, RandomIndicesInvert) {
  const std::size_t groups = GetParam();
  const BlockGrid grid(groups, 1);
  const std::uint64_t count = grid.block_count();
  Xoshiro256 rng(0xb10c + groups);
  for (int trial = 0; trial < 2000; ++trial) {
    expect_inverts(grid, rng() % count);
  }
  expect_inverts(grid, 0);
  expect_inverts(grid, count - 1);
}

INSTANTIATE_TEST_SUITE_P(
    GroupsNearTwoPow26, HugeGridTest,
    ::testing::Values(std::size_t(1) << 26,        // 67,108,864 groups
                      (std::size_t(1) << 26) - 1,  // just below the power
                      (std::size_t(1) << 26) + 1,  // just above
                      (std::size_t(1) << 26) + 12345,
                      (std::size_t(1) << 25) + 7,
                      std::size_t(99999999)));

TEST(BlockGridInversionTest, EveryRowBoundaryOnMediumGrid) {
  // Exhaustive boundary sweep at a size where all groups·2 probes are cheap:
  // every row's first and last block must invert.
  const BlockGrid grid(std::size_t(1) << 14, 1);
  for (std::uint64_t i = 0; i < grid.groups; ++i) {
    expect_inverts(grid, row_offset(grid, i));
    expect_inverts(grid, row_offset(grid, i) + row_length(grid, i) - 1);
  }
}

TEST(BlockGridInversionTest, PairsInRangeConsistentWithTotal) {
  const BlockGrid grid(1000, 7);
  EXPECT_EQ(grid.pairs_in_range(0, grid.block_count()), grid.total_pairs());
}

}  // namespace
}  // namespace bulkgcd::bulk
