// TraceRecorder tests: ring-overflow drop accounting, cross-thread flow
// stitching, Chrome/NDJSON export shape, the forced-steal scheduler
// timeline, end-to-end scan/intake wiring, and the headline contract —
// hits, statistics, and telemetry counters are bit-identical with tracing
// on or off, for every backend × worker-count combination. The
// multi-threaded cases double as ThreadSanitizer workloads: the seqlock
// rings must stay race-free against a concurrent exporter.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bulk/allpairs.hpp"
#include "bulk/scan_driver.hpp"
#include "bulk/tile_scheduler.hpp"
#include "core/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "rsa/corpus.hpp"
#include "svc/intake_service.hpp"

namespace bulkgcd::obs {
namespace {

std::uint64_t counter_value(const MetricsRegistry& registry,
                            const std::string& name) {
  for (const auto& c : registry.snapshot().counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

std::size_t count_events(const TraceRecorder::TraceSnapshot& snap,
                         const std::string& name,
                         TraceEventKind kind) {
  std::size_t n = 0;
  for (const auto& ev : snap.events) {
    if (ev.kind == kind && snap.names[ev.name_id] == name) ++n;
  }
  return n;
}

TEST(TraceTest, InternIsStableAndIdsAreDense) {
  TraceRecorder rec(16);
  const auto a = rec.intern("alpha");
  const auto b = rec.intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(rec.intern("alpha"), a);
  EXPECT_EQ(rec.intern("beta"), b);
  const auto snap = rec.snapshot();
  ASSERT_GT(snap.names.size(), std::max(a, b));
  EXPECT_EQ(snap.names[a], "alpha");
  EXPECT_EQ(snap.names[b], "beta");
}

TEST(TraceTest, FlowIdsAreUniqueAndNonzero) {
  TraceRecorder rec(16);
  std::vector<std::uint64_t> ids(64);
  for (auto& id : ids) id = rec.next_flow_id();
  std::sort(ids.begin(), ids.end());
  EXPECT_NE(ids.front(), 0u);
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST(TraceTest, RingOverflowDropsOldestWithExactAccounting) {
  MetricsRegistry registry;
  constexpr std::size_t kCapacity = 8;
  constexpr std::size_t kWritten = 21;
  TraceRecorder rec(kCapacity, &registry);
  const auto id = rec.intern("tick");
  for (std::size_t i = 0; i < kWritten; ++i) rec.instant(id, 0, i);

  EXPECT_EQ(rec.events_recorded(), kWritten);
  EXPECT_EQ(rec.events_dropped(), kWritten - kCapacity);
  EXPECT_EQ(counter_value(registry, "trace_events_recorded_total"), kWritten);
  EXPECT_EQ(counter_value(registry, "trace_events_dropped_total"),
            kWritten - kCapacity);

  // Eviction is oldest-first: exactly the last kCapacity instants survive,
  // in order.
  const auto snap = rec.snapshot();
  ASSERT_EQ(snap.events.size(), kCapacity);
  for (std::size_t k = 0; k < kCapacity; ++k) {
    EXPECT_EQ(snap.events[k].args[0], kWritten - kCapacity + k);
  }
  EXPECT_EQ(snap.events_recorded, kWritten);
  EXPECT_EQ(snap.events_dropped, kWritten - kCapacity);
}

TEST(TraceTest, ExactlyFullRingDropsNothing) {
  TraceRecorder rec(4);
  const auto id = rec.intern("tick");
  for (std::size_t i = 0; i < 4; ++i) rec.instant(id, 0, i);
  EXPECT_EQ(rec.events_dropped(), 0u);
  EXPECT_EQ(rec.snapshot().events.size(), 4u);
}

TEST(TraceTest, CrossThreadFlowStitchesOneChainOverTwoRings) {
  TraceRecorder rec(64);
  const auto produce = rec.intern("produce");
  const auto consume = rec.intern("consume");
  const std::uint64_t flow = rec.next_flow_id();

  rec.set_thread_name("producer");
  rec.flow_begin(produce, flow, /*a0=*/7);
  std::thread consumer([&] {
    rec.set_thread_name("consumer");
    rec.flow_end(consume, flow, /*a0=*/7);
  });
  consumer.join();

  const auto snap = rec.snapshot();
  ASSERT_EQ(snap.events.size(), 2u);
  EXPECT_EQ(snap.events[0].flow, flow);
  EXPECT_EQ(snap.events[1].flow, flow);
  // Two distinct rings — the chain genuinely crosses threads.
  EXPECT_NE(snap.events[0].ring_id, snap.events[1].ring_id);
  EXPECT_EQ(snap.events[0].kind, TraceEventKind::kFlowBegin);
  EXPECT_EQ(snap.events[1].kind, TraceEventKind::kFlowEnd);

  // The Chrome export binds the chain with s/f records sharing the id.
  const std::string json = rec.to_chrome_json();
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"id\":" + std::to_string(flow)), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"producer\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"consumer\""), std::string::npos) << json;
}

TEST(TraceTest, ChromeJsonShapeAndArgLabels) {
  TraceRecorder rec(64);
  const auto steal = rec.intern("steal");
  rec.set_arg_names(steal, "thief", "victim", "tiles");
  rec.set_thread_name("w0");
  rec.instant(steal, 0, 1, 2, 3);
  {
    TraceSpan span(&rec, rec.intern("work"));
    span.set_args(42);
  }
  const std::string json = rec.to_chrome_json();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json;
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"thief\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"victim\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tiles\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":"), std::string::npos) << json;

  const std::string ndjson = rec.to_ndjson();
  // One thread record per ring plus one line per event (trailing newline).
  EXPECT_EQ(std::count(ndjson.begin(), ndjson.end(), '\n'), 3);
  EXPECT_NE(ndjson.find("\"record\":\"thread\""), std::string::npos) << ndjson;
  EXPECT_NE(ndjson.find("\"name\":\"steal\""), std::string::npos) << ndjson;
  EXPECT_NE(ndjson.find("\"ts_ns\":"), std::string::npos) << ndjson;
}

TEST(TraceTest, NullRecorderSpanIsInertAndWriteReportsErrors) {
  {
    TraceSpan span(nullptr, 0);  // must not crash or record anywhere
    span.set_args(1, 2, 3);
    span.set_flow(9);
  }
  TraceRecorder rec(8);
  rec.instant(rec.intern("x"));
  std::string error;
  EXPECT_FALSE(rec.write_chrome_json("/nonexistent-dir/trace.json", &error));
  EXPECT_FALSE(error.empty());

  const auto path = std::filesystem::temp_directory_path() /
                    "bulkgcd_trace_test_export.json";
  ASSERT_TRUE(rec.write_chrome_json(path.string(), &error)) << error;
  EXPECT_GT(std::filesystem::file_size(path), 0u);
  std::filesystem::remove(path);
}

TEST(TraceTest, ParallelForRecordingIsRaceFreeAgainstLiveExport) {
  // The TSan leg's workload: many pool threads recording through the seqlock
  // hot path while this thread snapshots and renders concurrently.
  MetricsRegistry registry;
  TraceRecorder rec(128, &registry);
  const auto id = rec.intern("work");
  constexpr std::size_t kRange = 20000;
  ThreadPool pool(8);
  std::thread exporter([&] {
    for (int k = 0; k < 50; ++k) {
      const std::string json = rec.to_chrome_json();
      EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
      std::this_thread::yield();
    }
  });
  pool.parallel_for(0, kRange, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      TraceSpan span(&rec, id);
      span.set_args(i);
    }
  }, /*chunks=*/64);
  exporter.join();
  EXPECT_EQ(rec.events_recorded(), kRange);
  EXPECT_EQ(counter_value(registry, "trace_events_recorded_total"), kRange);
  // Drop accounting stays exact across all rings.
  EXPECT_EQ(rec.events_recorded() - rec.events_dropped(),
            rec.snapshot().events.size());
}

// ---- scheduler / sweep wiring ---------------------------------------------

TEST(TraceSchedulerTest, ForcedStealRecordsInstantAndTileSpans) {
  // Same skewed-load shape as TileSchedulerTest: worker 0's home tiles are
  // slow, so the other workers must steal — deterministically producing at
  // least one steal instant regardless of host core count.
  ThreadPool pool(4);
  const bulk::TileScheduler sched(64, /*tile_items=*/1, 4);
  TraceRecorder rec(4096);
  const auto stats =
      sched.run(&pool,
                [&](std::size_t, const bulk::TileRange& t) {
                  if (sched.home_worker(t.index) == 0) {
                    std::this_thread::sleep_for(std::chrono::milliseconds(2));
                  }
                },
                &rec);
  ASSERT_GE(stats.steals, 1u);
  const auto snap = rec.snapshot();
  EXPECT_EQ(count_events(snap, "tile", TraceEventKind::kComplete),
            sched.tile_count());
  EXPECT_GE(count_events(snap, "steal", TraceEventKind::kInstant),
            stats.steals);
  EXPECT_EQ(count_events(snap, "worker_done", TraceEventKind::kInstant), 4u);
  // Worker tracks were named for the export.
  std::size_t named = 0;
  for (const auto& t : snap.threads) {
    if (t.name.rfind("worker-", 0) == 0) ++named;
  }
  EXPECT_GE(named, 2u);
}

TEST(TraceSchedulerTest, SerialPathRecordsTileSpansToo) {
  const bulk::TileScheduler sched(8, 1, 1);
  TraceRecorder rec(64);
  sched.run(nullptr, [&](std::size_t, const bulk::TileRange&) {}, &rec);
  const auto snap = rec.snapshot();
  EXPECT_EQ(count_events(snap, "tile", TraceEventKind::kComplete), 8u);
  EXPECT_EQ(count_events(snap, "worker_done", TraceEventKind::kInstant), 1u);
}

rsa::WeakCorpus trace_corpus() {
  rsa::CorpusSpec spec;
  spec.count = 64;
  spec.modulus_bits = 128;
  spec.weak_pairs = 3;
  spec.seed = 4242;
  return rsa::generate_corpus(spec);
}

void expect_same_result(const bulk::AllPairsResult& a,
                        const bulk::AllPairsResult& b) {
  ASSERT_EQ(a.hits.size(), b.hits.size());
  for (std::size_t k = 0; k < a.hits.size(); ++k) {
    EXPECT_EQ(a.hits[k].i, b.hits[k].i);
    EXPECT_EQ(a.hits[k].j, b.hits[k].j);
    EXPECT_EQ(a.hits[k].factor, b.hits[k].factor);
    EXPECT_EQ(a.hits[k].full_modulus, b.hits[k].full_modulus);
  }
  EXPECT_EQ(a.pairs_tested, b.pairs_tested);
  EXPECT_EQ(a.blocks_run, b.blocks_run);
  EXPECT_EQ(a.simt.rounds, b.simt.rounds);
  EXPECT_EQ(a.simt.lane_iterations, b.simt.lane_iterations);
  EXPECT_EQ(a.simt.gcd.iterations, b.simt.gcd.iterations);
  EXPECT_EQ(a.scalar.iterations, b.scalar.iterations);
}

std::map<std::string, std::uint64_t> nontrace_counters(
    const MetricsRegistry& registry) {
  std::map<std::string, std::uint64_t> out;
  for (const auto& c : registry.snapshot().counters) {
    // trace_* counters exist only on the traced run, by design.
    if (c.name.rfind("trace_", 0) == 0) continue;
    out[c.name] = c.value;
  }
  return out;
}

TEST(TraceSweepTest, ResultsBitIdenticalTracingOnOffAcrossBackends) {
  const rsa::WeakCorpus corpus = trace_corpus();
  for (const bulk::BulkBackend backend :
       {bulk::BulkBackend::kLockstep, bulk::BulkBackend::kStaged,
        bulk::BulkBackend::kVector}) {
    for (const std::size_t workers : {1u, 4u}) {
      SCOPED_TRACE(std::string("backend=") + to_string(backend) +
                   " workers=" + std::to_string(workers));
      bulk::AllPairsConfig off_cfg;
      off_cfg.group_size = 16;
      off_cfg.backend = backend;
      off_cfg.staged = backend != bulk::BulkBackend::kLockstep;
      off_cfg.pool_threads = workers;
      MetricsRegistry off_registry;
      off_cfg.metrics = &off_registry;
      const auto off = bulk::all_pairs_gcd(corpus.moduli, off_cfg);
      ASSERT_GE(off.hits.size(), 3u);

      bulk::AllPairsConfig on_cfg = off_cfg;
      MetricsRegistry on_registry;
      on_cfg.metrics = &on_registry;
      TraceRecorder rec(1 << 16, &on_registry);
      on_cfg.trace = &rec;
      const auto on = bulk::all_pairs_gcd(corpus.moduli, on_cfg);

      expect_same_result(off, on);
      EXPECT_EQ(nontrace_counters(off_registry),
                nontrace_counters(on_registry));
      // The traced run actually recorded the sweep's phase spans.
      const auto snap = rec.snapshot();
      EXPECT_GT(count_events(snap, "tile", TraceEventKind::kComplete), 0u);
      EXPECT_GT(count_events(snap, "lane_exec", TraceEventKind::kComplete),
                0u);
    }
  }
}

// ---- resumable scan wiring ------------------------------------------------

class TraceScanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("bulkgcd_trace_scan_" +
             std::to_string(
                 std::chrono::steady_clock::now().time_since_epoch().count()) +
             ".ckpt");
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(TraceScanTest, DriverRecordsChunksCommitsAndFsyncs) {
  const rsa::WeakCorpus corpus = trace_corpus();

  bulk::ScanConfig off_cfg;
  off_cfg.chunk_blocks = 2;
  off_cfg.pairs.group_size = 16;
  off_cfg.pairs.pool_threads = 4;
  const auto off = bulk::run_resumable_scan(corpus.moduli, off_cfg);

  bulk::ScanConfig on_cfg = off_cfg;
  on_cfg.checkpoint = path_;
  TraceRecorder rec(1 << 16);
  on_cfg.pairs.trace = &rec;
  const auto on = bulk::run_resumable_scan(corpus.moduli, on_cfg);

  // Tracing does not perturb the scan's results.
  expect_same_result(off.result, on.result);
  ASSERT_TRUE(on.complete);

  const auto snap = rec.snapshot();
  EXPECT_EQ(count_events(snap, "chunk", TraceEventKind::kComplete),
            on.chunks_total);
  EXPECT_EQ(count_events(snap, "commit", TraceEventKind::kInstant),
            on.chunks_total);
  EXPECT_GT(count_events(snap, "journal_fsync", TraceEventKind::kComplete),
            0u);
  bool driver_named = false;
  for (const auto& t : snap.threads) driver_named |= t.name == "driver";
  EXPECT_TRUE(driver_named);
}

// ---- intake flow wiring ---------------------------------------------------

TEST(TraceIntakeTest, ArrivalFlowChainSpansSubmitterAndProbeWorker) {
  rsa::CorpusSpec spec;
  spec.count = 10;
  spec.modulus_bits = 96;
  spec.weak_pairs = 2;
  spec.seed = 515;
  const rsa::WeakCorpus corpus = rsa::generate_corpus(spec);

  MetricsRegistry registry;
  TraceRecorder rec(4096, &registry);
  svc::IntakeServiceConfig config;
  config.probe.pool_threads = 1;
  config.probe.metrics = &registry;
  config.probe.trace = &rec;
  svc::IntakeService service({}, std::move(config));

  std::vector<std::uint64_t> flows;
  for (const auto& n : corpus.moduli) {
    const std::uint64_t flow = rec.next_flow_id();
    ASSERT_EQ(service.submit(n, flow), svc::Admission::kAdmitted);
    flows.push_back(flow);
  }
  service.stop();

  const auto snap = rec.snapshot();
  // Every arrival's chain reaches the probe worker: a queued step and a
  // fold end carrying the flow minted at submission time.
  for (const std::uint64_t flow : flows) {
    bool queued = false, folded = false, probed = false;
    for (const auto& ev : snap.events) {
      if (ev.flow != flow) continue;
      const std::string& name = snap.names[ev.name_id];
      queued |= name == "queued" && ev.kind == TraceEventKind::kFlowStep;
      folded |= name == "fold" && ev.kind == TraceEventKind::kFlowEnd;
      probed |= name == "probe_key" && ev.kind == TraceEventKind::kComplete;
    }
    EXPECT_TRUE(queued) << "flow " << flow;
    EXPECT_TRUE(folded) << "flow " << flow;
    EXPECT_TRUE(probed) << "flow " << flow;
  }
  bool worker_named = false;
  for (const auto& t : snap.threads) {
    worker_named |= t.name == "intake-probe";
  }
  EXPECT_TRUE(worker_named);
}

TEST(TraceIntakeTest, TracedAndUntracedStreamsFoldIdenticalCorpora) {
  rsa::CorpusSpec spec;
  spec.count = 24;
  spec.modulus_bits = 96;
  spec.weak_pairs = 2;
  spec.seed = 909;
  const rsa::WeakCorpus corpus = rsa::generate_corpus(spec);

  auto run = [&](TraceRecorder* rec) {
    svc::IntakeServiceConfig config;
    config.probe.pool_threads = 1;
    config.probe.trace = rec;
    svc::IntakeService service({}, std::move(config));
    for (const auto& n : corpus.moduli) {
      service.submit(n, rec ? rec->next_flow_id() : 0);
    }
    service.stop();
    return std::pair(service.hits(), service.stats());
  };

  TraceRecorder rec(1 << 14);
  const auto [off_hits, off_stats] = run(nullptr);
  const auto [on_hits, on_stats] = run(&rec);

  ASSERT_EQ(off_hits.size(), on_hits.size());
  ASSERT_GE(off_hits.size(), 2u);
  for (std::size_t k = 0; k < off_hits.size(); ++k) {
    EXPECT_EQ(off_hits[k].i, on_hits[k].i);
    EXPECT_EQ(off_hits[k].j, on_hits[k].j);
    EXPECT_EQ(off_hits[k].factor, on_hits[k].factor);
  }
  EXPECT_EQ(off_stats.probed, on_stats.probed);
  EXPECT_EQ(off_stats.pairs, on_stats.pairs);
  EXPECT_EQ(off_stats.hits, on_stats.hits);
}

}  // namespace
}  // namespace bulkgcd::obs
