# Empty compiler generated dependencies file for allpairs_test.
# This may be replaced when dependencies are built.
