# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/mp_span_ops_test[1]_include.cmake")
include("/root/repo/build/tests/mp_bigint_test[1]_include.cmake")
include("/root/repo/build/tests/gcd_approx_test[1]_include.cmake")
include("/root/repo/build/tests/gcd_kernels_test[1]_include.cmake")
include("/root/repo/build/tests/gcd_algorithms_test[1]_include.cmake")
include("/root/repo/build/tests/gcd_reference_test[1]_include.cmake")
include("/root/repo/build/tests/gcd_statistics_test[1]_include.cmake")
include("/root/repo/build/tests/rsa_test[1]_include.cmake")
include("/root/repo/build/tests/montgomery_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/umm_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/simt_test[1]_include.cmake")
include("/root/repo/build/tests/layout_test[1]_include.cmake")
include("/root/repo/build/tests/allpairs_test[1]_include.cmake")
include("/root/repo/build/tests/scan_driver_test[1]_include.cmake")
include("/root/repo/build/tests/batchgcd_test[1]_include.cmake")
include("/root/repo/build/tests/lehmer_test[1]_include.cmake")
include("/root/repo/build/tests/keystore_test[1]_include.cmake")
include("/root/repo/build/tests/differential_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/mp_stress_test[1]_include.cmake")
include("/root/repo/build/tests/pem_test[1]_include.cmake")
include("/root/repo/build/tests/reduction_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
