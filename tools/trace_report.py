#!/usr/bin/env python3
"""Summarize a bulkgcd pipeline trace (obs/trace.hpp exports).

Stdlib-only on purpose (CI runners need no installs). Accepts either export
format the recorder writes:

  * Chrome trace_event JSON ({"traceEvents": [...]}, what --trace-out and
    GET /trace produce) — also loadable in Perfetto / chrome://tracing,
  * NDJSON (one self-contained object per line, TraceRecorder::to_ndjson).

Reported sections:

  phases        per-event-name totals over complete ("X") spans: count,
                total/mean/max duration — where the scan's wall-clock went
                (chunk vs panel_load vs lane_exec vs journal_fsync, ...)
  workers       per-thread-track utilization: merged busy time of each
                track's spans over the track's active window, plus tiles
                executed and steals initiated — who idled, who carried
  steals        the work-stealing timeline: every steal instant with its
                timestamp, thief, victim, and tile count
  arrivals      end-to-end flow critical paths (intake arrivals): per-flow
                latency from first to last event carrying the flow id, with
                count and p50/p90/p99, plus the slowest chains spelled out
                step by step

Usage:
    python3 tools/trace_report.py trace.json [more-traces ...]

Exits 0 when every input parses as a trace with at least one event,
1 otherwise.
"""

import argparse
import json
import signal
import sys

# Dying quietly on a closed pipe (`trace_report.py ... | head`) beats a
# BrokenPipeError traceback.
signal.signal(signal.SIGPIPE, signal.SIG_DFL)


def load_events(path):
    """Return a list of normalized events: dicts with name, ph, tid, ts (us),
    dur (us), flow (int or None), args (dict). Accepts Chrome JSON or NDJSON.
    """
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    text = text.strip()
    if not text:
        raise ValueError("empty trace file")
    if text.startswith("{") and '"traceEvents"' in text[:200]:
        doc = json.loads(text)
        raw = doc.get("traceEvents", [])
        events = []
        for ev in raw:
            events.append(
                {
                    "name": ev.get("name", ""),
                    "ph": ev.get("ph", ""),
                    "cat": ev.get("cat", ""),
                    "tid": ev.get("tid", 0),
                    "ts": float(ev.get("ts", 0.0)),
                    "dur": float(ev.get("dur", 0.0)),
                    "flow": ev.get("id"),
                    "args": ev.get("args", {}) or {},
                }
            )
        return events
    # NDJSON: one object per line, ts_ns/dur_ns keys. Thread records become
    # synthetic "M" metadata events so the report shows track names.
    events = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        ev = json.loads(line)
        if ev.get("record") == "thread":
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "cat": "",
                    "tid": ev.get("tid", 0),
                    "ts": 0.0,
                    "dur": 0.0,
                    "flow": None,
                    "args": {"name": ev.get("name", "")},
                }
            )
            continue
        args = dict(ev.get("args", {}) or {})
        flow = args.pop("flow", None)
        events.append(
            {
                "name": ev.get("name", ""),
                "ph": ev.get("ph", ""),
                "cat": "flow" if ev.get("ph") in ("s", "t", "f") else "",
                "tid": ev.get("tid", 0),
                "ts": float(ev.get("ts_ns", 0)) / 1e3,
                "dur": float(ev.get("dur_ns", 0)) / 1e3,
                "flow": flow,
                "args": args,
            }
        )
    return events


def thread_names(events):
    names = {}
    for ev in events:
        if ev["ph"] == "M" and ev["name"] == "thread_name":
            names[ev["tid"]] = ev["args"].get("name", "")
    return names


def fmt_us(us):
    if us >= 1e6:
        return "%.3fs" % (us / 1e6)
    if us >= 1e3:
        return "%.3fms" % (us / 1e3)
    return "%.1fus" % us


def quantile(sorted_values, q):
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[idx]


def merged_busy(intervals):
    """Total covered time of possibly-nested/overlapping [start, end) spans —
    nested spans (lane_exec inside tile) must not double-count busy time."""
    total = 0.0
    end = -1.0
    for start, stop in sorted(intervals):
        if start > end:
            total += stop - start
            end = stop
        elif stop > end:
            total += stop - end
            end = stop
    return total


def report_phases(events, out):
    spans = {}
    for ev in events:
        if ev["ph"] != "X":
            continue
        entry = spans.setdefault(ev["name"], [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += ev["dur"]
        entry[2] = max(entry[2], ev["dur"])
    if not spans:
        out.append("phases: no complete spans recorded")
        return
    out.append("phases:")
    out.append(
        "  %-16s %8s %12s %12s %12s" % ("name", "count", "total", "mean", "max")
    )
    for name, (count, total, peak) in sorted(
        spans.items(), key=lambda kv: -kv[1][1]
    ):
        out.append(
            "  %-16s %8d %12s %12s %12s"
            % (name, count, fmt_us(total), fmt_us(total / count), fmt_us(peak))
        )


def report_workers(events, out):
    names = thread_names(events)
    tracks = {}
    for ev in events:
        if ev["ph"] == "M":
            continue
        t = tracks.setdefault(
            ev["tid"], {"spans": [], "lo": None, "hi": None, "tiles": 0,
                        "steals": 0}
        )
        stop = ev["ts"] + ev["dur"]
        t["lo"] = ev["ts"] if t["lo"] is None else min(t["lo"], ev["ts"])
        t["hi"] = stop if t["hi"] is None else max(t["hi"], stop)
        if ev["ph"] == "X":
            t["spans"].append((ev["ts"], stop))
            if ev["name"] == "tile":
                t["tiles"] += 1
        elif ev["ph"] == "i" and ev["name"] == "steal":
            t["steals"] += 1
    if not tracks:
        out.append("workers: no events recorded")
        return
    out.append("workers:")
    out.append(
        "  %-16s %10s %10s %6s %6s %6s"
        % ("track", "busy", "window", "util", "tiles", "steals")
    )
    for tid in sorted(tracks):
        t = tracks[tid]
        window = (t["hi"] or 0.0) - (t["lo"] or 0.0)
        busy = merged_busy(t["spans"])
        util = 100.0 * busy / window if window > 0 else 0.0
        label = names.get(tid, "") or ("tid-%s" % tid)
        out.append(
            "  %-16s %10s %10s %5.1f%% %6d %6d"
            % (label, fmt_us(busy), fmt_us(window), util, t["tiles"],
               t["steals"])
        )


def report_steals(events, out):
    names = thread_names(events)
    steals = [
        ev for ev in events if ev["ph"] == "i" and ev["name"] == "steal"
    ]
    if not steals:
        out.append("steals: none recorded")
        return
    out.append("steals:")
    for ev in sorted(steals, key=lambda e: e["ts"]):
        args = ev["args"]
        thief = names.get(ev["tid"], "") or ("tid-%s" % ev["tid"])
        out.append(
            "  %10s  %s stole %s tile(s) from worker %s"
            % (
                fmt_us(ev["ts"]),
                thief,
                args.get("tiles", "?"),
                args.get("victim", "?"),
            )
        )


def report_arrivals(events, out):
    flows = {}
    for ev in events:
        if ev["flow"] is None:
            continue
        # Both the s/t/f flow companions and spans tagged with the flow count
        # toward the chain's extent.
        flows.setdefault(ev["flow"], []).append(ev)
    if not flows:
        out.append("arrivals: no flows recorded")
        return
    latencies = []
    chains = []
    for flow, chain in flows.items():
        chain.sort(key=lambda e: e["ts"])
        start = chain[0]["ts"]
        stop = max(e["ts"] + e["dur"] for e in chain)
        latencies.append(stop - start)
        chains.append((stop - start, flow, chain))
    latencies.sort()
    out.append(
        "arrivals: %d flows, latency p50 %s  p90 %s  p99 %s  max %s"
        % (
            len(latencies),
            fmt_us(quantile(latencies, 0.50)),
            fmt_us(quantile(latencies, 0.90)),
            fmt_us(quantile(latencies, 0.99)),
            fmt_us(latencies[-1]),
        )
    )
    chains.sort(key=lambda c: -c[0])
    for latency, flow, chain in chains[:3]:
        steps = []
        seen = set()
        for ev in chain:
            if ev["cat"] == "flow" and ev["name"] in seen:
                continue  # instant + companion pair: name each step once
            seen.add(ev["name"])
            steps.append("%s@%s" % (ev["name"], fmt_us(ev["ts"] - chain[0]["ts"])))
        out.append("  flow %s (%s): %s" % (flow, fmt_us(latency), " -> ".join(steps)))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("traces", nargs="+", help="trace files (Chrome JSON or NDJSON)")
    args = parser.parse_args()

    status = 0
    for path in args.traces:
        out = ["== %s ==" % path]
        try:
            events = load_events(path)
        except (OSError, ValueError, json.JSONDecodeError) as err:
            print("%s: unreadable trace: %s" % (path, err), file=sys.stderr)
            status = 1
            continue
        if not any(ev["ph"] != "M" for ev in events):
            print("%s: no events recorded" % path, file=sys.stderr)
            status = 1
            continue
        report_phases(events, out)
        report_workers(events, out)
        report_steals(events, out)
        report_arrivals(events, out)
        print("\n".join(out))
    return status


if __name__ == "__main__":
    sys.exit(main())
