#!/usr/bin/env python3
"""Bench trend guard: compare fresh BENCH_*.json files against baselines.

Usage:
    tools/compare_bench.py BASELINE.json FRESH.json [BASELINE2.json FRESH2.json ...]
                           [--threshold PCT]

Positional arguments are (baseline, fresh) pairs — one pair per bench
artifact (BENCH_allpairs.json, BENCH_batchgcd.json, ...). For every sample
row present in both files of a pair (an object carrying a
"pairs_per_second" field — unstaged / staged / vector, nested rows such as
scaling.workers_4 or curve.bits512_m32.batch), prints a GitHub Actions
`::warning` annotation when the fresh throughput is more than --threshold
percent (default 10) below the baseline. Rows present in only one file
(added or removed across the change, e.g. a new sweep point) get a
`::notice` and are skipped — an asymmetric row set is expected churn, not
an error. A baseline file that does not exist yet (first run of a new
bench) is likewise a `::notice`, never a crash. Shared CI runners are far
too noisy for a hard perf gate, so this is advisory only: the script
always exits 0. Stdlib only — no third-party imports.
"""

import argparse
import json
import sys


def sample_rows(doc, prefix=""):
    """Yield (name, row) for every throughput sample in a bench document.

    Recurses into nested objects (the "scaling" / "curve" blocks) with
    dotted names: scaling.workers_4, curve.bits512_m32.batch, ...
    """
    for key, value in doc.items():
        if not isinstance(value, dict):
            continue
        name = f"{prefix}{key}"
        if "pairs_per_second" in value:
            yield name, value
        else:
            yield from sample_rows(value, prefix=f"{name}.")


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"::notice ::compare_bench: cannot read {path}: {exc}")
        return None


def compare_pair(baseline_path, fresh_path, threshold):
    """Trend one (baseline, fresh) file pair; returns the regression count."""
    base = load(baseline_path)
    fresh = load(fresh_path)
    if base is None or fresh is None:
        return 0  # missing/garbled input is not a CI failure

    label = fresh.get("benchmark", fresh_path)
    base_rows = dict(sample_rows(base))
    fresh_rows = dict(sample_rows(fresh))
    # Asymmetric row sets are ordinary churn (a sweep point added here, an
    # old row retired there) — announce them instead of trending or crashing.
    for name in sorted(base_rows.keys() - fresh_rows.keys()):
        print(f"::notice ::compare_bench: baseline row '{name}' missing from "
              f"the fresh run — skipped")
    for name in sorted(fresh_rows.keys() - base_rows.keys()):
        print(f"::notice ::compare_bench: fresh row '{name}' has no baseline "
              f"yet — skipped")
    regressions = 0
    for name, brow in base_rows.items():
        frow = fresh_rows.get(name)
        if frow is None:
            continue  # announced above — nothing to trend
        bpps = brow.get("pairs_per_second") or 0.0
        fpps = frow.get("pairs_per_second") or 0.0
        if bpps <= 0.0:
            continue
        delta_pct = (fpps / bpps - 1.0) * 100.0
        print(f"{name}: baseline {bpps:,.0f} pairs/s, fresh {fpps:,.0f} "
              f"pairs/s ({delta_pct:+.1f}%)")
        if delta_pct < -threshold:
            regressions += 1
            print(f"::warning ::{label} '{name}' throughput down "
                  f"{-delta_pct:.1f}% vs baseline "
                  f"({bpps:,.0f} -> {fpps:,.0f} pairs/s); advisory only — "
                  f"shared runners are noisy, re-run before reading much "
                  f"into it")
    return regressions


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+",
                        help="alternating baseline/fresh JSON paths")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="regression percentage that triggers a warning")
    args = parser.parse_args(argv)

    if len(args.files) % 2 != 0:
        print("::error ::compare_bench: expected an even number of paths "
              "(baseline fresh [baseline fresh ...])")
        return 2

    regressions = 0
    for i in range(0, len(args.files), 2):
        regressions += compare_pair(args.files[i], args.files[i + 1],
                                    args.threshold)
    if regressions == 0:
        print(f"no sample regressed more than {args.threshold:.0f}%")
    return 0  # advisory guard: never fail the build on throughput


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
