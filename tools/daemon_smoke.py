#!/usr/bin/env python3
"""End-to-end smoke test for the keyintake daemon.

Starts the daemon on ephemeral ports, streams a planted shared-prime key set
interleaved with garbage records over TCP, and asserts:

  * per-record status lines (admitted / reject / duplicate) come back in order
  * the planted shared prime is reported as a hit, asynchronously, on the
    same connection
  * GET /metrics serves live intake_* counters matching the stream
  * SIGTERM shuts the daemon down cleanly (exit 0) and the final summary
    names the hit

Usage: daemon_smoke.py <daemon-binary> [<ndjson-out>]

The NDJSON telemetry file (default intake.ndjson) is left behind for
tools/validate_metrics.py.
"""
import re
import signal
import socket
import subprocess
import sys
import time
import urllib.request

# Planted corpus: 0xbcbf = 211*229 and 0xcee1 = 211*251 share the prime
# 211 = 0xd3; 0xd987 = 233*239 is a clean bystander.
RECORDS = [
    ("bcbf", "admitted"),
    ("not hex at all", "reject"),
    ("cee1", "admitted"),          # completes the weak pair -> hit 0 1 d3
    ("bcbf", "duplicate"),
    ("0xD987", "admitted"),
    ("-----BEGIN PUBLIC KEY-----", None),   # truncated PEM: rejected at END
    ("AAAA", None),
    ("-----END PUBLIC KEY-----", "reject"),
]
EXPECTED_STATUSES = [want for _, want in RECORDS if want is not None]
EXPECTED_HIT = "hit 0 1 d3"


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) < 2:
        fail(__doc__)
    daemon_bin = sys.argv[1]
    ndjson = sys.argv[2] if len(sys.argv) > 2 else "intake.ndjson"

    daemon = subprocess.Popen(
        [daemon_bin, "--port", "0", "--metrics-port", "0",
         "--metrics-out", ndjson, "--metrics-interval", "0.2",
         "--threads", "1"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    try:
        intake_port = metrics_port = None
        deadline = time.time() + 10
        while time.time() < deadline:
            line = daemon.stdout.readline()
            if not line:
                fail("daemon exited before listening")
            print(f"[daemon] {line}", end="")
            if m := re.search(r"metrics on 127\.0\.0\.1:(\d+)", line):
                metrics_port = int(m.group(1))
            if m := re.search(r"listening on 127\.0\.0\.1:(\d+)", line):
                intake_port = int(m.group(1))
                break
        if intake_port is None or metrics_port is None:
            fail("did not see both port announcements")

        with socket.create_connection(("127.0.0.1", intake_port)) as sock:
            for record, _ in RECORDS:
                sock.sendall(record.encode() + b"\n")
            # Collect status lines + the async hit line.
            sock.settimeout(1.0)
            responses = []
            deadline = time.time() + 15
            while time.time() < deadline:
                statuses = [r for r in responses if not r.startswith("hit ")]
                hits = [r for r in responses if r.startswith("hit ")]
                if len(statuses) >= len(EXPECTED_STATUSES) and hits:
                    break
                try:
                    chunk = sock.recv(4096)
                except socket.timeout:
                    continue
                if not chunk:
                    break
                responses.extend(chunk.decode().splitlines())
            print("[client] " + " | ".join(responses))
            statuses = [r for r in responses if not r.startswith("hit ")]
            hits = [r for r in responses if r.startswith("hit ")]
            for k, want in enumerate(EXPECTED_STATUSES):
                if k >= len(statuses) or not statuses[k].startswith(want):
                    fail(f"record {k}: wanted '{want}', got "
                         f"{statuses[k] if k < len(statuses) else '<none>'}")
            if EXPECTED_HIT not in hits:
                fail(f"expected '{EXPECTED_HIT}' push, got {hits}")

            scrape = urllib.request.urlopen(
                f"http://127.0.0.1:{metrics_port}/metrics", timeout=5
            ).read().decode()
            for needle in ("intake_submitted_total 4",
                           "intake_admitted_total 3",
                           "intake_duplicates_total 1",
                           "intake_hits_total 1",
                           "intake_shed_total 0"):
                if needle not in scrape:
                    fail(f"/metrics missing '{needle}'")
            health = urllib.request.urlopen(
                f"http://127.0.0.1:{metrics_port}/healthz", timeout=5
            ).read().decode()
            if "ok" not in health:
                fail("/healthz did not answer ok")

        daemon.send_signal(signal.SIGTERM)
        out, _ = daemon.communicate(timeout=20)
        print(out, end="")
        if daemon.returncode != 0:
            fail(f"daemon exited {daemon.returncode}, want 0")
        if "keys 0 and 1 share a 8-bit prime d3" not in out:
            fail("final summary did not name the planted hit")
        if "intake summary: 4 submitted, 3 admitted, 1 duplicates" not in out:
            fail("final summary totals wrong")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()

    print("daemon smoke OK")


if __name__ == "__main__":
    main()
