#!/usr/bin/env python3
"""End-to-end smoke test for the keyintake daemon.

Three legs, each against a fresh daemon on ephemeral ports:

serial leg
  Streams a planted shared-prime key set interleaved with garbage records
  over one TCP connection and asserts per-record status lines come back in
  order, the shared prime is pushed as an async hit on the same connection,
  GET /metrics serves live intake_* counters matching the stream, and
  SIGTERM shuts down cleanly with a summary naming the hit.

concurrency leg
  Opens 4 clients and holds them all open at once — each must get its
  status line while the previous ones are still connected (a serial accept
  loop would head-of-line-block every client after the first). Then fills
  the connection queue and asserts the overflow client is shed with a
  `busy` line, and that /metrics shows intake_conn_active / accepted /
  shed matching.

journal leg
  Streams half the planted set with --journal, SIGKILLs the daemon (no
  graceful drain), appends garbage to tear the journal tail, restarts on
  the same journal, and asserts the replay banner, duplicate detection
  against replayed keys, the restored hit in the final summary (equal to
  what a one-shot sweep of the full set finds), and intake_restored_total
  on /metrics.

trace leg
  Streams the planted weak pair with --trace-out and --journal, SIGTERMs,
  and asserts the exported Chrome trace stitches each arrival's full flow
  chain — parse -> journal_append -> queued -> probe_key -> fold, all
  carrying one flow id — across the connection thread and the probe
  worker (asserted by presence, not timestamp order: the queued step is
  recorded on the submitter after try_push, so a fast worker can fold
  first).

Usage: daemon_smoke.py <daemon-binary> [<ndjson-out>]

The NDJSON telemetry file (default intake.ndjson) is left behind for
tools/validate_metrics.py.
"""
import os
import re
import signal
import socket
import subprocess
import sys
import tempfile
import time
import urllib.request

# Planted corpus: 0xbcbf = 211*229 and 0xcee1 = 211*251 share the prime
# 211 = 0xd3; 0xd987 = 233*239 is a clean bystander.
RECORDS = [
    ("bcbf", "admitted"),
    ("not hex at all", "reject"),
    ("cee1", "admitted"),          # completes the weak pair -> hit 0 1 d3
    ("bcbf", "duplicate"),
    ("0xD987", "admitted"),
    ("-----BEGIN PUBLIC KEY-----", None),   # truncated PEM: rejected at END
    ("AAAA", None),
    ("-----END PUBLIC KEY-----", "reject"),
]
EXPECTED_STATUSES = [want for _, want in RECORDS if want is not None]
EXPECTED_HIT = "hit 0 1 d3"
# Pairwise-coprime bystanders for the concurrency leg (no hits expected).
COPRIME_KEYS = ["010807", "011cc3", "01300d", "0143e7"]


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def start_daemon(daemon_bin, extra_args):
    """Start the daemon on ephemeral ports; return (proc, intake, metrics)."""
    daemon = subprocess.Popen(
        [daemon_bin, "--port", "0", "--metrics-port", "0"] + extra_args,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    intake_port = metrics_port = None
    banner = []
    deadline = time.time() + 10
    while time.time() < deadline:
        line = daemon.stdout.readline()
        if not line:
            fail("daemon exited before listening")
        print(f"[daemon] {line}", end="")
        banner.append(line)
        if m := re.search(r"metrics on 127\.0\.0\.1:(\d+)", line):
            metrics_port = int(m.group(1))
        if m := re.search(r"listening on 127\.0\.0\.1:(\d+)", line):
            intake_port = int(m.group(1))
            break
    if intake_port is None or metrics_port is None:
        fail("did not see both port announcements")
    return daemon, intake_port, metrics_port, banner


def recv_lines(sock, count, deadline_s=15):
    """Read exactly `count` newline-terminated lines from sock."""
    sock.settimeout(1.0)
    buf = ""
    deadline = time.time() + deadline_s
    while buf.count("\n") < count and time.time() < deadline:
        try:
            chunk = sock.recv(4096)
        except socket.timeout:
            continue
        if not chunk:
            break
        buf += chunk.decode()
    lines = buf.splitlines()
    if len(lines) < count:
        fail(f"wanted {count} response lines, got {lines}")
    return lines


def scrape(metrics_port):
    return urllib.request.urlopen(
        f"http://127.0.0.1:{metrics_port}/metrics", timeout=5).read().decode()


def expect_in(haystack, needles, where):
    for needle in needles:
        if needle not in haystack:
            fail(f"{where} missing '{needle}'")


def terminate(daemon, timeout=20):
    daemon.send_signal(signal.SIGTERM)
    out, _ = daemon.communicate(timeout=timeout)
    print(out, end="")
    if daemon.returncode != 0:
        fail(f"daemon exited {daemon.returncode}, want 0")
    return out


def serial_leg(daemon_bin, ndjson):
    daemon, intake_port, metrics_port, _ = start_daemon(
        daemon_bin, ["--metrics-out", ndjson, "--metrics-interval", "0.2",
                     "--threads", "1"])
    try:
        with socket.create_connection(("127.0.0.1", intake_port)) as sock:
            for record, _ in RECORDS:
                sock.sendall(record.encode() + b"\n")
            # Collect status lines + the async hit line.
            sock.settimeout(1.0)
            responses = []
            deadline = time.time() + 15
            while time.time() < deadline:
                statuses = [r for r in responses if not r.startswith("hit ")]
                hits = [r for r in responses if r.startswith("hit ")]
                if len(statuses) >= len(EXPECTED_STATUSES) and hits:
                    break
                try:
                    chunk = sock.recv(4096)
                except socket.timeout:
                    continue
                if not chunk:
                    break
                responses.extend(chunk.decode().splitlines())
            print("[client] " + " | ".join(responses))
            statuses = [r for r in responses if not r.startswith("hit ")]
            hits = [r for r in responses if r.startswith("hit ")]
            for k, want in enumerate(EXPECTED_STATUSES):
                if k >= len(statuses) or not statuses[k].startswith(want):
                    fail(f"record {k}: wanted '{want}', got "
                         f"{statuses[k] if k < len(statuses) else '<none>'}")
            if EXPECTED_HIT not in hits:
                fail(f"expected '{EXPECTED_HIT}' push, got {hits}")

            expect_in(scrape(metrics_port),
                      ("intake_submitted_total 4",
                       "intake_admitted_total 3",
                       "intake_duplicates_total 1",
                       "intake_hits_total 1",
                       "intake_shed_total 0",
                       "intake_closed_total 0"), "/metrics")
            health = urllib.request.urlopen(
                f"http://127.0.0.1:{metrics_port}/healthz", timeout=5
            ).read().decode()
            if "ok" not in health:
                fail("/healthz did not answer ok")

        out = terminate(daemon)
        if "keys 0 and 1 share a 8-bit prime d3" not in out:
            fail("final summary did not name the planted hit")
        if ("intake summary: 4 submitted, 3 admitted, 1 duplicates, "
                "0 shed, 0 closed") not in out:
            fail("final summary totals wrong")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()
    print("serial leg OK")


def concurrency_leg(daemon_bin):
    # 4 connection workers: 4 clients served at once, 4 more queue, the 9th
    # is shed with `busy`.
    daemon, intake_port, metrics_port, _ = start_daemon(
        daemon_bin, ["--max-conns", "4", "--threads", "1"])
    held, queued = [], []
    try:
        # Open the clients one at a time and KEEP ALL OF THEM OPEN. Each
        # must be answered while every earlier client still holds its
        # connection — with the old serial accept loop, client 2 would
        # never get a response until client 1 disconnected.
        for k, key in enumerate(COPRIME_KEYS):
            sock = socket.create_connection(("127.0.0.1", intake_port))
            held.append(sock)
            sock.sendall(key.encode() + b"\n")
            line = recv_lines(sock, 1)[0]
            if line != "admitted":
                fail(f"concurrent client {k}: wanted 'admitted', got {line!r}")
        print(f"[client] {len(held)} clients answered while all held open")

        live = scrape(metrics_port)
        expect_in(live, ("intake_conn_active 4",
                         "intake_conn_accepted_total 4",
                         "intake_conn_shed_total 0"), "/metrics (4 held)")

        # Fill the pending-connection queue (capacity == max-conns), then
        # one more: it must get the one-line `busy` shed, not a hang.
        for _ in range(4):
            queued.append(socket.create_connection(("127.0.0.1",
                                                    intake_port)))
        deadline = time.time() + 10
        busy = None
        while time.time() < deadline and busy is None:
            with socket.create_connection(("127.0.0.1", intake_port)) as sock:
                sock.settimeout(2.0)
                try:
                    chunk = sock.recv(64)
                except socket.timeout:
                    continue
                if chunk:
                    busy = chunk.decode().strip()
        if busy != "busy":
            fail(f"overflow client: wanted 'busy', got {busy!r}")
        expect_in(scrape(metrics_port), ("intake_conn_shed_total 1",),
                  "/metrics (overflow)")

        for sock in held + queued:
            sock.close()
        held, queued = [], []
        out = terminate(daemon)
        if "intake summary: 4 submitted, 4 admitted" not in out:
            fail("concurrency leg summary totals wrong")
    finally:
        for sock in held + queued:
            sock.close()
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()
    print("concurrency leg OK")


def journal_leg(daemon_bin):
    journal = os.path.join(tempfile.mkdtemp(prefix="bulkgcd_smoke_"),
                           "intake.journal")
    # First incarnation: stream the weak pair, then SIGKILL — no drain, no
    # summary, the journal is all that survives.
    daemon, intake_port, _, _ = start_daemon(
        daemon_bin, ["--journal", journal, "--threads", "1"])
    try:
        with socket.create_connection(("127.0.0.1", intake_port)) as sock:
            sock.sendall(b"bcbf\ncee1\n")
            lines = recv_lines(sock, 3)  # 2 statuses + async hit
            statuses = [l for l in lines if not l.startswith("hit ")]
            hits = [l for l in lines if l.startswith("hit ")]
            if statuses != ["admitted", "admitted"] or hits != [EXPECTED_HIT]:
                fail(f"journal leg pre-kill responses wrong: {lines}")
        # The hit was pushed, so both probed records are fsynced — the
        # SIGKILL image is a fully-probed 2-key journal. Tear the tail the
        # way a crash mid-append would.
        daemon.kill()
        daemon.wait()
        with open(journal, "ab") as f:
            f.write(b"\x01GARBAGE TORN TAIL")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()

    # Second incarnation on the same journal: replay must rebuild the
    # corpus, the dedup set, and the hit — and drop the torn tail.
    daemon, intake_port, metrics_port, banner = start_daemon(
        daemon_bin, ["--journal", journal, "--threads", "1"])
    try:
        if not any("journal replay: 2 probed keys restored" in l
                   for l in banner):
            fail(f"restart banner missing replay line: {banner}")
        with socket.create_connection(("127.0.0.1", intake_port)) as sock:
            sock.sendall(b"bcbf\nd987\n")  # replayed key + fresh bystander
            lines = recv_lines(sock, 2)
            if lines != ["duplicate", "admitted"]:
                fail(f"journal leg post-restart responses wrong: {lines}")
        expect_in(scrape(metrics_port), ("intake_restored_total 2",),
                  "/metrics (restart)")
        # `admitted` is acked at enqueue time; wait for the probe to fold
        # the bystander before asserting the corpus gauge.
        deadline = time.time() + 10
        while (time.time() < deadline
               and "intake_corpus_size 3" not in scrape(metrics_port)):
            time.sleep(0.1)
        expect_in(scrape(metrics_port), ("intake_corpus_size 3",),
                  "/metrics (restart fold)")
        out = terminate(daemon)
        # Replay equality: a one-shot sweep of {bcbf, cee1, d987} finds
        # exactly the pair (0, 1) sharing 0xd3 — the restarted daemon's
        # summary must list exactly that.
        if "intake summary: 2 submitted, 1 admitted, 1 duplicates" not in out:
            fail("journal leg summary totals wrong")
        if "2 restored" not in out:
            fail("journal leg summary missing restored count")
        share_lines = [l for l in out.splitlines() if " share a " in l]
        if share_lines != ["  keys 0 and 1 share a 8-bit prime d3"]:
            fail(f"restored hit set wrong: {share_lines}")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()
        try:
            os.remove(journal)
            os.rmdir(os.path.dirname(journal))
        except OSError:
            pass
    print("journal leg OK")


def trace_leg(daemon_bin):
    import json
    tmp = tempfile.mkdtemp(prefix="bulkgcd_smoke_")
    trace_path = os.path.join(tmp, "intake_trace.json")
    journal = os.path.join(tmp, "intake.journal")
    daemon, intake_port, _, _ = start_daemon(
        daemon_bin, ["--trace-out", trace_path, "--journal", journal,
                     "--threads", "1"])
    try:
        with socket.create_connection(("127.0.0.1", intake_port)) as sock:
            sock.sendall(b"bcbf\ncee1\n")
            lines = recv_lines(sock, 3)  # 2 statuses + async hit
            if [l for l in lines if l.startswith("hit ")] != [EXPECTED_HIT]:
                fail(f"trace leg responses wrong: {lines}")
        out = terminate(daemon)
        m = re.search(r"trace -> \S+ \((\d+) events, (\d+) dropped\)", out)
        if not m:
            fail("shutdown did not report the trace write")
        if int(m.group(1)) == 0:
            fail("trace reported zero events")

        with open(trace_path) as f:
            events = json.load(f)["traceEvents"]
        threads = {e["args"].get("name") for e in events
                   if e.get("ph") == "M" and e.get("name") == "thread_name"}
        if "intake-probe" not in threads:
            fail(f"probe worker track not named: {threads}")
        # Stitch flows: named events tag args.flow, s/t/f companions carry
        # the raw id. Both admitted keys must own a complete chain.
        chains, phases = {}, {}
        for e in events:
            if e.get("cat") == "flow":
                phases.setdefault(e["id"], set()).add(e["ph"])
                continue
            flow = (e.get("args") or {}).get("flow")
            if flow:
                chains.setdefault(flow, set()).add(e["name"])
        want = {"parse", "journal_append", "queued", "probe_key", "fold"}
        complete = [f for f, names in chains.items()
                    if want <= names and phases.get(f) == {"s", "t", "f"}]
        if len(complete) < 2:
            fail(f"wanted 2 complete arrival chains, got {len(complete)}: "
                 f"{ {f: sorted(n) for f, n in chains.items()} }")
        print(f"[trace] {len(complete)} arrival flow chains stitched "
              f"({len(events)} events)")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()
        for path in (trace_path, journal):
            try:
                os.remove(path)
            except OSError:
                pass
        try:
            os.rmdir(tmp)
        except OSError:
            pass
    print("trace leg OK")


def main():
    if len(sys.argv) < 2:
        fail(__doc__)
    daemon_bin = sys.argv[1]
    ndjson = sys.argv[2] if len(sys.argv) > 2 else "intake.ndjson"
    serial_leg(daemon_bin, ndjson)
    concurrency_leg(daemon_bin)
    journal_leg(daemon_bin)
    trace_leg(daemon_bin)
    print("daemon smoke OK")


if __name__ == "__main__":
    main()
