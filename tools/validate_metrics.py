#!/usr/bin/env python3
"""Validate a bulkgcd telemetry NDJSON file against docs/metrics_schema.json.

Stdlib-only on purpose (CI runners need no jsonschema install): implements
exactly the JSON Schema subset the checked-in schema uses — type, required,
properties, additionalProperties, propertyNames.pattern, items, minimum.

Beyond per-line schema validation, cross-line invariants are enforced:
  * `sequence` strictly increases within a run (the emitter appends, so one
    file may span several process runs; a line with sequence 0 starts a new
    run and resets the monotonicity baselines),
  * every counter is monotonically non-decreasing within a run,
  * histogram `count` equals the sum of `bins` and never decreases within
    a run.

Usage:
    python3 tools/validate_metrics.py [--schema docs/metrics_schema.json]
                                      telemetry.ndjson [more.ndjson ...]

Exits 0 when every line of every file validates, 1 otherwise.
"""

import argparse
import json
import os
import re
import sys

INTEGER = "integer"
NUMBER = "number"


def type_ok(value, expected):
    if expected == "object":
        return isinstance(value, dict)
    if expected == "array":
        return isinstance(value, list)
    if expected == INTEGER:
        return isinstance(value, int) and not isinstance(value, bool)
    if expected == NUMBER:
        return (isinstance(value, (int, float))
                and not isinstance(value, bool))
    if expected == "string":
        return isinstance(value, str)
    if expected == "boolean":
        return isinstance(value, bool)
    raise ValueError(f"schema uses unsupported type: {expected}")


def validate(value, schema, path, errors):
    """Recursively check `value` against the supported schema subset."""
    expected = schema.get("type")
    if expected is not None and not type_ok(value, expected):
        errors.append(f"{path}: expected {expected}, got "
                      f"{type(value).__name__}")
        return

    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool):
        if value < schema["minimum"]:
            errors.append(f"{path}: {value} < minimum {schema['minimum']}")

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key '{key}'")
        name_schema = schema.get("propertyNames")
        if name_schema and "pattern" in name_schema:
            pattern = re.compile(name_schema["pattern"])
            for key in value:
                if not pattern.search(key):
                    errors.append(f"{path}: bad property name '{key}'")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties", True)
        for key, item in value.items():
            if key in props:
                validate(item, props[key], f"{path}.{key}", errors)
            elif isinstance(extra, dict):
                validate(item, extra, f"{path}.{key}", errors)
            elif extra is False:
                errors.append(f"{path}: unexpected key '{key}'")

    if isinstance(value, list) and "items" in schema:
        for index, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{index}]", errors)


def check_file(ndjson_path, schema):
    errors = []
    prev_sequence = None
    prev_counters = {}
    prev_hist_counts = {}
    lines = 0
    with open(ndjson_path, encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            lines += 1
            where = f"{ndjson_path}:{line_no}"
            try:
                snap = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"{where}: not valid JSON: {exc}")
                continue
            before = len(errors)
            validate(snap, schema, where, errors)
            if len(errors) > before:
                continue  # schema-invalid line: skip cross-line invariants

            seq = snap["sequence"]
            if seq == 0:
                # New process run appended to the same file: fresh registry,
                # fresh baselines.
                prev_counters = {}
                prev_hist_counts = {}
            elif prev_sequence is not None and seq <= prev_sequence:
                errors.append(f"{where}: sequence {seq} does not increase "
                              f"(previous {prev_sequence})")
            prev_sequence = seq

            for name, count in snap["counters"].items():
                if count < prev_counters.get(name, 0):
                    errors.append(f"{where}: counter {name} decreased "
                                  f"({prev_counters[name]} -> {count})")
                prev_counters[name] = count

            for name, hist in snap["histograms"].items():
                if hist["count"] != sum(hist["bins"]):
                    errors.append(f"{where}: histogram {name} count "
                                  f"{hist['count']} != sum of bins "
                                  f"{sum(hist['bins'])}")
                if hist["count"] < prev_hist_counts.get(name, 0):
                    errors.append(f"{where}: histogram {name} count "
                                  f"decreased")
                prev_hist_counts[name] = hist["count"]

    if lines == 0:
        errors.append(f"{ndjson_path}: no snapshot lines")
    return lines, errors


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    default_schema = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                  os.pardir, "docs", "metrics_schema.json")
    parser.add_argument("--schema", default=default_schema)
    parser.add_argument("ndjson", nargs="+")
    args = parser.parse_args()

    with open(args.schema, encoding="utf-8") as handle:
        schema = json.load(handle)

    failed = False
    for path in args.ndjson:
        lines, errors = check_file(path, schema)
        for error in errors:
            print(f"error: {error}", file=sys.stderr)
        if errors:
            failed = True
        else:
            print(f"{path}: {lines} snapshot line(s) OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
