// weakscan — a small command-line scanner around the library, showing the
// operational workflow: keep a key corpus on disk, scan it, and vet each
// newly harvested key incrementally.
//
//   weakscan generate <file> <count> <bits> <weak_pairs> [seed]
//       synthesize a corpus and write it as a keystore file
//   weakscan scan <file>
//       full all-pairs sweep over the stored moduli
//   weakscan probe <file> <modulus-hex>
//       test one new modulus against the stored corpus (incremental mode)
//   weakscan export-pem <file> <pem-file>
//       write the stored moduli as a PEM bundle (e = 65537 assumed)
//   weakscan scan-pem <pem-file>
//       full sweep over RSA public keys harvested as a PEM bundle
//
// Example session:
//   ./weakscan generate /tmp/corpus.keys 64 512 2
//   ./weakscan scan /tmp/corpus.keys
//   ./weakscan probe /tmp/corpus.keys $(head -2 /tmp/corpus.keys | tail -1 | cut -d' ' -f2)
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bulkgcd.hpp"
#include "rsa/keystore.hpp"
#include "rsa/pem.hpp"

#include <fstream>
#include <sstream>

using namespace bulkgcd;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  weakscan generate <file> <count> <bits> <weak_pairs> [seed]\n"
               "  weakscan scan <file>\n"
               "  weakscan probe <file> <modulus-hex>\n"
               "  weakscan export-pem <file> <pem-file>\n"
               "  weakscan scan-pem <pem-file>\n");
  return 2;
}

int cmd_generate(int argc, char** argv) {
  if (argc < 6) return usage();
  rsa::CorpusSpec spec;
  spec.count = std::atoi(argv[3]);
  spec.modulus_bits = std::atoi(argv[4]);
  spec.weak_pairs = std::atoi(argv[5]);
  spec.seed = argc > 6 ? std::atoll(argv[6]) : 1;
  const rsa::WeakCorpus corpus = rsa::generate_corpus(spec);
  rsa::save_moduli(argv[2], corpus.moduli,
                   "weakscan corpus: " + std::to_string(spec.count) + " x " +
                       std::to_string(spec.modulus_bits) + " bits, " +
                       std::to_string(spec.weak_pairs) + " weak pair(s)");
  std::printf("wrote %zu moduli to %s (%zu weak pairs planted)\n",
              corpus.moduli.size(), argv[2], corpus.weak.size());
  return 0;
}

int cmd_scan(int argc, char** argv) {
  if (argc < 3) return usage();
  const auto moduli = rsa::load_moduli(argv[2]);
  std::printf("scanning %zu moduli (%zu pairs)...\n", moduli.size(),
              moduli.size() * (moduli.size() - 1) / 2);
  const bulk::AllPairsResult sweep = bulk::all_pairs_gcd(moduli);
  std::printf("%.3f s, %.2f us/gcd\n", sweep.seconds, sweep.micros_per_gcd());
  if (sweep.hits.empty()) {
    std::printf("no shared factors found\n");
    return 0;
  }
  for (const auto& hit : sweep.hits) {
    std::printf("WEAK: moduli %zu and %zu share %zu-bit prime %s...\n", hit.i,
                hit.j, hit.factor.bit_length(),
                hit.factor.to_hex().substr(0, 24).c_str());
  }
  return 1;  // nonzero exit when weak keys exist: scriptable
}

int cmd_probe(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto corpus = rsa::load_moduli(argv[2]);
  const mp::BigInt candidate = mp::BigInt::from_hex(argv[3]);
  const auto hits = bulk::probe_incremental(candidate, corpus);
  if (hits.empty()) {
    std::printf("candidate shares no factor with the %zu stored moduli\n",
                corpus.size());
    return 0;
  }
  for (const auto& hit : hits) {
    std::printf("WEAK: candidate shares %zu-bit factor with stored modulus "
                "%zu: %s...\n",
                hit.factor.bit_length(), hit.corpus_index,
                hit.factor.to_hex().substr(0, 24).c_str());
  }
  return 1;
}

int cmd_export_pem(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto moduli = rsa::load_moduli(argv[2]);
  std::ofstream out(argv[3]);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", argv[3]);
    return 2;
  }
  const mp::BigInt e(rsa::kDefaultPublicExponent);
  for (const auto& n : moduli) {
    out << rsa::pem_encode_public_key({n, e}, rsa::PemKind::kSpki);
  }
  std::printf("wrote %zu PEM public keys to %s\n", moduli.size(), argv[3]);
  return 0;
}

int cmd_scan_pem(int argc, char** argv) {
  if (argc < 3) return usage();
  std::ifstream in(argv[2]);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", argv[2]);
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  const auto keys = rsa::pem_decode_bundle(text.str());
  std::vector<mp::BigInt> moduli;
  moduli.reserve(keys.size());
  for (const auto& key : keys) moduli.push_back(key.n);
  std::printf("loaded %zu PEM keys; scanning %zu pairs...\n", moduli.size(),
              moduli.size() * (moduli.size() - 1) / 2);
  const bulk::AllPairsResult sweep = bulk::all_pairs_gcd(moduli);
  for (const auto& hit : sweep.hits) {
    std::printf("WEAK: keys %zu and %zu share a %zu-bit prime\n", hit.i, hit.j,
                hit.factor.bit_length());
  }
  if (sweep.hits.empty()) std::printf("no shared factors found\n");
  return sweep.hits.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    if (std::strcmp(argv[1], "generate") == 0) return cmd_generate(argc, argv);
    if (std::strcmp(argv[1], "scan") == 0) return cmd_scan(argc, argv);
    if (std::strcmp(argv[1], "probe") == 0) return cmd_probe(argc, argv);
    if (std::strcmp(argv[1], "export-pem") == 0) return cmd_export_pem(argc, argv);
    if (std::strcmp(argv[1], "scan-pem") == 0) return cmd_scan_pem(argc, argv);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
  return usage();
}
