// Resumable batch-GCD CLI — the Bernstein product/remainder-tree attack with
// per-level checkpointing. Kill it mid-tree (even SIGKILL) and run it again
// with the same arguments: finished levels replay from the journal and the
// final gcds come out bit-identical to an uninterrupted run (the CI resume
// smoke diffs exactly that).
//
//   $ ./batchgcd_scan --generate 256 512 4          # demo corpus, then attack
//   $ ./batchgcd_scan harvested.keys                # attack a keystore file
//
// Options:
//   --checkpoint <path>      level journal (default: <corpus>.btr)
//   --fsync-every <n>        journal fsync cadence in levels (default 1)
//   --stop-after-levels <n>  commit at most n levels then exit 3
//                            (time-sliced mode; rerun to continue)
//   --kill-after-levels <n>  raise SIGKILL right after the nth level commits
//                            (crash-recovery testing; the journal is synced
//                            first, so the rerun resumes past that level)
//   --gcds-out <file>        write the final gcd vector, one hex value per
//                            line ("index hex"), for bit-exact comparison
//   --generate <count> <bits> <weak>  synthesize a corpus into corpus.keys
//   --metrics-out <file>     append NDJSON telemetry snapshots (batchgcd_*
//                            metrics; schema in docs/metrics_schema.json)
//   --metrics-interval <s>   seconds between periodic snapshots (default 0:
//                            a single final snapshot on exit)
//   --trace-out <file>       record per-level spans (product_level /
//                            remainder_level / final_gcds, journal fsyncs)
//                            as Chrome trace_event JSON
//
// Value flags accept both `--flag value` and `--flag=value`.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <optional>
#include <string>

#include "bulkgcd.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [<moduli-file>] [--generate <count> <bits> <weak>]\n"
               "          [--checkpoint <path>] [--fsync-every <n>]\n"
               "          [--stop-after-levels <n>] [--kill-after-levels <n>]\n"
               "          [--gcds-out <file>]\n"
               "          [--metrics-out <file>] [--metrics-interval <sec>]\n"
               "          [--trace-out <file>]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bulkgcd;

  std::string corpus_path;
  std::string checkpoint_path;
  std::string gcds_path;
  std::string metrics_path;
  std::string trace_path;
  double metrics_interval = 0.0;
  std::size_t kill_after_levels = 0;
  batchgcd::BatchScanConfig config;
  std::size_t gen_count = 0, gen_bits = 512, gen_weak = 4;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Accept both `--flag value` and `--flag=value`.
    std::string inline_value;
    bool has_inline = false;
    if (arg.rfind("--", 0) == 0) {
      if (const auto eq = arg.find('='); eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg.resize(eq);
        has_inline = true;
      }
    }
    auto next = [&](const char* what) -> std::string {
      if (has_inline) {
        has_inline = false;
        return inline_value;
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    auto next_u64 = [&](const char* what) {
      return std::strtoull(next(what).c_str(), nullptr, 10);
    };
    if (arg == "--generate") {
      gen_count = next_u64("--generate");
      gen_bits = next_u64("--generate bits");
      gen_weak = next_u64("--generate weak");
    } else if (arg == "--checkpoint") {
      checkpoint_path = next("--checkpoint");
    } else if (arg == "--fsync-every") {
      config.fsync_every = next_u64("--fsync-every");
    } else if (arg == "--stop-after-levels") {
      config.stop_after_levels = next_u64("--stop-after-levels");
    } else if (arg == "--kill-after-levels") {
      kill_after_levels = next_u64("--kill-after-levels");
    } else if (arg == "--gcds-out") {
      gcds_path = next("--gcds-out");
    } else if (arg == "--metrics-out") {
      metrics_path = next("--metrics-out");
    } else if (arg == "--metrics-interval") {
      metrics_interval = std::strtod(next("--metrics-interval").c_str(),
                                     nullptr);
    } else if (arg == "--trace-out") {
      trace_path = next("--trace-out");
    } else if (!arg.empty() && arg[0] != '-') {
      corpus_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (corpus_path.empty() && gen_count == 0) return usage(argv[0]);

  std::optional<obs::MetricsRegistry> registry;
  if (!metrics_path.empty()) {
    registry.emplace();
    config.metrics = &*registry;
  }

  std::printf("%s\n",
              bulk::build_info_line(bulk::query_build_info()).c_str());

  std::optional<obs::TraceRecorder> tracer;
  if (!trace_path.empty()) {
    tracer.emplace(/*ring_capacity=*/262144, registry ? &*registry : nullptr);
    config.trace = &*tracer;
    std::printf("tracing -> %s\n", trace_path.c_str());
  }

  std::vector<mp::BigInt> moduli;
  if (gen_count > 0) {
    if (corpus_path.empty()) corpus_path = "corpus.keys";
    rsa::CorpusSpec spec;
    spec.count = gen_count;
    spec.modulus_bits = gen_bits;
    spec.weak_pairs = gen_weak;
    spec.seed = 20150525;  // the paper's conference date, for reproducibility
    std::printf("generating %zu %zu-bit moduli (%zu weak pairs) -> %s\n",
                gen_count, gen_bits, gen_weak, corpus_path.c_str());
    moduli = rsa::generate_corpus(spec).moduli;
    rsa::save_moduli(corpus_path, moduli, "batchgcd_scan demo corpus");
  } else {
    try {
      moduli = rsa::load_moduli(corpus_path, registry ? &*registry : nullptr);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    std::printf("loaded %zu moduli from %s\n", moduli.size(),
                corpus_path.c_str());
  }

  if (checkpoint_path.empty()) checkpoint_path = corpus_path + ".btr";
  config.checkpoint = checkpoint_path;

  std::printf("corpus digest %016llx, checkpoint %s\n",
              (unsigned long long)rsa::corpus_digest(moduli),
              checkpoint_path.c_str());

  if (kill_after_levels > 0) {
    config.level_hook = [kill_after_levels](std::size_t done,
                                            std::size_t total) {
      std::printf("  level %zu/%zu committed\n", done, total);
      if (done >= kill_after_levels) {
        // The level's journal record is already synced: a real crash, at the
        // worst possible moment that still has this level durable.
        std::fflush(stdout);
        std::raise(SIGKILL);
      }
    };
  } else {
    config.level_hook = [](std::size_t done, std::size_t total) {
      std::printf("  level %zu/%zu committed\n", done, total);
    };
  }

  std::optional<obs::TelemetryEmitter> emitter;
  if (registry) {
    try {
      emitter.emplace(*registry, metrics_path, metrics_interval);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    std::printf("telemetry -> %s (interval %.1fs)\n", metrics_path.c_str(),
                metrics_interval);
  }

  batchgcd::BatchScanReport report;
  try {
    report = batchgcd::run_resumable_batch(moduli, config);
  } catch (const std::exception& e) {
    if (emitter) emitter->stop();
    std::fprintf(stderr,
                 "error: %s\n(delete %s to restart this attack from scratch)\n",
                 e.what(), checkpoint_path.c_str());
    return 2;
  }

  if (emitter) emitter->stop();

  if (tracer) {
    std::string error;
    if (tracer->write_chrome_json(trace_path, &error)) {
      std::printf("trace -> %s (%llu events, %llu dropped)\n",
                  trace_path.c_str(),
                  (unsigned long long)tracer->events_recorded(),
                  (unsigned long long)tracer->events_dropped());
    } else {
      std::fprintf(stderr, "error: %s\n", error.c_str());
    }
  }

  std::printf("\n%s after %.2fs: %llu/%llu levels this run, %llu restored",
              report.complete ? "complete" : "interrupted",
              report.result.seconds, (unsigned long long)report.levels_done,
              (unsigned long long)report.levels_total,
              (unsigned long long)report.levels_restored);
  if (report.resumed) std::printf(" (resumed)");
  std::printf("\n");

  if (report.complete) {
    const auto weak = batchgcd::weak_indices(report.result);
    const auto full = batchgcd::full_modulus_indices(report.result, moduli);
    std::printf("%zu weak moduli (%zu unfactorable full-modulus gcds)\n",
                weak.size(), full.size());
    for (const auto i : weak) {
      std::printf("  key %zu: gcd = %s (%zu bits)\n", i,
                  report.result.gcds[i].to_hex().c_str(),
                  report.result.gcds[i].bit_length());
    }
    if (!gcds_path.empty()) {
      std::ofstream out(gcds_path, std::ios::trunc);
      for (std::size_t i = 0; i < report.result.gcds.size(); ++i) {
        out << i << " " << report.result.gcds[i].to_hex() << "\n";
      }
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n", gcds_path.c_str());
        return 2;
      }
      std::printf("gcds -> %s\n", gcds_path.c_str());
    }
  }

  if (!report.complete) {
    std::printf("rerun with the same arguments to continue from %s\n",
                checkpoint_path.c_str());
    return 3;
  }
  return 0;
}
