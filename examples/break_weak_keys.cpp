// End-to-end weak-key hunt — the scenario the paper's introduction motivates:
// a pile of RSA public keys harvested from the Web, some generated with a
// broken PRNG, and an intercepted ciphertext. The bulk all-pairs GCD sweep
// (Section VI's grid decomposition on the SIMT engine) finds every pair of
// moduli sharing a prime, factors them, rebuilds the private keys, and
// decrypts the traffic.
//
//   $ ./break_weak_keys [num_keys] [modulus_bits] [weak_pairs]
//   defaults:            64         512            3
#include <cstdio>
#include <cstdlib>

#include "bulkgcd.hpp"

int main(int argc, char** argv) {
  using namespace bulkgcd;

  const std::size_t num_keys = argc > 1 ? std::atoi(argv[1]) : 64;
  const std::size_t bits = argc > 2 ? std::atoi(argv[2]) : 512;
  const std::size_t weak_pairs = argc > 3 ? std::atoi(argv[3]) : 3;

  std::printf("== harvesting corpus: %zu keys, %zu-bit moduli, %zu weak pair(s) "
              "planted\n",
              num_keys, bits, weak_pairs);
  rsa::CorpusSpec spec;
  spec.count = num_keys;
  spec.modulus_bits = bits;
  spec.weak_pairs = weak_pairs;
  spec.seed = 20150525;
  const rsa::WeakCorpus corpus = rsa::generate_corpus(spec);

  // Intercepted traffic: one ciphertext per key (we will only be able to
  // read the ones whose keys are weak).
  const mp::BigInt e(rsa::kDefaultPublicExponent);
  std::vector<mp::BigInt> ciphertexts;
  ciphertexts.reserve(num_keys);
  for (std::size_t i = 0; i < num_keys; ++i) {
    const std::string msg = "secret #" + std::to_string(i);
    ciphertexts.push_back(rsa::encrypt(rsa::encode_message(msg),
                                       corpus.moduli[i], e));
  }

  std::printf("== running the bulk all-pairs GCD sweep (%zu pairs)\n",
              num_keys * (num_keys - 1) / 2);
  bulk::AllPairsConfig config;
  config.variant = gcd::Variant::kApproximate;
  config.engine = bulk::EngineKind::kSimt;
  config.early_terminate = true;
  const bulk::AllPairsResult sweep = bulk::all_pairs_gcd(corpus.moduli, config);

  std::printf("   %llu pairs in %.3f s (%.2f us/gcd), %llu hit(s)\n",
              (unsigned long long)sweep.pairs_tested, sweep.seconds,
              sweep.micros_per_gcd(), (unsigned long long)sweep.hits.size());
  std::printf("   SIMT stats: %.3f branch groups/warp round, %.1f%% lane "
              "utilization\n",
              sweep.simt.serialization_factor(),
              100.0 * sweep.simt.lane_utilization());

  std::printf("== breaking the victims\n");
  std::size_t decrypted = 0;
  std::size_t proper_hits = 0;
  for (const auto& hit : sweep.hits) {
    // gcd == the modulus itself: keys hit.i and hit.j are duplicates (or
    // share both primes). The GCD can't split n into p·q — recovery would
    // divide n by itself — so report and move on.
    if (hit.full_modulus) {
      std::printf("   keys %2zu and %2zu are identical moduli (gcd = n); "
                  "cannot factor from this pair\n",
                  hit.i, hit.j);
      continue;
    }
    ++proper_hits;
    for (const std::size_t victim : {hit.i, hit.j}) {
      const rsa::KeyPair key =
          rsa::recover_private_key(corpus.moduli[victim], e, hit.factor);
      const std::string plain =
          rsa::decode_message(rsa::decrypt(ciphertexts[victim], key.n, key.d));
      std::printf("   key %2zu broken (shares a prime with key %2zu): \"%s\"\n",
                  victim, victim == hit.i ? hit.j : hit.i, plain.c_str());
      ++decrypted;
    }
  }

  // Cross-check against the generator's ground truth (which never plants
  // duplicate moduli, only single-prime overlaps).
  if (proper_hits != corpus.weak.size()) {
    std::printf("!! expected %zu weak pairs, found %zu\n", corpus.weak.size(),
                proper_hits);
    return 1;
  }
  std::printf("== done: %zu ciphertexts decrypted, ground truth matched\n",
              decrypted);
  return 0;
}
