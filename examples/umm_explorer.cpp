// UMM model explorer: an interactive-style CLI over the paper's GPU cost
// model. Traces real GCD executions, replays them on the Unified Memory
// Machine under both data layouts, sweeps the machine width/latency, and
// prints where Theorem 1's bound sits relative to the semi-oblivious
// reality — the quantitative version of the paper's Section VI argument.
//
//   $ ./umm_explorer [pairs] [modulus_bits]
//   defaults:         16      512
#include <cstdio>
#include <cstdlib>

#include "bulkgcd.hpp"

int main(int argc, char** argv) {
  using namespace bulkgcd;

  const std::size_t n_pairs = argc > 1 ? std::atoi(argv[1]) : 16;
  const std::size_t bits = argc > 2 ? std::atoi(argv[2]) : 512;

  // Build a workload of coprime RSA-moduli pairs.
  Xoshiro256 rng(99);
  std::vector<std::pair<mp::BigInt, mp::BigInt>> pairs;
  for (std::size_t i = 0; i < n_pairs; ++i) {
    pairs.emplace_back(
        rsa::random_prime(rng, bits / 2) * rsa::random_prime(rng, bits / 2),
        rsa::random_prime(rng, bits / 2) * rsa::random_prime(rng, bits / 2));
  }
  const std::size_t span = bits / 32 + 2;

  std::printf("workload: %zu pairs of %zu-bit RSA moduli, early-terminate\n\n",
              n_pairs, bits);

  for (const gcd::Variant variant :
       {gcd::Variant::kBinary, gcd::Variant::kFastBinary,
        gcd::Variant::kApproximate}) {
    const auto traces = umm::collect_traces(variant, pairs, bits / 2, span);
    const auto report = umm::analyze_traces(traces);
    std::printf("%s\n", to_string(variant));
    std::printf("  obliviousness: %.2f distinct addresses per lockstep unit "
                "(1.0 = oblivious, %zu = fully divergent)\n",
                report.mean_distinct_addresses(), n_pairs);

    std::printf("  %-18s %-14s %-14s %-14s %-12s\n", "machine (w, l)",
                "column-wise", "row-wise", "pipeline(col)", "theorem-1");
    for (const auto [w, l] : {std::pair<std::size_t, std::size_t>{8, 16},
                              {32, 16},
                              {32, 100},
                              {32, 400}}) {
      const umm::UmmSimulator sim({w, l});
      const umm::PipelineSimulator pipe({w, l});
      const auto col =
          sim.replay_iteration_aligned(traces, umm::Layout::kColumnWise, 2 * span);
      const auto row =
          sim.replay_iteration_aligned(traces, umm::Layout::kRowWise, 2 * span);
      const auto cyc = pipe.replay(traces, umm::Layout::kColumnWise, 2 * span);
      std::printf("  w=%-3zu l=%-10zu %-14llu %-14llu %-14llu %-12llu\n", w, l,
                  (unsigned long long)col.time_units,
                  (unsigned long long)row.time_units,
                  (unsigned long long)cyc.time_units,
                  (unsigned long long)sim.theorem1_time(n_pairs, col.steps));
    }
    std::printf("\n");
  }

  std::printf(
      "reading: column-wise sits a small factor above the Theorem-1 bound\n"
      "(the semi-oblivious gap: two value buffers + ragged operand sizes);\n"
      "row-wise pays ~one address group per thread. Larger l hides layout\n"
      "sins behind pipeline latency; larger machines (more warps) expose\n"
      "them.\n");
  return 0;
}
