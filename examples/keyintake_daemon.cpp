// Streaming key-intake daemon — the long-running front end of the bulk-GCD
// pipeline (docs/INTAKE_SERVICE.md). Clients connect over TCP and stream key
// records (PEM public keys, keystore `modulus`/`keypair` lines, or raw hex
// moduli); every parsed modulus flows through the svc::IntakeService pipeline:
//
//   parse → dedup → arrival journal → bounded admission queue → batch →
//   probe → corpus fold
//
// Connections are served concurrently by a bounded worker pool: up to
// --max-conns clients stream at once with no head-of-line blocking, and a
// saturated pool sheds the connection with a `busy` line instead of queueing
// it unboundedly — the same shed-don't-block discipline the admission queue
// applies to keys. The daemon answers one status line per record so a
// submitting client sees exactly what happened to each key:
//
//   admitted          queued for probing against the accumulated corpus
//   duplicate         exact modulus already known
//   shed              admission queue full (overload backpressure; retry)
//   closed            daemon is shutting down
//   reject <reason>   parse/validation failure (bad PEM, even modulus, ...)
//   hit <i> <j> <p>   factor found (pushed asynchronously as probes land,
//                     mirrored to every connected client)
//   busy              connection pool saturated (sent once, then closed)
//
// Usage:
//   $ ./keyintake_daemon --port 7411 --metrics-port 9100 \
//         --seed corpus.keys --journal intake.journal \
//         --metrics-out intake.ndjson
//
// Options:
//   --port <n>             intake listener port on 127.0.0.1 (0 = ephemeral;
//                          the bound port is printed as `listening ...`)
//   --metrics-port <n>     serve GET /metrics (Prometheus) + /healthz +
//                          /status (build/uptime JSON) + /trace (live Chrome
//                          trace JSON when --trace-out is on) on
//                          127.0.0.1:<n> (0 = ephemeral; off when omitted)
//   --seed <file>          keystore file preloaded as the base corpus
//   --journal <file>       durable arrival journal: every admitted key is
//                          fsynced before it is acknowledged, and a restart
//                          replays the file (probed keys re-fold, the
//                          unprobed tail is re-probed) — a SIGKILL loses no
//                          admitted key
//   --journal-fsync-every <n>  fsync cadence in records (default 1)
//   --max-conns <n>        connection worker pool size (default 8); up to
//                          2n connections in flight (n served + n queued),
//                          beyond that new connections get `busy`
//   --queue-capacity <n>   admission queue bound (default 1024; full = shed)
//   --batch-max <n>        max keys per probe-element wakeup (default 64)
//   --engine simt|scalar   probe engine (default simt)
//   --backend auto|lockstep|staged|vector   bulk backend (default auto)
//   --threads <n>          probe pool threads (1 = inline, 0 = global pool)
//   --metrics-out <file>   append NDJSON telemetry snapshots
//   --metrics-interval <s> seconds between snapshots (default 5)
//   --trace-out <file>     record a pipeline timeline (obs/trace.hpp) and
//                          write it as Chrome trace_event JSON at shutdown;
//                          every arrival carries a flow id from parse
//                          through journal, queue, probe, and fold
//   --exit-after-idle <s>  exit after <s> seconds with no connections
//                          (testing hook; default: run until SIGINT/SIGTERM)
//
// Shutdown (SIGINT/SIGTERM or idle timeout): the listener closes, in-flight
// connections finish, the admission queue drains through the probe element
// (every admitted key is still probed and folded), the final telemetry
// snapshot is flushed, and a summary with every hit is printed. Exit code 0.
#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "bulkgcd.hpp"
#include "svc/net_util.hpp"

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port <n>] [--metrics-port <n>] [--seed <file>]\n"
               "          [--journal <file>] [--journal-fsync-every <n>]\n"
               "          [--max-conns <n>] [--queue-capacity <n>]\n"
               "          [--batch-max <n>] [--engine simt|scalar]\n"
               "          [--backend auto|lockstep|staged|vector]\n"
               "          [--threads <n>] [--metrics-out <file>]\n"
               "          [--metrics-interval <sec>] [--trace-out <file>]\n"
               "          [--exit-after-idle <sec>]\n",
               argv0);
  return 2;
}

/// Prints hits as they land (probe-worker thread) and mirrors them to every
/// connected client. A failed mirror write means that client vanished
/// mid-batch: its fd is dropped immediately so later hits from the same
/// batch don't keep writing into a dead socket (the connection worker still
/// owns and closes the fd).
class HitReporter : public bulkgcd::bulk::ProgressSink {
 public:
  void on_hit(const bulkgcd::bulk::FactorHit& hit) override {
    const std::string line = "hit " + std::to_string(hit.i) + " " +
                             std::to_string(hit.j) + " " + hit.factor.to_hex();
    std::lock_guard lock(mutex_);
    std::printf("%s\n", line.c_str());
    std::fflush(stdout);
    for (auto it = fds_.begin(); it != fds_.end();) {
      if (!bulkgcd::svc::send_all(*it, line + "\n")) {
        it = fds_.erase(it);
      } else {
        ++it;
      }
    }
  }

  void attach(int fd) {
    std::lock_guard lock(mutex_);
    fds_.insert(fd);
  }
  void detach(int fd) {
    std::lock_guard lock(mutex_);
    fds_.erase(fd);
  }

 private:
  std::mutex mutex_;
  std::set<int> fds_;
};

const char* admission_word(bulkgcd::svc::Admission a) {
  using bulkgcd::svc::Admission;
  switch (a) {
    case Admission::kAdmitted: return "admitted";
    case Admission::kDuplicate: return "duplicate";
    case Admission::kShed: return "shed";
    case Admission::kClosed: return "closed";
  }
  return "closed";
}

/// One client connection: stream chunks into the parser, submit every parsed
/// record, answer one status line per record. Parse failures get `reject` —
/// the connection (and the daemon) keep going.
void serve_connection(int fd, bulkgcd::svc::IntakeService& service,
                      HitReporter& reporter,
                      bulkgcd::obs::TraceRecorder* trace,
                      std::uint32_t parse_event) {
  reporter.attach(fd);
  bulkgcd::svc::IntakeParser parser;
  char buf[4096];
  bool peer_alive = true;
  auto respond = [&](const std::vector<bulkgcd::svc::IntakeRecord>& records) {
    std::string out;
    for (const auto& rec : records) {
      if (!rec.ok) {
        out += "reject line " + std::to_string(rec.line) + ": " + rec.error +
               "\n";
        continue;
      }
      // Mint the arrival's flow at the parse site: the exported chain then
      // follows this key parse → journal_append → queued → probe → fold.
      std::uint64_t flow = 0;
      if (trace != nullptr) {
        flow = trace->next_flow_id();
        trace->flow_begin(parse_event, flow, rec.line);
      }
      out += admission_word(service.submit(rec.n, flow));
      out += '\n';
    }
    if (!out.empty() && !bulkgcd::svc::send_all(fd, out)) peer_alive = false;
  };
  while (peer_alive) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (g_stop.load()) break;
    if (ready < 0) break;
    if (ready == 0) continue;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    parser.feed(std::string_view(buf, std::size_t(n)));
    respond(parser.drain());
  }
  if (peer_alive) respond(parser.finish());
  reporter.detach(fd);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bulkgcd;

  std::uint16_t port = 7411;
  int metrics_port = -1;  // -1 = disabled
  std::string seed_path;
  std::string metrics_path;
  std::string trace_path;
  double metrics_interval = 5.0;
  double exit_after_idle = 0.0;
  std::size_t max_conns = 8;
  svc::IntakeServiceConfig config;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string inline_value;
    bool has_inline = false;
    if (arg.rfind("--", 0) == 0) {
      if (const auto eq = arg.find('='); eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg.resize(eq);
        has_inline = true;
      }
    }
    auto next = [&](const char* what) -> std::string {
      if (has_inline) {
        has_inline = false;
        return inline_value;
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    auto next_u64 = [&](const char* what) {
      return std::strtoull(next(what).c_str(), nullptr, 10);
    };
    if (arg == "--port") {
      port = std::uint16_t(next_u64("--port"));
    } else if (arg == "--metrics-port") {
      metrics_port = int(next_u64("--metrics-port"));
    } else if (arg == "--seed") {
      seed_path = next("--seed");
    } else if (arg == "--journal") {
      config.journal_path = next("--journal");
    } else if (arg == "--journal-fsync-every") {
      config.journal_fsync_every = next_u64("--journal-fsync-every");
    } else if (arg == "--max-conns") {
      max_conns = std::max<std::size_t>(1, next_u64("--max-conns"));
    } else if (arg == "--queue-capacity") {
      config.queue_capacity = next_u64("--queue-capacity");
    } else if (arg == "--batch-max") {
      config.batch_max = next_u64("--batch-max");
    } else if (arg == "--engine") {
      const std::string engine = next("--engine");
      if (engine == "simt") {
        config.probe.engine = bulk::EngineKind::kSimt;
      } else if (engine == "scalar") {
        config.probe.engine = bulk::EngineKind::kScalar;
      } else {
        return usage(argv[0]);
      }
    } else if (arg == "--backend") {
      const std::string backend = next("--backend");
      if (backend == "auto") {
        config.probe.backend = bulk::BulkBackend::kAuto;
      } else if (backend == "lockstep") {
        config.probe.backend = bulk::BulkBackend::kLockstep;
      } else if (backend == "staged") {
        config.probe.backend = bulk::BulkBackend::kStaged;
      } else if (backend == "vector") {
        config.probe.backend = bulk::BulkBackend::kVector;
      } else {
        return usage(argv[0]);
      }
    } else if (arg == "--threads") {
      config.probe.pool_threads = next_u64("--threads");
    } else if (arg == "--metrics-out") {
      metrics_path = next("--metrics-out");
    } else if (arg == "--metrics-interval") {
      metrics_interval = std::strtod(next("--metrics-interval").c_str(),
                                     nullptr);
    } else if (arg == "--trace-out") {
      trace_path = next("--trace-out");
    } else if (arg == "--exit-after-idle") {
      exit_after_idle = std::strtod(next("--exit-after-idle").c_str(),
                                    nullptr);
    } else {
      return usage(argv[0]);
    }
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGPIPE, SIG_IGN);

  // One registry feeds the probe-path counters, the intake_* pipeline gauges,
  // the /metrics scrape endpoint, and the NDJSON emitter.
  obs::MetricsRegistry registry;
  config.probe.metrics = &registry;

  const bulk::BuildInfo build = bulk::query_build_info();
  std::printf("%s\n", bulk::build_info_line(build).c_str());
  const auto start_time = std::chrono::steady_clock::now();

  // Tracing is opt-in: the recorder exists only under --trace-out, so the
  // default daemon keeps every trace site on the null-recorder branch.
  std::optional<obs::TraceRecorder> tracer;
  std::uint32_t parse_event = 0;
  if (!trace_path.empty()) {
    tracer.emplace(/*ring_capacity=*/65536, &registry);
    parse_event = tracer->intern("parse");
    tracer->set_arg_names(parse_event, "line", "", "");
    config.probe.trace = &*tracer;
    std::printf("tracing -> %s\n", trace_path.c_str());
  }

  std::vector<mp::BigInt> seed;
  if (!seed_path.empty()) {
    try {
      seed = rsa::load_moduli(seed_path, &registry);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    std::printf("seed corpus: %zu moduli from %s\n", seed.size(),
                seed_path.c_str());
  }

  HitReporter reporter;
  config.sink = &reporter;
  std::optional<svc::IntakeService> service;
  try {
    service.emplace(std::move(seed), std::move(config));
  } catch (const std::exception& e) {
    // Typically: the journal belongs to a different seed corpus.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  {
    const svc::IntakeStats boot = service->stats();
    if (boot.restored || boot.resumed) {
      std::printf("journal replay: %llu probed keys restored, "
                  "%llu unprobed keys resumed\n",
                  (unsigned long long)boot.restored,
                  (unsigned long long)boot.resumed);
    }
  }

  std::optional<obs::MetricsHttpServer> metrics_server;
  if (metrics_port >= 0) {
    try {
      metrics_server.emplace(registry, std::uint16_t(metrics_port));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    metrics_server->set_status_provider([build, start_time] {
      const double uptime =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start_time)
              .count();
      return bulk::build_info_json(build, uptime);
    });
    if (tracer) metrics_server->set_trace(&*tracer);
    std::printf("metrics on 127.0.0.1:%u (/metrics, /healthz, /status%s)\n",
                unsigned(metrics_server->port()),
                tracer ? ", /trace" : "");
  }

  std::optional<obs::TelemetryEmitter> emitter;
  if (!metrics_path.empty()) {
    try {
      emitter.emplace(registry, metrics_path, metrics_interval);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    std::printf("telemetry -> %s (interval %.1fs)\n", metrics_path.c_str(),
                metrics_interval);
  }

  // Connection worker pool: the accept loop hands each new fd to a bounded
  // queue drained by max_conns workers, so clients stream concurrently and a
  // slow client never head-of-line-blocks the others. The queue mirrors the
  // admission queue's semantics — try_push, shed on saturation (the client
  // gets one `busy` line), never an unbounded backlog or thread explosion.
  obs::Counter* conn_accepted = registry.counter("intake_conn_accepted_total");
  obs::Counter* conn_shed = registry.counter("intake_conn_shed_total");
  obs::Counter* conn_closed = registry.counter("intake_conn_closed_total");
  obs::Gauge* conn_active = registry.gauge("intake_conn_active");

  svc::BoundedQueue<int> conn_queue(max_conns);
  std::atomic<long> active_conns{0};
  std::vector<std::thread> conn_workers;
  conn_workers.reserve(max_conns);
  for (std::size_t w = 0; w < max_conns; ++w) {
    conn_workers.emplace_back([&] {
      int fd = -1;
      while (conn_queue.pop(fd)) {
        conn_active->set(double(active_conns.fetch_add(1) + 1));
        serve_connection(fd, *service, reporter, tracer ? &*tracer : nullptr,
                         parse_event);
        ::close(fd);
        conn_active->set(double(active_conns.fetch_sub(1) - 1));
        conn_closed->inc();
      }
    });
  }

  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("socket");
    return 2;
  }
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd, 16) < 0) {
    std::fprintf(stderr, "error: cannot listen on 127.0.0.1:%u: %s\n",
                 unsigned(port), std::strerror(errno));
    ::close(listen_fd);
    g_stop.store(true);
    conn_queue.close();
    for (auto& worker : conn_workers) worker.join();
    return 2;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  std::printf("listening on 127.0.0.1:%u\n", unsigned(ntohs(addr.sin_port)));
  std::fflush(stdout);

  double idle_ms = 0.0;
  while (!g_stop.load()) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (g_stop.load()) break;
    if (ready <= 0) {
      // Idle means nothing accepted AND nothing being served: a long-lived
      // quiet connection keeps the daemon alive.
      if (active_conns.load() == 0 && conn_queue.size() == 0) {
        idle_ms += 200.0;
        if (exit_after_idle > 0.0 && idle_ms >= exit_after_idle * 1000.0) {
          std::printf("idle for %.1fs, shutting down\n", idle_ms / 1000.0);
          break;
        }
      }
      continue;
    }
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    idle_ms = 0.0;
    conn_accepted->inc();
    if (!conn_queue.try_push(int(fd))) {
      // Pool saturated: shed the connection, don't backlog it. One status
      // line so the client can tell "busy" from a refused/reset socket.
      svc::send_all(fd, "busy\n");
      ::close(fd);
      conn_shed->inc();
    }
  }
  // Stop the connection workers before draining the service: g_stop makes
  // in-flight serve_connection loops finish their current buffer and exit.
  g_stop.store(true);
  ::close(listen_fd);
  conn_queue.close();
  for (auto& worker : conn_workers) worker.join();

  // Graceful shutdown: drain every admitted key through the probe element,
  // then flush the final telemetry snapshot before the summary prints.
  std::printf("draining %zu queued keys...\n", service->queue_depth());
  service->stop();
  if (emitter) emitter->stop();
  if (metrics_server) metrics_server->stop();

  if (tracer) {
    std::string error;
    if (tracer->write_chrome_json(trace_path, &error)) {
      std::printf("trace -> %s (%llu events, %llu dropped)\n",
                  trace_path.c_str(),
                  (unsigned long long)tracer->events_recorded(),
                  (unsigned long long)tracer->events_dropped());
    } else {
      std::fprintf(stderr, "error: %s\n", error.c_str());
    }
  }

  const svc::IntakeStats stats = service->stats();
  std::printf(
      "intake summary: %llu submitted, %llu admitted, %llu duplicates, "
      "%llu shed, %llu closed, %llu probed (%llu pairs in %llu batches), "
      "%llu hits, %llu restored, %llu resumed\n",
      (unsigned long long)stats.submitted, (unsigned long long)stats.admitted,
      (unsigned long long)stats.duplicates, (unsigned long long)stats.shed,
      (unsigned long long)stats.closed, (unsigned long long)stats.probed,
      (unsigned long long)stats.pairs, (unsigned long long)stats.batches,
      (unsigned long long)stats.hits, (unsigned long long)stats.restored,
      (unsigned long long)stats.resumed);
  for (const auto& hit : service->hits()) {
    std::printf("  keys %zu and %zu share a %zu-bit prime %s\n", hit.i, hit.j,
                hit.factor.bit_length(), hit.factor.to_hex().c_str());
  }
  return 0;
}
