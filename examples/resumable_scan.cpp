// Resumable all-pairs scan CLI — the production shape of the paper's attack:
// load (or synthesize) a moduli corpus, sweep every pair with checkpointing,
// live progress, and crash recovery. Kill it mid-run and start it again with
// the same arguments: it picks up from the last committed chunk.
//
//   $ ./resumable_scan --generate 256 512 4        # demo corpus, then scan
//   $ ./resumable_scan harvested.keys              # scan a keystore file
//
// Options:
//   --checkpoint <path>    checkpoint journal (default: <corpus>.ckpt)
//   --chunk-blocks <n>     blocks per durable work unit (default 64)
//   --group-size <r>       moduli per block group (default 64)
//   --engine simt|scalar   bulk engine (default simt)
//   --threads <n>          worker threads (default: hardware; 1 = inline)
//   --tile-blocks <n>      blocks per work-stealing scheduler tile
//                          (default 0 = auto; purely a scheduling knob —
//                          results are bit-identical for any value)
//   --stop-after <n>       commit at most n chunks then exit 3 (time-sliced
//                          mode; rerun to continue)
//   --discard-checkpoint   start fresh if the checkpoint belongs to a
//                          different corpus or scan geometry
//   --generate <count> <bits> <weak> synthesize a corpus into corpus.keys
//   --metrics-out <file>   append NDJSON telemetry snapshots (one JSON
//                          object per line; schema in docs/metrics_schema.json)
//   --metrics-interval <s> seconds between periodic snapshots (default 0:
//                          a single final snapshot on exit)
//   --trace-out <file>     record a per-thread scan timeline (chunk spans,
//                          tile spans, steals, panel-load/lane-exec phases,
//                          journal fsyncs, commits) and write it as Chrome
//                          trace_event JSON — load in Perfetto or
//                          chrome://tracing, or feed tools/trace_report.py
//
// Value flags accept both `--flag value` and `--flag=value`.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <optional>
#include <string>

#include "bulkgcd.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [<moduli-file>] [--generate <count> <bits> <weak>]\n"
               "          [--checkpoint <path>] [--chunk-blocks <n>]\n"
               "          [--group-size <r>] [--engine simt|scalar]\n"
               "          [--threads <n>] [--tile-blocks <n>]\n"
               "          [--stop-after <n>]\n"
               "          [--discard-checkpoint]\n"
               "          [--metrics-out <file>] [--metrics-interval <sec>]\n"
               "          [--trace-out <file>]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bulkgcd;

  std::string corpus_path;
  std::string checkpoint_path;
  std::string metrics_path;
  std::string trace_path;
  double metrics_interval = 0.0;
  bulk::ScanConfig config;
  std::size_t gen_count = 0, gen_bits = 512, gen_weak = 4;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Accept both `--flag value` and `--flag=value`.
    std::string inline_value;
    bool has_inline = false;
    if (arg.rfind("--", 0) == 0) {
      if (const auto eq = arg.find('='); eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg.resize(eq);
        has_inline = true;
      }
    }
    auto next = [&](const char* what) -> std::string {
      if (has_inline) {
        has_inline = false;
        return inline_value;
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    auto next_u64 = [&](const char* what) {
      return std::strtoull(next(what).c_str(), nullptr, 10);
    };
    if (arg == "--generate") {
      gen_count = next_u64("--generate");
      gen_bits = next_u64("--generate bits");
      gen_weak = next_u64("--generate weak");
    } else if (arg == "--checkpoint") {
      checkpoint_path = next("--checkpoint");
    } else if (arg == "--chunk-blocks") {
      config.chunk_blocks = next_u64("--chunk-blocks");
    } else if (arg == "--group-size") {
      config.pairs.group_size = next_u64("--group-size");
    } else if (arg == "--engine") {
      const std::string engine = next("--engine");
      if (engine == "simt") {
        config.pairs.engine = bulk::EngineKind::kSimt;
      } else if (engine == "scalar") {
        config.pairs.engine = bulk::EngineKind::kScalar;
      } else {
        return usage(argv[0]);
      }
    } else if (arg == "--threads") {
      config.pairs.pool_threads = next_u64("--threads");
    } else if (arg == "--tile-blocks") {
      config.pairs.tile_blocks = next_u64("--tile-blocks");
    } else if (arg == "--stop-after") {
      config.stop_after_chunks = next_u64("--stop-after");
    } else if (arg == "--metrics-out") {
      metrics_path = next("--metrics-out");
    } else if (arg == "--metrics-interval") {
      metrics_interval = std::strtod(next("--metrics-interval").c_str(),
                                     nullptr);
    } else if (arg == "--trace-out") {
      trace_path = next("--trace-out");
    } else if (arg == "--discard-checkpoint") {
      config.discard_mismatched_checkpoint = true;
    } else if (!arg.empty() && arg[0] != '-') {
      corpus_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (corpus_path.empty() && gen_count == 0) return usage(argv[0]);

  // One registry for the whole run; the null-registry path (no --metrics-out)
  // leaves config.pairs.metrics null and the scan hot loop instrument-free.
  std::optional<obs::MetricsRegistry> registry;
  if (!metrics_path.empty()) {
    registry.emplace();
    config.pairs.metrics = &*registry;
  }

  std::printf("%s\n",
              bulk::build_info_line(bulk::query_build_info()).c_str());

  // Tracing is opt-in like metrics: no --trace-out, no recorder, and every
  // trace site in the scan stays on the null-recorder branch.
  std::optional<obs::TraceRecorder> tracer;
  if (!trace_path.empty()) {
    tracer.emplace(/*ring_capacity=*/262144,
                   registry ? &*registry : nullptr);
    config.pairs.trace = &*tracer;
    std::printf("tracing -> %s\n", trace_path.c_str());
  }

  std::vector<mp::BigInt> moduli;
  if (gen_count > 0) {
    if (corpus_path.empty()) corpus_path = "corpus.keys";
    rsa::CorpusSpec spec;
    spec.count = gen_count;
    spec.modulus_bits = gen_bits;
    spec.weak_pairs = gen_weak;
    spec.seed = 20150525;  // the paper's conference date, for reproducibility
    std::printf("generating %zu %zu-bit moduli (%zu weak pairs) -> %s\n",
                gen_count, gen_bits, gen_weak, corpus_path.c_str());
    moduli = rsa::generate_corpus(spec).moduli;
    rsa::save_moduli(corpus_path, moduli, "resumable_scan demo corpus");
  } else {
    try {
      moduli = rsa::load_moduli(corpus_path,
                                registry ? &*registry : nullptr);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    std::printf("loaded %zu moduli from %s\n", moduli.size(),
                corpus_path.c_str());
  }

  if (checkpoint_path.empty()) checkpoint_path = corpus_path + ".ckpt";
  config.checkpoint = checkpoint_path;

  bulk::StreamProgressSink sink;
  config.sink = &sink;
  config.progress_every = 4;

  std::printf("corpus digest %016llx, checkpoint %s\n",
              (unsigned long long)rsa::corpus_digest(moduli),
              checkpoint_path.c_str());

  std::optional<obs::TelemetryEmitter> emitter;
  if (registry) {
    try {
      emitter.emplace(*registry, metrics_path, metrics_interval);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    std::printf("telemetry -> %s (interval %.1fs)\n", metrics_path.c_str(),
                metrics_interval);
  }

  bulk::ScanReport report;
  try {
    report = bulk::run_resumable_scan(moduli, config);
  } catch (const std::exception& e) {
    if (emitter) emitter->stop();  // final snapshot even on a failed scan
    std::fprintf(stderr,
                 "error: %s\n"
                 "(pass --discard-checkpoint to restart this scan from "
                 "scratch, or delete %s)\n",
                 e.what(), checkpoint_path.c_str());
    return 2;
  }

  if (emitter) emitter->stop();  // join + final snapshot before the summary

  if (tracer) {
    std::string error;
    if (tracer->write_chrome_json(trace_path, &error)) {
      std::printf("trace -> %s (%llu events, %llu dropped)\n",
                  trace_path.c_str(),
                  (unsigned long long)tracer->events_recorded(),
                  (unsigned long long)tracer->events_dropped());
    } else {
      std::fprintf(stderr, "error: %s\n", error.c_str());
    }
  }

  std::printf("\n%s after %.2fs: %llu/%llu chunks, %llu pairs, %zu hits",
              report.complete ? "complete" : "interrupted",
              report.result.seconds, (unsigned long long)report.chunks_done,
              (unsigned long long)report.chunks_total,
              (unsigned long long)report.result.pairs_tested,
              report.result.hits.size());
  if (report.resumed) std::printf(" (resumed)");
  std::printf("\n");
  for (const auto& hit : report.result.hits) {
    std::printf("  keys %zu and %zu share a %zu-bit prime %s\n", hit.i, hit.j,
                hit.factor.bit_length(), hit.factor.to_hex().c_str());
  }
  for (const auto& q : report.quarantined) {
    std::printf("  QUARANTINED chunk %zu: %s\n", q.chunk_index,
                q.error.c_str());
  }
  if (registry) {
    // Structured end-of-run summary straight from the registry, so what is
    // printed is exactly what the last NDJSON line recorded.
    const obs::Snapshot snap = registry->snapshot();
    auto counter = [&](std::string_view name) -> unsigned long long {
      for (const auto& c : snap.counters) {
        if (c.name == name) return (unsigned long long)c.value;
      }
      return 0;
    };
    std::printf(
        "telemetry summary (%zu snapshot lines -> %s):\n"
        "  scan: %llu chunks committed, %llu restored, %llu retried, "
        "%llu quarantined\n"
        "  work: %llu pairs (%llu restored), %llu hits, "
        "%llu gcd iterations\n"
        "  keystore: %llu records, %llu duplicate moduli, %llu parse errors\n",
        emitter->lines_written(), metrics_path.c_str(),
        counter("scan_chunks_committed_total"),
        counter("scan_chunks_restored_total"),
        counter("scan_chunks_retried_total"),
        counter("scan_chunks_quarantined_total"), counter("scan_pairs_total"),
        counter("scan_pairs_restored_total"), counter("scan_hits_total"),
        counter("gcd_iterations_total"), counter("keystore_records_total"),
        counter("keystore_duplicate_moduli_total"),
        counter("keystore_parse_errors_total"));
    for (const auto& h : snap.histograms) {
      if (h.name == "scan_checkpoint_fsync_seconds" && h.count > 0) {
        std::printf("  checkpoint fsync: %llu syncs, p50 %.3fms, p99 %.3fms\n",
                    (unsigned long long)h.count, h.quantile(0.5) * 1e3,
                    h.quantile(0.99) * 1e3);
      }
    }
  }
  if (!report.complete) {
    std::printf("rerun with the same arguments to continue from %s\n",
                checkpoint_path.c_str());
    return 3;
  }
  return report.quarantined.empty() ? 0 : 1;
}
