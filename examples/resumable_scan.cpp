// Resumable all-pairs scan CLI — the production shape of the paper's attack:
// load (or synthesize) a moduli corpus, sweep every pair with checkpointing,
// live progress, and crash recovery. Kill it mid-run and start it again with
// the same arguments: it picks up from the last committed chunk.
//
//   $ ./resumable_scan --generate 256 512 4        # demo corpus, then scan
//   $ ./resumable_scan harvested.keys              # scan a keystore file
//
// Options:
//   --checkpoint <path>    checkpoint journal (default: <corpus>.ckpt)
//   --chunk-blocks <n>     blocks per durable work unit (default 64)
//   --group-size <r>       moduli per block group (default 64)
//   --engine simt|scalar   bulk engine (default simt)
//   --threads <n>          worker threads (default: hardware)
//   --stop-after <n>       commit at most n chunks then exit 3 (time-sliced
//                          mode; rerun to continue)
//   --discard-checkpoint   start fresh if the checkpoint belongs to a
//                          different corpus or scan geometry
//   --generate <count> <bits> <weak> synthesize a corpus into corpus.keys
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "bulkgcd.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [<moduli-file>] [--generate <count> <bits> <weak>]\n"
               "          [--checkpoint <path>] [--chunk-blocks <n>]\n"
               "          [--group-size <r>] [--engine simt|scalar]\n"
               "          [--threads <n>] [--stop-after <n>]\n"
               "          [--discard-checkpoint]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bulkgcd;

  std::string corpus_path;
  std::string checkpoint_path;
  bulk::ScanConfig config;
  std::size_t gen_count = 0, gen_bits = 512, gen_weak = 4;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--generate") {
      gen_count = std::strtoull(next("--generate"), nullptr, 10);
      gen_bits = std::strtoull(next("--generate bits"), nullptr, 10);
      gen_weak = std::strtoull(next("--generate weak"), nullptr, 10);
    } else if (arg == "--checkpoint") {
      checkpoint_path = next("--checkpoint");
    } else if (arg == "--chunk-blocks") {
      config.chunk_blocks = std::strtoull(next("--chunk-blocks"), nullptr, 10);
    } else if (arg == "--group-size") {
      config.pairs.group_size =
          std::strtoull(next("--group-size"), nullptr, 10);
    } else if (arg == "--engine") {
      const std::string engine = next("--engine");
      if (engine == "simt") {
        config.pairs.engine = bulk::EngineKind::kSimt;
      } else if (engine == "scalar") {
        config.pairs.engine = bulk::EngineKind::kScalar;
      } else {
        return usage(argv[0]);
      }
    } else if (arg == "--threads") {
      config.pairs.pool_threads = std::strtoull(next("--threads"), nullptr, 10);
    } else if (arg == "--stop-after") {
      config.stop_after_chunks =
          std::strtoull(next("--stop-after"), nullptr, 10);
    } else if (arg == "--discard-checkpoint") {
      config.discard_mismatched_checkpoint = true;
    } else if (!arg.empty() && arg[0] != '-') {
      corpus_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (corpus_path.empty() && gen_count == 0) return usage(argv[0]);

  std::vector<mp::BigInt> moduli;
  if (gen_count > 0) {
    if (corpus_path.empty()) corpus_path = "corpus.keys";
    rsa::CorpusSpec spec;
    spec.count = gen_count;
    spec.modulus_bits = gen_bits;
    spec.weak_pairs = gen_weak;
    spec.seed = 20150525;  // the paper's conference date, for reproducibility
    std::printf("generating %zu %zu-bit moduli (%zu weak pairs) -> %s\n",
                gen_count, gen_bits, gen_weak, corpus_path.c_str());
    moduli = rsa::generate_corpus(spec).moduli;
    rsa::save_moduli(corpus_path, moduli, "resumable_scan demo corpus");
  } else {
    try {
      moduli = rsa::load_moduli(corpus_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    std::printf("loaded %zu moduli from %s\n", moduli.size(),
                corpus_path.c_str());
  }

  if (checkpoint_path.empty()) checkpoint_path = corpus_path + ".ckpt";
  config.checkpoint = checkpoint_path;

  bulk::StreamProgressSink sink;
  config.sink = &sink;
  config.progress_every = 4;

  std::printf("corpus digest %016llx, checkpoint %s\n",
              (unsigned long long)rsa::corpus_digest(moduli),
              checkpoint_path.c_str());

  bulk::ScanReport report;
  try {
    report = bulk::run_resumable_scan(moduli, config);
  } catch (const std::exception& e) {
    std::fprintf(stderr,
                 "error: %s\n"
                 "(pass --discard-checkpoint to restart this scan from "
                 "scratch, or delete %s)\n",
                 e.what(), checkpoint_path.c_str());
    return 2;
  }

  std::printf("\n%s after %.2fs: %llu/%llu chunks, %llu pairs, %zu hits",
              report.complete ? "complete" : "interrupted",
              report.result.seconds, (unsigned long long)report.chunks_done,
              (unsigned long long)report.chunks_total,
              (unsigned long long)report.result.pairs_tested,
              report.result.hits.size());
  if (report.resumed) std::printf(" (resumed)");
  std::printf("\n");
  for (const auto& hit : report.result.hits) {
    std::printf("  keys %zu and %zu share a %zu-bit prime %s\n", hit.i, hit.j,
                hit.factor.bit_length(), hit.factor.to_hex().c_str());
  }
  for (const auto& q : report.quarantined) {
    std::printf("  QUARANTINED chunk %zu: %s\n", q.chunk_index,
                q.error.c_str());
  }
  if (!report.complete) {
    std::printf("rerun with the same arguments to continue from %s\n",
                checkpoint_path.c_str());
    return 3;
  }
  return report.quarantined.empty() ? 0 : 1;
}
