// Large-corpus scan comparing the two published attacks side by side:
// the paper's bulk pairwise GCD (all m(m−1)/2 pairs, Approximate Euclidean,
// SIMT bulk engine) against Bernstein-style batch GCD (the fastgcd lineage),
// with a CSV report of per-method timing and the victims each one finds.
//
//   $ ./corpus_scan [num_keys] [modulus_bits] [weak_pairs] [csv_path]
//   defaults:        128        512            4            (stdout only)
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "bulkgcd.hpp"

int main(int argc, char** argv) {
  using namespace bulkgcd;

  const std::size_t num_keys = argc > 1 ? std::atoi(argv[1]) : 128;
  const std::size_t bits = argc > 2 ? std::atoi(argv[2]) : 512;
  const std::size_t weak_pairs = argc > 3 ? std::atoi(argv[3]) : 4;
  const char* csv_path = argc > 4 ? argv[4] : nullptr;

  rsa::CorpusSpec spec;
  spec.count = num_keys;
  spec.modulus_bits = bits;
  spec.weak_pairs = weak_pairs;
  spec.seed = 424242;
  std::printf("generating %zu %zu-bit moduli (%zu weak pairs)...\n", num_keys,
              bits, weak_pairs);
  const rsa::WeakCorpus corpus = rsa::generate_corpus(spec);

  // Method 1: bulk pairwise GCD (the paper).
  bulk::AllPairsConfig config;
  config.engine = bulk::EngineKind::kSimt;
  const bulk::AllPairsResult pairwise = bulk::all_pairs_gcd(corpus.moduli, config);

  // Method 2: batch GCD (product + remainder tree).
  Timer batch_timer;
  const batchgcd::BatchGcdResult batch = batchgcd::batch_gcd(corpus.moduli);
  const double batch_seconds = batch_timer.seconds();
  const auto batch_weak = batchgcd::weak_indices(batch);

  std::printf("\nmethod            time (s)   victims found\n");
  std::printf("pairwise (paper)  %8.3f   %zu pairs -> %zu keys\n",
              pairwise.seconds, pairwise.hits.size(), 2 * pairwise.hits.size());
  std::printf("batch gcd         %8.3f   %zu keys\n", batch_seconds,
              batch_weak.size());

  // The two methods must agree on the victim set.
  std::vector<bool> pairwise_weak(num_keys, false);
  for (const auto& hit : pairwise.hits) {
    pairwise_weak[hit.i] = pairwise_weak[hit.j] = true;
  }
  std::size_t agreement = 0;
  for (const std::size_t idx : batch_weak) {
    if (pairwise_weak[idx]) ++agreement;
  }
  std::printf("victim-set agreement: %zu / %zu\n", agreement, batch_weak.size());

  // Per-victim report (+ optional CSV).
  std::ofstream csv;
  if (csv_path) {
    csv.open(csv_path);
    csv << "key_index,shared_with,factor_bits,method\n";
  }
  std::printf("\nvictims:\n");
  for (const auto& hit : pairwise.hits) {
    std::printf("  keys %3zu and %3zu share a %zu-bit prime\n", hit.i, hit.j,
                hit.factor.bit_length());
    if (csv) {
      csv << hit.i << "," << hit.j << "," << hit.factor.bit_length()
          << ",pairwise\n";
      csv << hit.j << "," << hit.i << "," << hit.factor.bit_length()
          << ",pairwise\n";
    }
  }
  if (csv_path) std::printf("CSV written to %s\n", csv_path);

  const bool ok = pairwise.hits.size() == corpus.weak.size() &&
                  batch_weak.size() == 2 * corpus.weak.size() &&
                  agreement == batch_weak.size();
  std::printf("\nground truth %s\n", ok ? "matched" : "MISMATCH");
  return ok ? 0 : 1;
}
