// Quickstart: factor two RSA moduli that share a prime with one GCD.
//
//   $ ./quickstart
//
// Generates two 1024-bit RSA keys that (incorrectly) reuse a prime, then
// recovers both private keys with a single Approximate-Euclidean GCD — the
// paper's attack in its smallest form.
#include <cstdio>

#include "bulkgcd.hpp"

int main() {
  using namespace bulkgcd;

  // A broken key generator: the same prime p ends up in two keys.
  Xoshiro256 rng(7);
  const mp::BigInt p = rsa::random_prime(rng, 512);
  const mp::BigInt q1 = rsa::random_prime(rng, 512);
  const mp::BigInt q2 = rsa::random_prime(rng, 512);
  const rsa::KeyPair alice = rsa::keypair_from_primes(p, q1);
  const rsa::KeyPair bob = rsa::keypair_from_primes(p, q2);

  std::printf("alice.n = %s...\n", alice.n.to_hex().substr(0, 32).c_str());
  std::printf("bob.n   = %s...\n", bob.n.to_hex().substr(0, 32).c_str());

  // The attack: one early-terminate GCD of the two public moduli.
  gcd::GcdStats stats;
  const auto probe = gcd::probe_moduli_pair(alice.n, bob.n,
                                            gcd::Variant::kApproximate, &stats);
  if (!probe.shares_factor) {
    std::printf("no shared factor found (unexpected!)\n");
    return 1;
  }
  std::printf("shared prime recovered in %llu iterations:\n  p = %s...\n",
              (unsigned long long)stats.iterations,
              probe.factor.to_hex().substr(0, 32).c_str());

  // Rebuild Alice's private key from the public key plus the factor,
  // and decrypt a message encrypted for her.
  const mp::BigInt cipher =
      rsa::encrypt(rsa::encode_message("hello, weak key"), alice.n, alice.e);
  const rsa::KeyPair cracked =
      rsa::recover_private_key(alice.n, alice.e, probe.factor);
  std::printf("decrypted with the recovered key: \"%s\"\n",
              rsa::decode_message(rsa::decrypt(cipher, cracked.n, cracked.d))
                  .c_str());
  return 0;
}
