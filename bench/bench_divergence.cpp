// Reproduces §VII's branch-divergence observation: on a SIMT machine Binary
// Euclidean's three-way if/else-if/else serializes warps (the paper blames
// this for its poor CPU/GPU ratio of ~16-23 vs ~50-130 for the others),
// while Fast Binary has a single branch and Approximate Euclidean's second
// branch (β > 0) fires with probability < 1e-8.
#include <cstdio>

#include "bench_util.hpp"
#include "bulk/simt.hpp"

using namespace bulkgcd;
using bench::Table;

int main() {
  bench::banner("bench_divergence",
                "§VII branch divergence on the SIMT engine (warp statistics)");

  const std::size_t lanes = bench::env_size("BULKGCD_BENCH_MODULI", 64);
  const auto sizes = bench::bit_sizes();
  const gcd::Variant variants[] = {gcd::Variant::kBinary,
                                   gcd::Variant::kFastBinary,
                                   gcd::Variant::kApproximate};

  Table table({"bits", "algorithm", "warp rounds", "divergent rounds",
               "divergent %", "serialization factor", "lane utilization"});
  for (const auto bits : sizes) {
    const std::size_t m = bits <= 1024 ? 64 : 16;
    const auto& moduli = bench::corpus(bits, m);
    for (const auto variant : variants) {
      bulk::SimtBatch<std::uint32_t> batch(lanes, bits / 32, 32);
      for (std::size_t i = 0; i < lanes; ++i) {
        const auto [a, b] = bench::cyclic_pair(i, m);
        batch.load(i, moduli[a].limbs(), moduli[b].limbs());
      }
      batch.run(variant, bits / 2);  // early-terminate, as on the GPU
      const auto& st = batch.stats();
      table.add_row(
          {std::to_string(bits), to_string(variant),
           bench::fmt_u(st.warp_rounds), bench::fmt_u(st.divergent_warp_rounds),
           bench::fmt(100.0 * double(st.divergent_warp_rounds) /
                          double(st.warp_rounds),
                      1),
           bench::fmt(st.serialization_factor(), 3),
           bench::fmt(st.lane_utilization(), 3)});
    }
  }
  table.print();

  std::printf(
      "\npaper expectation: Binary serializes ~2-3 branch groups per warp\n"
      "round; Fast Binary exactly 1; Approximate ~1 (its beta>0 branch never\n"
      "fires at d = 32). This is the mechanism behind Table V's CPU/GPU\n"
      "ratio gap for (C).\n");
  return 0;
}
