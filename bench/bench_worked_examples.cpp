// Reproduces the paper's worked-example Tables I, II and III for
// X = 1111,1110,1101,1100,1011 (1043915) and Y = 1011,1011,1011,1011,1011
// (768955): full iteration traces with the same binary rendering, quotient
// columns, and (α, β)/case columns (Table III uses d = 4-bit words).
#include <cstdio>

#include "bench_util.hpp"
#include "gcd/reference.hpp"

using namespace bulkgcd;
using bench::Table;

namespace {

const mp::BigInt kX = mp::BigInt::from_dec("1043915");
const mp::BigInt kY = mp::BigInt::from_dec("768955");

void print_binary_trace(const char* title, const gcd::RefRun& run,
                        bool show_quotient) {
  std::printf("\n-- %s: %llu iterations, gcd = %s (%s)\n", title,
              (unsigned long long)run.stats.iterations, run.gcd.to_dec().c_str(),
              run.gcd.to_binary_grouped().c_str());
  std::vector<std::string> header = {"#", "X", "Y"};
  if (show_quotient) header.push_back("Q");
  Table table(header);
  for (std::size_t i = 0; i < run.trace.size(); ++i) {
    std::vector<std::string> row = {bench::fmt_u(i + 1),
                                    run.trace[i].x.to_binary_grouped(),
                                    run.trace[i].y.to_binary_grouped()};
    if (show_quotient) row.push_back(bench::fmt_u(run.trace[i].quotient));
    table.add_row(std::move(row));
  }
  table.print();
}

}  // namespace

int main() {
  bench::banner("bench_worked_examples",
                "Tables I, II, III (worked iteration traces)");

  const gcd::RefOptions trace_opt{0, true};

  // Table I.
  print_binary_trace("Table I left: Binary Euclidean",
                     ref_binary(kX, kY, trace_opt), false);
  print_binary_trace("Table I right: Fast Binary Euclidean",
                     ref_fast_binary(kX, kY, trace_opt), false);

  // Table II.
  print_binary_trace("Table II left: Original Euclidean",
                     ref_original(kX, kY, trace_opt), true);
  print_binary_trace("Table II right: Fast Euclidean",
                     ref_fast(kX, kY, trace_opt), true);

  // Table III: Approximate Euclidean with d = 4.
  const gcd::RefRun approx = ref_approximate(kX, kY, 4, trace_opt);
  std::printf("\n-- Table III: Approximate Euclidean (d = 4): %llu iterations, "
              "gcd = %s\n",
              (unsigned long long)approx.stats.iterations,
              approx.gcd.to_dec().c_str());
  Table table({"#", "X", "Y", "(alpha, beta)", "CASE"});
  for (std::size_t i = 0; i < approx.trace.size(); ++i) {
    const auto& step = approx.trace[i];
    table.add_row({bench::fmt_u(i + 1), step.x.to_binary_grouped(),
                   step.y.to_binary_grouped(),
                   "(" + bench::fmt_u(step.alpha) + ", " +
                       bench::fmt_u(step.beta) + ")",
                   gcd::to_string(step.which)});
  }
  table.print();

  std::printf(
      "\npaper expectation: Binary 24, Fast Binary 16, Original 11, Fast 8, "
      "Approximate(d=4) 9 iterations; all gcd = 0101 (5).\n");
  return 0;
}
