// Ablation: quotient quality. The design space between (D) Fast Binary
// (quotient always 1), (E) Approximate (α·D^β from the top two words, one
// 2d-bit division) and (B) Fast (exact multiword quotient) trades division
// cost against iteration count. This bench isolates that trade-off on one
// CPU core: iterations per GCD, divisions per GCD, and wall time.
#include <cstdio>

#include "bench_util.hpp"
#include "core/timer.hpp"
#include "gcd/algorithms.hpp"
#include "gcd/lehmer.hpp"

using namespace bulkgcd;
using bench::Table;

int main() {
  bench::banner("bench_ablation_quotient",
                "design ablation: quotient quality (D: unit, E: approx, B: exact)");

  const std::size_t m = 2 * bench::env_size("BULKGCD_BENCH_MODULI", 48);
  const gcd::Variant variants[] = {gcd::Variant::kFastBinary,
                                   gcd::Variant::kApproximate,
                                   gcd::Variant::kFast};

  for (const bool early : {false, true}) {
    std::printf("\n-- %s versions\n", early ? "Early-terminate" : "Non-terminate");
    Table table({"bits", "quotient strategy", "iterations/gcd", "divisions/gcd",
                 "us/gcd"});
    for (const auto bits : bench::bit_sizes()) {
      const auto& moduli = bench::corpus(bits, m);
      for (const auto variant : variants) {
        gcd::GcdEngine<std::uint32_t> engine(bits / 32);
        gcd::GcdStats st;
        Timer timer;
        std::size_t pairs = 0;
        for (std::size_t i = 0; i + 1 < moduli.size(); i += 2) {
          engine.run(variant, moduli[i].limbs(), moduli[i + 1].limbs(),
                     early ? bits / 2 : 0, &st);
          ++pairs;
        }
        const double us = timer.micros() / double(pairs);
        const char* label = variant == gcd::Variant::kFastBinary ? "unit (D)"
                            : variant == gcd::Variant::kApproximate
                                ? "approx 2d-bit (E)"
                                : "exact multiword (B)";
        table.add_row({std::to_string(bits), label,
                       bench::fmt(double(st.iterations) / double(pairs), 1),
                       bench::fmt(double(st.divisions) / double(pairs), 1),
                       bench::fmt(us, 2)});
      }
      if (!early) {
        // Lehmer windows (extension baseline; has no early-terminate mode
        // here — it computes the exact gcd).
        gcd::LehmerStats lst;
        Timer timer;
        std::size_t pairs = 0;
        for (std::size_t i = 0; i + 1 < moduli.size(); i += 2) {
          gcd::gcd_lehmer(moduli[i], moduli[i + 1], &lst);
          ++pairs;
        }
        table.add_row({std::to_string(bits), "Lehmer windows (ext)",
                       bench::fmt(double(lst.window_rounds) / double(pairs), 1),
                       bench::fmt(double(lst.fallback_divisions) / double(pairs), 1),
                       bench::fmt(timer.micros() / double(pairs), 2)});
      }
    }
    table.print();
  }

  std::printf(
      "\nexpectation: (E) needs half the iterations of (D) at the cost of one\n"
      "hardware division each — a clear win. (B) saves at most a handful of\n"
      "iterations over (E) but pays a full multiword division per iteration,\n"
      "so it loses on wall time: the paper's core design point.\n");
  return 0;
}
