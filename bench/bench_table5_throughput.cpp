// Reproduces Table V: time per GCD for the three GPU-suitable algorithms
// (C) Binary, (D) Fast Binary, (E) Approximate over all pairs of a corpus of
// RSA moduli, in non- and early-terminate modes.
//
// Columns (hardware substitution per DESIGN.md):
//   CPU us/gcd   — real wall-clock of the scalar engine on this machine
//                  (the paper's Xeon X7460 column analogue);
//   SIMT us/gcd  — real wall-clock of the warp-lockstep bulk engine with
//                  column-wise layout (the GPU code path executed on CPU —
//                  structural analogue, not a speed claim);
//   UMM us/gcd   — modelled GPU time: measured per-GCD memory-access traces
//                  replayed iteration-lockstep on the paper's UMM cost model
//                  with p = 16384 threads, w = 32, l = 200, 1 ns per unit;
//   CPU/UMM      — the modelled bulk-GPU speedup (paper: CPU/GPU column).
//
// Paper (1024-bit, early-terminate): CPU 56.2/33.6/28.6 us,
// GPU 2.93/0.583/0.346 us, ratio 19.2/57.6/82.7 for (C)/(D)/(E).
// Expected shape: (E) < (D) < (C) in every column; (C)'s speedup is much
// smaller than (D)/(E) because of warp divergence.
#include <cstdio>

#include "bench_util.hpp"
#include "bulk/allpairs.hpp"
#include "umm/oblivious.hpp"

using namespace bulkgcd;
using bench::Table;

namespace {

constexpr std::size_t kUmmThreads = 16384;
constexpr std::size_t kUmmWidth = 32;
constexpr std::size_t kUmmLatency = 200;
constexpr double kNsPerTimeUnit = 1.0;

struct Cell {
  double cpu_us;
  double simt_us;
  double umm_us;
  double transfer_us_total;
  std::uint64_t pairs;
};

std::size_t moduli_for_bits(std::size_t base, std::size_t bits) {
  if (bits <= 1024) return base;
  if (bits == 2048) return std::max<std::size_t>(12, base / 2);
  return std::max<std::size_t>(8, base / 4);
}

Cell run_cell(gcd::Variant variant, std::size_t bits, std::size_t m, bool early) {
  const auto& moduli = bench::corpus(bits, m);
  Cell cell{};

  bulk::AllPairsConfig config;
  config.variant = variant;
  config.early_terminate = early;
  config.group_size = 32;
  config.pool_threads = 1;  // timing: keep it on one core for clean ratios

  config.engine = bulk::EngineKind::kScalar;
  const auto cpu = bulk::all_pairs_gcd(moduli, config);
  cell.cpu_us = cpu.micros_per_gcd();
  cell.pairs = cpu.pairs_tested;

  config.engine = bulk::EngineKind::kSimt;
  const auto simt = bulk::all_pairs_gcd(moduli, config);
  cell.simt_us = simt.micros_per_gcd();

  // UMM model: trace a sample of pairs, replay column-wise, extrapolate the
  // warp-coalescing factor phi to p = kUmmThreads.
  std::vector<std::pair<mp::BigInt, mp::BigInt>> sample;
  const std::size_t sample_size = std::min<std::size_t>(24, m - 1);
  for (std::size_t i = 0; i < sample_size; ++i) {
    sample.emplace_back(moduli[i], moduli[i + 1]);
  }
  const auto traces = umm::collect_traces(variant, sample, early ? bits / 2 : 0,
                                          moduli.front().size() + 2);
  const umm::UmmSimulator sim({kUmmWidth, kUmmLatency});
  const auto replay = sim.replay_iteration_aligned(
      traces, umm::Layout::kColumnWise, 2 * (moduli.front().size() + 2));
  const double phi =
      double(replay.stage_slots) / double(std::max<std::uint64_t>(1, replay.warp_dispatches));
  const double steps = double(replay.steps);
  const double time_units_bulk =
      steps * (phi * double(kUmmThreads) / double(kUmmWidth) +
               double(kUmmLatency) - 1.0);
  cell.umm_us = time_units_bulk / double(kUmmThreads) * kNsPerTimeUnit / 1000.0;

  // Host->device transfer accounting (the paper: 16K 4096-bit moduli move in
  // 0.002 s, negligible). PCIe 3.0 x16 ~ 12 GB/s.
  cell.transfer_us_total = double(cpu.input_bytes) / 12e9 * 1e6;
  return cell;
}

}  // namespace

int main() {
  bench::banner("bench_table5_throughput",
                "Table V (us per GCD, CPU vs bulk-GPU model) + transfer note");

  const std::size_t base_m = bench::env_size("BULKGCD_BENCH_MODULI", 48);
  const auto sizes = bench::bit_sizes();
  const gcd::Variant variants[] = {gcd::Variant::kBinary,
                                   gcd::Variant::kFastBinary,
                                   gcd::Variant::kApproximate};

  std::printf("UMM model parameters: p=%zu threads, w=%zu, l=%zu, %.1f ns/unit\n",
              kUmmThreads, kUmmWidth, kUmmLatency, kNsPerTimeUnit);

  for (const bool early : {false, true}) {
    std::printf("\n-- %s versions\n", early ? "Early-terminate" : "Non-terminate");
    Table table({"bits", "algorithm", "pairs", "CPU us/gcd", "SIMT us/gcd",
                 "UMM us/gcd", "CPU/UMM", "transfer us (total)"});
    for (const auto bits : sizes) {
      const std::size_t m = moduli_for_bits(base_m, bits);
      for (const auto variant : variants) {
        const Cell cell = run_cell(variant, bits, m, early);
        table.add_row({std::to_string(bits), to_string(variant),
                       bench::fmt_u(cell.pairs), bench::fmt(cell.cpu_us, 3),
                       bench::fmt(cell.simt_us, 3), bench::fmt(cell.umm_us, 3),
                       bench::fmt(cell.cpu_us / cell.umm_us, 1),
                       bench::fmt(cell.transfer_us_total, 1)});
      }
    }
    table.print();
  }

  // The paper's Table V for side-by-side reading (Xeon X7460 / GTX 780 Ti).
  std::printf("\npaper reference (1024-bit rows of Table V):\n");
  Table paper({"mode", "algorithm", "CPU us/gcd", "GPU us/gcd", "CPU/GPU"});
  paper.add_row({"non-term", "Binary", "81.0", "3.54", "22.9"});
  paper.add_row({"non-term", "FastBinary", "49.7", "0.683", "72.7"});
  paper.add_row({"non-term", "Approximate", "43.4", "0.437", "99.3"});
  paper.add_row({"early", "Binary", "56.2", "2.93", "19.2"});
  paper.add_row({"early", "FastBinary", "33.6", "0.583", "57.6"});
  paper.add_row({"early", "Approximate", "28.6", "0.346", "82.7"});
  paper.print();

  std::printf(
      "\npaper expectation: (E) < (D) < (C) in every column; CPU/GPU ratio of\n"
      "(C) well below (D) and (E) (branch divergence); transfer time\n"
      "negligible next to the GCD sweep. Absolute ratios differ from the\n"
      "paper's (modern CPU baseline; memory-side-only UMM model) — see\n"
      "EXPERIMENTS.md.\n");
  return 0;
}
