// Reproduces Table IV: mean number of do-while iterations of the five
// Euclidean algorithms over random pairs of RSA moduli, for 512/1024/2048/
// 4096-bit moduli, in non-terminate and early-terminate modes, plus the
// (E) − (B) delta showing the approximate quotient costs almost nothing.
//
// Paper (10000 pairs, OpenSSL moduli):
//   non-term 1024:  (A) 598.4 (B) 380.8 (C) 1445.1 (D) 723.6 (E) 380.8
//   early    1024:  (A) 299.3 (B) 190.3 (C) 722.8  (D) 361.0 (E) 190.3
// Expected shape: (C) ≈ 2×(D) ≈ 4×(E); (E) ≈ (B); early ≈ half of non-term;
// iterations proportional to the bit length.
#include <cstdio>

#include "bench_util.hpp"
#include "gcd/algorithms.hpp"

using namespace bulkgcd;
using bench::Table;

namespace {

struct CellStats {
  double mean_iterations = 0;
  std::uint64_t beta_nonzero = 0;
  std::uint64_t pairs = 0;
};

CellStats run_cell(gcd::Variant variant, const std::vector<mp::BigInt>& moduli,
                   std::size_t pairs, std::size_t early_bits) {
  gcd::GcdEngine<std::uint32_t> engine(moduli.front().size());
  CellStats cell;
  std::uint64_t total_iterations = 0;
  std::size_t done = 0;
  for (std::size_t i = 0; i < moduli.size() && done < pairs; ++i) {
    for (std::size_t j = i + 1; j < moduli.size() && done < pairs; ++j) {
      gcd::GcdStats st;
      engine.run(variant, moduli[i].limbs(), moduli[j].limbs(), early_bits, &st);
      total_iterations += st.iterations;
      cell.beta_nonzero += st.beta_nonzero;
      ++done;
    }
  }
  cell.pairs = done;
  cell.mean_iterations = double(total_iterations) / double(done);
  return cell;
}

std::size_t moduli_for_pairs(std::size_t pairs) {
  std::size_t m = 2;
  while (m * (m - 1) / 2 < pairs) ++m;
  return m;
}

}  // namespace

int main() {
  bench::banner("bench_table4_iterations",
                "Table IV (mean iterations per algorithm), §V beta statistics");

  const std::size_t base_pairs = bench::env_size("BULKGCD_BENCH_PAIRS", 200);
  const auto sizes = bench::bit_sizes();

  // pairs per size: the iteration distribution is tightly concentrated, so
  // larger (slower) sizes use fewer pairs.
  auto pairs_for = [&](std::size_t bits) {
    if (bits <= 1024) return base_pairs;
    if (bits == 2048) return std::max<std::size_t>(20, base_pairs / 4);
    return std::max<std::size_t>(10, base_pairs / 16);
  };

  for (const bool early : {false, true}) {
    std::printf("\n-- %s versions\n", early ? "Early-terminate" : "Non-terminate");
    std::vector<std::string> header = {"algorithm"};
    for (const auto bits : sizes) header.push_back(std::to_string(bits));
    Table table(header);

    std::map<std::size_t, CellStats> fast_cells, approx_cells;
    for (const gcd::Variant variant : gcd::kAllVariants) {
      std::vector<std::string> row = {std::string("(") +
                                      "ABCDE"[std::size_t(variant)] + ") " +
                                      to_string(variant)};
      for (const auto bits : sizes) {
        const std::size_t pairs = pairs_for(bits);
        const auto& moduli = bench::corpus(bits, moduli_for_pairs(pairs));
        const CellStats cell =
            run_cell(variant, moduli, pairs, early ? bits / 2 : 0);
        row.push_back(bench::fmt(cell.mean_iterations, 1));
        if (variant == gcd::Variant::kFast) fast_cells[bits] = cell;
        if (variant == gcd::Variant::kApproximate) approx_cells[bits] = cell;
      }
      table.add_row(std::move(row));
    }
    // The (E) − (B) delta row.
    std::vector<std::string> delta = {"(E)-(B)"};
    for (const auto bits : sizes) {
      delta.push_back(bench::fmt(approx_cells[bits].mean_iterations -
                                     fast_cells[bits].mean_iterations,
                                 4));
    }
    table.add_row(std::move(delta));
    table.print();

    // §V claim: β > 0 is vanishingly rare.
    std::printf("beta>0 events in (E): ");
    for (const auto bits : sizes) {
      std::printf("%zu-bit: %llu  ", bits,
                  (unsigned long long)approx_cells[bits].beta_nonzero);
    }
    std::printf("(paper: probability < 1e-8 at d = 32)\n");
  }

  std::printf(
      "\npaper expectation: (C) ≈ 2×(D) ≈ 4×(E); (E) ≈ (B) within 0.02%%;\n"
      "early-terminate halves every count; iterations scale linearly in "
      "bits.\n");
  return 0;
}
