// Ablation: the paper fixes d = 32 ("compute an approximation of quotient by
// just one 64-bit division"). Sweep the word size d ∈ {16, 32, 64} through
// the limb-templated engine: iteration counts drop slightly with larger d
// (better approximations), while per-iteration work is dominated by s/d limb
// operations — d = 32 is where 2d-bit hardware division is still cheap.
#include <cstdio>

#include "bench_util.hpp"
#include "core/timer.hpp"
#include "gcd/algorithms.hpp"
#include "gcd/reference.hpp"

using namespace bulkgcd;
using bench::Table;

namespace {

/// Re-express a u32-limbed value with limb type Limb.
template <typename Limb>
mp::BigIntT<Limb> convert(const mp::BigInt& v) {
  return mp::BigIntT<Limb>::from_hex(v.to_hex());
}

template <typename Limb>
std::pair<double, double> run_wordsize(const std::vector<mp::BigInt>& moduli,
                                       std::size_t early_bits) {
  std::vector<mp::BigIntT<Limb>> converted;
  converted.reserve(moduli.size());
  for (const auto& n : moduli) converted.push_back(convert<Limb>(n));
  gcd::GcdEngine<Limb> engine(converted.front().size());
  gcd::GcdStats st;
  Timer timer;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i + 1 < converted.size(); i += 2) {
    engine.run(gcd::Variant::kApproximate, converted[i].limbs(),
               converted[i + 1].limbs(), early_bits, &st);
    ++pairs;
  }
  return {double(st.iterations) / double(pairs), timer.micros() / double(pairs)};
}

}  // namespace

int main() {
  bench::banner("bench_ablation_wordsize",
                "design ablation: word size d (paper fixes d = 32)");

  const std::size_t m = 2 * bench::env_size("BULKGCD_BENCH_MODULI", 48);
  Table table({"bits", "d", "iterations/gcd", "us/gcd (1 core)"});
  for (const auto bits : bench::bit_sizes()) {
    const auto& moduli = bench::corpus(bits, m);
    const auto [i16, t16] = run_wordsize<std::uint16_t>(moduli, bits / 2);
    const auto [i32, t32] = run_wordsize<std::uint32_t>(moduli, bits / 2);
    const auto [i64, t64] = run_wordsize<std::uint64_t>(moduli, bits / 2);
    table.add_row({std::to_string(bits), "16", bench::fmt(i16, 1), bench::fmt(t16, 2)});
    table.add_row({std::to_string(bits), "32", bench::fmt(i32, 1), bench::fmt(t32, 2)});
    table.add_row({std::to_string(bits), "64", bench::fmt(i64, 1), bench::fmt(t64, 2)});
  }
  table.print();

  std::printf(
      "\nexpectation: iterations barely move from d = 16 to 64 (the quotient\n"
      "approximation saturates), but us/gcd drops roughly with 1/d because\n"
      "each iteration streams s/d limbs — on CPUs with cheap 128-bit\n"
      "division d = 64 wins; CUDA cores had fast 64-bit division only, hence\n"
      "the paper's d = 32.\n");
  return 0;
}
