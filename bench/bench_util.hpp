// Shared helpers for the table/figure reproduction binaries: corpus caching,
// fixed-width table printing, and environment-based scaling.
//
// Every binary runs with NO arguments at laptop-friendly defaults; set
//   BULKGCD_BENCH_PAIRS   — pairs per Table-IV cell (default 200)
//   BULKGCD_BENCH_MODULI  — moduli per Table-V sweep (default 48)
//   BULKGCD_BENCH_MAXBITS — largest modulus size (default 4096)
// to rescale. The paper used 10000 pairs / 16K moduli on a 2013 GPU; the
// statistics of interest (iteration means, algorithm ratios) converge at far
// smaller corpora.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "mp/bigint.hpp"
#include "rsa/corpus.hpp"

namespace bulkgcd::bench {

inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (!value) return fallback;
  const long parsed = std::atol(value);
  return parsed > 0 ? std::size_t(parsed) : fallback;
}

inline std::vector<std::size_t> bit_sizes() {
  const std::size_t max_bits = env_size("BULKGCD_BENCH_MAXBITS", 4096);
  std::vector<std::size_t> sizes;
  for (const std::size_t bits : {512u, 1024u, 2048u, 4096u}) {
    if (bits <= max_bits) sizes.push_back(bits);
  }
  return sizes;
}

/// Cache of RSA-moduli corpora keyed by (bits, count): in-process map plus a
/// disk cache shared across the bench binaries (prime generation would
/// otherwise dominate every run). Cache dir: $BULKGCD_CORPUS_CACHE, default
/// /tmp/bulkgcd_corpus_cache.
inline const std::vector<mp::BigInt>& corpus(std::size_t bits, std::size_t count,
                                             std::uint64_t seed = 20150525) {
  static std::map<std::pair<std::size_t, std::size_t>, std::vector<mp::BigInt>>
      cache;
  auto& slot = cache[{bits, count}];
  if (!slot.empty()) return slot;

  const char* dir_env = std::getenv("BULKGCD_CORPUS_CACHE");
  const std::filesystem::path dir =
      dir_env ? dir_env : "/tmp/bulkgcd_corpus_cache";
  const std::filesystem::path file =
      dir / ("moduli_" + std::to_string(bits) + "_" + std::to_string(count) +
             "_" + std::to_string(seed) + ".hex");
  std::error_code ignored;
  std::filesystem::create_directories(dir, ignored);

  if (std::ifstream in{file}) {
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) slot.push_back(mp::BigInt::from_hex(line));
    }
    if (slot.size() == count) return slot;
    slot.clear();  // stale or truncated: regenerate
  }

  rsa::CorpusSpec spec;
  spec.count = count;
  spec.modulus_bits = bits;
  spec.weak_pairs = 0;
  spec.seed = seed + bits;
  slot = rsa::generate_corpus(spec).moduli;

  if (std::ofstream out{file}) {
    for (const auto& n : slot) out << n.to_hex() << "\n";
  }
  return slot;
}

/// Deterministic pair (a, b) with a != b cycling over a corpus — lets a bench
/// use many lanes without generating lanes*2 fresh moduli.
inline std::pair<std::size_t, std::size_t> cyclic_pair(std::size_t k,
                                                       std::size_t m) {
  const std::size_t a = k % m;
  std::size_t b = (k + 1 + k / m) % m;
  if (a == b) b = (b + 1) % m;
  return {a, b};
}

/// Minimal fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void print() const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    print_row(header_, width);
    std::string rule;
    for (std::size_t c = 0; c < width.size(); ++c) {
      rule += std::string(width[c] + 2, '-');
      if (c + 1 < width.size()) rule += "+";
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) print_row(row, width);
  }

 private:
  static void print_row(const std::vector<std::string>& row,
                        const std::vector<std::size_t>& width) {
    std::string line;
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += " " + cell + std::string(width[c] - cell.size() + 1, ' ');
      if (c + 1 < width.size()) line += "|";
    }
    std::printf("%s\n", line.c_str());
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double value, int precision = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

inline std::string fmt_u(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", (unsigned long long)value);
  return buf;
}

inline void banner(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("================================================================\n");
}

}  // namespace bulkgcd::bench
