// Reproduces Figure 1 / Section IV: each iteration of Binary, Fast Binary
// and Approximate Euclidean costs 3·s/d + O(1) limb accesses (read X, read
// Y, write X in one fused streaming pass), 4·s/d + O(1) on the rare β > 0
// path. Measured with the counting tracer across bit sizes.
#include <cstdio>

#include "bench_util.hpp"
#include "gcd/algorithms.hpp"

using namespace bulkgcd;
using bench::Table;

int main() {
  bench::banner("bench_memaccess",
                "Figure 1 / §IV (3·s/d + O(1) limb accesses per iteration)");

  const auto sizes = bench::bit_sizes();
  const gcd::Variant variants[] = {gcd::Variant::kBinary,
                                   gcd::Variant::kFastBinary,
                                   gcd::Variant::kApproximate};

  for (const bool early : {false, true}) {
    std::printf("\n-- %s versions (mean limb accesses per iteration; bound "
                "uses the mean operand size)\n",
                early ? "Early-terminate" : "Non-terminate");
    Table table({"bits", "algorithm", "iterations", "reads/iter", "writes/iter",
                 "total/iter", "3*s/d", "3*(s/2)/d"});
    for (const auto bits : sizes) {
      const auto& moduli = bench::corpus(bits, 12);
      for (const auto variant : variants) {
        gcd::GcdEngine<std::uint32_t> engine(bits / 32);
        gcd::GcdStats st;
        gcd::CountTracer tracer;
        for (std::size_t i = 0; i + 1 < moduli.size(); i += 2) {
          engine.run(variant, moduli[i].limbs(), moduli[i + 1].limbs(),
                     early ? bits / 2 : 0, &st, &tracer);
        }
        const double iters = double(st.iterations);
        table.add_row({std::to_string(bits), to_string(variant),
                       bench::fmt_u(st.iterations),
                       bench::fmt(double(tracer.reads) / iters, 1),
                       bench::fmt(double(tracer.writes) / iters, 1),
                       bench::fmt(double(tracer.total()) / iters, 1),
                       bench::fmt(3.0 * double(bits) / 32.0, 0),
                       bench::fmt(3.0 * double(bits) / 64.0, 0)});
      }
    }
    table.print();
  }

  std::printf(
      "\npaper expectation: total/iter sits between 3·(s/2)/d and 3·s/d + O(1)\n"
      "(operands shrink from s bits toward s/2 during a run; the fused pass\n"
      "touches each live limb of X and Y once and writes X once).\n");
  return 0;
}
