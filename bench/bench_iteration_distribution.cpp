// Extension: iteration-count DISTRIBUTIONS behind Table IV's means.
// The paper reports means over 10000 pairs; this bench shows the full
// distribution is extremely concentrated (stddev ~2-3% of the mean), which
// is why the means reproduce from corpora 10-100x smaller — and why a GPU
// warp running 32 early-terminated GCDs in lockstep wastes so few cycles on
// ragged finishes (lane utilization stays > 90%).
#include <cstdio>

#include "bench_util.hpp"
#include "core/stats.hpp"
#include "gcd/algorithms.hpp"

using namespace bulkgcd;
using bench::Table;

int main() {
  bench::banner("bench_iteration_distribution",
                "extension: spread of per-pair iteration counts (Table IV means)");

  const std::size_t pairs = bench::env_size("BULKGCD_BENCH_PAIRS", 300);
  std::size_t m = 2;
  while (m * (m - 1) / 2 < pairs) ++m;
  const std::size_t bits = 1024;
  const auto& moduli = bench::corpus(bits, m);

  Table table({"algorithm", "pairs", "mean", "stddev", "min", "max",
               "sem", "sem/mean %"});
  gcd::GcdEngine<std::uint32_t> engine(bits / 32);

  for (const gcd::Variant variant : gcd::kAllVariants) {
    RunningStats stats;
    Histogram histogram(0, 1200, 60);
    std::size_t done = 0;
    for (std::size_t i = 0; i < moduli.size() && done < pairs; ++i) {
      for (std::size_t j = i + 1; j < moduli.size() && done < pairs; ++j) {
        gcd::GcdStats st;
        engine.run(variant, moduli[i].limbs(), moduli[j].limbs(), bits / 2, &st);
        stats.add(double(st.iterations));
        histogram.add(double(st.iterations));
        ++done;
      }
    }
    table.add_row({to_string(variant), bench::fmt_u(stats.count()),
                   bench::fmt(stats.mean(), 1), bench::fmt(stats.stddev(), 1),
                   bench::fmt(stats.min(), 0), bench::fmt(stats.max(), 0),
                   bench::fmt(stats.sem(), 2),
                   bench::fmt(100.0 * stats.sem() / stats.mean(), 3)});
    if (variant == gcd::Variant::kApproximate) {
      std::printf("\nApproximate Euclidean iteration histogram "
                  "(1024-bit, early-terminate):\n%s",
                  histogram.render().c_str());
    }
  }
  std::printf("\n");
  table.print();

  std::printf(
      "\nreading: the standard error of each mean is well under 0.5%% at a\n"
      "few hundred pairs — Table IV's statistics do not need the paper's\n"
      "10000 pairs to reproduce. Min/max spread also bounds the lane-idle\n"
      "waste of warp-lockstep execution.\n");
  return 0;
}
