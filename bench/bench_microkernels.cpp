// google-benchmark microbenchmarks for the primitives the paper's inner loop
// is built from: the fused update kernel, approx(), multiword division,
// multiplication, and one full GCD per algorithm. These are the numbers a
// performance investigation starts from.
#include <benchmark/benchmark.h>

#include "gcd/algorithms.hpp"
#include "gcd/lehmer.hpp"
#include "gcd/approx.hpp"
#include "gcd/kernels.hpp"
#include "mp/karatsuba.hpp"
#include "mp/span_ops.hpp"
#include "rsa/modmath.hpp"
#include "rsa/montgomery.hpp"
#include "rsa/prime.hpp"

namespace {

using namespace bulkgcd;
using mp::BigInt;

/// Deterministic odd value of exactly `bits` bits.
BigInt make_odd(std::uint64_t seed, std::size_t bits) {
  Xoshiro256 rng(seed);
  std::vector<std::uint32_t> limbs((bits + 31) / 32);
  for (auto& limb : limbs) limb = std::uint32_t(rng());
  limbs.back() |= 0x80000000u >> ((32 - bits % 32) % 32);
  limbs.front() |= 1u;
  std::vector<std::uint32_t> masked = limbs;
  return BigInt::from_limbs(masked);
}

void BM_FusedSubmulStrip(benchmark::State& state) {
  const std::size_t bits = std::size_t(state.range(0));
  const BigInt y = make_odd(1, bits);
  const BigInt x = make_odd(2, bits + 30);
  std::vector<std::uint32_t> buf(x.size() + 2);
  gcd::NullTracer tracer;
  for (auto _ : state) {
    std::copy(x.limbs().begin(), x.limbs().end(), buf.begin());
    const std::size_t n = gcd::fused_submul_strip(
        buf.data(), x.size(), y.data(), y.size(), std::uint32_t(12345), tracer);
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * std::int64_t(x.size()));
}
BENCHMARK(BM_FusedSubmulStrip)->Arg(512)->Arg(1024)->Arg(2048)->Arg(4096);

void BM_Approx(benchmark::State& state) {
  const BigInt x = make_odd(3, std::size_t(state.range(0)));
  const BigInt y = make_odd(4, std::size_t(state.range(0)) - 17);
  for (auto _ : state) {
    const auto a = gcd::approx(x.data(), x.size(), y.data(), y.size());
    benchmark::DoNotOptimize(a.alpha);
  }
}
BENCHMARK(BM_Approx)->Arg(1024)->Arg(4096);

void BM_DivRemKnuthD(benchmark::State& state) {
  const std::size_t bits = std::size_t(state.range(0));
  const BigInt a = make_odd(5, bits);
  const BigInt b = make_odd(6, bits / 2);
  std::vector<std::uint32_t> q(a.size()), r(b.size());
  for (auto _ : state) {
    const auto sizes =
        mp::divrem(q.data(), r.data(), a.data(), a.size(), b.data(), b.size());
    benchmark::DoNotOptimize(sizes.remainder);
  }
}
BENCHMARK(BM_DivRemKnuthD)->Arg(1024)->Arg(4096);

void BM_MulSchoolbook(benchmark::State& state) {
  const std::size_t bits = std::size_t(state.range(0));
  const BigInt a = make_odd(7, bits);
  const BigInt b = make_odd(8, bits);
  std::vector<std::uint32_t> out(a.size() + b.size());
  for (auto _ : state) {
    const std::size_t n =
        mp::mul_schoolbook(out.data(), a.data(), a.size(), b.data(), b.size());
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_MulSchoolbook)->Arg(1024)->Arg(8192);

void BM_MulKaratsuba(benchmark::State& state) {
  const std::size_t bits = std::size_t(state.range(0));
  const BigInt a = make_odd(9, bits);
  const BigInt b = make_odd(10, bits);
  for (auto _ : state) {
    const auto out = mp::mul_karatsuba(a.data(), a.size(), b.data(), b.size());
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_MulKaratsuba)->Arg(8192)->Arg(65536);

void BM_GcdVariant(benchmark::State& state) {
  const auto variant = gcd::Variant(state.range(0));
  const std::size_t bits = std::size_t(state.range(1));
  // Products of primes, as in the paper's workload.
  Xoshiro256 rng(42);
  const BigInt n1 = rsa::random_prime(rng, bits / 2) * rsa::random_prime(rng, bits / 2);
  const BigInt n2 = rsa::random_prime(rng, bits / 2) * rsa::random_prime(rng, bits / 2);
  gcd::GcdEngine<std::uint32_t> engine(n1.size());
  for (auto _ : state) {
    const auto run =
        engine.run(variant, n1.limbs(), n2.limbs(), bits / 2);
    benchmark::DoNotOptimize(run.early_coprime);
  }
  state.SetLabel(std::string(to_string(variant)) + "/" + std::to_string(bits) +
                 "bit/early");
}
BENCHMARK(BM_GcdVariant)
    ->Args({std::int64_t(gcd::Variant::kBinary), 1024})
    ->Args({std::int64_t(gcd::Variant::kFastBinary), 1024})
    ->Args({std::int64_t(gcd::Variant::kApproximate), 1024})
    ->Args({std::int64_t(gcd::Variant::kOriginal), 1024})
    ->Args({std::int64_t(gcd::Variant::kFast), 1024});

void BM_GcdLehmer(benchmark::State& state) {
  const std::size_t bits = std::size_t(state.range(0));
  Xoshiro256 rng(43);
  const BigInt n1 = rsa::random_prime(rng, bits / 2) * rsa::random_prime(rng, bits / 2);
  const BigInt n2 = rsa::random_prime(rng, bits / 2) * rsa::random_prime(rng, bits / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gcd::gcd_lehmer(n1, n2));
  }
}
BENCHMARK(BM_GcdLehmer)->Arg(1024)->Arg(4096);

void BM_MontgomeryMul(benchmark::State& state) {
  const std::size_t bits = std::size_t(state.range(0));
  const BigInt n = make_odd(11, bits);
  const rsa::MontgomeryContext ctx(n);
  const BigInt a = ctx.to_mont(make_odd(12, bits - 2));
  const BigInt b = ctx.to_mont(make_odd(13, bits - 3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.mul(a, b));
  }
}
BENCHMARK(BM_MontgomeryMul)->Arg(512)->Arg(2048);

void BM_ModPowMontgomeryVsPlain(benchmark::State& state) {
  const bool montgomery = state.range(0) != 0;
  const std::size_t bits = 512;
  const BigInt n = make_odd(14, bits);
  const BigInt base = make_odd(15, bits - 1);
  const BigInt exp = make_odd(16, bits);
  const rsa::MontgomeryContext ctx(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(montgomery ? ctx.pow(base, exp)
                                        : rsa::modpow(base, exp, n));
  }
  state.SetLabel(montgomery ? "montgomery/512bit" : "divmod/512bit");
}
BENCHMARK(BM_ModPowMontgomeryVsPlain)->Arg(1)->Arg(0);

}  // namespace

BENCHMARK_MAIN();
