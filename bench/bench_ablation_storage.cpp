// Ablation: engine state placement. The paper's CUDA kernel keeps each
// thread's X/Y arrays at a compile-time-bounded size in (GPU) local memory;
// the CPU analogue is FixedGcdEngine (inline std::array storage, zero heap
// traffic) vs the default heap-vector GcdEngine. Two usage patterns:
//   reused engine    — one engine for the whole sweep (allocation amortized);
//   engine per GCD   — worst case for the heap engine, free for the inline
//                      one. The gap is the allocation + first-touch cost the
//                      GPU design avoids by construction.
#include <cstdio>

#include "bench_util.hpp"
#include "core/timer.hpp"
#include "gcd/algorithms.hpp"

using namespace bulkgcd;
using bench::Table;

namespace {

template <typename Engine>
double run_reused(const std::vector<mp::BigInt>& moduli, std::size_t cap,
                  std::size_t early_bits) {
  Engine engine(cap);
  Timer timer;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i + 1 < moduli.size(); i += 2) {
    engine.run(gcd::Variant::kApproximate, moduli[i].limbs(),
               moduli[i + 1].limbs(), early_bits);
    ++pairs;
  }
  return timer.micros() / double(pairs);
}

template <typename Engine>
double run_fresh(const std::vector<mp::BigInt>& moduli, std::size_t cap,
                 std::size_t early_bits) {
  Timer timer;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i + 1 < moduli.size(); i += 2) {
    Engine engine(cap);
    engine.run(gcd::Variant::kApproximate, moduli[i].limbs(),
               moduli[i + 1].limbs(), early_bits);
    ++pairs;
  }
  return timer.micros() / double(pairs);
}

}  // namespace

int main() {
  bench::banner("bench_ablation_storage",
                "design ablation: heap vs inline engine state (CUDA-local analogue)");

  const std::size_t m = 2 * bench::env_size("BULKGCD_BENCH_MODULI", 48);
  Table table({"bits", "engine", "reused us/gcd", "fresh-per-gcd us/gcd"});
  for (const std::size_t bits : {512u, 1024u}) {
    const auto& moduli = bench::corpus(bits, m);
    const std::size_t cap = bits / 32;
    const std::size_t early = bits / 2;
    using Heap = gcd::GcdEngine<std::uint32_t>;
    table.add_row({std::to_string(bits), "heap (vector)",
                   bench::fmt(run_reused<Heap>(moduli, cap, early), 2),
                   bench::fmt(run_fresh<Heap>(moduli, cap, early), 2)});
    if (bits == 512) {
      using Fixed = gcd::FixedGcdEngine<std::uint32_t, 16>;
      table.add_row({std::to_string(bits), "inline (array)",
                     bench::fmt(run_reused<Fixed>(moduli, cap, early), 2),
                     bench::fmt(run_fresh<Fixed>(moduli, cap, early), 2)});
    } else {
      using Fixed = gcd::FixedGcdEngine<std::uint32_t, 32>;
      table.add_row({std::to_string(bits), "inline (array)",
                     bench::fmt(run_reused<Fixed>(moduli, cap, early), 2),
                     bench::fmt(run_fresh<Fixed>(moduli, cap, early), 2)});
    }
  }
  table.print();

  std::printf(
      "\nexpectation: identical in the reused pattern (the algorithm\n"
      "dominates); the heap engine pays allocation + first-touch when\n"
      "constructed per GCD, which the inline engine avoids — the reason\n"
      "per-thread GPU state is fixed-size local memory, not malloc.\n");
  return 0;
}
