// Reproduces Figure 2 / Theorem 1: bulk execution of an oblivious sequential
// algorithm on the UMM with width w and latency l takes (p/w + l − 1)·t time
// units — validated by replaying synthetic oblivious traces on the
// cycle-accounting simulator across a (p, w, l, t) sweep, plus the paper's
// Figure-2 worked pipeline example.
#include <cstdio>

#include "bench_util.hpp"
#include "umm/pipeline.hpp"
#include "umm/umm.hpp"

using namespace bulkgcd;
using bench::Table;

namespace {

std::vector<umm::ThreadTrace> oblivious_traces(std::size_t threads,
                                               std::size_t steps) {
  std::vector<umm::ThreadTrace> traces(threads);
  for (auto& trace : traces) {
    for (std::size_t i = 0; i < steps; ++i) {
      trace.addresses.push_back(std::uint32_t(i % 64));
    }
  }
  return traces;
}

}  // namespace

int main() {
  bench::banner("bench_umm_theorem1",
                "Figure 2 + Theorem 1 ((p/w + l - 1)*t bulk-execution bound)");

  // Figure 2's worked example: w = 4, l = 5, W(0) -> 3 groups, W(1) -> 1.
  {
    const umm::UmmSimulator sim({4, 5});
    std::vector<umm::ThreadTrace> traces(8);
    const std::uint32_t w0[4] = {3, 4, 6, 8};
    const std::uint32_t w1[4] = {12, 13, 14, 15};
    for (int i = 0; i < 4; ++i) {
      traces[i].addresses.push_back(w0[i]);
      traces[4 + i].addresses.push_back(w1[i]);
    }
    const auto result = sim.replay(traces, umm::Layout::kRowWise, 0);
    std::printf("\nFigure 2 example (w=4, l=5): simulated %llu time units "
                "(paper: 3 + 1 + 5 - 1 = 8)\n",
                (unsigned long long)result.time_units);
  }

  std::printf("\nTheorem 1 sweep (column-wise oblivious bulk execution):\n");
  Table table({"p", "w", "l", "t", "simulated", "(p/w+l-1)*t", "match"});
  for (const std::size_t w : {8u, 32u}) {
    for (const std::size_t l : {16u, 100u, 400u}) {
      const umm::UmmSimulator sim({w, l});
      for (const std::size_t p : {w, 8 * w, 64 * w}) {
        for (const std::size_t t : {16u, 256u}) {
          const auto traces = oblivious_traces(p, t);
          const auto result = sim.replay(traces, umm::Layout::kColumnWise, 64);
          const std::uint64_t predicted = sim.theorem1_time(p, t);
          table.add_row({std::to_string(p), std::to_string(w), std::to_string(l),
                         std::to_string(t), bench::fmt_u(result.time_units),
                         bench::fmt_u(predicted),
                         result.time_units == predicted ? "yes" : "NO"});
        }
      }
    }
  }
  table.print();

  std::printf("\npaper expectation: simulated time equals the Theorem-1 bound "
              "for every row (the bound is tight for oblivious algorithms).\n");

  // Cycle-level pipeline (no per-step barrier): latency hiding in action.
  std::printf("\nPipeline (cycle-level, Figure 2 taken literally) vs the "
              "barrier bound:\n");
  Table pipe({"p", "w", "l", "t", "pipeline", "max(p/w, l)*t", "barrier bound"});
  for (const std::size_t w : {32u}) {
    for (const std::size_t l : {100u, 400u}) {
      const umm::PipelineSimulator sim({w, l});
      const umm::UmmSimulator barrier({w, l});
      for (const std::size_t p : {4 * w, 64 * w, 1024 * w}) {
        const std::size_t t = 64;
        const auto traces = oblivious_traces(p, t);
        const auto result = sim.replay(traces, umm::Layout::kColumnWise, 64);
        pipe.add_row({std::to_string(p), std::to_string(w), std::to_string(l),
                      std::to_string(t), bench::fmt_u(result.time_units),
                      bench::fmt_u(std::uint64_t(std::max(p / w, l)) * t),
                      bench::fmt_u(barrier.theorem1_time(p, t))});
      }
    }
  }
  pipe.print();
  std::printf(
      "\nreading: the pipeline runs at ~max(p/w, l) cycles per step — the\n"
      "entry port when saturated (p/w >= l, the paper's bulk regime, where\n"
      "Theorem 1 is tight), the re-issue latency otherwise. The barrier\n"
      "bound (p/w + l - 1)*t is their sum: safe, and loose only by the part\n"
      "the pipeline overlaps.\n");
  return 0;
}
