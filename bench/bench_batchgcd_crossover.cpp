// Extension bench: the paper's pairwise bulk attack vs Bernstein-style batch
// GCD (the fastgcd lineage). Batch GCD does O(m log m) big multiplications
// and divisions; pairwise does m(m-1)/2 cheap GCDs. On a serial machine
// batch GCD wins quickly with corpus size; the paper's contribution is that
// massive GPU parallelism pushes the pairwise approach back into relevance.
//
// This bench sweeps the (corpus size × modulus bits) grid, locates the
// crossover on this machine, and writes BENCH_batchgcd.json so CI can trend
// both attacks (tools/compare_bench.py). The pairwise leg runs single
// threaded — the serial baseline the asymptotic argument is about — while
// the batch tree uses the global pool, exactly as both would be deployed;
// "cores" records how much hardware the tree had.
//
// Environment knobs (laptop defaults; CI quick mode shrinks them):
//   BULKGCD_BENCH_BATCH_SIZES  comma-separated corpus sizes (default
//                              8,16,32,64,128)
//   BULKGCD_BENCH_BATCH_BITS   comma-separated modulus bits (default
//                              512,1024)
//   BULKGCD_BENCH_REPS         best-of repetitions (default 3)
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "batchgcd/batchgcd.hpp"
#include "bench_util.hpp"
#include "bulk/allpairs.hpp"
#include "core/timer.hpp"

using namespace bulkgcd;
using bench::Table;

namespace {

std::vector<std::size_t> env_list(const char* name,
                                  std::vector<std::size_t> fallback) {
  const char* value = std::getenv(name);
  if (!value) return fallback;
  std::vector<std::size_t> out;
  for (const char* p = value; *p != '\0';) {
    char* end = nullptr;
    const long v = std::strtol(p, &end, 10);
    if (end == p) break;
    if (v > 0) out.push_back(std::size_t(v));
    p = (*end == ',') ? end + 1 : end;
  }
  return out.empty() ? fallback : out;
}

}  // namespace

int main() {
  bench::banner("bench_batchgcd_crossover",
                "extension: all-pairs (paper) vs batch GCD (fastgcd baseline)");

  const auto sizes =
      env_list("BULKGCD_BENCH_BATCH_SIZES", {8, 16, 32, 64, 128});
  const auto bits_list = env_list("BULKGCD_BENCH_BATCH_BITS", {512, 1024});
  const std::size_t reps = bench::env_size("BULKGCD_BENCH_REPS", 3);
  const unsigned cores =
      std::max(1u, std::thread::hardware_concurrency());

  Table table({"bits", "moduli m", "pairs", "all-pairs s", "batch s",
               "ap pairs/s", "batch pairs/s", "all-pairs/batch"});
  std::string curve = "  \"curve\": {";
  std::string crossover = "  \"crossover\": {";
  bool first_curve = true, first_cross = true;

  for (const std::size_t bits : bits_list) {
    long crossover_m = -1;
    for (const std::size_t m : sizes) {
      const auto& moduli = bench::corpus(bits, m);
      const double pairs = double(m) * double(m - 1) / 2.0;

      double ap_s = 0.0, batch_s = 0.0;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        bulk::AllPairsConfig config;
        config.pool_threads = 1;
        Timer ap_timer;
        const auto pairwise = bulk::all_pairs_gcd(moduli, config);
        const double ap = ap_timer.seconds();

        Timer batch_timer;
        const auto batch = batchgcd::batch_gcd(moduli);
        const double bt = batch_timer.seconds();

        if (!batchgcd::weak_indices(batch).empty() ||
            !pairwise.hits.empty()) {
          std::printf("unexpected weak key in clean corpus!\n");
          return 1;
        }
        if (rep == 0 || ap < ap_s) ap_s = ap;
        if (rep == 0 || bt < batch_s) batch_s = bt;
      }
      // Both attacks answer the same question ("which of the m(m-1)/2 pairs
      // share a factor"), so pairs/s is the common throughput currency even
      // though the tree never touches pairs explicitly.
      const double ap_pps = pairs / ap_s;
      const double batch_pps = pairs / batch_s;
      if (crossover_m < 0 && batch_s < ap_s) crossover_m = long(m);

      table.add_row({std::to_string(bits), std::to_string(m),
                     bench::fmt(pairs, 0), bench::fmt(ap_s, 4),
                     bench::fmt(batch_s, 4), bench::fmt(ap_pps, 0),
                     bench::fmt(batch_pps, 0),
                     bench::fmt(ap_s / batch_s, 2)});

      char buf[512];
      std::snprintf(
          buf, sizeof(buf),
          "%s\n    \"bits%zu_m%zu\": {\n"
          "      \"allpairs\": {\"seconds\": %.6f, \"pairs_per_second\": "
          "%.1f, \"pairs\": %.0f},\n"
          "      \"batch\": {\"seconds\": %.6f, \"pairs_per_second\": %.1f, "
          "\"pairs\": %.0f}\n    }",
          first_curve ? "" : ",", bits, m, ap_s, ap_pps, pairs, batch_s,
          batch_pps, pairs);
      curve += buf;
      first_curve = false;
    }
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%s\n    \"bits%zu\": %ld",
                  first_cross ? "" : ",", bits, crossover_m);
    crossover += buf;
    first_cross = false;
    if (crossover_m >= 0) {
      std::printf("crossover at %zu bits: batch GCD beats serial all-pairs "
                  "from m = %ld\n",
                  bits, crossover_m);
    } else {
      std::printf("crossover at %zu bits: not reached in this sweep\n", bits);
    }
  }
  table.print();

  std::string json = "{\n  \"benchmark\": \"bench_batchgcd_crossover\",\n";
  {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "  \"cores\": %u,\n  \"repetitions\": %zu,\n", cores, reps);
    json += buf;
  }
  json += curve + "\n  },\n";
  // First corpus size where the tree beat serial all-pairs (-1 = never in
  // this sweep). Plain numbers, so the trend guard skips them by design.
  json += crossover + "\n  }\n}\n";
  std::ofstream out("BENCH_batchgcd.json");
  out << json;
  std::printf("wrote BENCH_batchgcd.json\n");

  std::printf(
      "\nexpectation: all-pairs cost grows ~m^2, batch GCD ~m log m (with a\n"
      "large constant from huge-number arithmetic); the ratio climbs with m\n"
      "and crosses 1 at moderate corpus sizes — the reason the paper needs a\n"
      "GPU (~100x bulk parallelism) for the pairwise approach to compete at\n"
      "web scale.\n");
  return 0;
}
