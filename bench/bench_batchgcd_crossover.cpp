// Extension bench: the paper's pairwise bulk attack vs Bernstein-style batch
// GCD (the fastgcd lineage). Batch GCD does O(m log m) big multiplications
// and divisions; pairwise does m(m-1)/2 cheap GCDs. On a serial machine
// batch GCD wins quickly with corpus size; the paper's contribution is that
// massive GPU parallelism pushes the pairwise approach back into relevance.
// This bench locates the serial crossover on this machine.
#include <cstdio>

#include "batchgcd/batchgcd.hpp"
#include "bench_util.hpp"
#include "bulk/allpairs.hpp"
#include "core/timer.hpp"

using namespace bulkgcd;
using bench::Table;

int main() {
  bench::banner("bench_batchgcd_crossover",
                "extension: all-pairs (paper) vs batch GCD (fastgcd baseline)");

  const std::size_t bits = 1024;
  Table table({"moduli m", "pairs", "all-pairs s", "batch-gcd s",
               "all-pairs/batch"});
  for (const std::size_t m : {8u, 16u, 32u, 64u, 128u}) {
    const auto& moduli = bench::corpus(bits, m);

    bulk::AllPairsConfig config;
    config.pool_threads = 1;
    Timer pairwise_timer;
    const auto pairwise = bulk::all_pairs_gcd(moduli, config);
    const double pairwise_s = pairwise_timer.seconds();

    Timer batch_timer;
    const auto batch = batchgcd::batch_gcd(moduli);
    const double batch_s = batch_timer.seconds();

    if (!batchgcd::weak_indices(batch).empty() || !pairwise.hits.empty()) {
      std::printf("unexpected weak key in clean corpus!\n");
      return 1;
    }
    table.add_row({std::to_string(m), bench::fmt_u(pairwise.pairs_tested),
                   bench::fmt(pairwise_s, 4), bench::fmt(batch_s, 4),
                   bench::fmt(pairwise_s / batch_s, 2)});
  }
  table.print();

  std::printf(
      "\nexpectation: all-pairs cost grows ~m^2, batch GCD ~m log m (with a\n"
      "large constant from huge-number arithmetic); the ratio climbs with m\n"
      "and crosses 1 at moderate corpus sizes — the reason the paper needs a\n"
      "GPU (~100x bulk parallelism) for the pairwise approach to compete at\n"
      "web scale.\n");
  return 0;
}
