// Extension: the weak-key *mechanism*. The paper's motivation (Lenstra et
// al., "Ron was wrong, Whit is right") is that a fraction of real-world
// moduli share primes because low-entropy devices draw primes from a small
// pool. This bench generates corpora with a controlled entropy pool,
// compares observed factor-sharing pairs against the birthday-statistics
// closed form, and confirms the bulk all-pairs sweep recovers exactly the
// colliding pairs.
#include <cstdio>

#include "bench_util.hpp"
#include "bulk/allpairs.hpp"
#include "rsa/corpus.hpp"

using namespace bulkgcd;
using bench::Table;

int main() {
  bench::banner("bench_lowentropy_birthday",
                "extension: birthday statistics of low-entropy key generation");

  const std::size_t count = 96;
  Table table({"pool size", "expected weak pairs", "observed", "sweep found",
               "weak-key fraction %"});
  for (const std::size_t pool : {32u, 64u, 128u, 512u, 4096u}) {
    rsa::LowEntropySpec spec;
    spec.count = count;
    spec.modulus_bits = 128;  // factor size is irrelevant to the statistics
    spec.pool_size = pool;
    spec.seed = 20120217;  // the Lenstra et al. ePrint date
    const auto corpus = rsa::generate_low_entropy_corpus(spec);

    const auto sweep = bulk::all_pairs_gcd(corpus.moduli);
    std::vector<bool> weak(count, false);
    for (const auto& hit : sweep.hits) weak[hit.i] = weak[hit.j] = true;
    std::size_t weak_keys = 0;
    for (const bool w : weak) weak_keys += w;

    table.add_row({std::to_string(pool),
                   bench::fmt(rsa::expected_weak_pairs(spec), 1),
                   bench::fmt_u(corpus.weak_pairs.size()),
                   bench::fmt_u(sweep.hits.size()),
                   bench::fmt(100.0 * double(weak_keys) / double(count), 1)});
    if (sweep.hits.size() != corpus.weak_pairs.size()) {
      std::printf("!! sweep disagrees with ground truth at pool=%zu\n", pool);
      return 1;
    }
  }
  table.print();

  std::printf(
      "\nreading: observed collisions track the closed form 1-(N-2)(N-3)/\n"
      "(N(N-1)) per pair; the sweep recovers exactly the ground-truth pairs.\n"
      "Lenstra et al. found ~0.2%% of 6.4M web keys factorable — equivalent\n"
      "to an effective pool vastly smaller than the 2^507 a healthy 1024-bit\n"
      "keygen samples from.\n");
  return 0;
}
