// Reproduces Section V's statistic: approx() returns β > 0 extremely rarely
// at d = 32 (the paper observed 1191 non-zero β in 2.0e11 calls, < 1e-8),
// and the approx-case histogram showing Case 4-A dominates for RSA moduli.
// Also demonstrates the d-dependence by running the reference at small word
// sizes where β > 0 is common.
#include <cstdio>

#include "bench_util.hpp"
#include "gcd/algorithms.hpp"
#include "gcd/reference.hpp"

using namespace bulkgcd;
using bench::Table;

int main() {
  bench::banner("bench_beta_probability",
                "§V beta>0 probability and approx-case histogram");

  const std::size_t pairs = bench::env_size("BULKGCD_BENCH_PAIRS", 200);
  const auto sizes = bench::bit_sizes();

  std::printf("\n-- d = 32 production engine, early-terminate RSA sweeps\n");
  Table table({"bits", "pairs", "iterations (=approx calls)", "beta>0", "P(beta>0)",
               "case 4-A", "case 4-B", "case 4-C"});
  for (const auto bits : sizes) {
    const std::size_t n_pairs = bits <= 1024 ? pairs : std::max<std::size_t>(16, pairs / 8);
    std::size_t m = 2;
    while (m * (m - 1) / 2 < n_pairs) ++m;
    const auto& moduli = bench::corpus(bits, m);
    gcd::GcdEngine<std::uint32_t> engine(bits / 32);
    gcd::GcdStats st;
    std::size_t done = 0;
    for (std::size_t i = 0; i < moduli.size() && done < n_pairs; ++i) {
      for (std::size_t j = i + 1; j < moduli.size() && done < n_pairs; ++j) {
        engine.run(gcd::Variant::kApproximate, moduli[i].limbs(),
                   moduli[j].limbs(), bits / 2, &st);
        ++done;
      }
    }
    const auto case_count = [&](gcd::ApproxCase c) {
      return st.approx_cases[std::size_t(c)];
    };
    table.add_row({std::to_string(bits), bench::fmt_u(done),
                   bench::fmt_u(st.iterations), bench::fmt_u(st.beta_nonzero),
                   st.beta_nonzero == 0
                       ? "< 1/" + bench::fmt_u(st.iterations)
                       : bench::fmt(double(st.beta_nonzero) / double(st.iterations), 9),
                   bench::fmt_u(case_count(gcd::ApproxCase::k4A)),
                   bench::fmt_u(case_count(gcd::ApproxCase::k4B)),
                   bench::fmt_u(case_count(gcd::ApproxCase::k4C))});
  }
  table.print();

  std::printf("\n-- word-size dependence (reference engine, 512-bit pairs, "
              "non-terminate)\n");
  Table by_d({"d", "iterations", "beta>0", "P(beta>0)"});
  const auto& moduli = bench::corpus(512, 12);
  for (const unsigned d : {4u, 8u, 16u, 32u}) {
    gcd::GcdStats st;
    for (std::size_t i = 0; i + 1 < moduli.size(); i += 2) {
      const auto run = gcd::ref_approximate(moduli[i], moduli[i + 1], d);
      st += run.stats;
    }
    by_d.add_row({std::to_string(d), bench::fmt_u(st.iterations),
                  bench::fmt_u(st.beta_nonzero),
                  bench::fmt(double(st.beta_nonzero) / double(st.iterations), 6)});
  }
  by_d.print();

  std::printf(
      "\npaper expectation: beta>0 never fires at d = 32 on corpora of this\n"
      "size (probability < 1e-8); at tiny word sizes (d = 4, 8) it fires\n"
      "routinely, which is why the kernel still needs the 4·s/d path.\n");
  return 0;
}
