// A/B benchmark for the staged-corpus sweep path: CorpusPanels + bulk batch
// refresh + lane-serial execution versus the per-lane load + lockstep round
// loop it replaces. Prints a table and writes BENCH_allpairs.json so CI can
// archive the perf trajectory of the all-pairs hot path.
//
// Defaults match the acceptance setup: 1024 × 512-bit moduli, group size 64,
// Approximate Euclidean with early termination. Scale with
//   BULKGCD_BENCH_MODULI        — corpus size (default 1024)
//   BULKGCD_BENCH_STAGING_BITS  — modulus size (default 512)
//   BULKGCD_BENCH_REPS          — sweep repetitions, best-of (default 3)
#include <cstdio>
#include <fstream>
#include <string>

#include "bench_util.hpp"
#include "bulk/allpairs.hpp"

namespace {

struct SweepSample {
  double seconds = 0.0;
  double pairs_per_second = 0.0;
  double us_per_gcd = 0.0;
  std::uint64_t pairs = 0;
  std::size_t hits = 0;
};

SweepSample measure(std::span<const bulkgcd::mp::BigInt> moduli, bool staged,
                    std::size_t reps) {
  bulkgcd::bulk::AllPairsConfig config;
  config.staged = staged;
  SweepSample best;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const auto result = bulkgcd::bulk::all_pairs_gcd(moduli, config);
    if (best.seconds == 0.0 || result.seconds < best.seconds) {
      best.seconds = result.seconds;
      best.pairs = result.pairs_tested;
      best.pairs_per_second =
          result.seconds > 0 ? double(result.pairs_tested) / result.seconds
                             : 0.0;
      best.us_per_gcd = result.micros_per_gcd();
      best.hits = result.hits.size();
    }
  }
  return best;
}

void put_sample(std::string& json, const char* key, const SweepSample& s) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"%s\": {\"seconds\": %.6f, \"pairs_per_second\": %.1f, "
                "\"us_per_gcd\": %.4f, \"pairs\": %llu, \"hits\": %zu}",
                key, s.seconds, s.pairs_per_second, s.us_per_gcd,
                (unsigned long long)s.pairs, s.hits);
  json += buf;
}

}  // namespace

int main() {
  using namespace bulkgcd;

  const std::size_t m = bench::env_size("BULKGCD_BENCH_MODULI", 1024);
  const std::size_t bits = bench::env_size("BULKGCD_BENCH_STAGING_BITS", 512);
  const std::size_t reps = bench::env_size("BULKGCD_BENCH_REPS", 3);

  bench::banner("bench_staging — staged corpus panels vs per-lane reloads",
                "Section VI block sweep; staging added on top of the paper");
  std::printf("corpus: %zu moduli x %zu bits, group size 64, approximate "
              "euclidean, early terminate, best of %zu\n\n",
              m, bits, reps);

  const auto& moduli = bench::corpus(bits, m);

  const SweepSample unstaged = measure(moduli, /*staged=*/false, reps);
  const SweepSample staged = measure(moduli, /*staged=*/true, reps);
  const double speedup = unstaged.pairs_per_second > 0
                             ? staged.pairs_per_second /
                                   unstaged.pairs_per_second
                             : 0.0;

  bench::Table table({"path", "pairs", "seconds", "pairs/s", "us/gcd"});
  table.add_row({"unstaged (per-lane load + lockstep)",
                 bench::fmt_u(unstaged.pairs), bench::fmt(unstaged.seconds, 3),
                 bench::fmt(unstaged.pairs_per_second, 0),
                 bench::fmt(unstaged.us_per_gcd, 3)});
  table.add_row({"staged (panels + lane-serial)", bench::fmt_u(staged.pairs),
                 bench::fmt(staged.seconds, 3),
                 bench::fmt(staged.pairs_per_second, 0),
                 bench::fmt(staged.us_per_gcd, 3)});
  table.print();
  std::printf("\nstaged / unstaged speedup: %.2fx\n", speedup);
  if (staged.pairs != unstaged.pairs || staged.hits != unstaged.hits) {
    std::printf("!! staged and unstaged sweeps disagree on pairs/hits\n");
    return 1;
  }

  std::string json = "{\n";
  {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  \"benchmark\": \"bench_staging\",\n  \"moduli\": %zu,\n"
                  "  \"modulus_bits\": %zu,\n  \"group_size\": 64,\n"
                  "  \"variant\": \"approximate\",\n  \"repetitions\": %zu,\n",
                  m, bits, reps);
    json += buf;
  }
  put_sample(json, "unstaged", unstaged);
  json += ",\n";
  put_sample(json, "staged", staged);
  {
    char buf[64];
    std::snprintf(buf, sizeof(buf), ",\n  \"speedup\": %.3f\n}\n", speedup);
    json += buf;
  }
  std::ofstream out("BENCH_allpairs.json");
  out << json;
  std::printf("wrote BENCH_allpairs.json\n");
  return 0;
}
