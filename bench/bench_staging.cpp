// A/B benchmark for the staged-corpus sweep path: CorpusPanels + bulk batch
// refresh + lane-serial execution versus the per-lane load + lockstep round
// loop it replaces. Prints a table and writes BENCH_allpairs.json so CI can
// archive the perf trajectory of the all-pairs hot path.
//
// Defaults match the acceptance setup: 1024 × 512-bit moduli, group size 64,
// Approximate Euclidean with early termination. Scale with
//   BULKGCD_BENCH_MODULI        — corpus size (default 1024)
//   BULKGCD_BENCH_STAGING_BITS  — modulus size (default 512)
//   BULKGCD_BENCH_REPS          — sweep repetitions, best-of (default 3)
//
// A third measurement re-runs the staged sweep with a live MetricsRegistry
// attached (docs/OBSERVABILITY.md) and reports the instrumentation overhead;
// set BULKGCD_BENCH_ASSERT_OVERHEAD to make an overhead above 2% a failure
// (CI quick-bench uses this as the telemetry-cost regression gate).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "bulk/allpairs.hpp"
#include "obs/metrics.hpp"

namespace {

struct SweepSample {
  double seconds = 0.0;
  double pairs_per_second = 0.0;
  double us_per_gcd = 0.0;
  std::uint64_t pairs = 0;
  std::size_t hits = 0;
};

SweepSample sweep_once(std::span<const bulkgcd::mp::BigInt> moduli,
                       bool staged, bulkgcd::bulk::BulkBackend backend,
                       bulkgcd::obs::MetricsRegistry* metrics = nullptr,
                       std::size_t pool_threads = 0) {
  bulkgcd::bulk::AllPairsConfig config;
  config.staged = staged;
  config.backend = backend;
  config.metrics = metrics;
  config.pool_threads = pool_threads;
  const auto result = bulkgcd::bulk::all_pairs_gcd(moduli, config);
  SweepSample s;
  s.seconds = result.seconds;
  s.pairs = result.pairs_tested;
  s.pairs_per_second =
      result.seconds > 0 ? double(result.pairs_tested) / result.seconds : 0.0;
  s.us_per_gcd = result.micros_per_gcd();
  s.hits = result.hits.size();
  return s;
}

void take_best(SweepSample& best, const SweepSample& sample) {
  if (best.seconds == 0.0 || sample.seconds < best.seconds) best = sample;
}

SweepSample measure(std::span<const bulkgcd::mp::BigInt> moduli, bool staged,
                    bulkgcd::bulk::BulkBackend backend, std::size_t reps) {
  SweepSample best;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    take_best(best, sweep_once(moduli, staged, backend));
  }
  return best;
}

void put_sample(std::string& json, const char* key, const SweepSample& s) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"%s\": {\"seconds\": %.6f, \"pairs_per_second\": %.1f, "
                "\"us_per_gcd\": %.4f, \"pairs\": %llu, \"hits\": %zu}",
                key, s.seconds, s.pairs_per_second, s.us_per_gcd,
                (unsigned long long)s.pairs, s.hits);
  json += buf;
}

}  // namespace

int main() {
  using namespace bulkgcd;

  const std::size_t m = bench::env_size("BULKGCD_BENCH_MODULI", 1024);
  const std::size_t bits = bench::env_size("BULKGCD_BENCH_STAGING_BITS", 512);
  const std::size_t reps = bench::env_size("BULKGCD_BENCH_REPS", 3);

  bench::banner("bench_staging — staged corpus panels vs per-lane reloads",
                "Section VI block sweep; staging added on top of the paper");
  std::printf("corpus: %zu moduli x %zu bits, group size 64, approximate "
              "euclidean, early terminate, best of %zu\n\n",
              m, bits, reps);

  const auto& moduli = bench::corpus(bits, m);

  // Pin each row to its backend explicitly so the comparison is meaningful
  // regardless of what auto-dispatch would pick on this machine.
  const SweepSample unstaged =
      measure(moduli, /*staged=*/false, bulk::BulkBackend::kLockstep, reps);
  const SweepSample vectorized =
      measure(moduli, /*staged=*/true, bulk::BulkBackend::kVector, reps);
  // Resolved ISA of the vector row (portable everywhere, avx2 on capable
  // x86-64) — recorded so archived numbers are comparable across machines.
  bulk::AllPairsConfig isa_probe;
  isa_probe.backend = bulk::BulkBackend::kVector;
  bulk::resolve_backend(isa_probe);
  const char* vec_isa = to_string(isa_probe.vec_isa);
  // Interleave the plain and instrumented staged sweeps rep-by-rep so slow
  // thermal / scheduler drift hits both paths equally; best-of damps the
  // rest. Measuring them back-to-back instead makes the overhead figure
  // track whatever the machine was doing between the two batches.
  obs::MetricsRegistry registry;
  SweepSample staged, instrumented;
  auto interleaved_round = [&] {
    for (std::size_t rep = 0; rep < reps; ++rep) {
      take_best(staged,
                sweep_once(moduli, /*staged=*/true, bulk::BulkBackend::kStaged));
      take_best(instrumented,
                sweep_once(moduli, /*staged=*/true, bulk::BulkBackend::kStaged,
                           &registry));
    }
  };
  auto overhead = [&] {
    return staged.pairs_per_second > 0
               ? (1.0 -
                  instrumented.pairs_per_second / staged.pairs_per_second) *
                     100.0
               : 0.0;
  };
  interleaved_round();
  const bool assert_overhead =
      std::getenv("BULKGCD_BENCH_ASSERT_OVERHEAD") != nullptr;
  // Under the CI gate, a spurious >2% reading (scheduler noise on a shared
  // runner) gets more best-of rounds to converge before counting as real.
  for (int round = 0; assert_overhead && overhead() > 2.0 && round < 3;
       ++round) {
    interleaved_round();
  }
  const double speedup = unstaged.pairs_per_second > 0
                             ? staged.pairs_per_second /
                                   unstaged.pairs_per_second
                             : 0.0;
  const double overhead_pct = overhead();

  bench::Table table({"path", "pairs", "seconds", "pairs/s", "us/gcd"});
  table.add_row({"unstaged (per-lane load + lockstep)",
                 bench::fmt_u(unstaged.pairs), bench::fmt(unstaged.seconds, 3),
                 bench::fmt(unstaged.pairs_per_second, 0),
                 bench::fmt(unstaged.us_per_gcd, 3)});
  table.add_row({"staged (panels + lane-serial)", bench::fmt_u(staged.pairs),
                 bench::fmt(staged.seconds, 3),
                 bench::fmt(staged.pairs_per_second, 0),
                 bench::fmt(staged.us_per_gcd, 3)});
  table.add_row({"staged + metrics registry",
                 bench::fmt_u(instrumented.pairs),
                 bench::fmt(instrumented.seconds, 3),
                 bench::fmt(instrumented.pairs_per_second, 0),
                 bench::fmt(instrumented.us_per_gcd, 3)});
  table.add_row({std::string("vector (panels + SIMD warp engine, ") + vec_isa +
                     ")",
                 bench::fmt_u(vectorized.pairs),
                 bench::fmt(vectorized.seconds, 3),
                 bench::fmt(vectorized.pairs_per_second, 0),
                 bench::fmt(vectorized.us_per_gcd, 3)});
  table.print();
  const double vector_speedup =
      staged.pairs_per_second > 0
          ? vectorized.pairs_per_second / staged.pairs_per_second
          : 0.0;
  std::printf("\nstaged / unstaged speedup: %.2fx\n", speedup);
  std::printf("vector / staged speedup: %.2fx (%s)\n", vector_speedup,
              vec_isa);
  std::printf("telemetry overhead on the staged path: %.2f%%\n", overhead_pct);
  if (staged.pairs != unstaged.pairs || staged.hits != unstaged.hits ||
      instrumented.pairs != staged.pairs || instrumented.hits != staged.hits ||
      vectorized.pairs != staged.pairs || vectorized.hits != staged.hits) {
    std::printf("!! sweeps disagree on pairs/hits\n");
    return 1;
  }
  if (assert_overhead && overhead_pct > 2.0) {
    std::printf("!! telemetry overhead %.2f%% exceeds the 2%% budget\n",
                overhead_pct);
    return 1;
  }

  // ---- scaling mode: the sharded tile sweep at 1/2/4/8 workers -----------
  // Each worker count runs a private pool (pool_threads = N, 1 = inline) on
  // the vector backend; pairs and hits must be bit-identical at every count
  // (the scheduler only moves tiles between workers). Skip with
  // BULKGCD_BENCH_SCALING=0; override the sweep points with
  // BULKGCD_BENCH_SCALING_WORKERS (comma-separated). pairs/s per worker
  // count is archived under the "scaling" JSON object together with the
  // machine's core count — read multi-worker numbers from a 1-core runner
  // accordingly.
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::size_t> worker_counts = {1, 2, 4, 8};
  bool run_scaling = true;
  if (const char* env = std::getenv("BULKGCD_BENCH_SCALING")) {
    run_scaling = std::string(env) != "0";
  }
  if (const char* env = std::getenv("BULKGCD_BENCH_SCALING_WORKERS")) {
    worker_counts.clear();
    for (const char* p = env; *p != '\0';) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(p, &end, 10);
      if (end == p) break;
      if (v > 0) worker_counts.push_back(std::size_t(v));
      p = *end == ',' ? end + 1 : end;
    }
  }
  std::vector<SweepSample> scaling(worker_counts.size());
  if (run_scaling && !worker_counts.empty()) {
    std::printf("\nscaling (vector backend, private pool per worker count, "
                "%u hardware core%s):\n", cores, cores == 1 ? "" : "s");
    bench::Table scale_table({"workers", "pairs", "seconds", "pairs/s",
                              "speedup vs 1"});
    for (std::size_t k = 0; k < worker_counts.size(); ++k) {
      SweepSample best;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        take_best(best, sweep_once(moduli, /*staged=*/true,
                                   bulk::BulkBackend::kVector, nullptr,
                                   worker_counts[k]));
      }
      scaling[k] = best;
      const double rel = scaling[0].pairs_per_second > 0
                             ? best.pairs_per_second /
                                   scaling[0].pairs_per_second
                             : 0.0;
      scale_table.add_row({bench::fmt_u(worker_counts[k]),
                           bench::fmt_u(best.pairs),
                           bench::fmt(best.seconds, 3),
                           bench::fmt(best.pairs_per_second, 0),
                           bench::fmt(rel, 2) + "x"});
      if (best.pairs != staged.pairs || best.hits != staged.hits) {
        std::printf("!! scaling sweep at %zu workers disagrees on "
                    "pairs/hits\n", worker_counts[k]);
        return 1;
      }
    }
    scale_table.print();
  }

  std::string json = "{\n";
  {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  \"benchmark\": \"bench_staging\",\n  \"moduli\": %zu,\n"
                  "  \"modulus_bits\": %zu,\n  \"group_size\": 64,\n"
                  "  \"variant\": \"approximate\",\n  \"repetitions\": %zu,\n",
                  m, bits, reps);
    json += buf;
  }
  put_sample(json, "unstaged", unstaged);
  json += ",\n";
  put_sample(json, "staged", staged);
  json += ",\n";
  put_sample(json, "staged_instrumented", instrumented);
  json += ",\n";
  put_sample(json, "vector", vectorized);
  if (run_scaling && !worker_counts.empty()) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), ",\n  \"scaling\": {\n    \"cores\": %u",
                  cores);
    json += buf;
    for (std::size_t k = 0; k < worker_counts.size(); ++k) {
      std::string row;
      put_sample(row, (std::string("workers_") +
                       std::to_string(worker_counts[k])).c_str(),
                 scaling[k]);
      json += ",\n  " + row;  // nested rows indent one level deeper
    }
    json += "\n  }";
  }
  {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  ",\n  \"vector_isa\": \"%s\",\n"
                  "  \"speedup\": %.3f,\n  \"vector_speedup\": %.3f,\n"
                  "  \"telemetry_overhead_pct\": %.2f\n}\n",
                  vec_isa, speedup, vector_speedup, overhead_pct);
    json += buf;
  }
  std::ofstream out("BENCH_allpairs.json");
  out << json;
  std::printf("wrote BENCH_allpairs.json\n");
  return 0;
}
