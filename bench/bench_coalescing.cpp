// Reproduces Figure 3's point: the column-wise arrangement of the bulk
// execution's working arrays makes warp accesses coalesced, the row-wise
// arrangement serializes them. Shown two ways:
//   (a) UMM-modelled time units for replayed Approximate-Euclidean traces;
//   (b) real wall-clock of the SIMT bulk engine on this CPU, where the
//       column layout turns into strided (cache-hostile) access for a single
//       core — the *model* wins with column-wise, a sequential cache
//       hierarchy with row-wise, which is exactly why GPUs and CPUs want
//       opposite layouts.
#include <cstdio>

#include "bench_util.hpp"
#include "bulk/simt.hpp"
#include "core/timer.hpp"
#include "umm/oblivious.hpp"

using namespace bulkgcd;
using bench::Table;

namespace {

template <template <class> class Matrix>
double time_simt(const std::vector<mp::BigInt>& moduli, std::size_t lanes,
                 std::size_t early_bits) {
  bulk::SimtBatch<std::uint32_t, Matrix> batch(lanes, moduli.front().size(), 32);
  const std::size_t m = moduli.size();
  for (std::size_t i = 0; i < lanes; ++i) {
    const auto [a, b] = bench::cyclic_pair(i, m);
    batch.load(i, moduli[a].limbs(), moduli[b].limbs());
  }
  Timer timer;
  batch.run(gcd::Variant::kApproximate, early_bits);
  return timer.micros() / double(lanes);
}

}  // namespace

int main() {
  bench::banner("bench_coalescing",
                "Figure 3 (column-wise vs row-wise arrangement)");

  const std::size_t bits = 1024;
  const std::size_t lanes = 2048;
  // Lanes cycle over a smaller corpus (pair identity does not affect the
  // layout comparison; generating 4096 fresh moduli would dominate runtime).
  const auto& moduli = bench::corpus(bits, 256);

  // (a) UMM model.
  std::vector<std::pair<mp::BigInt, mp::BigInt>> pairs;
  for (std::size_t i = 0; i < 32; ++i) {
    pairs.emplace_back(moduli[2 * i], moduli[2 * i + 1]);
  }
  const auto traces =
      umm::collect_traces(gcd::Variant::kApproximate, pairs, bits / 2, 40);
  Table model({"layout", "UMM time units", "per GCD",
               "address groups per warp dispatch"});
  const umm::UmmSimulator sim({32, 16});
  for (const auto layout : {umm::Layout::kColumnWise, umm::Layout::kRowWise}) {
    const auto result = sim.replay_iteration_aligned(traces, layout, 80);
    model.add_row({to_string(layout), bench::fmt_u(result.time_units),
                   bench::fmt(double(result.time_units) / double(pairs.size()), 0),
                   bench::fmt(double(result.stage_slots) /
                                  double(result.warp_dispatches),
                              2)});
  }
  std::printf("\n(a) UMM model (w=32, l=16, iteration-lockstep), %zu traced "
              "1024-bit pairs:\n",
              pairs.size());
  model.print();

  // (b) real CPU wall-clock of the SIMT engine under both layouts.
  Table wall({"layout", "us per GCD (1 CPU core)"});
  wall.add_row({"column-wise (ColumnMatrix)",
                bench::fmt(time_simt<bulk::ColumnMatrix>(moduli, lanes, bits / 2), 2)});
  wall.add_row({"row-wise (RowMatrix)",
                bench::fmt(time_simt<bulk::RowMatrix>(moduli, lanes, bits / 2), 2)});
  std::printf("\n(b) SIMT engine wall-clock, %zu lanes of %zu-bit pairs:\n",
              lanes, bits);
  wall.print();

  std::printf(
      "\npaper expectation: on the UMM (the GPU model) a column-wise warp\n"
      "dispatch touches ~2 address groups (one per value buffer) while\n"
      "row-wise touches one group PER THREAD — the Figure-3 coalescing\n"
      "argument, several times cheaper column-wise. On one sequential CPU\n"
      "core the preference INVERTS (row-wise keeps each lane's limbs in one\n"
      "cache line): the bulk column layout is a GPU-specific optimization.\n");
  return 0;
}
