# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/core_test[1]_include.cmake")
include("/root/repo/build-asan/tests/mp_span_ops_test[1]_include.cmake")
include("/root/repo/build-asan/tests/mp_bigint_test[1]_include.cmake")
include("/root/repo/build-asan/tests/gcd_approx_test[1]_include.cmake")
include("/root/repo/build-asan/tests/gcd_kernels_test[1]_include.cmake")
include("/root/repo/build-asan/tests/gcd_algorithms_test[1]_include.cmake")
include("/root/repo/build-asan/tests/gcd_reference_test[1]_include.cmake")
include("/root/repo/build-asan/tests/gcd_statistics_test[1]_include.cmake")
include("/root/repo/build-asan/tests/rsa_test[1]_include.cmake")
include("/root/repo/build-asan/tests/montgomery_test[1]_include.cmake")
include("/root/repo/build-asan/tests/corpus_test[1]_include.cmake")
include("/root/repo/build-asan/tests/umm_test[1]_include.cmake")
include("/root/repo/build-asan/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build-asan/tests/simt_test[1]_include.cmake")
include("/root/repo/build-asan/tests/layout_test[1]_include.cmake")
include("/root/repo/build-asan/tests/allpairs_test[1]_include.cmake")
include("/root/repo/build-asan/tests/scan_driver_test[1]_include.cmake")
include("/root/repo/build-asan/tests/batchgcd_test[1]_include.cmake")
include("/root/repo/build-asan/tests/lehmer_test[1]_include.cmake")
include("/root/repo/build-asan/tests/keystore_test[1]_include.cmake")
include("/root/repo/build-asan/tests/differential_fuzz_test[1]_include.cmake")
include("/root/repo/build-asan/tests/mp_stress_test[1]_include.cmake")
include("/root/repo/build-asan/tests/pem_test[1]_include.cmake")
include("/root/repo/build-asan/tests/reduction_test[1]_include.cmake")
include("/root/repo/build-asan/tests/extensions_test[1]_include.cmake")
include("/root/repo/build-asan/tests/integration_test[1]_include.cmake")
