# Empty dependencies file for gcd_reference_test.
# This may be replaced when dependencies are built.
