file(REMOVE_RECURSE
  "CMakeFiles/gcd_reference_test.dir/gcd_reference_test.cpp.o"
  "CMakeFiles/gcd_reference_test.dir/gcd_reference_test.cpp.o.d"
  "gcd_reference_test"
  "gcd_reference_test.pdb"
  "gcd_reference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcd_reference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
