file(REMOVE_RECURSE
  "CMakeFiles/gcd_kernels_test.dir/gcd_kernels_test.cpp.o"
  "CMakeFiles/gcd_kernels_test.dir/gcd_kernels_test.cpp.o.d"
  "gcd_kernels_test"
  "gcd_kernels_test.pdb"
  "gcd_kernels_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcd_kernels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
