# Empty dependencies file for gcd_kernels_test.
# This may be replaced when dependencies are built.
