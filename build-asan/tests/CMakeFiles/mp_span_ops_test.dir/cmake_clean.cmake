file(REMOVE_RECURSE
  "CMakeFiles/mp_span_ops_test.dir/mp_span_ops_test.cpp.o"
  "CMakeFiles/mp_span_ops_test.dir/mp_span_ops_test.cpp.o.d"
  "mp_span_ops_test"
  "mp_span_ops_test.pdb"
  "mp_span_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_span_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
