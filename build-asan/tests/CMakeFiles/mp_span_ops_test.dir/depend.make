# Empty dependencies file for mp_span_ops_test.
# This may be replaced when dependencies are built.
