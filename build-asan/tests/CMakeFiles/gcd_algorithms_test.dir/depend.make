# Empty dependencies file for gcd_algorithms_test.
# This may be replaced when dependencies are built.
