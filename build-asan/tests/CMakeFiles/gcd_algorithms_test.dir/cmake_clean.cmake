file(REMOVE_RECURSE
  "CMakeFiles/gcd_algorithms_test.dir/gcd_algorithms_test.cpp.o"
  "CMakeFiles/gcd_algorithms_test.dir/gcd_algorithms_test.cpp.o.d"
  "gcd_algorithms_test"
  "gcd_algorithms_test.pdb"
  "gcd_algorithms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcd_algorithms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
