# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for gcd_algorithms_test.
