# Empty dependencies file for gcd_statistics_test.
# This may be replaced when dependencies are built.
