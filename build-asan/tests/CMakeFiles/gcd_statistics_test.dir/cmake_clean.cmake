file(REMOVE_RECURSE
  "CMakeFiles/gcd_statistics_test.dir/gcd_statistics_test.cpp.o"
  "CMakeFiles/gcd_statistics_test.dir/gcd_statistics_test.cpp.o.d"
  "gcd_statistics_test"
  "gcd_statistics_test.pdb"
  "gcd_statistics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcd_statistics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
