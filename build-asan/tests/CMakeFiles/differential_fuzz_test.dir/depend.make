# Empty dependencies file for differential_fuzz_test.
# This may be replaced when dependencies are built.
