file(REMOVE_RECURSE
  "CMakeFiles/differential_fuzz_test.dir/differential_fuzz_test.cpp.o"
  "CMakeFiles/differential_fuzz_test.dir/differential_fuzz_test.cpp.o.d"
  "differential_fuzz_test"
  "differential_fuzz_test.pdb"
  "differential_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/differential_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
