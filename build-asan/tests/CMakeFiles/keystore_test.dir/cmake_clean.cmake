file(REMOVE_RECURSE
  "CMakeFiles/keystore_test.dir/keystore_test.cpp.o"
  "CMakeFiles/keystore_test.dir/keystore_test.cpp.o.d"
  "keystore_test"
  "keystore_test.pdb"
  "keystore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keystore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
