# Empty dependencies file for keystore_test.
# This may be replaced when dependencies are built.
