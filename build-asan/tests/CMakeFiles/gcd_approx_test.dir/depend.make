# Empty dependencies file for gcd_approx_test.
# This may be replaced when dependencies are built.
