file(REMOVE_RECURSE
  "CMakeFiles/gcd_approx_test.dir/gcd_approx_test.cpp.o"
  "CMakeFiles/gcd_approx_test.dir/gcd_approx_test.cpp.o.d"
  "gcd_approx_test"
  "gcd_approx_test.pdb"
  "gcd_approx_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcd_approx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
