# Empty dependencies file for umm_test.
# This may be replaced when dependencies are built.
