file(REMOVE_RECURSE
  "CMakeFiles/umm_test.dir/umm_test.cpp.o"
  "CMakeFiles/umm_test.dir/umm_test.cpp.o.d"
  "umm_test"
  "umm_test.pdb"
  "umm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/umm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
