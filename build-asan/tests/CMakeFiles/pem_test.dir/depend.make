# Empty dependencies file for pem_test.
# This may be replaced when dependencies are built.
