file(REMOVE_RECURSE
  "CMakeFiles/pem_test.dir/pem_test.cpp.o"
  "CMakeFiles/pem_test.dir/pem_test.cpp.o.d"
  "pem_test"
  "pem_test.pdb"
  "pem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
