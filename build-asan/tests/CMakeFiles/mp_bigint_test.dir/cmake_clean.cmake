file(REMOVE_RECURSE
  "CMakeFiles/mp_bigint_test.dir/mp_bigint_test.cpp.o"
  "CMakeFiles/mp_bigint_test.dir/mp_bigint_test.cpp.o.d"
  "mp_bigint_test"
  "mp_bigint_test.pdb"
  "mp_bigint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_bigint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
