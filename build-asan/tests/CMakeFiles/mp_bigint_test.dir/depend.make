# Empty dependencies file for mp_bigint_test.
# This may be replaced when dependencies are built.
