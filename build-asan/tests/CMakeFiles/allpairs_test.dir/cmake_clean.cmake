file(REMOVE_RECURSE
  "CMakeFiles/allpairs_test.dir/allpairs_test.cpp.o"
  "CMakeFiles/allpairs_test.dir/allpairs_test.cpp.o.d"
  "allpairs_test"
  "allpairs_test.pdb"
  "allpairs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allpairs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
