# Empty dependencies file for allpairs_test.
# This may be replaced when dependencies are built.
