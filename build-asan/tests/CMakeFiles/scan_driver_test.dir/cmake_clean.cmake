file(REMOVE_RECURSE
  "CMakeFiles/scan_driver_test.dir/scan_driver_test.cpp.o"
  "CMakeFiles/scan_driver_test.dir/scan_driver_test.cpp.o.d"
  "scan_driver_test"
  "scan_driver_test.pdb"
  "scan_driver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_driver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
