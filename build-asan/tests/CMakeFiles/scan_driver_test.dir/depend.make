# Empty dependencies file for scan_driver_test.
# This may be replaced when dependencies are built.
