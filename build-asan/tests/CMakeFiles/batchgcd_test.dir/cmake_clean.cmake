file(REMOVE_RECURSE
  "CMakeFiles/batchgcd_test.dir/batchgcd_test.cpp.o"
  "CMakeFiles/batchgcd_test.dir/batchgcd_test.cpp.o.d"
  "batchgcd_test"
  "batchgcd_test.pdb"
  "batchgcd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batchgcd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
