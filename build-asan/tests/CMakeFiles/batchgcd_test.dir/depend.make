# Empty dependencies file for batchgcd_test.
# This may be replaced when dependencies are built.
