# Empty dependencies file for lehmer_test.
# This may be replaced when dependencies are built.
