file(REMOVE_RECURSE
  "CMakeFiles/lehmer_test.dir/lehmer_test.cpp.o"
  "CMakeFiles/lehmer_test.dir/lehmer_test.cpp.o.d"
  "lehmer_test"
  "lehmer_test.pdb"
  "lehmer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lehmer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
