file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_iterations.dir/bench_table4_iterations.cpp.o"
  "CMakeFiles/bench_table4_iterations.dir/bench_table4_iterations.cpp.o.d"
  "bench_table4_iterations"
  "bench_table4_iterations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_iterations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
