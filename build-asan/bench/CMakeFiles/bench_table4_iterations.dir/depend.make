# Empty dependencies file for bench_table4_iterations.
# This may be replaced when dependencies are built.
