# Empty dependencies file for bench_table5_throughput.
# This may be replaced when dependencies are built.
