file(REMOVE_RECURSE
  "CMakeFiles/bench_beta_probability.dir/bench_beta_probability.cpp.o"
  "CMakeFiles/bench_beta_probability.dir/bench_beta_probability.cpp.o.d"
  "bench_beta_probability"
  "bench_beta_probability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_beta_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
