# Empty dependencies file for bench_beta_probability.
# This may be replaced when dependencies are built.
