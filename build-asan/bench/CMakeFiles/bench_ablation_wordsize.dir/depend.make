# Empty dependencies file for bench_ablation_wordsize.
# This may be replaced when dependencies are built.
