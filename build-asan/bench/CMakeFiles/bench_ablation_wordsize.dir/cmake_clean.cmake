file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_wordsize.dir/bench_ablation_wordsize.cpp.o"
  "CMakeFiles/bench_ablation_wordsize.dir/bench_ablation_wordsize.cpp.o.d"
  "bench_ablation_wordsize"
  "bench_ablation_wordsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_wordsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
