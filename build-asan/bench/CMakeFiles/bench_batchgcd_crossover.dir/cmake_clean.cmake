file(REMOVE_RECURSE
  "CMakeFiles/bench_batchgcd_crossover.dir/bench_batchgcd_crossover.cpp.o"
  "CMakeFiles/bench_batchgcd_crossover.dir/bench_batchgcd_crossover.cpp.o.d"
  "bench_batchgcd_crossover"
  "bench_batchgcd_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_batchgcd_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
