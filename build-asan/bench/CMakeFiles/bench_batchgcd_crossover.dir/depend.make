# Empty dependencies file for bench_batchgcd_crossover.
# This may be replaced when dependencies are built.
