file(REMOVE_RECURSE
  "CMakeFiles/bench_lowentropy_birthday.dir/bench_lowentropy_birthday.cpp.o"
  "CMakeFiles/bench_lowentropy_birthday.dir/bench_lowentropy_birthday.cpp.o.d"
  "bench_lowentropy_birthday"
  "bench_lowentropy_birthday.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lowentropy_birthday.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
