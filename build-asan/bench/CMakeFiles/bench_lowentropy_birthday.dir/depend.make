# Empty dependencies file for bench_lowentropy_birthday.
# This may be replaced when dependencies are built.
