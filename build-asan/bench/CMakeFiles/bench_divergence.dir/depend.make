# Empty dependencies file for bench_divergence.
# This may be replaced when dependencies are built.
