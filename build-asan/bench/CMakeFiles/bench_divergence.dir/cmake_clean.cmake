file(REMOVE_RECURSE
  "CMakeFiles/bench_divergence.dir/bench_divergence.cpp.o"
  "CMakeFiles/bench_divergence.dir/bench_divergence.cpp.o.d"
  "bench_divergence"
  "bench_divergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_divergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
