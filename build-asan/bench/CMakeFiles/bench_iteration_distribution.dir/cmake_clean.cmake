file(REMOVE_RECURSE
  "CMakeFiles/bench_iteration_distribution.dir/bench_iteration_distribution.cpp.o"
  "CMakeFiles/bench_iteration_distribution.dir/bench_iteration_distribution.cpp.o.d"
  "bench_iteration_distribution"
  "bench_iteration_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_iteration_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
