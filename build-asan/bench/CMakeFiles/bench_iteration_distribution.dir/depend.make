# Empty dependencies file for bench_iteration_distribution.
# This may be replaced when dependencies are built.
