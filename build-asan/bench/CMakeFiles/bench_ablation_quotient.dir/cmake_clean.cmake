file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_quotient.dir/bench_ablation_quotient.cpp.o"
  "CMakeFiles/bench_ablation_quotient.dir/bench_ablation_quotient.cpp.o.d"
  "bench_ablation_quotient"
  "bench_ablation_quotient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_quotient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
