# Empty dependencies file for bench_ablation_quotient.
# This may be replaced when dependencies are built.
