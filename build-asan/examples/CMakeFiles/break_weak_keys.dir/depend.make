# Empty dependencies file for break_weak_keys.
# This may be replaced when dependencies are built.
