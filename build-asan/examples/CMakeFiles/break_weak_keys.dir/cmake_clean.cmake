file(REMOVE_RECURSE
  "CMakeFiles/break_weak_keys.dir/break_weak_keys.cpp.o"
  "CMakeFiles/break_weak_keys.dir/break_weak_keys.cpp.o.d"
  "break_weak_keys"
  "break_weak_keys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/break_weak_keys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
