file(REMOVE_RECURSE
  "CMakeFiles/weakscan.dir/weakscan.cpp.o"
  "CMakeFiles/weakscan.dir/weakscan.cpp.o.d"
  "weakscan"
  "weakscan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weakscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
