# Empty dependencies file for weakscan.
# This may be replaced when dependencies are built.
