file(REMOVE_RECURSE
  "CMakeFiles/umm_explorer.dir/umm_explorer.cpp.o"
  "CMakeFiles/umm_explorer.dir/umm_explorer.cpp.o.d"
  "umm_explorer"
  "umm_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/umm_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
