# Empty dependencies file for umm_explorer.
# This may be replaced when dependencies are built.
