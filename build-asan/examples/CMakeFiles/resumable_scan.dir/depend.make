# Empty dependencies file for resumable_scan.
# This may be replaced when dependencies are built.
