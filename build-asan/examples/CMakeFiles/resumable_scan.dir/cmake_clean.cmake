file(REMOVE_RECURSE
  "CMakeFiles/resumable_scan.dir/resumable_scan.cpp.o"
  "CMakeFiles/resumable_scan.dir/resumable_scan.cpp.o.d"
  "resumable_scan"
  "resumable_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resumable_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
