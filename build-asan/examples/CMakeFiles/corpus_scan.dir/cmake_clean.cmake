file(REMOVE_RECURSE
  "CMakeFiles/corpus_scan.dir/corpus_scan.cpp.o"
  "CMakeFiles/corpus_scan.dir/corpus_scan.cpp.o.d"
  "corpus_scan"
  "corpus_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corpus_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
