# Empty dependencies file for corpus_scan.
# This may be replaced when dependencies are built.
