file(REMOVE_RECURSE
  "libbulkgcd.a"
)
