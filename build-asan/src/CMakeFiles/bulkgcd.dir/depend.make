# Empty dependencies file for bulkgcd.
# This may be replaced when dependencies are built.
