
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/batchgcd/batchgcd.cpp" "src/CMakeFiles/bulkgcd.dir/batchgcd/batchgcd.cpp.o" "gcc" "src/CMakeFiles/bulkgcd.dir/batchgcd/batchgcd.cpp.o.d"
  "/root/repo/src/bulk/allpairs.cpp" "src/CMakeFiles/bulkgcd.dir/bulk/allpairs.cpp.o" "gcc" "src/CMakeFiles/bulkgcd.dir/bulk/allpairs.cpp.o.d"
  "/root/repo/src/bulk/block_grid.cpp" "src/CMakeFiles/bulkgcd.dir/bulk/block_grid.cpp.o" "gcc" "src/CMakeFiles/bulkgcd.dir/bulk/block_grid.cpp.o.d"
  "/root/repo/src/bulk/scan_driver.cpp" "src/CMakeFiles/bulkgcd.dir/bulk/scan_driver.cpp.o" "gcc" "src/CMakeFiles/bulkgcd.dir/bulk/scan_driver.cpp.o.d"
  "/root/repo/src/bulk/simt.cpp" "src/CMakeFiles/bulkgcd.dir/bulk/simt.cpp.o" "gcc" "src/CMakeFiles/bulkgcd.dir/bulk/simt.cpp.o.d"
  "/root/repo/src/core/thread_pool.cpp" "src/CMakeFiles/bulkgcd.dir/core/thread_pool.cpp.o" "gcc" "src/CMakeFiles/bulkgcd.dir/core/thread_pool.cpp.o.d"
  "/root/repo/src/gcd/lehmer.cpp" "src/CMakeFiles/bulkgcd.dir/gcd/lehmer.cpp.o" "gcc" "src/CMakeFiles/bulkgcd.dir/gcd/lehmer.cpp.o.d"
  "/root/repo/src/gcd/reference.cpp" "src/CMakeFiles/bulkgcd.dir/gcd/reference.cpp.o" "gcc" "src/CMakeFiles/bulkgcd.dir/gcd/reference.cpp.o.d"
  "/root/repo/src/mp/bigint.cpp" "src/CMakeFiles/bulkgcd.dir/mp/bigint.cpp.o" "gcc" "src/CMakeFiles/bulkgcd.dir/mp/bigint.cpp.o.d"
  "/root/repo/src/rsa/barrett.cpp" "src/CMakeFiles/bulkgcd.dir/rsa/barrett.cpp.o" "gcc" "src/CMakeFiles/bulkgcd.dir/rsa/barrett.cpp.o.d"
  "/root/repo/src/rsa/corpus.cpp" "src/CMakeFiles/bulkgcd.dir/rsa/corpus.cpp.o" "gcc" "src/CMakeFiles/bulkgcd.dir/rsa/corpus.cpp.o.d"
  "/root/repo/src/rsa/keystore.cpp" "src/CMakeFiles/bulkgcd.dir/rsa/keystore.cpp.o" "gcc" "src/CMakeFiles/bulkgcd.dir/rsa/keystore.cpp.o.d"
  "/root/repo/src/rsa/montgomery.cpp" "src/CMakeFiles/bulkgcd.dir/rsa/montgomery.cpp.o" "gcc" "src/CMakeFiles/bulkgcd.dir/rsa/montgomery.cpp.o.d"
  "/root/repo/src/rsa/pem.cpp" "src/CMakeFiles/bulkgcd.dir/rsa/pem.cpp.o" "gcc" "src/CMakeFiles/bulkgcd.dir/rsa/pem.cpp.o.d"
  "/root/repo/src/rsa/prime.cpp" "src/CMakeFiles/bulkgcd.dir/rsa/prime.cpp.o" "gcc" "src/CMakeFiles/bulkgcd.dir/rsa/prime.cpp.o.d"
  "/root/repo/src/rsa/rsa.cpp" "src/CMakeFiles/bulkgcd.dir/rsa/rsa.cpp.o" "gcc" "src/CMakeFiles/bulkgcd.dir/rsa/rsa.cpp.o.d"
  "/root/repo/src/umm/oblivious.cpp" "src/CMakeFiles/bulkgcd.dir/umm/oblivious.cpp.o" "gcc" "src/CMakeFiles/bulkgcd.dir/umm/oblivious.cpp.o.d"
  "/root/repo/src/umm/pipeline.cpp" "src/CMakeFiles/bulkgcd.dir/umm/pipeline.cpp.o" "gcc" "src/CMakeFiles/bulkgcd.dir/umm/pipeline.cpp.o.d"
  "/root/repo/src/umm/umm.cpp" "src/CMakeFiles/bulkgcd.dir/umm/umm.cpp.o" "gcc" "src/CMakeFiles/bulkgcd.dir/umm/umm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
