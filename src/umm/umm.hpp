// The UMM (Unified Memory Machine) of Nakano [23], the cost model the paper
// uses for all GPU claims (Section VI, Figure 2, Theorem 1).
//
// Model: memory addresses are partitioned into *address groups* of `width`
// consecutive addresses; p threads are partitioned into warps of `width`
// threads; warps are dispatched round-robin; a warp whose member requests
// fall into g distinct address groups occupies g pipeline stages; a batch of
// requests completes after (occupied stages) + latency − 1 time units, and a
// thread may not issue again until its previous request completed.
//
// The simulator replays per-thread logical access traces (recorded by
// gcd::AddressTracer) under a chosen memory layout and charges exactly this
// cost. Theorem 1 — bulk execution of an oblivious algorithm with p threads
// and t steps costs (p/width + latency − 1)·t — is validated against it in
// tests/umm_test.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bulkgcd::umm {

struct UmmConfig {
  std::size_t width = 32;    ///< w: threads per warp == addresses per group
  std::size_t latency = 100; ///< l: pipeline depth
};

/// One thread's logical access sequence. Logical addresses index the
/// thread-private working set (two GCD buffers); the layout maps them to
/// global machine addresses.
struct ThreadTrace {
  std::vector<std::uint32_t> addresses;
  std::vector<bool> is_write;                   ///< parallel to addresses
  std::vector<std::uint32_t> iteration_starts;  ///< algorithm-iteration marks
};

/// How the bulk execution arranges p thread-private arrays in global memory
/// (the paper's Figure 3).
enum class Layout {
  kColumnWise,  ///< element i of thread t at address i·p + t → coalesced
  kRowWise,     ///< element i of thread t at address t·span + i → serialized
};

constexpr const char* to_string(Layout layout) noexcept {
  return layout == Layout::kColumnWise ? "column-wise" : "row-wise";
}

/// Global address of a thread's logical element under a layout.
constexpr std::uint64_t map_address(Layout layout, std::uint32_t logical,
                                    std::size_t thread, std::size_t threads,
                                    std::size_t span) noexcept {
  if (layout == Layout::kColumnWise) {
    return std::uint64_t(logical) * threads + thread;
  }
  return std::uint64_t(thread) * span + logical;
}

struct ReplayResult {
  std::uint64_t time_units = 0;   ///< total modelled time
  std::uint64_t steps = 0;        ///< machine-wide access steps executed (t)
  std::uint64_t warp_dispatches = 0;
  std::uint64_t stage_slots = 0;  ///< Σ distinct address groups per dispatch
  /// Fraction of warp dispatches that were perfectly coalesced (1 group).
  double coalesced_fraction() const noexcept {
    return warp_dispatches == 0
               ? 1.0
               : 1.0 - double(stage_slots - warp_dispatches) /
                           double(stage_slots);
  }
};

class UmmSimulator {
 public:
  explicit UmmSimulator(UmmConfig config);

  /// Replay a bulk execution: thread k's i-th access is aligned with every
  /// other thread's i-th access (lockstep; exhausted threads idle). `span`
  /// must bound every logical address (per-thread working-set size).
  /// Special case: Layout::kRowWise with span == 0 is the identity mapping
  /// (logical addresses are already global) — used for hand-built traces.
  ReplayResult replay(const std::vector<ThreadTrace>& traces, Layout layout,
                      std::size_t span) const;

  /// Like replay(), but time units are aligned per algorithm iteration
  /// (using each trace's iteration_starts): thread k's j-th access of
  /// iteration i lines up with every other thread's (i, j) access. This is
  /// the lockstep a SIMT warp actually executes — predicated-off threads
  /// idle — and is the model used for the Table-V GPU column.
  ReplayResult replay_iteration_aligned(const std::vector<ThreadTrace>& traces,
                                        Layout layout, std::size_t span) const;

  /// Theorem 1 prediction: (p/w + l − 1) · t.
  std::uint64_t theorem1_time(std::size_t threads, std::size_t steps) const noexcept;

  const UmmConfig& config() const noexcept { return config_; }

 private:
  UmmConfig config_;
};

}  // namespace bulkgcd::umm
