#include "umm/pipeline.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace bulkgcd::umm {

PipelineSimulator::PipelineSimulator(UmmConfig config) : config_(config) {
  if (config_.width == 0 || config_.latency == 0) {
    throw std::invalid_argument("PipelineSimulator: width and latency must be > 0");
  }
}

PipelineResult PipelineSimulator::replay(const std::vector<ThreadTrace>& traces,
                                         Layout layout, std::size_t span) const {
  PipelineResult result;
  const std::size_t threads = traces.size();
  if (threads == 0) return result;
  const std::size_t w = config_.width;
  const std::size_t warps = (threads + w - 1) / w;

  // Per-warp state: next access step and the cycle the warp may issue again
  // (warp-synchronous: all member threads completed their previous request).
  std::vector<std::size_t> step(warps, 0);
  std::vector<std::uint64_t> ready(warps, 1);  // cycles are 1-based (Fig. 2)
  std::vector<std::size_t> steps_left(warps, 0);
  for (std::size_t warp = 0; warp < warps; ++warp) {
    std::size_t longest = 0;
    for (std::size_t t = warp * w; t < std::min(threads, (warp + 1) * w); ++t) {
      longest = std::max(longest, traces[t].addresses.size());
    }
    steps_left[warp] = longest;
  }

  std::vector<std::uint64_t> groups;
  groups.reserve(w);

  std::uint64_t entry_cycle = 1;  // next free entry-port cycle
  std::size_t rr = 0;             // round-robin pointer
  std::uint64_t last_drain = 0;

  auto pending = [&](std::size_t warp) { return step[warp] < steps_left[warp]; };

  while (true) {
    // Pick the next ready warp in round-robin order.
    std::size_t chosen = warps;
    std::uint64_t soonest = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t k = 0; k < warps; ++k) {
      const std::size_t warp = (rr + k) % warps;
      if (!pending(warp)) continue;
      if (ready[warp] <= entry_cycle) {
        chosen = warp;
        break;
      }
      soonest = std::min(soonest, ready[warp]);
    }
    if (chosen == warps) {
      if (soonest == std::numeric_limits<std::uint64_t>::max()) break;  // done
      result.idle_cycles += soonest - entry_cycle;
      entry_cycle = soonest;  // stall until some warp drains
      continue;
    }

    // Gather the warp's requests for its current step.
    groups.clear();
    const std::size_t begin = chosen * w;
    const std::size_t end = std::min(threads, begin + w);
    for (std::size_t t = begin; t < end; ++t) {
      if (step[chosen] >= traces[t].addresses.size()) continue;
      const std::uint32_t logical = traces[t].addresses[step[chosen]];
      assert((span == 0 || logical < span) && "address exceeds span");
      groups.push_back(map_address(layout, logical, t, threads, span) / w);
    }
    ++step[chosen];
    rr = (chosen + 1) % warps;

    if (groups.empty()) continue;  // all member threads already finished
    std::sort(groups.begin(), groups.end());
    const std::size_t distinct =
        std::unique(groups.begin(), groups.end()) - groups.begin();

    // The g distinct groups enter on consecutive cycles; the batch drains
    // l − 1 cycles after its last entry (entry cycle counts as stage 1).
    const std::uint64_t first_entry = entry_cycle;
    const std::uint64_t last_entry = first_entry + distinct - 1;
    const std::uint64_t drain = last_entry + config_.latency - 1;
    entry_cycle = last_entry + 1;
    ready[chosen] = drain + 1;
    last_drain = std::max(last_drain, drain);

    ++result.warp_dispatches;
    result.stage_slots += distinct;
    result.entry_cycles += distinct;
  }

  result.time_units = last_drain;
  return result;
}

}  // namespace bulkgcd::umm
