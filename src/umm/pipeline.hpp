// Cycle-level UMM pipeline simulator (Figure 2, taken literally).
//
// UmmSimulator charges the paper's closed-form cost: every machine-wide
// access step is a barrier costing (occupied stages) + l − 1. A real
// pipelined memory has no such barrier — warps re-enter as soon as their
// previous request drains, overlapping steps and hiding latency. This
// simulator models exactly that: a serial entry port (one address group per
// cycle), an l-stage drain, warp-synchronous reissue, and round-robin
// scheduling among ready warps.
//
// Relationships validated in tests/pipeline_test.cpp:
//   * Figure-2 worked example: exactly 8 time units;
//   * pipelined time <= the Theorem-1 barrier bound on every trace;
//   * with enough warps to saturate the entry port (p/w >= l), both models
//     agree to within one pipeline drain — Theorem 1 is tight exactly in
//     the regime the paper's bulk execution runs in.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "umm/umm.hpp"

namespace bulkgcd::umm {

struct PipelineResult {
  std::uint64_t time_units = 0;      ///< cycle the last request drains
  std::uint64_t entry_cycles = 0;    ///< cycles the entry port was busy
  std::uint64_t idle_cycles = 0;     ///< cycles no warp was ready
  std::uint64_t warp_dispatches = 0;
  std::uint64_t stage_slots = 0;     ///< Σ address groups over dispatches
};

class PipelineSimulator {
 public:
  explicit PipelineSimulator(UmmConfig config);

  /// Replay per-thread traces (aligned by access index within each warp;
  /// warps are independent). `span` as in UmmSimulator::replay.
  PipelineResult replay(const std::vector<ThreadTrace>& traces, Layout layout,
                        std::size_t span) const;

  const UmmConfig& config() const noexcept { return config_; }

 private:
  UmmConfig config_;
};

}  // namespace bulkgcd::umm
