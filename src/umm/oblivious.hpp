// Obliviousness analysis (Section VI).
//
// A sequential algorithm is *oblivious* when the address it touches at each
// time unit is input-independent; the paper argues Approximate Euclidean is
// *semi-oblivious* — only a small fraction of time units diverge across
// inputs — which is what keeps the bulk execution's global-memory access
// mostly coalesced. This module quantifies that claim: it runs the GCD
// engine with an AddressTracer over many input pairs and reports, per
// aligned time unit, whether all still-active threads agreed on the address.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "gcd/algorithms.hpp"
#include "mp/bigint.hpp"
#include "umm/umm.hpp"

namespace bulkgcd::umm {

struct ObliviousnessReport {
  std::uint64_t aligned_steps = 0;    ///< time units examined
  std::uint64_t uniform_steps = 0;    ///< all active threads at same address
  std::uint64_t divergent_steps = 0;  ///< >= 2 distinct addresses
  std::uint64_t ragged_steps = 0;     ///< some threads already finished
  std::uint64_t total_accesses = 0;
  /// Σ over aligned steps of the number of DISTINCT addresses among active
  /// threads. This is the quantity the UMM actually charges (address groups
  /// per warp): a thread whose buffer-pointer parity flipped once counts
  /// every later step as "divergent", yet the warp still touches only ~2
  /// address groups — semi-oblivious in the paper's cost sense.
  std::uint64_t distinct_address_sum = 0;

  double divergent_fraction() const noexcept {
    return aligned_steps == 0 ? 0.0
                              : double(divergent_steps) / double(aligned_steps);
  }
  /// Mean distinct addresses per step; 1.0 = fully oblivious, #threads =
  /// fully serialized.
  double mean_distinct_addresses() const noexcept {
    return aligned_steps == 0
               ? 1.0
               : double(distinct_address_sum) / double(aligned_steps);
  }
};

/// Align traces access-by-access and classify each time unit.
ObliviousnessReport analyze_traces(const std::vector<ThreadTrace>& traces);

/// Run `variant` on every input pair with an AddressTracer and collect the
/// per-thread traces. `early_bits` as in GcdEngine::run. `span` is the
/// per-thread logical working-set size used for the traces' buffer stride
/// (must be >= limb capacity of the inputs).
std::vector<ThreadTrace> collect_traces(
    gcd::Variant variant,
    std::span<const std::pair<mp::BigInt, mp::BigInt>> pairs,
    std::size_t early_bits, std::size_t span);

}  // namespace bulkgcd::umm
