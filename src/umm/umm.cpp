#include "umm/umm.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace bulkgcd::umm {

UmmSimulator::UmmSimulator(UmmConfig config) : config_(config) {
  if (config_.width == 0 || config_.latency == 0) {
    throw std::invalid_argument("UmmSimulator: width and latency must be > 0");
  }
}

std::uint64_t UmmSimulator::theorem1_time(std::size_t threads,
                                          std::size_t steps) const noexcept {
  const std::uint64_t warps =
      (threads + config_.width - 1) / config_.width;
  return (warps + config_.latency - 1) * steps;
}

ReplayResult UmmSimulator::replay(const std::vector<ThreadTrace>& traces,
                                  Layout layout, std::size_t span) const {
  ReplayResult result;
  const std::size_t threads = traces.size();
  if (threads == 0) return result;

  std::size_t max_len = 0;
  for (const auto& trace : traces) {
    max_len = std::max(max_len, trace.addresses.size());
  }

  std::vector<std::uint64_t> groups;  // scratch: address groups of one warp
  groups.reserve(config_.width);

  for (std::size_t step = 0; step < max_len; ++step) {
    std::uint64_t stages_this_step = 0;
    bool any_active = false;
    for (std::size_t warp_base = 0; warp_base < threads;
         warp_base += config_.width) {
      groups.clear();
      const std::size_t warp_end =
          std::min(warp_base + config_.width, threads);
      for (std::size_t t = warp_base; t < warp_end; ++t) {
        const auto& addrs = traces[t].addresses;
        if (step >= addrs.size()) continue;  // thread finished: no request
        assert((span == 0 || addrs[step] < span) &&
               "logical address exceeds span");
        const std::uint64_t global =
            map_address(layout, addrs[step], t, threads, span);
        groups.push_back(global / config_.width);
      }
      if (groups.empty()) continue;  // warp idle: not dispatched
      std::sort(groups.begin(), groups.end());
      const std::size_t distinct =
          std::unique(groups.begin(), groups.end()) - groups.begin();
      ++result.warp_dispatches;
      result.stage_slots += distinct;
      stages_this_step += distinct;
      any_active = true;
    }
    if (any_active) {
      // All warps' requests of this step enter the pipeline back to back:
      // (occupied stages) + latency − 1 time units (paper's Figure-2 count).
      result.time_units += stages_this_step + config_.latency - 1;
      ++result.steps;
    }
  }
  return result;
}

ReplayResult UmmSimulator::replay_iteration_aligned(
    const std::vector<ThreadTrace>& traces, Layout layout,
    std::size_t span) const {
  ReplayResult result;
  const std::size_t threads = traces.size();
  if (threads == 0) return result;

  std::size_t max_iters = 0;
  for (const auto& trace : traces) {
    max_iters = std::max(max_iters, trace.iteration_starts.size());
  }

  auto range_of = [](const ThreadTrace& trace, std::size_t k)
      -> std::pair<std::size_t, std::size_t> {
    if (k >= trace.iteration_starts.size()) return {0, 0};
    const std::size_t begin = trace.iteration_starts[k];
    const std::size_t end = k + 1 < trace.iteration_starts.size()
                                ? trace.iteration_starts[k + 1]
                                : trace.addresses.size();
    return {begin, end};
  };

  std::vector<std::uint64_t> groups;
  groups.reserve(config_.width);

  for (std::size_t k = 0; k < max_iters; ++k) {
    std::size_t max_len = 0;
    for (const auto& trace : traces) {
      const auto [begin, end] = range_of(trace, k);
      max_len = std::max(max_len, end - begin);
    }
    for (std::size_t j = 0; j < max_len; ++j) {
      std::uint64_t stages_this_step = 0;
      bool any_active = false;
      for (std::size_t warp_base = 0; warp_base < threads;
           warp_base += config_.width) {
        groups.clear();
        const std::size_t warp_end =
            std::min(warp_base + config_.width, threads);
        for (std::size_t t = warp_base; t < warp_end; ++t) {
          const auto [begin, end] = range_of(traces[t], k);
          if (begin + j >= end) continue;  // lane predicated off
          const std::uint32_t logical = traces[t].addresses[begin + j];
          assert((span == 0 || logical < span) && "address exceeds span");
          groups.push_back(map_address(layout, logical, t, threads, span) /
                           config_.width);
        }
        if (groups.empty()) continue;
        std::sort(groups.begin(), groups.end());
        const std::size_t distinct =
            std::unique(groups.begin(), groups.end()) - groups.begin();
        ++result.warp_dispatches;
        result.stage_slots += distinct;
        stages_this_step += distinct;
        any_active = true;
      }
      if (any_active) {
        result.time_units += stages_this_step + config_.latency - 1;
        ++result.steps;
      }
    }
  }
  return result;
}

}  // namespace bulkgcd::umm
