#include "umm/oblivious.hpp"

#include <algorithm>

#include "gcd/tracer.hpp"

namespace bulkgcd::umm {

namespace {

/// [begin, end) offsets of iteration k inside a trace's access array.
std::pair<std::size_t, std::size_t> iteration_range(const ThreadTrace& trace,
                                                    std::size_t k) {
  if (k >= trace.iteration_starts.size()) return {0, 0};
  const std::size_t begin = trace.iteration_starts[k];
  const std::size_t end = k + 1 < trace.iteration_starts.size()
                              ? trace.iteration_starts[k + 1]
                              : trace.addresses.size();
  return {begin, end};
}

}  // namespace

ObliviousnessReport analyze_traces(const std::vector<ThreadTrace>& traces) {
  ObliviousnessReport report;
  bool have_marks = !traces.empty();
  std::size_t max_iters = 0;
  for (const auto& trace : traces) {
    report.total_accesses += trace.addresses.size();
    if (trace.iteration_starts.empty()) have_marks = false;
    max_iters = std::max(max_iters, trace.iteration_starts.size());
  }

  if (have_marks) {
    // Iteration-aligned analysis: time unit = (iteration k, offset j), the
    // lockstep unit a SIMT warp actually executes. Threads past their last
    // iteration (or past their iteration's end) idle — "ragged" steps.
    for (std::size_t k = 0; k < max_iters; ++k) {
      std::size_t max_len = 0;
      for (const auto& trace : traces) {
        const auto [begin, end] = iteration_range(trace, k);
        max_len = std::max(max_len, end - begin);
      }
      std::vector<std::uint32_t> addrs;
      for (std::size_t j = 0; j < max_len; ++j) {
        bool ragged = false;
        addrs.clear();
        for (const auto& trace : traces) {
          const auto [begin, end] = iteration_range(trace, k);
          if (begin + j >= end) {
            ragged = true;
            continue;
          }
          addrs.push_back(trace.addresses[begin + j]);
        }
        std::sort(addrs.begin(), addrs.end());
        const std::size_t distinct =
            std::unique(addrs.begin(), addrs.end()) - addrs.begin();
        ++report.aligned_steps;
        report.distinct_address_sum += distinct;
        if (distinct > 1) {
          ++report.divergent_steps;
        } else {
          ++report.uniform_steps;
        }
        if (ragged) ++report.ragged_steps;
      }
    }
    return report;
  }

  // No iteration marks: raw access-index alignment.
  std::size_t max_len = 0;
  for (const auto& trace : traces) {
    max_len = std::max(max_len, trace.addresses.size());
  }
  report.aligned_steps = max_len;
  std::vector<std::uint32_t> addrs;
  for (std::size_t step = 0; step < max_len; ++step) {
    bool ragged = false;
    addrs.clear();
    for (const auto& trace : traces) {
      if (step >= trace.addresses.size()) {
        ragged = true;
        continue;
      }
      addrs.push_back(trace.addresses[step]);
    }
    std::sort(addrs.begin(), addrs.end());
    const std::size_t distinct =
        std::unique(addrs.begin(), addrs.end()) - addrs.begin();
    report.distinct_address_sum += distinct;
    if (distinct > 1) {
      ++report.divergent_steps;
    } else {
      ++report.uniform_steps;
    }
    if (ragged) ++report.ragged_steps;
  }
  return report;
}

std::vector<ThreadTrace> collect_traces(
    gcd::Variant variant,
    std::span<const std::pair<mp::BigInt, mp::BigInt>> pairs,
    std::size_t early_bits, std::size_t span) {
  std::vector<ThreadTrace> traces;
  traces.reserve(pairs.size());
  std::size_t capacity = 0;
  for (const auto& [x, y] : pairs) {
    capacity = std::max({capacity, x.size(), y.size()});
  }
  gcd::GcdEngine<std::uint32_t> engine(capacity);
  for (const auto& [x, y] : pairs) {
    gcd::AddressTracer tracer(span);
    engine.run(variant, x.limbs(), y.limbs(), early_bits, nullptr, &tracer);
    ThreadTrace trace;
    trace.addresses.reserve(tracer.accesses.size());
    trace.is_write.reserve(tracer.accesses.size());
    for (const auto& access : tracer.accesses) {
      trace.addresses.push_back(access.address);
      trace.is_write.push_back(access.is_write);
    }
    trace.iteration_starts = std::move(tracer.iteration_starts);
    traces.push_back(std::move(trace));
  }
  return traces;
}

}  // namespace bulkgcd::umm
