// Periodic NDJSON telemetry: a background thread snapshots a registry every
// `interval_seconds` and appends one to_json() line to a file, so a
// multi-day scan leaves an auditable time series behind even if the process
// dies (every line is flushed; a torn final line is still valid NDJSON up
// to the previous record). stop() — or destruction — writes one final
// snapshot so short runs always produce at least one line.
#pragma once

#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <thread>

#include "obs/metrics.hpp"

namespace bulkgcd::obs {

class TelemetryEmitter {
 public:
  /// Opens `path` for append; throws std::runtime_error on failure.
  /// interval_seconds <= 0 disables the periodic thread (snapshots are then
  /// written only by emit_now() and the final stop() snapshot).
  TelemetryEmitter(MetricsRegistry& registry, const std::filesystem::path& path,
                   double interval_seconds);
  ~TelemetryEmitter();

  TelemetryEmitter(const TelemetryEmitter&) = delete;
  TelemetryEmitter& operator=(const TelemetryEmitter&) = delete;

  /// Write one snapshot line immediately (any thread).
  void emit_now();

  /// Stop the periodic thread and write the final snapshot. Idempotent.
  void stop();

  std::uint64_t lines_written() const noexcept;

 private:
  void run();
  void write_line();

  MetricsRegistry& registry_;
  std::FILE* out_ = nullptr;
  double interval_seconds_;
  std::uint64_t lines_ = 0;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace bulkgcd::obs
