// RAII phase timers feeding latency histograms. A span targets either a
// shared HistogramMetric (mutexed observe — per-chunk / per-phase rates) or
// an unsynchronized LocalHistogram owned by the calling thread (per-round
// rates inside a sweep worker; folded into the shared metric once per work
// unit). A null target reduces the span to a single branch — the clock is
// never read — which is the null-registry path of the instrumented loops.
#pragma once

#include <chrono>

#include "obs/metrics.hpp"

namespace bulkgcd::obs {

namespace detail {

using SpanClock = std::chrono::steady_clock;

template <typename Target>
class ScopedSpanBase {
 public:
  explicit ScopedSpanBase(Target* target) noexcept : target_(target) {
    if (target_) start_ = SpanClock::now();
  }
  ~ScopedSpanBase() {
    if (target_) {
      target_->observe(
          std::chrono::duration<double>(SpanClock::now() - start_).count());
    }
  }
  ScopedSpanBase(const ScopedSpanBase&) = delete;
  ScopedSpanBase& operator=(const ScopedSpanBase&) = delete;

  /// Seconds elapsed so far (0 when untargeted).
  double seconds() const noexcept {
    return target_ ? std::chrono::duration<double>(SpanClock::now() - start_)
                         .count()
                   : 0.0;
  }

 private:
  Target* target_;
  SpanClock::time_point start_{};
};

}  // namespace detail

/// Times its own lifetime and records seconds into a shared HistogramMetric.
using ScopedSpan = detail::ScopedSpanBase<HistogramMetric>;

/// Same shape recording into a thread-private LocalHistogram — zero
/// synchronization, for spans opened many times per work unit.
using ScopedLocalSpan = detail::ScopedSpanBase<LocalHistogram>;

}  // namespace bulkgcd::obs
