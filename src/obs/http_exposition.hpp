// Minimal TCP listener serving a registry's Prometheus text exposition —
// the scrape endpoint a long-running intake daemon needs, kept deliberately
// tiny (no HTTP library, no keep-alive, no TLS: a loopback scrape target).
//
//   GET /metrics  → 200, text/plain; version=0.0.4, obs::to_prometheus()
//   GET /healthz  → 200, "ok" (liveness probe)
//   GET /status   → 200, application/json (set_status_provider; else 404)
//   GET /trace    → 200, Chrome trace_event JSON (set_trace; else 404)
//   anything else → 404
//
// One accept thread, one connection served at a time (scrapes are rare and
// the snapshot render is microseconds). Binds 127.0.0.1 only — exposing
// metrics beyond the host is a reverse proxy's job.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.hpp"

namespace bulkgcd::obs {

class TraceRecorder;

class MetricsHttpServer {
 public:
  /// Binds 127.0.0.1:port and starts the accept thread. port 0 picks an
  /// ephemeral port (see port()). Throws std::runtime_error on bind failure.
  MetricsHttpServer(MetricsRegistry& registry, std::uint16_t port);
  ~MetricsHttpServer();  ///< stop()

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// The actually bound port (resolves port 0).
  std::uint16_t port() const noexcept { return port_; }

  /// Requests served so far (any path).
  std::uint64_t requests() const noexcept;

  /// Install the GET /status body producer (typically
  /// bulk::build_info_json around the registry's uptime — the obs layer
  /// deliberately knows nothing about backends or versions). Callable any
  /// time; null reverts /status to 404.
  void set_status_provider(std::function<std::string()> provider);

  /// Serve GET /trace as this recorder's live Chrome trace_event JSON.
  /// The recorder must outlive the server (or be unset first with null).
  void set_trace(const TraceRecorder* trace);

  /// Close the listener and join the accept thread. Idempotent.
  void stop();

 private:
  void serve_loop();
  void handle_connection(int fd);

  MetricsRegistry& registry_;
  mutable std::mutex extras_mutex_;  ///< guards the two fields below
  std::function<std::string()> status_provider_;
  const TraceRecorder* trace_ = nullptr;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::thread thread_;
};

}  // namespace bulkgcd::obs
