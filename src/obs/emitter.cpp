#include "obs/emitter.hpp"

#include <chrono>
#include <stdexcept>

#include "obs/exposition.hpp"

namespace bulkgcd::obs {

TelemetryEmitter::TelemetryEmitter(MetricsRegistry& registry,
                                   const std::filesystem::path& path,
                                   double interval_seconds)
    : registry_(registry), interval_seconds_(interval_seconds) {
  out_ = std::fopen(path.string().c_str(), "ab");
  if (!out_) {
    throw std::runtime_error("obs: cannot open metrics file " + path.string());
  }
  if (interval_seconds_ > 0.0) {
    thread_ = std::thread([this] { run(); });
  }
}

TelemetryEmitter::~TelemetryEmitter() {
  stop();
  std::fclose(out_);
}

void TelemetryEmitter::run() {
  std::unique_lock lock(mutex_);
  const auto interval = std::chrono::duration<double>(interval_seconds_);
  while (!stopping_) {
    if (cv_.wait_for(lock, interval, [this] { return stopping_; })) break;
    lock.unlock();
    write_line();
    lock.lock();
  }
}

void TelemetryEmitter::emit_now() { write_line(); }

void TelemetryEmitter::stop() {
  {
    std::lock_guard lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  write_line();  // final snapshot: short runs still get at least one record
}

void TelemetryEmitter::write_line() {
  const std::string line = to_json(registry_.snapshot()) + "\n";
  std::lock_guard lock(mutex_);
  std::fwrite(line.data(), 1, line.size(), out_);
  std::fflush(out_);
  ++lines_;
}

std::uint64_t TelemetryEmitter::lines_written() const noexcept {
  std::lock_guard lock(mutex_);
  return lines_;
}

}  // namespace bulkgcd::obs
