#include "obs/http_exposition.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/exposition.hpp"
#include "obs/trace.hpp"

namespace bulkgcd::obs {

namespace {

void send_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return;  // peer went away; a scrape endpoint just moves on
    off += std::size_t(n);
  }
}

std::string http_response(int status, const char* reason,
                          const char* content_type, const std::string& body) {
  std::string out = "HTTP/1.0 " + std::to_string(status) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(MetricsRegistry& registry,
                                     std::uint16_t port)
    : registry_(registry) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("metrics server: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 16) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("metrics server: cannot listen on 127.0.0.1:" +
                             std::to_string(port) + ": " + err);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  thread_ = std::thread([this] { serve_loop(); });
}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

std::uint64_t MetricsHttpServer::requests() const noexcept {
  return requests_.load(std::memory_order_relaxed);
}

void MetricsHttpServer::set_status_provider(
    std::function<std::string()> provider) {
  std::lock_guard lock(extras_mutex_);
  status_provider_ = std::move(provider);
}

void MetricsHttpServer::set_trace(const TraceRecorder* trace) {
  std::lock_guard lock(extras_mutex_);
  trace_ = trace;
}

void MetricsHttpServer::stop() {
  if (!stopping_.exchange(true)) {
    // The accept loop polls with a timeout, so the flag alone unblocks it;
    // shutdown() additionally kicks any accept() already in flight.
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void MetricsHttpServer::serve_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    handle_connection(fd);
    ::close(fd);
  }
}

void MetricsHttpServer::handle_connection(int fd) {
  // Read until the end of the request head (or a sane cap) — the request
  // body, if any, is irrelevant to a GET-only endpoint.
  std::string request;
  char buf[1024];
  while (request.size() < 8192 &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, std::size_t(n));
  }
  const std::size_t line_end = request.find_first_of("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  requests_.fetch_add(1, std::memory_order_relaxed);

  std::string method, path;
  {
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
    if (sp1 != std::string::npos) {
      method = line.substr(0, sp1);
      path = line.substr(sp1 + 1, sp2 == std::string::npos
                                      ? std::string::npos
                                      : sp2 - sp1 - 1);
    }
  }

  if (method != "GET" && method != "HEAD") {
    send_all(fd, http_response(405, "Method Not Allowed", "text/plain",
                               "metrics endpoint is read-only\n"));
    return;
  }
  if (path == "/metrics" || path == "/metrics/") {
    const std::string body = to_prometheus(registry_.snapshot());
    send_all(fd, http_response(200, "OK",
                               "text/plain; version=0.0.4; charset=utf-8",
                               method == "HEAD" ? std::string() : body));
  } else if (path == "/healthz") {
    send_all(fd, http_response(200, "OK", "text/plain", "ok\n"));
  } else if (path == "/status" || path == "/trace") {
    // Copy the handles out so a provider swap can't race the render; the
    // render itself (snapshot + JSON build) runs outside the lock.
    std::function<std::string()> provider;
    const TraceRecorder* trace = nullptr;
    {
      std::lock_guard lock(extras_mutex_);
      provider = status_provider_;
      trace = trace_;
    }
    if (path == "/status" && provider) {
      const std::string body = provider();
      send_all(fd, http_response(200, "OK", "application/json",
                                 method == "HEAD" ? std::string() : body));
    } else if (path == "/trace" && trace != nullptr) {
      const std::string body = trace->to_chrome_json();
      send_all(fd, http_response(200, "OK", "application/json",
                                 method == "HEAD" ? std::string() : body));
    } else {
      send_all(fd, http_response(404, "Not Found", "text/plain",
                                 path == "/status"
                                     ? "no status provider configured\n"
                                     : "tracing not enabled\n"));
    }
  } else {
    send_all(fd, http_response(404, "Not Found", "text/plain",
                               "try /metrics\n"));
  }
}

}  // namespace bulkgcd::obs
