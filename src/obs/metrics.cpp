#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace bulkgcd::obs {

namespace {

std::uint64_t next_registry_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

bool valid_metric_name(std::string_view name) noexcept {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!head(name[0])) return false;
  for (const char c : name.substr(1)) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

// ---- Snapshot -------------------------------------------------------------

double Snapshot::HistogramValue::quantile(double q) const noexcept {
  if (count == 0 || bins.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * double(count);
  std::uint64_t running = 0;
  const double width = (hi - lo) / double(bins.size());
  for (std::size_t b = 0; b < bins.size(); ++b) {
    if (bins[b] == 0) continue;
    const double before = double(running);
    running += bins[b];
    if (double(running) >= target) {
      const double frac =
          bins[b] == 0 ? 0.0
                       : std::clamp((target - before) / double(bins[b]), 0.0,
                                    1.0);
      return lo + width * (double(b) + frac);
    }
  }
  return max;
}

// ---- Counter --------------------------------------------------------------

void Counter::add(std::uint64_t n) noexcept {
  auto& slot = owner_->thread_slot(slot_);
  slot.store(slot.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
}

std::uint64_t Counter::value() const noexcept {
  std::lock_guard lock(owner_->mutex_);
  return owner_->sum_slot_locked(slot_);
}

// ---- LocalHistogram / HistogramMetric -------------------------------------

LocalHistogram::LocalHistogram(const HistogramMetric& target)
    : lo_(target.lo()), hi_(target.hi()), bins_(target.bin_count(), 0) {}

std::size_t LocalHistogram::bin_index(double v) const noexcept {
  const double span = hi_ - lo_;
  if (!(span > 0.0)) return 0;  // degenerate range: everything in bin 0
  const double clamped = std::clamp(v, lo_, hi_);
  const double unit = (clamped - lo_) / span;
  return std::min(bins_.size() - 1,
                  std::size_t(unit * double(bins_.size())));
}

void LocalHistogram::reset() noexcept {
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
  std::fill(bins_.begin(), bins_.end(), 0);
}

void HistogramMetric::observe(double v) noexcept {
  std::lock_guard lock(mutex_);
  ++count_;
  sum_ += v;
  if (count_ == 1 || v < min_) min_ = v;
  if (count_ == 1 || v > max_) max_ = v;
  const double span = hi_ - lo_;
  std::size_t bin = 0;
  if (span > 0.0) {
    const double unit = (std::clamp(v, lo_, hi_) - lo_) / span;
    bin = std::min(bins_.size() - 1, std::size_t(unit * double(bins_.size())));
  }
  ++bins_[bin];
}

void HistogramMetric::merge(const LocalHistogram& local) noexcept {
  if (local.count_ == 0) return;
  std::lock_guard lock(mutex_);
  if (count_ == 0 || local.min_ < min_) min_ = local.min_;
  if (count_ == 0 || local.max_ > max_) max_ = local.max_;
  count_ += local.count_;
  sum_ += local.sum_;
  // Same geometry by construction (LocalHistogram copies it); a foreign
  // accumulator folds bin-by-bin up to the shorter length.
  const std::size_t n = std::min(bins_.size(), local.bins_.size());
  for (std::size_t b = 0; b < n; ++b) bins_[b] += local.bins_[b];
}

std::uint64_t HistogramMetric::count() const noexcept {
  std::lock_guard lock(mutex_);
  return count_;
}

void HistogramMetric::fill(Snapshot::HistogramValue& out) const {
  std::lock_guard lock(mutex_);
  out.lo = lo_;
  out.hi = hi_;
  out.count = count_;
  out.sum = sum_;
  out.min = min_;
  out.max = max_;
  out.bins = bins_;
}

// ---- MetricsRegistry ------------------------------------------------------

MetricsRegistry::MetricsRegistry() : id_(next_registry_id()) {}

MetricsRegistry::~MetricsRegistry() = default;

/// Per-thread map registry-id → ThreadBlock*. Registry ids are process-
/// unique and never reused, so a stale pointer left by a destroyed registry
/// is never dereferenced (its index is simply never looked up again).
std::vector<MetricsRegistry::ThreadBlock*>& MetricsRegistry::thread_block_map() {
  thread_local std::vector<ThreadBlock*> map;
  return map;
}

MetricsRegistry::ThreadBlock* MetricsRegistry::this_thread_block() {
  auto& map = thread_block_map();
  if (id_ < map.size() && map[id_] != nullptr) return map[id_];
  if (map.size() <= id_) map.resize(id_ + 1, nullptr);
  auto block = std::make_unique<ThreadBlock>();
  ThreadBlock* raw = block.get();
  {
    std::lock_guard lock(mutex_);
    blocks_.push_back(std::move(block));
  }
  map[id_] = raw;
  return raw;
}

std::atomic<std::uint64_t>& MetricsRegistry::thread_slot(std::size_t slot) {
  ThreadBlock* block = this_thread_block();
  if (slot >= block->slots_ready.load(std::memory_order_relaxed)) {
    // Grow this thread's own block. The registry mutex orders the deque
    // reshape against snapshot(); the owning thread's unlocked chunk
    // indexing below never races with growth because only the owner grows.
    std::lock_guard lock(mutex_);
    while (block->chunks.size() * kChunkSlots <= slot) {
      block->chunks.emplace_back();
    }
    block->slots_ready.store(block->chunks.size() * kChunkSlots,
                             std::memory_order_relaxed);
  }
  return block->chunks[slot / kChunkSlots].slots[slot % kChunkSlots];
}

std::uint64_t MetricsRegistry::sum_slot_locked(std::size_t slot) const {
  std::uint64_t total = 0;
  for (const auto& block : blocks_) {
    if (slot >= block->slots_ready.load(std::memory_order_relaxed)) continue;
    total += block->chunks[slot / kChunkSlots]
                 .slots[slot % kChunkSlots]
                 .load(std::memory_order_relaxed);
  }
  return total;
}

Counter* MetricsRegistry::counter(std::string_view name) {
  if (!valid_metric_name(name)) {
    throw std::invalid_argument("obs: invalid metric name: " +
                                std::string(name));
  }
  std::lock_guard lock(mutex_);
  for (const auto& entry : counters_) {
    if (entry.name == name) return entry.metric.get();
  }
  for (const auto& entry : gauges_) {
    if (entry.name == name) {
      throw std::invalid_argument("obs: " + std::string(name) +
                                  " is already a gauge");
    }
  }
  for (const auto& entry : histograms_) {
    if (entry.name == name) {
      throw std::invalid_argument("obs: " + std::string(name) +
                                  " is already a histogram");
    }
  }
  auto metric =
      std::unique_ptr<Counter>(new Counter(this, counter_slots_++));
  Counter* raw = metric.get();
  counters_.push_back({std::string(name), std::move(metric)});
  return raw;
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  if (!valid_metric_name(name)) {
    throw std::invalid_argument("obs: invalid metric name: " +
                                std::string(name));
  }
  std::lock_guard lock(mutex_);
  for (const auto& entry : gauges_) {
    if (entry.name == name) return entry.metric.get();
  }
  for (const auto& entry : counters_) {
    if (entry.name == name) {
      throw std::invalid_argument("obs: " + std::string(name) +
                                  " is already a counter");
    }
  }
  for (const auto& entry : histograms_) {
    if (entry.name == name) {
      throw std::invalid_argument("obs: " + std::string(name) +
                                  " is already a histogram");
    }
  }
  auto metric = std::unique_ptr<Gauge>(new Gauge());
  Gauge* raw = metric.get();
  gauges_.push_back({std::string(name), std::move(metric)});
  return raw;
}

HistogramMetric* MetricsRegistry::histogram(std::string_view name, double lo,
                                            double hi, std::size_t bins) {
  if (!valid_metric_name(name)) {
    throw std::invalid_argument("obs: invalid metric name: " +
                                std::string(name));
  }
  std::lock_guard lock(mutex_);
  for (const auto& entry : histograms_) {
    if (entry.name == name) return entry.metric.get();
  }
  for (const auto& entry : counters_) {
    if (entry.name == name) {
      throw std::invalid_argument("obs: " + std::string(name) +
                                  " is already a counter");
    }
  }
  for (const auto& entry : gauges_) {
    if (entry.name == name) {
      throw std::invalid_argument("obs: " + std::string(name) +
                                  " is already a gauge");
    }
  }
  auto metric = std::unique_ptr<HistogramMetric>(
      new HistogramMetric(lo, hi, bins));
  HistogramMetric* raw = metric.get();
  histograms_.push_back({std::string(name), std::move(metric)});
  return raw;
}

Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  snap.uptime_seconds = uptime_.seconds();
  std::lock_guard lock(mutex_);
  snap.sequence = sequence_++;
  snap.counters.reserve(counters_.size());
  for (const auto& entry : counters_) {
    snap.counters.push_back(
        {entry.name, sum_slot_locked(entry.metric->slot_)});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& entry : gauges_) {
    snap.gauges.push_back({entry.name, entry.metric->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& entry : histograms_) {
    Snapshot::HistogramValue value;
    value.name = entry.name;
    entry.metric->fill(value);
    snap.histograms.push_back(std::move(value));
  }
  return snap;
}

}  // namespace bulkgcd::obs
