#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "obs/metrics.hpp"

namespace bulkgcd::obs {

namespace {

std::uint64_t next_recorder_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t steady_ns() noexcept {
  return std::uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now().time_since_epoch())
                           .count());
}

// Word 4 packs name id and kind; words 0..3 and 5..7 are seq, ts, dur, flow,
// and the three args.
std::uint64_t pack_meta(std::uint32_t name_id, TraceEventKind kind) noexcept {
  return std::uint64_t(name_id) | (std::uint64_t(std::uint8_t(kind)) << 32);
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
}

/// Chrome timestamps are microseconds; keep nanosecond precision as a
/// 3-decimal fraction so adjacent sub-microsecond events stay ordered.
void append_us(std::string& out, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                (unsigned long long)(ns / 1000),
                (unsigned long long)(ns % 1000));
  out += buf;
}

const char* phase_of(TraceEventKind kind) noexcept {
  switch (kind) {
    case TraceEventKind::kComplete:
      return "X";
    case TraceEventKind::kInstant:
      return "i";
    case TraceEventKind::kFlowBegin:
      return "s";
    case TraceEventKind::kFlowStep:
      return "t";
    case TraceEventKind::kFlowEnd:
      return "f";
  }
  return "i";
}

}  // namespace

TraceRecorder::TraceRecorder(std::size_t ring_capacity,
                             MetricsRegistry* metrics)
    : id_(next_recorder_id()),
      capacity_(std::max<std::size_t>(1, ring_capacity)),
      epoch_ns_(steady_ns()) {
  if (metrics != nullptr) {
    recorded_counter_ = metrics->counter("trace_events_recorded_total");
    dropped_counter_ = metrics->counter("trace_events_dropped_total");
  }
}

TraceRecorder::~TraceRecorder() = default;

std::uint64_t TraceRecorder::now_ns() const noexcept {
  const std::uint64_t now = steady_ns();
  return now >= epoch_ns_ ? now - epoch_ns_ : 0;
}

std::uint64_t TraceRecorder::next_flow_id() noexcept {
  return next_flow_.fetch_add(1, std::memory_order_relaxed);
}

std::uint32_t TraceRecorder::intern(std::string_view name) {
  std::lock_guard lock(mutex_);
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return std::uint32_t(i);
  }
  names_.emplace_back(name);
  return std::uint32_t(names_.size() - 1);
}

void TraceRecorder::set_arg_names(std::uint32_t name_id, std::string_view a0,
                                  std::string_view a1, std::string_view a2) {
  std::lock_guard lock(mutex_);
  for (auto& entry : arg_names_) {
    if (entry.name_id == name_id) {
      entry.labels[0] = a0;
      entry.labels[1] = a1;
      entry.labels[2] = a2;
      return;
    }
  }
  arg_names_.push_back(
      {name_id, {std::string(a0), std::string(a1), std::string(a2)}});
}

void TraceRecorder::set_thread_name(std::string_view name) {
  ThreadRing* ring = this_thread_ring();
  std::lock_guard lock(mutex_);
  ring->name = std::string(name);
}

/// Per-thread map recorder-id → ThreadRing*. Recorder ids are process-unique
/// and never reused, so a stale pointer left by a destroyed recorder is never
/// dereferenced (its index is simply never looked up again) — the same
/// scheme as MetricsRegistry::thread_block_map.
std::vector<TraceRecorder::ThreadRing*>& TraceRecorder::thread_ring_map() {
  thread_local std::vector<ThreadRing*> map;
  return map;
}

TraceRecorder::ThreadRing* TraceRecorder::this_thread_ring() {
  auto& map = thread_ring_map();
  if (id_ < map.size() && map[id_] != nullptr) return map[id_];
  if (map.size() <= id_) map.resize(id_ + 1, nullptr);
  std::lock_guard lock(mutex_);
  auto ring =
      std::make_unique<ThreadRing>(std::uint32_t(rings_.size()), capacity_);
  ThreadRing* raw = ring.get();
  rings_.push_back(std::move(ring));
  map[id_] = raw;
  return raw;
}

void TraceRecorder::record(TraceEventKind kind, std::uint32_t name_id,
                           std::uint64_t ts_ns, std::uint64_t dur_ns,
                           std::uint64_t flow, std::uint64_t a0,
                           std::uint64_t a1, std::uint64_t a2) noexcept {
  ThreadRing* ring = this_thread_ring();
  const std::uint64_t h = ring->written.load(std::memory_order_relaxed);
  Slot& slot = ring->slots[h % capacity_];
  // Per-slot seqlock write: odd marks in-progress, payload lands relaxed,
  // the even publish releases. The release fence after the odd store pairs
  // with the exporter's acquire fence so a reader that observed any payload
  // word also observes the odd seq (and discards the read as torn).
  const std::uint64_t seq = slot.w[0].load(std::memory_order_relaxed);
  slot.w[0].store(seq + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.w[1].store(ts_ns, std::memory_order_relaxed);
  slot.w[2].store(dur_ns, std::memory_order_relaxed);
  slot.w[3].store(flow, std::memory_order_relaxed);
  slot.w[4].store(pack_meta(name_id, kind), std::memory_order_relaxed);
  slot.w[5].store(a0, std::memory_order_relaxed);
  slot.w[6].store(a1, std::memory_order_relaxed);
  slot.w[7].store(a2, std::memory_order_relaxed);
  slot.w[0].store(seq + 2, std::memory_order_release);
  ring->written.store(h + 1, std::memory_order_release);
  if (recorded_counter_ != nullptr) {
    recorded_counter_->inc();
    if (h >= capacity_) dropped_counter_->inc();
  }
}

void TraceRecorder::complete(std::uint32_t name_id, std::uint64_t ts_ns,
                             std::uint64_t dur_ns, std::uint64_t flow,
                             std::uint64_t a0, std::uint64_t a1,
                             std::uint64_t a2) noexcept {
  record(TraceEventKind::kComplete, name_id, ts_ns, dur_ns, flow, a0, a1, a2);
}

void TraceRecorder::instant(std::uint32_t name_id, std::uint64_t flow,
                            std::uint64_t a0, std::uint64_t a1,
                            std::uint64_t a2) noexcept {
  record(TraceEventKind::kInstant, name_id, now_ns(), 0, flow, a0, a1, a2);
}

void TraceRecorder::flow_begin(std::uint32_t name_id, std::uint64_t flow,
                               std::uint64_t a0, std::uint64_t a1,
                               std::uint64_t a2) noexcept {
  record(TraceEventKind::kFlowBegin, name_id, now_ns(), 0, flow, a0, a1, a2);
}

void TraceRecorder::flow_step(std::uint32_t name_id, std::uint64_t flow,
                              std::uint64_t a0, std::uint64_t a1,
                              std::uint64_t a2) noexcept {
  record(TraceEventKind::kFlowStep, name_id, now_ns(), 0, flow, a0, a1, a2);
}

void TraceRecorder::flow_end(std::uint32_t name_id, std::uint64_t flow,
                             std::uint64_t a0, std::uint64_t a1,
                             std::uint64_t a2) noexcept {
  record(TraceEventKind::kFlowEnd, name_id, now_ns(), 0, flow, a0, a1, a2);
}

std::uint64_t TraceRecorder::events_recorded() const {
  std::lock_guard lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) {
    total += ring->written.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t TraceRecorder::events_dropped() const {
  std::lock_guard lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) {
    const std::uint64_t w = ring->written.load(std::memory_order_relaxed);
    total += w > capacity_ ? w - capacity_ : 0;
  }
  return total;
}

TraceRecorder::TraceSnapshot TraceRecorder::snapshot() const {
  TraceSnapshot snap;
  std::lock_guard lock(mutex_);
  snap.names = names_;
  snap.arg_labels.resize(names_.size());
  for (const auto& entry : arg_names_) {
    if (entry.name_id >= snap.arg_labels.size()) continue;
    for (int k = 0; k < 3; ++k) {
      if (entry.labels[k].empty()) {
        snap.arg_labels[entry.name_id].used[k] = false;
      } else {
        snap.arg_labels[entry.name_id].labels[k] = entry.labels[k];
      }
    }
  }
  snap.threads.reserve(rings_.size());
  for (const auto& ring : rings_) {
    const std::uint64_t written = ring->written.load(std::memory_order_acquire);
    const std::uint64_t dropped = written > capacity_ ? written - capacity_ : 0;
    snap.threads.push_back({ring->id, ring->name, written, dropped});
    snap.events_recorded += written;
    snap.events_dropped += dropped;

    // Copy the retained window [dropped, written). Slots still being written
    // (odd or changed seq) are skipped — a racing writer can only be
    // touching the oldest retained slots, so the skip costs the events that
    // were about to be evicted anyway.
    const std::uint64_t lo = dropped;
    for (std::uint64_t e = lo; e < written; ++e) {
      const Slot& slot = ring->slots[e % capacity_];
      const std::uint64_t s1 = slot.w[0].load(std::memory_order_acquire);
      if (s1 & 1) continue;
      Event ev;
      ev.ring_id = ring->id;
      ev.ts_ns = slot.w[1].load(std::memory_order_relaxed);
      ev.dur_ns = slot.w[2].load(std::memory_order_relaxed);
      ev.flow = slot.w[3].load(std::memory_order_relaxed);
      const std::uint64_t meta = slot.w[4].load(std::memory_order_relaxed);
      ev.args[0] = slot.w[5].load(std::memory_order_relaxed);
      ev.args[1] = slot.w[6].load(std::memory_order_relaxed);
      ev.args[2] = slot.w[7].load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.w[0].load(std::memory_order_relaxed) != s1) continue;  // torn
      ev.name_id = std::uint32_t(meta & 0xffffffffu);
      const std::uint8_t kind = std::uint8_t((meta >> 32) & 0xff);
      if (kind < std::uint8_t(TraceEventKind::kComplete) ||
          kind > std::uint8_t(TraceEventKind::kFlowEnd)) {
        continue;  // never-written slot (meta 0) inside a counted window
      }
      ev.kind = TraceEventKind(kind);
      if (ev.name_id >= snap.names.size()) continue;
      snap.events.push_back(ev);
    }
  }
  std::stable_sort(snap.events.begin(), snap.events.end(),
                   [](const Event& a, const Event& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return snap;
}

namespace {

void append_args_json(std::string& out, const TraceRecorder::Event& ev,
                      const TraceRecorder::NameArgs& labels) {
  out += "\"args\":{";
  bool first = true;
  for (int k = 0; k < 3; ++k) {
    if (!labels.used[k]) continue;
    if (!first) out += ",";
    first = false;
    out += "\"";
    append_json_escaped(out, labels.labels[k]);
    out += "\":" + std::to_string(ev.args[k]);
  }
  if (ev.flow != 0) {
    if (!first) out += ",";
    first = false;
    out += "\"flow\":" + std::to_string(ev.flow);
  }
  out += "}";
}

}  // namespace

std::string TraceRecorder::to_chrome_json() const {
  const TraceSnapshot snap = snapshot();

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };
  for (const auto& thread : snap.threads) {
    if (thread.name.empty()) continue;
    sep();
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
           std::to_string(thread.ring_id) + ",\"args\":{\"name\":\"";
    append_json_escaped(out, thread.name);
    out += "\"}}";
  }
  for (const auto& ev : snap.events) {
    const std::string& name = snap.names[ev.name_id];
    const NameArgs& lbl = snap.arg_labels[ev.name_id];
    const bool is_flow = ev.kind == TraceEventKind::kFlowBegin ||
                         ev.kind == TraceEventKind::kFlowStep ||
                         ev.kind == TraceEventKind::kFlowEnd;
    sep();
    out += "{\"name\":\"";
    append_json_escaped(out, name);
    out += "\",\"ph\":\"";
    out += is_flow ? "i" : phase_of(ev.kind);
    out += "\",\"pid\":1,\"tid\":" + std::to_string(ev.ring_id) +
           ",\"ts\":";
    append_us(out, ev.ts_ns);
    if (ev.kind == TraceEventKind::kComplete) {
      out += ",\"dur\":";
      append_us(out, ev.dur_ns);
    }
    if (ev.kind == TraceEventKind::kInstant || is_flow) {
      out += ",\"s\":\"t\"";
    }
    out += ",";
    append_args_json(out, ev, lbl);
    out += "}";
    if (is_flow) {
      // The flow edge itself: a companion s/t/f record at the same spot
      // binds this thread's instant into the flow's cross-thread chain.
      sep();
      out += "{\"name\":\"";
      append_json_escaped(out, name);
      out += "\",\"cat\":\"flow\",\"ph\":\"";
      out += phase_of(ev.kind);
      out += "\",\"id\":" + std::to_string(ev.flow) +
             ",\"pid\":1,\"tid\":" + std::to_string(ev.ring_id) + ",\"ts\":";
      append_us(out, ev.ts_ns);
      if (ev.kind == TraceEventKind::kFlowEnd) out += ",\"bp\":\"e\"";
      out += "}";
    }
  }
  out += "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
         "\"trace_events_recorded\":" +
         std::to_string(snap.events_recorded) +
         ",\"trace_events_dropped\":" + std::to_string(snap.events_dropped) +
         "}}";
  return out;
}

std::string TraceRecorder::to_ndjson() const {
  const TraceSnapshot snap = snapshot();
  std::string out;
  for (const auto& thread : snap.threads) {
    out += "{\"record\":\"thread\",\"tid\":" + std::to_string(thread.ring_id) +
           ",\"name\":\"";
    append_json_escaped(out, thread.name);
    out += "\",\"recorded\":" + std::to_string(thread.recorded) +
           ",\"dropped\":" + std::to_string(thread.dropped) + "}\n";
  }
  for (const auto& ev : snap.events) {
    const NameArgs& lbl = snap.arg_labels[ev.name_id];
    out += "{\"record\":\"event\",\"name\":\"";
    append_json_escaped(out, snap.names[ev.name_id]);
    out += "\",\"ph\":\"";
    out += phase_of(ev.kind);
    out += "\",\"tid\":" + std::to_string(ev.ring_id) +
           ",\"ts_ns\":" + std::to_string(ev.ts_ns);
    if (ev.kind == TraceEventKind::kComplete) {
      out += ",\"dur_ns\":" + std::to_string(ev.dur_ns);
    }
    out += ",";
    append_args_json(out, ev, lbl);
    out += "}\n";
  }
  return out;
}

namespace {

bool write_text_file(const std::string& path, const std::string& body,
                     std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error) *error = "cannot open " + path + " for writing";
    return false;
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  const bool closed = std::fclose(f) == 0;
  if (!(ok && closed)) {
    if (error) *error = "short write to " + path;
    return false;
  }
  return true;
}

}  // namespace

bool TraceRecorder::write_chrome_json(const std::string& path,
                                      std::string* error) const {
  return write_text_file(path, to_chrome_json(), error);
}

bool TraceRecorder::write_ndjson(const std::string& path,
                                 std::string* error) const {
  return write_text_file(path, to_ndjson(), error);
}

}  // namespace bulkgcd::obs
