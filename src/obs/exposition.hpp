// Exposition formats for metric snapshots:
//   to_json()        — one compact JSON object per snapshot (no newlines),
//     ready to append as an NDJSON line (docs/OBSERVABILITY.md documents the
//     schema; docs/metrics_schema.json is the machine-checkable version).
//   to_prometheus()  — Prometheus text exposition format 0.0.4: counters as
//     `# TYPE name counter`, gauges as gauges, histograms as the cumulative
//     `name_bucket{le="..."}` / `name_sum` / `name_count` triple.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace bulkgcd::obs {

/// Single-line JSON rendering of a snapshot (NDJSON-ready).
std::string to_json(const Snapshot& snap);

/// Prometheus text exposition (0.0.4) rendering of a snapshot.
std::string to_prometheus(const Snapshot& snap);

}  // namespace bulkgcd::obs
