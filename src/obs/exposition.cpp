#include "obs/exposition.hpp"

#include <cmath>
#include <cstdio>

namespace bulkgcd::obs {

namespace {

void put_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void put_double(std::string& out, double v) {
  // NaN / Inf are not valid JSON; a non-finite sample renders as 0.
  if (!std::isfinite(v)) v = 0.0;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

void put_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", (unsigned long long)v);
  out += buf;
}

}  // namespace

std::string to_json(const Snapshot& snap) {
  std::string out;
  out.reserve(512);
  out += "{\"uptime_seconds\":";
  put_double(out, snap.uptime_seconds);
  out += ",\"sequence\":";
  put_u64(out, snap.sequence);

  out += ",\"counters\":{";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    if (i > 0) out.push_back(',');
    put_escaped(out, snap.counters[i].name);
    out.push_back(':');
    put_u64(out, snap.counters[i].value);
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i > 0) out.push_back(',');
    put_escaped(out, snap.gauges[i].name);
    out.push_back(':');
    put_double(out, snap.gauges[i].value);
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    if (i > 0) out.push_back(',');
    put_escaped(out, h.name);
    out += ":{\"lo\":";
    put_double(out, h.lo);
    out += ",\"hi\":";
    put_double(out, h.hi);
    out += ",\"count\":";
    put_u64(out, h.count);
    out += ",\"sum\":";
    put_double(out, h.sum);
    out += ",\"min\":";
    put_double(out, h.min);
    out += ",\"max\":";
    put_double(out, h.max);
    out += ",\"mean\":";
    put_double(out, h.mean());
    out += ",\"p50\":";
    put_double(out, h.quantile(0.50));
    out += ",\"p99\":";
    put_double(out, h.quantile(0.99));
    out += ",\"bins\":[";
    for (std::size_t b = 0; b < h.bins.size(); ++b) {
      if (b > 0) out.push_back(',');
      put_u64(out, h.bins[b]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string to_prometheus(const Snapshot& snap) {
  std::string out;
  out.reserve(1024);
  char buf[64];

  for (const auto& c : snap.counters) {
    out += "# TYPE " + c.name + " counter\n";
    out += c.name + " ";
    put_u64(out, c.value);
    out.push_back('\n');
  }
  for (const auto& g : snap.gauges) {
    out += "# TYPE " + g.name + " gauge\n";
    out += g.name + " ";
    put_double(out, g.value);
    out.push_back('\n');
  }
  for (const auto& h : snap.histograms) {
    out += "# TYPE " + h.name + " histogram\n";
    // Cumulative buckets at each bin's upper edge; observations above `hi`
    // were clamped into the last bin, so `+Inf` equals the total count.
    std::uint64_t running = 0;
    const double width =
        h.bins.empty() ? 0.0 : (h.hi - h.lo) / double(h.bins.size());
    for (std::size_t b = 0; b < h.bins.size(); ++b) {
      running += h.bins[b];
      std::snprintf(buf, sizeof(buf), "%.9g", h.lo + width * double(b + 1));
      out += h.name + "_bucket{le=\"" + buf + "\"} ";
      put_u64(out, running);
      out.push_back('\n');
    }
    out += h.name + "_bucket{le=\"+Inf\"} ";
    put_u64(out, h.count);
    out.push_back('\n');
    out += h.name + "_sum ";
    put_double(out, h.sum);
    out.push_back('\n');
    out += h.name + "_count ";
    put_u64(out, h.count);
    out.push_back('\n');
  }
  return out;
}

}  // namespace bulkgcd::obs
