// Pipeline tracing: per-thread event timelines with Chrome-trace export —
// the *when/where* companion to the aggregate metrics of obs/metrics.hpp.
// Counters answer "how much"; the trace answers "why did worker 3 idle
// between steals" and "where did this arrival spend its latency between
// parse, journal fsync, queue, and probe".
//
//   TraceRecorder — bounded per-thread ring buffers of timestamped events.
//     Recording is a relaxed-store hot path in the style of the sharded
//     counters: the first event from a thread registers a ring (one mutex
//     acquisition per thread per recorder), every later event is a seqlock
//     write into the owner's ring — no RMW, no lock, TSan-clean against a
//     concurrent exporter. A full ring wraps and overwrites the OLDEST
//     events; drops are accounted exactly (dropped() == how many events the
//     export can no longer show) and mirrored into the
//     trace_events_recorded_total / trace_events_dropped_total counters when
//     a MetricsRegistry is attached.
//   TraceSpan — RAII complete-event ("X") helper mirroring ScopedSpanBase:
//     a null recorder reduces it to a single branch, the clock is never
//     read, so tracing-off stays inside the existing 2% overhead gate.
//   Flows — next_flow_id() mints a process-unique id; flow_begin/step/end
//     events carrying it stitch one logical item (an intake arrival) into a
//     connected chain across threads in the Chrome trace viewer.
//
// Export: to_chrome_json() renders the ring contents as Chrome trace_event
// JSON (loadable in Perfetto / chrome://tracing, one track per recorded
// thread); to_ndjson() renders one self-contained JSON object per line for
// ad-hoc tooling (tools/trace_report.py consumes either). Exporting is
// read-only and safe while recording continues; slots torn by an in-flight
// write are skipped, never misread.
//
// Tracing never feeds back into results: the recorder only reads clocks and
// writes its own rings, so hits/stats/counters are bit-identical with
// tracing on or off (asserted in tests/trace_test.cpp).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace bulkgcd::obs {

class MetricsRegistry;
class Counter;

/// Event kinds, mapped to Chrome trace_event phases on export.
enum class TraceEventKind : std::uint8_t {
  kComplete = 1,   ///< span with start + duration ("X")
  kInstant = 2,    ///< point event on one thread's track ("i")
  kFlowBegin = 3,  ///< first event of a flow chain ("s", plus an instant)
  kFlowStep = 4,   ///< intermediate flow event ("t", plus an instant)
  kFlowEnd = 5,    ///< last event of a flow chain ("f", plus an instant)
};

class TraceRecorder {
 public:
  /// ring_capacity: events retained per recording thread (newest win once a
  /// ring wraps). metrics (optional) receives
  /// trace_events_recorded_total / trace_events_dropped_total.
  explicit TraceRecorder(std::size_t ring_capacity = 8192,
                         MetricsRegistry* metrics = nullptr);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // ---- setup (cold; any thread) -------------------------------------------

  /// Interns `name`, returning a dense id (stable for the recorder's
  /// lifetime; the same string always returns the same id). Call sites
  /// resolve ids once at setup and record with the id — the hot path never
  /// touches strings.
  std::uint32_t intern(std::string_view name);

  /// Label the up-to-three u64 args of events named `name_id` for export
  /// (e.g. steal → {"thief", "victim", "tiles"}). Unlabeled args export as
  /// a0/a1/a2; trailing empty labels suppress unused arg slots entirely.
  void set_arg_names(std::uint32_t name_id, std::string_view a0,
                     std::string_view a1 = {}, std::string_view a2 = {});

  /// Names the calling thread's track in the export ("scan-worker-2",
  /// "intake-probe"). Creates the thread's ring if it doesn't exist yet.
  void set_thread_name(std::string_view name);

  // ---- hot path (any thread; relaxed stores into the caller's own ring) ---

  /// Nanoseconds since recorder construction (steady clock).
  std::uint64_t now_ns() const noexcept;

  /// Mints a process-unique nonzero flow id (flow 0 means "no flow").
  std::uint64_t next_flow_id() noexcept;

  void complete(std::uint32_t name_id, std::uint64_t ts_ns,
                std::uint64_t dur_ns, std::uint64_t flow = 0,
                std::uint64_t a0 = 0, std::uint64_t a1 = 0,
                std::uint64_t a2 = 0) noexcept;
  void instant(std::uint32_t name_id, std::uint64_t flow = 0,
               std::uint64_t a0 = 0, std::uint64_t a1 = 0,
               std::uint64_t a2 = 0) noexcept;
  void flow_begin(std::uint32_t name_id, std::uint64_t flow,
                  std::uint64_t a0 = 0, std::uint64_t a1 = 0,
                  std::uint64_t a2 = 0) noexcept;
  void flow_step(std::uint32_t name_id, std::uint64_t flow,
                 std::uint64_t a0 = 0, std::uint64_t a1 = 0,
                 std::uint64_t a2 = 0) noexcept;
  void flow_end(std::uint32_t name_id, std::uint64_t flow,
                std::uint64_t a0 = 0, std::uint64_t a1 = 0,
                std::uint64_t a2 = 0) noexcept;

  // ---- accounting / export (cold; safe while recording continues) ---------

  /// Events recorded / evicted-unseen so far, summed over all rings. The
  /// difference is what an export can still show. Exact: each ring drops
  /// max(0, written − capacity), oldest first.
  std::uint64_t events_recorded() const;
  std::uint64_t events_dropped() const;

  /// One decoded, stable event (torn slots are skipped by the snapshot).
  struct Event {
    std::uint32_t ring_id = 0;  ///< export track ("tid")
    TraceEventKind kind = TraceEventKind::kInstant;
    std::uint32_t name_id = 0;
    std::uint64_t ts_ns = 0;
    std::uint64_t dur_ns = 0;
    std::uint64_t flow = 0;
    std::uint64_t args[3] = {0, 0, 0};
  };
  struct ThreadInfo {
    std::uint32_t ring_id = 0;
    std::string name;  ///< empty when never named
    std::uint64_t recorded = 0;
    std::uint64_t dropped = 0;
  };
  /// Export labels for one event name's three u64 args (set_arg_names);
  /// defaults a0/a1/a2, used[k] false when the label was set empty.
  struct NameArgs {
    std::string labels[3] = {"a0", "a1", "a2"};
    bool used[3] = {true, true, true};
  };
  struct TraceSnapshot {
    std::vector<std::string> names;      ///< index == interned id
    std::vector<NameArgs> arg_labels;    ///< index == interned id
    std::vector<ThreadInfo> threads;
    std::vector<Event> events;           ///< sorted by ts_ns
    std::uint64_t events_recorded = 0;
    std::uint64_t events_dropped = 0;
  };
  TraceSnapshot snapshot() const;

  /// Chrome trace_event JSON object ({"traceEvents": [...]}) with one "M"
  /// thread_name record per named ring and flow s/t/f events binding the
  /// per-thread instants into chains.
  std::string to_chrome_json() const;
  /// One self-contained JSON object per line (name/ph/tid/ts_ns/... keys).
  std::string to_ndjson() const;

  /// Write an export to `path`; false + *error on I/O failure.
  bool write_chrome_json(const std::string& path,
                         std::string* error = nullptr) const;
  bool write_ndjson(const std::string& path,
                    std::string* error = nullptr) const;

  std::size_t ring_capacity() const noexcept { return capacity_; }

 private:
  // One ring slot = one cache line = 8 atomic words under a per-slot seqlock
  // (word 0). The owning thread writes odd-seq → payload → even-seq; the
  // exporter re-checks the seq around its copy and discards torn reads, so
  // live export never misreads a slot and never stalls the writer.
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> w[8];
    Slot() {
      for (auto& x : w) x.store(0, std::memory_order_relaxed);
    }
  };
  struct ThreadRing {
    ThreadRing(std::uint32_t ring_id, std::size_t capacity)
        : id(ring_id), slots(std::make_unique<Slot[]>(capacity)) {}
    const std::uint32_t id;
    std::unique_ptr<Slot[]> slots;
    std::atomic<std::uint64_t> written{0};  ///< total events ever written
    std::string name;                       ///< guarded by recorder mutex
  };

  ThreadRing* this_thread_ring();
  static std::vector<ThreadRing*>& thread_ring_map();
  void record(TraceEventKind kind, std::uint32_t name_id, std::uint64_t ts_ns,
              std::uint64_t dur_ns, std::uint64_t flow, std::uint64_t a0,
              std::uint64_t a1, std::uint64_t a2) noexcept;

  const std::uint64_t id_;  ///< process-unique, never reused
  const std::size_t capacity_;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadRing>> rings_;
  std::vector<std::string> names_;  ///< interned; index == id
  struct ArgNames {
    std::uint32_t name_id;
    std::string labels[3];
  };
  std::vector<ArgNames> arg_names_;
  std::atomic<std::uint64_t> next_flow_{1};
  Counter* recorded_counter_ = nullptr;  ///< null without a registry
  Counter* dropped_counter_ = nullptr;
  std::uint64_t epoch_ns_ = 0;  ///< steady-clock origin of ts_ns
};

/// RAII complete-event helper following ScopedSpanBase's null contract: a
/// null recorder is a single branch, the clock is never read. Args and flow
/// may be set any time before destruction (they ride the closing record).
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* recorder, std::uint32_t name_id,
            std::uint64_t flow = 0) noexcept
      : recorder_(recorder), name_id_(name_id), flow_(flow) {
    if (recorder_) start_ns_ = recorder_->now_ns();
  }
  ~TraceSpan() {
    if (recorder_) {
      recorder_->complete(name_id_, start_ns_,
                          recorder_->now_ns() - start_ns_, flow_, args_[0],
                          args_[1], args_[2]);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void set_flow(std::uint64_t flow) noexcept { flow_ = flow; }
  void set_args(std::uint64_t a0, std::uint64_t a1 = 0,
                std::uint64_t a2 = 0) noexcept {
    args_[0] = a0;
    args_[1] = a1;
    args_[2] = a2;
  }

 private:
  TraceRecorder* recorder_;
  std::uint32_t name_id_;
  std::uint64_t flow_;
  std::uint64_t start_ns_ = 0;
  std::uint64_t args_[3] = {0, 0, 0};
};

}  // namespace bulkgcd::obs
