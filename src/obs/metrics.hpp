// Low-overhead telemetry for long scan runs — the observability layer the
// paper's measurement story (§IV–§VI counts memory accesses, iterations, and
// divergence) implies but the original stdout-only runtime never had.
//
//   MetricsRegistry  — named counters, gauges, and histograms. Counters are
//     sharded per thread: each thread owns a private cache-line-aligned slot
//     block, written with relaxed load/store (no read-modify-write, no lock
//     prefix — on x86 this compiles to the same mov/add/mov as a plain
//     uint64_t, but stays ThreadSanitizer-clean). snapshot() aggregates all
//     shards under the registry mutex.
//   Gauge            — last-writer-wins double (relaxed atomic).
//   HistogramMetric  — fixed-range linear bins + count/sum/min/max behind a
//     mutex; intended for low-rate observations (per chunk, per phase). Hot
//     loops accumulate into an unsynchronized LocalHistogram and merge once
//     per work unit.
//
// The "null registry" path: every instrumented call site holds handles that
// may be nullptr (registry absent). All handle operations are null-safe via
// the caller's single-branch guard; the instrumented hot loops stay within
// noise of the uninstrumented build (EXPERIMENTS.md records the budget).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/timer.hpp"

namespace bulkgcd::obs {

class MetricsRegistry;

/// Point-in-time aggregate of every metric in a registry. Plain data —
/// exposition (JSON / Prometheus text) lives in obs/exposition.hpp.
struct Snapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    double lo = 0.0, hi = 0.0;
    std::uint64_t count = 0;
    double sum = 0.0, min = 0.0, max = 0.0;
    std::vector<std::uint64_t> bins;
    double mean() const noexcept {
      return count == 0 ? 0.0 : sum / double(count);
    }
    /// Linear-interpolated quantile estimate from the bin counts (exact at
    /// bin granularity; clamped observations land in the edge bins).
    double quantile(double q) const noexcept;
  };

  double uptime_seconds = 0.0;  ///< since registry construction
  std::uint64_t sequence = 0;   ///< monotonically increasing per registry
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
};

/// Monotonic counter handle. Obtained from (and owned by) a registry;
/// add() is safe from any thread and never contends with other threads.
class Counter {
 public:
  void add(std::uint64_t n) noexcept;
  void inc() noexcept { add(1); }
  /// Aggregate over all thread shards (takes the registry mutex).
  std::uint64_t value() const noexcept;

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* owner, std::size_t slot)
      : owner_(owner), slot_(slot) {}
  MetricsRegistry* owner_;
  std::size_t slot_;
};

/// Last-writer-wins instantaneous value (rates, ratios, queue depths).
class Gauge {
 public:
  void set(double v) noexcept { bits_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return bits_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<double> bits_{0.0};
};

class HistogramMetric;

/// Unsynchronized accumulator sharing a HistogramMetric's bin geometry.
/// Hot loops observe() into one of these (a few adds, no lock) and fold the
/// whole batch into the shared metric once per work unit.
class LocalHistogram {
 public:
  LocalHistogram() = default;
  explicit LocalHistogram(const HistogramMetric& target);

  void observe(double v) noexcept {
    if (bins_.empty()) return;
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (count_ == 1 || v > max_) max_ = v;
    ++bins_[bin_index(v)];
  }
  std::uint64_t count() const noexcept { return count_; }
  void reset() noexcept;

 private:
  friend class HistogramMetric;
  std::size_t bin_index(double v) const noexcept;
  double lo_ = 0.0, hi_ = 0.0;
  std::uint64_t count_ = 0;
  double sum_ = 0.0, min_ = 0.0, max_ = 0.0;
  std::vector<std::uint64_t> bins_;
};

/// Fixed-range linear histogram with streaming sum/min/max. observe() takes
/// a mutex — fine at per-chunk / per-phase rates; use LocalHistogram + merge
/// for per-pair rates.
class HistogramMetric {
 public:
  void observe(double v) noexcept;
  void merge(const LocalHistogram& local) noexcept;
  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }
  std::size_t bin_count() const noexcept { return bins_.size(); }
  std::uint64_t count() const noexcept;

 private:
  friend class MetricsRegistry;
  friend class LocalHistogram;
  HistogramMetric(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), bins_(bins == 0 ? 1 : bins, 0) {}
  void fill(Snapshot::HistogramValue& out) const;

  double lo_, hi_;
  mutable std::mutex mutex_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0, min_ = 0.0, max_ = 0.0;
  std::vector<std::uint64_t> bins_;
};

/// Registry of named metrics. Registration is idempotent (same name returns
/// the same handle) and validated against the Prometheus name grammar
/// ([a-zA-Z_][a-zA-Z0-9_]*). Handles stay valid for the registry's lifetime;
/// a metric's kind is fixed by its first registration (a name clash across
/// kinds throws std::invalid_argument).
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  /// Linear bins over [lo, hi); out-of-range observations clamp into the
  /// edge bins (mirroring core/stats.hpp Histogram).
  HistogramMetric* histogram(std::string_view name, double lo, double hi,
                             std::size_t bins = 32);

  Snapshot snapshot() const;
  double uptime_seconds() const noexcept { return uptime_.seconds(); }

 private:
  friend class Counter;

  // One thread's private counter slots. Slots live in fixed-size chunks so
  // addresses stay stable while the block grows; only the owning thread
  // grows its own block (under the registry mutex, so snapshot() never
  // observes a deque mid-rehape).
  static constexpr std::size_t kChunkSlots = 64;
  struct alignas(64) SlotChunk {
    std::atomic<std::uint64_t> slots[kChunkSlots];
    SlotChunk() {
      for (auto& s : slots) s.store(0, std::memory_order_relaxed);
    }
  };
  struct ThreadBlock {
    std::deque<SlotChunk> chunks;
    std::atomic<std::size_t> slots_ready{0};
  };

  std::atomic<std::uint64_t>& thread_slot(std::size_t slot);
  ThreadBlock* this_thread_block();
  std::uint64_t sum_slot_locked(std::size_t slot) const;
  static std::vector<ThreadBlock*>& thread_block_map();

  const std::uint64_t id_;  ///< process-unique, never reused
  Timer uptime_;
  mutable std::mutex mutex_;
  mutable std::uint64_t sequence_ = 0;
  std::vector<std::unique_ptr<ThreadBlock>> blocks_;
  std::size_t counter_slots_ = 0;

  // Insertion-ordered metric tables (snapshot order == registration order).
  struct NamedCounter {
    std::string name;
    std::unique_ptr<Counter> metric;
  };
  struct NamedGauge {
    std::string name;
    std::unique_ptr<Gauge> metric;
  };
  struct NamedHistogram {
    std::string name;
    std::unique_ptr<HistogramMetric> metric;
  };
  std::vector<NamedCounter> counters_;
  std::vector<NamedGauge> gauges_;
  std::vector<NamedHistogram> histograms_;
};

/// True when `name` is a valid metric name ([a-zA-Z_][a-zA-Z0-9_]*).
bool valid_metric_name(std::string_view name) noexcept;

}  // namespace bulkgcd::obs
