// Umbrella header for the bulkgcd library — the public API surface.
//
//   mp::BigInt / mp::BigIntT<Limb>      arbitrary-precision unsigned integers
//   gcd::gcd_general / gcd_odd          single-pair GCD (five algorithms)
//   gcd::probe_moduli_pair              early-terminate RSA-moduli probe
//   gcd::GcdEngine<Limb>                reusable scalar engine
//   gcd::ref_*                          pseudocode-level reference engines
//   rsa::generate_keypair / encrypt / decrypt / recover_private_key
//   rsa::generate_corpus                weak-key corpus synthesis
//   rsa::MontgomeryContext              fast modular exponentiation
//   rsa::save_moduli / load_moduli      keystore file I/O
//   bulk::all_pairs_gcd                 the paper's bulk attack (Section VI)
//   bulk::run_resumable_scan            checkpointed, fault-tolerant scan
//   bulk::probe_incremental             one-new-key incremental scan
//   bulk::SimtBatch                     warp-lockstep execution engine
//   obs::MetricsRegistry                telemetry counters/gauges/histograms
//   obs::TelemetryEmitter               periodic NDJSON snapshot writer
//   obs::MetricsHttpServer              /metrics + /status + /trace endpoint
//   obs::TraceRecorder                  per-thread event timelines (Chrome)
//   bulk::query_build_info              version/limb/backend identification
//   svc::IntakeService                  streaming key-intake pipeline
//   svc::IntakeParser                   PEM/keystore/raw-hex stream parser
//   svc::ArrivalJournal                 durable intake arrival journal
//   bulk::StagedCorpus                  incrementally staged probe corpus
//   batchgcd::batch_gcd                 Bernstein product/remainder tree
//   batchgcd::run_resumable_batch       checkpointed level-by-level driver
//   gcd::gcd_lehmer                     Lehmer's GCD (extension baseline)
//   umm::UmmSimulator                   the paper's GPU cost model
//
// See README.md for a guided tour and examples/ for runnable programs.
#pragma once

#include "batchgcd/batch_journal.hpp"
#include "batchgcd/batchgcd.hpp"
#include "bulk/allpairs.hpp"
#include "bulk/build_info.hpp"
#include "bulk/block_grid.hpp"
#include "bulk/scan_driver.hpp"
#include "bulk/simt.hpp"
#include "bulk/staged_corpus.hpp"
#include "core/rng.hpp"
#include "core/thread_pool.hpp"
#include "core/stats.hpp"
#include "core/timer.hpp"
#include "gcd/algorithms.hpp"
#include "gcd/lehmer.hpp"
#include "gcd/reference.hpp"
#include "mp/bigint.hpp"
#include "obs/emitter.hpp"
#include "obs/exposition.hpp"
#include "obs/http_exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "rsa/barrett.hpp"
#include "rsa/corpus.hpp"
#include "rsa/keystore.hpp"
#include "rsa/modmath.hpp"
#include "rsa/pem.hpp"
#include "rsa/montgomery.hpp"
#include "rsa/prime.hpp"
#include "rsa/rsa.hpp"
#include "svc/arrival_journal.hpp"
#include "svc/bounded_queue.hpp"
#include "svc/intake_parser.hpp"
#include "svc/intake_service.hpp"
#include "umm/oblivious.hpp"
#include "umm/pipeline.hpp"
#include "umm/umm.hpp"
