// Weak-key corpus synthesis.
//
// The paper's threat model: RSA moduli harvested from the Web, a fraction of
// which share prime factors due to bad randomness (Lenstra et al., "Ron was
// wrong, Whit is right"). We cannot scrape that corpus here, so we synthesize
// one with a controlled shared-prime rate and keep the ground truth for
// verification — the substitution documented in DESIGN.md.
//
// Two generation backends produce statistically identical corpora:
//   * kNative — this repo's Miller-Rabin prime search (self-contained, used
//     by default up to 1024-bit moduli);
//   * kGmp    — GMP's mpz_nextprime (used by default for larger moduli where
//     a schoolbook modpow prime search is needlessly slow; GMP is never used
//     in any measured GCD code path).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "core/rng.hpp"
#include "mp/bigint.hpp"

namespace bulkgcd::rsa {

enum class CorpusBackend {
  kAuto,    ///< kNative for modulus_bits <= 1024, else kGmp (if available)
  kNative,
  kGmp,
};

struct CorpusSpec {
  std::size_t count = 64;              ///< number of moduli
  std::size_t modulus_bits = 1024;     ///< bits per modulus (even)
  /// Number of weak pairs to inject: pairs (2i, 2i+1) of moduli that share a
  /// prime. Must satisfy 2*weak_pairs <= count.
  std::size_t weak_pairs = 0;
  std::uint64_t seed = 42;
  CorpusBackend backend = CorpusBackend::kAuto;
};

struct WeakCorpus {
  std::vector<mp::BigInt> moduli;
  /// Ground truth: index pairs that share a prime, with the shared prime.
  struct WeakPair {
    std::size_t first;
    std::size_t second;
    mp::BigInt shared_prime;
  };
  std::vector<WeakPair> weak;
  std::size_t modulus_bits = 0;
};

/// Generate `spec.count` distinct RSA moduli; the first 2*weak_pairs of them
/// form shared-prime pairs (then the whole list is shuffled so weak pairs sit
/// at random positions; ground-truth indices track the shuffle).
WeakCorpus generate_corpus(const CorpusSpec& spec);

/// The *mechanism* behind real-world weak keys (Lenstra et al. 2012, the
/// paper's motivation): devices seeding their PRNG with too little entropy
/// draw primes from a small pool, and shared factors appear by the birthday
/// effect rather than by construction. This generator models that directly:
/// every prime is drawn uniformly from a pool of `pool_size` primes, so the
/// expected number of colliding pairs among c moduli (2c draws) follows the
/// birthday statistics E ≈ C(2c, 2)/pool − intra-modulus effects.
struct LowEntropySpec {
  std::size_t count = 64;           ///< number of moduli
  std::size_t modulus_bits = 512;   ///< bits per modulus (even)
  std::size_t pool_size = 128;      ///< distinct primes available to devices
  std::uint64_t seed = 1;
  CorpusBackend backend = CorpusBackend::kAuto;
};

struct LowEntropyCorpus {
  std::vector<mp::BigInt> moduli;
  /// Ground truth: weak[i] lists every j > i with gcd(n_i, n_j) > 1.
  std::vector<std::pair<std::size_t, std::size_t>> weak_pairs;
  std::size_t distinct_primes_used = 0;
};

/// Expected number of weak (factor-sharing) unordered pairs for the spec.
double expected_weak_pairs(const LowEntropySpec& spec);

LowEntropyCorpus generate_low_entropy_corpus(const LowEntropySpec& spec);

/// True when the kGmp backend is compiled in.
bool gmp_backend_available() noexcept;

/// Generate `count` random primes of `bits` bits (top two bits set) using the
/// selected backend. Exposed for tests that cross-check the backends.
std::vector<mp::BigInt> generate_primes(Xoshiro256& rng, std::size_t count,
                                        std::size_t bits, CorpusBackend backend);

}  // namespace bulkgcd::rsa
