// Textbook RSA over the in-repo bignum, as described in the paper's
// introduction: encryption key (n, e), decryption key (n, d) with
// d·e ≡ 1 (mod (p−1)(q−1)); C = M^e mod n, M = C^d mod n. Once a modulus is
// factored by a shared-prime GCD hit, recover_private_key() rebuilds d and
// the plaintext falls out — the end-to-end "break" of a weak key.
//
// This is deliberately textbook RSA (no padding): the attack reproduced here
// operates on moduli, not ciphertexts, and unpadded arithmetic keeps the
// pipeline transparent.
#pragma once

#include <cstdint>

#include "core/rng.hpp"
#include "mp/bigint.hpp"

namespace bulkgcd::rsa {

inline constexpr std::uint64_t kDefaultPublicExponent = 65537;

struct KeyPair {
  mp::BigInt n;  ///< modulus p*q
  mp::BigInt e;  ///< public exponent
  mp::BigInt d;  ///< private exponent
  mp::BigInt p;  ///< prime factor
  mp::BigInt q;  ///< prime factor
};

/// Generate an RSA key pair with an s-bit modulus (s must be even; the two
/// prime factors have s/2 bits each and the modulus exactly s bits).
KeyPair generate_keypair(Xoshiro256& rng, std::size_t modulus_bits,
                         std::uint64_t public_exponent = kDefaultPublicExponent);

/// Build a key pair from two given primes (used by the weak-corpus generator
/// to inject shared factors).
KeyPair keypair_from_primes(const mp::BigInt& p, const mp::BigInt& q,
                            std::uint64_t public_exponent = kDefaultPublicExponent);

/// C = M^e mod n. Requires 0 <= M < n.
mp::BigInt encrypt(const mp::BigInt& message, const mp::BigInt& n,
                   const mp::BigInt& e);

/// M = C^d mod n.
mp::BigInt decrypt(const mp::BigInt& cipher, const mp::BigInt& n,
                   const mp::BigInt& d);

/// CRT decryption: M = C^d mod n computed as two half-size exponentiations
/// mod p and mod q recombined by Garner's formula — the standard ~4x
/// speedup, available exactly when the factors are known (i.e. for keys this
/// library has just broken). Requires key.p and key.q to be set.
mp::BigInt decrypt_crt(const mp::BigInt& cipher, const KeyPair& key);

/// Given a modulus n, its public exponent e and one recovered prime factor,
/// reconstruct the full key pair (q = n / factor, d = e^{-1} mod (p−1)(q−1)).
/// Throws std::invalid_argument if factor does not divide n.
KeyPair recover_private_key(const mp::BigInt& n, const mp::BigInt& e,
                            const mp::BigInt& factor);

/// Serialize a short ASCII string as an integer message (big-endian bytes)
/// and back — enough for the example pipelines.
mp::BigInt encode_message(std::string_view text);
std::string decode_message(const mp::BigInt& value);

}  // namespace bulkgcd::rsa
