#include "rsa/barrett.hpp"

#include <stdexcept>

namespace bulkgcd::rsa {

namespace {
constexpr std::size_t kLimbBits = 32;
}

BarrettContext::BarrettContext(mp::BigInt modulus) : n_(std::move(modulus)) {
  if (n_.is_zero()) {
    throw std::invalid_argument("BarrettContext: modulus must be > 0");
  }
  k_ = n_.size();
  mu_ = (mp::BigInt(1) << (2 * k_ * kLimbBits)) / n_;
}

mp::BigInt BarrettContext::reduce(const mp::BigInt& x) const {
  if (x < n_) return x;
  // HAC 14.42 with base B = 2^32:
  //   q̂ = ⌊⌊x / B^{k−1}⌋ · µ / B^{k+1}⌋   (q̂ ∈ {q, q−1, q−2})
  const mp::BigInt q1 = x >> ((k_ - 1) * kLimbBits);
  const mp::BigInt q3 = (q1 * mu_) >> ((k_ + 1) * kLimbBits);

  // r = (x − q̂·n) mod B^{k+1}; the true remainder is r, r−? plus at most two
  // corrective subtractions of n.
  const std::size_t rbits = (k_ + 1) * kLimbBits;
  const mp::BigInt mask_mod = mp::BigInt(1) << rbits;
  const mp::BigInt r1 = x - ((x >> rbits) << rbits);  // x mod B^{k+1}
  mp::BigInt r2 = q3 * n_;
  r2 = r2 - ((r2 >> rbits) << rbits);  // (q̂·n) mod B^{k+1}
  mp::BigInt r = r1 >= r2 ? r1 - r2 : r1 + mask_mod - r2;
  while (r >= n_) r -= n_;  // at most two iterations by the q̂ bound
  return r;
}

mp::BigInt BarrettContext::pow(const mp::BigInt& base,
                               const mp::BigInt& exponent) const {
  mp::BigInt acc(1);
  if (n_ == mp::BigInt(1)) return mp::BigInt();
  mp::BigInt b = base % n_;
  for (std::size_t i = exponent.bit_length(); i-- > 0;) {
    acc = mul(acc, acc);
    if (exponent.bit(i)) acc = mul(acc, b);
  }
  return acc;
}

}  // namespace bulkgcd::rsa
