// Montgomery modular arithmetic (CIOS — coarsely integrated operand
// scanning) over 32-bit limbs.
//
// The divmod-based modmul in rsa/modmath.hpp costs a full Knuth-D division
// per multiplication; Montgomery replaces that with two limb-product sweeps
// and a conditional subtraction, which is what makes the native prime
// generator and RSA encrypt/decrypt usable at 1024-bit+ sizes. Miller-Rabin
// (rsa/prime.cpp) routes its exponentiations through here.
//
// Usage:
//   MontgomeryContext ctx(n);           // n odd, > 1
//   BigInt c = ctx.pow(base, exponent); // base^exponent mod n
#pragma once

#include <cstdint>
#include <vector>

#include "mp/bigint.hpp"

namespace bulkgcd::rsa {

class MontgomeryContext {
 public:
  /// Precompute for an odd modulus > 1. Throws std::invalid_argument
  /// otherwise.
  explicit MontgomeryContext(mp::BigInt modulus);

  const mp::BigInt& modulus() const noexcept { return n_; }

  /// a·R mod n (into the Montgomery domain). Requires a < n.
  mp::BigInt to_mont(const mp::BigInt& a) const;
  /// a·R⁻¹ mod n (out of the Montgomery domain).
  mp::BigInt from_mont(const mp::BigInt& a) const;

  /// Montgomery product: a·b·R⁻¹ mod n (both operands in the domain).
  mp::BigInt mul(const mp::BigInt& a, const mp::BigInt& b) const;

  /// base^exponent mod n — plain-domain input and output.
  /// Left-to-right square-and-multiply over Montgomery products.
  mp::BigInt pow(const mp::BigInt& base, const mp::BigInt& exponent) const;

 private:
  /// Core CIOS reduction: result = a·b·R⁻¹ mod n on raw limb vectors, where
  /// a, b are padded to limbs_ words.
  void mont_mul(const std::uint32_t* a, const std::uint32_t* b,
                std::uint32_t* out) const;

  mp::BigInt n_;
  std::size_t limbs_ = 0;     ///< L: number of 32-bit limbs of n
  std::uint32_t n0_inv_ = 0;  ///< −n⁻¹ mod 2³²
  mp::BigInt r2_;             ///< R² mod n with R = 2^(32·L)
  mp::BigInt one_mont_;       ///< R mod n (the domain's 1)
};

}  // namespace bulkgcd::rsa
