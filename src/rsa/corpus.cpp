#include "rsa/corpus.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/thread_pool.hpp"
#include "rsa/prime.hpp"

#if defined(BULKGCD_HAVE_GMP)
#include <gmp.h>
#endif

namespace bulkgcd::rsa {

bool gmp_backend_available() noexcept {
#if defined(BULKGCD_HAVE_GMP)
  return true;
#else
  return false;
#endif
}

namespace {

#if defined(BULKGCD_HAVE_GMP)
/// Convert an mpz to our BigInt via 32-bit word export.
mp::BigInt mpz_to_bigint(const mpz_t value) {
  const std::size_t words = (mpz_sizeinbase(value, 2) + 31) / 32;
  std::vector<std::uint32_t> limbs(words, 0);
  std::size_t written = 0;
  mpz_export(limbs.data(), &written, -1 /*LSW first*/, sizeof(std::uint32_t),
             0 /*native endian*/, 0, value);
  limbs.resize(written);
  return mp::BigInt::from_limbs(limbs);
}

mp::BigInt gmp_random_prime(Xoshiro256& rng, std::size_t bits) {
  // Random starting point with the top two bits set, then next_prime. The
  // tiny next-prime bias is irrelevant for iteration-count statistics.
  const mp::BigInt start = random_bits(rng, bits);
  mpz_t n;
  mpz_init2(n, bits + 64);
  mpz_import(n, start.limbs().size(), -1, sizeof(std::uint32_t), 0, 0,
             start.limbs().data());
  mpz_setbit(n, bits - 1);
  mpz_setbit(n, bits - 2);
  mpz_nextprime(n, n);
  while (mpz_sizeinbase(n, 2) > bits) {  // ran past 2^bits: wrap and retry
    mpz_clrbit(n, bits);
    mpz_setbit(n, bits - 1);
    mpz_setbit(n, bits - 2);
    mpz_nextprime(n, n);
  }
  mp::BigInt out = mpz_to_bigint(n);
  mpz_clear(n);
  return out;
}
#endif

CorpusBackend resolve(CorpusBackend backend, std::size_t modulus_bits) {
  if (backend != CorpusBackend::kAuto) return backend;
  if (modulus_bits > 1024 && gmp_backend_available()) return CorpusBackend::kGmp;
  return CorpusBackend::kNative;
}

}  // namespace

std::vector<mp::BigInt> generate_primes(Xoshiro256& rng, std::size_t count,
                                        std::size_t bits, CorpusBackend backend) {
  backend = resolve(backend, bits * 2);
  if (backend == CorpusBackend::kGmp && !gmp_backend_available()) {
    throw std::runtime_error("generate_primes: GMP backend not compiled in");
  }
  std::vector<mp::BigInt> primes(count);
  // Parallel generation: each chunk gets an independent split of the RNG.
  std::vector<Xoshiro256> streams;
  streams.reserve(count);
  for (std::size_t i = 0; i < count; ++i) streams.push_back(rng.split());
  global_pool().parallel_for(0, count, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
#if defined(BULKGCD_HAVE_GMP)
      if (backend == CorpusBackend::kGmp) {
        primes[i] = gmp_random_prime(streams[i], bits);
        continue;
      }
#endif
      primes[i] = random_prime(streams[i], bits);
    }
  });
  return primes;
}

WeakCorpus generate_corpus(const CorpusSpec& spec) {
  if (spec.count < 2 || spec.modulus_bits % 2 != 0) {
    throw std::invalid_argument("generate_corpus: need >= 2 moduli, even bits");
  }
  if (2 * spec.weak_pairs > spec.count) {
    throw std::invalid_argument("generate_corpus: too many weak pairs");
  }
  const std::size_t prime_bits = spec.modulus_bits / 2;
  Xoshiro256 rng(spec.seed);

  // Primes: each weak pair consumes 3 (shared + 2 cofactors); every other
  // modulus consumes 2.
  const std::size_t strong = spec.count - 2 * spec.weak_pairs;
  const std::size_t total_primes = 3 * spec.weak_pairs + 2 * strong;
  std::vector<mp::BigInt> primes =
      generate_primes(rng, total_primes, prime_bits, spec.backend);
  // Shared primes must be pairwise distinct from everything else or the
  // ground truth would under-report; dedupe defensively (collisions are
  // astronomically unlikely, but the invariant matters for tests).
  std::sort(primes.begin(), primes.end());
  primes.erase(std::unique(primes.begin(), primes.end()), primes.end());
  while (primes.size() < total_primes) {
    primes.push_back(random_prime(rng, prime_bits));
  }
  // Random order after the sort.
  for (std::size_t i = primes.size(); i-- > 1;) {
    std::swap(primes[i], primes[rng.below(i + 1)]);
  }

  WeakCorpus corpus;
  corpus.modulus_bits = spec.modulus_bits;
  corpus.moduli.resize(spec.count);
  std::size_t next_prime = 0;

  std::vector<mp::BigInt> shared(spec.weak_pairs);
  global_pool().parallel_for(0, spec.count, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      if (i < 2 * spec.weak_pairs) {
        const std::size_t pair = i / 2;
        const mp::BigInt& shared_prime = primes[3 * pair];
        const mp::BigInt& cofactor = primes[3 * pair + 1 + (i % 2)];
        corpus.moduli[i] = shared_prime * cofactor;
      } else {
        const std::size_t base =
            3 * spec.weak_pairs + 2 * (i - 2 * spec.weak_pairs);
        corpus.moduli[i] = primes[base] * primes[base + 1];
      }
    }
  });
  next_prime = 3 * spec.weak_pairs + 2 * strong;
  (void)next_prime;
  for (std::size_t pair = 0; pair < spec.weak_pairs; ++pair) {
    shared[pair] = primes[3 * pair];
  }

  // Shuffle moduli and track where the weak pairs land.
  std::vector<std::size_t> position(spec.count);
  for (std::size_t i = 0; i < spec.count; ++i) position[i] = i;
  for (std::size_t i = spec.count; i-- > 1;) {
    const std::size_t j = rng.below(i + 1);
    std::swap(corpus.moduli[i], corpus.moduli[j]);
    std::swap(position[i], position[j]);
  }
  // position[k] = original index of the modulus now at slot k; invert it.
  std::vector<std::size_t> slot_of(spec.count);
  for (std::size_t k = 0; k < spec.count; ++k) slot_of[position[k]] = k;

  corpus.weak.reserve(spec.weak_pairs);
  for (std::size_t pair = 0; pair < spec.weak_pairs; ++pair) {
    std::size_t a = slot_of[2 * pair];
    std::size_t b = slot_of[2 * pair + 1];
    if (a > b) std::swap(a, b);
    corpus.weak.push_back({a, b, shared[pair]});
  }
  std::sort(corpus.weak.begin(), corpus.weak.end(),
            [](const auto& lhs, const auto& rhs) {
              return std::pair(lhs.first, lhs.second) <
                     std::pair(rhs.first, rhs.second);
            });
  return corpus;
}

double expected_weak_pairs(const LowEntropySpec& spec) {
  // Each modulus is an unordered pair of distinct pool indices; two moduli
  // are weak iff their index pairs intersect:
  //   P = 1 − C(N−2,2)/C(N,2) = 1 − (N−2)(N−3) / (N(N−1)).
  const double n = double(spec.pool_size);
  if (n < 4) return double(spec.count) * double(spec.count - 1) / 2.0;
  const double p_share = 1.0 - ((n - 2) * (n - 3)) / (n * (n - 1));
  return double(spec.count) * double(spec.count - 1) / 2.0 * p_share;
}

LowEntropyCorpus generate_low_entropy_corpus(const LowEntropySpec& spec) {
  if (spec.count < 1 || spec.modulus_bits % 2 != 0 || spec.pool_size < 2) {
    throw std::invalid_argument("generate_low_entropy_corpus: bad spec");
  }
  Xoshiro256 rng(spec.seed);
  const std::size_t prime_bits = spec.modulus_bits / 2;
  std::vector<mp::BigInt> pool =
      generate_primes(rng, spec.pool_size, prime_bits, spec.backend);

  LowEntropyCorpus corpus;
  corpus.moduli.reserve(spec.count);
  std::vector<std::pair<std::size_t, std::size_t>> draws(spec.count);
  std::vector<bool> used(spec.pool_size, false);
  for (std::size_t i = 0; i < spec.count; ++i) {
    const std::size_t a = rng.below(spec.pool_size);
    std::size_t b = rng.below(spec.pool_size);
    while (b == a) b = rng.below(spec.pool_size);  // devices reject p == q
    draws[i] = {std::min(a, b), std::max(a, b)};
    used[a] = used[b] = true;
    corpus.moduli.push_back(pool[a] * pool[b]);
  }
  for (const bool u : used) corpus.distinct_primes_used += u;

  for (std::size_t i = 0; i < spec.count; ++i) {
    for (std::size_t j = i + 1; j < spec.count; ++j) {
      const auto& [a1, b1] = draws[i];
      const auto& [a2, b2] = draws[j];
      if (a1 == a2 || a1 == b2 || b1 == a2 || b1 == b2) {
        corpus.weak_pairs.emplace_back(i, j);
      }
    }
  }
  return corpus;
}

}  // namespace bulkgcd::rsa
