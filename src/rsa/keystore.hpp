// Key material file I/O — the glue a practitioner needs around the attack:
// persist harvested moduli / generated corpora / broken keys as plain text
// and load them back. Format is deliberately simple (inspectable with any
// editor, diff-friendly):
//
//   # comments and blank lines ignored
//   modulus <hex>                       — one public modulus
//   keypair <n-hex> <e-hex> <d-hex> <p-hex> <q-hex>
//
// Files may mix both record kinds; loaders filter by what they need.
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <vector>

#include "rsa/rsa.hpp"

namespace bulkgcd::obs {
class MetricsRegistry;
}

namespace bulkgcd::rsa {

/// Order-sensitive 64-bit FNV-1a digest of a moduli list (limb data plus
/// per-modulus length plus count). The resumable scan driver stores it in
/// checkpoint headers to bind a checkpoint to the exact corpus it was taken
/// against — resuming against a reordered, grown, or edited corpus would
/// silently mislabel hit indices otherwise.
std::uint64_t corpus_digest(std::span<const mp::BigInt> moduli) noexcept;

/// 64-bit FNV-1a fingerprint of ONE modulus, hashed over the canonical
/// little-endian byte encoding of the value — exactly ⌈bit_length/8⌉ bytes,
/// no per-limb zero padding — so the same value fingerprints identically
/// whether the BigInt carries u16, u32, or u64 limbs (BULKGCD_LIMB32 builds
/// agree). This is the shared dedup fingerprint: the keystore loader's
/// duplicate detection, the intake service's dedup element, and the arrival
/// journal's replayed dedup set all use it, so "duplicate" means the same
/// thing in every layer. Not a cryptographic hash — callers that must never
/// drop a key on a collision resolve it with an exact value compare
/// (svc::IntakeService does).
template <mp::LimbType Limb>
std::uint64_t modulus_fingerprint(const mp::BigIntT<Limb>& n) noexcept {
  constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  constexpr std::size_t kLimbBytes = std::size_t(mp::limb_bits<Limb>) / 8;
  const auto limbs = n.limbs();
  const std::size_t bytes = (n.bit_length() + 7) / 8;
  std::uint64_t h = kOffset;
  for (std::size_t b = 0; b < bytes; ++b) {
    const std::uint64_t limb = std::uint64_t(limbs[b / kLimbBytes]);
    h = (h ^ ((limb >> (8 * (b % kLimbBytes))) & 0xff)) * kPrime;
  }
  return h;
}

/// Write moduli as `modulus <hex>` lines. Throws std::runtime_error on I/O
/// failure.
void save_moduli(const std::filesystem::path& path,
                 const std::vector<mp::BigInt>& moduli,
                 const std::string& comment = {});

/// Read every `modulus` record (and the n of every `keypair` record).
/// Throws std::runtime_error on I/O failure or malformed records.
/// With a metrics registry (docs/OBSERVABILITY.md) the load feeds
/// keystore_records_total / keystore_comment_lines_total /
/// keystore_duplicate_moduli_total, and keystore_parse_errors_total is
/// incremented before the malformed-record throw — a crashed load still
/// leaves the error visible in the last telemetry snapshot.
std::vector<mp::BigInt> load_moduli(const std::filesystem::path& path,
                                    obs::MetricsRegistry* metrics = nullptr);

/// Write full key pairs as `keypair` records.
void save_keypairs(const std::filesystem::path& path,
                   const std::vector<KeyPair>& keys,
                   const std::string& comment = {});

/// Read every `keypair` record. Feeds the same keystore_* metrics as
/// load_moduli when a registry is supplied.
std::vector<KeyPair> load_keypairs(const std::filesystem::path& path,
                                   obs::MetricsRegistry* metrics = nullptr);

}  // namespace bulkgcd::rsa
