// Key material file I/O — the glue a practitioner needs around the attack:
// persist harvested moduli / generated corpora / broken keys as plain text
// and load them back. Format is deliberately simple (inspectable with any
// editor, diff-friendly):
//
//   # comments and blank lines ignored
//   modulus <hex>                       — one public modulus
//   keypair <n-hex> <e-hex> <d-hex> <p-hex> <q-hex>
//
// Files may mix both record kinds; loaders filter by what they need.
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <vector>

#include "rsa/rsa.hpp"

namespace bulkgcd::obs {
class MetricsRegistry;
}

namespace bulkgcd::rsa {

/// Order-sensitive 64-bit FNV-1a digest of a moduli list (limb data plus
/// per-modulus length plus count). The resumable scan driver stores it in
/// checkpoint headers to bind a checkpoint to the exact corpus it was taken
/// against — resuming against a reordered, grown, or edited corpus would
/// silently mislabel hit indices otherwise.
std::uint64_t corpus_digest(std::span<const mp::BigInt> moduli) noexcept;

/// Write moduli as `modulus <hex>` lines. Throws std::runtime_error on I/O
/// failure.
void save_moduli(const std::filesystem::path& path,
                 const std::vector<mp::BigInt>& moduli,
                 const std::string& comment = {});

/// Read every `modulus` record (and the n of every `keypair` record).
/// Throws std::runtime_error on I/O failure or malformed records.
/// With a metrics registry (docs/OBSERVABILITY.md) the load feeds
/// keystore_records_total / keystore_comment_lines_total /
/// keystore_duplicate_moduli_total, and keystore_parse_errors_total is
/// incremented before the malformed-record throw — a crashed load still
/// leaves the error visible in the last telemetry snapshot.
std::vector<mp::BigInt> load_moduli(const std::filesystem::path& path,
                                    obs::MetricsRegistry* metrics = nullptr);

/// Write full key pairs as `keypair` records.
void save_keypairs(const std::filesystem::path& path,
                   const std::vector<KeyPair>& keys,
                   const std::string& comment = {});

/// Read every `keypair` record. Feeds the same keystore_* metrics as
/// load_moduli when a registry is supplied.
std::vector<KeyPair> load_keypairs(const std::filesystem::path& path,
                                   obs::MetricsRegistry* metrics = nullptr);

}  // namespace bulkgcd::rsa
