// Modular arithmetic over BigIntT: modular multiplication/exponentiation and
// the extended-Euclid modular inverse. These back Miller-Rabin, RSA
// encrypt/decrypt and private-key recovery (d = e^{-1} mod (p-1)(q-1), as in
// the paper's Section I). Header-only so all limb widths are usable in tests.
#pragma once

#include <stdexcept>
#include <utility>

#include "mp/bigint.hpp"

namespace bulkgcd::rsa {

template <mp::LimbType Limb>
mp::BigIntT<Limb> modmul(const mp::BigIntT<Limb>& a, const mp::BigIntT<Limb>& b,
                         const mp::BigIntT<Limb>& m) {
  return (a * b) % m;
}

/// base^exp mod m by left-to-right square-and-multiply.
template <mp::LimbType Limb>
mp::BigIntT<Limb> modpow(const mp::BigIntT<Limb>& base,
                         const mp::BigIntT<Limb>& exp,
                         const mp::BigIntT<Limb>& m) {
  using Big = mp::BigIntT<Limb>;
  if (m.is_zero()) throw std::domain_error("modpow: zero modulus");
  Big result(1);
  result = result % m;  // handles m == 1
  Big b = base % m;
  const std::size_t bits = exp.bit_length();
  for (std::size_t i = bits; i-- > 0;) {
    result = modmul(result, result, m);
    if (exp.bit(i)) result = modmul(result, b, m);
  }
  return result;
}

/// Sign-and-magnitude integer for the extended-Euclid coefficient track.
template <mp::LimbType Limb>
struct Signed {
  mp::BigIntT<Limb> mag;
  bool neg = false;

  /// this - q * other (signed).
  Signed sub_mul(const mp::BigIntT<Limb>& q, const Signed& other) const {
    Signed prod{other.mag * q, other.neg};
    if (neg == prod.neg) {  // same sign: plain magnitude subtraction
      if (mag >= prod.mag) return {mag - prod.mag, neg};
      return {prod.mag - mag, !neg};
    }
    return {mag + prod.mag, neg};  // opposite signs: magnitudes add
  }
};

/// Multiplicative inverse of a modulo m (extended Euclid). Throws
/// std::domain_error when gcd(a, m) != 1.
template <mp::LimbType Limb>
mp::BigIntT<Limb> modinv(const mp::BigIntT<Limb>& a, const mp::BigIntT<Limb>& m) {
  using Big = mp::BigIntT<Limb>;
  if (m <= Big(1)) throw std::domain_error("modinv: modulus must be > 1");
  Big r0 = m, r1 = a % m;
  Signed<Limb> t0{Big(0), false}, t1{Big(1), false};
  while (!r1.is_zero()) {
    auto [q, r2] = Big::divmod(r0, r1);
    Signed<Limb> t2 = t0.sub_mul(q, t1);
    r0 = std::move(r1);
    r1 = std::move(r2);
    t0 = std::move(t1);
    t1 = std::move(t2);
  }
  if (r0 != Big(1)) throw std::domain_error("modinv: inputs are not coprime");
  if (t0.neg) return m - (t0.mag % m);
  return t0.mag % m;
}

/// Multiplicative inverse of a modulo an ODD m by the binary extended
/// Euclidean algorithm (Penk) — no divisions at all, only shifts and
/// subtractions, the division-free companion of the paper's binary GCD
/// family. Throws std::domain_error when m is even, m <= 1, or
/// gcd(a, m) != 1. Cross-validated against the division-based modinv in
/// tests/rsa_test.cpp.
template <mp::LimbType Limb>
mp::BigIntT<Limb> modinv_odd_binary(const mp::BigIntT<Limb>& a,
                                    const mp::BigIntT<Limb>& m) {
  using Big = mp::BigIntT<Limb>;
  if (m <= Big(1) || m.is_even()) {
    throw std::domain_error("modinv_odd_binary: modulus must be odd and > 1");
  }
  Big u = a % m;
  if (u.is_zero()) throw std::domain_error("modinv_odd_binary: not coprime");
  Big v = m;
  Big x1(1), x2;  // u·? ≡ x1·a, v·? ≡ x2·a (mod m) invariants

  const auto halve_mod = [&m](Big& x) {
    if (x.is_odd()) x += m;  // make even without changing x mod m
    x >>= 1;
  };

  while (u != Big(1) && v != Big(1)) {
    while (u.is_even()) {
      u >>= 1;
      halve_mod(x1);
    }
    while (v.is_even()) {
      v >>= 1;
      halve_mod(x2);
    }
    if (u >= v) {
      u -= v;
      x1 = x1 >= x2 ? x1 - x2 : x1 + m - x2;
    } else {
      v -= u;
      x2 = x2 >= x1 ? x2 - x1 : x2 + m - x1;
    }
    if (u.is_zero() || v.is_zero()) {
      throw std::domain_error("modinv_odd_binary: inputs are not coprime");
    }
  }
  return (u == Big(1) ? x1 : x2) % m;
}

}  // namespace bulkgcd::rsa
