#include "rsa/rsa.hpp"

#include <stdexcept>
#include <string>

#include "rsa/modmath.hpp"
#include "rsa/montgomery.hpp"
#include "rsa/prime.hpp"

namespace bulkgcd::rsa {

KeyPair keypair_from_primes(const mp::BigInt& p, const mp::BigInt& q,
                            std::uint64_t public_exponent) {
  KeyPair key;
  key.p = p;
  key.q = q;
  key.n = p * q;
  key.e = mp::BigInt(public_exponent);
  const mp::BigInt one(1);
  const mp::BigInt phi = (p - one) * (q - one);
  key.d = modinv(key.e, phi);
  return key;
}

KeyPair generate_keypair(Xoshiro256& rng, std::size_t modulus_bits,
                         std::uint64_t public_exponent) {
  if (modulus_bits < 16 || modulus_bits % 2 != 0) {
    throw std::invalid_argument("generate_keypair: modulus_bits must be even and >= 16");
  }
  const std::size_t prime_bits = modulus_bits / 2;
  const mp::BigInt one(1);
  const mp::BigInt e(public_exponent);
  while (true) {
    const mp::BigInt p = random_prime(rng, prime_bits);
    mp::BigInt q = random_prime(rng, prime_bits);
    while (q == p) q = random_prime(rng, prime_bits);
    // e must be coprime to (p-1)(q-1); with e = 65537 (prime) this only
    // fails when e divides p-1 or q-1 — just redraw.
    const mp::BigInt phi = (p - one) * (q - one);
    if (phi % e == mp::BigInt()) continue;
    return keypair_from_primes(p, q, public_exponent);
  }
}

mp::BigInt encrypt(const mp::BigInt& message, const mp::BigInt& n,
                   const mp::BigInt& e) {
  if (message >= n) throw std::invalid_argument("encrypt: message >= modulus");
  // RSA moduli are odd: Montgomery exponentiation applies.
  return MontgomeryContext(n).pow(message, e);
}

mp::BigInt decrypt(const mp::BigInt& cipher, const mp::BigInt& n,
                   const mp::BigInt& d) {
  return MontgomeryContext(n).pow(cipher, d);
}

mp::BigInt decrypt_crt(const mp::BigInt& cipher, const KeyPair& key) {
  const mp::BigInt one(1);
  if (key.p.is_zero() || key.q.is_zero() || key.p * key.q != key.n) {
    throw std::invalid_argument("decrypt_crt: key lacks valid factors");
  }
  // dp = d mod (p-1), dq = d mod (q-1), qinv = q^{-1} mod p
  const mp::BigInt dp = key.d % (key.p - one);
  const mp::BigInt dq = key.d % (key.q - one);
  const mp::BigInt m1 = MontgomeryContext(key.p).pow(cipher % key.p, dp);
  const mp::BigInt m2 = MontgomeryContext(key.q).pow(cipher % key.q, dq);
  const mp::BigInt qinv = modinv(key.q, key.p);
  // Garner: m = m2 + q * ((m1 - m2) * qinv mod p)
  const mp::BigInt diff = m1 >= m2 ? (m1 - m2) : (key.p - ((m2 - m1) % key.p));
  const mp::BigInt h = (diff * qinv) % key.p;
  return m2 + key.q * h;
}

KeyPair recover_private_key(const mp::BigInt& n, const mp::BigInt& e,
                            const mp::BigInt& factor) {
  auto [q, rem] = mp::BigInt::divmod(n, factor);
  if (!rem.is_zero() || factor <= mp::BigInt(1) || q <= mp::BigInt(1)) {
    throw std::invalid_argument("recover_private_key: factor does not split n");
  }
  KeyPair key;
  key.n = n;
  key.e = e;
  key.p = factor;
  key.q = q;
  const mp::BigInt one(1);
  const mp::BigInt phi = (key.p - one) * (key.q - one);
  key.d = modinv(e, phi);
  return key;
}

mp::BigInt encode_message(std::string_view text) {
  mp::BigInt out;
  for (const char c : text) {
    out <<= 8;
    out += mp::BigInt(std::uint64_t(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string decode_message(const mp::BigInt& value) {
  std::string out;
  mp::BigInt v = value;
  const mp::BigInt base(256);
  while (!v.is_zero()) {
    auto [q, r] = mp::BigInt::divmod(v, base);
    out.push_back(char(static_cast<unsigned char>(r.to_u64())));
    v = std::move(q);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace bulkgcd::rsa
