#include "rsa/montgomery.hpp"

#include <cassert>
#include <stdexcept>

#include "mp/span_ops.hpp"

namespace bulkgcd::rsa {

namespace {

/// −n⁻¹ mod 2³² for odd n0, by Newton iteration (5 steps double the
/// precision from the 1-bit seed past 32 bits).
std::uint32_t neg_inverse_u32(std::uint32_t n0) {
  assert(n0 & 1u);
  std::uint32_t inv = 1;
  for (int i = 0; i < 5; ++i) {
    inv *= 2u - n0 * inv;
  }
  return ~inv + 1u;  // −inv mod 2³²
}

}  // namespace

MontgomeryContext::MontgomeryContext(mp::BigInt modulus) : n_(std::move(modulus)) {
  if (n_.is_even() || n_ <= mp::BigInt(1)) {
    throw std::invalid_argument("MontgomeryContext: modulus must be odd and > 1");
  }
  limbs_ = n_.size();
  n0_inv_ = neg_inverse_u32(n_.limb(0));
  // R² mod n with R = 2^(32·L): one big shift and one division at setup.
  r2_ = (mp::BigInt(1) << (64 * limbs_)) % n_;
  one_mont_ = (mp::BigInt(1) << (32 * limbs_)) % n_;
}

void MontgomeryContext::mont_mul(const std::uint32_t* a, const std::uint32_t* b,
                                 std::uint32_t* out) const {
  const std::uint32_t* n = n_.data();
  const std::size_t L = limbs_;
  // t has L + 2 words: the running sum never exceeds 2·n·2³² during CIOS.
  std::vector<std::uint64_t> t(L + 2, 0);  // each entry kept < 2³² between rounds

  for (std::size_t i = 0; i < L; ++i) {
    // t += a[i] * b
    std::uint64_t carry = 0;
    const std::uint64_t ai = a[i];
    for (std::size_t j = 0; j < L; ++j) {
      const std::uint64_t sum = t[j] + ai * b[j] + carry;
      t[j] = std::uint32_t(sum);
      carry = sum >> 32;
    }
    std::uint64_t sum = t[L] + carry;
    t[L] = std::uint32_t(sum);
    t[L + 1] += sum >> 32;

    // m = t[0]·(−n⁻¹) mod 2³²; t += m·n, making t ≡ 0 mod 2³²
    const std::uint64_t m = std::uint32_t(t[0] * n0_inv_);
    carry = 0;
    for (std::size_t j = 0; j < L; ++j) {
      const std::uint64_t s2 = t[j] + m * n[j] + carry;
      if (j == 0) assert(std::uint32_t(s2) == 0);
      t[j] = std::uint32_t(s2);
      carry = s2 >> 32;
    }
    sum = t[L] + carry;
    t[L] = std::uint32_t(sum);
    t[L + 1] += sum >> 32;

    // t >>= 32 (drop the zero word)
    for (std::size_t j = 0; j < L + 1; ++j) t[j] = t[j + 1];
    t[L + 1] = 0;
  }

  // t < 2n at this point; one conditional subtraction.
  std::vector<std::uint32_t> result(L + 1);
  for (std::size_t j = 0; j < L + 1; ++j) result[j] = std::uint32_t(t[j]);
  const std::size_t rsize = mp::normalized_size(result.data(), L + 1);
  if (mp::compare(result.data(), rsize, n, L) >= 0) {
    mp::sub(result.data(), result.data(), rsize, n, L);
  }
  std::copy(result.begin(), result.begin() + std::ptrdiff_t(L), out);
}

mp::BigInt MontgomeryContext::mul(const mp::BigInt& a, const mp::BigInt& b) const {
  std::vector<std::uint32_t> pa(limbs_, 0), pb(limbs_, 0), pr(limbs_, 0);
  std::copy(a.limbs().begin(), a.limbs().end(), pa.begin());
  std::copy(b.limbs().begin(), b.limbs().end(), pb.begin());
  mont_mul(pa.data(), pb.data(), pr.data());
  return mp::BigInt::from_limbs(pr);
}

mp::BigInt MontgomeryContext::to_mont(const mp::BigInt& a) const {
  return mul(a, r2_);  // a·R²·R⁻¹ = a·R
}

mp::BigInt MontgomeryContext::from_mont(const mp::BigInt& a) const {
  return mul(a, mp::BigInt(1));  // a·1·R⁻¹
}

mp::BigInt MontgomeryContext::pow(const mp::BigInt& base,
                                  const mp::BigInt& exponent) const {
  const mp::BigInt b = base % n_;
  mp::BigInt acc = one_mont_;  // 1 in the Montgomery domain
  const mp::BigInt bm = to_mont(b);
  for (std::size_t i = exponent.bit_length(); i-- > 0;) {
    acc = mul(acc, acc);
    if (exponent.bit(i)) acc = mul(acc, bm);
  }
  return from_mont(acc);
}

}  // namespace bulkgcd::rsa
