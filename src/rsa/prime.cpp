#include "rsa/prime.hpp"

#include <algorithm>
#include <cassert>

#include "mp/span_ops.hpp"
#include "rsa/modmath.hpp"
#include "rsa/montgomery.hpp"

namespace bulkgcd::rsa {

const std::vector<std::uint32_t>& small_primes() {
  static const std::vector<std::uint32_t> primes = [] {
    constexpr std::uint32_t kLimit = 1u << 16;
    std::vector<bool> composite(kLimit, false);
    std::vector<std::uint32_t> out;
    for (std::uint32_t i = 3; i < kLimit; i += 2) {
      if (composite[i]) continue;
      out.push_back(i);
      for (std::uint64_t j = std::uint64_t(i) * i; j < kLimit; j += 2ull * i) {
        composite[std::size_t(j)] = true;
      }
    }
    return out;
  }();
  return primes;
}

std::uint32_t mod_u32(const mp::BigInt& value, std::uint32_t p) {
  std::uint64_t rem = 0;
  const auto limbs = value.limbs();
  for (std::size_t i = limbs.size(); i-- > 0;) {
    rem = ((rem << 32) | limbs[i]) % p;
  }
  return std::uint32_t(rem);
}

namespace {

/// One Miller-Rabin round with base a (2 <= a <= n-2). Returns false when a
/// witnesses compositeness. All modular work runs through the Montgomery
/// context (n is odd here by construction).
bool miller_rabin_round(const MontgomeryContext& ctx, const mp::BigInt& n_minus_1,
                        const mp::BigInt& d, std::size_t r, const mp::BigInt& a) {
  mp::BigInt x = ctx.pow(a, d);
  const mp::BigInt one(1);
  if (x == one || x == n_minus_1) return true;
  mp::BigInt xm = ctx.to_mont(x);
  for (std::size_t i = 1; i < r; ++i) {
    xm = ctx.mul(xm, xm);
    x = ctx.from_mont(xm);
    if (x == n_minus_1) return true;
    if (x == one) return false;  // nontrivial sqrt of 1 found
  }
  return false;
}

}  // namespace

bool is_probable_prime(const mp::BigInt& n, Xoshiro256& rng, int rounds) {
  const std::uint64_t small = n.to_u64();
  if (n.bit_length() <= 16) {  // exact for tiny n
    if (small < 2) return false;
    if (small == 2) return true;
    if (small % 2 == 0) return false;
    for (std::uint64_t f = 3; f * f <= small; f += 2) {
      if (small % f == 0) return false;
    }
    return true;
  }
  if (n.is_even()) return false;

  for (const std::uint32_t p : small_primes()) {
    if (mod_u32(n, p) == 0) return false;
  }

  // n - 1 = 2^r * d with d odd
  const mp::BigInt n_minus_1 = n - mp::BigInt(1);
  const std::size_t r = n_minus_1.trailing_zero_bits();
  const mp::BigInt d = n_minus_1 >> r;

  const MontgomeryContext ctx(n);
  const std::size_t bits = n.bit_length();
  for (int round = 0; round < rounds; ++round) {
    // Random base in [2, n-2]: draw `bits` random bits and reduce.
    mp::BigInt a = random_bits(rng, bits) % (n - mp::BigInt(3));
    a += mp::BigInt(2);
    if (!miller_rabin_round(ctx, n_minus_1, d, r, a)) return false;
  }
  return true;
}

mp::BigInt random_bits(Xoshiro256& rng, std::size_t bits) {
  if (bits == 0) return mp::BigInt();
  const std::size_t limbs = (bits + 31) / 32;
  std::vector<std::uint32_t> words(limbs);
  for (std::size_t i = 0; i < limbs; i += 2) {
    const std::uint64_t r = rng();
    words[i] = std::uint32_t(r);
    if (i + 1 < limbs) words[i + 1] = std::uint32_t(r >> 32);
  }
  const std::size_t top_bits = bits % 32 == 0 ? 32 : bits % 32;
  if (top_bits < 32) words.back() &= (std::uint32_t(1) << top_bits) - 1;
  words.back() |= std::uint32_t(1) << (top_bits - 1);  // force exact length
  return mp::BigInt::from_limbs(words);
}

mp::BigInt random_prime(Xoshiro256& rng, std::size_t bits, int mr_rounds) {
  assert(bits >= 8 && "prime too small for an RSA factor");
  while (true) {
    mp::BigInt candidate = random_bits(rng, bits);
    // Force the two top bits (RSA convention) and oddness.
    candidate += mp::BigInt(1) << (bits - 2);
    if (candidate.bit_length() > bits) continue;  // carried past the top: redraw
    if (candidate.is_even()) candidate += mp::BigInt(1);
    if (candidate.bit_length() > bits) continue;
    if (is_probable_prime(candidate, rng, mr_rounds)) return candidate;
  }
}

}  // namespace bulkgcd::rsa
