#include "rsa/pem.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace bulkgcd::rsa {

namespace {

// rsaEncryption OID 1.2.840.113549.1.1.1, pre-encoded.
const std::uint8_t kRsaOid[] = {0x06, 0x09, 0x2a, 0x86, 0x48, 0x86,
                                0xf7, 0x0d, 0x01, 0x01, 0x01};

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("pem/der: " + what);
}

// ---- DER writer -----------------------------------------------------------

void write_length(std::vector<std::uint8_t>& out, std::size_t length) {
  if (length < 0x80) {
    out.push_back(std::uint8_t(length));
    return;
  }
  std::vector<std::uint8_t> bytes;
  while (length > 0) {
    bytes.push_back(std::uint8_t(length & 0xFF));
    length >>= 8;
  }
  out.push_back(std::uint8_t(0x80 | bytes.size()));
  out.insert(out.end(), bytes.rbegin(), bytes.rend());
}

void write_tlv(std::vector<std::uint8_t>& out, std::uint8_t tag,
               const std::vector<std::uint8_t>& content) {
  out.push_back(tag);
  write_length(out, content.size());
  out.insert(out.end(), content.begin(), content.end());
}

/// Big-endian magnitude with a leading 0x00 when the high bit is set
/// (INTEGERs are signed in DER).
std::vector<std::uint8_t> integer_content(const mp::BigInt& value) {
  std::vector<std::uint8_t> bytes;
  if (value.is_zero()) return {0x00};
  mp::BigInt v = value;
  while (!v.is_zero()) {
    bytes.push_back(std::uint8_t(v.to_u64() & 0xFF));
    v >>= 8;
  }
  if (bytes.back() & 0x80) bytes.push_back(0x00);
  std::reverse(bytes.begin(), bytes.end());
  return bytes;
}

std::vector<std::uint8_t> encode_rsa_public_key(const PublicKey& key) {
  std::vector<std::uint8_t> body;
  write_tlv(body, 0x02, integer_content(key.n));
  write_tlv(body, 0x02, integer_content(key.e));
  std::vector<std::uint8_t> out;
  write_tlv(out, 0x30, body);
  return out;
}

// ---- DER reader -----------------------------------------------------------

struct Reader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  std::uint8_t byte() {
    if (pos >= size) fail("truncated DER");
    return data[pos++];
  }

  std::size_t length() {
    const std::uint8_t first = byte();
    if ((first & 0x80) == 0) return first;
    const std::size_t count = first & 0x7F;
    if (count == 0 || count > sizeof(std::size_t)) fail("bad DER length");
    std::size_t value = 0;
    for (std::size_t i = 0; i < count; ++i) value = (value << 8) | byte();
    return value;
  }

  /// Expect `tag`; returns a sub-reader over the content.
  Reader tlv(std::uint8_t tag) {
    const std::uint8_t got = byte();
    if (got != tag) {
      fail("expected tag 0x" + std::to_string(tag) + " got 0x" +
           std::to_string(got) + " at offset " + std::to_string(pos - 1));
    }
    const std::size_t len = length();
    if (pos + len > size) fail("TLV overruns buffer");
    Reader sub{data + pos, len};
    pos += len;
    return sub;
  }

  bool done() const { return pos == size; }
};

mp::BigInt read_integer(Reader& reader) {
  Reader content = reader.tlv(0x02);
  if (content.size == 0) fail("empty INTEGER");
  if (content.data[0] & 0x80) fail("negative INTEGER in public key");
  mp::BigInt out;
  for (std::size_t i = 0; i < content.size; ++i) {
    out <<= 8;
    out += mp::BigInt(std::uint64_t(content.data[i]));
  }
  return out;
}

PublicKey decode_rsa_public_key(Reader reader) {
  Reader seq = reader.tlv(0x30);
  PublicKey key;
  key.n = read_integer(seq);
  key.e = read_integer(seq);
  if (!seq.done()) fail("trailing bytes inside RSAPublicKey");
  return key;
}

}  // namespace

// ---- base64 ----------------------------------------------------------------

static const char kB64Alphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::string base64_encode(const std::vector<std::uint8_t>& data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  for (std::size_t i = 0; i < data.size(); i += 3) {
    const std::uint32_t b0 = data[i];
    const std::uint32_t b1 = i + 1 < data.size() ? data[i + 1] : 0;
    const std::uint32_t b2 = i + 2 < data.size() ? data[i + 2] : 0;
    const std::uint32_t triple = (b0 << 16) | (b1 << 8) | b2;
    out.push_back(kB64Alphabet[(triple >> 18) & 0x3F]);
    out.push_back(kB64Alphabet[(triple >> 12) & 0x3F]);
    out.push_back(i + 1 < data.size() ? kB64Alphabet[(triple >> 6) & 0x3F] : '=');
    out.push_back(i + 2 < data.size() ? kB64Alphabet[triple & 0x3F] : '=');
  }
  return out;
}

std::vector<std::uint8_t> base64_decode(std::string_view text) {
  int value_of[256];
  std::fill(std::begin(value_of), std::end(value_of), -1);
  for (int i = 0; i < 64; ++i) {
    value_of[std::uint8_t(kB64Alphabet[i])] = i;
  }
  std::vector<std::uint8_t> out;
  std::uint32_t acc = 0;
  int have_bits = 0;
  int padding = 0;
  for (const char c : text) {
    if (c == ' ' || c == '\n' || c == '\r' || c == '\t') continue;
    if (c == '=') {
      ++padding;
      continue;
    }
    if (padding > 0) fail("base64 data after padding");
    const int v = value_of[std::uint8_t(c)];
    if (v < 0) fail(std::string("bad base64 character '") + c + "'");
    acc = (acc << 6) | std::uint32_t(v);
    have_bits += 6;
    if (have_bits >= 8) {
      have_bits -= 8;
      out.push_back(std::uint8_t(acc >> have_bits));
    }
  }
  if (padding > 2) fail("too much base64 padding");
  return out;
}

// ---- DER public API ---------------------------------------------------------

std::vector<std::uint8_t> der_encode_public_key(const PublicKey& key,
                                                PemKind kind) {
  const std::vector<std::uint8_t> pkcs1 = encode_rsa_public_key(key);
  if (kind == PemKind::kPkcs1) return pkcs1;

  // SubjectPublicKeyInfo: SEQUENCE { SEQUENCE { OID, NULL }, BIT STRING }
  std::vector<std::uint8_t> alg(kRsaOid, kRsaOid + sizeof(kRsaOid));
  alg.push_back(0x05);  // NULL
  alg.push_back(0x00);
  std::vector<std::uint8_t> bitstring;
  bitstring.push_back(0x00);  // zero unused bits
  bitstring.insert(bitstring.end(), pkcs1.begin(), pkcs1.end());

  std::vector<std::uint8_t> body;
  write_tlv(body, 0x30, alg);
  write_tlv(body, 0x03, bitstring);
  std::vector<std::uint8_t> out;
  write_tlv(out, 0x30, body);
  return out;
}

PublicKey der_decode_public_key(const std::vector<std::uint8_t>& der) {
  Reader top{der.data(), der.size()};
  Reader seq = top.tlv(0x30);
  if (!top.done()) fail("trailing bytes after top-level SEQUENCE");
  if (seq.size > 0 && seq.data[0] == 0x30) {
    // SPKI: algorithm SEQUENCE then BIT STRING holding RSAPublicKey.
    Reader alg = seq.tlv(0x30);
    Reader oid = alg.tlv(0x06);
    if (oid.size != sizeof(kRsaOid) - 2 ||
        !std::equal(oid.data, oid.data + oid.size, kRsaOid + 2)) {
      fail("not an rsaEncryption key");
    }
    Reader bits = seq.tlv(0x03);
    if (bits.size < 1 || bits.data[0] != 0x00) fail("bad BIT STRING");
    Reader inner{bits.data + 1, bits.size - 1};
    return decode_rsa_public_key(inner);
  }
  // Bare PKCS#1: the outer SEQUENCE *is* RSAPublicKey.
  Reader whole{der.data(), der.size()};
  return decode_rsa_public_key(whole);
}

// ---- PEM --------------------------------------------------------------------

namespace {

const char* label_of(PemKind kind) {
  return kind == PemKind::kPkcs1 ? "RSA PUBLIC KEY" : "PUBLIC KEY";
}

}  // namespace

std::string pem_encode_public_key(const PublicKey& key, PemKind kind) {
  const std::string body = base64_encode(der_encode_public_key(key, kind));
  std::string out = std::string("-----BEGIN ") + label_of(kind) + "-----\n";
  for (std::size_t i = 0; i < body.size(); i += 64) {
    out += body.substr(i, 64);
    out += '\n';
  }
  out += std::string("-----END ") + label_of(kind) + "-----\n";
  return out;
}

PublicKey pem_decode_public_key(std::string_view pem) {
  const auto keys = pem_decode_bundle(pem);
  if (keys.empty()) fail("no PEM block found");
  if (keys.size() > 1) fail("multiple PEM blocks; use pem_decode_bundle");
  return keys.front();
}

std::vector<PublicKey> pem_decode_bundle(std::string_view text) {
  std::vector<PublicKey> keys;
  std::size_t cursor = 0;
  while (true) {
    const std::size_t begin = text.find("-----BEGIN ", cursor);
    if (begin == std::string_view::npos) break;
    const std::size_t label_end = text.find("-----", begin + 11);
    if (label_end == std::string_view::npos) fail("unterminated BEGIN line");
    const std::string_view label = text.substr(begin + 11, label_end - begin - 11);
    if (label != "RSA PUBLIC KEY" && label != "PUBLIC KEY") {
      fail("unsupported PEM label '" + std::string(label) + "'");
    }
    const std::size_t body_start = label_end + 5;
    const std::string end_marker = "-----END " + std::string(label) + "-----";
    const std::size_t end = text.find(end_marker, body_start);
    if (end == std::string_view::npos) fail("missing END marker");
    const std::vector<std::uint8_t> der =
        base64_decode(text.substr(body_start, end - body_start));
    keys.push_back(der_decode_public_key(der));
    cursor = end + end_marker.size();
  }
  return keys;
}

mp::BigInt hex_decode_modulus(std::string_view text) {
  // Strip the tolerated decorations first so position reports below refer to
  // the digit string a human sees.
  std::string digits;
  digits.reserve(text.size());
  std::size_t start = 0;
  while (start < text.size() &&
         std::isspace(static_cast<unsigned char>(text[start]))) {
    ++start;
  }
  constexpr std::string_view kLabel = "Modulus=";
  if (text.substr(start, kLabel.size()) == kLabel) start += kLabel.size();
  if (start + 1 < text.size() && text[start] == '0' &&
      (text[start + 1] == 'x' || text[start + 1] == 'X')) {
    start += 2;
  }
  for (std::size_t i = start; i < text.size(); ++i) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
                     (c >= 'A' && c <= 'F');
    if (!hex) {
      throw std::runtime_error("hex modulus: non-hex character at offset " +
                               std::to_string(i));
    }
    digits.push_back(c);
  }
  if (digits.empty()) throw std::runtime_error("hex modulus: empty input");
  if (digits.size() % 2 != 0) {
    throw std::runtime_error("hex modulus: odd digit count (" +
                             std::to_string(digits.size()) +
                             "); raw keys are byte strings");
  }
  return mp::BigInt::from_hex(digits);
}

}  // namespace bulkgcd::rsa
