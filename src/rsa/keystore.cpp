#include "rsa/keystore.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "obs/metrics.hpp"

namespace bulkgcd::rsa {

namespace {

/// Loader-side counter handles, all null on the null-registry path.
/// Duplicate detection fingerprints each modulus (rsa::modulus_fingerprint,
/// the canonical-byte FNV-1a shared with the intake dedup element) into a
/// set — the set is only built when a registry is supplied, so
/// un-instrumented loads stay allocation-free.
struct LoaderTelemetry {
  obs::Counter* records = nullptr;
  obs::Counter* comment_lines = nullptr;
  obs::Counter* parse_errors = nullptr;
  obs::Counter* duplicate_moduli = nullptr;
  std::unordered_set<std::uint64_t> seen;

  static LoaderTelemetry resolve(obs::MetricsRegistry* metrics) {
    LoaderTelemetry t;
    if (metrics != nullptr) {
      t.records = metrics->counter("keystore_records_total");
      t.comment_lines = metrics->counter("keystore_comment_lines_total");
      t.parse_errors = metrics->counter("keystore_parse_errors_total");
      t.duplicate_moduli = metrics->counter("keystore_duplicate_moduli_total");
    }
    return t;
  }

  void note_modulus(const mp::BigInt& n) {
    if (records) records->inc();
    if (duplicate_moduli) {
      // The shared canonical-byte fingerprint (keystore.hpp) — the old
      // open-coded mix hardcoded 8 bytes per limb, so the same modulus
      // fingerprinted differently across limb widths and hashed phantom
      // zero bytes on u32 builds.
      if (!seen.insert(modulus_fingerprint(n)).second) duplicate_moduli->inc();
    }
  }
};

std::ofstream open_out(const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("keystore: cannot write " + path.string());
  }
  return out;
}

std::ifstream open_in(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("keystore: cannot read " + path.string());
  }
  return in;
}

void write_comment(std::ofstream& out, const std::string& comment) {
  if (comment.empty()) return;
  std::istringstream lines(comment);
  std::string line;
  while (std::getline(lines, line)) out << "# " << line << "\n";
}

[[noreturn]] void malformed(const std::filesystem::path& path, std::size_t line) {
  throw std::runtime_error("keystore: malformed record at " + path.string() +
                           ":" + std::to_string(line));
}

}  // namespace

std::uint64_t corpus_digest(std::span<const mp::BigInt> moduli) noexcept {
  constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t h = kOffset;
  auto mix_u64 = [&](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h = (h ^ ((v >> (8 * byte)) & 0xff)) * kPrime;
    }
  };
  mix_u64(moduli.size());
  for (const auto& n : moduli) {
    mix_u64(n.size());
    for (const auto limb : n.limbs()) mix_u64(limb);
  }
  return h;
}

void save_moduli(const std::filesystem::path& path,
                 const std::vector<mp::BigInt>& moduli,
                 const std::string& comment) {
  auto out = open_out(path);
  write_comment(out, comment);
  for (const auto& n : moduli) out << "modulus " << n.to_hex() << "\n";
  if (!out) throw std::runtime_error("keystore: write failed: " + path.string());
}

std::vector<mp::BigInt> load_moduli(const std::filesystem::path& path,
                                    obs::MetricsRegistry* metrics) {
  auto in = open_in(path);
  LoaderTelemetry tele = LoaderTelemetry::resolve(metrics);
  // Counted before the throw so a load that dies on a malformed record
  // still shows the error in the last telemetry snapshot.
  auto fail = [&](std::size_t at) {
    if (tele.parse_errors) tele.parse_errors->inc();
    malformed(path, at);
  };
  std::vector<mp::BigInt> moduli;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream fields(line);
    std::string kind;
    if (!(fields >> kind) || kind[0] == '#') {
      if (tele.comment_lines) tele.comment_lines->inc();
      continue;
    }
    std::string hex;
    if (kind == "modulus") {
      if (!(fields >> hex)) fail(line_no);
      moduli.push_back(mp::BigInt::from_hex(hex));
    } else if (kind == "keypair") {
      if (!(fields >> hex)) fail(line_no);
      moduli.push_back(mp::BigInt::from_hex(hex));  // n is the first field
    } else {
      fail(line_no);
    }
    tele.note_modulus(moduli.back());
  }
  return moduli;
}

void save_keypairs(const std::filesystem::path& path,
                   const std::vector<KeyPair>& keys,
                   const std::string& comment) {
  auto out = open_out(path);
  write_comment(out, comment);
  for (const auto& key : keys) {
    out << "keypair " << key.n.to_hex() << " " << key.e.to_hex() << " "
        << key.d.to_hex() << " " << key.p.to_hex() << " " << key.q.to_hex()
        << "\n";
  }
  if (!out) throw std::runtime_error("keystore: write failed: " + path.string());
}

std::vector<KeyPair> load_keypairs(const std::filesystem::path& path,
                                   obs::MetricsRegistry* metrics) {
  auto in = open_in(path);
  LoaderTelemetry tele = LoaderTelemetry::resolve(metrics);
  auto fail = [&](std::size_t at) {
    if (tele.parse_errors) tele.parse_errors->inc();
    malformed(path, at);
  };
  std::vector<KeyPair> keys;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream fields(line);
    std::string kind;
    if (!(fields >> kind) || kind[0] == '#') {
      if (tele.comment_lines) tele.comment_lines->inc();
      continue;
    }
    if (kind == "modulus") continue;  // tolerated in mixed files
    if (kind != "keypair") fail(line_no);
    std::string n, e, d, p, q;
    if (!(fields >> n >> e >> d >> p >> q)) fail(line_no);
    KeyPair key;
    key.n = mp::BigInt::from_hex(n);
    key.e = mp::BigInt::from_hex(e);
    key.d = mp::BigInt::from_hex(d);
    key.p = mp::BigInt::from_hex(p);
    key.q = mp::BigInt::from_hex(q);
    tele.note_modulus(key.n);
    keys.push_back(std::move(key));
  }
  return keys;
}

}  // namespace bulkgcd::rsa
