#include "rsa/keystore.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace bulkgcd::rsa {

namespace {

std::ofstream open_out(const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("keystore: cannot write " + path.string());
  }
  return out;
}

std::ifstream open_in(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("keystore: cannot read " + path.string());
  }
  return in;
}

void write_comment(std::ofstream& out, const std::string& comment) {
  if (comment.empty()) return;
  std::istringstream lines(comment);
  std::string line;
  while (std::getline(lines, line)) out << "# " << line << "\n";
}

[[noreturn]] void malformed(const std::filesystem::path& path, std::size_t line) {
  throw std::runtime_error("keystore: malformed record at " + path.string() +
                           ":" + std::to_string(line));
}

}  // namespace

std::uint64_t corpus_digest(std::span<const mp::BigInt> moduli) noexcept {
  constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t h = kOffset;
  auto mix_u64 = [&](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h = (h ^ ((v >> (8 * byte)) & 0xff)) * kPrime;
    }
  };
  mix_u64(moduli.size());
  for (const auto& n : moduli) {
    mix_u64(n.size());
    for (const auto limb : n.limbs()) mix_u64(limb);
  }
  return h;
}

void save_moduli(const std::filesystem::path& path,
                 const std::vector<mp::BigInt>& moduli,
                 const std::string& comment) {
  auto out = open_out(path);
  write_comment(out, comment);
  for (const auto& n : moduli) out << "modulus " << n.to_hex() << "\n";
  if (!out) throw std::runtime_error("keystore: write failed: " + path.string());
}

std::vector<mp::BigInt> load_moduli(const std::filesystem::path& path) {
  auto in = open_in(path);
  std::vector<mp::BigInt> moduli;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream fields(line);
    std::string kind;
    if (!(fields >> kind) || kind[0] == '#') continue;
    std::string hex;
    if (kind == "modulus") {
      if (!(fields >> hex)) malformed(path, line_no);
      moduli.push_back(mp::BigInt::from_hex(hex));
    } else if (kind == "keypair") {
      if (!(fields >> hex)) malformed(path, line_no);
      moduli.push_back(mp::BigInt::from_hex(hex));  // n is the first field
    } else {
      malformed(path, line_no);
    }
  }
  return moduli;
}

void save_keypairs(const std::filesystem::path& path,
                   const std::vector<KeyPair>& keys,
                   const std::string& comment) {
  auto out = open_out(path);
  write_comment(out, comment);
  for (const auto& key : keys) {
    out << "keypair " << key.n.to_hex() << " " << key.e.to_hex() << " "
        << key.d.to_hex() << " " << key.p.to_hex() << " " << key.q.to_hex()
        << "\n";
  }
  if (!out) throw std::runtime_error("keystore: write failed: " + path.string());
}

std::vector<KeyPair> load_keypairs(const std::filesystem::path& path) {
  auto in = open_in(path);
  std::vector<KeyPair> keys;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream fields(line);
    std::string kind;
    if (!(fields >> kind) || kind[0] == '#') continue;
    if (kind == "modulus") continue;  // tolerated in mixed files
    if (kind != "keypair") malformed(path, line_no);
    std::string n, e, d, p, q;
    if (!(fields >> n >> e >> d >> p >> q)) malformed(path, line_no);
    KeyPair key;
    key.n = mp::BigInt::from_hex(n);
    key.e = mp::BigInt::from_hex(e);
    key.d = mp::BigInt::from_hex(d);
    key.p = mp::BigInt::from_hex(p);
    key.q = mp::BigInt::from_hex(q);
    keys.push_back(std::move(key));
  }
  return keys;
}

}  // namespace bulkgcd::rsa
