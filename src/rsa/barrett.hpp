// Barrett reduction (HAC 14.42) — the other classical division-free modular
// reduction. Unlike Montgomery it needs no domain conversion and works for
// EVEN moduli; its per-multiplication cost is two extra half-size products
// instead of Montgomery's interleaved reduction. Provided as the design
// alternative (ablated in bench_microkernels) and as the reduction for the
// rare even-modulus cases Montgomery cannot serve.
#pragma once

#include "mp/bigint.hpp"

namespace bulkgcd::rsa {

class BarrettContext {
 public:
  /// Precompute µ = ⌊B^{2k} / n⌋ for modulus n > 0 (k = limb count of n,
  /// B = 2³²). Throws std::invalid_argument for n == 0.
  explicit BarrettContext(mp::BigInt modulus);

  const mp::BigInt& modulus() const noexcept { return n_; }

  /// x mod n for 0 <= x < B^{2k} (i.e. any product of two reduced values).
  mp::BigInt reduce(const mp::BigInt& x) const;

  /// (a·b) mod n for a, b < n.
  mp::BigInt mul(const mp::BigInt& a, const mp::BigInt& b) const {
    return reduce(a * b);
  }

  /// base^exponent mod n by square-and-multiply over Barrett products.
  mp::BigInt pow(const mp::BigInt& base, const mp::BigInt& exponent) const;

 private:
  mp::BigInt n_;
  mp::BigInt mu_;       ///< ⌊B^{2k} / n⌋
  std::size_t k_ = 0;   ///< limbs of n
};

}  // namespace bulkgcd::rsa
