// PEM / DER encoding of RSA public keys — the interchange formats a scanner
// meets in the wild. Supports both common shapes:
//
//   PKCS#1  "-----BEGIN RSA PUBLIC KEY-----"
//           RSAPublicKey ::= SEQUENCE { modulus INTEGER, publicExponent INTEGER }
//
//   SPKI    "-----BEGIN PUBLIC KEY-----"
//           SubjectPublicKeyInfo ::= SEQUENCE {
//             SEQUENCE { OID rsaEncryption, NULL },
//             BIT STRING { RSAPublicKey } }
//
// Self-contained base64 + minimal DER reader/writer; no OpenSSL. Decoding is
// strict about the structure it understands and throws std::runtime_error
// with a location on anything else.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mp/bigint.hpp"

namespace bulkgcd::rsa {

struct PublicKey {
  mp::BigInt n;
  mp::BigInt e;
  friend bool operator==(const PublicKey&, const PublicKey&) = default;
};

enum class PemKind {
  kPkcs1,  ///< "RSA PUBLIC KEY" (bare RSAPublicKey)
  kSpki,   ///< "PUBLIC KEY" (SubjectPublicKeyInfo wrapper)
};

// ---- base64 ---------------------------------------------------------------

std::string base64_encode(const std::vector<std::uint8_t>& data);
/// Whitespace is tolerated anywhere; throws std::runtime_error on bad input.
std::vector<std::uint8_t> base64_decode(std::string_view text);

// ---- DER ------------------------------------------------------------------

/// DER bytes of RSAPublicKey / SubjectPublicKeyInfo.
std::vector<std::uint8_t> der_encode_public_key(const PublicKey& key,
                                                PemKind kind = PemKind::kPkcs1);
/// Parses either shape (auto-detected).
PublicKey der_decode_public_key(const std::vector<std::uint8_t>& der);

// ---- PEM ------------------------------------------------------------------

std::string pem_encode_public_key(const PublicKey& key,
                                  PemKind kind = PemKind::kPkcs1);
/// Accepts either armor label; throws std::runtime_error on malformed input.
PublicKey pem_decode_public_key(std::string_view pem);

/// Extract every public key from text that may contain multiple PEM blocks
/// (e.g. a harvested bundle). Unparseable blocks raise; non-PEM text between
/// blocks is ignored.
std::vector<PublicKey> pem_decode_bundle(std::string_view text);

// ---- raw hex --------------------------------------------------------------

/// Parse a raw-hex modulus record — the third wire format a harvester meets
/// (scan dumps, certificate-transparency exports, `openssl -modulus` output).
/// Tolerates surrounding/internal whitespace, an optional `0x`/`0X` prefix,
/// and an optional `Modulus=` label; strict about everything else: empty
/// input, an odd digit count (raw keys are byte strings), or a non-hex
/// character throw std::runtime_error with a position. Leading zero bytes
/// are accepted (DER-style padding) and normalized away by BigInt.
mp::BigInt hex_decode_modulus(std::string_view text);

}  // namespace bulkgcd::rsa
