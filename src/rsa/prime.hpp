// Prime generation: small-prime sieve, Miller-Rabin, and random prime search.
// This is the repo's substitute for the paper's OpenSSL modulus generation
// (see DESIGN.md, substitutions): uniformly random primes of b bits with the
// top two bits set, so a product of two b-bit primes always has exactly 2b
// bits, matching OpenSSL's RSA key shape.
#pragma once

#include <cstdint>
#include <vector>

#include "core/rng.hpp"
#include "mp/bigint.hpp"

namespace bulkgcd::rsa {

/// Odd primes below 2^16 (computed once, ~6540 entries), used for trial
/// division before Miller-Rabin.
const std::vector<std::uint32_t>& small_primes();

/// value mod p for a single machine-word p.
std::uint32_t mod_u32(const mp::BigInt& value, std::uint32_t p);

/// Miller-Rabin probabilistic primality test with `rounds` random bases.
/// Deterministic small cases (n < 2^16) are decided exactly.
bool is_probable_prime(const mp::BigInt& n, bulkgcd::Xoshiro256& rng,
                       int rounds = 24);

/// Uniformly random integer with exactly `bits` bits (top bit set).
mp::BigInt random_bits(bulkgcd::Xoshiro256& rng, std::size_t bits);

/// Random prime with exactly `bits` bits and the top TWO bits set (so that
/// products of two such primes have exactly 2*bits bits). Odd by construction.
mp::BigInt random_prime(bulkgcd::Xoshiro256& rng, std::size_t bits,
                        int mr_rounds = 24);

}  // namespace bulkgcd::rsa
