#include "batchgcd/batchgcd.hpp"

#include <stdexcept>

#include "core/thread_pool.hpp"
#include "core/timer.hpp"
#include "gcd/algorithms.hpp"

namespace bulkgcd::batchgcd {

ProductTree build_product_tree(std::span<const mp::BigInt> moduli) {
  if (moduli.empty()) throw std::invalid_argument("product tree: empty input");
  ProductTree tree;
  tree.emplace_back(moduli.begin(), moduli.end());
  while (tree.back().size() > 1) {
    const auto& prev = tree.back();
    std::vector<mp::BigInt> next((prev.size() + 1) / 2);
    global_pool().parallel_for(0, next.size(), [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        if (2 * i + 1 < prev.size()) {
          next[i] = prev[2 * i] * prev[2 * i + 1];
        } else {
          next[i] = prev[2 * i];  // odd element promoted unchanged
        }
      }
    });
    tree.push_back(std::move(next));
  }
  return tree;
}

ProductTree square_product_tree(const ProductTree& tree) {
  if (tree.empty()) throw std::invalid_argument("square tree: empty input");
  // Root level omitted: the descent starts AT the root (root mod root² =
  // root) and only ever reduces modulo the squares of the levels below it.
  ProductTree squares(tree.size() - 1);
  for (std::size_t level = 0; level + 1 < tree.size(); ++level) {
    const auto& nodes = tree[level];
    squares[level].resize(nodes.size());
    global_pool().parallel_for(0, nodes.size(), [&](std::size_t lo,
                                                    std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        if (level > 0 && 2 * i + 1 >= tree[level - 1].size()) {
          // Promoted odd node: same value as its single child, so its
          // square is a copy of the child's — no repeated full-width
          // multiplication as the value rides up the tree.
          squares[level][i] = squares[level - 1][2 * i];
        } else {
          squares[level][i] = nodes[i] * nodes[i];
        }
      }
    });
  }
  return squares;
}

std::vector<mp::BigInt> remainder_tree_mod_squares(const ProductTree& tree,
                                                   const ProductTree& squares) {
  if (squares.size() + 1 < tree.size()) {
    throw std::invalid_argument("remainder tree: squares/tree shape mismatch");
  }
  // Walk from the root down; at each node reduce the parent's remainder
  // modulo the node value squared (precomputed — each distinct node value
  // was squared exactly once by square_product_tree).
  std::vector<mp::BigInt> current(1, tree.back()[0]);  // root mod root² = root
  for (std::size_t level = tree.size() - 1; level-- > 0;) {
    if (squares[level].size() != tree[level].size()) {
      throw std::invalid_argument(
          "remainder tree: squares/tree shape mismatch");
    }
    std::vector<mp::BigInt> next(tree[level].size());
    global_pool().parallel_for(0, next.size(), [&](std::size_t lo,
                                                   std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        next[i] = current[i / 2] % squares[level][i];
      }
    });
    current = std::move(next);
  }
  return current;
}

std::vector<mp::BigInt> remainder_tree_mod_squares(const ProductTree& tree) {
  return remainder_tree_mod_squares(tree, square_product_tree(tree));
}

BatchGcdResult batch_gcd(std::span<const mp::BigInt> moduli) {
  BatchGcdResult result;
  Timer timer;
  const ProductTree tree = build_product_tree(moduli);
  const ProductTree squares = square_product_tree(tree);
  const std::vector<mp::BigInt> residues =
      remainder_tree_mod_squares(tree, squares);

  result.gcds.resize(moduli.size());
  global_pool().parallel_for(0, moduli.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      // residues[i] = P mod n_i²; divide by n_i to get (P / n_i) mod n_i.
      const mp::BigInt cofactor_mod = residues[i] / moduli[i];
      result.gcds[i] = gcd::gcd_general(moduli[i], cofactor_mod);
    }
  });
  result.seconds = timer.seconds();
  return result;
}

std::vector<std::size_t> weak_indices(const BatchGcdResult& result) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < result.gcds.size(); ++i) {
    if (result.gcds[i] > mp::BigInt(1)) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> full_modulus_indices(
    const BatchGcdResult& result, std::span<const mp::BigInt> moduli) {
  std::vector<std::size_t> out;
  const std::size_t n = std::min(result.gcds.size(), moduli.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (result.gcds[i] > mp::BigInt(1) && result.gcds[i] == moduli[i]) {
      out.push_back(i);
    }
  }
  return out;
}

}  // namespace bulkgcd::batchgcd
