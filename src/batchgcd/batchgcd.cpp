#include "batchgcd/batchgcd.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

#include "batchgcd/batch_journal.hpp"
#include "core/thread_pool.hpp"
#include "core/timer.hpp"
#include "gcd/algorithms.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "rsa/keystore.hpp"

namespace bulkgcd::batchgcd {

namespace {

/// Driver-level metric handles (docs/OBSERVABILITY.md), following the scan
/// driver's pattern: all null without a registry, every use one branch.
/// batchgcd_levels_committed_total + batchgcd_levels_restored_total together
/// reach levels_total exactly once per completed attack, however many runs
/// it took.
struct BatchTelemetry {
  obs::Counter* levels_committed = nullptr;
  obs::Counter* levels_restored = nullptr;
  obs::Counter* product_nodes = nullptr;
  obs::Counter* remainder_nodes = nullptr;
  obs::Counter* gcds = nullptr;
  obs::Counter* weak = nullptr;
  obs::HistogramMetric* level_seconds = nullptr;
  obs::HistogramMetric* fsync_seconds = nullptr;
  obs::Gauge* progress_ratio = nullptr;

  static BatchTelemetry resolve(obs::MetricsRegistry* m) {
    BatchTelemetry t;
    if (!m) return t;
    t.levels_committed = m->counter("batchgcd_levels_committed_total");
    t.levels_restored = m->counter("batchgcd_levels_restored_total");
    t.product_nodes = m->counter("batchgcd_product_nodes_total");
    t.remainder_nodes = m->counter("batchgcd_remainder_nodes_total");
    t.gcds = m->counter("batchgcd_gcds_total");
    t.weak = m->counter("batchgcd_weak_total");
    t.level_seconds = m->histogram("batchgcd_level_seconds", 0.0, 60.0, 120);
    t.fsync_seconds =
        m->histogram("batchgcd_checkpoint_fsync_seconds", 0.0, 0.1, 100);
    t.progress_ratio = m->gauge("batchgcd_progress_ratio");
    return t;
  }
};

/// Driver-level trace handles, one span per committed tree level.
struct BatchTrace {
  obs::TraceRecorder* rec = nullptr;
  std::uint32_t product_id = 0;
  std::uint32_t remainder_id = 0;
  std::uint32_t gcds_id = 0;

  static BatchTrace resolve(obs::TraceRecorder* rec) {
    BatchTrace t;
    t.rec = rec;
    if (rec == nullptr) return t;
    t.product_id = rec->intern("product_level");
    t.remainder_id = rec->intern("remainder_level");
    t.gcds_id = rec->intern("final_gcds");
    rec->set_arg_names(t.product_id, "level", "nodes");
    rec->set_arg_names(t.remainder_id, "level", "residues");
    rec->set_arg_names(t.gcds_id, "gcds", "weak");
    return t;
  }
};

/// Product-tree depth for m leaves: level 0 (the moduli) up to the root.
std::size_t tree_depth(std::size_t m) {
  std::size_t depth = 1;
  for (std::size_t width = m; width > 1; width = (width + 1) / 2) ++depth;
  return depth;
}

}  // namespace

ProductTree build_product_tree(std::span<const mp::BigInt> moduli) {
  if (moduli.empty()) throw std::invalid_argument("product tree: empty input");
  ProductTree tree;
  tree.emplace_back(moduli.begin(), moduli.end());
  while (tree.back().size() > 1) {
    const auto& prev = tree.back();
    std::vector<mp::BigInt> next((prev.size() + 1) / 2);
    global_pool().parallel_for(0, next.size(), [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        if (2 * i + 1 < prev.size()) {
          next[i] = prev[2 * i] * prev[2 * i + 1];
        } else {
          next[i] = prev[2 * i];  // odd element promoted unchanged
        }
      }
    });
    tree.push_back(std::move(next));
  }
  return tree;
}

ProductTree square_product_tree(const ProductTree& tree) {
  if (tree.empty()) throw std::invalid_argument("square tree: empty input");
  // Root level omitted: the descent starts AT the root (root mod root² =
  // root) and only ever reduces modulo the squares of the levels below it.
  ProductTree squares(tree.size() - 1);
  for (std::size_t level = 0; level + 1 < tree.size(); ++level) {
    const auto& nodes = tree[level];
    squares[level].resize(nodes.size());
    global_pool().parallel_for(0, nodes.size(), [&](std::size_t lo,
                                                    std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        if (level > 0 && 2 * i + 1 >= tree[level - 1].size()) {
          // Promoted odd node: same value as its single child, so its
          // square is a copy of the child's — no repeated full-width
          // multiplication as the value rides up the tree.
          squares[level][i] = squares[level - 1][2 * i];
        } else {
          squares[level][i] = nodes[i] * nodes[i];
        }
      }
    });
  }
  return squares;
}

std::vector<mp::BigInt> remainder_tree_mod_squares(const ProductTree& tree,
                                                   const ProductTree& squares) {
  if (squares.size() + 1 < tree.size()) {
    throw std::invalid_argument("remainder tree: squares/tree shape mismatch");
  }
  // Walk from the root down; at each node reduce the parent's remainder
  // modulo the node value squared (precomputed — each distinct node value
  // was squared exactly once by square_product_tree).
  std::vector<mp::BigInt> current(1, tree.back()[0]);  // root mod root² = root
  for (std::size_t level = tree.size() - 1; level-- > 0;) {
    if (squares[level].size() != tree[level].size()) {
      throw std::invalid_argument(
          "remainder tree: squares/tree shape mismatch");
    }
    std::vector<mp::BigInt> next(tree[level].size());
    global_pool().parallel_for(0, next.size(), [&](std::size_t lo,
                                                   std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        next[i] = current[i / 2] % squares[level][i];
      }
    });
    current = std::move(next);
  }
  return current;
}

std::vector<mp::BigInt> remainder_tree_mod_squares(const ProductTree& tree) {
  return remainder_tree_mod_squares(tree, square_product_tree(tree));
}

BatchScanReport run_resumable_batch(std::span<const mp::BigInt> moduli,
                                    const BatchScanConfig& config) {
  if (moduli.empty()) {
    throw std::invalid_argument("run_resumable_batch: empty corpus");
  }
  BatchScanReport report;
  Timer timer;
  const BatchTelemetry t = BatchTelemetry::resolve(config.metrics);
  const BatchTrace trace = BatchTrace::resolve(config.trace);

  const std::size_t depth = tree_depth(moduli.size());
  // Checkpoint units: depth−1 product levels going up, depth−1 remainder
  // levels coming down, plus the final gcds vector.
  report.levels_total = std::uint64_t(2 * (depth - 1) + 1);

  std::unique_ptr<BatchJournal> journal;
  BatchReplay replay;
  if (!config.checkpoint.empty()) {
    journal = std::make_unique<BatchJournal>(
        config.checkpoint, rsa::corpus_digest(moduli), moduli.size(),
        config.fsync_every, t.fsync_seconds);
    replay = journal->take_replay();
  }

  const auto set_progress = [&] {
    if (t.progress_ratio) {
      t.progress_ratio->set(double(report.levels_restored + report.levels_done) /
                            double(report.levels_total));
    }
  };
  // Account one freshly committed level; true when this run should stop.
  const auto committed_level = [&] {
    ++report.levels_done;
    if (t.levels_committed) t.levels_committed->inc();
    set_progress();
    if (config.level_hook) {
      config.level_hook(report.levels_done, report.levels_total);
    }
    return config.stop_after_levels != 0 &&
           report.levels_done >= config.stop_after_levels;
  };

  // A journal holding the gcds record is a finished attack: replay it.
  if (replay.gcds) {
    if (replay.gcds->size() != moduli.size()) {
      throw std::runtime_error("batch checkpoint: gcds record size mismatch");
    }
    report.result.gcds = std::move(*replay.gcds);
    report.levels_restored = report.levels_total;
    report.resumed = true;
    report.complete = true;
    set_progress();
    report.result.seconds = timer.seconds();
    return report;
  }

  // ---- product phase (up) -------------------------------------------------
  // Restore journaled levels, then compute the rest. Restored shapes are
  // re-checked against the corpus: the digest binds the leaves, the dense
  // level/size invariants bind everything above them.
  ProductTree tree;
  tree.emplace_back(moduli.begin(), moduli.end());
  for (auto& [level, nodes] : replay.product_levels) {
    const auto& prev = tree.back();
    if (level != tree.size() || nodes.size() != (prev.size() + 1) / 2) {
      throw std::runtime_error(
          "batch checkpoint: product level shape mismatch");
    }
    tree.push_back(std::move(nodes));
    ++report.levels_restored;
    if (t.levels_restored) t.levels_restored->inc();
  }
  report.resumed = report.levels_restored > 0 || replay.remainder.has_value();

  while (tree.back().size() > 1) {
    obs::ScopedSpan level_span(t.level_seconds);
    obs::TraceSpan tspan(trace.rec, trace.product_id);
    const auto& prev = tree.back();
    std::vector<mp::BigInt> next((prev.size() + 1) / 2);
    global_pool().parallel_for(0, next.size(), [&](std::size_t lo,
                                                   std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        if (2 * i + 1 < prev.size()) {
          next[i] = prev[2 * i] * prev[2 * i + 1];
        } else {
          next[i] = prev[2 * i];  // odd element promoted unchanged
        }
      }
    });
    const std::uint32_t level = std::uint32_t(tree.size());
    tspan.set_args(level, next.size());
    if (t.product_nodes) t.product_nodes->add(next.size());
    tree.push_back(std::move(next));
    if (journal) journal->append_product_level(level, tree.back());
    if (committed_level()) {
      report.result.seconds = timer.seconds();
      return report;
    }
  }

  // ---- remainder phase (down) ---------------------------------------------
  // Squares are computed on the fly per level: with per-level checkpoints
  // there is no separate square-tree phase to resume, and each node's square
  // is needed exactly once on the way down anyway.
  std::vector<mp::BigInt> current;
  std::size_t next_level = depth - 1;  // the level the next step reduces into
  if (replay.remainder) {
    auto& [restored_level, residues] = *replay.remainder;
    if (restored_level >= depth - 1 ||
        residues.size() != tree[restored_level].size()) {
      throw std::runtime_error(
          "batch checkpoint: remainder level shape mismatch");
    }
    // Reducing into restored_level means levels depth−2 … restored_level
    // are already done: (depth−1) − restored_level descent steps.
    const std::uint64_t steps_done = std::uint64_t(depth - 1 - restored_level);
    report.levels_restored += steps_done;
    if (t.levels_restored) t.levels_restored->add(steps_done);
    set_progress();
    current = std::move(residues);
    next_level = restored_level;
  } else {
    current.assign(1, tree.back()[0]);  // root mod root² = root
  }

  for (std::size_t level = next_level; level-- > 0;) {
    obs::ScopedSpan level_span(t.level_seconds);
    obs::TraceSpan tspan(trace.rec, trace.remainder_id);
    const auto& nodes = tree[level];
    std::vector<mp::BigInt> next(nodes.size());
    global_pool().parallel_for(0, nodes.size(), [&](std::size_t lo,
                                                    std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        next[i] = current[i / 2] % (nodes[i] * nodes[i]);
      }
    });
    current = std::move(next);
    tspan.set_args(level, current.size());
    if (t.remainder_nodes) t.remainder_nodes->add(current.size());
    if (journal) journal->append_remainder_level(std::uint32_t(level), current);
    if (committed_level()) {
      report.result.seconds = timer.seconds();
      return report;
    }
  }

  // ---- final gcds ---------------------------------------------------------
  {
    obs::ScopedSpan level_span(t.level_seconds);
    obs::TraceSpan tspan(trace.rec, trace.gcds_id);
    report.result.gcds.resize(moduli.size());
    global_pool().parallel_for(0, moduli.size(), [&](std::size_t lo,
                                                     std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        // current[i] = P mod n_i²; divide by n_i to get (P / n_i) mod n_i.
        const mp::BigInt cofactor_mod = current[i] / moduli[i];
        report.result.gcds[i] = gcd::gcd_general(moduli[i], cofactor_mod);
      }
    });
    if (journal) journal->append_gcds(report.result.gcds);
    std::size_t weak = 0;
    for (const auto& g : report.result.gcds) {
      if (g > mp::BigInt(1)) ++weak;
    }
    tspan.set_args(moduli.size(), weak);
    if (t.gcds) t.gcds->add(moduli.size());
    if (t.weak) t.weak->add(weak);
    committed_level();  // the last level: the stop threshold no longer matters
  }

  report.complete = true;
  report.result.seconds = timer.seconds();
  return report;
}

BatchGcdResult batch_gcd(std::span<const mp::BigInt> moduli,
                         obs::MetricsRegistry* metrics) {
  BatchScanConfig config;
  config.metrics = metrics;
  return run_resumable_batch(moduli, config).result;
}

std::vector<std::size_t> weak_indices(const BatchGcdResult& result) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < result.gcds.size(); ++i) {
    if (result.gcds[i] > mp::BigInt(1)) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> full_modulus_indices(
    const BatchGcdResult& result, std::span<const mp::BigInt> moduli) {
  std::vector<std::size_t> out;
  const std::size_t n = std::min(result.gcds.size(), moduli.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (result.gcds[i] > mp::BigInt(1) && result.gcds[i] == moduli[i]) {
      out.push_back(i);
    }
  }
  return out;
}

}  // namespace bulkgcd::batchgcd
