// Durable level journal for the resumable batch-GCD driver — the element
// that lets a million-moduli product/remainder tree survive a SIGKILL at any
// level (docs/BATCHGCD.md).
//
// Same record discipline as the scan checkpoint journal and the intake
// arrival journal: append-only file, fixed header binding the journal to one
// corpus identity (rsa::corpus_digest + count), little-endian integers,
// per-record fsync cadence, and torn-tail tolerance — a crash mid-write
// leaves a partial final record that the next open parses past, truncates,
// and appends over. Three record kinds, one per completed tree level:
//
//   product(level, nodes)    — product-tree level `level` (1 = first pairing
//                              of the moduli; the leaves are never journaled,
//                              they ARE the corpus the header binds to).
//   remainder(level, nodes)  — the residues after the descent has reduced
//                              into tree level `level` (level L−2 first,
//                              level 0 last: the leaf residues P mod n_i²).
//   gcds(values)             — the final per-modulus gcd vector; its
//                              presence marks the attack complete.
//
// Values are journaled as canonical 32-bit BigInt limbs regardless of the
// build's scan limb width, so a checkpoint written by one build resumes
// under any other (mirrors the scan journal's portability rule).
#pragma once

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "mp/bigint.hpp"

namespace bulkgcd::obs {
class HistogramMetric;
}  // namespace bulkgcd::obs

namespace bulkgcd::batchgcd {

/// Everything parsed from an existing journal at open.
struct BatchReplay {
  /// Restored product-tree levels in append order (level index ≥ 1). A valid
  /// journal holds a dense prefix 1..k; the driver re-checks sizes anyway.
  std::vector<std::pair<std::uint32_t, std::vector<mp::BigInt>>> product_levels;
  /// Deepest (lowest-level) restored remainder vector — the descent resumes
  /// from here. Records are appended top-down, so the last one parsed wins.
  std::optional<std::pair<std::uint32_t, std::vector<mp::BigInt>>> remainder;
  /// Final gcd vector, present only when the attack finished.
  std::optional<std::vector<mp::BigInt>> gcds;
  /// File prefix that parsed cleanly; bytes past it (torn tail) were
  /// truncated before the journal reopened for append.
  std::size_t good_offset = 0;
};

/// Open-for-append batch-tree journal bound to one corpus identity.
/// Single-writer: the level-serial driver appends from one thread.
class BatchJournal {
 public:
  /// Opens `path`, creating it with a fresh header when absent or empty.
  /// An existing journal must carry the same corpus identity — digest
  /// (rsa::corpus_digest over the moduli) and count — else this throws
  /// std::runtime_error: resuming someone else's tree would deliver gcds
  /// against the wrong corpus. On a match, all complete records are parsed
  /// (take_replay()), the torn tail is truncated, and the file is positioned
  /// for append. fsync_hist (optional) receives each flush+fsync latency.
  BatchJournal(std::filesystem::path path, std::uint64_t corpus_digest,
               std::uint64_t corpus_count, std::size_t fsync_every = 1,
               obs::HistogramMetric* fsync_hist = nullptr);
  ~BatchJournal();

  BatchJournal(const BatchJournal&) = delete;
  BatchJournal& operator=(const BatchJournal&) = delete;

  /// The state parsed at open; meaningful once, immediately after
  /// construction (moves the levels out).
  BatchReplay take_replay();

  /// Journal one completed product-tree level (level ≥ 1).
  void append_product_level(std::uint32_t level,
                            std::span<const mp::BigInt> nodes);
  /// Journal the residues after the descent reduced into tree `level`.
  void append_remainder_level(std::uint32_t level,
                              std::span<const mp::BigInt> residues);
  /// Journal the final gcd vector; marks the run complete on replay.
  void append_gcds(std::span<const mp::BigInt> gcds);

  /// Flush + fsync anything buffered (also done by the destructor).
  void flush();

 private:
  void write_record(const std::string& bytes);
  void flush_and_sync();

  std::filesystem::path path_;
  std::size_t fsync_every_;
  obs::HistogramMetric* fsync_hist_;
  BatchReplay replay_;
  std::FILE* file_ = nullptr;
  std::size_t commits_since_sync_ = 0;
};

}  // namespace bulkgcd::batchgcd
