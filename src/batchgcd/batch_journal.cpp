#include "batchgcd/batch_journal.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>

#include "obs/span.hpp"

namespace bulkgcd::batchgcd {

namespace {

// ---- journal wire format (docs/BATCHGCD.md) -------------------------------
// Same discipline as the scan checkpoint and intake arrival journals: all
// integers little-endian, fixed header, appended records, torn tail dropped
// on resume. Record order invariants:
//   - product levels appear in increasing level order starting at 1, each
//     exactly once;
//   - remainder levels appear in decreasing level order starting at L−2
//     (the descent walks top-down), each exactly once, and only after every
//     product level;
//   - the gcds record, if present, is last.
// Any record breaking these is treated as corruption: the tail from it on
// is dropped, exactly like a torn write.

constexpr char kMagic[8] = {'B', 'G', 'C', 'D', 'B', 'T', 'R', '1'};
constexpr std::uint8_t kRecordProduct = 1;
constexpr std::uint8_t kRecordRemainder = 2;
constexpr std::uint8_t kRecordGcds = 3;
constexpr std::size_t kHeaderSize = 8 + 2 * 8;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(char((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(char((v >> (8 * i)) & 0xff));
}

/// Bounds-checked sequential reader over the journal bytes.
struct Cursor {
  const unsigned char* data;
  std::size_t size;
  std::size_t pos = 0;

  bool u8(std::uint8_t& v) {
    if (pos + 1 > size) return false;
    v = data[pos++];
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (pos + 4 > size) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(data[pos++]) << (8 * i);
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (pos + 8 > size) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(data[pos++]) << (8 * i);
    return true;
  }
};

/// Tree values are journaled as 32-bit BigInt limbs (count + limbs), the
/// same encoding the scan checkpoint uses for hit factors, so checkpoints
/// stay portable across BULKGCD_LIMB32 configurations.
void put_bigint(std::string& out, const mp::BigInt& n) {
  const auto limbs = n.limbs();
  put_u32(out, std::uint32_t(limbs.size()));
  for (const auto limb : limbs) put_u32(out, limb);
}

bool get_bigint(Cursor& c, mp::BigInt& n) {
  std::uint32_t nlimbs = 0;
  if (!c.u32(nlimbs) || c.pos + std::size_t(nlimbs) * 4 > c.size) return false;
  std::vector<std::uint32_t> limbs(nlimbs);
  for (auto& limb : limbs) c.u32(limb);
  n = mp::BigInt::from_limbs(limbs);
  return true;
}

void put_values(std::string& out, std::span<const mp::BigInt> values) {
  put_u64(out, values.size());
  for (const auto& v : values) put_bigint(out, v);
}

bool get_values(Cursor& c, std::vector<mp::BigInt>& values) {
  std::uint64_t count = 0;
  if (!c.u64(count)) return false;
  // A level can never outnumber its journal bytes (each value costs ≥ 4
  // bytes) — reject sizes a torn length field could fabricate before the
  // resize tries to allocate them.
  if (count > (c.size - c.pos) / 4) return false;
  values.resize(count);
  for (auto& v : values) {
    if (!get_bigint(c, v)) return false;
  }
  return true;
}

std::string read_file_bytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

}  // namespace

BatchJournal::BatchJournal(std::filesystem::path path,
                           std::uint64_t corpus_digest,
                           std::uint64_t corpus_count, std::size_t fsync_every,
                           obs::HistogramMetric* fsync_hist)
    : path_(std::move(path)),
      fsync_every_(std::max<std::size_t>(1, fsync_every)),
      fsync_hist_(fsync_hist) {
  std::error_code ec;
  bool fresh = !std::filesystem::exists(path_, ec) ||
               std::filesystem::file_size(path_, ec) == 0;
  if (!fresh && std::filesystem::file_size(path_, ec) < kHeaderSize) {
    // A crash during creation can tear the header itself. A prefix of our
    // magic is our own torn file — recreate; anything else is somebody's
    // data and gets the bad-magic refusal below.
    const std::string bytes = read_file_bytes(path_);
    if (std::memcmp(bytes.data(), kMagic,
                    std::min(bytes.size(), sizeof(kMagic))) == 0) {
      fresh = true;
    }
  }
  if (fresh) {
    file_ = std::fopen(path_.string().c_str(), "wb");
    if (!file_) {
      throw std::runtime_error("batch_journal: cannot write " +
                               path_.string());
    }
    std::string header(kMagic, sizeof(kMagic));
    put_u64(header, corpus_digest);
    put_u64(header, corpus_count);
    write_record(header);
    flush_and_sync();
    return;
  }

  const std::string bytes = read_file_bytes(path_);
  Cursor c{reinterpret_cast<const unsigned char*>(bytes.data()), bytes.size()};
  if (bytes.size() < kHeaderSize ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("batch_journal: " + path_.string() +
                             " is not a batch-tree journal (bad magic)");
  }
  c.pos = sizeof(kMagic);
  std::uint64_t got_digest = 0, got_count = 0;
  c.u64(got_digest);
  c.u64(got_count);
  if (got_digest != corpus_digest || got_count != corpus_count) {
    // A tree built over different moduli delivers gcds against the wrong
    // corpus — refuse loudly rather than resume wrongly.
    throw std::runtime_error("batch_journal: " + path_.string() +
                             " was written for a different corpus "
                             "(digest/count mismatch)");
  }

  replay_.good_offset = c.pos;
  std::uint32_t next_product = 1;  // product levels are dense from 1
  bool descending = false;
  std::uint32_t last_remainder = 0;
  while (c.pos < c.size) {
    std::uint8_t kind = 0;
    if (!c.u8(kind)) break;
    if (kind == kRecordProduct) {
      std::uint32_t level = 0;
      std::vector<mp::BigInt> nodes;
      if (descending || replay_.gcds || !c.u32(level) ||
          level != next_product || !get_values(c, nodes)) {
        break;
      }
      replay_.product_levels.emplace_back(level, std::move(nodes));
      ++next_product;
    } else if (kind == kRecordRemainder) {
      std::uint32_t level = 0;
      std::vector<mp::BigInt> residues;
      if (replay_.gcds || !c.u32(level) || !get_values(c, residues)) break;
      // Top-down descent: each remainder level is exactly one below the
      // previous record's level.
      if (descending && level + 1 != last_remainder) break;
      descending = true;
      last_remainder = level;
      replay_.remainder.emplace(level, std::move(residues));
    } else if (kind == kRecordGcds) {
      std::vector<mp::BigInt> gcds;
      if (replay_.gcds || !get_values(c, gcds)) break;
      replay_.gcds = std::move(gcds);
    } else {
      break;  // unknown record kind: treat as corruption, drop the tail
    }
    replay_.good_offset = c.pos;  // full record parsed: advance the keep-mark
  }

  // Drop the torn tail before appending so the next reader never sees a
  // partial record followed by complete ones.
  const auto actual = std::filesystem::file_size(path_, ec);
  if (!ec && actual > replay_.good_offset) {
    std::filesystem::resize_file(path_, replay_.good_offset);
  }
  file_ = std::fopen(path_.string().c_str(), "ab");
  if (!file_) {
    throw std::runtime_error("batch_journal: cannot append to " +
                             path_.string());
  }
}

BatchJournal::~BatchJournal() {
  if (file_) {
    std::fflush(file_);
    ::fsync(::fileno(file_));
    std::fclose(file_);
  }
}

BatchReplay BatchJournal::take_replay() { return std::move(replay_); }

void BatchJournal::append_product_level(std::uint32_t level,
                                        std::span<const mp::BigInt> nodes) {
  std::string out;
  out.push_back(char(kRecordProduct));
  put_u32(out, level);
  put_values(out, nodes);
  write_record(out);
  if (++commits_since_sync_ >= fsync_every_) flush_and_sync();
}

void BatchJournal::append_remainder_level(
    std::uint32_t level, std::span<const mp::BigInt> residues) {
  std::string out;
  out.push_back(char(kRecordRemainder));
  put_u32(out, level);
  put_values(out, residues);
  write_record(out);
  if (++commits_since_sync_ >= fsync_every_) flush_and_sync();
}

void BatchJournal::append_gcds(std::span<const mp::BigInt> gcds) {
  std::string out;
  out.push_back(char(kRecordGcds));
  put_values(out, gcds);
  write_record(out);
  flush_and_sync();  // the completion record is always made durable
}

void BatchJournal::flush() { flush_and_sync(); }

void BatchJournal::write_record(const std::string& bytes) {
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    throw std::runtime_error("batch_journal: write failed: " + path_.string());
  }
}

void BatchJournal::flush_and_sync() {
  obs::ScopedSpan span(fsync_hist_);
  if (std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
    throw std::runtime_error("batch_journal: fsync failed: " + path_.string());
  }
  commits_since_sync_ = 0;
}

}  // namespace bulkgcd::batchgcd
