// Bernstein-style batch GCD (product tree + remainder tree) — the published
// batch attack (Heninger et al. / fastgcd) that the pairwise approach is
// usually compared against. Implemented here as the crossover baseline for
// bench_batchgcd_crossover: batch GCD is asymptotically better in the number
// of moduli, while the paper's bulk pairwise Approximate Euclidean wins on
// parallel hardware for moderate corpus sizes.
//
// Identity used: with P = Π n_k and n_i | P,
//   gcd(n_i, P / n_i) = gcd(n_i, (P mod n_i²) / n_i),
// and the remainder tree delivers every P mod n_i² in O(M(total bits) log m).
//
// Two entry points:
//   batch_gcd            — one-shot, in-memory (the bench/test workhorse).
//   run_resumable_batch  — the checkpointed driver: each completed tree
//     level (product levels up, remainder levels down, final gcds) commits
//     to an append-only journal (batch_journal.hpp), so a SIGKILL at any
//     level resumes without recomputing finished levels. batch_gcd is this
//     driver with the journal switched off.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <span>
#include <vector>

#include "mp/bigint.hpp"

namespace bulkgcd::obs {
class MetricsRegistry;
class TraceRecorder;
}  // namespace bulkgcd::obs

namespace bulkgcd::batchgcd {

/// Levels of the product tree: level 0 = the moduli, each higher level the
/// pairwise products, top level a single root Π n_i.
using ProductTree = std::vector<std::vector<mp::BigInt>>;

ProductTree build_product_tree(std::span<const mp::BigInt> moduli);

/// Square every node of `tree` once, level by level, for the remainder
/// descent. Shape-parallel with `tree` except the root level is omitted
/// (the descent never reduces modulo the root²). A node promoted unchanged
/// from an odd-count level reuses its child's square — a copy, not another
/// full-width multiplication — so each DISTINCT value in the tree is
/// squared exactly once no matter how many levels it rides through.
ProductTree square_product_tree(const ProductTree& tree);

/// Descend the tree: value at each leaf i is root mod n_i². The two-argument
/// form takes the output of square_product_tree (throws
/// std::invalid_argument on a shape mismatch); the one-argument convenience
/// builds it internally. Callers descending the same tree more than once
/// should build the squares once and reuse them.
std::vector<mp::BigInt> remainder_tree_mod_squares(const ProductTree& tree);
std::vector<mp::BigInt> remainder_tree_mod_squares(const ProductTree& tree,
                                                   const ProductTree& squares);

struct BatchGcdResult {
  /// gcds[i] = gcd(n_i, Π_{k≠i} n_k): 1 when n_i shares no factor, the
  /// shared prime when it shares one factor, possibly n_i itself when both
  /// factors are shared (or the modulus is duplicated).
  std::vector<mp::BigInt> gcds;
  double seconds = 0.0;
};

/// Run the full batch-GCD attack over the corpus, in memory. With a registry
/// the run feeds the batchgcd_* metrics (docs/OBSERVABILITY.md).
BatchGcdResult batch_gcd(std::span<const mp::BigInt> moduli,
                         obs::MetricsRegistry* metrics = nullptr);

/// Configuration for the checkpointed driver. Defaults reproduce batch_gcd.
struct BatchScanConfig {
  /// Journal path. Empty ⇒ no checkpointing (pure in-memory run). The file
  /// is bound to the corpus identity (rsa::corpus_digest + count); opening
  /// a journal written for a different corpus throws std::runtime_error.
  std::filesystem::path checkpoint;
  /// fsync the journal after every this-many level commits (min 1). The
  /// final gcds record always syncs regardless.
  std::size_t fsync_every = 1;
  /// Stop (cleanly, complete=false) after committing this many levels in
  /// THIS run; 0 = run to completion. The final gcds level always finishes
  /// once started. Lets tests and the CLI exercise resume deterministically.
  std::size_t stop_after_levels = 0;
  /// Optional batchgcd_* metrics sink (null ⇒ zero-cost).
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional trace sink: one span per tree level (product_level /
  /// remainder_level / final_gcds) plus journal fsync latency.
  obs::TraceRecorder* trace = nullptr;
  /// Called after every level committed this run with
  /// (levels_done_this_run, levels_total). The SIGKILL resume smoke raises
  /// its signal from here, mid-tree, with the journal already synced.
  std::function<void(std::size_t, std::size_t)> level_hook;
};

/// Outcome of one driver run (possibly a partial leg of a resumed attack).
struct BatchScanReport {
  /// gcds filled only when complete; seconds covers this run only.
  BatchGcdResult result;
  bool complete = false;
  /// True when any journaled state was restored (including a finished run
  /// whose gcds replayed straight from the journal).
  bool resumed = false;
  /// Total checkpointable levels for this corpus:
  /// (product levels) + (remainder levels) + 1 for the final gcds.
  std::uint64_t levels_total = 0;
  /// Levels computed and committed by THIS run.
  std::uint64_t levels_done = 0;
  /// Levels restored from the journal instead of recomputed.
  std::uint64_t levels_restored = 0;
};

/// The checkpointed batch-GCD driver. Computes level by level, committing
/// each completed level to the journal before starting the next, so the
/// process can die (SIGKILL included) at any point and a rerun with the same
/// corpus and checkpoint path resumes at the first uncommitted level — the
/// final gcds are bit-identical to an uninterrupted run.
BatchScanReport run_resumable_batch(std::span<const mp::BigInt> moduli,
                                    const BatchScanConfig& config = {});

/// Indices i with gcds[i] > 1 (weak moduli).
std::vector<std::size_t> weak_indices(const BatchGcdResult& result);

/// Indices i with gcds[i] == n_i: the batch-GCD analogue of
/// FactorHit::full_modulus. A duplicated modulus (or one sharing both primes
/// with the rest of the corpus) shows up weak, but n_i / gcds[i] == 1, so
/// these keys cannot be factored from the batch result alone.
std::vector<std::size_t> full_modulus_indices(const BatchGcdResult& result,
                                              std::span<const mp::BigInt> moduli);

}  // namespace bulkgcd::batchgcd
