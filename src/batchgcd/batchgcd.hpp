// Bernstein-style batch GCD (product tree + remainder tree) — the published
// batch attack (Heninger et al. / fastgcd) that the pairwise approach is
// usually compared against. Implemented here as the crossover baseline for
// bench_batchgcd_crossover: batch GCD is asymptotically better in the number
// of moduli, while the paper's bulk pairwise Approximate Euclidean wins on
// parallel hardware for moderate corpus sizes.
//
// Identity used: with P = Π n_k and n_i | P,
//   gcd(n_i, P / n_i) = gcd(n_i, (P mod n_i²) / n_i),
// and the remainder tree delivers every P mod n_i² in O(M(total bits) log m).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "mp/bigint.hpp"

namespace bulkgcd::batchgcd {

/// Levels of the product tree: level 0 = the moduli, each higher level the
/// pairwise products, top level a single root Π n_i.
using ProductTree = std::vector<std::vector<mp::BigInt>>;

ProductTree build_product_tree(std::span<const mp::BigInt> moduli);

/// Square every node of `tree` once, level by level, for the remainder
/// descent. Shape-parallel with `tree` except the root level is omitted
/// (the descent never reduces modulo the root²). A node promoted unchanged
/// from an odd-count level reuses its child's square — a copy, not another
/// full-width multiplication — so each DISTINCT value in the tree is
/// squared exactly once no matter how many levels it rides through.
ProductTree square_product_tree(const ProductTree& tree);

/// Descend the tree: value at each leaf i is root mod n_i². The two-argument
/// form takes the output of square_product_tree (throws
/// std::invalid_argument on a shape mismatch); the one-argument convenience
/// builds it internally. Callers descending the same tree more than once
/// should build the squares once and reuse them.
std::vector<mp::BigInt> remainder_tree_mod_squares(const ProductTree& tree);
std::vector<mp::BigInt> remainder_tree_mod_squares(const ProductTree& tree,
                                                   const ProductTree& squares);

struct BatchGcdResult {
  /// gcds[i] = gcd(n_i, Π_{k≠i} n_k): 1 when n_i shares no factor, the
  /// shared prime when it shares one factor, possibly n_i itself when both
  /// factors are shared (or the modulus is duplicated).
  std::vector<mp::BigInt> gcds;
  double seconds = 0.0;
};

/// Run the full batch-GCD attack over the corpus.
BatchGcdResult batch_gcd(std::span<const mp::BigInt> moduli);

/// Indices i with gcds[i] > 1 (weak moduli).
std::vector<std::size_t> weak_indices(const BatchGcdResult& result);

/// Indices i with gcds[i] == n_i: the batch-GCD analogue of
/// FactorHit::full_modulus. A duplicated modulus (or one sharing both primes
/// with the rest of the corpus) shows up weak, but n_i / gcds[i] == 1, so
/// these keys cannot be factored from the batch result alone.
std::vector<std::size_t> full_modulus_indices(const BatchGcdResult& result,
                                              std::span<const mp::BigInt> moduli);

}  // namespace bulkgcd::batchgcd
