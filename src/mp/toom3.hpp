// Toom-3 multiplication. One rung above Karatsuba on the threshold ladder
// (schoolbook → Karatsuba → Toom-3): splits each operand into three parts
// and recovers the product from five pointwise multiplications of ~1/3 size,
// O(n^1.465) versus Karatsuba's O(n^1.585). The batch-GCD product tree
// multiplies values of hundreds of thousands of bits — exactly the regime
// where the extra evaluation/interpolation traffic pays for itself.
//
// Evaluation points are 0, 1, 2, 3, ∞ rather than the textbook 0, ±1, 2, ∞:
// with unsigned-only span kernels every evaluation and every interpolation
// intermediate stays non-negative (a product of polynomials with unsigned
// coefficients has unsigned coefficients), so the whole algorithm runs on
// add/sub/mul_word/divrem_word from span_ops.hpp — no signed temporaries,
// no borrow bookkeeping. The interpolation's small divisions (by 2 and 6)
// are exact by construction and done with divrem_word.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "mp/karatsuba.hpp"
#include "mp/span_ops.hpp"

namespace bulkgcd::mp {

/// Below this many limbs (smaller operand) Karatsuba wins: the five
/// pointwise products plus evaluation/interpolation passes only beat three
/// Karatsuba halves once the linear work is amortized over large operands.
/// (bench_microkernels puts the 32-bit-limb crossover near this size; the
/// mp_stress differential suite straddles it on every limb width.)
inline constexpr std::size_t kToom3Threshold = 96;

template <LimbType Limb>
std::vector<Limb> mul_toom3(const Limb* a, std::size_t na, const Limb* b,
                            std::size_t nb);

/// Full threshold dispatch: schoolbook below kKaratsubaThreshold, Karatsuba
/// below kToom3Threshold, Toom-3 above. The recursive algorithms call this
/// for their subproducts, so a huge multiplication descends the whole ladder.
template <LimbType Limb>
std::vector<Limb> mul_dispatch(const Limb* a, std::size_t na, const Limb* b,
                               std::size_t nb) {
  na = normalized_size(a, na);
  nb = normalized_size(b, nb);
  if (std::min(na, nb) >= kToom3Threshold) return mul_toom3(a, na, b, nb);
  return mul_karatsuba(a, na, b, nb);
}

namespace toom3_detail {

/// value += piece, in place, growing by at most one limb.
template <LimbType Limb>
void add_into(std::vector<Limb>& value, const Limb* piece, std::size_t n) {
  if (n == 0) return;
  value.resize(std::max(value.size(), n) + 1, Limb{0});
  value.resize(add(value.data(), value.data(), value.size() - 1, piece, n));
}

/// Evaluate p(t) = p0 + p1·t + p2·t² at a small unsigned point t via Horner:
/// (p2·t + p1)·t + p0 — two mul_word passes, two adds, all non-negative.
template <LimbType Limb>
std::vector<Limb> eval_at(const Limb* p0, std::size_t n0, const Limb* p1,
                          std::size_t n1, const Limb* p2, std::size_t n2,
                          Limb t) {
  std::vector<Limb> acc(p2, p2 + n2);
  acc.resize(normalized_size(acc.data(), acc.size()));
  acc.resize(acc.size() + 1);
  acc.resize(mul_word(acc.data(), acc.data(), acc.size() - 1, t));
  add_into(acc, p1, n1);
  acc.resize(acc.size() + 1);
  acc.resize(mul_word(acc.data(), acc.data(), acc.size() - 1, t));
  add_into(acc, p0, n0);
  return acc;
}

/// value -= piece (requires value >= piece; guaranteed by the interpolation
/// identities below).
template <LimbType Limb>
void sub_from(std::vector<Limb>& value, const std::vector<Limb>& piece) {
  value.resize(
      sub(value.data(), value.data(), value.size(), piece.data(), piece.size()));
}

/// value = value / w, exact (remainder asserted zero by the algebra).
template <LimbType Limb>
void div_exact(std::vector<Limb>& value, Limb w) {
  const Limb rem = divrem_word(value.data(), value.data(), value.size(), w);
  (void)rem;
  assert(rem == 0 && "toom3 interpolation division must be exact");
  value.resize(normalized_size(value.data(), value.size()));
}

/// value = value * w in place.
template <LimbType Limb>
void mul_small(std::vector<Limb>& value, Limb w) {
  value.resize(value.size() + 1);
  value.resize(mul_word(value.data(), value.data(), value.size() - 1, w));
}

}  // namespace toom3_detail

/// Returns a * b as a normalized limb vector.
template <LimbType Limb>
std::vector<Limb> mul_toom3(const Limb* a, std::size_t na, const Limb* b,
                            std::size_t nb) {
  using namespace toom3_detail;
  na = normalized_size(a, na);
  nb = normalized_size(b, nb);
  if (na == 0 || nb == 0) return {};
  if (std::min(na, nb) < kToom3Threshold) return mul_karatsuba(a, na, b, nb);

  // Split on the larger operand: x = x2·B^{2h} + x1·B^h + x0 with h limbs
  // per low part. A shorter operand simply has empty high parts.
  const std::size_t h = (std::max(na, nb) + 2) / 3;
  const auto part = [h](const Limb* p, std::size_t n, std::size_t k) {
    const std::size_t lo = std::min(n, k * h);
    const std::size_t hi = std::min(n, (k + 1) * h);
    return std::pair(p + lo, normalized_size(p + lo, hi - lo));
  };
  const auto [a0, na0] = part(a, na, 0);
  const auto [a1, na1] = part(a, na, 1);
  const auto [a2, na2] = part(a, na, 2);
  const auto [b0, nb0] = part(b, nb, 0);
  const auto [b1, nb1] = part(b, nb, 1);
  const auto [b2, nb2] = part(b, nb, 2);

  // Five pointwise products at t = 0, 1, 2, 3, ∞.
  const std::vector<Limb> w0 = mul_dispatch(a0, na0, b0, nb0);
  const std::vector<Limb> w4 = mul_dispatch(a2, na2, b2, nb2);
  std::vector<Limb> w1, w2, w3;
  {
    const auto ea = eval_at(a0, na0, a1, na1, a2, na2, Limb{1});
    const auto eb = eval_at(b0, nb0, b1, nb1, b2, nb2, Limb{1});
    w1 = mul_dispatch(ea.data(), ea.size(), eb.data(), eb.size());
  }
  {
    const auto ea = eval_at(a0, na0, a1, na1, a2, na2, Limb{2});
    const auto eb = eval_at(b0, nb0, b1, nb1, b2, nb2, Limb{2});
    w2 = mul_dispatch(ea.data(), ea.size(), eb.data(), eb.size());
  }
  {
    const auto ea = eval_at(a0, na0, a1, na1, a2, na2, Limb{3});
    const auto eb = eval_at(b0, nb0, b1, nb1, b2, nb2, Limb{3});
    w3 = mul_dispatch(ea.data(), ea.size(), eb.data(), eb.size());
  }

  // Interpolation. With c(x) = c4·x⁴ + … + c0 (every cᵢ ≥ 0):
  //   c0 = w0,  c4 = w4
  //   t1 = w1 − c0 −  c4 =  c1 +  c2 +  c3
  //   t2 = w2 − c0 − 16c4 = 2c1 + 4c2 + 8c3
  //   t3 = w3 − c0 − 81c4 = 3c1 + 9c2 + 27c3
  //   u  = t2 − 2t1 = 2(c2 + 3c3)      v = t3 − 3t1 = 6(c2 + 4c3)
  //   c3 = v/6 − u/2   c2 = u/2 − 3c3   c1 = t1 − c2 − c3
  // Every subtrahend is bounded by its minuend term-by-term, so the
  // unsigned sub() precondition holds throughout.
  std::vector<Limb> t1 = w1;
  sub_from(t1, w0);
  sub_from(t1, w4);

  std::vector<Limb> t2 = w2;
  sub_from(t2, w0);
  {
    std::vector<Limb> c4_16 = w4;
    mul_small(c4_16, Limb{16});
    sub_from(t2, c4_16);
  }
  std::vector<Limb> t3 = w3;
  sub_from(t3, w0);
  {
    std::vector<Limb> c4_81 = w4;
    mul_small(c4_81, Limb{81});
    sub_from(t3, c4_81);
  }

  std::vector<Limb> u = t2;  // u = t2 − 2t1
  {
    std::vector<Limb> t1_2 = t1;
    mul_small(t1_2, Limb{2});
    sub_from(u, t1_2);
  }
  std::vector<Limb> v = t3;  // v = t3 − 3t1
  {
    std::vector<Limb> t1_3 = t1;
    mul_small(t1_3, Limb{3});
    sub_from(v, t1_3);
  }

  div_exact(v, Limb{6});  // v = c2 + 4c3
  div_exact(u, Limb{2});  // u = c2 + 3c3
  std::vector<Limb> c3 = v;
  sub_from(c3, u);  // c3
  std::vector<Limb> c2 = u;
  {
    std::vector<Limb> c3_3 = c3;
    mul_small(c3_3, Limb{3});
    sub_from(c2, c3_3);
  }
  std::vector<Limb> c1 = t1;
  sub_from(c1, c2);
  sub_from(c1, c3);

  // result = Σ cᵢ · B^{i·h}. Adjacent coefficients overlap (each cᵢ spans up
  // to 2h+1 limbs) so accumulate with carry-propagating adds at offsets.
  std::vector<Limb> out(na + nb, Limb{0});
  const auto add_at = [&out](std::size_t offset, const std::vector<Limb>& c) {
    if (c.empty() || out.size() <= offset) return;
    const std::size_t tail = out.size() - offset;
    std::vector<Limb> tmp(tail + 1, Limb{0});
    (void)add(tmp.data(), out.data() + offset, tail, c.data(),
              std::min(c.size(), tail));
    std::copy_n(tmp.begin(), tail, out.begin() + std::ptrdiff_t(offset));
  };
  add_at(0, w0);
  add_at(h, c1);
  add_at(2 * h, c2);
  add_at(3 * h, c3);
  add_at(4 * h, w4);
  out.resize(normalized_size(out.data(), out.size()));
  return out;
}

}  // namespace bulkgcd::mp
