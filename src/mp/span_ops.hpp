// Low-level multiprecision kernels on little-endian limb spans.
//
// Conventions:
//   * numbers are arrays of limbs, limbs[0] least significant (so the paper's
//     most-significant word x1 is limbs[size-1]);
//   * a span is "normalized" when its top limb is nonzero; size 0 represents
//     the value 0;
//   * every function documents its aliasing requirements.
//
// These kernels back BigInt, the Euclidean algorithm family, RSA and the
// batch-GCD trees. They are header-only templates so the d = 16/32/64 word
// sizes all compile from one source of truth.
#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstddef>
#include <vector>

#include "mp/limb_traits.hpp"

namespace bulkgcd::mp {

/// Size after stripping high zero limbs.
template <LimbType Limb>
constexpr std::size_t normalized_size(const Limb* a, std::size_t n) noexcept {
  while (n > 0 && a[n - 1] == 0) --n;
  return n;
}

template <LimbType Limb>
constexpr bool is_zero(const Limb* a, std::size_t n) noexcept {
  return normalized_size(a, n) == 0;
}

/// Three-way compare of normalized spans: -1, 0, +1.
template <LimbType Limb>
constexpr int compare(const Limb* a, std::size_t na, const Limb* b,
                      std::size_t nb) noexcept {
  if (na != nb) return na < nb ? -1 : 1;
  for (std::size_t i = na; i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

/// Number of significant bits (0 for the value 0). Span need not be normalized.
template <LimbType Limb>
constexpr std::size_t bit_length(const Limb* a, std::size_t n) noexcept {
  n = normalized_size(a, n);
  if (n == 0) return 0;
  return n * limb_bits<Limb> - std::countl_zero(a[n - 1]);
}

/// Index of the lowest set bit; undefined for the value 0.
template <LimbType Limb>
constexpr std::size_t count_trailing_zero_bits(const Limb* a,
                                               std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != 0) return i * limb_bits<Limb> + std::countr_zero(a[i]);
  }
  return n * limb_bits<Limb>;
}

template <LimbType Limb>
constexpr bool get_bit(const Limb* a, std::size_t n, std::size_t bit) noexcept {
  const std::size_t limb = bit / limb_bits<Limb>;
  if (limb >= n) return false;
  return (a[limb] >> (bit % limb_bits<Limb>)) & 1u;
}

/// dst = a + b. dst capacity max(na, nb) + 1; dst may alias a or b.
/// Returns normalized result size.
template <LimbType Limb>
constexpr std::size_t add(Limb* dst, const Limb* a, std::size_t na,
                          const Limb* b, std::size_t nb) noexcept {
  using Wide = typename LimbTraits<Limb>::Wide;
  if (na < nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  Wide carry = 0;
  std::size_t i = 0;
  for (; i < nb; ++i) {
    carry += Wide(a[i]) + b[i];
    dst[i] = Limb(carry);
    carry >>= limb_bits<Limb>;
  }
  for (; i < na; ++i) {
    carry += a[i];
    dst[i] = Limb(carry);
    carry >>= limb_bits<Limb>;
  }
  if (carry != 0) {
    dst[na] = Limb(carry);
    return na + 1;
  }
  return na;
}

/// dst = a - b; requires a >= b. dst capacity na; dst may alias a or b.
/// Returns normalized result size.
template <LimbType Limb>
constexpr std::size_t sub(Limb* dst, const Limb* a, std::size_t na,
                          const Limb* b, std::size_t nb) noexcept {
  using Wide = typename LimbTraits<Limb>::Wide;
  assert(compare(a, normalized_size(a, na), b, normalized_size(b, nb)) >= 0);
  Wide borrow = 0;
  std::size_t i = 0;
  for (; i < nb; ++i) {
    const Wide diff = Wide(a[i]) - b[i] - borrow;
    dst[i] = Limb(diff);
    borrow = (diff >> limb_bits<Limb>) & 1u;
  }
  for (; i < na; ++i) {
    const Wide diff = Wide(a[i]) - borrow;
    dst[i] = Limb(diff);
    borrow = (diff >> limb_bits<Limb>) & 1u;
  }
  assert(borrow == 0);
  return normalized_size(dst, na);
}

/// dst = a * w (single-word multiplier). dst capacity na + 1; dst may alias a.
/// Returns normalized result size.
template <LimbType Limb>
constexpr std::size_t mul_word(Limb* dst, const Limb* a, std::size_t na,
                               Limb w) noexcept {
  using Wide = typename LimbTraits<Limb>::Wide;
  Wide carry = 0;
  for (std::size_t i = 0; i < na; ++i) {
    carry += Wide(a[i]) * w;
    dst[i] = Limb(carry);
    carry >>= limb_bits<Limb>;
  }
  if (carry != 0) {
    dst[na] = Limb(carry);
    return normalized_size(dst, na + 1);
  }
  return normalized_size(dst, na);
}

/// dst += a * w where dst has (at least) na + 1 limbs of headroom starting at
/// dst; the carry is propagated into dst[na...] as needed. Inner loop of
/// schoolbook multiplication. dst must not alias a.
template <LimbType Limb>
constexpr void addmul_word(Limb* dst, const Limb* a, std::size_t na,
                           Limb w) noexcept {
  using Wide = typename LimbTraits<Limb>::Wide;
  Wide carry = 0;
  for (std::size_t i = 0; i < na; ++i) {
    carry += Wide(a[i]) * w + dst[i];
    dst[i] = Limb(carry);
    carry >>= limb_bits<Limb>;
  }
  for (std::size_t i = na; carry != 0; ++i) {
    carry += dst[i];
    dst[i] = Limb(carry);
    carry >>= limb_bits<Limb>;
  }
}

/// dst = a * b, schoolbook. dst capacity na + nb, zero-initialized by this
/// function. dst must not alias a or b. Returns normalized size.
template <LimbType Limb>
constexpr std::size_t mul_schoolbook(Limb* dst, const Limb* a, std::size_t na,
                                     const Limb* b, std::size_t nb) noexcept {
  std::fill(dst, dst + na + nb, Limb{0});
  if (na == 0 || nb == 0) return 0;
  for (std::size_t j = 0; j < nb; ++j) {
    if (b[j] != 0) addmul_word(dst + j, a, na, b[j]);
  }
  return normalized_size(dst, na + nb);
}

/// dst = a << bits (whole-number left shift). dst capacity
/// na + bits/limb_bits + 1; dst may alias a only when the limb offset is 0.
/// Returns normalized size.
template <LimbType Limb>
constexpr std::size_t shl(Limb* dst, const Limb* a, std::size_t na,
                          std::size_t bits) noexcept {
  const std::size_t limb_shift = bits / limb_bits<Limb>;
  const int bit_shift = static_cast<int>(bits % limb_bits<Limb>);
  if (na == 0) return 0;
  if (bit_shift == 0) {
    for (std::size_t i = na; i-- > 0;) dst[i + limb_shift] = a[i];
    std::fill(dst, dst + limb_shift, Limb{0});
    return normalized_size(dst, na + limb_shift);
  }
  Limb high = a[na - 1] >> (limb_bits<Limb> - bit_shift);
  dst[na + limb_shift] = high;
  for (std::size_t i = na; i-- > 1;) {
    dst[i + limb_shift] =
        Limb(a[i] << bit_shift) | Limb(a[i - 1] >> (limb_bits<Limb> - bit_shift));
  }
  dst[limb_shift] = Limb(a[0] << bit_shift);
  std::fill(dst, dst + limb_shift, Limb{0});
  return normalized_size(dst, na + limb_shift + 1);
}

/// dst = a >> bits. dst capacity na - bits/limb_bits (if positive); dst may
/// alias a. Returns normalized size.
template <LimbType Limb>
constexpr std::size_t shr(Limb* dst, const Limb* a, std::size_t na,
                          std::size_t bits) noexcept {
  const std::size_t limb_shift = bits / limb_bits<Limb>;
  const int bit_shift = static_cast<int>(bits % limb_bits<Limb>);
  if (limb_shift >= na) return 0;
  const std::size_t n = na - limb_shift;
  if (bit_shift == 0) {
    for (std::size_t i = 0; i < n; ++i) dst[i] = a[i + limb_shift];
    return normalized_size(dst, n);
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    dst[i] = Limb(a[i + limb_shift] >> bit_shift) |
             Limb(a[i + limb_shift + 1] << (limb_bits<Limb> - bit_shift));
  }
  dst[n - 1] = a[na - 1] >> bit_shift;
  return normalized_size(dst, n);
}

/// In-place `rshift(X)` from the paper: strip all trailing zero bits so the
/// result is odd (or zero). Returns the new size.
template <LimbType Limb>
constexpr std::size_t strip_trailing_zeros(Limb* a, std::size_t n) noexcept {
  n = normalized_size(a, n);
  if (n == 0) return 0;
  const std::size_t tz = count_trailing_zero_bits(a, n);
  if (tz == 0) return n;
  return shr(a, a, n, tz);
}

/// Divide by a single word: a = q * w + r. q capacity na (may alias a).
/// Returns the remainder; q size via normalized_size. Requires w != 0.
template <LimbType Limb>
constexpr Limb divrem_word(Limb* q, const Limb* a, std::size_t na,
                           Limb w) noexcept {
  using Wide = typename LimbTraits<Limb>::Wide;
  assert(w != 0);
  Wide rem = 0;
  for (std::size_t i = na; i-- > 0;) {
    const Wide cur = (rem << limb_bits<Limb>) | a[i];
    q[i] = Limb(cur / w);
    rem = cur % w;
  }
  return Limb(rem);
}

struct DivSizes {
  std::size_t quotient;
  std::size_t remainder;
};

/// Knuth Algorithm D: a = q * b + r with 0 <= r < b.
///   q capacity: na - nb + 1 (when na >= nb; untouched otherwise)
///   r capacity: nb
/// Requires b != 0. No aliasing between q/r and a/b; q and r must not alias.
/// Inputs need not be normalized. Returns normalized sizes of q and r.
template <LimbType Limb>
DivSizes divrem(Limb* q, Limb* r, const Limb* a, std::size_t na, const Limb* b,
                std::size_t nb) {
  using Traits = LimbTraits<Limb>;
  using Wide = typename Traits::Wide;
  using WideS = typename Traits::WideS;
  constexpr int LB = limb_bits<Limb>;
  constexpr Wide BASE = limb_base<Limb>;

  na = normalized_size(a, na);
  nb = normalized_size(b, nb);
  assert(nb > 0 && "division by zero");

  if (compare(a, na, b, nb) < 0) {  // q = 0, r = a
    std::copy(a, a + na, r);
    return {0, na};
  }
  if (nb == 1) {
    const Limb rem = divrem_word(q, a, na, b[0]);
    r[0] = rem;
    return {normalized_size(q, na), rem != 0 ? std::size_t{1} : std::size_t{0}};
  }

  // Normalize: shift so the divisor's top limb has its high bit set.
  const int s = std::countl_zero(b[nb - 1]);
  std::vector<Limb> vn(nb + 1);  // +1: shl writes a (zero) spill limb
  std::vector<Limb> un(na + 2);
  shl(vn.data(), b, nb, static_cast<std::size_t>(s));
  un[na] = 0;
  const std::size_t un_size = shl(un.data(), a, na, static_cast<std::size_t>(s));
  (void)un_size;  // un keeps na + 1 slots regardless of normalization

  const std::size_t m = na - nb;
  for (std::size_t jj = m + 1; jj-- > 0;) {
    const std::size_t j = jj;
    // Estimate q̂ from the top two limbs of the running remainder.
    const Wide num = (Wide(un[j + nb]) << LB) | un[j + nb - 1];
    Wide qhat = num / vn[nb - 1];
    Wide rhat = num % vn[nb - 1];
    while (qhat >= BASE ||
           qhat * vn[nb - 2] > ((rhat << LB) | un[j + nb - 2])) {
      --qhat;
      rhat += vn[nb - 1];
      if (rhat >= BASE) break;
    }
    // Multiply-subtract: un[j .. j+nb] -= q̂ * vn.
    Wide carry = 0;
    WideS t = 0;
    for (std::size_t i = 0; i < nb; ++i) {
      const Wide p = qhat * vn[i];
      t = WideS(Wide(un[i + j]) - carry - (p & (BASE - 1)));
      un[i + j] = Limb(t);
      carry = (p >> LB) - Wide(t >> LB);  // t>>LB is 0 or -1 (arith shift)
    }
    t = WideS(Wide(un[j + nb]) - carry);
    un[j + nb] = Limb(t);
    q[j] = Limb(qhat);
    if (t < 0) {  // q̂ was one too large: add the divisor back
      --q[j];
      Wide k = 0;
      for (std::size_t i = 0; i < nb; ++i) {
        k += Wide(un[i + j]) + vn[i];
        un[i + j] = Limb(k);
        k >>= LB;
      }
      un[j + nb] = Limb(Wide(un[j + nb]) + k);
    }
  }

  // Denormalize the remainder.
  const std::size_t rsize = shr(un.data(), un.data(), nb, static_cast<std::size_t>(s));
  std::copy(un.data(), un.data() + rsize, r);
  return {normalized_size(q, m + 1), rsize};
}

}  // namespace bulkgcd::mp
