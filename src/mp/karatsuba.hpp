// Karatsuba multiplication. The batch-GCD product tree multiplies numbers of
// hundreds of thousands of bits where schoolbook's O(n^2) dominates the whole
// pipeline; Karatsuba brings the tree to O(n^1.585) per level.
#pragma once

#include <cstddef>
#include <vector>

#include "mp/span_ops.hpp"

namespace bulkgcd::mp {

/// Below this many limbs (smaller operand) schoolbook wins.
inline constexpr std::size_t kKaratsubaThreshold = 24;

/// Returns a * b as a normalized limb vector.
template <LimbType Limb>
std::vector<Limb> mul_karatsuba(const Limb* a, std::size_t na, const Limb* b,
                                std::size_t nb) {
  na = normalized_size(a, na);
  nb = normalized_size(b, nb);
  if (na == 0 || nb == 0) return {};
  if (std::min(na, nb) < kKaratsubaThreshold) {
    std::vector<Limb> out(na + nb);
    out.resize(mul_schoolbook(out.data(), a, na, b, nb));
    return out;
  }

  const std::size_t h = (std::max(na, nb) + 1) / 2;
  // a = a1 * B^h + a0,  b = b1 * B^h + b0
  const std::size_t na0 = std::min(na, h), na1 = na - na0;
  const std::size_t nb0 = std::min(nb, h), nb1 = nb - nb0;

  std::vector<Limb> z0 = mul_karatsuba(a, na0, b, nb0);
  std::vector<Limb> z2 = mul_karatsuba(a + na0, na1, b + nb0, nb1);

  // (a0 + a1) and (b0 + b1)
  std::vector<Limb> sa(std::max(na0, na1) + 1);
  sa.resize(std::min(sa.size(), add(sa.data(), a, na0, a + na0, na1)));
  std::vector<Limb> sb(std::max(nb0, nb1) + 1);
  sb.resize(std::min(sb.size(), add(sb.data(), b, nb0, b + nb0, nb1)));

  std::vector<Limb> z1 = mul_karatsuba(sa.data(), sa.size(), sb.data(), sb.size());
  // z1 -= z0 + z2 (sub never grows the span; min() keeps that bound visible
  // to the compiler's object-size analysis)
  z1.resize(std::min(z1.size(), sub(z1.data(), z1.data(), z1.size(), z0.data(), z0.size())));
  z1.resize(std::min(z1.size(), sub(z1.data(), z1.data(), z1.size(), z2.data(), z2.size())));

  // result = z2 << 2h limbs  +  z1 << h limbs  +  z0
  std::vector<Limb> out(na + nb, Limb{0});
  std::copy_n(z0.begin(), std::min(z0.size(), out.size()), out.begin());
  // add z1 at offset h, z2 at offset 2h (the tail lengths are clamped so
  // the compiler can see the copies stay in bounds; mathematically
  // out.size() = na + nb always exceeds 2h here)
  const auto add_at = [&out](std::size_t offset, const std::vector<Limb>& z) {
    if (z.empty() || out.size() <= offset) return;
    const std::size_t tail = out.size() - offset;
    std::vector<Limb> tmp(tail + 1, Limb{0});
    (void)add(tmp.data(), out.data() + offset, tail, z.data(), z.size());
    std::copy_n(tmp.begin(), tail, out.begin() + std::ptrdiff_t(offset));
  };
  add_at(h, z1);
  add_at(2 * h, z2);
  out.resize(normalized_size(out.data(), out.size()));
  return out;
}

}  // namespace bulkgcd::mp
