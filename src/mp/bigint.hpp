// Arbitrary-precision unsigned integer built on the span kernels.
//
// BigIntT<Limb> owns a normalized little-endian limb vector (empty == 0).
// The default alias `BigInt` uses 32-bit limbs, the paper's d = 32 word size.
// Heavy inner loops (the GCD family, the SIMT engine) do NOT use this class —
// they run on raw limb buffers via src/gcd and src/bulk; BigInt is the
// convenience layer for RSA, corpus generation, batch GCD and tests.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "mp/limb_traits.hpp"
#include "mp/span_ops.hpp"

namespace bulkgcd::mp {

template <LimbType Limb>
class BigIntT {
 public:
  using limb_type = Limb;
  static constexpr int kLimbBits = limb_bits<Limb>;

  BigIntT() = default;

  /// From a machine word.
  explicit BigIntT(std::uint64_t value) {
    while (value != 0) {
      limbs_.push_back(Limb(value));
      if constexpr (kLimbBits >= 64) {
        value = 0;
      } else {
        value >>= kLimbBits;
      }
    }
  }

  /// From little-endian limbs (normalizes).
  static BigIntT from_limbs(std::span<const Limb> limbs) {
    BigIntT out;
    out.limbs_.assign(limbs.begin(), limbs.end());
    out.trim();
    return out;
  }

  /// Parse "0x..."-optional hex. Throws std::invalid_argument on bad input.
  static BigIntT from_hex(std::string_view text);
  /// Parse decimal. Throws std::invalid_argument on bad input.
  static BigIntT from_dec(std::string_view text);

  std::string to_hex() const;
  std::string to_dec() const;
  /// The paper's comma-grouped binary rendering, e.g. "1101,1111".
  std::string to_binary_grouped(std::size_t group = 4) const;

  bool is_zero() const noexcept { return limbs_.empty(); }
  bool is_odd() const noexcept { return !limbs_.empty() && (limbs_[0] & 1u); }
  bool is_even() const noexcept { return !is_odd(); }

  std::size_t size() const noexcept { return limbs_.size(); }
  std::size_t bit_length() const noexcept {
    return mp::bit_length(limbs_.data(), limbs_.size());
  }
  bool bit(std::size_t i) const noexcept {
    return mp::get_bit(limbs_.data(), limbs_.size(), i);
  }
  std::size_t trailing_zero_bits() const noexcept {
    return is_zero() ? 0
                     : mp::count_trailing_zero_bits(limbs_.data(), limbs_.size());
  }

  const Limb* data() const noexcept { return limbs_.data(); }
  std::span<const Limb> limbs() const noexcept { return limbs_; }
  Limb limb(std::size_t i) const noexcept {
    return i < limbs_.size() ? limbs_[i] : Limb{0};
  }

  /// Low 64 bits of the value.
  std::uint64_t to_u64() const noexcept {
    std::uint64_t out = 0;
    const std::size_t n = 64 / kLimbBits == 0 ? 1 : 64 / kLimbBits;
    for (std::size_t i = 0; i < n && i < limbs_.size(); ++i) {
      out |= std::uint64_t(limbs_[i]) << (i * kLimbBits);
    }
    return out;
  }

  friend bool operator==(const BigIntT& a, const BigIntT& b) noexcept {
    return a.limbs_ == b.limbs_;
  }
  friend std::strong_ordering operator<=>(const BigIntT& a, const BigIntT& b) noexcept {
    const int c = compare(a.limbs_.data(), a.limbs_.size(), b.limbs_.data(),
                          b.limbs_.size());
    return c < 0   ? std::strong_ordering::less
           : c > 0 ? std::strong_ordering::greater
                   : std::strong_ordering::equal;
  }

  BigIntT& operator+=(const BigIntT& other);
  BigIntT& operator-=(const BigIntT& other);  ///< requires *this >= other
  BigIntT& operator<<=(std::size_t bits);
  BigIntT& operator>>=(std::size_t bits);

  friend BigIntT operator+(BigIntT a, const BigIntT& b) { return a += b; }
  friend BigIntT operator-(BigIntT a, const BigIntT& b) { return a -= b; }
  friend BigIntT operator<<(BigIntT a, std::size_t bits) { return a <<= bits; }
  friend BigIntT operator>>(BigIntT a, std::size_t bits) { return a >>= bits; }

  friend BigIntT operator*(const BigIntT& a, const BigIntT& b) { return mul(a, b); }
  friend BigIntT operator/(const BigIntT& a, const BigIntT& b) {
    return divmod(a, b).first;
  }
  friend BigIntT operator%(const BigIntT& a, const BigIntT& b) {
    return divmod(a, b).second;
  }

  /// Product; dispatches to Karatsuba above a size threshold.
  static BigIntT mul(const BigIntT& a, const BigIntT& b);
  /// (quotient, remainder); throws std::domain_error on division by zero.
  static std::pair<BigIntT, BigIntT> divmod(const BigIntT& a, const BigIntT& b);

  /// Strip trailing zero bits — the paper's rshift(X).
  BigIntT& strip_trailing_zeros() {
    limbs_.resize(mp::strip_trailing_zeros(limbs_.data(), limbs_.size()));
    return *this;
  }

 private:
  void trim() { limbs_.resize(normalized_size(limbs_.data(), limbs_.size())); }

  std::vector<Limb> limbs_;  // little-endian, normalized
};

using BigInt = BigIntT<std::uint32_t>;
using BigInt16 = BigIntT<std::uint16_t>;
using BigInt64 = BigIntT<std::uint64_t>;

extern template class BigIntT<std::uint16_t>;
extern template class BigIntT<std::uint32_t>;
extern template class BigIntT<std::uint64_t>;

}  // namespace bulkgcd::mp
