// Limb-type traits. The paper stores numbers in d-bit words and performs the
// quotient approximation with one 2d-bit division; parameterizing every kernel
// on the limb type gives the d = 16/32/64 ablation (bench_ablation_wordsize)
// while d = 32 (the paper's choice) remains the library default.
#pragma once

#include <bit>
#include <cstdint>
#include <type_traits>

namespace bulkgcd::mp {

template <typename Limb>
struct LimbTraits;

template <>
struct LimbTraits<std::uint16_t> {
  using Wide = std::uint32_t;          ///< holds a 2d-bit value
  using WideS = std::int32_t;          ///< signed 2d-bit (Knuth D borrow math)
  static constexpr int bits = 16;
};

template <>
struct LimbTraits<std::uint32_t> {
  using Wide = std::uint64_t;
  using WideS = std::int64_t;
  static constexpr int bits = 32;
};

template <>
struct LimbTraits<std::uint64_t> {
  __extension__ using Wide = unsigned __int128;
  __extension__ using WideS = __int128;
  static constexpr int bits = 64;
};

template <typename Limb>
concept LimbType = requires { typename LimbTraits<Limb>::Wide; } &&
                   std::is_unsigned_v<Limb>;

template <LimbType Limb>
inline constexpr int limb_bits = LimbTraits<Limb>::bits;

/// 2^d as a Wide value ("D" in the paper).
template <LimbType Limb>
inline constexpr typename LimbTraits<Limb>::Wide limb_base =
    typename LimbTraits<Limb>::Wide{1} << limb_bits<Limb>;

}  // namespace bulkgcd::mp
