#include "mp/bigint.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "mp/toom3.hpp"

namespace bulkgcd::mp {

namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

template <LimbType Limb>
BigIntT<Limb> BigIntT<Limb>::from_hex(std::string_view text) {
  if (text.starts_with("0x") || text.starts_with("0X")) text.remove_prefix(2);
  if (text.empty()) throw std::invalid_argument("BigInt::from_hex: empty input");
  BigIntT out;
  for (char c : text) {
    if (c == '_' || c == ',') continue;  // allow visual grouping
    const int digit = hex_digit(c);
    if (digit < 0) throw std::invalid_argument("BigInt::from_hex: bad digit");
    out <<= 4;
    if (digit != 0) {
      if (out.limbs_.empty()) out.limbs_.push_back(Limb{0});
      out.limbs_[0] |= Limb(digit);
    }
  }
  return out;
}

template <LimbType Limb>
BigIntT<Limb> BigIntT<Limb>::from_dec(std::string_view text) {
  if (text.empty()) throw std::invalid_argument("BigInt::from_dec: empty input");
  BigIntT out;
  for (char c : text) {
    if (c == '_' || c == ',') continue;
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      throw std::invalid_argument("BigInt::from_dec: bad digit");
    }
    // out = out * 10 + digit
    std::vector<Limb> tmp(out.limbs_.size() + 1);
    tmp.resize(mul_word(tmp.data(), out.limbs_.data(), out.limbs_.size(), Limb{10}));
    out.limbs_ = std::move(tmp);
    const Limb digit = Limb(c - '0');
    if (digit != 0) {
      const Limb d[1] = {digit};
      out.limbs_.resize(out.limbs_.size() + 1);
      out.limbs_.resize(add(out.limbs_.data(), out.limbs_.data(),
                            out.limbs_.size() - 1, d, 1));
    }
  }
  return out;
}

template <LimbType Limb>
std::string BigIntT<Limb>::to_hex() const {
  if (is_zero()) return "0";
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(limbs_.size() * std::size_t(kLimbBits / 4));
  bool leading = true;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = kLimbBits - 4; shift >= 0; shift -= 4) {
      const int nibble = int((limbs_[i] >> shift) & 0xF);
      if (leading && nibble == 0) continue;
      leading = false;
      out.push_back(kDigits[nibble]);
    }
  }
  return out;
}

template <LimbType Limb>
std::string BigIntT<Limb>::to_dec() const {
  if (is_zero()) return "0";
  std::vector<Limb> work(limbs_);
  std::string out;
  // Peel off the largest power of ten fitting a limb per division.
  constexpr int kDigitsPerChunk = kLimbBits == 16 ? 4 : kLimbBits == 32 ? 9 : 19;
  Limb chunk_div = 1;
  for (int i = 0; i < kDigitsPerChunk; ++i) chunk_div = Limb(chunk_div * 10);
  while (!work.empty()) {
    const Limb rem = divrem_word(work.data(), work.data(), work.size(), chunk_div);
    work.resize(normalized_size(work.data(), work.size()));
    std::uint64_t r = rem;
    for (int i = 0; i < kDigitsPerChunk; ++i) {
      out.push_back(char('0' + r % 10));
      r /= 10;
    }
  }
  while (out.size() > 1 && out.back() == '0') out.pop_back();
  std::reverse(out.begin(), out.end());
  return out;
}

template <LimbType Limb>
std::string BigIntT<Limb>::to_binary_grouped(std::size_t group) const {
  if (is_zero()) return "0";
  // Pad to a whole number of groups, as the paper prints d-bit words
  // ("0100,0011,0010,0001" keeps the leading zero of its top nibble).
  const std::size_t bits = (bit_length() + group - 1) / group * group;
  std::string out;
  for (std::size_t i = bits; i-- > 0;) {
    out.push_back(bit(i) ? '1' : '0');
    if (i != 0 && i % group == 0) out.push_back(',');
  }
  return out;
}

template <LimbType Limb>
BigIntT<Limb>& BigIntT<Limb>::operator+=(const BigIntT& other) {
  limbs_.resize(std::max(limbs_.size(), other.limbs_.size()) + 1, Limb{0});
  limbs_.resize(add(limbs_.data(), limbs_.data(), limbs_.size() - 1,
                    other.limbs_.data(), other.limbs_.size()));
  return *this;
}

template <LimbType Limb>
BigIntT<Limb>& BigIntT<Limb>::operator-=(const BigIntT& other) {
  if (*this < other) throw std::domain_error("BigInt subtraction underflow");
  limbs_.resize(sub(limbs_.data(), limbs_.data(), limbs_.size(),
                    other.limbs_.data(), other.limbs_.size()));
  return *this;
}

template <LimbType Limb>
BigIntT<Limb>& BigIntT<Limb>::operator<<=(std::size_t bits) {
  if (is_zero() || bits == 0) return *this;
  std::vector<Limb> out(limbs_.size() + bits / kLimbBits + 1);
  out.resize(shl(out.data(), limbs_.data(), limbs_.size(), bits));
  limbs_ = std::move(out);
  return *this;
}

template <LimbType Limb>
BigIntT<Limb>& BigIntT<Limb>::operator>>=(std::size_t bits) {
  if (is_zero() || bits == 0) return *this;
  limbs_.resize(shr(limbs_.data(), limbs_.data(), limbs_.size(), bits));
  return *this;
}

template <LimbType Limb>
BigIntT<Limb> BigIntT<Limb>::mul(const BigIntT& a, const BigIntT& b) {
  BigIntT out;
  if (a.is_zero() || b.is_zero()) return out;
  if (std::min(a.size(), b.size()) >= kKaratsubaThreshold) {
    // mul_dispatch climbs the full ladder: Karatsuba here, Toom-3 once both
    // operands clear kToom3Threshold (the batch-GCD tree regime).
    out.limbs_ = mul_dispatch(a.limbs_.data(), a.size(), b.limbs_.data(), b.size());
    return out;
  }
  out.limbs_.resize(a.size() + b.size());
  out.limbs_.resize(mul_schoolbook(out.limbs_.data(), a.limbs_.data(), a.size(),
                                   b.limbs_.data(), b.size()));
  return out;
}

template <LimbType Limb>
std::pair<BigIntT<Limb>, BigIntT<Limb>> BigIntT<Limb>::divmod(const BigIntT& a,
                                                              const BigIntT& b) {
  if (b.is_zero()) throw std::domain_error("BigInt division by zero");
  BigIntT q, r;
  if (a < b) {
    r = a;
    return {std::move(q), std::move(r)};
  }
  q.limbs_.resize(a.size() - b.size() + 1);
  r.limbs_.resize(b.size());
  const DivSizes sizes = divrem(q.limbs_.data(), r.limbs_.data(), a.limbs_.data(),
                                a.size(), b.limbs_.data(), b.size());
  q.limbs_.resize(sizes.quotient);
  r.limbs_.resize(sizes.remainder);
  return {std::move(q), std::move(r)};
}

template class BigIntT<std::uint16_t>;
template class BigIntT<std::uint32_t>;
template class BigIntT<std::uint64_t>;

}  // namespace bulkgcd::mp
