// Bounded MPMC admission queue with explicit backpressure — the buffering
// element between intake connections and the probe worker of the streaming
// service (docs/INTAKE_SERVICE.md).
//
// Capacity is a hard limit: try_push on a full queue returns false
// immediately (the caller sheds the item and counts it) instead of blocking
// the submitting connection or growing without bound. This is deliberately
// NOT ThreadPool::submit's unbounded queue: a service drowning in arrivals
// must refuse visibly, not buffer invisibly until the process dies.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace bulkgcd::svc {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  std::size_t capacity() const noexcept { return capacity_; }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  /// Admit one item. Returns false — without blocking — when the queue is
  /// full (shed) or closed (shutting down); the item is untouched then.
  bool try_push(T&& item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocking pop: waits for an item or close. Returns false only when the
  /// queue is closed AND drained — the consumer's exit condition.
  bool pop(T& out) {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Non-blocking pop, used to top up a batch after the blocking first item.
  bool try_pop(T& out) {
    std::lock_guard lock(mutex_);
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Stop admitting; wake every blocked consumer. Items already queued stay
  /// poppable (drain-on-shutdown). Idempotent.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace bulkgcd::svc
