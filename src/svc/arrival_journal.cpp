#include "svc/arrival_journal.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>

namespace bulkgcd::svc {

namespace {

// ---- journal wire format (docs/INTAKE_SERVICE.md) -------------------------
// Same discipline as the scan checkpoint journal (bulk/scan_driver.cpp): all
// integers little-endian, fixed header, appended records, torn tail dropped
// on resume. Record order invariants (docs/INTAKE_SERVICE.md):
//   - arrival seqs are dense and file-ordered (the admission gate assigns
//     and journals them under one lock);
//   - a retract record immediately follows its arrival logically (same
//     lock), so it always targets the newest arrival;
//   - probed(seq) appears after arrival(seq) — the worker only sees a key
//     after the gate journaled it.
// Any record breaking these is treated as corruption: the tail from it on
// is dropped, exactly like a torn write.

constexpr char kMagic[8] = {'B', 'G', 'C', 'D', 'A', 'R', 'J', '1'};
constexpr std::uint8_t kRecordArrival = 1;
constexpr std::uint8_t kRecordProbed = 2;
constexpr std::uint8_t kRecordRetract = 3;
constexpr std::size_t kHeaderSize = 8 + 2 * 8;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(char((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(char((v >> (8 * i)) & 0xff));
}

/// Bounds-checked sequential reader over the journal bytes.
struct Cursor {
  const unsigned char* data;
  std::size_t size;
  std::size_t pos = 0;

  bool u8(std::uint8_t& v) {
    if (pos + 1 > size) return false;
    v = data[pos++];
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (pos + 4 > size) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(data[pos++]) << (8 * i);
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (pos + 8 > size) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(data[pos++]) << (8 * i);
    return true;
  }
};

/// Values are journaled as canonical little-endian bytes — exactly
/// (bit_length + 7) / 8 of them, the same encoding rsa::modulus_fingerprint
/// hashes — so journals are portable across limb-width builds.
void put_bigint(std::string& out, const mp::BigInt& n) {
  const auto limbs = n.limbs();
  const std::size_t bytes = (n.bit_length() + 7) / 8;
  put_u32(out, std::uint32_t(bytes));
  for (std::size_t b = 0; b < bytes; ++b) {
    out.push_back(char((limbs[b / 4] >> (8 * (b % 4))) & 0xff));
  }
}

bool get_bigint(Cursor& c, mp::BigInt& n) {
  std::uint32_t nbytes = 0;
  if (!c.u32(nbytes) || c.pos + nbytes > c.size) return false;
  std::vector<std::uint32_t> limbs((nbytes + 3) / 4, 0);
  for (std::uint32_t b = 0; b < nbytes; ++b) {
    limbs[b / 4] |= std::uint32_t(c.data[c.pos++]) << (8 * (b % 4));
  }
  n = mp::BigInt::from_limbs(limbs);
  return true;
}

std::string read_file_bytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

}  // namespace

ArrivalJournal::ArrivalJournal(std::filesystem::path path,
                               std::uint64_t seed_digest,
                               std::uint64_t seed_count,
                               std::size_t fsync_every)
    : path_(std::move(path)),
      fsync_every_(std::max<std::size_t>(1, fsync_every)) {
  std::error_code ec;
  bool fresh = !std::filesystem::exists(path_, ec) ||
               std::filesystem::file_size(path_, ec) == 0;
  if (!fresh && std::filesystem::file_size(path_, ec) < kHeaderSize) {
    // A crash during creation can tear the header itself. If what's there is
    // a prefix of our magic it's our own torn file — start over; anything
    // else is somebody's data and gets the bad-magic refusal below.
    const std::string bytes = read_file_bytes(path_);
    if (std::memcmp(bytes.data(), kMagic,
                    std::min(bytes.size(), sizeof(kMagic))) == 0) {
      fresh = true;
    }
  }
  if (fresh) {
    file_ = std::fopen(path_.string().c_str(), "wb");
    if (!file_) {
      throw std::runtime_error("arrival_journal: cannot write " +
                               path_.string());
    }
    std::string header(kMagic, sizeof(kMagic));
    put_u64(header, seed_digest);
    put_u64(header, seed_count);
    write_record(header);
    flush_and_sync_locked();
    return;
  }

  const std::string bytes = read_file_bytes(path_);
  Cursor c{reinterpret_cast<const unsigned char*>(bytes.data()), bytes.size()};
  if (bytes.size() < kHeaderSize ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("arrival_journal: " + path_.string() +
                             " is not an arrival journal (bad magic)");
  }
  c.pos = sizeof(kMagic);
  std::uint64_t got_digest = 0, got_count = 0;
  c.u64(got_digest);
  c.u64(got_count);
  if (got_digest != seed_digest || got_count != seed_count) {
    // Replaying someone else's arrivals would mis-index every journaled hit
    // against this seed — refuse loudly rather than resume wrongly.
    throw std::runtime_error("arrival_journal: " + path_.string() +
                             " was written for a different seed corpus "
                             "(digest/count mismatch)");
  }

  auto& arrivals = replay_.arrivals;
  replay_.good_offset = c.pos;
  while (c.pos < c.size) {
    std::uint8_t kind = 0;
    std::uint64_t seq = 0;
    if (!c.u8(kind) || !c.u64(seq)) break;
    if (kind == kRecordArrival) {
      mp::BigInt value;
      if (seq != arrivals.size() || !get_bigint(c, value)) break;
      ReplayedArrival arrival;
      arrival.value = std::move(value);
      arrivals.push_back(std::move(arrival));
    } else if (kind == kRecordProbed) {
      std::uint32_t nhits = 0;
      if (seq >= arrivals.size() || arrivals[seq].probed || !c.u32(nhits)) {
        break;
      }
      std::vector<std::pair<std::uint64_t, mp::BigInt>> hits(nhits);
      bool ok = true;
      for (auto& [i, factor] : hits) {
        if (!c.u64(i) || !get_bigint(c, factor)) {
          ok = false;
          break;
        }
      }
      if (!ok) break;
      arrivals[seq].probed = true;
      arrivals[seq].hits = std::move(hits);
    } else if (kind == kRecordRetract) {
      // A shed submission: the gate journaled the arrival, then the queue
      // refused it. Always the newest arrival, never a probed one.
      if (arrivals.empty() || seq != arrivals.size() - 1 ||
          arrivals.back().probed) {
        break;
      }
      arrivals.pop_back();
    } else {
      break;  // unknown record kind: treat as corruption, drop the tail
    }
    replay_.good_offset = c.pos;  // full record parsed: advance the keep-mark
  }

  // The worker probes strictly in arrival order, so probed records form a
  // seq prefix. Enforce it: past the first unprobed arrival everything is
  // tail — journaled hits there (possible only in a corrupt journal) are
  // discarded and those keys re-probed, which reproduces the same hits.
  bool prefix = true;
  for (auto& arrival : arrivals) {
    prefix = prefix && arrival.probed;
    if (!prefix && arrival.probed) {
      arrival.probed = false;
      arrival.hits.clear();
    }
  }

  // Drop the torn tail before appending so the next reader never sees a
  // partial record followed by complete ones.
  const auto actual = std::filesystem::file_size(path_, ec);
  if (!ec && actual > replay_.good_offset) {
    std::filesystem::resize_file(path_, replay_.good_offset);
  }
  file_ = std::fopen(path_.string().c_str(), "ab");
  if (!file_) {
    throw std::runtime_error("arrival_journal: cannot append to " +
                             path_.string());
  }
}

ArrivalJournal::~ArrivalJournal() {
  if (file_) {
    std::fflush(file_);
    ::fsync(::fileno(file_));
    std::fclose(file_);
  }
}

ArrivalReplay ArrivalJournal::take_replay() { return std::move(replay_); }

void ArrivalJournal::append_arrival(std::uint64_t seq,
                                    const mp::BigInt& value) {
  std::string out;
  out.push_back(char(kRecordArrival));
  put_u64(out, seq);
  put_bigint(out, value);
  std::lock_guard lock(mutex_);
  write_record(out);
  if (++commits_since_sync_ >= fsync_every_) flush_and_sync_locked();
}

void ArrivalJournal::append_probed(std::uint64_t seq,
                                   std::span<const bulk::FactorHit> hits) {
  std::string out;
  out.push_back(char(kRecordProbed));
  put_u64(out, seq);
  put_u32(out, std::uint32_t(hits.size()));
  for (const auto& hit : hits) {
    put_u64(out, hit.i);
    put_bigint(out, hit.factor);
  }
  std::lock_guard lock(mutex_);
  write_record(out);
  if (++commits_since_sync_ >= fsync_every_) flush_and_sync_locked();
}

void ArrivalJournal::append_retract(std::uint64_t seq) {
  std::string out;
  out.push_back(char(kRecordRetract));
  put_u64(out, seq);
  std::lock_guard lock(mutex_);
  write_record(out);
  if (++commits_since_sync_ >= fsync_every_) flush_and_sync_locked();
}

void ArrivalJournal::flush() {
  std::lock_guard lock(mutex_);
  flush_and_sync_locked();
}

void ArrivalJournal::write_record(const std::string& bytes) {
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    throw std::runtime_error("arrival_journal: write failed: " +
                             path_.string());
  }
}

void ArrivalJournal::flush_and_sync_locked() {
  if (std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
    throw std::runtime_error("arrival_journal: fsync failed: " +
                             path_.string());
  }
  commits_since_sync_ = 0;
}

}  // namespace bulkgcd::svc
