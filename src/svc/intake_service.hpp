// Streaming key-intake service — the long-running front end the ROADMAP's
// north star names, built Click-style as a pipeline of small elements
// (docs/INTAKE_SERVICE.md has the element graph):
//
//   parse (svc/intake_parser) → dedup (limb-hash set, exact-verify) →
//   arrival journal (svc/arrival_journal, durable before probed) →
//   bounded admission queue (svc/bounded_queue, shed on overflow) →
//   batch accumulator → probe (bulk::probe_incremental over the live
//   staged corpus, new×corpus block columns on the configured backend) →
//   corpus fold → hit report
//
// Each newly admitted key is probed against every modulus that arrived
// before it (seed corpus + earlier arrivals), then folded into the corpus —
// so a streamed corpus covers exactly the pair set a one-shot all_pairs_gcd
// over the same list covers, pair by pair, GCD by GCD (asserted bit-identical
// in tests/svc_test.cpp). Overload is observable, not fatal: a full queue
// sheds the submission with Admission::kShed and a counter, never blocks the
// submitting connection, and never buffers unboundedly.
//
// With a journal configured, the invariant extends across process death:
// every admitted key is durable before it is probed, and a restarted service
// replays the journal — probed arrivals re-fold with their journaled hits,
// the unprobed tail re-enters the probe path — so crash + restart + resume
// yields the same FactorHit set as one uninterrupted stream.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bulk/allpairs.hpp"
#include "bulk/scan_driver.hpp"
#include "bulk/staged_corpus.hpp"
#include "svc/arrival_journal.hpp"
#include "svc/bounded_queue.hpp"

namespace bulkgcd::obs {
class MetricsRegistry;
}

namespace bulkgcd::svc {

/// Outcome of one submission, decided synchronously at the admission gate.
enum class Admission {
  kAdmitted,   ///< queued; will be probed and folded into the corpus
  kDuplicate,  ///< exact modulus already seen (seed, folded, or in flight)
  kShed,       ///< admission queue full — overload backpressure, try later
  kClosed,     ///< service is shutting down
};

struct IntakeServiceConfig {
  /// Engine/backend/threads for the probe element. pool_threads follows the
  /// all_pairs_gcd contract (1 = inline on the probe worker, 0 = global
  /// pool, N = private pool). metrics (if set) also feeds the intake_*
  /// counters and queue-depth gauges.
  bulk::AllPairsConfig probe;
  /// Admission queue capacity — the only buffer between intake connections
  /// and the probe worker. Full ⇒ shed.
  std::size_t queue_capacity = 1024;
  /// Max keys the batch accumulator hands the probe element per wakeup.
  std::size_t batch_max = 64;
  /// Durable arrival journal (svc/arrival_journal.hpp). Empty = off. An
  /// existing journal at this path must have been written for the same seed
  /// corpus (the constructor throws otherwise); its arrivals are replayed
  /// before the worker starts.
  std::filesystem::path journal_path;
  /// Journal fsync cadence: flush + fsync every N appended records. 1 (the
  /// default) makes every admission durable before submit() returns.
  std::size_t journal_fsync_every = 1;
  /// Hit sink (bulk::ProgressSink::on_hit, called from the probe worker
  /// thread). FactorHit::i is the index of the earlier corpus member,
  /// FactorHit::j the index the new key was folded at. Hits restored from
  /// the journal at construction are NOT re-reported — the sink sees each
  /// hit at most once per discovery, not once per process lifetime.
  bulk::ProgressSink* sink = nullptr;
  /// Test/fault-injection hook, called by the probe worker before each
  /// batch (like ScanConfig::chunk_hook). Exceptions are not caught.
  std::function<void(std::size_t batch_keys)> batch_hook;
};

/// Monotonic totals over the service lifetime. Mirrored into intake_*
/// metrics when a registry is configured (docs/OBSERVABILITY.md). The four
/// gate outcomes partition the gate's decisions exactly:
/// submitted == admitted + duplicates + shed + closed (test-asserted).
struct IntakeStats {
  std::uint64_t submitted = 0;   ///< submit() calls
  std::uint64_t admitted = 0;    ///< entered the queue
  std::uint64_t duplicates = 0;  ///< rejected by the dedup element
  std::uint64_t shed = 0;        ///< rejected by the full queue
  std::uint64_t closed = 0;      ///< rejected because the service stopped
  std::uint64_t probed = 0;      ///< keys probed + folded into the corpus
  std::uint64_t pairs = 0;       ///< candidate×corpus GCDs executed
  std::uint64_t batches = 0;     ///< probe-element wakeups with work
  std::uint64_t hits = 0;        ///< shared-factor hits reported
  /// Journal replay at construction: arrivals re-folded from their probed
  /// records (no GCDs re-run) and unprobed-tail arrivals re-queued for
  /// probing. Both are set once, before the worker starts; resumed keys
  /// flow into probed/pairs/hits as the worker re-probes them.
  std::uint64_t restored = 0;
  std::uint64_t resumed = 0;
};

class IntakeService {
 public:
  /// Starts the probe worker. `seed_corpus` is the already-scanned base the
  /// stream grows from (arrivals are probed against it but seed-internal
  /// pairs are assumed covered by a prior batch scan). Throws
  /// std::runtime_error when config.journal_path names a journal written
  /// for a different seed corpus.
  IntakeService(std::vector<mp::BigInt> seed_corpus,
                IntakeServiceConfig config);
  ~IntakeService();  ///< stop(/*drain=*/true)

  IntakeService(const IntakeService&) = delete;
  IntakeService& operator=(const IntakeService&) = delete;

  /// Admission gate: dedup check + journal append + bounded enqueue.
  /// Thread-safe, never blocks on the probe element. The returned verdict
  /// is final except for kShed, which a client may retry after backoff.
  /// kAdmitted with a journal configured means the key is on disk.
  ///
  /// flow_id (optional) is a trace flow minted by the caller at parse time
  /// (obs::TraceRecorder::next_flow_id); when config.probe.trace is set and
  /// the id is nonzero, the arrival's journal append, queue admission,
  /// probe, and corpus fold all carry it, stitching the arrival into one
  /// connected chain in the exported timeline. 0 = no flow (default).
  Admission submit(const mp::BigInt& n, std::uint64_t flow_id = 0);

  /// Close intake, drain the queue through the probe element (every
  /// already-admitted key is still probed and folded), join the worker.
  /// Idempotent; submissions after stop() return kClosed.
  void stop();

  IntakeStats stats() const;
  std::size_t queue_depth() const { return queue_.size(); }

  /// Snapshot of the accumulated hit list (sorted by (i, j)). Indices refer
  /// to corpus() order: seed first, then arrivals in fold order. Includes
  /// hits restored from the journal.
  std::vector<bulk::FactorHit> hits() const;
  /// Snapshot of the accumulated corpus (seed + folded arrivals).
  std::vector<mp::BigInt> corpus() const;
  std::size_t corpus_size() const;

 private:
  /// A key in flight between the admission gate and the probe worker. seq
  /// is the dense arrival number the journal indexes by (assigned under
  /// dedup_mutex_ whether or not a journal is configured).
  struct PendingKey {
    std::uint64_t seq = 0;
    mp::BigInt value;
    /// Trace flow id following this arrival through the pipeline (0 = none).
    /// Replayed-tail arrivals mint a fresh flow at construction.
    std::uint64_t flow = 0;
  };

  void worker_loop();
  void probe_batch(std::vector<PendingKey>& batch);
  void replay_journal();
  std::uint64_t fingerprint(const mp::BigInt& n) const noexcept;

  IntakeServiceConfig config_;
  BoundedQueue<PendingKey> queue_;

  // Dedup element: 64-bit FNV-1a fingerprint (rsa::modulus_fingerprint, the
  // canonical-byte scheme shared with the keystore loader and the journal)
  // resolved exactly — colliding fingerprints fall back to value comparison,
  // so a hash collision can never drop a genuinely new key.
  mutable std::mutex dedup_mutex_;
  std::unordered_map<std::uint64_t, std::vector<mp::BigInt>> seen_;
  std::uint64_t next_seq_ = 0;  ///< next arrival seq (dense, journal-indexed)
  bool closed_ = false;

  // Corpus + hits: appended only by the probe worker; guarded for snapshot
  // readers. The probe itself runs on the staged corpus without the lock
  // (only the worker appends, and only behind it). corpus_ is the BigInt
  // snapshot readers copy; staged_ is the live repacked+panel-staged form
  // the probe rides (bulk/staged_corpus.hpp) — grown append-by-append so no
  // arrival pays an O(corpus) re-staging.
  mutable std::mutex state_mutex_;
  std::vector<mp::BigInt> corpus_;
  std::vector<bulk::FactorHit> hits_;
  std::optional<bulk::StagedCorpus> staged_;  ///< worker + ctor only
  std::size_t seed_count_ = 0;

  std::unique_ptr<ArrivalJournal> journal_;
  /// Journal arrivals that were never probed, re-queued for the worker at
  /// construction (consumed before the live queue; worker-only after ctor).
  /// A separate lane — not the BoundedQueue — so a long tail can never be
  /// shed by the admission capacity it already passed once.
  std::deque<PendingKey> replay_tail_;

  struct Telemetry;  ///< intake_* metric handles (null-registry safe)
  std::unique_ptr<Telemetry> tele_;
  struct TraceHooks;  ///< interned trace event ids (null-recorder safe)
  std::unique_ptr<TraceHooks> trace_;

  mutable std::mutex stats_mutex_;
  IntakeStats stats_;

  std::thread worker_;
};

}  // namespace bulkgcd::svc
