// Durable arrival journal for the streaming intake service — the element
// that makes a streamed corpus survive a crash (docs/INTAKE_SERVICE.md).
//
// Same record discipline as the scan checkpoint journal (docs/SCAN_DRIVER.md):
// append-only file, fixed header binding the journal to the seed corpus,
// little-endian integers, fsync cadence, and torn-tail tolerance — a crash
// mid-write leaves a partial final record that the next open parses past,
// truncates, and appends over. Two record kinds:
//
//   arrival(seq, value)      — written by the admission gate the moment a key
//                              enters the queue: the key is durable before it
//                              is probed.
//   probed(seq, hits)        — written by the probe worker after the key is
//                              probed and folded: the arrival's pair coverage
//                              is settled. Hit factors are journaled as
//                              canonical little-endian bytes (limb-width
//                              portable); the fold index j and the
//                              full_modulus flag are recomputed on replay
//                              (j = seed_count + seq).
//
// Replay rebuilds exactly the state a restarted service needs: probed
// arrivals re-fold with their journaled hits (no GCDs re-run), the unprobed
// tail re-enters the probe path — so streamed-then-restarted coverage equals
// one uninterrupted stream, pair for pair (asserted in tests/svc_test.cpp).
#pragma once

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <span>
#include <vector>

#include "bulk/allpairs.hpp"
#include "mp/bigint.hpp"

namespace bulkgcd::svc {

/// One arrival reconstructed from the journal, in arrival-seq order.
struct ReplayedArrival {
  mp::BigInt value;
  /// A probed record was found (and every earlier arrival is probed too):
  /// the hits below are authoritative and the key needs no re-probe.
  bool probed = false;
  /// Journaled hits of this arrival's probe: index of the earlier corpus
  /// member + shared factor. j and full_modulus are the caller's to derive.
  std::vector<std::pair<std::uint64_t, mp::BigInt>> hits;
};

/// Everything parsed from an existing journal at open.
struct ArrivalReplay {
  std::vector<ReplayedArrival> arrivals;
  /// File prefix that parsed cleanly; bytes past it (torn tail) were
  /// truncated before the journal reopened for append.
  std::size_t good_offset = 0;
};

/// Open-for-append arrival journal bound to one seed corpus identity.
/// Thread-safe: the admission gate and the probe worker append concurrently
/// (each append is one locked write; record bytes never interleave).
class ArrivalJournal {
 public:
  /// Opens `path`, creating it with a fresh header when absent or empty.
  /// An existing journal must carry the same seed identity — digest
  /// (rsa::corpus_digest over the seed) and count — else this throws
  /// std::runtime_error: replaying someone else's arrivals into this corpus
  /// would silently mis-index every hit. On a match, all complete records
  /// are parsed (take_replay()), the torn tail is truncated, and the file is
  /// positioned for append.
  ArrivalJournal(std::filesystem::path path, std::uint64_t seed_digest,
                 std::uint64_t seed_count, std::size_t fsync_every = 1);
  ~ArrivalJournal();

  ArrivalJournal(const ArrivalJournal&) = delete;
  ArrivalJournal& operator=(const ArrivalJournal&) = delete;

  /// The state parsed at open; meaningful once, immediately after
  /// construction (moves the arrivals out).
  ArrivalReplay take_replay();

  /// Journal one admitted key. seq must be the arrival's dense 0-based
  /// sequence number (the caller assigns them in admission order).
  void append_arrival(std::uint64_t seq, const mp::BigInt& value);

  /// Journal the probe outcome of arrival `seq`. Only FactorHit::i and
  /// ::factor are persisted; j/full_modulus are derivable on replay.
  void append_probed(std::uint64_t seq,
                     std::span<const bulk::FactorHit> hits);

  /// Undo the newest arrival record: the admission queue shed the key after
  /// the gate journaled it. `seq` must be the seq just passed to
  /// append_arrival; on replay the pair cancels out, so shed keys are never
  /// resurrected into the corpus.
  void append_retract(std::uint64_t seq);

  /// Flush + fsync anything buffered (also done by the destructor).
  void flush();

 private:
  void write_record(const std::string& bytes);
  void flush_and_sync_locked();

  std::filesystem::path path_;
  std::size_t fsync_every_;
  ArrivalReplay replay_;
  std::mutex mutex_;
  std::FILE* file_ = nullptr;
  std::size_t commits_since_sync_ = 0;
};

}  // namespace bulkgcd::svc
