#include "svc/intake_parser.hpp"

#include <cctype>
#include <stdexcept>

#include "rsa/pem.hpp"

namespace bulkgcd::svc {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// First whitespace-delimited token (for keystore record keywords).
std::string_view first_token(std::string_view s) {
  std::size_t end = 0;
  while (end < s.size() && !std::isspace(static_cast<unsigned char>(s[end]))) {
    ++end;
  }
  return s.substr(0, end);
}

}  // namespace

void IntakeParser::feed(std::string_view chunk) {
  // Split on newlines, carrying a partial tail line across feeds so records
  // broken at arbitrary chunk boundaries reassemble.
  std::size_t pos = 0;
  while (pos < chunk.size()) {
    const std::size_t nl = chunk.find('\n', pos);
    if (nl == std::string_view::npos) {
      pending_.append(chunk.substr(pos));
      break;
    }
    pending_.append(chunk.substr(pos, nl - pos));
    std::string line = std::move(pending_);
    pending_.clear();
    consume_line(line);
    pos = nl + 1;
  }
}

std::vector<IntakeRecord> IntakeParser::drain() {
  std::vector<IntakeRecord> taken = std::move(out_);
  out_.clear();
  return taken;
}

std::vector<IntakeRecord> IntakeParser::finish() {
  if (!pending_.empty()) {
    std::string line = std::move(pending_);
    pending_.clear();
    consume_line(line);
  }
  if (in_pem_) {
    in_pem_ = false;
    pem_.clear();
    reject(pem_start_line_, "unterminated PEM block (stream ended before END)");
  }
  return drain();
}

void IntakeParser::consume_line(std::string_view raw) {
  ++line_no_;
  // Tolerate CRLF feeds.
  if (!raw.empty() && raw.back() == '\r') raw.remove_suffix(1);
  const std::string_view line = trim(raw);

  if (in_pem_) {
    pem_.append(raw);
    pem_.push_back('\n');
    if (line.rfind("-----END", 0) == 0) {
      in_pem_ = false;
      try {
        const rsa::PublicKey key = rsa::pem_decode_public_key(pem_);
        accept(key.n, RecordKind::kPem, pem_start_line_);
      } catch (const std::exception& e) {
        reject(pem_start_line_, std::string("bad PEM block: ") + e.what());
      }
      pem_.clear();
    }
    return;
  }

  if (line.empty() || line.front() == '#') return;

  if (line.rfind("-----BEGIN", 0) == 0) {
    in_pem_ = true;
    pem_start_line_ = line_no_;
    pem_.assign(raw);
    pem_.push_back('\n');
    return;
  }

  const std::string_view keyword = first_token(line);
  if (keyword == "modulus" || keyword == "keypair") {
    // Keystore record: the modulus is the first field after the keyword
    // (keypair carries e/d/p/q behind it — an intake service only needs n).
    const std::string_view rest = trim(line.substr(keyword.size()));
    const std::string_view hex = first_token(rest);
    if (hex.empty()) {
      reject(line_no_, "keystore record without a modulus field");
      return;
    }
    try {
      accept(mp::BigInt::from_hex(std::string(hex)), RecordKind::kKeystore,
             line_no_);
    } catch (const std::exception& e) {
      reject(line_no_, std::string("bad keystore record: ") + e.what());
    }
    return;
  }

  try {
    accept(rsa::hex_decode_modulus(line), RecordKind::kRawHex, line_no_);
  } catch (const std::exception& e) {
    reject(line_no_, std::string("unrecognized record: ") + e.what());
  }
}

void IntakeParser::accept(mp::BigInt n, RecordKind kind, std::size_t line) {
  // Value-level screen shared by every record shape: the bulk engines
  // require odd, nonzero inputs (an even "RSA modulus" is trivially broken
  // anyway, and 0/1 would poison the scan corpus).
  if (n.bit_length() < 2) {
    reject(line, "rejected modulus: value below 2");
    return;
  }
  if ((n.limbs()[0] & 1u) == 0) {
    reject(line, "rejected modulus: even value is not a valid RSA modulus");
    return;
  }
  IntakeRecord rec;
  rec.ok = true;
  rec.n = std::move(n);
  rec.kind = kind;
  rec.line = line;
  out_.push_back(std::move(rec));
}

void IntakeParser::reject(std::size_t line, std::string error) {
  IntakeRecord rec;
  rec.ok = false;
  rec.line = line;
  rec.error = std::move(error);
  out_.push_back(std::move(rec));
}

}  // namespace bulkgcd::svc
