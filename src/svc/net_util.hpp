// Small socket helpers shared by the intake daemon and the service tests.
//
// The one subtlety worth a shared, tested implementation is send_all():
// a blocking send() can legitimately return early without the peer being
// gone — EINTR when a signal lands mid-call, EAGAIN/EWOULDBLOCK when the
// descriptor carries O_NONBLOCK or a send timeout — and a short write is
// normal whenever the payload outsizes the socket buffer. None of those
// mean "stop"; only a hard error (EPIPE/ECONNRESET/...) does, and THAT one
// must be reported so the caller stops mirroring output to a dead peer.
#pragma once

#include <cerrno>
#include <cstddef>
#include <string_view>

#include <poll.h>
#include <sys/socket.h>

namespace bulkgcd::svc {

/// Write every byte of `bytes` to the (stream) socket `fd`.
///
/// Retries EINTR, waits for writability on EAGAIN/EWOULDBLOCK, and resumes
/// after short writes. Sends with MSG_NOSIGNAL so a vanished peer surfaces
/// as EPIPE instead of killing the process. Returns true when the full
/// payload was handed to the kernel; false on any hard error — the peer is
/// gone (or the descriptor is broken) and the caller should stop writing
/// to it.
inline bool send_all(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += std::size_t(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;  // signal mid-send: just retry
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Non-blocking descriptor (or SO_SNDTIMO expiry) with a full socket
      // buffer: wait until the peer drains some of it, then resume. poll()
      // also returns on POLLERR/POLLHUP, in which case the next send()
      // reports the hard error and we bail below.
      pollfd pfd{fd, POLLOUT, 0};
      if (::poll(&pfd, 1, /*timeout_ms=*/-1) < 0 && errno != EINTR) {
        return false;
      }
      continue;
    }
    // n == 0 cannot happen for a non-empty send on a stream socket; treat
    // it like a hard error alongside EPIPE/ECONNRESET/EBADF/....
    return false;
  }
  return true;
}

}  // namespace bulkgcd::svc
