#include "svc/intake_service.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace bulkgcd::svc {

/// intake_* metric handles (docs/OBSERVABILITY.md). All null without a
/// registry; every use is guarded by a single branch. Queue-depth and
/// batch-fill gauges give each pipeline element its own live backlog signal.
struct IntakeService::Telemetry {
  obs::Counter* submitted = nullptr;
  obs::Counter* admitted = nullptr;
  obs::Counter* duplicates = nullptr;
  obs::Counter* shed = nullptr;
  obs::Counter* probed = nullptr;
  obs::Counter* pairs = nullptr;
  obs::Counter* batches = nullptr;
  obs::Counter* hits = nullptr;
  obs::Gauge* queue_depth = nullptr;
  obs::Gauge* batch_fill = nullptr;
  obs::Gauge* corpus_size = nullptr;
  obs::HistogramMetric* probe_seconds = nullptr;

  static std::unique_ptr<Telemetry> resolve(obs::MetricsRegistry* m) {
    if (!m) return nullptr;
    auto t = std::make_unique<Telemetry>();
    t->submitted = m->counter("intake_submitted_total");
    t->admitted = m->counter("intake_admitted_total");
    t->duplicates = m->counter("intake_duplicates_total");
    t->shed = m->counter("intake_shed_total");
    t->probed = m->counter("intake_probed_total");
    t->pairs = m->counter("intake_pairs_total");
    t->batches = m->counter("intake_batches_total");
    t->hits = m->counter("intake_hits_total");
    t->queue_depth = m->gauge("intake_queue_depth");
    t->batch_fill = m->gauge("intake_batch_fill");
    t->corpus_size = m->gauge("intake_corpus_size");
    t->probe_seconds = m->histogram("intake_probe_seconds", 0.0, 10.0, 100);
    return t;
  }
};

IntakeService::IntakeService(std::vector<mp::BigInt> seed_corpus,
                             IntakeServiceConfig config)
    : config_(std::move(config)),
      queue_(config_.queue_capacity),
      corpus_(std::move(seed_corpus)),
      tele_(Telemetry::resolve(config_.probe.metrics)) {
  if (config_.batch_max == 0) config_.batch_max = 1;
  resolve_backend(config_.probe);
  // Seed the dedup element so a re-submitted seed key is recognized.
  for (const auto& n : corpus_) seen_[fingerprint(n)].push_back(n);
  if (tele_) tele_->corpus_size->set(double(corpus_.size()));
  worker_ = std::thread([this] { worker_loop(); });
}

IntakeService::~IntakeService() { stop(); }

std::uint64_t IntakeService::fingerprint(const mp::BigInt& n) const noexcept {
  // The keystore loader's FNV-1a limb mix (rsa/keystore.cpp) — same weak-key
  // fingerprint, so the two dedup layers agree on what "duplicate" means.
  constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t h = kOffset;
  for (const auto limb : n.limbs()) {
    for (int byte = 0; byte < 8; ++byte) {
      h = (h ^ ((std::uint64_t(limb) >> (8 * byte)) & 0xff)) * kPrime;
    }
  }
  return h;
}

Admission IntakeService::submit(const mp::BigInt& n) {
  if (tele_) tele_->submitted->inc();
  {
    std::lock_guard stats_lock(stats_mutex_);
    ++stats_.submitted;
  }
  std::lock_guard lock(dedup_mutex_);
  if (closed_) return Admission::kClosed;
  auto& bucket = seen_[fingerprint(n)];
  if (std::find(bucket.begin(), bucket.end(), n) != bucket.end()) {
    if (tele_) tele_->duplicates->inc();
    std::lock_guard stats_lock(stats_mutex_);
    ++stats_.duplicates;
    return Admission::kDuplicate;
  }
  // Shed BEFORE registering in the dedup set: a shed key was never admitted,
  // so a later retry must be able to succeed.
  mp::BigInt copy = n;
  if (!queue_.try_push(std::move(copy))) {
    if (bucket.empty()) seen_.erase(fingerprint(n));
    if (tele_) {
      tele_->shed->inc();
      tele_->queue_depth->set(double(queue_.size()));
    }
    std::lock_guard stats_lock(stats_mutex_);
    ++stats_.shed;
    return Admission::kShed;
  }
  bucket.push_back(n);
  if (tele_) {
    tele_->admitted->inc();
    tele_->queue_depth->set(double(queue_.size()));
  }
  std::lock_guard stats_lock(stats_mutex_);
  ++stats_.admitted;
  return Admission::kAdmitted;
}

void IntakeService::worker_loop() {
  std::vector<mp::BigInt> batch;
  mp::BigInt key;
  // Blocking first pop per batch; then the accumulator greedily tops up to
  // batch_max so a burst is probed in one wakeup. pop() returning false
  // means closed AND drained — the graceful-shutdown exit.
  while (queue_.pop(key)) {
    batch.clear();
    batch.push_back(std::move(key));
    while (batch.size() < config_.batch_max && queue_.try_pop(key)) {
      batch.push_back(std::move(key));
    }
    if (tele_) {
      tele_->queue_depth->set(double(queue_.size()));
      tele_->batch_fill->set(double(batch.size()));
    }
    if (config_.batch_hook) config_.batch_hook(batch.size());
    probe_batch(batch);
  }
}

void IntakeService::probe_batch(std::vector<mp::BigInt>& batch) {
  obs::ScopedSpan span(tele_ ? tele_->probe_seconds : nullptr);
  std::uint64_t batch_pairs = 0;
  std::uint64_t batch_hits = 0;
  for (auto& n : batch) {
    // The stable prefix: only this thread appends to corpus_, so the span
    // stays valid across the probe without holding state_mutex_.
    const std::span<const mp::BigInt> prior(corpus_.data(), corpus_.size());
    bulk::ProbeStats probe_stats;
    const auto incremental =
        bulk::probe_incremental(n, prior, config_.probe, &probe_stats);
    batch_pairs += probe_stats.pairs_tested;

    const std::size_t j = corpus_.size();  // fold index of this arrival
    std::vector<bulk::FactorHit> found;
    found.reserve(incremental.size());
    for (const auto& hit : incremental) {
      bulk::FactorHit fh;
      fh.i = hit.corpus_index;
      fh.j = j;
      fh.factor = hit.factor;
      fh.full_modulus = hit.full_modulus;
      found.push_back(std::move(fh));
    }
    batch_hits += found.size();
    if (config_.sink) {
      for (const auto& fh : found) config_.sink->on_hit(fh);
    }
    {
      // Corpus fold + hit record are one atomic step for snapshot readers.
      std::lock_guard lock(state_mutex_);
      corpus_.push_back(std::move(n));
      hits_.insert(hits_.end(), std::make_move_iterator(found.begin()),
                   std::make_move_iterator(found.end()));
    }
  }

  if (tele_) {
    tele_->probed->add(batch.size());
    tele_->pairs->add(batch_pairs);
    tele_->hits->add(batch_hits);
    tele_->batches->inc();
    tele_->corpus_size->set(double(corpus_.size()));
  }
  std::lock_guard stats_lock(stats_mutex_);
  stats_.probed += batch.size();
  stats_.pairs += batch_pairs;
  stats_.hits += batch_hits;
  ++stats_.batches;
}

void IntakeService::stop() {
  {
    std::lock_guard lock(dedup_mutex_);
    closed_ = true;
  }
  queue_.close();
  if (worker_.joinable()) worker_.join();
  if (tele_) tele_->queue_depth->set(0.0);
}

IntakeStats IntakeService::stats() const {
  std::lock_guard lock(stats_mutex_);
  return stats_;
}

std::vector<bulk::FactorHit> IntakeService::hits() const {
  std::lock_guard lock(state_mutex_);
  std::vector<bulk::FactorHit> out = hits_;
  std::sort(out.begin(), out.end(),
            [](const bulk::FactorHit& a, const bulk::FactorHit& b) {
              return std::pair(a.i, a.j) < std::pair(b.i, b.j);
            });
  return out;
}

std::vector<mp::BigInt> IntakeService::corpus() const {
  std::lock_guard lock(state_mutex_);
  return corpus_;
}

std::size_t IntakeService::corpus_size() const {
  std::lock_guard lock(state_mutex_);
  return corpus_.size();
}

}  // namespace bulkgcd::svc
