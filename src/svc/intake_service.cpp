#include "svc/intake_service.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "rsa/keystore.hpp"

namespace bulkgcd::svc {

/// intake_* metric handles (docs/OBSERVABILITY.md). All null without a
/// registry; every use is guarded by a single branch. Queue-depth and
/// batch-fill gauges give each pipeline element its own live backlog signal.
struct IntakeService::Telemetry {
  obs::Counter* submitted = nullptr;
  obs::Counter* admitted = nullptr;
  obs::Counter* duplicates = nullptr;
  obs::Counter* shed = nullptr;
  obs::Counter* closed = nullptr;
  obs::Counter* probed = nullptr;
  obs::Counter* pairs = nullptr;
  obs::Counter* batches = nullptr;
  obs::Counter* hits = nullptr;
  obs::Counter* restored = nullptr;
  obs::Counter* resumed = nullptr;
  obs::Gauge* queue_depth = nullptr;
  obs::Gauge* batch_fill = nullptr;
  obs::Gauge* corpus_size = nullptr;
  obs::HistogramMetric* probe_seconds = nullptr;

  static std::unique_ptr<Telemetry> resolve(obs::MetricsRegistry* m) {
    if (!m) return nullptr;
    auto t = std::make_unique<Telemetry>();
    t->submitted = m->counter("intake_submitted_total");
    t->admitted = m->counter("intake_admitted_total");
    t->duplicates = m->counter("intake_duplicates_total");
    t->shed = m->counter("intake_shed_total");
    t->closed = m->counter("intake_closed_total");
    t->probed = m->counter("intake_probed_total");
    t->pairs = m->counter("intake_pairs_total");
    t->batches = m->counter("intake_batches_total");
    t->hits = m->counter("intake_hits_total");
    t->restored = m->counter("intake_restored_total");
    t->resumed = m->counter("intake_resumed_total");
    t->queue_depth = m->gauge("intake_queue_depth");
    t->batch_fill = m->gauge("intake_batch_fill");
    t->corpus_size = m->gauge("intake_corpus_size");
    t->probe_seconds = m->histogram("intake_probe_seconds", 0.0, 10.0, 100);
    return t;
  }
};

/// Interned trace event ids for the arrival pipeline (obs/trace.hpp). Each
/// admitted arrival's flow chain reads: [flow_begin at the caller's parse
/// site] → journal_append span → queued step → probe span → fold end, all
/// carrying the same flow id, so the exported timeline connects one key's
/// path across the submitting thread and the probe worker.
struct IntakeService::TraceHooks {
  obs::TraceRecorder* rec = nullptr;
  std::uint32_t journal_append = 0;
  std::uint32_t queued = 0;
  std::uint32_t replayed = 0;
  std::uint32_t probe_key = 0;
  std::uint32_t fold = 0;

  static std::unique_ptr<TraceHooks> resolve(obs::TraceRecorder* rec) {
    if (!rec) return nullptr;
    auto t = std::make_unique<TraceHooks>();
    t->rec = rec;
    t->journal_append = rec->intern("journal_append");
    t->queued = rec->intern("queued");
    t->replayed = rec->intern("replayed");
    t->probe_key = rec->intern("probe_key");
    t->fold = rec->intern("fold");
    rec->set_arg_names(t->journal_append, "seq", "", "");
    rec->set_arg_names(t->queued, "seq", "depth", "");
    rec->set_arg_names(t->replayed, "seq", "", "");
    rec->set_arg_names(t->probe_key, "seq", "fold_index", "hits");
    rec->set_arg_names(t->fold, "seq", "fold_index", "hits");
    return t;
  }
};

IntakeService::IntakeService(std::vector<mp::BigInt> seed_corpus,
                             IntakeServiceConfig config)
    : config_(std::move(config)),
      queue_(config_.queue_capacity),
      corpus_(std::move(seed_corpus)),
      tele_(Telemetry::resolve(config_.probe.metrics)) {
  if (config_.batch_max == 0) config_.batch_max = 1;
  resolve_backend(config_.probe);
  trace_ = TraceHooks::resolve(config_.probe.trace);
  seed_count_ = corpus_.size();
  // Seed the dedup element so a re-submitted seed key is recognized.
  for (const auto& n : corpus_) seen_[fingerprint(n)].push_back(n);
  // The live staged form of the corpus the probe rides: seed now, every
  // fold appended in place (bulk/staged_corpus.hpp).
  staged_.emplace(std::span<const mp::BigInt>(corpus_),
                  std::max<std::size_t>(1, config_.probe.group_size));
  if (!config_.journal_path.empty()) replay_journal();
  if (tele_) {
    tele_->corpus_size->set(double(corpus_.size()));
    if (stats_.restored) tele_->restored->add(stats_.restored);
    if (stats_.resumed) tele_->resumed->add(stats_.resumed);
  }
  worker_ = std::thread([this] { worker_loop(); });
}

IntakeService::~IntakeService() { stop(); }

std::uint64_t IntakeService::fingerprint(const mp::BigInt& n) const noexcept {
  // The canonical-byte FNV-1a shared with the keystore loader and the
  // journal encoding (rsa/keystore.hpp) — one definition of "same modulus"
  // across every dedup layer, identical on every limb-width build.
  return rsa::modulus_fingerprint(n);
}

/// Rebuild streamed state from the arrival journal: probed arrivals re-fold
/// exactly as the previous process folded them (their journaled hits are
/// authoritative — no GCDs re-run), unprobed-tail arrivals go to
/// replay_tail_ for the worker to probe first. Runs before the worker
/// starts, so no locks are needed.
void IntakeService::replay_journal() {
  journal_ = std::make_unique<ArrivalJournal>(
      config_.journal_path,
      rsa::corpus_digest(std::span<const mp::BigInt>(corpus_)), seed_count_,
      config_.journal_fsync_every);
  ArrivalReplay replay = journal_->take_replay();
  for (std::size_t seq = 0; seq < replay.arrivals.size(); ++seq) {
    auto& arrival = replay.arrivals[seq];
    seen_[fingerprint(arrival.value)].push_back(arrival.value);
    if (!arrival.probed) {
      replay_tail_.push_back({seq, std::move(arrival.value)});
      ++stats_.resumed;
      continue;
    }
    const std::size_t j = corpus_.size();  // fold index == seed_count_ + seq
    for (auto& [i, factor] : arrival.hits) {
      bulk::FactorHit fh;
      fh.i = std::size_t(i);
      fh.j = j;
      // full_modulus is not journaled — it is a property of the values,
      // recomputed here exactly as the probe computed it.
      fh.full_modulus = (fh.i < corpus_.size() && factor == corpus_[fh.i]) ||
                        factor == arrival.value;
      fh.factor = std::move(factor);
      hits_.push_back(std::move(fh));
    }
    staged_->append(arrival.value);
    corpus_.push_back(std::move(arrival.value));
    ++stats_.restored;
  }
  next_seq_ = replay.arrivals.size();
}

Admission IntakeService::submit(const mp::BigInt& n, std::uint64_t flow_id) {
  if (tele_) tele_->submitted->inc();
  {
    std::lock_guard stats_lock(stats_mutex_);
    ++stats_.submitted;
  }
  std::lock_guard lock(dedup_mutex_);
  if (closed_) {
    if (tele_) tele_->closed->inc();
    std::lock_guard stats_lock(stats_mutex_);
    ++stats_.closed;
    return Admission::kClosed;
  }
  auto& bucket = seen_[fingerprint(n)];
  if (std::find(bucket.begin(), bucket.end(), n) != bucket.end()) {
    if (tele_) tele_->duplicates->inc();
    std::lock_guard stats_lock(stats_mutex_);
    ++stats_.duplicates;
    return Admission::kDuplicate;
  }
  // Durability before admission: the arrival is journaled, THEN offered to
  // the queue — a key the worker can see is always on disk first, so a
  // probed record can never orphan its arrival. A shed key is retracted in
  // the same critical section (arrival + retract cancel on replay) and its
  // seq reused: shed means "never admitted", on disk as in memory.
  const std::uint64_t seq = next_seq_;
  if (journal_) {
    obs::TraceSpan append_span(trace_ ? trace_->rec : nullptr,
                               trace_ ? trace_->journal_append : 0, flow_id);
    append_span.set_args(seq);
    journal_->append_arrival(seq, n);
  }
  if (!queue_.try_push(PendingKey{seq, n, flow_id})) {
    if (journal_) journal_->append_retract(seq);
    if (bucket.empty()) seen_.erase(fingerprint(n));
    if (tele_) {
      tele_->shed->inc();
      tele_->queue_depth->set(double(queue_.size()));
    }
    std::lock_guard stats_lock(stats_mutex_);
    ++stats_.shed;
    return Admission::kShed;
  }
  ++next_seq_;
  bucket.push_back(n);
  if (trace_ && flow_id != 0) {
    trace_->rec->flow_step(trace_->queued, flow_id, seq, queue_.size());
  }
  if (tele_) {
    tele_->admitted->inc();
    tele_->queue_depth->set(double(queue_.size()));
  }
  std::lock_guard stats_lock(stats_mutex_);
  ++stats_.admitted;
  return Admission::kAdmitted;
}

void IntakeService::worker_loop() {
  if (trace_) trace_->rec->set_thread_name("intake-probe");
  std::vector<PendingKey> batch;
  // Resumed tail first: journaled arrivals the previous process admitted
  // but never probed. They already passed admission once, so they bypass
  // the bounded queue (a long tail must not be shed by it) and keep their
  // original seqs — the re-probe journals fresh probed records under them.
  while (!replay_tail_.empty()) {
    batch.clear();
    while (batch.size() < config_.batch_max && !replay_tail_.empty()) {
      PendingKey pending = std::move(replay_tail_.front());
      replay_tail_.pop_front();
      // Replayed arrivals never saw the live parse site, so their flow
      // chains begin here: replayed → probe → fold.
      if (trace_) {
        pending.flow = trace_->rec->next_flow_id();
        trace_->rec->flow_begin(trace_->replayed, pending.flow, pending.seq);
      }
      batch.push_back(std::move(pending));
    }
    if (tele_) tele_->batch_fill->set(double(batch.size()));
    if (config_.batch_hook) config_.batch_hook(batch.size());
    probe_batch(batch);
  }
  PendingKey key;
  // Blocking first pop per batch; then the accumulator greedily tops up to
  // batch_max so a burst is probed in one wakeup. pop() returning false
  // means closed AND drained — the graceful-shutdown exit.
  while (queue_.pop(key)) {
    batch.clear();
    batch.push_back(std::move(key));
    while (batch.size() < config_.batch_max && queue_.try_pop(key)) {
      batch.push_back(std::move(key));
    }
    if (tele_) {
      tele_->queue_depth->set(double(queue_.size()));
      tele_->batch_fill->set(double(batch.size()));
    }
    if (config_.batch_hook) config_.batch_hook(batch.size());
    probe_batch(batch);
  }
  // Drained for good: both backlog gauges read zero after shutdown, so a
  // final scrape never shows a phantom in-flight batch.
  if (tele_) {
    tele_->queue_depth->set(0.0);
    tele_->batch_fill->set(0.0);
  }
}

void IntakeService::probe_batch(std::vector<PendingKey>& batch) {
  obs::ScopedSpan span(tele_ ? tele_->probe_seconds : nullptr);
  std::uint64_t batch_pairs = 0;
  std::uint64_t batch_hits = 0;
  for (auto& pending : batch) {
    mp::BigInt& n = pending.value;
    obs::TraceSpan key_span(trace_ ? trace_->rec : nullptr,
                            trace_ ? trace_->probe_key : 0, pending.flow);
    // The staged corpus is only ever grown by this thread, so the probe
    // rides it without holding state_mutex_.
    bulk::ProbeStats probe_stats;
    const auto incremental =
        bulk::probe_incremental(n, *staged_, config_.probe, &probe_stats);
    batch_pairs += probe_stats.pairs_tested;

    const std::size_t j = corpus_.size();  // fold index of this arrival
    key_span.set_args(pending.seq, j, incremental.size());
    std::vector<bulk::FactorHit> found;
    found.reserve(incremental.size());
    for (const auto& hit : incremental) {
      bulk::FactorHit fh;
      fh.i = hit.corpus_index;
      fh.j = j;
      fh.factor = hit.factor;
      fh.full_modulus = hit.full_modulus;
      found.push_back(std::move(fh));
    }
    const std::size_t key_hits = found.size();
    batch_hits += key_hits;
    // Settle the probe on disk before reporting or folding: after this
    // append a restart re-folds the key from the journal instead of
    // re-probing it.
    if (journal_) journal_->append_probed(pending.seq, found);
    if (config_.sink) {
      for (const auto& fh : found) config_.sink->on_hit(fh);
    }
    staged_->append(n);
    {
      // Corpus fold + hit record are one atomic step for snapshot readers.
      std::lock_guard lock(state_mutex_);
      corpus_.push_back(std::move(n));
      hits_.insert(hits_.end(), std::make_move_iterator(found.begin()),
                   std::make_move_iterator(found.end()));
    }
    if (trace_ && pending.flow != 0) {
      trace_->rec->flow_end(trace_->fold, pending.flow, pending.seq, j,
                            key_hits);
    }
  }

  if (tele_) {
    tele_->probed->add(batch.size());
    tele_->pairs->add(batch_pairs);
    tele_->hits->add(batch_hits);
    tele_->batches->inc();
    tele_->corpus_size->set(double(corpus_.size()));
  }
  std::lock_guard stats_lock(stats_mutex_);
  stats_.probed += batch.size();
  stats_.pairs += batch_pairs;
  stats_.hits += batch_hits;
  ++stats_.batches;
}

void IntakeService::stop() {
  {
    std::lock_guard lock(dedup_mutex_);
    closed_ = true;
  }
  queue_.close();
  if (worker_.joinable()) worker_.join();
}

IntakeStats IntakeService::stats() const {
  std::lock_guard lock(stats_mutex_);
  return stats_;
}

std::vector<bulk::FactorHit> IntakeService::hits() const {
  std::lock_guard lock(state_mutex_);
  std::vector<bulk::FactorHit> out = hits_;
  std::sort(out.begin(), out.end(),
            [](const bulk::FactorHit& a, const bulk::FactorHit& b) {
              return std::pair(a.i, a.j) < std::pair(b.i, b.j);
            });
  return out;
}

std::vector<mp::BigInt> IntakeService::corpus() const {
  std::lock_guard lock(state_mutex_);
  return corpus_;
}

std::size_t IntakeService::corpus_size() const {
  std::lock_guard lock(state_mutex_);
  return corpus_.size();
}

}  // namespace bulkgcd::svc
