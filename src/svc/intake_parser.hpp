// Streaming record parser for the key-intake service — the "parse" element
// of the pipeline (docs/INTAKE_SERVICE.md).
//
// Input is an untrusted byte stream (a harvester feed, a TCP connection, a
// replayed dump) mixing three record shapes, recognized per line:
//
//   PEM blocks      "-----BEGIN {RSA }PUBLIC KEY-----" … "-----END …-----"
//                   (PKCS#1 or SPKI, src/rsa/pem) — may span many lines
//   keystore lines  "modulus <hex>" / "keypair <n-hex> …" (src/rsa/keystore)
//   raw hex lines   optional 0x / Modulus= prefix, whitespace tolerated
//                   (rsa::hex_decode_modulus)
//
// Blank lines and '#' comments are skipped. Everything else — truncated
// base64, a PEM block that never ends, odd-length hex, binary garbage — is
// REJECTED AS A RECORD AND PARSING CONTINUES: a malformed submission from
// one client must never take down the daemon or poison the records around
// it. (Contrast rsa::pem_decode_bundle / rsa::load_moduli, which throw on
// the first malformed record — correct for trusted local files, fatal for a
// public intake socket.)
//
// The parser is incremental: feed() arbitrary chunks as they arrive off a
// socket (records split across chunk boundaries are fine), drain() completed
// records, finish() once at EOF to flush a trailing unterminated record.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "mp/bigint.hpp"

namespace bulkgcd::svc {

enum class RecordKind {
  kPem,       ///< PEM public-key block (PKCS#1 or SPKI)
  kKeystore,  ///< "modulus <hex>" / "keypair …" keystore record
  kRawHex,    ///< bare hex modulus line
};

/// One parsed (or rejected) intake record.
struct IntakeRecord {
  bool ok = false;
  mp::BigInt n;               ///< the modulus, when ok
  RecordKind kind = RecordKind::kRawHex;
  std::size_t line = 0;       ///< 1-based input line where the record started
  std::string error;          ///< reject reason, when !ok
};

class IntakeParser {
 public:
  /// Append a chunk of the stream; complete records become drainable.
  void feed(std::string_view chunk);

  /// Take every record completed so far (ok and rejected, input order).
  std::vector<IntakeRecord> drain();

  /// Flush at end of stream: a partial final line is parsed as a record, an
  /// unterminated PEM block becomes a reject. Returns like drain().
  std::vector<IntakeRecord> finish();

  std::size_t lines_seen() const noexcept { return line_no_; }

 private:
  void consume_line(std::string_view line);
  void reject(std::size_t line, std::string error);
  void accept(mp::BigInt n, RecordKind kind, std::size_t line);

  std::string pending_;   ///< partial line awaiting its newline
  std::string pem_;       ///< accumulating PEM block body
  bool in_pem_ = false;
  std::size_t pem_start_line_ = 0;
  std::size_t line_no_ = 0;
  std::vector<IntakeRecord> out_;
};

}  // namespace bulkgcd::svc
