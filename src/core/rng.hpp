// Deterministic, fast pseudo-random number generation for corpus synthesis,
// Miller-Rabin witnesses and property tests.
//
// xoshiro256** (Blackman & Vigna) — 256-bit state, jump-free splitting via
// SplitMix64 reseeding. Not cryptographically secure; this repo *breaks* weak
// keys, it does not mint real ones, and determinism is what the benchmark
// harness needs for reproducible corpora.
#pragma once

#include <cstdint>
#include <limits>

namespace bulkgcd {

/// SplitMix64: used to expand a single 64-bit seed into xoshiro state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x2b5ad5c9f4e7a1d3ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) by Lemire's multiply-shift rejection.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    __extension__ using Wide = unsigned __int128;
    if (bound <= 1) return 0;
    while (true) {
      const std::uint64_t x = (*this)();
      const auto m = static_cast<Wide>(x) * bound;
      const auto lo = static_cast<std::uint64_t>(m);
      if (lo >= bound || lo >= (0 - bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Independent child generator (for per-thread streams).
  constexpr Xoshiro256 split() noexcept { return Xoshiro256((*this)()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace bulkgcd
