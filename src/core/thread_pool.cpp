#include "core/thread_pool.hpp"

#include <algorithm>
#include <exception>

namespace bulkgcd {

namespace {
/// Pool whose worker_loop is running on this thread (nullptr outside pools).
thread_local const ThreadPool* tls_worker_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

bool ThreadPool::inside_pool() const noexcept {
  return tls_worker_pool == this;
}

void ThreadPool::worker_loop() {
  tls_worker_pool = this;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t, std::size_t)>& body,
                              std::size_t chunks) {
  if (begin >= end) return;
  if (inside_pool()) {
    // Nested use from a worker: the outer parallel_for may already occupy
    // every worker, so enqueued chunks would never run and the future waits
    // below would deadlock. Degrade to inline execution.
    body(begin, end);
    return;
  }
  if (chunks == 0) chunks = size();
  const std::size_t n = end - begin;
  chunks = std::min(chunks, n);
  if (chunks <= 1) {
    body(begin, end);
    return;
  }
  const std::size_t step = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t lo = begin; lo < end; lo += step) {
    const std::size_t hi = std::min(lo + step, end);
    futures.push_back(submit([&body, lo, hi] { body(lo, hi); }));
  }
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace bulkgcd
