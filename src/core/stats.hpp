// Streaming summary statistics and a fixed-bin histogram for the iteration-
// and timing-distribution benches. The paper reports only means (Table IV);
// the distribution bench quantifies how tightly concentrated the iteration
// counts are — the justification for reproducing means from small corpora.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace bulkgcd {

/// Welford-style streaming mean/variance plus min/max.
class RunningStats {
 public:
  void add(double value) noexcept {
    ++count_;
    const double delta = value - mean_;
    mean_ += delta / double(count_);
    m2_ += delta * (value - mean_);
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }

  std::uint64_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept {
    return count_ < 2 ? 0.0 : m2_ / double(count_ - 1);
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return count_ == 0 ? 0.0 : max_; }
  /// Standard error of the mean.
  double sem() const noexcept {
    return count_ == 0 ? 0.0 : stddev() / std::sqrt(double(count_));
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-range histogram with equal-width bins; values outside the range
/// clamp into the edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), counts_(std::max<std::size_t>(1, bins), 0) {}

  void add(double value) noexcept {
    // A degenerate range (lo == hi, or an inverted one) would divide by
    // zero and scatter NaN-indexed increments; every value lands in bin 0
    // instead.
    const double span = hi_ - lo_;
    std::size_t bin = 0;
    if (span > 0.0) {
      const double clamped = std::clamp(value, lo_, hi_);
      const double unit = (clamped - lo_) / span;
      bin = std::min(counts_.size() - 1,
                     std::size_t(unit * double(counts_.size())));
    }
    ++counts_[bin];
    ++total_;
  }

  std::size_t bins() const noexcept { return counts_.size(); }
  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t count(std::size_t bin) const noexcept { return counts_[bin]; }
  double bin_lo(std::size_t bin) const noexcept {
    return lo_ + (hi_ - lo_) * double(bin) / double(counts_.size());
  }
  double bin_hi(std::size_t bin) const noexcept {
    return lo_ + (hi_ - lo_) * double(bin + 1) / double(counts_.size());
  }

  /// ASCII bar chart, one row per non-empty bin.
  std::string render(std::size_t width = 50) const {
    std::uint64_t peak = 0;
    for (const auto c : counts_) peak = std::max(peak, c);
    if (peak == 0) return "(empty histogram)\n";
    std::string out;
    char label[64];
    for (std::size_t b = 0; b < counts_.size(); ++b) {
      if (counts_[b] == 0) continue;
      std::snprintf(label, sizeof(label), "[%8.1f, %8.1f) %6llu ",
                    bin_lo(b), bin_hi(b),
                    static_cast<unsigned long long>(counts_[b]));
      out += label;
      out += std::string(std::size_t(double(counts_[b]) / double(peak) * double(width)),
                         '#');
      out += '\n';
    }
    return out;
  }

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace bulkgcd
