// Wall-clock stopwatch used by the benchmark harness tables (the google-
// benchmark binaries use their own timing; this one serves the table printers
// which need one number per whole sweep).
#pragma once

#include <chrono>

namespace bulkgcd {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double micros() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace bulkgcd
