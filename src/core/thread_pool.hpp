// Minimal fixed-size thread pool with a blocking work queue and a
// parallel_for convenience. All heavy fan-out in this repo (all-pairs GCD
// tiles, corpus generation, batch-GCD tree levels) goes through this pool so
// thread creation cost is paid once per process.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace bulkgcd {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; returns a future for its completion.
  template <typename Fn>
  std::future<void> submit(Fn&& fn) {
    auto task = std::make_shared<std::packaged_task<void()>>(std::forward<Fn>(fn));
    std::future<void> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Split [begin, end) into contiguous chunks (one per worker by default)
  /// and run `body(chunk_begin, chunk_end)` on the pool; blocks until done.
  /// Exceptions from chunks propagate (first one wins).
  ///
  /// Safe to call from inside one of this pool's own workers: nested calls
  /// run the body inline on the calling thread instead of enqueueing work
  /// that could never be picked up (every worker blocked on futures of tasks
  /// only they could run — a guaranteed deadlock once the outer level
  /// saturates the pool).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& body,
                    std::size_t chunks = 0);

  /// True when the calling thread is one of this pool's workers.
  bool inside_pool() const noexcept;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Process-wide default pool (lazily constructed, sized to hardware).
ThreadPool& global_pool();

}  // namespace bulkgcd
