#include "bulk/block_grid.hpp"

#include <cmath>

#include "obs/span.hpp"

namespace bulkgcd::bulk {

void fold_engine_stats(obs::MetricsRegistry* metrics, const SimtStats& simt,
                       const gcd::GcdStats& scalar) {
  if (!metrics) return;
  metrics->counter("simt_rounds_total")->add(simt.rounds);
  metrics->counter("simt_warp_rounds_total")->add(simt.warp_rounds);
  metrics->counter("simt_lane_iterations_total")->add(simt.lane_iterations);
  metrics->counter("simt_branch_slots_total")->add(simt.branch_slots);
  metrics->counter("simt_divergent_warp_rounds_total")
      ->add(simt.divergent_warp_rounds);
  metrics->counter("simt_active_lane_slots_total")
      ->add(simt.active_lane_slots);
  metrics->counter("simt_lane_slots_total")->add(simt.lane_slots);
  metrics->counter("gcd_iterations_total")
      ->add(simt.gcd.iterations + scalar.iterations);
  metrics->counter("gcd_swaps_total")->add(simt.gcd.swaps + scalar.swaps);
  metrics->counter("gcd_beta_nonzero_total")
      ->add(simt.gcd.beta_nonzero + scalar.beta_nonzero);
}

BlockGrid::Block BlockGrid::block(std::size_t index) const noexcept {
  // Row i starts at offset(i) = i·g − i·(i−1)/2. Invert with the quadratic
  // formula in double precision, then fix up (the sqrt can be off by one
  // ulp for huge grids).
  const double g = double(groups);
  const double t = double(index);
  std::size_t i = std::size_t(
      std::max(0.0, std::floor(g + 0.5 - std::sqrt((g + 0.5) * (g + 0.5) -
                                                   2.0 * t))));
  auto offset = [this](std::size_t row) {
    return row * groups - row * (row - 1) / 2;
  };
  while (i > 0 && offset(i) > index) --i;
  while (i + 1 < groups && offset(i + 1) <= index) ++i;
  return {i, i + (index - offset(i))};
}

std::uint64_t BlockGrid::pairs_in_block(Block b) const noexcept {
  const std::uint64_t ni = group_size(b.i);
  if (b.i == b.j) return ni * (ni - 1) / 2;
  return ni * std::uint64_t(group_size(b.j));
}

std::uint64_t BlockGrid::pairs_in_range(std::size_t lo,
                                        std::size_t hi) const noexcept {
  std::uint64_t pairs = 0;
  for (std::size_t b = lo; b < hi; ++b) pairs += pairs_in_block(block(b));
  return pairs;
}

BlockSweeper::BlockSweeper(std::span<const mp::BigInt> moduli,
                           std::span<const std::size_t> bit_lengths,
                           const BlockGrid& grid, const AllPairsConfig& config,
                           std::size_t capacity_limbs,
                           const CorpusPanels<ScanLimb>* panels)
    : moduli_(moduli),
      bits_(bit_lengths),
      grid_(grid),
      config_(config),
      panels_(panels),
      scalar_engine_(capacity_limbs),
      batch_(grid.r, capacity_limbs, config.warp_width) {
  if (config.metrics != nullptr) {
    obs::MetricsRegistry* m = config.metrics;
    tele_ = std::make_unique<Telemetry>();
    tele_->blocks = m->counter("sweep_blocks_total");
    tele_->pairs = m->counter("sweep_pairs_total");
    tele_->hits = m->counter("sweep_hits_total");
    tele_->full_modulus_hits = m->counter("sweep_full_modulus_hits_total");
    tele_->early_coprime = m->counter("sweep_early_coprime_total");
    tele_->iterations_per_pair_target =
        m->histogram("sweep_iterations_per_pair", 0.0, 4096.0, 128);
    tele_->panel_load_target =
        m->histogram("sweep_panel_load_seconds", 0.0, 1e-3, 100);
    tele_->lane_exec_target =
        m->histogram("sweep_lane_exec_seconds", 0.0, 1e-2, 100);
    tele_->verify_target =
        m->histogram("sweep_verify_seconds", 0.0, 1e-3, 100);
    tele_->iterations_per_pair =
        obs::LocalHistogram(*tele_->iterations_per_pair_target);
    tele_->panel_load_seconds = obs::LocalHistogram(*tele_->panel_load_target);
    tele_->lane_exec_seconds = obs::LocalHistogram(*tele_->lane_exec_target);
    tele_->verify_seconds = obs::LocalHistogram(*tele_->verify_target);
  }
}

void BlockSweeper::run_block(std::size_t block_index) {
  const auto [i, j] = grid_.block(block_index);
  const std::size_t r = grid_.r;
  const std::size_t i_begin = i * r, i_end = std::min(i_begin + r, grid_.m);
  const std::size_t j_begin = j * r, j_end = std::min(j_begin + r, grid_.m);
  const bool staged = config_.staged && panels_ != nullptr;

  // Block-local telemetry tallies, flushed into the sharded counters once
  // per block (a handful of adds) so the pair loops stay increment-free.
  const std::uint64_t pairs_before = out_.pairs;
  const std::size_t hits_before = out_.hits.size();
  std::uint64_t early_coprime = 0;
  std::uint64_t full_modulus_hits = 0;

  auto record = [&](std::size_t a, std::size_t b, mp::BigInt g) {
    if (g > mp::BigInt(1)) {
      const bool full = g == moduli_[a] || g == moduli_[b];
      if (full) ++full_modulus_hits;
      out_.hits.push_back({a, b, std::move(g), full});
    }
  };

  for (std::size_t jj = j_begin; jj < j_end; ++jj) {
    const std::size_t u = jj - j_begin;
    // Lanes: group-i members paired against n_jj this round. For the
    // diagonal block only k < u is live (each unordered pair once).
    const std::size_t k_end =
        (i == j) ? std::min(u, i_end - i_begin) : i_end - i_begin;
    if (k_end == 0) continue;

    if (config_.engine == EngineKind::kSimt) {
      if (staged) {
        // One contiguous copy of the group-i panel + one broadcast of n_jj
        // replaces k_end strided loads with their normalization scans.
        obs::ScopedLocalSpan panel_span(
            tele_ ? &tele_->panel_load_seconds : nullptr);
        batch_.load_panel(panels_->panel(i), panels_->sizes(i),
                          panels_->rows(i));
        batch_.broadcast_y(moduli_[jj].limbs());
        for (std::size_t k = 0; k < k_end; ++k) {
          batch_.reset_lane_state(k, pair_early_bits(i_begin + k, jj));
        }
        for (std::size_t k = k_end; k < r; ++k) batch_.disable(k);
      } else {
        obs::ScopedLocalSpan panel_span(
            tele_ ? &tele_->panel_load_seconds : nullptr);
        for (std::size_t k = 0; k < r; ++k) {
          if (k < k_end) {
            batch_.load(k, moduli_[i_begin + k].limbs(), moduli_[jj].limbs(),
                        pair_early_bits(i_begin + k, jj));
          } else {
            batch_.disable(k);
          }
        }
      }
      {
        obs::ScopedLocalSpan exec_span(
            tele_ ? &tele_->lane_exec_seconds : nullptr);
        if (staged) {
          batch_.run_staged(config_.variant);
        } else {
          batch_.run(config_.variant);
        }
      }
      obs::ScopedLocalSpan verify_span(
          tele_ ? &tele_->verify_seconds : nullptr);
      for (std::size_t k = 0; k < k_end; ++k) {
        ++out_.pairs;
        if (batch_.early_coprime(k)) {
          ++early_coprime;
        } else {
          record(i_begin + k, jj, batch_.gcd_of(k));
        }
      }
      // Per-pair iteration counts come for free from the staged branch
      // traces (run() keeps no per-lane tally, so the lockstep reference
      // path leaves this histogram empty — documented in OBSERVABILITY.md).
      if (tele_ && staged) {
        for (std::size_t k = 0; k < k_end; ++k) {
          tele_->iterations_per_pair.observe(
              double(batch_.staged_lane_iterations(k)));
        }
      }
    } else {
      obs::ScopedLocalSpan exec_span(
          tele_ ? &tele_->lane_exec_seconds : nullptr);
      for (std::size_t k = 0; k < k_end; ++k) {
        ++out_.pairs;
        const std::uint64_t iters_before = out_.scalar.iterations;
        const auto run = scalar_engine_.run(
            config_.variant, moduli_[i_begin + k].limbs(), moduli_[jj].limbs(),
            pair_early_bits(i_begin + k, jj), &out_.scalar);
        if (tele_) {
          tele_->iterations_per_pair.observe(
              double(out_.scalar.iterations - iters_before));
        }
        if (run.early_coprime) {
          ++early_coprime;
        } else {
          record(i_begin + k, jj, mp::BigInt::from_limbs(run.gcd));
        }
      }
    }
  }

  if (tele_) {
    tele_->blocks->inc();
    tele_->pairs->add(out_.pairs - pairs_before);
    tele_->hits->add(out_.hits.size() - hits_before);
    tele_->full_modulus_hits->add(full_modulus_hits);
    tele_->early_coprime->add(early_coprime);
  }
}

BlockSweeper::Output BlockSweeper::take() {
  if (config_.engine == EngineKind::kSimt) {
    out_.simt = batch_.stats();
    batch_.reset_stats();
  }
  if (tele_) {
    tele_->iterations_per_pair_target->merge(tele_->iterations_per_pair);
    tele_->panel_load_target->merge(tele_->panel_load_seconds);
    tele_->lane_exec_target->merge(tele_->lane_exec_seconds);
    tele_->verify_target->merge(tele_->verify_seconds);
    tele_->iterations_per_pair.reset();
    tele_->panel_load_seconds.reset();
    tele_->lane_exec_seconds.reset();
    tele_->verify_seconds.reset();
  }
  Output result = std::move(out_);
  out_ = Output{};
  return result;
}

}  // namespace bulkgcd::bulk
