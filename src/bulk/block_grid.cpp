#include "bulk/block_grid.hpp"

#include <cmath>

namespace bulkgcd::bulk {

BlockGrid::Block BlockGrid::block(std::size_t index) const noexcept {
  // Row i starts at offset(i) = i·g − i·(i−1)/2. Invert with the quadratic
  // formula in double precision, then fix up (the sqrt can be off by one
  // ulp for huge grids).
  const double g = double(groups);
  const double t = double(index);
  std::size_t i = std::size_t(
      std::max(0.0, std::floor(g + 0.5 - std::sqrt((g + 0.5) * (g + 0.5) -
                                                   2.0 * t))));
  auto offset = [this](std::size_t row) {
    return row * groups - row * (row - 1) / 2;
  };
  while (i > 0 && offset(i) > index) --i;
  while (i + 1 < groups && offset(i + 1) <= index) ++i;
  return {i, i + (index - offset(i))};
}

std::uint64_t BlockGrid::pairs_in_block(Block b) const noexcept {
  const std::uint64_t ni = group_size(b.i);
  if (b.i == b.j) return ni * (ni - 1) / 2;
  return ni * std::uint64_t(group_size(b.j));
}

std::uint64_t BlockGrid::pairs_in_range(std::size_t lo,
                                        std::size_t hi) const noexcept {
  std::uint64_t pairs = 0;
  for (std::size_t b = lo; b < hi; ++b) pairs += pairs_in_block(block(b));
  return pairs;
}

BlockSweeper::BlockSweeper(std::span<const mp::BigInt> moduli,
                           std::span<const std::size_t> bit_lengths,
                           const BlockGrid& grid, const AllPairsConfig& config,
                           std::size_t capacity_limbs,
                           const CorpusPanels<ScanLimb>* panels)
    : moduli_(moduli),
      bits_(bit_lengths),
      grid_(grid),
      config_(config),
      panels_(panels),
      scalar_engine_(capacity_limbs),
      batch_(grid.r, capacity_limbs, config.warp_width) {}

void BlockSweeper::run_block(std::size_t block_index) {
  const auto [i, j] = grid_.block(block_index);
  const std::size_t r = grid_.r;
  const std::size_t i_begin = i * r, i_end = std::min(i_begin + r, grid_.m);
  const std::size_t j_begin = j * r, j_end = std::min(j_begin + r, grid_.m);
  const bool staged = config_.staged && panels_ != nullptr;

  auto record = [&](std::size_t a, std::size_t b, mp::BigInt g) {
    if (g > mp::BigInt(1)) {
      const bool full = g == moduli_[a] || g == moduli_[b];
      out_.hits.push_back({a, b, std::move(g), full});
    }
  };

  for (std::size_t jj = j_begin; jj < j_end; ++jj) {
    const std::size_t u = jj - j_begin;
    // Lanes: group-i members paired against n_jj this round. For the
    // diagonal block only k < u is live (each unordered pair once).
    const std::size_t k_end =
        (i == j) ? std::min(u, i_end - i_begin) : i_end - i_begin;
    if (k_end == 0) continue;

    if (config_.engine == EngineKind::kSimt) {
      if (staged) {
        // One contiguous copy of the group-i panel + one broadcast of n_jj
        // replaces k_end strided loads with their normalization scans.
        batch_.load_panel(panels_->panel(i), panels_->sizes(i),
                          panels_->rows(i));
        batch_.broadcast_y(moduli_[jj].limbs());
        for (std::size_t k = 0; k < k_end; ++k) {
          batch_.reset_lane_state(k, pair_early_bits(i_begin + k, jj));
        }
        for (std::size_t k = k_end; k < r; ++k) batch_.disable(k);
        batch_.run_staged(config_.variant);
      } else {
        for (std::size_t k = 0; k < r; ++k) {
          if (k < k_end) {
            batch_.load(k, moduli_[i_begin + k].limbs(), moduli_[jj].limbs(),
                        pair_early_bits(i_begin + k, jj));
          } else {
            batch_.disable(k);
          }
        }
        batch_.run(config_.variant);
      }
      for (std::size_t k = 0; k < k_end; ++k) {
        ++out_.pairs;
        if (!batch_.early_coprime(k)) {
          record(i_begin + k, jj, batch_.gcd_of(k));
        }
      }
    } else {
      for (std::size_t k = 0; k < k_end; ++k) {
        ++out_.pairs;
        const auto run = scalar_engine_.run(
            config_.variant, moduli_[i_begin + k].limbs(), moduli_[jj].limbs(),
            pair_early_bits(i_begin + k, jj), &out_.scalar);
        if (!run.early_coprime) {
          record(i_begin + k, jj, mp::BigInt::from_limbs(run.gcd));
        }
      }
    }
  }
}

BlockSweeper::Output BlockSweeper::take() {
  if (config_.engine == EngineKind::kSimt) {
    out_.simt = batch_.stats();
    batch_.reset_stats();
  }
  Output result = std::move(out_);
  out_ = Output{};
  return result;
}

}  // namespace bulkgcd::bulk
