#include "bulk/block_grid.hpp"

#include <algorithm>
#include <cmath>

#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace bulkgcd::bulk {

void fold_engine_stats(obs::MetricsRegistry* metrics, const SimtStats& simt,
                       const gcd::GcdStats& scalar) {
  if (!metrics) return;
  metrics->counter("simt_rounds_total")->add(simt.rounds);
  metrics->counter("simt_warp_rounds_total")->add(simt.warp_rounds);
  metrics->counter("simt_lane_iterations_total")->add(simt.lane_iterations);
  metrics->counter("simt_branch_slots_total")->add(simt.branch_slots);
  metrics->counter("simt_divergent_warp_rounds_total")
      ->add(simt.divergent_warp_rounds);
  metrics->counter("simt_active_lane_slots_total")
      ->add(simt.active_lane_slots);
  metrics->counter("simt_lane_slots_total")->add(simt.lane_slots);
  metrics->counter("gcd_iterations_total")
      ->add(simt.gcd.iterations + scalar.iterations);
  metrics->counter("gcd_swaps_total")->add(simt.gcd.swaps + scalar.swaps);
  metrics->counter("gcd_beta_nonzero_total")
      ->add(simt.gcd.beta_nonzero + scalar.beta_nonzero);
}

BlockGrid::Block BlockGrid::block(std::size_t index) const noexcept {
  // Row i starts at offset(i) = i·g − i·(i−1)/2. Invert with the quadratic
  // formula in double precision, then fix up (the sqrt can be off by one
  // ulp for huge grids).
  const double g = double(groups);
  const double t = double(index);
  std::size_t i = std::size_t(
      std::max(0.0, std::floor(g + 0.5 - std::sqrt((g + 0.5) * (g + 0.5) -
                                                   2.0 * t))));
  auto offset = [this](std::size_t row) {
    return row * groups - row * (row - 1) / 2;
  };
  while (i > 0 && offset(i) > index) --i;
  while (i + 1 < groups && offset(i + 1) <= index) ++i;
  return {i, i + (index - offset(i))};
}

std::uint64_t BlockGrid::pairs_in_block(Block b) const noexcept {
  const std::uint64_t ni = group_size(b.i);
  if (b.i == b.j) return ni * (ni - 1) / 2;
  return ni * std::uint64_t(group_size(b.j));
}

std::uint64_t BlockGrid::pairs_in_range(std::size_t lo,
                                        std::size_t hi) const noexcept {
  std::uint64_t pairs = 0;
  for (std::size_t b = lo; b < hi; ++b) pairs += pairs_in_block(block(b));
  return pairs;
}

BlockSweeper::BlockSweeper(const ScanCorpus& corpus, const BlockGrid& grid,
                           const AllPairsConfig& config,
                           std::size_t capacity_limbs,
                           const CorpusPanels<ScanLimb>* panels)
    : corpus_(&corpus),
      grid_(grid),
      config_(config),
      panels_(panels),
      scalar_engine_(capacity_limbs),
      batch_(grid.r, capacity_limbs, config.warp_width) {
  if (config.engine == EngineKind::kSimt &&
      config.backend == BulkBackend::kVector) {
    vec_ = make_vec_batch<ScanLimb>(grid.r, capacity_limbs, config.warp_width,
                                    config.vec_isa);
  }
  if (config.metrics != nullptr) {
    obs::MetricsRegistry* m = config.metrics;
    tele_ = std::make_unique<Telemetry>();
    tele_->blocks = m->counter("sweep_blocks_total");
    tele_->pairs = m->counter("sweep_pairs_total");
    tele_->hits = m->counter("sweep_hits_total");
    tele_->full_modulus_hits = m->counter("sweep_full_modulus_hits_total");
    tele_->early_coprime = m->counter("sweep_early_coprime_total");
    tele_->iterations_per_pair_target =
        m->histogram("sweep_iterations_per_pair", 0.0, 4096.0, 128);
    tele_->panel_load_target =
        m->histogram("sweep_panel_load_seconds", 0.0, 1e-3, 100);
    tele_->lane_exec_target =
        m->histogram("sweep_lane_exec_seconds", 0.0, 1e-2, 100);
    tele_->verify_target =
        m->histogram("sweep_verify_seconds", 0.0, 1e-3, 100);
    tele_->iterations_per_pair =
        obs::LocalHistogram(*tele_->iterations_per_pair_target);
    tele_->panel_load_seconds = obs::LocalHistogram(*tele_->panel_load_target);
    tele_->lane_exec_seconds = obs::LocalHistogram(*tele_->lane_exec_target);
    tele_->verify_seconds = obs::LocalHistogram(*tele_->verify_target);
  }
  if (config.trace != nullptr) {
    trace_ = std::make_unique<TraceHandles>();
    trace_->rec = config.trace;
    trace_->panel_load = config.trace->intern("panel_load");
    trace_->lane_exec = config.trace->intern("lane_exec");
    config.trace->set_arg_names(trace_->panel_load, "gi", "gj", "round");
    config.trace->set_arg_names(trace_->lane_exec, "gi", "gj", "round");
  }
}

namespace {

// Engine shims: SimtBatch exposes two run entry points and only tracks
// per-lane iterations in staged mode; the vector engine has one entry point
// and always tracks them (its branch traces drive stats reconstruction).
void engine_run(SimtBatch<ScanLimb, ColumnMatrix>& b, gcd::Variant v,
                bool staged) {
  if (staged) {
    b.run_staged(v);
  } else {
    b.run(v);
  }
}
void engine_run(VecBatchBase<ScanLimb>& b, gcd::Variant v, bool) { b.run(v); }

std::size_t engine_lane_iters(const SimtBatch<ScanLimb, ColumnMatrix>& b,
                              std::size_t k) {
  return b.staged_lane_iterations(k);
}
std::size_t engine_lane_iters(const VecBatchBase<ScanLimb>& b, std::size_t k) {
  return b.lane_iterations(k);
}

bool engine_has_traces(const SimtBatch<ScanLimb, ColumnMatrix>&, bool staged) {
  return staged;
}
bool engine_has_traces(const VecBatchBase<ScanLimb>&, bool) { return true; }

}  // namespace

template <typename Engine, typename Record>
void BlockSweeper::simt_block_rounds(Engine& eng, std::size_t i,
                                     std::size_t i_begin, std::size_t j,
                                     std::size_t j_begin, std::size_t j_end,
                                     std::size_t i_count, bool staged,
                                     Record&& record,
                                     std::uint64_t& early_coprime) {
  const std::size_t r = grid_.r;
  for (std::size_t jj = j_begin; jj < j_end; ++jj) {
    const std::size_t u = jj - j_begin;
    // Lanes: group-i members paired against n_jj this round. For the
    // diagonal block only k < u is live (each unordered pair once).
    const std::size_t k_end = (i == j) ? std::min(u, i_count) : i_count;
    if (k_end == 0) continue;

    if (staged) {
      // One contiguous copy of the group-i panel + one broadcast of n_jj
      // replaces k_end strided loads with their normalization scans.
      obs::ScopedLocalSpan panel_span(
          tele_ ? &tele_->panel_load_seconds : nullptr);
      obs::TraceSpan panel_tspan(trace_ ? trace_->rec : nullptr,
                                 trace_ ? trace_->panel_load : 0);
      panel_tspan.set_args(i, j, jj);
      eng.load_panel(panels_->panel(i), panels_->sizes(i), panels_->rows(i));
      eng.broadcast_y(corpus_->limbs(jj));
      for (std::size_t k = 0; k < k_end; ++k) {
        eng.reset_lane_state(k, pair_early_bits(i_begin + k, jj));
      }
      for (std::size_t k = k_end; k < r; ++k) eng.disable(k);
    } else {
      obs::ScopedLocalSpan panel_span(
          tele_ ? &tele_->panel_load_seconds : nullptr);
      obs::TraceSpan panel_tspan(trace_ ? trace_->rec : nullptr,
                                 trace_ ? trace_->panel_load : 0);
      panel_tspan.set_args(i, j, jj);
      for (std::size_t k = 0; k < r; ++k) {
        if (k < k_end) {
          eng.load(k, corpus_->limbs(i_begin + k), corpus_->limbs(jj),
                   pair_early_bits(i_begin + k, jj));
        } else {
          eng.disable(k);
        }
      }
    }
    {
      obs::ScopedLocalSpan exec_span(
          tele_ ? &tele_->lane_exec_seconds : nullptr);
      obs::TraceSpan exec_tspan(trace_ ? trace_->rec : nullptr,
                                trace_ ? trace_->lane_exec : 0);
      exec_tspan.set_args(i, j, jj);
      engine_run(eng, config_.variant, staged);
    }
    obs::ScopedLocalSpan verify_span(tele_ ? &tele_->verify_seconds : nullptr);
    for (std::size_t k = 0; k < k_end; ++k) {
      ++out_.pairs;
      if (eng.early_coprime(k)) {
        ++early_coprime;
      } else {
        record(i_begin + k, jj, eng.gcd_of(k));
      }
    }
    // Per-pair iteration counts come for free from the branch traces
    // (SimtBatch::run() keeps no per-lane tally, so the lockstep reference
    // path leaves this histogram empty — documented in OBSERVABILITY.md).
    if (tele_ && engine_has_traces(eng, staged)) {
      for (std::size_t k = 0; k < k_end; ++k) {
        tele_->iterations_per_pair.observe(double(engine_lane_iters(eng, k)));
      }
    }
  }
}

void BlockSweeper::run_block(std::size_t block_index) {
  const auto [i, j] = grid_.block(block_index);
  const std::size_t r = grid_.r;
  const std::size_t i_begin = i * r, i_end = std::min(i_begin + r, grid_.m);
  const std::size_t j_begin = j * r, j_end = std::min(j_begin + r, grid_.m);
  const bool staged = config_.staged && panels_ != nullptr;

  // Block-local telemetry tallies, flushed into the sharded counters once
  // per block (a handful of adds) so the pair loops stay increment-free.
  const std::uint64_t pairs_before = out_.pairs;
  const std::size_t hits_before = out_.hits.size();
  std::uint64_t early_coprime = 0;
  std::uint64_t full_modulus_hits = 0;

  auto record = [&](std::size_t a, std::size_t b, mp::BigIntT<ScanLimb> g) {
    // g > 1 ⟺ at least two bits.
    if (g.bit_length() < 2) return;
    const auto gl = g.limbs();
    const bool full =
        std::equal(gl.begin(), gl.end(), corpus_->limbs(a).begin(),
                   corpus_->limbs(a).end()) ||
        std::equal(gl.begin(), gl.end(), corpus_->limbs(b).begin(),
                   corpus_->limbs(b).end());
    if (full) ++full_modulus_hits;
    out_.hits.push_back({a, b, to_default_bigint<ScanLimb>(gl), full});
  };

  if (config_.engine == EngineKind::kSimt) {
    if (vec_) {
      simt_block_rounds(*vec_, i, i_begin, j, j_begin, j_end, i_end - i_begin,
                        staged, record, early_coprime);
    } else {
      simt_block_rounds(batch_, i, i_begin, j, j_begin, j_end, i_end - i_begin,
                        staged, record, early_coprime);
    }
  } else {
    for (std::size_t jj = j_begin; jj < j_end; ++jj) {
      const std::size_t u = jj - j_begin;
      const std::size_t k_end =
          (i == j) ? std::min(u, i_end - i_begin) : i_end - i_begin;
      if (k_end == 0) continue;
      obs::ScopedLocalSpan exec_span(
          tele_ ? &tele_->lane_exec_seconds : nullptr);
      obs::TraceSpan exec_tspan(trace_ ? trace_->rec : nullptr,
                                trace_ ? trace_->lane_exec : 0);
      exec_tspan.set_args(i, j, jj);
      for (std::size_t k = 0; k < k_end; ++k) {
        ++out_.pairs;
        const std::uint64_t iters_before = out_.scalar.iterations;
        const auto run = scalar_engine_.run(
            config_.variant, corpus_->limbs(i_begin + k), corpus_->limbs(jj),
            pair_early_bits(i_begin + k, jj), &out_.scalar);
        if (tele_) {
          tele_->iterations_per_pair.observe(
              double(out_.scalar.iterations - iters_before));
        }
        if (run.early_coprime) {
          ++early_coprime;
        } else {
          record(i_begin + k, jj, mp::BigIntT<ScanLimb>::from_limbs(run.gcd));
        }
      }
    }
  }

  if (tele_) {
    tele_->blocks->inc();
    tele_->pairs->add(out_.pairs - pairs_before);
    tele_->hits->add(out_.hits.size() - hits_before);
    tele_->full_modulus_hits->add(full_modulus_hits);
    tele_->early_coprime->add(early_coprime);
  }
}

BlockSweeper::Output BlockSweeper::take() {
  if (config_.engine == EngineKind::kSimt) {
    if (vec_) {
      out_.simt = vec_->stats();
      vec_->reset_stats();
    } else {
      out_.simt = batch_.stats();
      batch_.reset_stats();
    }
  }
  if (tele_) {
    tele_->iterations_per_pair_target->merge(tele_->iterations_per_pair);
    tele_->panel_load_target->merge(tele_->panel_load_seconds);
    tele_->lane_exec_target->merge(tele_->lane_exec_seconds);
    tele_->verify_target->merge(tele_->verify_seconds);
    tele_->iterations_per_pair.reset();
    tele_->panel_load_seconds.reset();
    tele_->lane_exec_seconds.reset();
    tele_->verify_seconds.reset();
  }
  Output result = std::move(out_);
  out_ = Output{};
  return result;
}

}  // namespace bulkgcd::bulk
