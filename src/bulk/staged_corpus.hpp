// Incrementally growable staged corpus — the fold target of the streaming
// intake service (docs/INTAKE_SERVICE.md).
//
// The one-shot sweep stages its corpus once: ScanCorpus repacks every BigInt
// into flat scan limbs, CorpusPanels lays the groups out column-major, and
// every batch refresh is a contiguous panel copy. The incremental probe path
// used to rebuild BOTH per arrival — O(corpus) staging work on top of the
// O(corpus) probe, every single key. StagedCorpusT keeps the staged form
// *live* across arrivals: append() repacks just the new modulus and writes it
// into its group panel, so probe_incremental's staged/vector backends ride
// the same contiguous panel loads as the batch sweep with amortized O(1)
// staging per arrival.
//
// Capacity growth is the one re-staging event: when an arrival needs more
// padded limbs than the panels carry, the panels are rebuilt from the flat
// limb store with at least double the previous value capacity — classic
// amortized doubling, so a stream of mixed-size keys re-stages O(log max)
// times total, not per key.
#pragma once

#include <algorithm>
#include <cstddef>
#include <optional>
#include <span>
#include <type_traits>
#include <vector>

#include "bulk/layout.hpp"
#include "bulk/scan_corpus.hpp"
#include "mp/bigint.hpp"
#include "mp/limb_traits.hpp"

namespace bulkgcd::bulk {

template <mp::LimbType Limb>
class StagedCorpusT {
 public:
  /// Stage `seed` as the initial corpus. `group_size` is the panel lane
  /// count r and stays fixed for the lifetime of the object (it is the probe
  /// block geometry; the scheduler clamps nothing — a corpus smaller than r
  /// simply leaves tail lanes disabled).
  explicit StagedCorpusT(std::span<const mp::BigInt> seed,
                         std::size_t group_size)
      : r_(std::max<std::size_t>(1, group_size)) {
    offsets_.push_back(0);
    for (const auto& n : seed) append(n);
    if (!panels_) restage(1);  // empty seed: panels() stays valid
  }

  /// Repack + stage one more modulus at index size(). Amortized O(limbs of
  /// n); rebuilds the panels (O(corpus)) only when n outsizes every value
  /// staged so far — and then with doubled capacity.
  void append(const mp::BigInt& n) {
    std::vector<Limb> packed_storage;
    std::span<const Limb> packed;
    if constexpr (std::is_same_v<Limb, std::uint32_t>) {
      packed = n.limbs();
    } else {
      packed_storage = repack_limbs<Limb>(n.limbs());
      packed = packed_storage;
    }
    const std::size_t bits = n.bit_length();
    data_.insert(data_.end(), packed.begin(), packed.end());
    offsets_.push_back(data_.size());
    sizes_.push_back(packed.size());
    bits_.push_back(bits);
    cap_ = std::max(cap_, packed.size());
    if (!panels_ || packed.size() + kBatchPadLimbs > panels_->padded_limbs()) {
      restage(std::max(packed.size(), 2 * value_cap_));
    } else {
      panels_->append(packed, bits);
    }
  }

  std::size_t size() const noexcept { return sizes_.size(); }
  /// Normalized limbs of modulus i (little-endian), in scan-limb units.
  std::span<const Limb> limbs(std::size_t i) const noexcept {
    return {data_.data() + offsets_[i], sizes_[i]};
  }
  /// Cached bit_length() of modulus i.
  std::size_t bits(std::size_t i) const noexcept { return bits_[i]; }
  /// Max limb count over the corpus (engine capacity floor).
  std::size_t max_limbs() const noexcept { return cap_; }
  /// Panel lane count r — the probe block geometry.
  std::size_t group_size() const noexcept { return r_; }

  /// The live column-major panels. Valid only while no append() intervenes
  /// (appending can reallocate or rebuild); size() always equals
  /// panels().corpus_size().
  const CorpusPanels<Limb>& panels() const noexcept { return *panels_; }

 private:
  /// Rebuild the panels with room for values up to value_cap limbs.
  void restage(std::size_t value_cap) {
    value_cap_ = std::max<std::size_t>(1, value_cap);
    panels_.emplace(r_, value_cap_ + kBatchPadLimbs);
    for (std::size_t i = 0; i < size(); ++i) {
      panels_->append(limbs(i), bits_[i]);
    }
  }

  std::size_t r_;
  std::vector<Limb> data_;               // flat normalized limbs
  std::vector<std::size_t> offsets_;     // size()+1 prefix offsets into data_
  std::vector<std::size_t> sizes_;
  std::vector<std::size_t> bits_;
  std::size_t cap_ = 0;        // max staged value size, in limbs
  std::size_t value_cap_ = 0;  // panel value capacity (pad − kBatchPadLimbs)
  std::optional<CorpusPanels<Limb>> panels_;
};

using StagedCorpus = StagedCorpusT<ScanLimb>;

}  // namespace bulkgcd::bulk
