#include "bulk/build_info.hpp"

#include <cstdio>

#include "bulk/allpairs.hpp"
#include "bulk/scan_corpus.hpp"

#ifndef BULKGCD_VERSION
#define BULKGCD_VERSION "0.0.0-unversioned"
#endif

namespace bulkgcd::bulk {

BuildInfo query_build_info() {
  BuildInfo info;
  info.version = BULKGCD_VERSION;
  info.limb_bits = int(sizeof(ScanLimb) * 8);
  info.compiled_backends = {"lockstep", "staged", "vector-portable"};
#if defined(BULKGCD_HAVE_AVX2_TU)
  info.compiled_backends.push_back("vector-avx2");
#endif
  // What a default scan would actually run here: resolve a staged-SIMT
  // config the same way all_pairs_gcd does (environment override + CPU
  // probe). resolve_backend throws only on a malformed BULKGCD_FORCE_BACKEND
  // value; report that instead of crashing a status probe.
  try {
    AllPairsConfig cfg;
    resolve_backend(cfg);
    if (cfg.backend == BulkBackend::kVector) {
      info.active_backend =
          std::string("vector-") + to_string(cfg.vec_isa);
    } else {
      info.active_backend = to_string(cfg.backend);
    }
  } catch (const std::exception& e) {
    info.active_backend = std::string("invalid: ") + e.what();
  }
  return info;
}

std::string build_info_json(const BuildInfo& info, double uptime_seconds) {
  char uptime[40];
  std::snprintf(uptime, sizeof(uptime), "%.3f", uptime_seconds);
  std::string out = "{\"service\":\"bulkgcd\",\"version\":\"" + info.version +
                    "\",\"uptime_seconds\":" + uptime +
                    ",\"limb_bits\":" + std::to_string(info.limb_bits) +
                    ",\"compiled_backends\":[";
  for (std::size_t i = 0; i < info.compiled_backends.size(); ++i) {
    if (i) out += ",";
    out += "\"" + info.compiled_backends[i] + "\"";
  }
  out += "],\"active_backend\":\"" + info.active_backend + "\"}";
  return out;
}

std::string build_info_line(const BuildInfo& info) {
  std::string out = "bulkgcd " + info.version + " | limbs " +
                    std::to_string(info.limb_bits) + "-bit | backends ";
  for (std::size_t i = 0; i < info.compiled_backends.size(); ++i) {
    if (i) out += ",";
    out += info.compiled_backends[i];
  }
  out += " | active " + info.active_backend;
  return out;
}

}  // namespace bulkgcd::bulk
