// AVX2 leg of the vector engine: the same vec_batch_impl.hpp, compiled with
// -mavx2 (see src/CMakeLists.txt — the flag is per-file, so the rest of the
// library stays baseline). The W-wide lane loops lower to 256-bit loads,
// vpsrlvd/vpsllvd variable shifts, and blends; dispatch.cpp only routes here
// after __builtin_cpu_supports("avx2") says the host can execute them. This
// TU is only added to the build on x86-64 compilers that accept -mavx2
// (BULKGCD_HAVE_AVX2_TU).
#define BULKGCD_VEC_IMPL_NS vec_avx2
#define BULKGCD_VEC_IMPL_ISA ::bulkgcd::bulk::VecIsa::kAvx2
#include "bulk/vec/vec_batch_impl.hpp"

#include "bulk/vec/vec_factories.hpp"

namespace bulkgcd::bulk::detail {

std::unique_ptr<VecBatchBase<std::uint32_t>> make_vec_batch_avx2_u32(
    std::size_t lanes, std::size_t capacity_limbs, std::size_t warp_width) {
  return std::make_unique<vec_avx2::VecBatch<std::uint32_t>>(
      lanes, capacity_limbs, warp_width);
}

std::unique_ptr<VecBatchBase<std::uint64_t>> make_vec_batch_avx2_u64(
    std::size_t lanes, std::size_t capacity_limbs, std::size_t warp_width) {
  return std::make_unique<vec_avx2::VecBatch<std::uint64_t>>(
      lanes, capacity_limbs, warp_width);
}

}  // namespace bulkgcd::bulk::detail
