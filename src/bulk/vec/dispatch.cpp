// Runtime CPU dispatch for the vector engine — the CPU analogue of picking a
// CUDA launch configuration for the device actually present. The binary
// carries every ISA leg the compiler could build (portable always, AVX2 on
// x86-64); detect_vec_isa() probes the executing CPU once and make_vec_batch
// routes to the best leg, so one build runs correctly on machines with and
// without AVX2. resolve_backend() layers the BULKGCD_FORCE_BACKEND
// environment override on top for benchmarking and differential testing.

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>

#include "bulk/allpairs.hpp"
#include "bulk/vec/vec_backend.hpp"
#include "bulk/vec/vec_factories.hpp"

namespace bulkgcd::bulk {

VecIsa detect_vec_isa() noexcept {
#if defined(BULKGCD_HAVE_AVX2_TU) && (defined(__x86_64__) || defined(_M_X64))
  if (__builtin_cpu_supports("avx2")) return VecIsa::kAvx2;
#endif
  return VecIsa::kPortable;
}

bool vec_isa_available(VecIsa isa) noexcept {
  switch (isa) {
    case VecIsa::kAuto:
    case VecIsa::kPortable:
      return true;
    case VecIsa::kAvx2:
      return detect_vec_isa() == VecIsa::kAvx2;
  }
  return false;
}

template <mp::LimbType Limb>
std::unique_ptr<VecBatchBase<Limb>> make_vec_batch(std::size_t lanes,
                                                   std::size_t capacity_limbs,
                                                   std::size_t warp_width,
                                                   VecIsa isa) {
  if (isa == VecIsa::kAuto) isa = detect_vec_isa();
  if (!vec_isa_available(isa)) {
    throw std::invalid_argument(
        std::string("vector ISA unavailable on this machine: ") +
        to_string(isa));
  }
  if (isa == VecIsa::kAvx2) {
#if defined(BULKGCD_HAVE_AVX2_TU)
    if constexpr (sizeof(Limb) == 4) {
      return detail::make_vec_batch_avx2_u32(lanes, capacity_limbs,
                                             warp_width);
    } else {
      return detail::make_vec_batch_avx2_u64(lanes, capacity_limbs,
                                             warp_width);
    }
#endif
  }
  if constexpr (sizeof(Limb) == 4) {
    return detail::make_vec_batch_portable_u32(lanes, capacity_limbs,
                                               warp_width);
  } else {
    return detail::make_vec_batch_portable_u64(lanes, capacity_limbs,
                                               warp_width);
  }
}

template std::unique_ptr<VecBatchBase<std::uint32_t>>
make_vec_batch<std::uint32_t>(std::size_t, std::size_t, std::size_t, VecIsa);
template std::unique_ptr<VecBatchBase<std::uint64_t>>
make_vec_batch<std::uint64_t>(std::size_t, std::size_t, std::size_t, VecIsa);

void resolve_backend(AllPairsConfig& config) {
  if (const char* force = std::getenv("BULKGCD_FORCE_BACKEND")) {
    const std::string_view v{force};
    if (v == "auto" || v.empty()) {
      config.backend = BulkBackend::kAuto;
    } else if (v == "lockstep") {
      config.backend = BulkBackend::kLockstep;
    } else if (v == "staged") {
      config.backend = BulkBackend::kStaged;
    } else if (v == "vector") {
      config.backend = BulkBackend::kVector;
      config.vec_isa = VecIsa::kAuto;
    } else if (v == "vector-portable") {
      config.backend = BulkBackend::kVector;
      config.vec_isa = VecIsa::kPortable;
    } else {
      throw std::invalid_argument(
          std::string("BULKGCD_FORCE_BACKEND: unknown value \"") +
          std::string(v) +
          "\" (want auto|lockstep|staged|vector|vector-portable)");
    }
  }
  if (config.engine != EngineKind::kSimt) {
    // The scalar engine ignores backends; normalize so callers can branch on
    // the resolved value without re-checking the engine kind.
    config.backend = BulkBackend::kLockstep;
    return;
  }
  if (config.backend == BulkBackend::kAuto) {
    if (!config.staged) {
      config.backend = BulkBackend::kLockstep;
    } else if (detect_vec_isa() == VecIsa::kAvx2) {
      // Auto only opts into the vector backend when a real SIMD leg runs;
      // the portable leg exists for coverage, not speed.
      config.backend = BulkBackend::kVector;
    } else {
      config.backend = BulkBackend::kStaged;
    }
  }
  if (config.backend == BulkBackend::kVector) {
    if (config.vec_isa == VecIsa::kAuto) config.vec_isa = detect_vec_isa();
    if (!vec_isa_available(config.vec_isa)) {
      throw std::invalid_argument(
          std::string("vector ISA unavailable on this machine: ") +
          to_string(config.vec_isa));
    }
  }
}

}  // namespace bulkgcd::bulk
