// Portable leg of the vector engine: vec_batch_impl.hpp compiled with the
// project's baseline flags. Same W-wide code shape as the AVX2 leg — the
// compiler simply lowers the lane loops to whatever the target has (scalar
// on a plain build), which keeps the engine's behavior identical on every
// platform and gives the bit-identity tests a second implementation to pin
// the AVX2 leg against.
#define BULKGCD_VEC_IMPL_NS vec_portable
#define BULKGCD_VEC_IMPL_ISA ::bulkgcd::bulk::VecIsa::kPortable
#include "bulk/vec/vec_batch_impl.hpp"

#include "bulk/vec/vec_factories.hpp"

namespace bulkgcd::bulk::detail {

std::unique_ptr<VecBatchBase<std::uint32_t>> make_vec_batch_portable_u32(
    std::size_t lanes, std::size_t capacity_limbs, std::size_t warp_width) {
  return std::make_unique<vec_portable::VecBatch<std::uint32_t>>(
      lanes, capacity_limbs, warp_width);
}

std::unique_ptr<VecBatchBase<std::uint64_t>> make_vec_batch_portable_u64(
    std::size_t lanes, std::size_t capacity_limbs, std::size_t warp_width) {
  return std::make_unique<vec_portable::VecBatch<std::uint64_t>>(
      lanes, capacity_limbs, warp_width);
}

}  // namespace bulkgcd::bulk::detail
