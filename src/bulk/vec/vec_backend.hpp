// The SIMD warp engine's public surface (docs/GPU_PORTING.md).
//
// VecBatchBase is the batch interface BlockSweeper drives — deliberately the
// same verbs as SimtBatch (load_panel / broadcast_y / reset_lane_state /
// disable / run / early_coprime / gcd_of) so the vector backend slots into
// the staged sweep without touching the scan driver, telemetry, or
// checkpoint identity. The implementation template (vec_batch_impl.hpp) is
// compiled twice into the library: once with baseline flags (the portable
// leg — the compiler lowers the W-wide lane loops to scalar code, same code
// shape everywhere) and once with -mavx2 on x86-64 (256-bit registers:
// W = 8 lanes on 32-bit limbs, W = 4 on 64-bit). make_vec_batch() picks the
// implementation by cpuid probe or explicit VecIsa.
//
// Virtual dispatch happens once per batch verb (a block round spans
// thousands of limb operations), never inside a kernel.
#pragma once

#include <cstddef>
#include <memory>
#include <span>

#include "bulk/backend.hpp"
#include "bulk/simt_stats.hpp"
#include "gcd/algorithms.hpp"
#include "mp/bigint.hpp"

namespace bulkgcd::bulk {

/// Best vector ISA compiled into this binary AND supported by this CPU.
/// Never returns kAuto; returns kPortable when no SIMD leg applies.
VecIsa detect_vec_isa() noexcept;

/// Whether make_vec_batch(..., isa) can honor the request on this machine.
bool vec_isa_available(VecIsa isa) noexcept;

template <mp::LimbType Limb>
class VecBatchBase {
 public:
  /// Sentinel for load()/reset_lane_state(): inherit run()'s early_bits.
  static constexpr std::size_t kInheritEarlyBits = std::size_t(-1);

  virtual ~VecBatchBase() = default;

  virtual std::size_t lanes() const noexcept = 0;
  virtual std::size_t capacity() const noexcept = 0;
  /// Input bytes a GPU would copy host→device for this batch.
  virtual std::size_t input_bytes() const noexcept = 0;

  /// Load one pair into a lane (and mark it active). Values must be odd.
  virtual void load(std::size_t lane, std::span<const Limb> x,
                    std::span<const Limb> y,
                    std::size_t early_bits = kInheritEarlyBits) = 0;
  /// Bulk-stage the X side from a column-major CorpusPanels panel.
  virtual void load_panel(std::span<const Limb> panel,
                          std::span<const std::size_t> sizes,
                          std::size_t rows) = 0;
  /// Broadcast one normalized value into every lane's Y side.
  virtual void broadcast_y(std::span<const Limb> y) = 0;
  /// Re-arm one lane after load_panel()/broadcast_y().
  virtual void reset_lane_state(std::size_t lane,
                                std::size_t early_bits = kInheritEarlyBits) = 0;
  /// Mask a lane off (padding at the tail of a block).
  virtual void disable(std::size_t lane) noexcept = 0;

  /// Run all active lanes to completion, W at a time per vector register.
  /// Supported variants: kBinary, kFastBinary, kApproximate (Table V).
  virtual void run(gcd::Variant variant, std::size_t early_bits = 0) = 0;

  virtual bool early_coprime(std::size_t lane) const noexcept = 0;
  virtual mp::BigIntT<Limb> gcd_of(std::size_t lane) const = 0;
  /// Iterations the lane executed in the most recent run() (branch-trace
  /// length — feeds the iterations-per-pair histogram like run_staged()).
  virtual std::size_t lane_iterations(std::size_t lane) const noexcept = 0;

  virtual const SimtStats& stats() const noexcept = 0;
  virtual void reset_stats() noexcept = 0;

  /// The ISA this batch executes with (resolved, never kAuto).
  virtual VecIsa isa() const noexcept = 0;
  /// Lanes per vector register for this limb width.
  virtual std::size_t vector_width() const noexcept = 0;
};

/// Construct a vector batch. isa = kAuto probes the CPU; an explicit ISA
/// throws std::invalid_argument when unavailable (missing TU or CPU
/// support) so tests can pin the portable-vs-AVX2 comparison.
template <mp::LimbType Limb>
std::unique_ptr<VecBatchBase<Limb>> make_vec_batch(
    std::size_t lanes, std::size_t capacity_limbs, std::size_t warp_width = 32,
    VecIsa isa = VecIsa::kAuto);

extern template std::unique_ptr<VecBatchBase<std::uint32_t>>
make_vec_batch<std::uint32_t>(std::size_t, std::size_t, std::size_t, VecIsa);
extern template std::unique_ptr<VecBatchBase<std::uint64_t>>
make_vec_batch<std::uint64_t>(std::size_t, std::size_t, std::size_t, VecIsa);

}  // namespace bulkgcd::bulk
