// W-lane SIMD warp engine — implementation template (Section VI on vector
// registers instead of CUDA warps; see docs/GPU_PORTING.md).
//
// This header is the single source of the vector backend and is compiled
// into the library TWICE under distinct namespaces: vec_portable.cpp with
// baseline flags and vec_avx2.cpp with -mavx2 (x86-64 only). The kernels
// are written as fixed-trip-count W-wide loops over the contiguous
// column-major limb rows of the batch matrices — exactly the loads a CUDA
// warp coalesces (Figure 3) — so the -mavx2 TU lowers them to 256-bit
// vector loads/stores and blends, while the portable TU lowers the same
// code shape to scalar instructions. No intrinsics; no ODR violation (the
// including TU defines BULKGCD_VEC_IMPL_NS / BULKGCD_VEC_IMPL_ISA).
//
// Execution model per W-lane group (the "vector warp"):
//   * Approximate Euclidean in the Section-V regime (the all-pairs scan
//     configuration: early termination >= 3 limbs, so the quotient head is
//     always Case 4) runs FULLY vector-resident: lane sizes, swap flags,
//     live masks and iteration counts stay in vector registers for the
//     whole group run; the round head (termination test, Case-4
//     classification, the quotient via 4-lane double division + exact
//     fixup, the d0 classify) computes all W lanes at once from
//     register-carried top words plus two gathers per round; the masked
//     submul sweep tracks the normalized result size in-register — the
//     common path does no per-lane scalar work at all;
//   * Binary, Fast Binary and non-Section-V Approximate rounds use a
//     scalar per-lane head that classifies each live lane's branch, then
//     serialize branch groups like a SIMT machine serializes divergent
//     warps, each group one masked vector sweep over the limb rows;
//     finished lanes and lanes in other branches are masked off exactly
//     like predicated-off CUDA threads (stores blend the computed limb
//     against the lane's previous value);
//   * rare paths — the d0 = 0 slow strip (probability ~2^-d per iteration),
//     the β > 0 shifted-add kernel, the case-1 register tail, full-compare
//     swap ties, and the tail group when lanes % W != 0 — drop to the
//     identical scalar kernels of gcd/kernels.hpp on strided accessors, so
//     they are bit-identical to the staged scalar engine by construction
//     rather than by re-derivation.
//
// Ragged lane sizes inside a group are handled by sweeping every masked
// lane to the group's maximum size: rows above a lane's own size hold zero
// limbs (the SimtBatch dirty-row invariant, maintained identically here),
// and zero rows are arithmetic fixed points of every kernel — the sweep
// computes and stores zeros there, and the final store of a short lane
// lands at its own top row with the same value the scalar kernel writes.
//
// Statistics: per-lane branch traces are recorded exactly as run_staged()
// records them, and replay_warp_stats() (bulk/simt_stats.hpp) reconstructs
// the lockstep SimtStats from the traces — the accounting warp width stays
// the configured warp_width, NOT W, so stats are bit-identical to both
// SimtBatch modes no matter the vector width.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cstdint>
#include <cstring>
#if defined(__AVX2__)
#include <immintrin.h>
#endif
#include <span>
#include <stdexcept>
#include <vector>

#include "bulk/layout.hpp"
#include "bulk/simt_stats.hpp"
#include "bulk/vec/vec_backend.hpp"
#include "gcd/algorithms.hpp"
#include "gcd/approx.hpp"
#include "gcd/kernels.hpp"

#ifndef BULKGCD_VEC_IMPL_NS
#error "vec_batch_impl.hpp must be included with BULKGCD_VEC_IMPL_NS defined"
#endif

#if defined(__GNUC__) && !defined(__clang__)
// The v_load/v_store helpers pass vector-extension values in and out of
// functions that are always inlined into this TU; no real ABI boundary is
// crossed, so gcc's psABI note about vector returns is noise here.
#pragma GCC diagnostic ignored "-Wpsabi"
#endif
#ifndef BULKGCD_VEC_IMPL_ISA
#error "vec_batch_impl.hpp must be included with BULKGCD_VEC_IMPL_ISA defined"
#endif

namespace bulkgcd::bulk {
namespace BULKGCD_VEC_IMPL_NS {

/// GNU vector extensions express the masked row sweeps directly as W-wide
/// SIMD values: the -mavx2 TU lowers them to 256-bit loads, blends and
/// per-lane variable shifts, while the portable TU lowers the identical
/// source to baseline (SSE2 or scalar) code. The auto-vectorizer refuses
/// the mixed 32/64-bit carry chains of the plain loops, so the hot kernels
/// go through these types when available; compilers without the extension
/// and the 64-bit-limb build (whose Wide is __int128, not a vectorizable
/// element type) keep the plain W-wide loops, which remain the semantic
/// reference — both paths are exact integer arithmetic, bit-identical.
template <class Limb>
struct VecTraits {
  static constexpr bool available = false;
};
#if defined(__GNUC__) || defined(__clang__)
template <>
struct VecTraits<std::uint32_t> {
  static constexpr bool available = true;
  typedef std::uint32_t LimbVec __attribute__((vector_size(32)));  // W = 8
  // Lane sizes fit far below 2^31, so the per-row "i < ly" test uses the
  // single-instruction signed compare instead of the unsigned sequence.
  typedef std::int32_t SignedVec __attribute__((vector_size(32)));
  // The carry/borrow chains run as two u64x4 half-chains (even and odd
  // lanes), keeping every value in native 256-bit registers AND giving the
  // out-of-order core two independent dependency chains per row.
  typedef std::uint64_t PairVec __attribute__((vector_size(32)));

  typedef std::int64_t SignedPairVec __attribute__((vector_size(32)));
  typedef double DblVec __attribute__((vector_size(32)));
  typedef float FloatVec __attribute__((vector_size(32)));

  /// Eight per-lane loads from arbitrary 32-bit element offsets off one base
  /// (vpgatherdd) — how the vector-resident round reads the strided top
  /// words of all lanes at once. Offsets must stay below 2^31 elements.
  static LimbVec gather(const std::uint32_t* b, LimbVec idx) noexcept {
#if defined(__AVX2__)
    return (LimbVec)_mm256_i32gather_epi32(reinterpret_cast<const int*>(b),
                                           (__m256i)idx, 4);
#else
    LimbVec r;
    for (int l = 0; l < 8; ++l) r[l] = b[idx[l]];
    return r;
#endif
  }

  /// One bit per 32-bit lane from a 0/~0 mask vector (vmovmskps).
  static int movemask(LimbVec m) noexcept {
#if defined(__AVX2__)
    return _mm256_movemask_ps((__m256)m);
#else
    int r = 0;
    for (int l = 0; l < 8; ++l) r |= int(m[l] >> 31) << l;
    return r;
#endif
  }

  /// Full 64-bit product of the low 32 bits of each 64-bit lane (vpmuludq).
  /// gcc has no pattern that simplifies the generic u64x4 multiply when the
  /// operands' high words are known zero — it always expands the 64 x 64
  /// sequence — so the AVX2 TU uses the intrinsic; everything else in the
  /// kernels stays plain vector-extension arithmetic.
  static PairVec mul32(PairVec a, PairVec b) noexcept {
#if defined(__AVX2__)
    return (PairVec)_mm256_mul_epu32((__m256i)a, (__m256i)b);
#else
    return (a & 0xffffffffu) * (b & 0xffffffffu);
#endif
  }
};
#endif

template <mp::LimbType Limb>
class VecBatch final : public VecBatchBase<Limb> {
  using Wide = typename mp::LimbTraits<Limb>::Wide;
  static constexpr int LB = mp::limb_bits<Limb>;
  static constexpr Wide kMask = mp::limb_base<Limb> - 1;

 public:
  /// Lanes per 256-bit vector register.
  static constexpr std::size_t W = 32 / sizeof(Limb);
  static constexpr std::size_t kInheritEarlyBits = std::size_t(-1);

  VecBatch(std::size_t lanes, std::size_t capacity_limbs,
           std::size_t warp_width)
      : lanes_(lanes),
        cap_(capacity_limbs + kBatchPadLimbs),
        warp_(warp_width),
        mat_(lanes, 2 * cap_),
        lx_(lanes, 0),
        ly_(lanes, 0),
        early_(lanes, kInheritEarlyBits),
        eff_early_(lanes, 0),
        swapped_(lanes, 0),
        active_(lanes, 0) {
    if (warp_width == 0) throw std::invalid_argument("warp width must be > 0");
  }

  std::size_t lanes() const noexcept override { return lanes_; }
  std::size_t capacity() const noexcept override {
    return cap_ - kBatchPadLimbs;
  }
  std::size_t input_bytes() const noexcept override { return mat_.bytes(); }
  VecIsa isa() const noexcept override { return BULKGCD_VEC_IMPL_ISA; }
  std::size_t vector_width() const noexcept override { return W; }

  void load(std::size_t lane, std::span<const Limb> x, std::span<const Limb> y,
            std::size_t early_bits) override {
    assert(lane < lanes_);
    early_[lane] = early_bits;
    if (x.size() > capacity() || y.size() > capacity()) {
      throw std::length_error("VecBatch: input exceeds capacity");
    }
    fill_half(a_data(), lane, x.data(), x.size());
    fill_half(b_data(), lane, y.data(), y.size());
    x_rows_ = cap_;
    y_rows_ = cap_;
    lx_[lane] = gcd::acc_normalized_size(lane_a(lane), x.size());
    ly_[lane] = gcd::acc_normalized_size(lane_b(lane), y.size());
    swapped_[lane] = 0;
    if (gcd::acc_compare(lane_a(lane), lx_[lane], lane_b(lane),
                         ly_[lane]) < 0) {
      swapped_[lane] ^= 1;
      std::swap(lx_[lane], ly_[lane]);
    }
    active_[lane] = 1;
  }

  void load_panel(std::span<const Limb> panel,
                  std::span<const std::size_t> sizes,
                  std::size_t rows) override {
    if (rows > cap_ || panel.size() < rows * lanes_ ||
        sizes.size() != lanes_) {
      throw std::invalid_argument("VecBatch: panel does not fit this batch");
    }
    Limb* dst = a_data();
    std::copy_n(panel.data(), rows * lanes_, dst);
    if (x_rows_ > rows) {
      std::fill(dst + rows * lanes_, dst + x_rows_ * lanes_, Limb{0});
    }
    x_rows_ = rows;
    std::copy_n(sizes.data(), lanes_, lx_.data());
  }

  void broadcast_y(std::span<const Limb> y) override {
    if (y.size() > capacity()) {
      throw std::length_error("VecBatch: input exceeds capacity");
    }
    Limb* dst = b_data();
    for (std::size_t i = 0; i < y.size(); ++i) {
      std::fill_n(dst + i * lanes_, lanes_, y[i]);
    }
    if (y_rows_ > y.size()) {
      std::fill(dst + y.size() * lanes_, dst + y_rows_ * lanes_, Limb{0});
    }
    y_rows_ = std::min(cap_, y.size() + 1);
    std::fill_n(ly_.data(), lanes_, y.size());
  }

  void reset_lane_state(std::size_t lane, std::size_t early_bits) override {
    assert(lane < lanes_);
    early_[lane] = early_bits;
    swapped_[lane] = 0;
    if (gcd::acc_compare(lane_a(lane), lx_[lane], lane_b(lane),
                         ly_[lane]) < 0) {
      swapped_[lane] ^= 1;
      std::swap(lx_[lane], ly_[lane]);
    }
    active_[lane] = 1;
  }

  void disable(std::size_t lane) noexcept override { active_[lane] = 0; }

  void run(gcd::Variant variant, std::size_t early_bits) override {
    if (variant != gcd::Variant::kBinary &&
        variant != gcd::Variant::kFastBinary &&
        variant != gcd::Variant::kApproximate) {
      throw std::invalid_argument("VecBatch: unsupported variant");
    }
    for (std::size_t lane = 0; lane < lanes_; ++lane) {
      eff_early_[lane] =
          early_[lane] == kInheritEarlyBits ? early_bits : early_[lane];
    }
    if (branch_log_.size() != lanes_) branch_log_.resize(lanes_);
    for (auto& log : branch_log_) {
      if (log.capacity() < 160) log.reserve(160);
      log.clear();
    }
    switch (variant) {
      case gcd::Variant::kBinary:
        run_impl<gcd::Variant::kBinary>();
        break;
      case gcd::Variant::kFastBinary:
        run_impl<gcd::Variant::kFastBinary>();
        break;
      default:
        run_impl<gcd::Variant::kApproximate>();
        break;
    }
    replay_warp_stats(branch_log_, lanes_, warp_, stats_);
  }

  bool early_coprime(std::size_t lane) const noexcept override {
    return ly_[lane] > 0;
  }

  mp::BigIntT<Limb> gcd_of(std::size_t lane) const override {
    std::vector<Limb> limbs(lx_[lane]);
    auto x = swapped_[lane] ? lane_b(lane) : lane_a(lane);
    for (std::size_t i = 0; i < lx_[lane]; ++i) limbs[i] = x[i];
    return mp::BigIntT<Limb>::from_limbs(limbs);
  }

  std::size_t lane_iterations(std::size_t lane) const noexcept override {
    return lane < branch_log_.size() ? branch_log_[lane].size() : 0;
  }

  const SimtStats& stats() const noexcept override { return stats_; }
  void reset_stats() noexcept override { stats_ = SimtStats{}; }

 private:
  /// Register-resident view of one lane's algorithm state (identical to
  /// SimtBatch::LaneState — the scalar fallback steps below are verbatim
  /// copies operating on it).
  struct LaneState {
    Strided<Limb> x{nullptr, 0}, y{nullptr, 0};
    std::size_t lx = 0, ly = 0;
    std::uint8_t swapped = 0;
  };

  // The A and B operand matrices live in the two halves of ONE column-major
  // allocation (A rows [0, cap_), B rows [cap_, 2·cap_)): the vector-resident
  // round addresses the current X/Y role of every lane as a single gather
  // from one base pointer plus a per-lane half offset.
  Limb* a_data() noexcept { return mat_.storage().data(); }
  Limb* b_data() noexcept { return mat_.storage().data() + cap_ * lanes_; }
  const Limb* a_data() const noexcept { return mat_.storage().data(); }
  const Limb* b_data() const noexcept {
    return mat_.storage().data() + cap_ * lanes_;
  }
  Strided<Limb> lane_a(std::size_t lane) noexcept {
    return {a_data() + lane, lanes_};
  }
  Strided<Limb> lane_b(std::size_t lane) noexcept {
    return {b_data() + lane, lanes_};
  }
  ConstStrided<Limb> lane_a(std::size_t lane) const noexcept {
    return {a_data() + lane, lanes_};
  }
  ConstStrided<Limb> lane_b(std::size_t lane) const noexcept {
    return {b_data() + lane, lanes_};
  }
  /// ColumnMatrix::fill_lane for one half of the shared allocation (the
  /// matrix's own would zero-pad across both operands).
  void fill_half(Limb* half, std::size_t lane, const Limb* src,
                 std::size_t n) noexcept {
    Limb* p = half + lane;
    std::size_t i = 0;
    for (; i < n; ++i) p[i * lanes_] = src[i];
    for (; i < cap_; ++i) p[i * lanes_] = Limb{0};
  }

  LaneState lane_state(std::size_t lane) noexcept {
    auto a = lane_a(lane);
    auto b = lane_b(lane);
    if (swapped_[lane]) std::swap(a, b);
    return {a, b, lx_[lane], ly_[lane], swapped_[lane]};
  }
  void store_lane(std::size_t lane, const LaneState& s) noexcept {
    lx_[lane] = s.lx;
    ly_[lane] = s.ly;
    swapped_[lane] = s.swapped;
  }

  static void swap_lane(LaneState& s) noexcept {
    std::swap(s.x, s.y);
    std::swap(s.lx, s.ly);
    s.swapped ^= 1;
  }

  bool keeps_going(const LaneState& s, std::size_t early_bits) const noexcept {
    if (s.ly == 0) return false;
    if (early_bits == 0) return true;
    const std::size_t top = s.ly - 1;
    if (top * LB >= early_bits) return true;
    if (s.ly * LB < early_bits) return false;
    const std::size_t bits = top * LB + (LB - std::countl_zero(s.y[top]));
    return bits >= early_bits;
  }

  static bool section_v(std::size_t early_bits) noexcept {
    return early_bits >= 3u * std::size_t(LB);
  }

  // ---- scalar per-lane steps (verbatim SimtBatch semantics) ---------------
  // Used for tail groups (lanes % W) and as the in-round fallback of the
  // rare kernel paths; branch ids MUST match SimtBatch for stats identity.

  int step_binary(LaneState& s, gcd::GcdStats& gs) {
    int branch;
    if ((s.x[0] & 1u) == 0) {
      s.lx = gcd::halve(s.x, s.lx, null_tracer_);
      branch = 0;
    } else if ((s.y[0] & 1u) == 0) {
      s.ly = gcd::halve(s.y, s.ly, null_tracer_);
      branch = 1;
    } else {
      s.lx = gcd::sub_halve(s.x, s.lx, s.y, s.ly, null_tracer_);
      branch = 2;
    }
    swap_if_less(s, gs);
    return branch;
  }

  int step_fast_binary(LaneState& s, gcd::GcdStats& gs) {
    s.lx = gcd::fused_submul_strip(s.x, s.lx, s.y, s.ly, Limb{1},
                                   null_tracer_);
    swap_if_less(s, gs);
    return 0;
  }

  int step_approximate(LaneState& s, bool use_case4, gcd::GcdStats& gs) {
    const auto ar = use_case4
                        ? gcd::approx_case4_only(s.x, s.lx, s.y, s.ly)
                        : gcd::approx(s.x, s.lx, s.y, s.ly);
    gs.count_case(ar.which);
    ++gs.divisions;
    int branch;
    if (ar.which == gcd::ApproxCase::k1) {
      case1_tail(s, ar.alpha);
      branch = 2;
    } else if (ar.beta == 0) {
      Limb alpha = Limb(ar.alpha);
      if ((alpha & 1u) == 0) --alpha;
      s.lx = gcd::fused_submul_strip(s.x, s.lx, s.y, s.ly, alpha,
                                     null_tracer_);
      branch = 0;
    } else {
      ++gs.beta_nonzero;
      s.lx = gcd::fused_submul_shifted_add_strip(
          s.x, s.lx, s.y, s.ly, Limb(ar.alpha), ar.beta, null_tracer_);
      branch = 1;
    }
    swap_if_less(s, gs);
    return branch;
  }

  /// Register-resident case-1 tail (only reachable in non-terminate runs).
  void case1_tail(LaneState& s, Wide alpha) {
    const Wide xv = s.lx == 2 ? gcd::top_two_words(s.x, 2) : Wide(s.x[0]);
    const Wide yv = s.ly == 2 ? gcd::top_two_words(s.y, 2) : Wide(s.y[0]);
    if ((alpha & 1u) == 0) --alpha;
    Wide t = xv - yv * alpha;
    if (t != 0) t >>= gcd::wide_ctz(t);
    std::size_t n = 0;
    while (t != 0) {
      s.x[n++] = Limb(t);
      t >>= LB;
    }
    s.lx = n;
  }

  void swap_if_less(LaneState& s, gcd::GcdStats& gs) {
    if (gcd::acc_compare(s.x, s.lx, s.y, s.ly) < 0) {
      swap_lane(s);
      ++gs.swaps;
    }
  }

  // ---- group driver -------------------------------------------------------

  template <gcd::Variant V>
#if defined(__GNUC__)
  [[gnu::flatten]]
#endif
  void run_impl() {
    gcd::GcdStats tally;
    for (std::size_t base = 0; base < lanes_; base += W) {
      const std::size_t n = std::min(W, lanes_ - base);
      if (n == W) {
        if constexpr (V == gcd::Variant::kApproximate &&
                      VecTraits<Limb>::available && LB == 32) {
          // The vector-resident round covers the Section-V regime (every
          // active lane keeps early >= 3 limbs, so the quotient head is
          // always Case 4) with 32-bit gather offsets; mixed or non-Section-V
          // groups take the generic masked-round driver below.
          bool vec_ok = 2 * cap_ * lanes_ < (std::size_t(1) << 31);
          for (std::size_t l = 0; vec_ok && l < W; ++l) {
            if (active_[base + l] && !section_v(eff_early_[base + l])) {
              vec_ok = false;
            }
          }
          if (vec_ok) {
            run_group_approx_vec(base, tally);
            continue;
          }
        }
        run_group_full<V>(base, tally);
      } else {
        run_group_tail<V>(base, n, tally);
      }
    }
    stats_.gcd += tally;
  }

  /// Tail group (< W lanes): pure scalar lane-to-completion, exactly
  /// run_staged(). The masked-tail correctness burden stays on the scalar
  /// kernels every other engine already uses.
  template <gcd::Variant V>
  void run_group_tail(std::size_t base, std::size_t n, gcd::GcdStats& tally) {
    for (std::size_t l = 0; l < n; ++l) {
      const std::size_t lane = base + l;
      if (!active_[lane]) continue;
      auto& log = branch_log_[lane];
      LaneState s = lane_state(lane);
      const std::size_t early = eff_early_[lane];
      const bool use_case4 = section_v(early);
      while (keeps_going(s, early)) {
        ++tally.iterations;
        int branch;
        if constexpr (V == gcd::Variant::kBinary) {
          branch = step_binary(s, tally);
        } else if constexpr (V == gcd::Variant::kFastBinary) {
          branch = step_fast_binary(s, tally);
        } else {
          branch = step_approximate(s, use_case4, tally);
        }
        log.push_back(std::uint8_t(branch));
      }
      store_lane(lane, s);
      active_[lane] = 0;
      stats_.lane_iterations += log.size();
    }
  }

  /// Full W-lane group: lockstep rounds with masked vector sweeps.
  template <gcd::Variant V>
  void run_group_full(std::size_t base, gcd::GcdStats& tally) {
    std::array<LaneState, W> s;
    std::array<bool, W> live{};
    std::array<std::size_t, W> early{};
    std::array<bool, W> use_case4{};
    bool any = false;
    for (std::size_t l = 0; l < W; ++l) {
      const std::size_t lane = base + l;
      live[l] = active_[lane] != 0;
      if (!live[l]) continue;
      s[l] = lane_state(lane);
      early[l] = eff_early_[lane];
      use_case4[l] = section_v(early[l]);
      any = true;
    }

    while (any) {
      any = false;
      for (std::size_t l = 0; l < W; ++l) {
        if (live[l] && !keeps_going(s[l], early[l])) live[l] = false;
        any |= live[l];
      }
      if (!any) break;

      if constexpr (V == gcd::Variant::kBinary) {
        round_binary(base, s, live, tally);
      } else if constexpr (V == gcd::Variant::kFastBinary) {
        round_fast_binary(base, s, live, tally);
      } else {
        round_approximate(base, s, live, use_case4, tally);
      }
    }

    for (std::size_t l = 0; l < W; ++l) {
      const std::size_t lane = base + l;
      if (!active_[lane]) continue;
      store_lane(lane, s[l]);
      active_[lane] = 0;
      stats_.lane_iterations += branch_log_[lane].size();
    }
  }

  // ---- per-variant rounds -------------------------------------------------

  void round_binary(std::size_t base, std::array<LaneState, W>& s,
                    const std::array<bool, W>& live, gcd::GcdStats& tally) {
    std::array<int, W> br{};
    std::array<bool, W> m0{}, m1{}, m2{};
    bool any0 = false, any1 = false, any2 = false;
    for (std::size_t l = 0; l < W; ++l) {
      if (!live[l]) continue;
      if ((s[l].x[0] & 1u) == 0) {
        br[l] = 0;
        m0[l] = any0 = true;
      } else if ((s[l].y[0] & 1u) == 0) {
        br[l] = 1;
        m1[l] = any1 = true;
      } else {
        br[l] = 2;
        m2[l] = any2 = true;
      }
    }
    // Serialized branch groups, each one masked vector sweep (the SIMT
    // divergence model made literal).
    if (any0) vec_halve(base, s, m0, /*halve_y=*/false);
    if (any1) vec_halve(base, s, m1, /*halve_y=*/true);
    if (any2) vec_sub_halve(base, s, m2);
    for (std::size_t l = 0; l < W; ++l) {
      if (!live[l]) continue;
      ++tally.iterations;
      swap_if_less(s[l], tally);
      branch_log_[base + l].push_back(std::uint8_t(br[l]));
    }
  }

  void round_fast_binary(std::size_t base, std::array<LaneState, W>& s,
                         const std::array<bool, W>& live,
                         gcd::GcdStats& tally) {
    SubmulArgs args{};
    bool any_vec = false;
    for (std::size_t l = 0; l < W; ++l) {
      if (!live[l]) continue;
      if (!args.classify(l, s[l], Limb{1})) {
        // d0 == 0: the rare slow strip, scalar (identical code path).
        s[l].lx = gcd::fused_submul_strip(s[l].x, s[l].lx, s[l].y, s[l].ly,
                                          Limb{1}, null_tracer_);
      } else {
        any_vec = true;
      }
    }
    if (any_vec) vec_submul(base, s, args);
    for (std::size_t l = 0; l < W; ++l) {
      if (!live[l]) continue;
      ++tally.iterations;
      swap_if_less(s[l], tally);
      branch_log_[base + l].push_back(0);
    }
  }

  /// Vectorized Section-V quotient head: the Case-4 classification of
  /// approx_case4_only with the eight hardware divisions replaced by two
  /// 4-lane double-precision divisions plus an exact integer fixup. The
  /// double estimate's error is < 2^-19 absolute (quotients fit a limb), so
  /// round(q̂) ∈ {q, q+1}; starting from round(q̂) − 1 at most two predicated
  /// increments against the exact 64-bit remainder land on ⌊x12/div⌋ — the
  /// result is bit-identical to the scalar engine's divide, just never
  /// serialized through the divider unit. Lanes it declines (non-Section-V
  /// runs, 64-bit limbs) keep have[l] == 0 and take the scalar head.
  void vec_approx_case4(const std::array<LaneState, W>& s,
                        const std::array<bool, W>& live,
                        const std::array<bool, W>& use_case4,
                        std::array<Wide, W>& qa,
                        std::array<gcd::ApproxCase, W>& wh,
                        std::array<std::size_t, W>& beta,
                        std::array<std::uint8_t, W>& have) {
    if constexpr (VecTraits<Limb>::available && LB == 32) {
      alignas(32) Wide x12a[W], diva[W];
      bool any = false;
      for (std::size_t l = 0; l < W; ++l) {
        x12a[l] = 1;  // benign operands for lanes without a division
        diva[l] = 1;
        if (!live[l] || !use_case4[l]) continue;
        // Section-V regime: keeps_going kept ly >= 3 limbs and the swap
        // invariant keeps lx >= ly, exactly approx_case4_only's contract.
        const auto& t = s[l];
        const Wide x12 = gcd::top_two_words(t.x, t.lx);
        const Wide y12 = gcd::top_two_words(t.y, t.ly);
        have[l] = 1;
        if (x12 > y12) {
          wh[l] = gcd::ApproxCase::k4A;
          beta[l] = t.lx - t.ly;
          x12a[l] = x12;
          diva[l] = y12 + 1;
          any = true;
        } else if (t.lx > t.ly) {
          wh[l] = gcd::ApproxCase::k4B;
          beta[l] = t.lx - t.ly - 1;
          x12a[l] = x12;
          diva[l] = Wide(t.y[t.ly - 1]) + 1;
          any = true;
        } else {
          wh[l] = gcd::ApproxCase::k4C;
          beta[l] = 0;
          qa[l] = 1;
        }
      }
      if (!any) return;
      using VT = VecTraits<Limb>;
      using V4 = typename VT::PairVec;
      using S4 = typename VT::SignedPairVec;
      using D4 = typename VT::DblVec;
      const V4 kexp = V4{} + 0x4330000000000000ull;  // double exponent of 2^52
      const D4 k52 = D4{} + 4503599627370496.0;      // 2^52
      const D4 kscale = D4{} + 4294967296.0;         // 2^32
      const V4 bias = V4{} + (Wide(1) << 63);
      for (std::size_t h = 0; h < W; h += 4) {
        const V4 xv = v_load<V4>(x12a + h);
        const V4 dv = v_load<V4>(diva + h);
        // Exact u64 -> double by halves: or the u32 half into a 2^52-biased
        // mantissa, subtract the bias (both halves exact, one rounding each
        // on the recombines).
        const D4 xd = ((D4)((xv >> LB) | kexp) - k52) * kscale +
                      ((D4)((xv & kMask) | kexp) - k52);
        const D4 dd = ((D4)((dv >> LB) | kexp) - k52) * kscale +
                      ((D4)((dv & kMask) | kexp) - k52);
        const D4 qd = xd / dd + k52;  // + 2^52 rounds to the nearest integer
        V4 q = ((V4)qd & ((Wide(1) << 52) - 1)) - 1;
        const V4 dm1 = (dv - 1) ^ bias;
        const V4 low = VT::mul32(q, dv) + (VT::mul32(q, dv >> LB) << LB);
        V4 r = xv - low;  // q <= floor: no wrap
        const V4 c1 = (V4)((S4)(r ^ bias) > (S4)dm1);  // r >= dv, biased cmp
        q -= c1;  // c is 0/~0: subtracting the mask increments
        r -= dv & c1;
        const V4 c2 = (V4)((S4)(r ^ bias) > (S4)dm1);
        q -= c2;
        v_store(qa.data() + h, q);
      }
    }
  }

  void round_approximate(std::size_t base, std::array<LaneState, W>& s,
                         const std::array<bool, W>& live,
                         const std::array<bool, W>& use_case4,
                         gcd::GcdStats& tally) {
    std::array<int, W> br{};
    SubmulArgs args{};
    bool any_vec = false;
    std::array<Wide, W> qa{};
    std::array<gcd::ApproxCase, W> wh{};
    std::array<std::size_t, W> betas{};
    std::array<std::uint8_t, W> have{};
    vec_approx_case4(s, live, use_case4, qa, wh, betas, have);
    for (std::size_t l = 0; l < W; ++l) {
      if (!live[l]) continue;
      const auto ar =
          have[l] ? gcd::ApproxResult<Limb>{qa[l], betas[l], wh[l]}
          : use_case4[l]
              ? gcd::approx_case4_only(s[l].x, s[l].lx, s[l].y, s[l].ly)
              : gcd::approx(s[l].x, s[l].lx, s[l].y, s[l].ly);
      tally.count_case(ar.which);
      ++tally.divisions;
      if (ar.which == gcd::ApproxCase::k1) {
        case1_tail(s[l], ar.alpha);
        br[l] = 2;
      } else if (ar.beta == 0) {
        Limb alpha = Limb(ar.alpha);
        if ((alpha & 1u) == 0) --alpha;
        if (args.classify(l, s[l], alpha)) {
          any_vec = true;
        } else {
          s[l].lx = gcd::fused_submul_strip(s[l].x, s[l].lx, s[l].y, s[l].ly,
                                            alpha, null_tracer_);
        }
        br[l] = 0;
      } else {
        ++tally.beta_nonzero;
        s[l].lx = gcd::fused_submul_shifted_add_strip(
            s[l].x, s[l].lx, s[l].y, s[l].ly, Limb(ar.alpha), ar.beta,
            null_tracer_);
        br[l] = 1;
      }
    }
    if (any_vec) vec_submul(base, s, args);
    for (std::size_t l = 0; l < W; ++l) {
      if (!live[l]) continue;
      ++tally.iterations;
      swap_if_less(s[l], tally);
      branch_log_[base + l].push_back(std::uint8_t(br[l]));
    }
  }

  /// Fully vector-resident Approximate Euclidean driver for one W-lane
  /// group in the Section-V regime (early termination >= 3 limbs, the
  /// all-pairs scan configuration): lane sizes, swap flags, live masks and
  /// iteration counts live in vector registers for the whole group run, the
  /// per-round head (keeps_going, the Case-4 classification, the quotient,
  /// the d0 classify) is computed for all W lanes at once from five gathers
  /// and two row-0 loads, and the submul sweep tracks the normalized result
  /// size in-register — no per-lane scalar work at all on the common path.
  /// Rare lanes (β > 0, d0 = 0, full-compare ties) extract to the scalar
  /// kernels exactly like the generic driver, preserving bit-identity.
  ///
  /// In the Section-V regime the quotient head is always Case 4
  /// (approx_case4_only's contract: keeps_going keeps ly >= 3 limbs and the
  /// swap invariant keeps lx >= ly), Case 1 is unreachable, and every
  /// vector-handled iteration logs branch 0 — so the branch trace is a bulk
  /// fill plus one patch per rare β > 0 event.
  void run_group_approx_vec(std::size_t base, gcd::GcdStats& tally) {
    if constexpr (VecTraits<Limb>::available && LB == 32) {
      using VT = VecTraits<Limb>;
      using VL = typename VT::LimbVec;
      using SL = typename VT::SignedVec;
      using V4 = typename VT::PairVec;
      using S4 = typename VT::SignedPairVec;
      using D4 = typename VT::DblVec;

      const std::size_t L = lanes_;
      Limb* __restrict__ Sd = mat_.storage().data();
      const Limb capL = Limb(cap_ * L);

      // ---- scalar -> vector state load ----
      alignas(32) Limb t32[W];
      std::array<std::uint8_t, W> init_live{};
      std::array<std::size_t, W> log_base{};
      for (std::size_t l = 0; l < W; ++l) {
        init_live[l] = active_[base + l];
        log_base[l] = branch_log_[base + l].size();
      }
      for (std::size_t l = 0; l < W; ++l) t32[l] = Limb(lx_[base + l]);
      VL lxv = v_load<VL>(t32);
      for (std::size_t l = 0; l < W; ++l) t32[l] = Limb(ly_[base + l]);
      VL lyv = v_load<VL>(t32);
      for (std::size_t l = 0; l < W; ++l) {
        t32[l] = swapped_[base + l] ? ~Limb{0} : Limb{0};
      }
      VL swm = v_load<VL>(t32);
      for (std::size_t l = 0; l < W; ++l) {
        t32[l] = init_live[l] ? ~Limb{0} : Limb{0};
      }
      VL livem = v_load<VL>(t32);
      for (std::size_t l = 0; l < W; ++l) t32[l] = Limb(eff_early_[base + l]);
      const VL earlyv = v_load<VL>(t32);

      const VL iota = {0, 1, 2, 3, 4, 5, 6, 7};
      const VL lanecol = iota + Limb(base);
      const VL capLv = VL{} + capL;
      const VL rowmul = VL{} + Limb(L);
      const VL one = VL{} + 1;
      const VL two = VL{} + 2;
      const VL kLBv = VL{} + Limb(LB);
      const V4 kMaskV = V4{} + kMask;
      const V4 hiKeep = V4{} + (Wide(kMask) << LB);
      const V4 bias = V4{} + (Wide(1) << 63);
      const V4 kexp = V4{} + 0x4330000000000000ull;  // double bits of 2^52
      const D4 k52 = D4{} + 4503599627370496.0;      // 2^52
      const D4 kscale = D4{} + 4294967296.0;         // 2^32

      // Exact 64/64 -> floor quotient for quotients < 2^32: two 4-lane
      // double divisions plus <= 2 predicated fixup increments (see
      // vec_approx_case4 for the error argument).
      const auto divq = [&](V4 xv, V4 dv) noexcept -> V4 {
        const D4 xd = ((D4)((xv >> LB) | kexp) - k52) * kscale +
                      ((D4)((xv & kMask) | kexp) - k52);
        const D4 dd = ((D4)((dv >> LB) | kexp) - k52) * kscale +
                      ((D4)((dv & kMask) | kexp) - k52);
        const D4 qd = xd / dd + k52;
        V4 q = ((V4)qd & ((Wide(1) << 52) - 1)) - 1;
        const V4 dm1 = (dv - 1) ^ bias;
        const V4 low = VT::mul32(q, dv) + (VT::mul32(q, dv >> LB) << LB);
        V4 r = xv - low;
        const V4 f1 = (V4)((S4)(r ^ bias) > (S4)dm1);  // r >= dv, biased cmp
        q -= f1;
        r -= dv & f1;
        const V4 f2 = (V4)((S4)(r ^ bias) > (S4)dm1);
        q -= f2;
        return q;
      };

      VL iters{};                              // per-lane iteration counts
      VL n4a{}, n4b{}, n4c{}, nswap{}, nbnz{};  // per-lane stat counters
      std::vector<std::pair<std::uint8_t, Limb>> patches;  // (lane, iter idx)

      // The top two words of X and Y ride across rounds in registers: the
      // new X words come from the two post-sweep gathers at the bottom of
      // the loop, and a swap just exchanges the X and Y registers — the
      // round head issues no gathers at all. (The values are junk for dead
      // lanes and for X sides about to die, where every consumer is masked;
      // clamped offsets keep the gathers themselves in bounds.)
      VL y1, x1, y2, x2;
      {
        const VL lyc0 = (VL)((SL)lyv > (SL)two) ? lyv : two;
        const VL lxc0 = (VL)((SL)lxv > (SL)two) ? lxv : two;
        const VL yoff0 = ((VL)(swm ? VL{} : capLv)) + lanecol;
        const VL xoff0 = ((VL)(swm ? capLv : VL{})) + lanecol;
        y1 = VT::gather(Sd, yoff0 + (lyc0 - one) * rowmul);
        x1 = VT::gather(Sd, xoff0 + (lxc0 - one) * rowmul);
        y2 = VT::gather(Sd, yoff0 + (lyc0 - two) * rowmul);
        x2 = VT::gather(Sd, xoff0 + (lxc0 - two) * rowmul);
      }

      while (true) {
        // ---- keeps_going, vectorized ----
        // ly > 0 and: (ly-1)*LB >= early, or ly*LB >= early and the top
        // word still reaches bit (early - (ly-1)*LB - 1). Lane sizes and
        // early bounds are far below 2^31: signed compares.
        const VL topbits = (lyv - one) * kLBv;
        const VL c1 = (VL)((SL)topbits >= (SL)earlyv);
        const VL c2 = (VL)((SL)(lyv * kLBv) < (SL)earlyv);
        const VL sh = (earlyv - topbits - one) & (kLBv - one);
        const VL mid = (VL)((y1 >> sh) != VL{});
        const VL going = (VL)(lyv != VL{}) & (c1 | (~c2 & mid));
        livem &= going;
        if (!VT::movemask(livem)) break;
        iters -= livem;  // masks are 0/~0: subtracting counts the live lanes

        // ---- Case-4 classification + quotient, all lanes at once ----
        const V4 x12e = ((V4)x1 << LB) | ((V4)x2 & kMaskV);
        const V4 x12o = ((V4)x1 & hiKeep) | ((V4)x2 >> LB);
        const V4 y12e = ((V4)y1 << LB) | ((V4)y2 & kMaskV);
        const V4 y12o = ((V4)y1 & hiKeep) | ((V4)y2 >> LB);
        const V4 c4ae = (V4)((S4)(x12e ^ bias) > (S4)(y12e ^ bias));
        const V4 c4ao = (V4)((S4)(x12o ^ bias) > (S4)(y12o ^ bias));
        const VL c4a = (VL)((c4ae & kMaskV) | (c4ao << LB));
        const VL szeq = (VL)(lxv == lyv);
        const VL c4c = ~c4a & szeq;  // x12 <= y12 and lx == ly: alpha = 1
        const V4 dve = ((V4)(c4ae ? y12e : ((V4)y1 & kMaskV))) + 1;
        const V4 dvo = ((V4)(c4ao ? y12o : ((V4)y1 >> LB))) + 1;
        const V4 qe = divq(x12e, dve);
        const V4 qo = divq(x12o, dvo);
        VL q = (VL)((qe & kMask) | (qo << LB));
        q = (VL)(c4c ? one : q);
        const VL alphav = (q - one) | one;  // the scalar head's odd-adjust
        VL beta = lxv - lyv - (~c4a & one);
        beta = (VL)(c4c ? VL{} : beta);
        const VL bnz = (VL)(beta != VL{}) & livem;
        n4a -= c4a & livem;
        n4b -= ~c4a & ~szeq & livem;
        n4c -= c4c & livem;
        nbnz -= bnz;

        // ---- classify: the submul launch state from limb row 0 ----
        const VL A0 = v_load<VL>(Sd + base);
        const VL B0 = v_load<VL>(Sd + cap_ * L + base);
        const VL x0 = (VL)(swm ? B0 : A0);
        const VL y0 = (VL)(swm ? A0 : B0);
        const VL plo = y0 * alphav;
        const V4 alpha_o = (V4)alphav >> LB;
        const V4 pe = VT::mul32((V4)y0, (V4)alphav);
        const V4 po = VT::mul32((V4)y0 >> LB, alpha_o);
        const VL phi = (VL)(((V4)pe >> LB) | (po & hiKeep));
        const VL d0 = x0 - plo;
        const VL bor0 = (VL)(x0 < plo);
        const VL dzm = (VL)(d0 == VL{}) & livem & ~bnz;
        const VL swept = livem & ~bnz & ~dzm;
        VL lxw = lxv;  // post-kernel sizes, filled per class below

        // ---- rare lanes: the exact scalar kernels, this lane only ----
        if (VT::movemask(bnz | dzm)) [[unlikely]] {
          alignas(32) Limb lxa[W], lya[W], swa[W], qa[W], ala[W], bza[W],
              dza[W], bta[W], itc[W], y1a[W], y2a[W];
          v_store(lxa, lxv);
          v_store(lya, lyv);
          v_store(swa, swm);
          v_store(qa, q);
          v_store(ala, alphav);
          v_store(bza, bnz);
          v_store(dza, dzm);
          v_store(bta, beta);
          v_store(itc, iters);
          v_store(y1a, y1);
          v_store(y2a, y2);
          for (std::size_t l = 0; l < W; ++l) {
            if (!(bza[l] | dza[l])) continue;
            LaneState t;
            const std::size_t xo = swa[l] ? std::size_t(capL) : 0;
            t.x = Strided<Limb>{Sd + xo + base + l, L};
            t.y = Strided<Limb>{Sd + (std::size_t(capL) - xo) + base + l, L};
            t.lx = lxa[l];
            t.ly = lya[l];
            t.swapped = swa[l] & 1u;
            if (bza[l]) {
              // β > 0 passes the RAW quotient (the scalar head only
              // odd-adjusts alpha on the β = 0 branch).
              t.lx = gcd::fused_submul_shifted_add_strip(
                  t.x, t.lx, t.y, t.ly, Limb(qa[l]), std::size_t(bta[l]),
                  null_tracer_);
              patches.emplace_back(std::uint8_t(l), itc[l] - 1);
            } else {
              t.lx = gcd::fused_submul_strip(t.x, t.lx, t.y, t.ly, ala[l],
                                             null_tracer_);
            }
            swap_if_less(t, tally);
            lxa[l] = Limb(t.lx);
            lya[l] = Limb(t.ly);
            swa[l] = t.swapped ? ~Limb{0} : Limb{0};
            y1a[l] = t.ly ? t.y[t.ly - 1] : Limb{0};
            y2a[l] = t.ly > 1 ? t.y[t.ly - 2] : Limb{0};
          }
          lxw = v_load<VL>(lxa);
          lyv = v_load<VL>(lya);
          swm = v_load<VL>(swa);
          y1 = v_load<VL>(y1a);
          y2 = v_load<VL>(y2a);
        }

        // ---- the masked submul sweep, result size tracked in-register ----
        if (VT::movemask(swept)) {
          v_store(t32, (VL)(swept ? lxv : VL{}));
          std::size_t n_max = 0;
          for (std::size_t l = 0; l < W; ++l) {
            n_max = std::max(n_max, std::size_t(t32[l]));
          }
          Limb* __restrict__ A = Sd + base;
          Limb* __restrict__ B = Sd + cap_ * L + base;
          const VL sa = swept & ~swm;
          const VL sb = swept & swm;
          const SL lysv = (SL)lyv;
          // countr_zero(d0) from the float exponent of the isolated lowest
          // set bit (d0 is even and nonzero on swept lanes, so the result
          // is exact and in [1, LB-1]).
          const VL lsb = d0 & (VL{} - d0);
          const VL fb =
              (VL)__builtin_convertvector((SL)lsb, typename VT::FloatVec);
          VL rshv = ((fb >> 23) & 0xff) - 127;
          rshv = (VL)(swept ? rshv : one);  // benign shifts on junk lanes
          const VL lshv = kLBv - rshv;
          VL carry = phi;
          VL bor = bor0;
          VL dp = d0;
          VL apv = A0;
          VL bpv = B0;
          VL newlx{};
          SL iv = SL{} + 1;
          for (std::size_t i = 1; i < n_max; ++i) {
            const VL a = v_load<VL>(A + i * L);
            const VL b = v_load<VL>(B + i * L);
            const VL xi = (VL)(swm ? b : a);
            const VL yb = a ^ b ^ xi;
            const VL ym = (VL)(iv < lysv);
            const VL yi = yb & ym;
            const VL lo = yi * alphav;
            const V4 pei = VT::mul32((V4)yi, (V4)alphav);
            const V4 poi = VT::mul32((V4)yi >> LB, alpha_o);
            const VL hi = (VL)(((V4)pei >> LB) | (poi & hiKeep));
            const VL pl = lo + carry;
            carry = hi - (VL)(pl < carry);
            const VL t = xi - pl;
            const VL d = t + bor;
            bor = (VL)(xi < pl) | ((VL)(t == VL{}) & bor);
            const VL out = (dp >> rshv) | (d << lshv);
            dp = d;
            // iv doubles as the output-row index + 1: out lands at row i-1.
            newlx = (VL)((VL)(out != VL{}) ? (VL)iv : newlx);
            iv += 1;
            v_store(A + (i - 1) * L, (VL)(sa ? out : apv));
            v_store(B + (i - 1) * L, (VL)(sb ? out : bpv));
            apv = a;
            bpv = b;
          }
          const VL outf = dp >> rshv;
          newlx = (VL)((VL)(outf != VL{}) ? (VL)iv : newlx);
          v_store(A + (n_max - 1) * L, (VL)(sa ? outf : apv));
          v_store(B + (n_max - 1) * L, (VL)(sb ? outf : bpv));
          lxw = (VL)(swept ? newlx : lxw);
        }

        // ---- swap_if_less, vectorized on the top words ----
        const VL lxc2 = (VL)((SL)lxw > (SL)two) ? lxw : two;
        const VL xb2 = ((VL)(swm ? capLv : VL{})) + lanecol;
        const VL xt = VT::gather(Sd, xb2 + (lxc2 - one) * rowmul);
        const VL xt2 = VT::gather(Sd, xb2 + (lxc2 - two) * rowmul);
        const VL szlt = (VL)((SL)lxw < (SL)lyv);
        const VL szeq2 = (VL)(lxw == lyv);
        const VL wlt = (VL)(xt < y1);
        const VL weq = (VL)(xt == y1);
        VL less = (szlt | (szeq2 & wlt)) & swept;
        const VL tie = szeq2 & weq & swept;
        if (VT::movemask(tie)) [[unlikely]] {
          // Equal sizes AND equal top words: only the full limb walk can
          // order the values (Y is unchanged this round, X just shrank).
          alignas(32) Limb ta[W], la[W], lxa[W], lya[W], swa[W];
          v_store(ta, tie);
          v_store(la, less);
          v_store(lxa, lxw);
          v_store(lya, lyv);
          v_store(swa, swm);
          for (std::size_t l = 0; l < W; ++l) {
            if (!ta[l]) continue;
            const std::size_t xo = swa[l] ? std::size_t(capL) : 0;
            const Strided<Limb> tx{Sd + xo + base + l, L};
            const Strided<Limb> ty{Sd + (std::size_t(capL) - xo) + base + l,
                                   L};
            la[l] = gcd::acc_compare(tx, lxa[l], ty, lya[l]) < 0 ? ~Limb{0}
                                                                 : Limb{0};
          }
          less = v_load<VL>(la);
        }
        nswap -= less;
        swm ^= less;
        const VL nlx = (VL)(less ? lyv : lxw);
        lyv = (VL)(less ? lxw : lyv);
        lxv = nlx;
        // Register-carried top words: the new X words are the post-sweep
        // gathers (rare lanes included — lxw and swm were already patched),
        // and a swapping round exchanges the X and Y registers.
        const VL ny1 = (VL)(less ? xt : y1);
        const VL ny2 = (VL)(less ? xt2 : y2);
        x1 = (VL)(less ? y1 : xt);
        x2 = (VL)(less ? y2 : xt2);
        y1 = ny1;
        y2 = ny2;
      }

      // ---- group epilogue: state, stats and branch traces write-back ----
      alignas(32) Limb itc[W], lxa[W], lya[W], swa[W], c4aa[W], c4ba[W],
          c4ca[W], swc[W], bzc[W];
      v_store(itc, iters);
      v_store(lxa, lxv);
      v_store(lya, lyv);
      v_store(swa, swm);
      v_store(c4aa, n4a);
      v_store(c4ba, n4b);
      v_store(c4ca, n4c);
      v_store(swc, nswap);
      v_store(bzc, nbnz);
      std::uint64_t itsum = 0;
      for (std::size_t l = 0; l < W; ++l) {
        if (!init_live[l]) continue;
        const std::size_t lane = base + l;
        lx_[lane] = lxa[l];
        ly_[lane] = lya[l];
        swapped_[lane] = swa[l] & 1u;
        active_[lane] = 0;
        auto& log = branch_log_[lane];
        log.insert(log.end(), itc[l], std::uint8_t{0});
        stats_.lane_iterations += log.size();
        itsum += itc[l];
        tally.swaps += swc[l];
        tally.beta_nonzero += bzc[l];
        tally.approx_cases[std::size_t(gcd::ApproxCase::k4A)] += c4aa[l];
        tally.approx_cases[std::size_t(gcd::ApproxCase::k4B)] += c4ba[l];
        tally.approx_cases[std::size_t(gcd::ApproxCase::k4C)] += c4ca[l];
      }
      tally.iterations += itsum;
      tally.divisions += itsum;  // one Case-4 division per live iteration
      for (const auto& [l, idx] : patches) {
        branch_log_[base + l][log_base[l] + idx] = 1;
      }
    } else {
      (void)base;
      (void)tally;
    }
  }

  // ---- masked vector kernels ----------------------------------------------

  /// Unaligned vector load/store (the batch matrices only guarantee the
  /// allocator's alignment); compiles to vmovdqu under -mavx2.
  template <class V, class T>
  static V v_load(const T* p) noexcept {
    V v;
    std::memcpy(&v, p, sizeof(V));
    return v;
  }
  template <class V, class T>
  static void v_store(T* p, V v) noexcept {
    std::memcpy(p, &v, sizeof(V));
  }

  /// Per-lane launch state of the fused submul sweep, computed by the scalar
  /// head from limb row 0 (exactly fused_submul_strip's prologue). Unmasked
  /// lanes keep benign defaults so the uniform sweep is UB-free.
  struct SubmulArgs {
    std::array<Limb, W> mask{};       ///< ~0 = lane participates
    std::array<Limb, W> alpha{};
    std::array<Limb, W> d_prev{};
    std::array<Wide, W> mul_carry{};
    std::array<Wide, W> borrow{};
    std::array<Limb, W> rsh{};        ///< countr_zero(d0), 1..LB-1
    std::array<Limb, W> lsh{};        ///< LB - rsh
    std::size_t n_max = 0;            ///< max lx over masked lanes

    SubmulArgs() {
      rsh.fill(Limb{1});
      lsh.fill(Limb(LB - 1));
      alpha.fill(Limb{1});
    }

    /// Returns false (leaving the lane unmasked) when d0 == 0 — the caller
    /// must run the scalar slow path for that lane.
    bool classify(std::size_t l, const LaneState& s, Limb a) {
      const Wide p = Wide(s.y[0]) * a;
      const Wide diff = Wide(s.x[0]) - (p & kMask);
      const Limb d0 = Limb(diff);
      if (d0 == 0) return false;
      mask[l] = ~Limb{0};
      alpha[l] = a;
      d_prev[l] = d0;
      mul_carry[l] = p >> LB;
      borrow[l] = (diff >> LB) & 1u;
      const int r = std::countr_zero(d0);
      rsh[l] = Limb(r);
      lsh[l] = Limb(LB - r);
      n_max = std::max(n_max, s.lx);
      return true;
    }
  };

  /// X ← rshift(X − Y·α): the dominant kernel of Fast Binary and of
  /// Approximate Euclidean's β = 0 branch, swept once for all masked lanes.
  void vec_submul(std::size_t base, std::array<LaneState, W>& s,
                  SubmulArgs& g) {
    Limb* __restrict__ A = a_data() + base;
    Limb* __restrict__ B = b_data() + base;
    const std::size_t L = lanes_;
    const std::size_t n_max = g.n_max;

    // Lane-select and store-enable masks: xs picks the X role (B when the
    // lane is swapped), sa/sb enable the blended store into A/B.
    alignas(32) Limb xs[W], sa[W], sb[W], lyv[W];
    alignas(32) Limb a_prev[W], b_prev[W];
    for (std::size_t l = 0; l < W; ++l) {
      const Limb in_b = s[l].swapped ? ~Limb{0} : Limb{0};
      xs[l] = in_b;
      sa[l] = g.mask[l] & ~in_b;
      sb[l] = g.mask[l] & in_b;
      lyv[l] = g.mask[l] ? Limb(s[l].ly) : Limb{0};
      a_prev[l] = A[l];
      b_prev[l] = B[l];
    }
    alignas(32) Limb d_prev[W];
    alignas(32) Wide mul_carry[W], borrow[W];
    for (std::size_t l = 0; l < W; ++l) {
      d_prev[l] = g.d_prev[l];
      mul_carry[l] = g.mul_carry[l];
      borrow[l] = g.borrow[l];
    }

    if constexpr (VecTraits<Limb>::available) {
      // Limb-native row arithmetic: the carry and borrow of the scalar
      // kernel's Wide chain are carried as limb lanes (carry value + 0/~0
      // borrow mask), the 32x32->64 product comes from one vpmulld low half
      // plus two vpmuludq high halves, and the cross-row shift uses the
      // per-lane variable limb shifts. Everything stays in native 256-bit
      // registers; the row-to-row latency chain is a handful of 1-cycle ops
      // (the multiplies feed it from outside), so the loop runs at
      // instruction throughput, not chain latency.
      using VT = VecTraits<Limb>;
      using VL = typename VT::LimbVec;
      using SL = typename VT::SignedVec;
      using V4 = typename VT::PairVec;
      const VL xsv = v_load<VL>(xs);
      const VL sav = v_load<VL>(sa);
      const VL sbv = v_load<VL>(sb);
      const SL lysv = (SL)v_load<VL>(lyv);
      const VL alphav = v_load<VL>(g.alpha.data());
      const V4 alpha_o = (V4)alphav >> LB;
      const V4 hi_keep = V4{} + (Wide(kMask) << LB);
      const VL rshv = v_load<VL>(g.rsh.data());
      const VL lshv = v_load<VL>(g.lsh.data());
      VL apv = v_load<VL>(a_prev);
      VL bpv = v_load<VL>(b_prev);
      VL dp = v_load<VL>(d_prev);
      alignas(32) Limb mc32[W], bw32[W];
      for (std::size_t l = 0; l < W; ++l) {
        mc32[l] = Limb(mul_carry[l]);          // carry fits a limb
        bw32[l] = borrow[l] ? ~Limb{0} : Limb{0};  // borrow 0/1 -> 0/~0 mask
      }
      VL carry = v_load<VL>(mc32);
      VL bor = v_load<VL>(bw32);
      SL iv = SL{} + 1;
      for (std::size_t i = 1; i < n_max; ++i) {
        const VL a = v_load<VL>(A + i * L);
        const VL b = v_load<VL>(B + i * L);
        const VL xi = xsv ? b : a;
        const VL yb = a ^ b ^ xi;
        const VL ym = (VL)(iv < lysv);  // lane sizes << 2^31: signed compare
        iv += 1;
        const VL yi = yb & ym;
        const VL lo = yi * alphav;
        const V4 pe = VT::mul32((V4)yi, (V4)alphav);
        const V4 po = VT::mul32((V4)yi >> LB, alpha_o);
        const VL hi = (VL)(((V4)pe >> LB) | (po & hi_keep));
        const VL pl = lo + carry;
        carry = hi - (VL)(pl < carry);
        const VL t = xi - pl;
        const VL d = t + bor;  // bor is a 0/~0 mask: +~0 subtracts the borrow
        bor = (VL)(xi < pl) | ((VL)(t == VL{}) & bor);
        const VL out = (dp >> rshv) | (d << lshv);
        dp = d;
        v_store(A + (i - 1) * L, sav ? out : apv);
        v_store(B + (i - 1) * L, sbv ? out : bpv);
        apv = a;
        bpv = b;
      }
      const VL out = dp >> rshv;
      v_store(A + (n_max - 1) * L, sav ? out : apv);
      v_store(B + (n_max - 1) * L, sbv ? out : bpv);
      v_store(mc32, carry);
      v_store(bw32, bor);
      for (std::size_t l = 0; l < W; ++l) {
        mul_carry[l] = mc32[l];
        borrow[l] = bw32[l] & 1u;  // mask back to the scalar 0/1 borrow
      }
    } else {
      for (std::size_t i = 1; i < n_max; ++i) {
        Limb* __restrict__ row_a = A + i * L;
        Limb* __restrict__ row_b = B + i * L;
        Limb* __restrict__ out_a = A + (i - 1) * L;
        Limb* __restrict__ out_b = B + (i - 1) * L;
        for (std::size_t l = 0; l < W; ++l) {
          const Limb a = row_a[l];
          const Limb b = row_b[l];
          const Limb xi = (b & xs[l]) | (a & ~xs[l]);
          const Limb yb = (a & xs[l]) | (b & ~xs[l]);
          const Limb ym = Limb(i) < lyv[l] ? ~Limb{0} : Limb{0};
          const Limb yi = yb & ym;
          const Wide p = Wide(yi) * g.alpha[l] + mul_carry[l];
          mul_carry[l] = p >> LB;
          const Wide diff = Wide(xi) - (p & kMask) - borrow[l];
          const Limb d = Limb(diff);
          borrow[l] = (diff >> LB) & 1u;
          const Limb out =
              Limb(d_prev[l] >> g.rsh[l]) | Limb(d << g.lsh[l]);
          d_prev[l] = d;
          out_a[l] = (out & sa[l]) | (a_prev[l] & ~sa[l]);
          out_b[l] = (out & sb[l]) | (b_prev[l] & ~sb[l]);
          a_prev[l] = a;
          b_prev[l] = b;
        }
      }
      Limb* __restrict__ out_a = A + (n_max - 1) * L;
      Limb* __restrict__ out_b = B + (n_max - 1) * L;
      for (std::size_t l = 0; l < W; ++l) {
        const Limb out = Limb(d_prev[l] >> g.rsh[l]);
        out_a[l] = (out & sa[l]) | (a_prev[l] & ~sa[l]);
        out_b[l] = (out & sb[l]) | (b_prev[l] & ~sb[l]);
      }
    }
    for (std::size_t l = 0; l < W; ++l) {
      if (!g.mask[l]) continue;
      assert(borrow[l] == 0 && mul_carry[l] == 0 &&
             "X - Y*alpha must be non-negative");
      s[l].lx = gcd::acc_normalized_size(s[l].x, s[l].lx);
    }
  }

  /// X ← X/2 (halve_y = false) or Y ← Y/2 (halve_y = true) for all masked
  /// lanes — Binary Euclidean's even cases.
  void vec_halve(std::size_t base, std::array<LaneState, W>& s,
                 const std::array<bool, W>& m, bool halve_y) {
    Limb* __restrict__ A = a_data() + base;
    Limb* __restrict__ B = b_data() + base;
    const std::size_t L = lanes_;

    alignas(32) Limb ts[W], sa[W], sb[W];
    alignas(32) Limb prev[W], a_prev[W], b_prev[W];
    std::size_t n_max = 0;
    for (std::size_t l = 0; l < W; ++l) {
      // Target role lives in B when (swapped XOR halve_y) — X is the swapped
      // side, Y the other.
      const bool in_b = (s[l].swapped != 0) != halve_y;
      const Limb en = m[l] ? ~Limb{0} : Limb{0};
      ts[l] = in_b ? ~Limb{0} : Limb{0};
      sa[l] = en & ~ts[l];
      sb[l] = en & ts[l];
      if (m[l]) n_max = std::max(n_max, halve_y ? s[l].ly : s[l].lx);
      a_prev[l] = A[l];
      b_prev[l] = B[l];
      prev[l] = (b_prev[l] & ts[l]) | (a_prev[l] & ~ts[l]);
    }

    if constexpr (VecTraits<Limb>::available) {
      using VL = typename VecTraits<Limb>::LimbVec;
      const VL tsv = v_load<VL>(ts);
      const VL sav = v_load<VL>(sa);
      const VL sbv = v_load<VL>(sb);
      VL apv = v_load<VL>(a_prev);
      VL bpv = v_load<VL>(b_prev);
      VL prevv = v_load<VL>(prev);
      for (std::size_t i = 1; i < n_max; ++i) {
        const VL a = v_load<VL>(A + i * L);
        const VL b = v_load<VL>(B + i * L);
        const VL cur = (b & tsv) | (a & ~tsv);
        const VL out = (prevv >> 1) | (cur << (LB - 1));
        v_store(A + (i - 1) * L, (out & sav) | (apv & ~sav));
        v_store(B + (i - 1) * L, (out & sbv) | (bpv & ~sbv));
        prevv = cur;
        apv = a;
        bpv = b;
      }
      const VL out = prevv >> 1;
      v_store(A + (n_max - 1) * L, (out & sav) | (apv & ~sav));
      v_store(B + (n_max - 1) * L, (out & sbv) | (bpv & ~sbv));
    } else {
      for (std::size_t i = 1; i < n_max; ++i) {
        Limb* __restrict__ row_a = A + i * L;
        Limb* __restrict__ row_b = B + i * L;
        Limb* __restrict__ out_a = A + (i - 1) * L;
        Limb* __restrict__ out_b = B + (i - 1) * L;
        for (std::size_t l = 0; l < W; ++l) {
          const Limb a = row_a[l];
          const Limb b = row_b[l];
          const Limb cur = (b & ts[l]) | (a & ~ts[l]);
          const Limb out = Limb(prev[l] >> 1) | Limb(cur << (LB - 1));
          out_a[l] = (out & sa[l]) | (a_prev[l] & ~sa[l]);
          out_b[l] = (out & sb[l]) | (b_prev[l] & ~sb[l]);
          prev[l] = cur;
          a_prev[l] = a;
          b_prev[l] = b;
        }
      }
      Limb* __restrict__ out_a = A + (n_max - 1) * L;
      Limb* __restrict__ out_b = B + (n_max - 1) * L;
      for (std::size_t l = 0; l < W; ++l) {
        const Limb out = Limb(prev[l] >> 1);
        out_a[l] = (out & sa[l]) | (a_prev[l] & ~sa[l]);
        out_b[l] = (out & sb[l]) | (b_prev[l] & ~sb[l]);
      }
    }
    for (std::size_t l = 0; l < W; ++l) {
      if (!m[l]) continue;
      if (halve_y) {
        s[l].ly = gcd::acc_normalized_size(s[l].y, s[l].ly);
      } else {
        s[l].lx = gcd::acc_normalized_size(s[l].x, s[l].lx);
      }
    }
  }

  /// X ← (X − Y)/2 for all masked lanes — Binary Euclidean's odd-odd case.
  void vec_sub_halve(std::size_t base, std::array<LaneState, W>& s,
                     const std::array<bool, W>& m) {
    Limb* __restrict__ A = a_data() + base;
    Limb* __restrict__ B = b_data() + base;
    const std::size_t L = lanes_;

    alignas(32) Limb xs[W], sa[W], sb[W], lyv[W];
    alignas(32) Limb d_prev[W], a_prev[W], b_prev[W];
    alignas(32) Wide borrow[W];
    std::size_t n_max = 0;
    for (std::size_t l = 0; l < W; ++l) {
      const Limb in_b = s[l].swapped ? ~Limb{0} : Limb{0};
      const Limb en = m[l] ? ~Limb{0} : Limb{0};
      xs[l] = in_b;
      sa[l] = en & ~in_b;
      sb[l] = en & in_b;
      lyv[l] = m[l] ? Limb(s[l].ly) : Limb{0};
      a_prev[l] = A[l];
      b_prev[l] = B[l];
      const Limb x0 = (b_prev[l] & in_b) | (a_prev[l] & ~in_b);
      const Limb y0 = (a_prev[l] & in_b) | (b_prev[l] & ~in_b);
      const Wide diff = Wide(x0) - (y0 & en);
      d_prev[l] = Limb(diff) & en;
      borrow[l] = m[l] ? (diff >> LB) & 1u : Wide{0};
      if (m[l]) n_max = std::max(n_max, s[l].lx);
    }

    if constexpr (VecTraits<Limb>::available) {
      // Same limb-native scheme as vec_submul, minus the multiply (see
      // there for the rationale).
      using VT = VecTraits<Limb>;
      using VL = typename VT::LimbVec;
      using SL = typename VT::SignedVec;
      const VL xsv = v_load<VL>(xs);
      const VL sav = v_load<VL>(sa);
      const VL sbv = v_load<VL>(sb);
      const SL lysv = (SL)v_load<VL>(lyv);
      VL apv = v_load<VL>(a_prev);
      VL bpv = v_load<VL>(b_prev);
      VL dp = v_load<VL>(d_prev);
      alignas(32) Limb bw32[W];
      for (std::size_t l = 0; l < W; ++l) {
        bw32[l] = borrow[l] ? ~Limb{0} : Limb{0};
      }
      VL bor = v_load<VL>(bw32);
      SL iv = SL{} + 1;
      for (std::size_t i = 1; i < n_max; ++i) {
        const VL a = v_load<VL>(A + i * L);
        const VL b = v_load<VL>(B + i * L);
        const VL xi = xsv ? b : a;
        const VL yb = a ^ b ^ xi;
        const VL ym = (VL)(iv < lysv);
        iv += 1;
        const VL yi = yb & ym;
        const VL t = xi - yi;
        const VL d = t + bor;
        bor = (VL)(xi < yi) | ((VL)(t == VL{}) & bor);
        const VL out = (dp >> 1) | (d << (LB - 1));
        dp = d;
        v_store(A + (i - 1) * L, sav ? out : apv);
        v_store(B + (i - 1) * L, sbv ? out : bpv);
        apv = a;
        bpv = b;
      }
      const VL out = dp >> 1;
      v_store(A + (n_max - 1) * L, sav ? out : apv);
      v_store(B + (n_max - 1) * L, sbv ? out : bpv);
      v_store(bw32, bor);
      for (std::size_t l = 0; l < W; ++l) borrow[l] = bw32[l] & 1u;
    } else {
      for (std::size_t i = 1; i < n_max; ++i) {
        Limb* __restrict__ row_a = A + i * L;
        Limb* __restrict__ row_b = B + i * L;
        Limb* __restrict__ out_a = A + (i - 1) * L;
        Limb* __restrict__ out_b = B + (i - 1) * L;
        for (std::size_t l = 0; l < W; ++l) {
          const Limb a = row_a[l];
          const Limb b = row_b[l];
          const Limb xi = (b & xs[l]) | (a & ~xs[l]);
          const Limb yb = (a & xs[l]) | (b & ~xs[l]);
          const Limb ym = Limb(i) < lyv[l] ? ~Limb{0} : Limb{0};
          const Wide diff = Wide(xi) - (yb & ym) - borrow[l];
          const Limb d = Limb(diff);
          borrow[l] = (diff >> LB) & 1u;
          const Limb out = Limb(d_prev[l] >> 1) | Limb(d << (LB - 1));
          d_prev[l] = d;
          out_a[l] = (out & sa[l]) | (a_prev[l] & ~sa[l]);
          out_b[l] = (out & sb[l]) | (b_prev[l] & ~sb[l]);
          a_prev[l] = a;
          b_prev[l] = b;
        }
      }
      Limb* __restrict__ out_a = A + (n_max - 1) * L;
      Limb* __restrict__ out_b = B + (n_max - 1) * L;
      for (std::size_t l = 0; l < W; ++l) {
        const Limb out = Limb(d_prev[l] >> 1);
        out_a[l] = (out & sa[l]) | (a_prev[l] & ~sa[l]);
        out_b[l] = (out & sb[l]) | (b_prev[l] & ~sb[l]);
      }
    }
    for (std::size_t l = 0; l < W; ++l) {
      if (!m[l]) continue;
      assert(borrow[l] == 0 && "X must be >= Y");
      s[l].lx = gcd::acc_normalized_size(s[l].x, s[l].lx);
    }
  }

  std::size_t lanes_, cap_, warp_;
  ColumnMatrix<Limb> mat_;
  std::vector<std::size_t> lx_, ly_;
  std::vector<std::size_t> early_;
  std::vector<std::size_t> eff_early_;
  std::vector<std::uint8_t> swapped_, active_;
  // Dirty-row watermarks — identical invariant to SimtBatch: kernel writes
  // never land above a value's staged size + 1 (the β write row), so panel
  // refreshes only zero what a previous run may have touched.
  std::size_t x_rows_ = 0, y_rows_ = 0;
  std::vector<std::vector<std::uint8_t>> branch_log_;
  SimtStats stats_;
  gcd::NullTracer null_tracer_;
};

}  // namespace BULKGCD_VEC_IMPL_NS
}  // namespace bulkgcd::bulk
