// Internal factory seams between dispatch.cpp and the per-ISA translation
// units of the vector engine. Each TU compiles vec_batch_impl.hpp under its
// own namespace and exports exactly these constructors; dispatch.cpp picks
// one at runtime. Not installed / not part of the public surface.
#pragma once

#include <cstdint>
#include <memory>

#include "bulk/vec/vec_backend.hpp"

namespace bulkgcd::bulk::detail {

std::unique_ptr<VecBatchBase<std::uint32_t>> make_vec_batch_portable_u32(
    std::size_t lanes, std::size_t capacity_limbs, std::size_t warp_width);
std::unique_ptr<VecBatchBase<std::uint64_t>> make_vec_batch_portable_u64(
    std::size_t lanes, std::size_t capacity_limbs, std::size_t warp_width);

#if defined(BULKGCD_HAVE_AVX2_TU)
std::unique_ptr<VecBatchBase<std::uint32_t>> make_vec_batch_avx2_u32(
    std::size_t lanes, std::size_t capacity_limbs, std::size_t warp_width);
std::unique_ptr<VecBatchBase<std::uint64_t>> make_vec_batch_avx2_u64(
    std::size_t lanes, std::size_t capacity_limbs, std::size_t warp_width);
#endif

}  // namespace bulkgcd::bulk::detail
